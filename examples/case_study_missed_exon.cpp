/**
 * @file
 * Figure 9 analogue: find a biologically-significant region (a planted
 * orthologous exon) that Darwin-WGA aligns but the LASTZ-like baseline
 * misses, and show *why* — the base-level alignment with the indels that
 * flank the seed hits, which kill ungapped extension but are absorbed by
 * gapped filtering.
 *
 *   $ ./examples/case_study_missed_exon --pair ce11-cb4 --size 150000
 */
#include <cstdio>

#include "eval/block_stats.h"
#include "eval/exon_eval.h"
#include "synth/species.h"
#include "util/args.h"
#include "util/strings.h"
#include "util/thread_pool.h"
#include "wga/pipeline.h"

using namespace darwin;

namespace {

/** Pretty-print an alignment slice in three rows (target/bars/query). */
void
print_alignment(const align::Alignment& alignment,
                const seq::Sequence& target_flat,
                const seq::Sequence& query_flat, std::size_t max_cols)
{
    std::string t_row, m_row, q_row;
    std::uint64_t t = alignment.target_start;
    std::uint64_t q = alignment.query_start;
    for (const auto& run : alignment.cigar.runs()) {
        for (std::uint32_t k = 0;
             k < run.length && t_row.size() < max_cols; ++k) {
            switch (run.op) {
              case align::EditOp::Match:
                t_row += seq::decode_base(target_flat[t]);
                q_row += seq::decode_base(query_flat[q]);
                m_row += '|';
                ++t;
                ++q;
                break;
              case align::EditOp::Mismatch:
                t_row += seq::decode_base(target_flat[t]);
                q_row += seq::decode_base(query_flat[q]);
                m_row += ' ';
                ++t;
                ++q;
                break;
              case align::EditOp::Insert:
                t_row += '-';
                q_row += seq::decode_base(query_flat[q]);
                m_row += ' ';
                ++q;
                break;
              case align::EditOp::Delete:
                t_row += seq::decode_base(target_flat[t]);
                q_row += '-';
                m_row += ' ';
                ++t;
                break;
            }
        }
    }
    for (std::size_t off = 0; off < t_row.size(); off += 80) {
        std::printf("  t  %s\n     %s\n  q  %s\n\n",
                    t_row.substr(off, 80).c_str(),
                    m_row.substr(off, 80).c_str(),
                    q_row.substr(off, 80).c_str());
    }
}

}  // namespace

int
main(int argc, char** argv)
{
    ArgParser args("Find an exon Darwin-WGA aligns but the LASTZ-like "
                   "baseline misses, and display the alignment.");
    args.add_option("pair", "ce11-cb4", "paper species pair");
    args.add_option("size", "150000", "chromosome length (bp)");
    args.add_option("seed", "2", "workload generator seed");
    args.add_option("threads", "0", "worker threads (0 = all cores)");
    if (!args.parse(argc, argv))
        return 1;

    synth::AncestorConfig shape;
    shape.num_chromosomes = 1;
    shape.chromosome_length = static_cast<std::size_t>(args.get_int("size"));
    shape.exons_per_chromosome = shape.chromosome_length / 2000;
    const auto pair = synth::make_species_pair(
        synth::find_species_pair(args.get("pair")), shape,
        static_cast<std::uint64_t>(args.get_int("seed")));
    ThreadPool pool(static_cast<std::size_t>(args.get_int("threads")));

    const wga::WgaPipeline darwin_wga(wga::WgaParams::darwin_defaults());
    const wga::WgaPipeline lastz_like(wga::WgaParams::lastz_defaults());
    const auto darwin_result =
        darwin_wga.run(pair.target.genome, pair.query.genome, &pool);
    const auto lastz_result =
        lastz_like.run(pair.target.genome, pair.query.genome, &pool);

    // Score each exon under both aligners; keep ones only Darwin found.
    const auto exons = eval::flatten_exons(pair.target, pair.query);
    std::vector<eval::FlatExon> only_darwin;
    for (const auto& exon : exons) {
        const auto d = eval::count_recovered_exons({exon}, darwin_result);
        const auto l = eval::count_recovered_exons({exon}, lastz_result);
        if (d.recovered == 1 && l.recovered == 0)
            only_darwin.push_back(exon);
    }
    std::printf("%zu exons total; %zu aligned by Darwin-WGA but missed "
                "by the LASTZ-like baseline\n\n",
                exons.size(), only_darwin.size());
    if (only_darwin.empty()) {
        std::printf("(none on this workload — try a more distant pair "
                    "or another seed)\n");
        return 0;
    }

    // Show the first case: the covering Darwin alignment and its indel
    // structure around the exon (the Fig. 9b view).
    const auto& exon = only_darwin.front();
    std::printf("case study: %s  target[%llu,%llu)  query[%llu,%llu)\n",
                exon.name.c_str(),
                static_cast<unsigned long long>(exon.target.start),
                static_cast<unsigned long long>(exon.target.end),
                static_cast<unsigned long long>(exon.query.start),
                static_cast<unsigned long long>(exon.query.end));

    for (const auto& chain : darwin_result.chains) {
        for (const auto idx : chain.members) {
            const auto& a = darwin_result.alignments[idx];
            if (a.target_start <= exon.target.start &&
                a.target_end >= exon.target.end) {
                std::printf("covering alignment: %s\n",
                            a.summary().c_str());
                const auto blocks = eval::ungapped_blocks(a.cigar);
                std::printf("ungapped blocks: %zu (LASTZ's ungapped "
                            "filter needs ~30bp clean blocks)\n",
                            blocks.size());
                std::printf("block lengths:");
                std::size_t shown = 0;
                for (const auto len : blocks) {
                    if (++shown > 20) {
                        std::printf(" ...");
                        break;
                    }
                    std::printf(" %llu",
                                static_cast<unsigned long long>(len));
                }
                std::printf("\n\nalignment detail (first 400 columns):\n");
                print_alignment(a, pair.target.genome.flattened(),
                                pair.query.genome.flattened(), 400);
                return 0;
            }
        }
    }
    std::printf("exon covered by multiple partial blocks — inspect the "
                "MAF output of align_two_species for details\n");
    return 0;
}
