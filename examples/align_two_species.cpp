/**
 * @file
 * Full comparison workflow: align one of the paper's species pairs with
 * both Darwin-WGA (gapped filtering) and the LASTZ-like baseline
 * (ungapped filtering), report the Table III sensitivity metrics, and
 * emit MAF files for both.
 *
 *   $ ./examples/align_two_species --pair ce11-cb4 --size 200000
 *   $ ./examples/align_two_species --target t.fa --query q.fa
 *
 * When --target/--query FASTA files are given they are aligned directly
 * (no ground-truth exon metric in that case).
 */
#include <cstdio>

#include "eval/exon_eval.h"
#include "eval/sensitivity.h"
#include "seq/fasta.h"
#include "synth/species.h"
#include "util/args.h"
#include "util/strings.h"
#include "util/thread_pool.h"
#include "wga/maf.h"
#include "wga/pipeline.h"

using namespace darwin;

int
main(int argc, char** argv)
{
    ArgParser args(
        "Align a species pair with Darwin-WGA and the LASTZ-like "
        "baseline; report sensitivity metrics.");
    args.add_option("pair", "dm6-dp4",
                    "paper pair: ce11-cb4 | dm6-dp4 | dm6-droYak2 | "
                    "dm6-droSim1");
    args.add_option("size", "150000", "chromosome length (bp) per genome");
    args.add_option("chromosomes", "1", "chromosomes per genome");
    args.add_option("seed", "42", "workload generator seed");
    args.add_option("target", "", "FASTA path (overrides --pair)");
    args.add_option("query", "", "FASTA path (with --target)");
    args.add_option("threads", "0", "worker threads (0 = all cores)");
    if (!args.parse(argc, argv))
        return 1;

    ThreadPool pool(static_cast<std::size_t>(args.get_int("threads")));

    seq::Genome target, query;
    std::vector<eval::FlatExon> exons;
    if (!args.get("target").empty()) {
        target = seq::read_genome(args.get("target"));
        query = seq::read_genome(args.get("query"));
    } else {
        synth::AncestorConfig shape;
        shape.num_chromosomes =
            static_cast<std::size_t>(args.get_int("chromosomes"));
        shape.chromosome_length =
            static_cast<std::size_t>(args.get_int("size"));
        shape.exons_per_chromosome = shape.chromosome_length / 2500;
        const auto pair = synth::make_species_pair(
            synth::find_species_pair(args.get("pair")), shape,
            static_cast<std::uint64_t>(args.get_int("seed")));
        target = pair.target.genome;
        query = pair.query.genome;
        exons = eval::flatten_exons(pair.target, pair.query);
        std::printf("pair %s: %zu planted orthologous exons\n",
                    args.get("pair").c_str(), exons.size());
    }

    const wga::WgaPipeline darwin_wga(wga::WgaParams::darwin_defaults());
    const wga::WgaPipeline lastz_like(wga::WgaParams::lastz_defaults());

    std::printf("running Darwin-WGA (gapped filtering)...\n");
    const auto darwin_result = darwin_wga.run(target, query, &pool);
    std::printf("running LASTZ-like baseline (ungapped filtering)...\n");
    const auto lastz_result = lastz_like.run(target, query, &pool);

    const auto ds = eval::summarize(darwin_result);
    const auto ls = eval::summarize(lastz_result);
    std::printf("\n%-14s %12s %12s %9s\n", "metric", "LASTZ-like",
                "Darwin-WGA", "gain");
    std::printf("%-14s %12.0f %12.0f %+8.2f%%\n", "top-10 score",
                ls.chains.top_k_score, ds.chains.top_k_score,
                eval::improvement_percent(ls.chains.top_k_score,
                                          ds.chains.top_k_score));
    std::printf("%-14s %12s %12s %8.2fx\n", "matched bp",
                with_commas(ls.chains.total_matched_bases).c_str(),
                with_commas(ds.chains.total_matched_bases).c_str(),
                eval::improvement_ratio(
                    static_cast<double>(ls.chains.total_matched_bases),
                    static_cast<double>(ds.chains.total_matched_bases)));
    if (!exons.empty()) {
        const auto de = eval::count_recovered_exons(exons, darwin_result);
        const auto le = eval::count_recovered_exons(exons, lastz_result);
        std::printf("%-14s %12zu %12zu %+8.2f%%\n", "exons found",
                    le.recovered, de.recovered,
                    eval::improvement_percent(
                        static_cast<double>(le.recovered),
                        static_cast<double>(de.recovered)));
    }
    std::printf("\nruntimes: darwin=%.1fs (seed %.1f / filter %.1f / "
                "extend %.1f), lastz-like=%.1fs\n",
                darwin_result.stats.total_seconds(),
                darwin_result.stats.seed_seconds,
                darwin_result.stats.filter_seconds,
                darwin_result.stats.extend_seconds,
                lastz_result.stats.total_seconds());

    wga::write_maf_file("darwin_wga.maf", darwin_result.alignments, target,
                        query);
    wga::write_maf_file("lastz_like.maf", lastz_result.alignments, target,
                        query);
    std::printf("wrote darwin_wga.maf and lastz_like.maf\n");
    return 0;
}
