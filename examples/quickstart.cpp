/**
 * @file
 * Quickstart: synthesize a pair of related genomes, align them with the
 * Darwin-WGA pipeline, and inspect the resulting chains.
 *
 *   $ ./examples/quickstart
 *
 * This touches the three layers a typical user needs:
 *   1. darwin::synth  — make reproducible test genomes (or load FASTA
 *      with darwin::seq::read_genome),
 *   2. darwin::wga    — run the seed/filter/extend/chain pipeline,
 *   3. results        — alignments, chains, and per-stage statistics.
 */
#include <cstdio>

#include "synth/species.h"
#include "util/strings.h"
#include "util/thread_pool.h"
#include "wga/maf.h"
#include "wga/pipeline.h"

int
main()
{
    using namespace darwin;

    // 1. Build a synthetic species pair modeled on dm6 vs D. simulans
    //    (the closest pair in the paper's evaluation). Same seed -> same
    //    genomes, always.
    synth::AncestorConfig shape;
    shape.num_chromosomes = 1;
    shape.chromosome_length = 100'000;
    shape.exons_per_chromosome = 40;
    const synth::SpeciesPair pair = synth::make_species_pair(
        synth::find_species_pair("dm6-droSim1"), shape, /*seed=*/1);

    std::printf("target %s: %zu bp, query %s: %zu bp\n",
                pair.target.genome.name().c_str(),
                pair.target.genome.total_length(),
                pair.query.genome.name().c_str(),
                pair.query.genome.total_length());

    // 2. Run Darwin-WGA with the paper's default parameters.
    const wga::WgaPipeline pipeline(wga::WgaParams::darwin_defaults());
    ThreadPool pool;
    const wga::WgaResult result =
        pipeline.run(pair.target.genome, pair.query.genome, &pool);

    // 3. Look at what came out.
    std::printf("\npipeline: %zu alignments, %zu chains\n",
                result.alignments.size(), result.chains.size());
    std::printf("workload: %s seed lookups, %s filter tiles, "
                "%s extension tiles\n",
                with_commas(result.stats.seeding.seed_lookups).c_str(),
                with_commas(result.stats.filter.tiles).c_str(),
                with_commas(result.stats.extend.extension.tiles).c_str());

    std::printf("\ntop chains:\n");
    const std::size_t show = std::min<std::size_t>(5, result.chains.size());
    for (std::size_t i = 0; i < show; ++i) {
        const auto& chain = result.chains[i];
        std::printf("  #%zu score=%.0f blocks=%zu matched=%s "
                    "t[%llu,%llu)\n",
                    i + 1, chain.score, chain.size(),
                    with_commas(chain.matched_bases).c_str(),
                    static_cast<unsigned long long>(chain.target_start),
                    static_cast<unsigned long long>(chain.target_end));
    }

    // Write the raw alignments as MAF for genome-browser style tooling.
    wga::write_maf_file("quickstart.maf", result.alignments,
                        pair.target.genome, pair.query.genome);
    std::printf("\nwrote quickstart.maf\n");
    return 0;
}
