/**
 * @file
 * Parameter sweep: how the gapped-filter threshold Hf, the band width B,
 * and transition seeding trade sensitivity against filter workload.
 *
 * Section VI-B of the paper discusses exactly this dial: Hf = 3000
 * (LASTZ's default) admits too much noise (1.48% FPR), Hf = 4000 keeps
 * the sensitivity gain at 0.0007% FPR. This example reproduces the
 * sweep on a synthetic pair so users can pick their own operating point.
 *
 *   $ ./examples/sensitivity_sweep --pair dm6-dp4 --size 100000
 */
#include <cstdio>

#include "eval/sensitivity.h"
#include "synth/species.h"
#include "util/args.h"
#include "util/strings.h"
#include "util/thread_pool.h"
#include "wga/pipeline.h"

using namespace darwin;

namespace {

struct SweepRow {
    std::string label;
    wga::WgaParams params;
};

void
run_row(const SweepRow& row, const seq::Genome& target,
        const seq::Genome& query, ThreadPool& pool)
{
    const wga::WgaPipeline pipeline(row.params);
    const auto result = pipeline.run(target, query, &pool);
    const auto summary = eval::summarize(result);
    std::printf("%-26s %10s %8llu %10s %12s\n", row.label.c_str(),
                with_commas(result.stats.filter.tiles).c_str(),
                static_cast<unsigned long long>(
                    result.stats.filter.passed),
                with_commas(result.alignments.size()).c_str(),
                with_commas(summary.chains.total_matched_bases).c_str());
}

}  // namespace

int
main(int argc, char** argv)
{
    ArgParser args("Sweep filter parameters and report sensitivity.");
    args.add_option("pair", "dm6-dp4", "paper species pair");
    args.add_option("size", "100000", "chromosome length (bp)");
    args.add_option("seed", "7", "workload generator seed");
    args.add_option("threads", "0", "worker threads (0 = all cores)");
    if (!args.parse(argc, argv))
        return 1;

    synth::AncestorConfig shape;
    shape.num_chromosomes = 1;
    shape.chromosome_length = static_cast<std::size_t>(args.get_int("size"));
    shape.exons_per_chromosome = shape.chromosome_length / 2500;
    const auto pair = synth::make_species_pair(
        synth::find_species_pair(args.get("pair")), shape,
        static_cast<std::uint64_t>(args.get_int("seed")));
    ThreadPool pool(static_cast<std::size_t>(args.get_int("threads")));

    std::printf("%-26s %10s %8s %10s %12s\n", "configuration",
                "filt.tiles", "passed", "alignments", "matched bp");

    std::vector<SweepRow> rows;
    for (const align::Score hf : {3000, 3500, 4000, 5000, 6000}) {
        SweepRow row;
        row.label = strprintf("gapped Hf=%d", hf);
        row.params = wga::WgaParams::darwin_defaults();
        row.params.filter_threshold = hf;
        rows.push_back(row);
    }
    for (const std::size_t band : {8u, 16u, 32u, 64u}) {
        SweepRow row;
        row.label = strprintf("gapped band B=%zu", band);
        row.params = wga::WgaParams::darwin_defaults();
        row.params.filter_band = band;
        rows.push_back(row);
    }
    {
        SweepRow row;
        row.label = "gapped, no transitions";
        row.params = wga::WgaParams::darwin_defaults();
        row.params.dsoft.transitions = false;
        rows.push_back(row);
        SweepRow lastz;
        lastz.label = "ungapped (LASTZ-like)";
        lastz.params = wga::WgaParams::lastz_defaults();
        rows.push_back(lastz);
    }

    for (const auto& row : rows)
        run_row(row, pair.target.genome, pair.query.genome, pool);
    return 0;
}
