/**
 * @file
 * Figure 8 reproduction: phylogenetic distances (substitutions/site)
 * between the species pairs, estimated from aligned columns of the top
 * chains with the Jukes-Cantor correction (the paper uses PHAST on its
 * real alignments).
 *
 * Paper tree (pairwise path lengths, approximate): ce11-cb4 is by far
 * the most diverged pair; dm6-droSim1 the closest; dm6-droYak2 and
 * dm6-dp4 in between.
 */
#include "bench_common.h"

#include "synth/distance.h"

using namespace darwin;

int
main(int argc, char** argv)
{
    ArgParser args("Figure 8: estimated phylogenetic distances of the "
                   "four pairs.");
    bench::add_workload_options(args);
    if (!args.parse(argc, argv))
        return 1;

    ThreadPool pool;
    const wga::WgaPipeline pipeline(wga::WgaParams::darwin_defaults());

    std::printf("Figure 8: Jukes-Cantor distance over aligned columns of "
                "the top-10 chains (size=%lld bp/genome)\n\n",
                static_cast<long long>(args.get_int("size")));
    std::printf("%-14s %12s %12s %14s %16s\n", "Species pair",
                "matches", "mismatches", "JC distance",
                "neutral (model)");
    bench::rule(75);

    for (const auto& spec : synth::paper_species_pairs()) {
        const auto pair = bench::make_bench_pair(spec.pair_name, args);
        const auto result =
            pipeline.run(pair.target.genome, pair.query.genome, &pool);

        synth::AlignedColumnCounts counts;
        const std::size_t top = std::min<std::size_t>(10,
                                                      result.chains.size());
        for (std::size_t c = 0; c < top; ++c) {
            for (const std::size_t idx : result.chains[c].members) {
                const auto& cigar = result.alignments[idx].cigar;
                counts.matches += cigar.matches();
                counts.mismatches += cigar.mismatches();
            }
        }
        std::printf("%-14s %12s %12s %14.3f %16.2f\n",
                    spec.pair_name.c_str(),
                    with_commas(counts.matches).c_str(),
                    with_commas(counts.mismatches).c_str(),
                    synth::jukes_cantor_distance(counts), spec.distance);
    }
    std::printf("\nnote: aligned columns oversample conserved islands, "
                "so the JC estimate sits well below the neutral model "
                "rate — as in real WGAs, where PHAST distances describe "
                "alignable sequence only.\n");
    return 0;
}
