/**
 * @file
 * Figure 10 reproduction: GACT vs GACT-X at equal traceback memory.
 *
 * The same anchors (from the Darwin-WGA seeding + gapped filtering of a
 * distant pair) are extended with
 *   - GACT at 512 KB, 1 MB and 2 MB traceback memory (tile sizes ~1023,
 *     1447, 2047 — the full-matrix pointer store dictates the tile), and
 *   - GACT-X at its default (1920 bp tile in 1 MB).
 * Reported, normalized to GACT-X: matched base-pairs in the resulting
 * alignments (alignment quality) and throughput (aligned bp per second
 * in software, plus modeled hardware cycles per aligned bp).
 *
 * Paper: at 1 MB GACT reaches only 0.56x the matched bp and 0.66x the
 * throughput of GACT-X; even at 2 MB it stays below 1x on both.
 */
#include "bench_common.h"

#include "align/gact.h"
#include "hw/gactx_array.h"
#include "util/timer.h"

using namespace darwin;

namespace {

struct EngineResult {
    std::string label;
    std::uint64_t matched = 0;
    double seconds = 0.0;
    std::uint64_t aligned_bp = 0;
    std::uint64_t hw_cycles = 0;

    double
    bp_per_second() const
    {
        return seconds > 0 ? static_cast<double>(aligned_bp) / seconds
                           : 0.0;
    }
};

EngineResult
run_engine(const std::string& label, const align::TileAligner& aligner,
           const wga::WgaParams& params,
           std::span<const std::uint8_t> target,
           std::span<const std::uint8_t> query,
           const std::vector<wga::FilterCandidate>& candidates,
           std::size_t npe)
{
    EngineResult out;
    out.label = label;
    wga::ExtendStage stage(params, target, query);
    wga::ExtendStats stats;
    Timer timer;
    const auto alignments = stage.extend_all(candidates, aligner, &stats);
    out.seconds = timer.seconds();
    for (const auto& alignment : alignments) {
        out.matched += alignment.matched_bases();
        out.aligned_bp += alignment.target_span();
    }
    // Hardware cycles: GACT-X reports stripe columns; GACT computes the
    // full tile, ideal wavefront = cells/npe, plus the traceback walk.
    if (stats.extension.stripe_columns > 0) {
        out.hw_cycles = hw::GactXArrayModel::workload_cycles(
            stats.extension, npe);
    } else {
        out.hw_cycles = stats.extension.cells / npe +
                        stats.extension.traceback_ops +
                        stats.extension.tiles * hw::kTileSetupCycles;
    }
    return out;
}

}  // namespace

int
main(int argc, char** argv)
{
    ArgParser args("Figure 10: GACT vs GACT-X quality and throughput vs "
                   "traceback memory.");
    bench::add_workload_options(args);
    args.add_option("anchors", "200", "max anchors to extend");
    if (!args.parse(argc, argv))
        return 1;

    ThreadPool pool;
    const auto params = wga::WgaParams::darwin_defaults();

    // Fig. 10's workload is cross-species WGA "where gaps are fewer but
    // tend to be long" (§VI-D): evolve a distant pair whose indel length
    // distribution has a strong multi-kilobase tail, so that tile size
    // (i.e., traceback memory) limits which gaps an engine can bridge.
    synth::AncestorConfig shape;
    shape.num_chromosomes =
        static_cast<std::size_t>(args.get_int("chromosomes"));
    shape.chromosome_length = static_cast<std::size_t>(args.get_int("size"));
    shape.exons_per_chromosome = shape.chromosome_length / 2500;
    shape.island_mean_length = 1500;  // long islands host long gaps
    const auto spec = synth::find_species_pair("ce11-cb4");
    Rng rng(static_cast<std::uint64_t>(args.get_int("seed")));
    const auto ancestor = synth::make_ancestor(
        "fig10_anc", shape, synth::MarkovSource::genome_like(), rng);
    synth::BranchParams branch;
    branch.substitutions_per_site = spec.distance / 2.0;
    branch.indel_rate_per_site = spec.indel_rate_per_site / 2.0;
    branch.long_indel_fraction = 0.05;
    branch.long_indel_max = 2500;
    Rng t_rng = rng.fork();
    Rng q_rng = rng.fork();
    synth::SpeciesPair pair;
    pair.target = synth::evolve_genome(ancestor, "fig10_t", branch, t_rng);
    pair.query = synth::evolve_genome(ancestor, "fig10_q", branch, q_rng);

    const auto& target = pair.target.genome.flattened();
    const auto& query = pair.query.genome.flattened();
    const std::span<const std::uint8_t> ts{target.codes().data(),
                                           target.size()};
    const std::span<const std::uint8_t> qs{query.codes().data(),
                                           query.size()};

    // Derive anchors exactly as the Darwin-WGA pipeline does.
    const seed::SeedPattern pattern(params.seed_pattern);
    const seed::SeedIndex index(target, pattern);
    const seed::DsoftSeeder seeder(index, params.dsoft);
    const auto hits = seeder.seed_all(query, nullptr, &pool);
    const wga::FilterStage filter(params, ts, qs);
    auto candidates = filter.filter_all(hits, nullptr, &pool);
    const auto max_anchors =
        static_cast<std::size_t>(args.get_int("anchors"));
    if (candidates.size() > max_anchors)
        candidates.resize(max_anchors);
    std::printf("Figure 10: GACT vs GACT-X on %zu shared anchors "
                "(ce11-cb4 analogue, %lld bp/genome)\n\n",
                candidates.size(),
                static_cast<long long>(args.get_int("size")));

    std::vector<EngineResult> results;

    const align::GactXTileAligner gactx(params.gactx);
    results.push_back(run_engine("GACT-X (1MB, tile 1920)", gactx, params,
                                 ts, qs, candidates,
                                 params.gactx.num_pe));

    for (const std::uint64_t kb : {512ULL, 1024ULL, 2048ULL}) {
        align::GactParams gact_params;
        gact_params.scoring = params.scoring;
        gact_params.traceback_bytes = kb << 10;
        gact_params.overlap = params.gactx.overlap;
        const align::GactTileAligner gact(gact_params);
        results.push_back(run_engine(
            strprintf("GACT (%lluKB, tile %zu)",
                      static_cast<unsigned long long>(kb),
                      gact.tile_size()),
            gact, params, ts, qs, candidates, params.gactx.num_pe));
    }

    const auto& base = results.front();
    std::printf("%-26s %12s %9s %13s %9s %12s\n", "Engine", "matched bp",
                "quality", "sw bp/s", "sw thr.", "hw cycles/bp");
    bench::rule(90);
    for (const auto& result : results) {
        const double quality =
            base.matched ? static_cast<double>(result.matched) /
                               static_cast<double>(base.matched)
                         : 0.0;
        const double sw_thr =
            base.bp_per_second() > 0
                ? result.bp_per_second() / base.bp_per_second()
                : 0.0;
        const double base_cpb =
            base.aligned_bp
                ? static_cast<double>(base.hw_cycles) /
                      static_cast<double>(base.aligned_bp)
                : 0.0;
        const double cpb =
            result.aligned_bp
                ? static_cast<double>(result.hw_cycles) /
                      static_cast<double>(result.aligned_bp)
                : 0.0;
        std::printf("%-26s %12s %8.2fx %13s %8.2fx %9.1f (%4.2fx)\n",
                    result.label.c_str(),
                    with_commas(result.matched).c_str(), quality,
                    si_magnitude(result.bp_per_second()).c_str(), sw_thr,
                    cpb, base_cpb > 0 ? base_cpb / cpb : 0.0);
    }
    std::printf("\npaper (normalized to GACT-X): GACT@1MB quality 0.56x, "
                "throughput 0.66x; GACT@2MB still < 1x on both\n");
    return 0;
}
