/**
 * @file
 * Shared support for the per-table/figure bench binaries: workload
 * construction, pipeline runs, and the software->device workload bridge.
 *
 * Scale note: the paper's genomes are 100-140 Mbp and its software
 * baseline is a 36-thread c4.8xlarge. The benches default to megabase
 * -scale synthetic genomes (configurable via --size) and a single-thread
 * host; the BASELINE_EFFECTIVE_THREADS constant converts our measured
 * single-thread software time into a c4.8xlarge-equivalent so the
 * perf/$ and perf/W columns are comparable to the paper's.
 */
#ifndef DARWIN_BENCH_BENCH_COMMON_H
#define DARWIN_BENCH_BENCH_COMMON_H

#include <cstdio>
#include <ctime>
#include <string>

#include "hw/perf_model.h"
#include "synth/species.h"
#include "util/args.h"
#include "util/strings.h"
#include "util/thread_pool.h"
#include "wga/pipeline.h"

namespace darwin::bench {

/** 36 hardware threads at ~90% parallel efficiency (c4.8xlarge). */
inline constexpr double kBaselineEffectiveThreads = 32.4;

/** Register the options every pair-based bench shares. */
inline void
add_workload_options(ArgParser& args)
{
    args.add_option("size", "120000", "chromosome length (bp) per genome");
    args.add_option("chromosomes", "1", "chromosomes per genome");
    args.add_option("seed", "42", "workload generator seed");
    args.add_option("exon-every", "2500", "one planted exon per N bp");
}

/** Build one of the paper's species pairs at bench scale. */
inline synth::SpeciesPair
make_bench_pair(const std::string& pair_name, const ArgParser& args)
{
    synth::AncestorConfig shape;
    shape.num_chromosomes =
        static_cast<std::size_t>(args.get_int("chromosomes"));
    shape.chromosome_length =
        static_cast<std::size_t>(args.get_int("size"));
    shape.exons_per_chromosome =
        shape.chromosome_length /
        static_cast<std::size_t>(args.get_int("exon-every"));
    return synth::make_species_pair(synth::find_species_pair(pair_name),
                                    shape,
                                    static_cast<std::uint64_t>(
                                        args.get_int("seed")));
}

/** Translate one run's pipeline stats into the device workload model. */
inline hw::WorkloadCounts
to_workload(const wga::WgaResult& result, const wga::WgaParams& params)
{
    hw::WorkloadCounts workload;
    workload.seed_lookups = result.stats.seeding.seed_lookups;
    workload.filter_tiles = result.stats.filter.tiles;
    workload.filter_tile_size = params.filter_tile;
    workload.filter_band = params.filter_band;
    workload.extension_tiles = result.stats.extend.extension.tiles;
    workload.extension_tile_size = params.gactx.tile_size;
    workload.extension = result.stats.extend.extension;
    workload.seeding_software_seconds =
        result.stats.seed_seconds / kBaselineEffectiveThreads;
    return workload;
}

/** Our measured single-thread time as a c4.8xlarge-equivalent. */
inline double
as_baseline_host_seconds(double single_thread_seconds)
{
    return single_thread_seconds / kBaselineEffectiveThreads;
}

/** Print a horizontal rule sized for the bench tables. */
inline void
rule(int width = 100)
{
    for (int i = 0; i < width; ++i)
        std::fputc('-', stdout);
    std::fputc('\n', stdout);
}

// Short git revision baked in by bench/CMakeLists.txt at configure time.
#ifndef DARWIN_GIT_REV
#define DARWIN_GIT_REV "unknown"
#endif

/** Current UTC time as ISO-8601 ("2026-08-07T12:34:56Z"). */
inline std::string
iso8601_utc_now()
{
    const std::time_t now = std::time(nullptr);
    std::tm tm{};
    gmtime_r(&now, &tm);
    char buf[32];
    std::strftime(buf, sizeof(buf), "%Y-%m-%dT%H:%M:%SZ", &tm);
    return buf;
}

/**
 * Provenance fragment every bench JSON report carries:
 *   "timestamp": "<ISO-8601 UTC>", "git_rev": "<short rev>"
 * (no surrounding braces — splice it into the report object).
 */
inline std::string
json_stamp()
{
    return "\"timestamp\": \"" + iso8601_utc_now() +
           "\", \"git_rev\": \"" DARWIN_GIT_REV "\"";
}

}  // namespace darwin::bench

#endif  // DARWIN_BENCH_BENCH_COMMON_H
