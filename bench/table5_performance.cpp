/**
 * @file
 * Table V reproduction: runtimes and workload of LASTZ-like software,
 * iso-sensitive software (Darwin-WGA's own pipeline is exactly the
 * iso-sensitive software: gapped filtering in software), and the modeled
 * Darwin-WGA FPGA / ASIC accelerators; plus the perf/$ and perf/W
 * improvement columns.
 *
 * Paper reference values (100 Mbp genomes, 36-thread c4.8xlarge):
 *   pair          LASTZ   iso-sw   FPGA    ASIC   perf/$  perf/W
 *   ce11-cb4       481s   64,960s  3,823s  219s   19.1x   1478x
 *   dm6-dp4        643s  142,627s  5,936s  461s   23.2x   1547x
 *   dm6-droYak2    654s  144,454s  6,001s  469s   23.2x   1540x
 *   dm6-droSim1    557s  125,700s  4,987s  404s   24.3x   1553x
 * Our absolute seconds shrink with genome size; the factors are the
 * reproduction target.
 */
#include "bench_common.h"

#include <fstream>
#include <sstream>

#include "hw/power_model.h"

using namespace darwin;

int
main(int argc, char** argv)
{
    ArgParser args("Table V: runtimes/workload of software and modeled "
                   "accelerators.");
    bench::add_workload_options(args);
    args.add_option("json", "",
                    "also write the per-pair rows as JSON here");
    if (!args.parse(argc, argv))
        return 1;

    ThreadPool pool;
    const auto darwin_params = wga::WgaParams::darwin_defaults();
    const wga::WgaPipeline darwin_wga(darwin_params);
    const wga::WgaPipeline lastz_like(wga::WgaParams::lastz_defaults());

    const auto cpu = hw::DeviceConfig::cpu_c4_8xlarge();
    const auto fpga = hw::DeviceConfig::fpga_f1_2xlarge();
    const auto asic = hw::DeviceConfig::asic_40nm();
    const hw::PerfModel fpga_model(fpga);
    const hw::PerfModel asic_model(asic);

    std::printf("Table V: runtime and workload (size=%lld bp/genome; "
                "software seconds converted to a %0.1f-thread c4.8xlarge "
                "equivalent)\n\n",
                static_cast<long long>(args.get_int("size")),
                bench::kBaselineEffectiveThreads);
    std::printf("%-13s %9s | %9s %11s %11s | %9s %9s | %8s %9s\n",
                "Species pair", "LASTZ(s)", "seeds", "filt.tiles",
                "ext.tiles", "iso-sw(s)", "FPGA(s)", "ASIC(s)",
                "perf/$ |W");
    bench::rule(108);

    double total_sw_filter = 0.0;
    double total_fpga_filter = 0.0;
    double total_asic_filter = 0.0;

    // Modeled ASIC cycles / DRAM traffic accumulate here across pairs
    // ("hw.*" counters; see DESIGN.md "Observability").
    obs::MetricsRegistry hw_metrics;
    std::ostringstream rows_json;
    bool first_row = true;

    for (const auto& spec : synth::paper_species_pairs()) {
        const auto pair = bench::make_bench_pair(spec.pair_name, args);

        const auto lastz_result =
            lastz_like.run(pair.target.genome, pair.query.genome, &pool);
        const auto darwin_result =
            darwin_wga.run(pair.target.genome, pair.query.genome, &pool);

        const double lastz_seconds = bench::as_baseline_host_seconds(
            lastz_result.stats.total_seconds());
        const double iso_seconds = bench::as_baseline_host_seconds(
            darwin_result.stats.total_seconds());

        const auto workload = bench::to_workload(darwin_result,
                                                 darwin_params);
        const auto fpga_est = fpga_model.estimate(workload);
        const auto asic_est = asic_model.estimate(workload);

        const double perf_dollar = hw::PerfModel::perf_per_dollar_improvement(
            iso_seconds, cpu.price_per_hour, fpga_est.total_seconds,
            fpga.price_per_hour);
        const double perf_watt = hw::PerfModel::perf_per_watt_improvement(
            iso_seconds, cpu.power_w, asic_est.total_seconds,
            asic.power_w);

        total_sw_filter += bench::as_baseline_host_seconds(
            darwin_result.stats.filter_seconds);
        total_fpga_filter += fpga_est.filter.seconds();
        total_asic_filter += asic_est.filter.seconds();

        hw::publish_device_estimate(hw_metrics, asic_est, "hw.asic");
        hw::publish_device_estimate(hw_metrics, fpga_est, "hw.fpga");
        rows_json << (first_row ? "" : ",") << "\n    {\"pair\": "
                  << json_quote(spec.pair_name)
                  << ", \"lastz_seconds\": "
                  << strprintf("%.3f", lastz_seconds)
                  << ", \"iso_sw_seconds\": "
                  << strprintf("%.3f", iso_seconds)
                  << ", \"fpga_seconds\": "
                  << strprintf("%.4f", fpga_est.total_seconds)
                  << ", \"asic_seconds\": "
                  << strprintf("%.4f", asic_est.total_seconds)
                  << ", \"perf_per_dollar\": "
                  << strprintf("%.2f", perf_dollar)
                  << ", \"perf_per_watt\": "
                  << strprintf("%.1f", perf_watt) << "}";
        first_row = false;

        std::printf("%-13s %9.1f | %9s %11s %11s | %9.1f %9.2f | %8.3f "
                    "%5.0fx %5.0fx\n",
                    spec.pair_name.c_str(), lastz_seconds,
                    si_magnitude(static_cast<double>(
                        workload.seed_lookups)).c_str(),
                    si_magnitude(static_cast<double>(
                        workload.filter_tiles)).c_str(),
                    si_magnitude(static_cast<double>(
                        workload.extension_tiles)).c_str(),
                    iso_seconds, fpga_est.total_seconds,
                    asic_est.total_seconds, perf_dollar, perf_watt);
    }

    std::printf("\nmodeled device throughput at these parameters: "
                "FPGA BSW %.2fM tiles/s (paper: 6.25M), "
                "ASIC BSW %.1fM tiles/s (paper: 70M)\n",
                fpga.clock_hz * fpga.bsw_arrays /
                    static_cast<double>(hw::BswArrayModel::tile_cycles(
                        darwin_params.filter_tile, darwin_params.filter_tile,
                        fpga.bsw_pe, darwin_params.filter_band)) /
                    1e6,
                asic.clock_hz * asic.bsw_arrays /
                    static_cast<double>(hw::BswArrayModel::tile_cycles(
                        darwin_params.filter_tile, darwin_params.filter_tile,
                        asic.bsw_pe, darwin_params.filter_band)) /
                    1e6);
    // Filter-stage-only factors (the paper's §VI-C "27x perf/$ for
    // gapped filtering"). At paper scale the filter stage is 99.97% of
    // the workload (filter tiles grow quadratically with genome size via
    // random seed hits: ~146 tiles/bp at 100 Mbp vs ~0.15 tiles/bp
    // here), so the whole-pipeline factors above are diluted by our
    // small genomes; the per-stage factor is the scale-independent one.
    if (total_fpga_filter > 0.0 && total_asic_filter > 0.0) {
        std::printf("filter stage only: FPGA %.1fx perf/$ (paper: 27x), "
                    "ASIC %.0fx perf/W\n",
                    hw::PerfModel::perf_per_dollar_improvement(
                        total_sw_filter, cpu.price_per_hour,
                        total_fpga_filter, fpga.price_per_hour),
                    hw::PerfModel::perf_per_watt_improvement(
                        total_sw_filter, cpu.power_w, total_asic_filter,
                        asic.power_w));
    }
    std::printf("paper factors: FPGA 19-24x perf/$, ASIC ~1500x perf/W "
                "over iso-sensitive software (filter-dominated at 100 Mbp "
                "scale)\n");

    if (!args.get("json").empty()) {
        std::ofstream out(args.get("json"));
        if (!out) {
            std::fprintf(stderr, "cannot write %s\n",
                         args.get("json").c_str());
            return 1;
        }
        out << "{\n  " << bench::json_stamp() << ",\n"
            << "  \"genome_bp\": " << args.get_int("size") << ",\n"
            << "  \"rows\": [" << rows_json.str() << "\n  ],\n"
            << "  \"hw_metrics\": " << hw_metrics.to_json() << "\n}\n";
        std::printf("wrote %s\n", args.get("json").c_str());
    }
    return 0;
}
