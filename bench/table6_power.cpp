/**
 * @file
 * Table VI reproduction: power of the three computing platforms (DRAM
 * included) and the derived energy per workload unit.
 *
 * Paper values: CPU (c4.8xlarge) 215 W, FPGA (Virtex UltraScale+) 65 W,
 * ASIC (TSMC 40nm) 43 W.
 */
#include <cstdio>
#include <fstream>

#include "bench_common.h"
#include "hw/bsw_array.h"
#include "hw/config.h"
#include "hw/power_model.h"

using namespace darwin;

int
main(int argc, char** argv)
{
    ArgParser args("Table VI: platform power and energy per filter tile.");
    args.add_option("json", "", "also write the table as JSON here");
    if (!args.parse(argc, argv))
        return 1;

    const auto cpu = hw::DeviceConfig::cpu_c4_8xlarge();
    const auto fpga = hw::DeviceConfig::fpga_f1_2xlarge();
    const auto asic = hw::DeviceConfig::asic_40nm();

    std::printf("Table VI: platform power (DRAM included)\n\n");
    std::printf("  %-28s %9s\n", "Platform", "Power(W)");
    for (const auto* config : {&cpu, &fpga, &asic})
        std::printf("  %-28s %9.1f\n", config->name.c_str(),
                    config->power_w);
    std::printf("\npaper: 215 / 65 / 43 W\n\n");

    // Derived: energy per million filter tiles on each platform, using
    // the modeled accelerator rates and the paper's software tile rate.
    const double sw_rate = 225e3;  // Parasail, 36 threads (paper §VI-C)
    const double fpga_rate =
        fpga.clock_hz * fpga.bsw_arrays /
        static_cast<double>(
            hw::BswArrayModel::tile_cycles(320, 320, fpga.bsw_pe, 32));
    const double asic_rate =
        asic.clock_hz * asic.bsw_arrays /
        static_cast<double>(
            hw::BswArrayModel::tile_cycles(320, 320, asic.bsw_pe, 32));
    std::printf("energy per 1M gapped-filter tiles:\n");
    std::printf("  %-28s %10.1f J\n", cpu.name.c_str(),
                cpu.power_w * 1e6 / sw_rate);
    std::printf("  %-28s %10.3f J\n", fpga.name.c_str(),
                fpga.power_w * 1e6 / fpga_rate);
    std::printf("  %-28s %10.3f J\n", asic.name.c_str(),
                asic.power_w * 1e6 / asic_rate);

    if (!args.get("json").empty()) {
        std::ofstream out(args.get("json"));
        if (!out) {
            std::fprintf(stderr, "cannot write %s\n",
                         args.get("json").c_str());
            return 1;
        }
        out << "{\n  " << bench::json_stamp() << ",\n"
            << "  \"platforms\": [\n";
        const struct {
            const hw::DeviceConfig* config;
            double rate;
        } rows[] = {{&cpu, sw_rate}, {&fpga, fpga_rate}, {&asic, asic_rate}};
        for (std::size_t i = 0; i < 3; ++i) {
            out << "    {\"platform\": " << json_quote(rows[i].config->name)
                << ", \"power_w\": "
                << strprintf("%.1f", rows[i].config->power_w)
                << ", \"joules_per_1m_filter_tiles\": "
                << strprintf("%.3f",
                             rows[i].config->power_w * 1e6 / rows[i].rate)
                << "}" << (i + 1 < 3 ? "," : "") << "\n";
        }
        out << "  ]\n}\n";
        std::printf("wrote %s\n", args.get("json").c_str());
    }
    return 0;
}
