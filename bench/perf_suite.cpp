/**
 * @file
 * Perf trajectory suite: one command that captures the repo's headline
 * performance numbers at fixed sizes and seeds and writes them as a
 * single machine-readable report (`BENCH_10.json` at the repo root by
 * convention), so successive PRs leave a comparable speedup trail.
 *
 * Seven sections:
 *   micro_kernels       the google-benchmark kernel microbenches, run as
 *                       a subprocess with --benchmark_format=json
 *   batch_throughput    serial-vs-batch-engine wall clock, run as a
 *                       subprocess at a fixed manifest (4 pairs x 40 kb)
 *   index_reuse         in-process: per-pair seeding-stage latency on a
 *                       10-query-one-target workload, rebuilding the
 *                       seed index per pair vs reusing one mmap-loaded
 *                       persistent index (the darwin-wga-serve hot path)
 *   telemetry_overhead  in-process: served-align latency with the PR-7
 *                       telemetry stack fully armed (flight recorder,
 *                       slow-request accounting, a 1 Hz Prometheus
 *                       scraper thread) vs telemetry off, on identical
 *                       requests against a shared persistent index
 *   backend_batch       in-process: a fixed-seed GACT-X tile pool run
 *                       one-at-a-time through the single-tile façade
 *                       (single thread) vs staged in bounded batches
 *                       through the cpu-simd backend over a thread
 *                       pool, in tiles/sec — results asserted
 *                       bit-identical
 *   bounded_memory      in-process: one synthetic pair aligned by the
 *                       in-RAM byte pipeline vs the out-of-core
 *                       streaming dataflow (2-bit packed genomes,
 *                       sharded seeding, spill-backed hit/candidate
 *                       channels) under an armed per-pair heap budget
 *                       — MAF bytes asserted identical, the dataflow's
 *                       fixed residency gated at 16 MiB, streaming
 *                       extension throughput gated against the in-RAM
 *                       arm
 *   overload            in-process: a one-worker server with a shallow
 *                       admission queue floods with ~4x the aligns it
 *                       can hold — serves some, sheds the rest with
 *                       retry_after_ms hints, and keeps accepted p99
 *                       bounded — then budget-doomed requests trip the
 *                       circuit breaker and the next align is served
 *                       degraded
 *
 * Five sections assert acceptance bars and make the suite exit nonzero
 * when missed, so CI can gate on them: index_reuse must cut per-pair
 * seeding latency by at least 5x, telemetry_overhead must stay under 2%
 * (and leave the served MAF byte-identical), backend_batch must reach
 * at least 1.3x serial tile throughput, bounded_memory must finish
 * under its armed heap budget with byte-identical MAF, at most 16 MiB
 * of fixed dataflow residency, and no worse than 0.3x the in-RAM
 * pipeline's tiles/sec, and overload must answer every flooded request
 * (some shed with a positive retry hint) and serve degraded after a
 * breaker trip.
 *
 *   perf_suite --out BENCH_10.json
 */
#include "bench_common.h"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <limits>
#include <mutex>
#include <span>
#include <sstream>
#include <thread>

#include "align/batch.h"
#include "align/gactx.h"
#include "align/kernels/gactx_kernels.h"

#include "fault/cancel.h"
#include "index/index_io.h"
#include "obs/exposition.h"
#include "obs/flight_recorder.h"
#include "obs/trace.h"
#include "seed/dsoft.h"
#include "seed/seed_index.h"
#include "seq/fasta.h"
#include "serve/server.h"
#include "util/logging.h"
#include "util/rng.h"
#include "util/timer.h"
#include "wga/maf.h"

using namespace darwin;

namespace {

/** Run one sibling bench binary and capture its stdout (JSON). */
std::string
run_capture(const std::string& command)
{
    std::fprintf(stderr, "perf_suite: running %s\n", command.c_str());
    FILE* pipe = ::popen(command.c_str(), "r");
    if (pipe == nullptr)
        fatal(strprintf("cannot spawn: %s", command.c_str()));
    std::string output;
    char chunk[4096];
    std::size_t n = 0;
    while ((n = std::fread(chunk, 1, sizeof(chunk), pipe)) > 0)
        output.append(chunk, n);
    const int status = ::pclose(pipe);
    if (status != 0)
        fatal(strprintf("command failed (status %d): %s", status,
                        command.c_str()));
    if (output.empty())
        fatal(strprintf("empty-output: %s exited 0 but wrote nothing "
                        "(crashed before its report?)",
                        command.c_str()));
    // Trim to the JSON object so the capture embeds cleanly.
    const std::size_t brace = output.find('{');
    if (brace == std::string::npos)
        fatal(strprintf("no JSON in output of: %s", command.c_str()));
    return output.substr(brace);
}

struct IndexReuseReport {
    std::size_t target_bp = 0;
    std::size_t query_bp = 0;
    std::size_t queries = 0;
    double build_seconds = 0.0;
    double save_seconds = 0.0;
    double mmap_load_seconds = 0.0;
    std::uint64_t index_bytes = 0;
    double rebuild_total = 0.0;
    double cached_total = 0.0;
    bool identical_hits = true;

    double speedup() const
    {
        return cached_total > 0.0 ? rebuild_total / cached_total : 0.0;
    }
};

/**
 * The serve-daemon workload in miniature: ten queries against one
 * target, comparing seeding-stage latency (index acquisition + D-SOFT)
 * when every pair rebuilds the table vs when all pairs share one
 * mmap-loaded persistent index.
 */
IndexReuseReport
run_index_reuse(std::size_t target_bp, std::size_t query_bp,
                std::size_t num_queries, std::uint64_t seed)
{
    const auto params = wga::WgaParams::darwin_defaults();
    synth::AncestorConfig target_shape;
    target_shape.num_chromosomes = 1;
    target_shape.chromosome_length = target_bp;
    target_shape.exons_per_chromosome = target_bp / 2'500;
    synth::AncestorConfig query_shape = target_shape;
    query_shape.chromosome_length = query_bp;
    query_shape.exons_per_chromosome = query_bp / 2'500;

    // One reference target plus independently evolved query genomes —
    // the serve-daemon shape, where many (smaller) queries arrive for
    // one resident reference. Homology doesn't matter here: seeding
    // *latency* is what this measures, and lookups cost the same
    // either way.
    const auto spec = synth::paper_species_pairs().front();
    const auto target_pair =
        synth::make_species_pair(spec, target_shape, seed);
    std::vector<synth::SpeciesPair> pairs;
    for (std::size_t q = 0; q < num_queries; ++q)
        pairs.push_back(
            synth::make_species_pair(spec, query_shape, seed + 1 + q));
    const seq::Sequence& target = target_pair.target.genome.flattened();

    IndexReuseReport report;
    report.target_bp = target.size();
    report.query_bp = query_bp;
    report.queries = num_queries;

    const seed::SeedPattern pattern(params.seed_pattern);
    Timer timer;
    const seed::SeedIndex built(target, pattern);
    report.build_seconds = timer.seconds();

    const std::string dwi =
        (std::filesystem::temp_directory_path() / "perf_suite_target.dwi")
            .string();
    timer.reset();
    index::save_index(dwi, built, index::sequence_digest(target),
                      target.size());
    report.save_seconds = timer.seconds();
    report.index_bytes = std::filesystem::file_size(dwi);

    timer.reset();
    const auto mapped = index::load_index(dwi);
    report.mmap_load_seconds = timer.seconds();

    // Rebuild-per-pair: what the pipeline did before src/index/ — every
    // query pays the full table construction again.
    for (const auto& pair : pairs) {
        const seq::Sequence& query = pair.query.genome.flattened();
        Timer per_pair;
        const seed::SeedIndex fresh(target, pattern);
        seed::DsoftSeeder(fresh, params.dsoft).seed_all(query);
        report.rebuild_total += per_pair.seconds();
    }

    // Shared persistent index: acquisition is free after the first load.
    for (const auto& pair : pairs) {
        const seq::Sequence& query = pair.query.genome.flattened();
        Timer per_pair;
        const auto hits =
            seed::DsoftSeeder(*mapped, params.dsoft).seed_all(query);
        report.cached_total += per_pair.seconds();
        // The mapped index must seed bit-identically to a fresh build.
        const auto reference =
            seed::DsoftSeeder(built, params.dsoft).seed_all(query);
        if (hits != reference)
            report.identical_hits = false;
    }

    std::filesystem::remove(dwi);
    return report;
}

struct TelemetryOverheadReport {
    std::size_t requests = 0;      // timed aligns per arm
    double off_seconds = 0.0;      // best single-request latency
    double on_seconds = 0.0;
    bool identical_output = true;

    double overhead() const
    {
        return off_seconds > 0.0
                   ? (on_seconds - off_seconds) / off_seconds
                   : 0.0;
    }
};

/** Reads a whole file as bytes (empty when missing). */
std::string
slurp_file(const std::string& path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
}

/**
 * The cost of watching: identical align requests served in-process
 * against one persistent index, with no observers vs with the full
 * telemetry stack live — a flight recorder catching every span,
 * slow-request accounting enabled, and a thread rendering the
 * Prometheus exposition at 1 Hz the way an external scraper would.
 * The statistic is the best single-request latency over interleaved
 * passes of each arm: per-pass totals on a shared machine swing by
 * more than the instrumentation could ever cost, while the fastest
 * request an arm can produce is stable and still bounds the telemetry
 * tax from above (telemetry can only add work to a request).
 */
TelemetryOverheadReport
run_telemetry_overhead(std::size_t pair_bp, std::size_t num_requests,
                       std::uint64_t seed)
{
    synth::AncestorConfig shape;
    shape.num_chromosomes = 1;
    shape.chromosome_length = pair_bp;
    shape.exons_per_chromosome = pair_bp / 2'500;
    const auto pair = synth::make_species_pair(
        synth::paper_species_pairs().front(), shape, seed);

    const std::string dir =
        std::filesystem::temp_directory_path().string();
    const std::string target_fa = dir + "/perf_suite_telemetry_t.fa";
    const std::string query_fa = dir + "/perf_suite_telemetry_q.fa";
    const std::string dwi = dir + "/perf_suite_telemetry.dwi";
    seq::write_genome_file(target_fa, pair.target.genome);
    seq::write_genome_file(query_fa, pair.query.genome);
    {
        const auto params = wga::WgaParams::darwin_defaults();
        const seq::Sequence& target = pair.target.genome.flattened();
        const seed::SeedIndex index(target,
                                    seed::SeedPattern(params.seed_pattern));
        index::save_index(dwi, index, index::sequence_digest(target),
                          target.size());
    }

    // One pass: a fresh Server answers num_requests identical aligns
    // (plus one warm-up that faults in the index cache); returns the
    // wall clock of the timed loop.
    const auto run_pass = [&](bool telemetry, const std::string& out) {
        std::unique_ptr<obs::FlightRecorder> flight;
        serve::ServerOptions options;
        if (telemetry) {
            flight = std::make_unique<obs::FlightRecorder>(8192);
            obs::TraceSession::install(flight.get());
            // Threshold high enough that the accounting runs on every
            // request but the log line itself never fires.
            options.slow_request_seconds = 3600.0;
        }
        serve::Server server(options);
        if (telemetry)
            server.set_trace_session(flight.get());

        std::mutex scrape_mutex;
        std::condition_variable scrape_cv;
        bool scrape_stop = false;
        std::thread scraper;
        if (telemetry) {
            scraper = std::thread([&] {
                std::unique_lock<std::mutex> lock(scrape_mutex);
                while (!scrape_cv.wait_for(lock, std::chrono::seconds(1),
                                           [&] { return scrape_stop; }))
                    (void)obs::to_prometheus(server.metrics());
            });
        }

        const std::string line = strprintf(
            "{\"op\": \"align\", \"id\": \"bench\", \"target\": %s, "
            "\"query\": %s, \"out\": %s, \"index\": %s}",
            json_quote(target_fa).c_str(), json_quote(query_fa).c_str(),
            json_quote(out).c_str(), json_quote(dwi).c_str());
        (void)server.handle_line(line);  // warm-up; loads the index

        double best = 0.0;
        for (std::size_t r = 0; r < num_requests; ++r) {
            Timer timer;
            const std::string response = server.handle_line(line);
            const double seconds = timer.seconds();
            if (response.find("\"status\": \"ok\"") == std::string::npos)
                fatal(strprintf("telemetry_overhead align failed: %s",
                                response.c_str()));
            if (best == 0.0 || seconds < best)
                best = seconds;
        }
        std::fprintf(stderr,
                     "telemetry_overhead: pass %s best request %.4fs\n",
                     telemetry ? "on " : "off", best);

        if (telemetry) {
            {
                std::lock_guard<std::mutex> lock(scrape_mutex);
                scrape_stop = true;
            }
            scrape_cv.notify_all();
            scraper.join();
            server.set_trace_session(nullptr);
            obs::TraceSession::install(nullptr);
        }
        return best;
    };

    TelemetryOverheadReport report;
    report.requests = num_requests;
    const std::string out_off = dir + "/perf_suite_telemetry_off.maf";
    const std::string out_on = dir + "/perf_suite_telemetry_on.maf";
    (void)run_pass(false, out_off);  // global warm-up pass
    for (int round = 0; round < 5; ++round) {
        const double off = run_pass(false, out_off);
        const double on = run_pass(true, out_on);
        if (report.off_seconds == 0.0 || off < report.off_seconds)
            report.off_seconds = off;
        if (report.on_seconds == 0.0 || on < report.on_seconds)
            report.on_seconds = on;
    }

    const std::string off_bytes = slurp_file(out_off);
    report.identical_output =
        !off_bytes.empty() && off_bytes == slurp_file(out_on);

    for (const auto& path :
         {target_fa, query_fa, dwi, out_off, out_on})
        std::filesystem::remove(path);
    return report;
}

struct BackendBatchReport {
    std::size_t tiles = 0;
    std::size_t tile_bp = 0;
    std::size_t threads = 0;
    std::size_t flush_tiles = 0;
    std::size_t dead_tiles = 0;         // candidates that die on x-drop
    std::uint64_t score_only_hits = 0;  // probe pass skips, batched arm
    double serial_seconds = 0.0;   // best pass, one-at-a-time façade
    double batched_seconds = 0.0;  // best pass, cpu-simd backend + pool
    bool identical_results = true;

    double serial_tiles_per_sec() const
    {
        return serial_seconds > 0.0
                   ? static_cast<double>(tiles) / serial_seconds
                   : 0.0;
    }
    double batched_tiles_per_sec() const
    {
        return batched_seconds > 0.0
                   ? static_cast<double>(tiles) / batched_seconds
                   : 0.0;
    }
    double speedup() const
    {
        return batched_seconds > 0.0 ? serial_seconds / batched_seconds
                                     : 0.0;
    }
};

/**
 * Batched-backend tile throughput in the extension stage's dominant
 * regime: a candidate pool where most tiles are noise. The seed filter
 * forwards far more tile pairs than survive — the paper's sensitivity
 * story rests on probing many candidates of which the bulk die on the
 * X-drop immediately (max_score == 0, empty CIGAR). The pool
 * reproduces that deterministically: 1 tile in 8 is a true homologous
 * (aligned-offset) pair, the other 7 are unrelated-window candidates
 * rejection-sampled to actually die, so the dead fraction is exact.
 *
 * The serial arm runs every tile one-at-a-time through
 * GactXTileAligner::align_tile (the serial-dispatch baseline every
 * backend must match bit-for-bit, full traceback per tile). The
 * batched arm stages the same tiles in bounded flushes through the
 * cpu-simd backend with the score-only probe enabled: dead tiles are
 * retired from the probe result alone and never touch the traceback
 * machinery. Best of three interleaved passes per arm, like
 * telemetry_overhead: per-pass wall time on a shared machine swings
 * more than the batching win.
 */
BackendBatchReport
run_backend_batch(std::size_t num_tiles, std::size_t tile_bp,
                  std::size_t threads, std::uint64_t seed)
{
    synth::AncestorConfig shape;
    shape.num_chromosomes = 1;
    shape.chromosome_length = std::max<std::size_t>(tile_bp * 4, 20'000);
    shape.exons_per_chromosome = shape.chromosome_length / 2'500;
    const auto pair = synth::make_species_pair(
        synth::paper_species_pairs().front(), shape, seed);
    const auto& t = pair.target.genome.chromosome(0).codes();
    const auto& q = pair.query.genome.chromosome(0).codes();

    BackendBatchReport report;
    report.tile_bp = tile_bp;
    report.threads = threads;
    report.flush_tiles = wga::WgaParams{}.batch_flush_tiles;

    const align::GactXParams params;

    // (target offset, query offset) per tile; a fixed Rng makes the
    // pool identical across runs. Dead candidates are classified with
    // the scalar score-only kernel at setup (outside the timed loops);
    // the sample cap only matters if the genome were so self-similar
    // that dead windows are rare, and merely dilutes the dead fraction.
    Rng rng(seed);
    std::vector<std::pair<std::size_t, std::size_t>> tiles;
    const std::size_t lim = std::min(t.size(), q.size()) - tile_bp;
    const auto window = [&](const std::vector<std::uint8_t>& codes,
                            std::size_t off) {
        return std::span<const std::uint8_t>{codes.data() + off, tile_bp};
    };
    std::size_t samples_left = 64 * num_tiles;
    for (std::size_t i = 0; i < num_tiles; ++i) {
        if (i % 8 == 0) {
            const std::size_t off =
                rng.uniform(static_cast<std::uint32_t>(lim));
            tiles.emplace_back(off, off);
            continue;
        }
        for (;;) {
            const std::size_t toff =
                rng.uniform(static_cast<std::uint32_t>(lim));
            const std::size_t qoff =
                rng.uniform(static_cast<std::uint32_t>(lim));
            const bool dead =
                samples_left > 0 &&
                align::kernels::gactx_wavefront_scalar_score_only(
                    window(t, toff), window(q, qoff), params)
                        .max_score == 0;
            if (samples_left > 0)
                --samples_left;
            if (dead || samples_left == 0) {
                tiles.emplace_back(toff, qoff);
                if (dead)
                    ++report.dead_tiles;
                break;
            }
        }
    }
    report.tiles = tiles.size();

    const align::GactXTileAligner aligner(params);
    const align::AlignBackend* backend = align::cpu_simd_backend();
    ThreadPool pool(threads);

    std::vector<align::TileResult> serial_out(tiles.size());
    std::vector<align::TileResult> batched_out(tiles.size());
    const auto target_span = [&](std::size_t i) {
        return window(t, tiles[i].first);
    };
    const auto query_span = [&](std::size_t i) {
        return window(q, tiles[i].second);
    };

    report.serial_seconds = std::numeric_limits<double>::max();
    report.batched_seconds = std::numeric_limits<double>::max();
    for (int pass = 0; pass < 3; ++pass) {
        Timer timer;
        for (std::size_t i = 0; i < tiles.size(); ++i)
            serial_out[i] =
                aligner.align_tile(target_span(i), query_span(i));
        report.serial_seconds =
            std::min(report.serial_seconds, timer.seconds());

        timer.reset();
        align::BatchOptions options;
        options.pool = &pool;
        options.probe_score_only = true;
        align::BatchExecStats stats;
        align::TileBatch batch;
        std::size_t flush_base = 0;
        const auto flush = [&]() {
            if (batch.empty())
                return;
            backend->gactx_batch(batch, params, options,
                                 {batched_out.data() + flush_base,
                                  batch.size()},
                                 &stats);
            flush_base += batch.size();
            batch.clear();
        };
        for (std::size_t i = 0; i < tiles.size(); ++i) {
            batch.push(target_span(i), query_span(i));
            if (batch.size() >= report.flush_tiles)
                flush();
        }
        flush();
        report.batched_seconds =
            std::min(report.batched_seconds, timer.seconds());
        report.score_only_hits = stats.score_only_hits;
    }

    for (std::size_t i = 0; i < tiles.size(); ++i) {
        if (serial_out[i].max_score != batched_out[i].max_score ||
            serial_out[i].cells_computed !=
                batched_out[i].cells_computed ||
            serial_out[i].cigar.to_string() !=
                batched_out[i].cigar.to_string())
            report.identical_results = false;
    }
    return report;
}

struct BoundedMemoryReport {
    std::size_t pair_bp = 0;
    std::uint64_t budget_bytes = 0;
    std::uint64_t shard_bp = 0;
    std::uint64_t charged_bytes = 0;   // cumulative transient estimate
    std::uint64_t residency_bytes = 0; // fixed dataflow buffers (gauges)
    std::uint64_t spilled_bytes = 0;   // overflow that went to disk
    std::uint64_t spill_episodes = 0;
    std::uint64_t num_shards = 0;
    double inram_seconds = 0.0;
    double streaming_seconds = 0.0;
    std::uint64_t extension_tiles = 0;
    bool identical_maf = false;
    bool under_budget = false;  // completed without a heap cancellation

    double inram_tiles_per_sec() const
    {
        return inram_seconds > 0.0
                   ? static_cast<double>(extension_tiles) / inram_seconds
                   : 0.0;
    }
    double streaming_tiles_per_sec() const
    {
        return streaming_seconds > 0.0
                   ? static_cast<double>(extension_tiles) /
                         streaming_seconds
                   : 0.0;
    }
    double relative_throughput() const
    {
        return inram_tiles_per_sec() > 0.0
                   ? streaming_tiles_per_sec() / inram_tiles_per_sec()
                   : 0.0;
    }
};

/**
 * The out-of-core claim, measured: the same pair aligned by the in-RAM
 * byte pipeline and by run_streaming with the shard size forced small
 * enough that several shard tables come and go, under a CancelToken
 * armed with the heap budget. The budget is *enforced*, not observed —
 * an overrun cancels the run mid-flight and the section fails — and
 * the MAF bytes of the two arms must match exactly. The tiles/sec gate
 * catches the failure mode bounded residency invites: a dataflow that
 * stays under budget by re-reading or re-computing its way to a crawl.
 *
 * Two memory axes are reported (DESIGN.md §13): residency_bytes is the
 * streaming dataflow's fixed in-memory footprint (the wga.heap.*
 * gauges — hit channel window + candidate chunk) and is gated hard at
 * 16 MiB regardless of genome size; charged_bytes is the CancelToken's
 * cumulative transient-allocation estimate, dominated by per-tile
 * extension traceback and therefore proportional to aligned bases —
 * the budget must be calibrated to the workload, and the default here
 * covers the default pair size with headroom.
 */
BoundedMemoryReport
run_bounded_memory(std::size_t pair_bp, std::uint64_t budget_mb,
                   std::uint64_t shard_bp, std::uint64_t seed)
{
    synth::AncestorConfig shape;
    shape.num_chromosomes = 1;
    shape.chromosome_length = pair_bp;
    shape.exons_per_chromosome = pair_bp / 2'500;
    const auto pair = synth::make_species_pair(
        synth::paper_species_pairs().front(), shape, seed);

    BoundedMemoryReport report;
    report.pair_bp = pair_bp;
    report.budget_bytes = budget_mb << 20;
    report.shard_bp = shard_bp;

    const auto params = wga::WgaParams::darwin_defaults();
    const wga::WgaPipeline pipeline(params);

    Timer timer;
    const wga::WgaResult inram =
        pipeline.run(pair.target.genome, pair.query.genome);
    report.inram_seconds = timer.seconds();
    report.extension_tiles = inram.stats.extend.extension.tiles;

    wga::StreamingParams sp;
    sp.shard_bp = shard_bp;
    wga::WgaResult streamed;
    obs::MetricsRegistry metrics;
    fault::CancelToken token;
    fault::Budget budget;
    budget.max_heap_bytes = report.budget_bytes;
    token.arm(budget);
    {
        const fault::ContextScope scope(&token, 0);
        timer.reset();
        try {
            streamed = pipeline.run_streaming(pair.target.genome,
                                              pair.query.genome, sp,
                                              nullptr, &metrics);
            report.under_budget = true;
        } catch (const fault::CancelledError& error) {
            std::fprintf(stderr,
                         "bounded_memory: heap budget overrun at probe "
                         "%s\n",
                         error.probe().c_str());
        }
        report.streaming_seconds = timer.seconds();
    }
    report.charged_bytes = token.heap_bytes_charged();
    const auto gauge = [&metrics](const char* name) {
        const auto* g = metrics.find_gauge(name);
        return static_cast<std::uint64_t>(g != nullptr ? g->value() : 0);
    };
    report.spilled_bytes = gauge("wga.heap.spilled_bytes");
    report.spill_episodes = gauge("wga.heap.spill_episodes");
    report.residency_bytes = gauge("wga.heap.hit_stream_bytes") +
                             gauge("wga.heap.candidate_buffer_bytes");
    report.num_shards = (pair.target.genome.flattened().size() +
                         shard_bp - 1) / shard_bp;

    if (report.under_budget) {
        std::ostringstream a;
        std::ostringstream b;
        wga::write_maf(a, inram.alignments, pair.target.genome,
                       pair.query.genome);
        wga::write_maf(b, streamed.alignments, pair.target.genome,
                       pair.query.genome);
        report.identical_maf = a.str() == b.str() && !a.str().empty();
    }
    return report;
}

struct OverloadReport {
    std::size_t pair_bp = 0;
    std::size_t burst = 0;        ///< aligns submitted at once
    std::size_t accepted = 0;     ///< admitted and served
    std::size_t shed = 0;         ///< answered "overloaded"
    std::int64_t retry_after_ms = 0;  ///< hint on the first shed
    double p99_accepted_seconds = 0.0;
    std::uint64_t breaker_trips = 0;
    bool degraded_served = false;

    bool every_request_answered() const
    {
        return accepted + shed == burst;
    }
};

/**
 * Overload behavior under a flood: a one-worker server with a shallow
 * admission queue takes `burst` concurrent aligns — roughly 4x what it
 * can queue — and the section records how many were served vs shed,
 * the retry_after_ms hint sheds carried, and the p99 latency of the
 * *accepted* requests (the point of shedding is that admitted work
 * stays fast). A second, tiny phase trips the circuit breaker with
 * budget-doomed requests and confirms the next align is served
 * degraded. Gates: every request answered, at least one shed with a
 * positive hint, and the breaker trip leads to a degraded serve.
 */
OverloadReport
run_overload(std::size_t pair_bp, std::size_t burst, std::uint64_t seed)
{
    synth::AncestorConfig shape;
    shape.num_chromosomes = 1;
    shape.chromosome_length = pair_bp;
    shape.exons_per_chromosome = pair_bp / 2'500;
    const auto pair = synth::make_species_pair(
        synth::paper_species_pairs().front(), shape, seed);

    const std::string dir =
        std::filesystem::temp_directory_path().string();
    const std::string target_fa = dir + "/perf_suite_overload_t.fa";
    const std::string query_fa = dir + "/perf_suite_overload_q.fa";
    const std::string dwi = dir + "/perf_suite_overload.dwi";
    seq::write_genome_file(target_fa, pair.target.genome);
    seq::write_genome_file(query_fa, pair.query.genome);
    {
        const auto params = wga::WgaParams::darwin_defaults();
        const seq::Sequence& target = pair.target.genome.flattened();
        const seed::SeedIndex index(
            target, seed::SeedPattern(params.seed_pattern));
        index::save_index(dwi, index, index::sequence_digest(target),
                          target.size());
    }

    OverloadReport report;
    report.pair_bp = pair_bp;
    report.burst = burst;

    const auto align_line = [&](const std::string& id,
                                const std::string& out,
                                const std::string& extra) {
        return strprintf(
            "{\"op\": \"align\", \"id\": %s, \"target\": %s, "
            "\"query\": %s, \"out\": %s, \"index\": %s%s}",
            json_quote(id).c_str(), json_quote(target_fa).c_str(),
            json_quote(query_fa).c_str(), json_quote(out).c_str(),
            json_quote(dwi).c_str(), extra.c_str());
    };

    // Phase 1: the flood. One worker, room for three queued aligns.
    {
        serve::ServerOptions options;
        options.num_workers = 1;
        options.max_queue = 3;
        serve::Server server(options);
        // Warm the genome and index caches so flood latencies measure
        // alignment, not first-touch file I/O.
        (void)server.handle_line(
            align_line("warm", dir + "/perf_suite_overload_warm.maf", ""));

        std::mutex mutex;
        std::condition_variable cv;
        std::size_t answered = 0;
        std::vector<double> accepted_seconds;
        Timer flood_timer;
        for (std::size_t r = 0; r < burst; ++r) {
            const std::string out = strprintf(
                "%s/perf_suite_overload_%zu.maf", dir.c_str(), r);
            server.submit(
                align_line(strprintf("f%zu", r), out, ""),
                [&, submitted = flood_timer.seconds()](
                    const std::string& response) {
                    std::lock_guard<std::mutex> lock(mutex);
                    ++answered;
                    if (response.find("\"reason\": \"overloaded\"") !=
                        std::string::npos) {
                        ++report.shed;
                        const auto key =
                            response.find("\"retry_after_ms\": ");
                        if (report.retry_after_ms == 0 &&
                            key != std::string::npos)
                            report.retry_after_ms = std::atoll(
                                response.c_str() + key + 18);
                    } else if (response.find("\"status\": \"ok\"") !=
                               std::string::npos) {
                        ++report.accepted;
                        accepted_seconds.push_back(
                            flood_timer.seconds() - submitted);
                    }
                    cv.notify_all();
                });
        }
        std::unique_lock<std::mutex> lock(mutex);
        cv.wait(lock, [&] { return answered == burst; });
        if (!accepted_seconds.empty()) {
            std::sort(accepted_seconds.begin(), accepted_seconds.end());
            const std::size_t at = std::min(
                accepted_seconds.size() - 1,
                static_cast<std::size_t>(
                    0.99 * static_cast<double>(accepted_seconds.size())));
            report.p99_accepted_seconds = accepted_seconds[at];
        }
        lock.unlock();
        server.stop();
    }

    // Phase 2: trip the breaker, then confirm degraded service.
    {
        serve::ServerOptions options;
        options.breaker.window = 4;
        options.breaker.min_samples = 2;
        options.breaker.trip_ratio = 0.5;
        options.breaker.cooldown_seconds = 3600.0;
        serve::Server server(options);
        for (int i = 0; i < 2; ++i)
            (void)server.handle_line(align_line(
                strprintf("doom%d", i),
                dir + "/perf_suite_overload_doom.maf",
                ", \"budget\": {\"max_cells\": 1}"));
        if (const auto* trips =
                server.metrics().find_counter("serve.breaker.trips"))
            report.breaker_trips = trips->value();
        const std::string response = server.handle_line(align_line(
            "degraded", dir + "/perf_suite_overload_degraded.maf", ""));
        report.degraded_served =
            response.find("\"status\": \"ok\"") != std::string::npos &&
            response.find("\"degraded\": true") != std::string::npos;
        server.stop();
    }

    std::filesystem::remove(target_fa);
    std::filesystem::remove(query_fa);
    std::filesystem::remove(dwi);
    for (const auto& entry : std::filesystem::directory_iterator(dir))
        if (entry.path().filename().string().rfind(
                "perf_suite_overload_", 0) == 0)
            std::filesystem::remove(entry.path());
    return report;
}

int
run_suite(const ArgParser& args, const char* argv0)
{
    // Sibling bench binaries live next to this one.
    const std::string bin_dir =
        std::filesystem::absolute(argv0).parent_path().string();

    std::string micro_json = "null";
    if (!args.get_flag("skip-micro")) {
        micro_json = run_capture(
            strprintf("'%s/micro_kernels' --benchmark_format=json "
                      "--benchmark_min_time=0.05 2>/dev/null",
                      bin_dir.c_str()));
    }

    const std::string batch_json = run_capture(strprintf(
        "'%s/batch_throughput' --threads %lld --size %lld "
        "--seeds-per-pair 1 --seed %lld 2>/dev/null",
        bin_dir.c_str(), static_cast<long long>(args.get_int("threads")),
        static_cast<long long>(args.get_int("batch-bp")),
        static_cast<long long>(args.get_int("seed"))));

    const IndexReuseReport reuse = run_index_reuse(
        static_cast<std::size_t>(args.get_int("reuse-bp")),
        static_cast<std::size_t>(args.get_int("reuse-query-bp")),
        static_cast<std::size_t>(args.get_int("reuse-queries")),
        static_cast<std::uint64_t>(args.get_int("seed")));
    const double per_pair_rebuild =
        reuse.rebuild_total / static_cast<double>(reuse.queries);
    const double per_pair_cached =
        reuse.cached_total / static_cast<double>(reuse.queries);
    std::fprintf(stderr,
                 "index_reuse: rebuild %.4fs/pair, cached %.4fs/pair "
                 "(%.1fx) over %zu queries x %zu bp\n",
                 per_pair_rebuild, per_pair_cached, reuse.speedup(),
                 reuse.queries, reuse.target_bp);

    const TelemetryOverheadReport telemetry = run_telemetry_overhead(
        static_cast<std::size_t>(args.get_int("telemetry-bp")),
        static_cast<std::size_t>(args.get_int("telemetry-requests")),
        static_cast<std::uint64_t>(args.get_int("seed")));
    std::fprintf(stderr,
                 "telemetry_overhead: best request off %.4fs, on %.4fs "
                 "(%+.2f%%)\n",
                 telemetry.off_seconds, telemetry.on_seconds,
                 telemetry.overhead() * 100.0);

    const BackendBatchReport batched = run_backend_batch(
        static_cast<std::size_t>(args.get_int("backend-tiles")),
        static_cast<std::size_t>(args.get_int("backend-tile-bp")),
        static_cast<std::size_t>(args.get_int("threads")),
        static_cast<std::uint64_t>(args.get_int("seed")));
    std::fprintf(stderr,
                 "backend_batch: serial %.0f tiles/s, batched %.0f "
                 "tiles/s (%.2fx) over %zu tiles x %zu bp (%zu dead, "
                 "%llu probe hits)\n",
                 batched.serial_tiles_per_sec(),
                 batched.batched_tiles_per_sec(), batched.speedup(),
                 batched.tiles, batched.tile_bp, batched.dead_tiles,
                 static_cast<unsigned long long>(
                     batched.score_only_hits));

    const BoundedMemoryReport bounded = run_bounded_memory(
        static_cast<std::size_t>(args.get_int("bounded-bp")),
        static_cast<std::uint64_t>(args.get_int("bounded-budget-mb")),
        static_cast<std::uint64_t>(args.get_int("bounded-shard-bp")),
        static_cast<std::uint64_t>(args.get_int("seed")));
    std::fprintf(stderr,
                 "bounded_memory: in-RAM %.0f tiles/s, streaming %.0f "
                 "tiles/s (%.2fx) over %zu bp; %.1f MiB resident, "
                 "%.1f MiB charged of %.0f MiB budget, %.1f MiB "
                 "spilled across %llu episodes, %llu shards\n",
                 bounded.inram_tiles_per_sec(),
                 bounded.streaming_tiles_per_sec(),
                 bounded.relative_throughput(), bounded.pair_bp,
                 static_cast<double>(bounded.residency_bytes) / (1 << 20),
                 static_cast<double>(bounded.charged_bytes) / (1 << 20),
                 static_cast<double>(bounded.budget_bytes) / (1 << 20),
                 static_cast<double>(bounded.spilled_bytes) / (1 << 20),
                 static_cast<unsigned long long>(bounded.spill_episodes),
                 static_cast<unsigned long long>(bounded.num_shards));

    const OverloadReport overload = run_overload(
        static_cast<std::size_t>(args.get_int("overload-bp")),
        static_cast<std::size_t>(args.get_int("overload-burst")),
        static_cast<std::uint64_t>(args.get_int("seed")));
    std::fprintf(stderr,
                 "overload: burst %zu -> %zu served, %zu shed "
                 "(retry hint %lld ms), p99 accepted %.3fs; breaker "
                 "trips %llu, degraded served %s\n",
                 overload.burst, overload.accepted, overload.shed,
                 static_cast<long long>(overload.retry_after_ms),
                 overload.p99_accepted_seconds,
                 static_cast<unsigned long long>(overload.breaker_trips),
                 overload.degraded_served ? "yes" : "no");

    std::ostringstream json;
    json << "{\n"
         << "  " << bench::json_stamp() << ",\n"
         << "  \"suite\": \"perf_suite\",\n"
         << "  \"index_reuse\": {\n"
         << "    \"target_bp\": " << reuse.target_bp << ",\n"
         << "    \"query_bp\": " << reuse.query_bp << ",\n"
         << "    \"queries\": " << reuse.queries << ",\n"
         << "    \"index_bytes\": " << reuse.index_bytes << ",\n"
         << "    \"build_seconds\": "
         << strprintf("%.4f", reuse.build_seconds) << ",\n"
         << "    \"save_seconds\": "
         << strprintf("%.4f", reuse.save_seconds) << ",\n"
         << "    \"mmap_load_seconds\": "
         << strprintf("%.6f", reuse.mmap_load_seconds) << ",\n"
         << "    \"rebuild_seconds_per_pair\": "
         << strprintf("%.4f", per_pair_rebuild) << ",\n"
         << "    \"cached_seconds_per_pair\": "
         << strprintf("%.4f", per_pair_cached) << ",\n"
         << "    \"speedup\": " << strprintf("%.2f", reuse.speedup())
         << ",\n"
         << "    \"identical_hits\": "
         << (reuse.identical_hits ? "true" : "false") << ",\n"
         << "    \"meets_5x\": "
         << (reuse.speedup() >= 5.0 ? "true" : "false") << "\n"
         << "  },\n"
         << "  \"telemetry_overhead\": {\n"
         << "    \"requests_per_pass\": " << telemetry.requests << ",\n"
         << "    \"off_request_seconds\": "
         << strprintf("%.4f", telemetry.off_seconds) << ",\n"
         << "    \"on_request_seconds\": "
         << strprintf("%.4f", telemetry.on_seconds) << ",\n"
         << "    \"overhead_fraction\": "
         << strprintf("%.4f", telemetry.overhead()) << ",\n"
         << "    \"identical_output\": "
         << (telemetry.identical_output ? "true" : "false") << ",\n"
         << "    \"meets_2pct\": "
         << (telemetry.overhead() < 0.02 ? "true" : "false") << "\n"
         << "  },\n"
         << "  \"backend_batch\": {\n"
         << "    \"tiles\": " << batched.tiles << ",\n"
         << "    \"tile_bp\": " << batched.tile_bp << ",\n"
         << "    \"threads\": " << batched.threads << ",\n"
         << "    \"flush_tiles\": " << batched.flush_tiles << ",\n"
         << "    \"dead_tiles\": " << batched.dead_tiles << ",\n"
         << "    \"score_only_hits\": " << batched.score_only_hits
         << ",\n"
         << "    \"serial_tiles_per_sec\": "
         << strprintf("%.1f", batched.serial_tiles_per_sec()) << ",\n"
         << "    \"batched_tiles_per_sec\": "
         << strprintf("%.1f", batched.batched_tiles_per_sec()) << ",\n"
         << "    \"speedup\": " << strprintf("%.2f", batched.speedup())
         << ",\n"
         << "    \"identical_results\": "
         << (batched.identical_results ? "true" : "false") << ",\n"
         << "    \"meets_1_3x\": "
         << (batched.speedup() >= 1.3 ? "true" : "false") << "\n"
         << "  },\n"
         << "  \"bounded_memory\": {\n"
         << "    \"pair_bp\": " << bounded.pair_bp << ",\n"
         << "    \"budget_bytes\": " << bounded.budget_bytes << ",\n"
         << "    \"shard_bp\": " << bounded.shard_bp << ",\n"
         << "    \"num_shards\": " << bounded.num_shards << ",\n"
         << "    \"charged_bytes\": " << bounded.charged_bytes << ",\n"
         << "    \"residency_bytes\": " << bounded.residency_bytes
         << ",\n"
         << "    \"spilled_bytes\": " << bounded.spilled_bytes << ",\n"
         << "    \"spill_episodes\": " << bounded.spill_episodes << ",\n"
         << "    \"extension_tiles\": " << bounded.extension_tiles
         << ",\n"
         << "    \"inram_tiles_per_sec\": "
         << strprintf("%.1f", bounded.inram_tiles_per_sec()) << ",\n"
         << "    \"streaming_tiles_per_sec\": "
         << strprintf("%.1f", bounded.streaming_tiles_per_sec()) << ",\n"
         << "    \"relative_throughput\": "
         << strprintf("%.3f", bounded.relative_throughput()) << ",\n"
         << "    \"under_budget\": "
         << (bounded.under_budget ? "true" : "false") << ",\n"
         << "    \"identical_maf\": "
         << (bounded.identical_maf ? "true" : "false") << ",\n"
         << "    \"meets_residency_16mb\": "
         << (bounded.residency_bytes <= (16ull << 20) ? "true" : "false")
         << ",\n"
         << "    \"meets_0_3x\": "
         << (bounded.relative_throughput() >= 0.3 ? "true" : "false")
         << "\n"
         << "  },\n"
         << "  \"overload\": {\n"
         << "    \"pair_bp\": " << overload.pair_bp << ",\n"
         << "    \"burst\": " << overload.burst << ",\n"
         << "    \"accepted\": " << overload.accepted << ",\n"
         << "    \"shed\": " << overload.shed << ",\n"
         << "    \"retry_after_ms\": " << overload.retry_after_ms
         << ",\n"
         << "    \"p99_accepted_seconds\": "
         << strprintf("%.3f", overload.p99_accepted_seconds) << ",\n"
         << "    \"breaker_trips\": " << overload.breaker_trips << ",\n"
         << "    \"degraded_served\": "
         << (overload.degraded_served ? "true" : "false") << ",\n"
         << "    \"every_request_answered\": "
         << (overload.every_request_answered() ? "true" : "false")
         << "\n"
         << "  },\n"
         << "  \"batch_throughput\": " << batch_json << ",\n"
         << "  \"micro_kernels\": " << micro_json << "\n"
         << "}\n";

    std::ofstream out(args.get("out"));
    if (!out) {
        std::fprintf(stderr, "cannot write %s\n",
                     args.get("out").c_str());
        return 1;
    }
    out << json.str();
    std::fprintf(stderr, "perf_suite: wrote %s\n",
                 args.get("out").c_str());

    if (!reuse.identical_hits) {
        std::fprintf(stderr,
                     "ERROR: mapped index seeded differently from the "
                     "in-memory build\n");
        return 1;
    }
    if (reuse.speedup() < 5.0) {
        std::fprintf(stderr,
                     "ERROR: index reuse speedup %.2fx is below the 5x "
                     "bar\n",
                     reuse.speedup());
        return 1;
    }
    if (!telemetry.identical_output) {
        std::fprintf(stderr,
                     "ERROR: telemetry changed the served MAF bytes\n");
        return 1;
    }
    if (telemetry.overhead() >= 0.02) {
        std::fprintf(stderr,
                     "ERROR: telemetry overhead %.2f%% is above the 2%% "
                     "bar\n",
                     telemetry.overhead() * 100.0);
        return 1;
    }
    if (!batched.identical_results) {
        std::fprintf(stderr,
                     "ERROR: batched backend results differ from serial "
                     "dispatch\n");
        return 1;
    }
    if (batched.speedup() < 1.3) {
        std::fprintf(stderr,
                     "ERROR: backend_batch speedup %.2fx is below the "
                     "1.3x bar\n",
                     batched.speedup());
        return 1;
    }
    if (!bounded.under_budget) {
        std::fprintf(stderr,
                     "ERROR: streaming run exceeded its %.0f MiB heap "
                     "budget\n",
                     static_cast<double>(bounded.budget_bytes) /
                         (1 << 20));
        return 1;
    }
    if (!bounded.identical_maf) {
        std::fprintf(stderr,
                     "ERROR: streaming MAF differs from the in-RAM "
                     "pipeline's\n");
        return 1;
    }
    if (bounded.residency_bytes > (16ull << 20)) {
        std::fprintf(stderr,
                     "ERROR: streaming dataflow residency %.1f MiB is "
                     "above the 16 MiB bar\n",
                     static_cast<double>(bounded.residency_bytes) /
                         (1 << 20));
        return 1;
    }
    if (bounded.relative_throughput() < 0.3) {
        std::fprintf(stderr,
                     "ERROR: streaming throughput %.2fx of in-RAM is "
                     "below the 0.3x bar\n",
                     bounded.relative_throughput());
        return 1;
    }
    if (!overload.every_request_answered()) {
        std::fprintf(stderr,
                     "ERROR: overload flood leaked requests (%zu served "
                     "+ %zu shed of %zu submitted)\n",
                     overload.accepted, overload.shed, overload.burst);
        return 1;
    }
    if (overload.shed == 0 || overload.retry_after_ms < 1) {
        std::fprintf(stderr,
                     "ERROR: overload flood shed nothing (or sheds "
                     "carried no retry_after_ms hint): %zu shed, hint "
                     "%lld\n",
                     overload.shed,
                     static_cast<long long>(overload.retry_after_ms));
        return 1;
    }
    if (overload.breaker_trips == 0 || !overload.degraded_served) {
        std::fprintf(stderr,
                     "ERROR: breaker phase failed (trips %llu, degraded "
                     "served %s)\n",
                     static_cast<unsigned long long>(
                         overload.breaker_trips),
                     overload.degraded_served ? "yes" : "no");
        return 1;
    }
    return 0;
}

}  // namespace

int
main(int argc, char** argv)
{
    ArgParser args("perf_suite: run the fixed-workload benchmark set and "
                   "write one machine-readable JSON report "
                   "(BENCH_10.json).");
    args.add_option("out", "BENCH_10.json", "report path");
    args.add_option("threads", "4", "batch_throughput worker threads");
    args.add_option("batch-bp", "40000",
                    "batch_throughput chromosome length");
    args.add_option("reuse-bp", "60000",
                    "index_reuse target chromosome length");
    args.add_option("reuse-query-bp", "20000",
                    "index_reuse query chromosome length");
    args.add_option("reuse-queries", "10",
                    "index_reuse queries against the one target");
    args.add_option("telemetry-bp", "20000",
                    "telemetry_overhead chromosome length");
    args.add_option("telemetry-requests", "8",
                    "telemetry_overhead aligns per timed pass");
    args.add_option("backend-tiles", "256",
                    "backend_batch GACT-X tiles per arm");
    args.add_option("backend-tile-bp", "384",
                    "backend_batch tile length (bp)");
    args.add_option("bounded-bp", "120000",
                    "bounded_memory chromosome length");
    args.add_option("bounded-budget-mb", "1024",
                    "bounded_memory armed heap budget (MiB) — covers the "
                    "cumulative transient estimate, dominated by "
                    "extension traceback at the default pair size");
    args.add_option("bounded-shard-bp", "16384",
                    "bounded_memory target bp per seeding shard (small "
                    "enough that several shard tables cycle through)");
    args.add_option("overload-bp", "20000",
                    "overload chromosome length");
    args.add_option("overload-burst", "12",
                    "overload aligns submitted at once (vs a 3-deep "
                    "admission queue and one worker)");
    args.add_option("seed", "42", "workload generator seed");
    args.add_flag("skip-micro",
                  "skip the micro_kernels subprocess (fast iteration)");
    if (!args.parse(argc, argv))
        return 1;

    try {
        return run_suite(args, argv[0]);
    } catch (const FatalError& error) {
        std::fprintf(stderr, "error: %s\n", error.what());
        return 1;
    }
}
