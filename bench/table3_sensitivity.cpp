/**
 * @file
 * Table III reproduction: sensitivity of Darwin-WGA vs the LASTZ-like
 * baseline on the four species pairs — top-10 chain score improvement,
 * matched base-pairs (and their ratio), and exon recovery counts.
 *
 * Paper reference values (100 Mbp genomes, TBLASTX exon oracle):
 *   ce11-cb4      +5.73%   3.12x   +2.70%
 *   dm6-dp4       +1.86%   1.42x   +0.41%
 *   dm6-droYak2   +0.05%   1.41x   +0.09%
 *   dm6-droSim1   +0.03%   1.25x   +0.20%
 * We reproduce the *shape*: Darwin-WGA never loses, and the gains grow
 * with phylogenetic distance.
 */
#include "bench_common.h"

#include "eval/exon_eval.h"
#include "eval/sensitivity.h"

using namespace darwin;

int
main(int argc, char** argv)
{
    ArgParser args("Table III: sensitivity comparison across the four "
                   "species pairs.");
    bench::add_workload_options(args);
    if (!args.parse(argc, argv))
        return 1;

    ThreadPool pool;
    const wga::WgaPipeline darwin_wga(wga::WgaParams::darwin_defaults());
    const wga::WgaPipeline lastz_like(wga::WgaParams::lastz_defaults());

    std::printf("Table III: sensitivity of Darwin-WGA vs LASTZ-like "
                "baseline (size=%lld bp/genome, seed=%lld)\n\n",
                static_cast<long long>(args.get_int("size")),
                static_cast<long long>(args.get_int("seed")));
    std::printf("%-14s %13s | %12s %12s %7s | %6s %6s %6s %9s\n",
                "Species pair", "top-10 gain", "LASTZ match", "DWGA match",
                "ratio", "exons", "LASTZ", "DWGA", "exon gain");
    bench::rule();

    for (const auto& spec : synth::paper_species_pairs()) {
        const auto pair = bench::make_bench_pair(spec.pair_name, args);
        const auto exons = eval::flatten_exons(pair.target, pair.query);

        const auto lastz_result =
            lastz_like.run(pair.target.genome, pair.query.genome, &pool);
        const auto darwin_result =
            darwin_wga.run(pair.target.genome, pair.query.genome, &pool);

        const auto ls = eval::summarize(lastz_result);
        const auto ds = eval::summarize(darwin_result);
        const auto le = eval::count_recovered_exons(exons, lastz_result);
        const auto de = eval::count_recovered_exons(exons, darwin_result);

        std::printf(
            "%-14s %+12.2f%% | %12s %12s %6.2fx | %6zu %6zu %6zu %+8.2f%%\n",
            spec.pair_name.c_str(),
            eval::improvement_percent(ls.chains.top_k_score,
                                      ds.chains.top_k_score),
            with_commas(ls.chains.total_matched_bases).c_str(),
            with_commas(ds.chains.total_matched_bases).c_str(),
            eval::improvement_ratio(
                static_cast<double>(ls.chains.total_matched_bases),
                static_cast<double>(ds.chains.total_matched_bases)),
            exons.size(), le.recovered, de.recovered,
            eval::improvement_percent(static_cast<double>(le.recovered),
                                      static_cast<double>(de.recovered)));
    }
    std::printf(
        "\npaper: ce11-cb4 +5.73%% / 3.12x / +2.70%% ; dm6-dp4 +1.86%% / "
        "1.42x / +0.41%% ;\n       dm6-droYak2 +0.05%% / 1.41x / +0.09%% ; "
        "dm6-droSim1 +0.03%% / 1.25x / +0.20%%\n");
    return 0;
}
