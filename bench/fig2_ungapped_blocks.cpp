/**
 * @file
 * Figure 2 reproduction: distribution of ungapped alignment block sizes
 * in the top-10 chains for a closely related pair vs a distant pair.
 *
 * The paper plots human-chimp (indels every ~641 bp on average) against
 * human-mouse (every ~31 bp), with LASTZ's ungapped-filter requirement
 * (~30 bp of matches) marked: for distant pairs most blocks fall below
 * it. Our analogues are dm6-droSim1 (close) and ce11-cb4 (distant).
 */
#include "bench_common.h"

#include "eval/block_stats.h"

using namespace darwin;

namespace {

void
run_pair(const char* pair_name, const char* role, const ArgParser& args,
         ThreadPool& pool)
{
    const auto pair = bench::make_bench_pair(pair_name, args);
    const wga::WgaPipeline pipeline(wga::WgaParams::darwin_defaults());
    const auto result =
        pipeline.run(pair.target.genome, pair.query.genome, &pool);
    const auto stats = eval::collect_block_stats(result, 10);

    std::printf("%s (%s): %zu ungapped blocks in the top-10 chains\n",
                pair_name, role, stats.lengths.size());
    std::printf("  mean block length: %.1f bp (paper: chimp ~641, mouse "
                "~31)\n",
                stats.mean_length);
    std::printf("  fraction below the ~30 bp ungapped-filter line: "
                "%.1f%%\n", stats.fraction_below_30bp * 100.0);
    std::printf("  log2-binned histogram:\n%s\n",
                stats.histogram.render(46).c_str());
}

}  // namespace

int
main(int argc, char** argv)
{
    ArgParser args("Figure 2: ungapped block-size distribution, close vs "
                   "distant pair.");
    bench::add_workload_options(args);
    if (!args.parse(argc, argv))
        return 1;

    ThreadPool pool;
    std::printf("Figure 2: ungapped alignment block sizes from the "
                "top-10 chains (size=%lld bp/genome)\n\n",
                static_cast<long long>(args.get_int("size")));
    run_pair("dm6-droSim1", "close pair, chimp-like", args, pool);
    run_pair("ce11-cb4", "distant pair, mouse-like", args, pool);
    std::printf("expected shape: the distant pair's distribution shifts "
                "far left, with a large fraction of blocks below the "
                "ungapped filter line — those alignments are invisible "
                "to LASTZ's filter.\n");
    return 0;
}
