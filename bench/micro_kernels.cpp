/**
 * @file
 * Microbenches of the computational kernels (§VI-C context: software BSW
 * throughput defines the iso-sensitive baseline — the paper measured
 * 225K tiles/s on 36 threads with Parasail; the per-tile software cost
 * here is our equivalent).
 *
 * Two modes:
 *  - default: the google-benchmark suite (BM_* below);
 *  - `--json`: a self-timed comparison of every usable filter- and
 *    extension-kernel implementation (scalar wavefront, sse42, avx2 —
 *    see src/align/kernels/) against the seed engines (the row-major
 *    BSW kernel and the stripe-sequential GACT-X reference), printed as
 *    a BENCH-stamped JSON report. `--check-speedup X` additionally
 *    exits non-zero when the best vectorized BSW *or* GACT-X kernel is
 *    slower than X times its seed engine — the CI smoke gate uses X=1.0
 *    (vectorized must never lose to scalar); the paper-reproduction
 *    target is >= 2.0. Every comparison also asserts bit-identity
 *    (checksums over all result fields, including the CIGAR and
 *    per-stripe column counts for GACT-X).
 */
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "align/banded_sw.h"
#include "align/gactx.h"
#include "align/kernels/bsw_kernels.h"
#include "align/kernels/gactx_kernels.h"
#include "align/kernels/kernel_registry.h"
#include "align/needleman_wunsch.h"
#include "align/smith_waterman.h"
#include "align/ungapped_xdrop.h"
#include "bench_common.h"
#include "chain/chainer.h"
#include "seed/seed_index.h"
#include "seq/packed_sequence.h"
#include "seq/shuffle.h"
#include "util/rng.h"

using namespace darwin;

namespace {

std::vector<std::uint8_t>
random_codes(std::size_t len, std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<std::uint8_t> codes(len);
    for (auto& c : codes)
        c = static_cast<std::uint8_t>(rng.uniform(4));
    return codes;
}

std::vector<std::uint8_t>
mutated_copy(const std::vector<std::uint8_t>& src, double sub_rate,
             double indel_rate, std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<std::uint8_t> out;
    for (std::size_t i = 0; i < src.size(); ++i) {
        if (rng.chance(indel_rate)) {
            if (rng.chance(0.5))
                continue;
            out.push_back(static_cast<std::uint8_t>(rng.uniform(4)));
        }
        std::uint8_t base = src[i];
        if (rng.chance(sub_rate))
            base = static_cast<std::uint8_t>(rng.uniform(4));
        out.push_back(base);
    }
    return out;
}

// ---------------------------------------------------------------------
// google-benchmark suite (default mode)
// ---------------------------------------------------------------------

void
BM_BswFilterTile(benchmark::State& state)
{
    const auto scoring = align::ScoringParams::paper_defaults();
    const auto t = random_codes(320, 1);
    const auto q = mutated_copy(t, 0.15, 0.01, 2);
    std::uint64_t cells = 0;
    for (auto _ : state) {
        const auto result = align::banded_smith_waterman(
            {t.data(), t.size()}, {q.data(), std::min<std::size_t>(
                                                 q.size(), 320)},
            scoring, 32);
        benchmark::DoNotOptimize(result.max_score);
        cells += result.cells_computed;
    }
    state.counters["cells/s"] = benchmark::Counter(
        static_cast<double>(cells), benchmark::Counter::kIsRate);
    state.counters["tiles/s"] = benchmark::Counter(
        static_cast<double>(state.iterations()),
        benchmark::Counter::kIsRate);
}
BENCHMARK(BM_BswFilterTile);

void
BM_GactXTile(benchmark::State& state)
{
    align::GactXParams params;
    params.tile_size = static_cast<std::size_t>(state.range(0));
    const align::GactXTileAligner aligner(params);
    const auto t = random_codes(params.tile_size, 3);
    const auto q = mutated_copy(t, 0.15, 0.01, 4);
    std::uint64_t cells = 0;
    for (auto _ : state) {
        const auto result = aligner.align_tile(
            {t.data(), t.size()},
            {q.data(), std::min(q.size(), params.tile_size)});
        benchmark::DoNotOptimize(result.max_score);
        cells += result.cells_computed;
    }
    state.counters["cells/s"] = benchmark::Counter(
        static_cast<double>(cells), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_GactXTile)->Arg(480)->Arg(960)->Arg(1920);

void
BM_UngappedXdrop(benchmark::State& state)
{
    const auto scoring = align::ScoringParams::paper_defaults();
    const auto t = random_codes(4000, 5);
    const auto q = mutated_copy(t, 0.12, 0.0, 6);
    for (auto _ : state) {
        const auto result = align::ungapped_xdrop_extend(
            {t.data(), t.size()}, {q.data(), q.size()}, 2000, 2000, 19,
            scoring, 910);
        benchmark::DoNotOptimize(result.score);
    }
}
BENCHMARK(BM_UngappedXdrop);

void
BM_SmithWatermanReference(benchmark::State& state)
{
    const auto scoring = align::ScoringParams::paper_defaults();
    const auto t = random_codes(256, 7);
    const auto q = mutated_copy(t, 0.2, 0.02, 8);
    for (auto _ : state) {
        benchmark::DoNotOptimize(align::smith_waterman_score(
            {t.data(), t.size()}, {q.data(), q.size()}, scoring));
    }
}
BENCHMARK(BM_SmithWatermanReference);

void
BM_SeedIndexLookup(benchmark::State& state)
{
    const seed::SeedPattern pattern = seed::SeedPattern::lastz_default();
    const seq::Sequence target("t", random_codes(1 << 20, 9));
    const seed::SeedIndex index(target, pattern);
    const auto query = random_codes(1 << 16, 10);
    std::size_t pos = 0;
    std::uint64_t hits = 0;
    for (auto _ : state) {
        const auto key = pattern.key_at({query.data(), query.size()}, pos);
        if (key)
            hits += index.lookup(*key).size();
        pos = (pos + 1) % (query.size() - pattern.span());
        benchmark::DoNotOptimize(hits);
    }
    state.counters["lookups/s"] = benchmark::Counter(
        static_cast<double>(state.iterations()),
        benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SeedIndexLookup);

/** Byte-per-base kmer assembly — the pre-packing seeding idiom. */
std::uint64_t
byte_kmer(const std::vector<std::uint8_t>& codes, std::size_t pos,
          std::size_t k)
{
    std::uint64_t kmer = 0;
    for (std::size_t j = 0; j < k && pos + j < codes.size(); ++j) {
        const std::uint8_t c = codes[pos + j];
        if (c < 4)
            kmer |= static_cast<std::uint64_t>(c) << (2 * j);
    }
    return kmer;
}

void
BM_SeedExtractBytes(benchmark::State& state)
{
    const std::size_t k = static_cast<std::size_t>(state.range(0));
    const auto codes = random_codes(1 << 20, 17);
    std::size_t pos = 0;
    std::uint64_t sum = 0;
    for (auto _ : state) {
        sum += byte_kmer(codes, pos, k);
        pos = (pos + 1) % (codes.size() - k);
        benchmark::DoNotOptimize(sum);
    }
    state.counters["kmers/s"] = benchmark::Counter(
        static_cast<double>(state.iterations()),
        benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SeedExtractBytes)->Arg(12)->Arg(19)->Arg(32);

void
BM_SeedExtractPacked(benchmark::State& state)
{
    const std::size_t k = static_cast<std::size_t>(state.range(0));
    const auto codes = random_codes(1 << 20, 17);
    const auto packed =
        seq::PackedSequence::pack("t", {codes.data(), codes.size()});
    std::size_t pos = 0;
    std::uint64_t sum = 0;
    for (auto _ : state) {
        sum += packed.extract_kmer(pos, k);
        pos = (pos + 1) % (codes.size() - k);
        benchmark::DoNotOptimize(sum);
    }
    state.counters["kmers/s"] = benchmark::Counter(
        static_cast<double>(state.iterations()),
        benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SeedExtractPacked)->Arg(12)->Arg(19)->Arg(32);

void
BM_DinucleotideShuffle(benchmark::State& state)
{
    const seq::Sequence s("x", random_codes(1 << 16, 11));
    Rng rng(12);
    for (auto _ : state) {
        benchmark::DoNotOptimize(seq::dinucleotide_shuffle(s, rng));
    }
}
BENCHMARK(BM_DinucleotideShuffle);

void
BM_ChainDP(benchmark::State& state)
{
    Rng rng(13);
    std::vector<align::Alignment> blocks;
    std::uint64_t t = 0, q = 0;
    for (int i = 0; i < 500; ++i) {
        t += 200 + rng.uniform(2000);
        q += 200 + rng.uniform(2000);
        align::Alignment a;
        a.target_start = t;
        a.target_end = t + 150;
        a.query_start = q;
        a.query_end = q + 150;
        a.score = 4000 + static_cast<align::Score>(rng.uniform(8000));
        a.cigar.push(align::EditOp::Match, 150);
        blocks.push_back(a);
    }
    for (auto _ : state) {
        benchmark::DoNotOptimize(chain::chain_alignments(blocks));
    }
}
BENCHMARK(BM_ChainDP);

// ---------------------------------------------------------------------
// --json mode: kernel-vs-kernel comparison with the speedup gate
// ---------------------------------------------------------------------

constexpr std::size_t kTileSize = 320;
constexpr std::size_t kBand = 32;
constexpr std::size_t kNumPairs = 64;
constexpr double kMinSeconds = 0.25;

struct TilePair {
    std::vector<std::uint8_t> target;
    std::vector<std::uint8_t> query;
};

std::vector<TilePair>
make_tile_pool()
{
    // Fig. 8 context: mid-distance pair divergence (15% substitutions,
    // 1% indels) — the regime the filter stage spends its time in.
    std::vector<TilePair> pool;
    pool.reserve(kNumPairs);
    for (std::size_t p = 0; p < kNumPairs; ++p) {
        TilePair pair;
        pair.target = random_codes(kTileSize, 100 + 2 * p);
        pair.query = mutated_copy(pair.target, 0.15, 0.01, 101 + 2 * p);
        pair.query.resize(std::min(pair.query.size(), kTileSize));
        pool.push_back(std::move(pair));
    }
    return pool;
}

struct BswTiming {
    double seconds_per_tile = 0.0;
    double cells_per_second = 0.0;
    std::uint64_t checksum = 0;  ///< bit-identity guard across kernels
};

BswTiming
time_bsw(align::kernels::BswKernelFn kernel,
         const std::vector<TilePair>& pool,
         const align::ScoringParams& scoring)
{
    using Clock = std::chrono::steady_clock;
    const auto run_pool = [&](std::uint64_t* checksum,
                              std::uint64_t* cells) {
        for (const TilePair& pair : pool) {
            const auto r = kernel(
                {pair.target.data(), pair.target.size()},
                {pair.query.data(), pair.query.size()}, scoring, kBand);
            *checksum = *checksum * 1000003u +
                        static_cast<std::uint64_t>(r.max_score) * 31u +
                        r.target_max * 7u + r.query_max;
            *cells += r.cells_computed;
        }
    };

    BswTiming timing;
    std::uint64_t cells = 0;
    run_pool(&timing.checksum, &cells);  // warmup + checksum

    std::uint64_t tiles = 0;
    std::uint64_t dummy = 0;
    cells = 0;
    const auto start = Clock::now();
    double elapsed = 0.0;
    do {
        run_pool(&dummy, &cells);
        tiles += pool.size();
        elapsed = std::chrono::duration<double>(Clock::now() - start)
                      .count();
    } while (elapsed < kMinSeconds);
    benchmark::DoNotOptimize(dummy);
    timing.seconds_per_tile = elapsed / static_cast<double>(tiles);
    timing.cells_per_second = static_cast<double>(cells) / elapsed;
    return timing;
}

// GACT-X extension-kernel pool: full-size extension tiles (1920 bases by
// default) in the same mid-distance divergence regime.
constexpr std::size_t kNumGactxPairs = 8;

std::vector<TilePair>
make_gactx_pool(const align::GactXParams& params)
{
    std::vector<TilePair> pool;
    pool.reserve(kNumGactxPairs);
    for (std::size_t p = 0; p < kNumGactxPairs; ++p) {
        TilePair pair;
        pair.target = random_codes(params.tile_size, 300 + 2 * p);
        pair.query = mutated_copy(pair.target, 0.15, 0.01, 301 + 2 * p);
        pair.query.resize(std::min(pair.query.size(), params.tile_size));
        pool.push_back(std::move(pair));
    }
    return pool;
}

struct GactxTiming {
    double seconds_per_tile = 0.0;
    double cells_per_second = 0.0;
    std::uint64_t checksum = 0;  ///< covers every TileResult field
};

GactxTiming
time_gactx(align::kernels::GactXKernelFn kernel,
           const std::vector<TilePair>& pool,
           const align::GactXParams& params)
{
    using Clock = std::chrono::steady_clock;
    const auto run_pool = [&](std::uint64_t* checksum,
                              std::uint64_t* cells) {
        for (const TilePair& pair : pool) {
            const auto r = kernel(
                {pair.target.data(), pair.target.size()},
                {pair.query.data(), pair.query.size()}, params);
            // Bit-identity digest over *all* result fields — the CIGAR
            // and per-stripe column counts included, since the hw cycle
            // model consumes them.
            std::uint64_t sum = *checksum;
            sum = sum * 1000003u +
                  static_cast<std::uint64_t>(r.max_score) * 31u +
                  r.target_max * 7u + r.query_max;
            sum = sum * 1000003u + r.cells_computed;
            sum = sum * 1000003u + r.traceback_bytes;
            for (const std::uint64_t columns : r.stripe_columns)
                sum = sum * 31u + columns;
            for (const char ch : r.cigar.to_string())
                sum = sum * 131u + static_cast<std::uint64_t>(ch);
            *checksum = sum;
            *cells += r.cells_computed;
        }
    };

    GactxTiming timing;
    std::uint64_t cells = 0;
    run_pool(&timing.checksum, &cells);  // warmup + checksum

    std::uint64_t tiles = 0;
    std::uint64_t dummy = 0;
    cells = 0;
    const auto start = Clock::now();
    double elapsed = 0.0;
    do {
        run_pool(&dummy, &cells);
        tiles += pool.size();
        elapsed = std::chrono::duration<double>(Clock::now() - start)
                      .count();
    } while (elapsed < kMinSeconds);
    benchmark::DoNotOptimize(dummy);
    timing.seconds_per_tile = elapsed / static_cast<double>(tiles);
    timing.cells_per_second = static_cast<double>(cells) / elapsed;
    return timing;
}

struct UngappedWorkload {
    std::vector<std::uint8_t> target;
    std::vector<std::uint8_t> query;
};

double
time_ungapped(align::kernels::UngappedKernelFn kernel,
              const UngappedWorkload& w,
              const align::ScoringParams& scoring, std::uint64_t* checksum)
{
    using Clock = std::chrono::steady_clock;
    const auto run_once = [&](std::uint64_t* sum) {
        for (std::size_t s = 1000; s + 1000 < w.target.size(); s += 97) {
            const auto r = kernel({w.target.data(), w.target.size()},
                                  {w.query.data(), w.query.size()}, s, s,
                                  19, scoring, 910);
            *sum = *sum * 1000003u +
                   static_cast<std::uint64_t>(r.score) * 31u +
                   r.target_hi * 7u + r.target_lo * 3u + r.cells_computed;
        }
    };
    run_once(checksum);  // warmup + checksum

    std::uint64_t dummy = 0;
    std::uint64_t reps = 0;
    const auto start = Clock::now();
    double elapsed = 0.0;
    do {
        run_once(&dummy);
        ++reps;
        elapsed = std::chrono::duration<double>(Clock::now() - start)
                      .count();
    } while (elapsed < kMinSeconds);
    benchmark::DoNotOptimize(dummy);
    return elapsed / static_cast<double>(reps);
}

int
run_kernel_comparison(bool emit_json, double check_speedup)
{
    using namespace align::kernels;
    const auto scoring = align::ScoringParams::paper_defaults();
    const auto pool = make_tile_pool();

    // Seed baseline: the row-major kernel this repo shipped with before
    // the wavefront rewrite (kept as the differential reference).
    const BswTiming baseline =
        time_bsw(&bsw_rowmajor_reference, pool, scoring);

    struct Row {
        const char* name;
        int id;
        BswTiming timing;
        double speedup;
    };
    std::vector<Row> rows;
    bool identical = true;
    for (const KernelImpl& k : KernelRegistry::instance().kernels()) {
        if (!k.usable())
            continue;
        Row row{k.name, k.id, time_bsw(k.bsw, pool, scoring), 0.0};
        row.speedup = baseline.seconds_per_tile /
                      row.timing.seconds_per_tile;
        if (row.timing.checksum != baseline.checksum)
            identical = false;
        rows.push_back(row);
    }

    double best_vectorized = 0.0;
    for (const Row& row : rows)
        if (row.id > 0 && row.speedup > best_vectorized)
            best_vectorized = row.speedup;

    // GACT-X extension kernels vs the seed stripe-sequential engine
    // (kept as gactx_reference_align, the differential baseline).
    const align::GactXParams gactx_params;  // paper defaults: 1920b tiles
    const auto gactx_pool = make_gactx_pool(gactx_params);
    const GactxTiming gactx_baseline =
        time_gactx(&gactx_reference_align, gactx_pool, gactx_params);
    struct GRow {
        const char* name;
        int id;
        GactxTiming timing;
        double speedup;
    };
    std::vector<GRow> grows;
    for (const KernelImpl& k : KernelRegistry::instance().kernels()) {
        if (!k.usable())
            continue;
        GRow row{k.name, k.id,
                 time_gactx(k.gactx, gactx_pool, gactx_params), 0.0};
        row.speedup = gactx_baseline.seconds_per_tile /
                      row.timing.seconds_per_tile;
        if (row.timing.checksum != gactx_baseline.checksum)
            identical = false;
        grows.push_back(row);
    }

    double best_gactx = 0.0;
    for (const GRow& row : grows)
        if (row.id > 0 && row.speedup > best_gactx)
            best_gactx = row.speedup;

    // Ungapped x-drop: scalar vs any kernel with a dedicated
    // implementation (sse42 shares the scalar one — skip duplicates).
    UngappedWorkload uw;
    uw.target = random_codes(16000, 500);
    uw.query = mutated_copy(uw.target, 0.12, 0.0, 501);
    uw.query.resize(uw.target.size(),
                    0);  // keep seed coordinates in range
    std::uint64_t ungapped_ref_sum = 0;
    const double ungapped_scalar_s = time_ungapped(
        &ungapped_xdrop_scalar, uw, scoring, &ungapped_ref_sum);
    struct URow {
        const char* name;
        double seconds;
        double speedup;
    };
    std::vector<URow> urows{{"scalar", ungapped_scalar_s, 1.0}};
    for (const KernelImpl& k : KernelRegistry::instance().kernels()) {
        if (!k.usable() || k.ungapped == nullptr ||
            k.ungapped == &ungapped_xdrop_scalar)
            continue;
        std::uint64_t sum = 0;
        const double s = time_ungapped(k.ungapped, uw, scoring, &sum);
        if (sum != ungapped_ref_sum)
            identical = false;
        urows.push_back({k.name, s, ungapped_scalar_s / s});
    }

    // Seed kmer extraction: byte-per-base assembly vs the packed
    // representation's 2-bit extract_kmer, equal checksums required.
    // N runs are part of the workload — both paths must zero those
    // lanes, and the packed path pays the n-word lookups.
    struct SRow {
        std::size_t k;
        double bytes_seconds = 0.0;   // per extraction
        double packed_seconds = 0.0;  // per extraction
        double speedup = 0.0;
    };
    std::vector<SRow> srows;
    {
        using Clock = std::chrono::steady_clock;
        constexpr std::size_t kSeqLen = 1 << 20;
        Rng nrng(18);
        auto codes = random_codes(kSeqLen, 17);
        for (std::size_t i = 0; i < codes.size(); ++i)
            if (nrng.chance(0.005))
                for (std::size_t j = 0; j < 20 && i < codes.size();
                     ++j, ++i)
                    codes[i] = 4;  // N
        const auto packed =
            seq::PackedSequence::pack("t", {codes.data(), codes.size()});
        for (const std::size_t k : {12ul, 19ul, 32ul}) {
            SRow row{k};
            const std::size_t limit = codes.size() - k;
            std::uint64_t byte_sum = 0;
            std::uint64_t packed_sum = 0;
            const auto time_arm = [&](auto&& extract, std::uint64_t* sum) {
                std::uint64_t n = 0;
                const auto start = Clock::now();
                double elapsed = 0.0;
                do {
                    for (std::size_t pos = 0; pos < limit; pos += 3) {
                        *sum += extract(pos);
                        ++n;
                    }
                    elapsed = std::chrono::duration<double>(Clock::now() -
                                                            start)
                                  .count();
                } while (elapsed < kMinSeconds);
                benchmark::DoNotOptimize(*sum);
                return elapsed / static_cast<double>(n);
            };
            row.bytes_seconds = time_arm(
                [&](std::size_t pos) { return byte_kmer(codes, pos, k); },
                &byte_sum);
            row.packed_seconds = time_arm(
                [&](std::size_t pos) {
                    return packed.extract_kmer(pos, k);
                },
                &packed_sum);
            // The sums cover different iteration counts; compare one
            // deterministic pass instead.
            std::uint64_t byte_pass = 0;
            std::uint64_t packed_pass = 0;
            for (std::size_t pos = 0; pos < limit; pos += 3) {
                byte_pass = byte_pass * 1000003u + byte_kmer(codes, pos, k);
                packed_pass =
                    packed_pass * 1000003u + packed.extract_kmer(pos, k);
            }
            if (byte_pass != packed_pass)
                identical = false;
            row.speedup = row.packed_seconds > 0.0
                              ? row.bytes_seconds / row.packed_seconds
                              : 0.0;
            srows.push_back(row);
        }
    }

    if (emit_json) {
        std::printf("{\n  %s,\n", bench::json_stamp().c_str());
        std::printf("  \"bench\": \"micro_kernels\",\n");
        std::printf("  \"tile_size\": %zu, \"band\": %zu, \"pairs\": %zu,\n",
                    kTileSize, kBand, kNumPairs);
        std::printf("  \"bit_identical\": %s,\n",
                    identical ? "true" : "false");
        std::printf("  \"bsw\": {\n");
        std::printf("    \"baseline_rowmajor\": {\"seconds_per_tile\": "
                    "%.9f, \"cells_per_second\": %.0f},\n",
                    baseline.seconds_per_tile, baseline.cells_per_second);
        std::printf("    \"kernels\": [\n");
        for (std::size_t i = 0; i < rows.size(); ++i)
            std::printf("      {\"name\": \"%s\", \"id\": %d, "
                        "\"seconds_per_tile\": %.9f, \"cells_per_second\": "
                        "%.0f, \"speedup_vs_seed\": %.3f}%s\n",
                        rows[i].name, rows[i].id,
                        rows[i].timing.seconds_per_tile,
                        rows[i].timing.cells_per_second, rows[i].speedup,
                        i + 1 < rows.size() ? "," : "");
        std::printf("    ],\n");
        std::printf("    \"best_vectorized_speedup\": %.3f\n  },\n",
                    best_vectorized);
        std::printf("  \"gactx\": {\n");
        std::printf("    \"tile_size\": %zu, \"num_pe\": %zu, \"pairs\": "
                    "%zu,\n",
                    gactx_params.tile_size, gactx_params.num_pe,
                    kNumGactxPairs);
        std::printf("    \"baseline_seed_engine\": {\"seconds_per_tile\": "
                    "%.9f, \"cells_per_second\": %.0f},\n",
                    gactx_baseline.seconds_per_tile,
                    gactx_baseline.cells_per_second);
        std::printf("    \"kernels\": [\n");
        for (std::size_t i = 0; i < grows.size(); ++i)
            std::printf("      {\"name\": \"%s\", \"id\": %d, "
                        "\"seconds_per_tile\": %.9f, \"cells_per_second\": "
                        "%.0f, \"speedup_vs_seed\": %.3f}%s\n",
                        grows[i].name, grows[i].id,
                        grows[i].timing.seconds_per_tile,
                        grows[i].timing.cells_per_second, grows[i].speedup,
                        i + 1 < grows.size() ? "," : "");
        std::printf("    ],\n");
        std::printf("    \"best_vectorized_speedup\": %.3f\n  },\n",
                    best_gactx);
        std::printf("  \"ungapped\": [\n");
        for (std::size_t i = 0; i < urows.size(); ++i)
            std::printf("    {\"name\": \"%s\", \"seconds_per_call\": "
                        "%.9f, \"speedup_vs_scalar\": %.3f}%s\n",
                        urows[i].name, urows[i].seconds, urows[i].speedup,
                        i + 1 < urows.size() ? "," : "");
        std::printf("  ],\n");
        std::printf("  \"seed_extract\": [\n");
        for (std::size_t i = 0; i < srows.size(); ++i)
            std::printf("    {\"k\": %zu, \"bytes_seconds\": %.11f, "
                        "\"packed_seconds\": %.11f, "
                        "\"packed_speedup\": %.3f}%s\n",
                        srows[i].k, srows[i].bytes_seconds,
                        srows[i].packed_seconds, srows[i].speedup,
                        i + 1 < srows.size() ? "," : "");
        std::printf("  ]\n}\n");
    }

    if (!identical) {
        std::fprintf(stderr,
                     "FAIL: kernel results are not bit-identical\n");
        return 1;
    }
    if (check_speedup >= 0.0) {
        if (best_vectorized == 0.0) {
            std::fprintf(stderr,
                         "note: no vectorized kernel usable on this "
                         "build/CPU; speedup gate skipped\n");
            return 0;
        }
        bool gate_ok = true;
        if (best_vectorized < check_speedup) {
            std::fprintf(stderr,
                         "FAIL: best vectorized BSW speedup %.3fx < "
                         "required %.3fx\n",
                         best_vectorized, check_speedup);
            gate_ok = false;
        }
        if (best_gactx < check_speedup) {
            std::fprintf(stderr,
                         "FAIL: best vectorized GACT-X speedup %.3fx < "
                         "required %.3fx\n",
                         best_gactx, check_speedup);
            gate_ok = false;
        }
        if (!gate_ok)
            return 1;
        std::fprintf(stderr,
                     "speedup gate ok: bsw %.3fx, gactx %.3fx >= %.3fx\n",
                     best_vectorized, best_gactx, check_speedup);
    }
    return 0;
}

}  // namespace

int
main(int argc, char** argv)
{
    bool json = false;
    double check_speedup = -1.0;
    std::vector<char*> passthrough{argv[0]};
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--json") == 0) {
            json = true;
        } else if (std::strcmp(argv[i], "--check-speedup") == 0) {
            // A missing or malformed threshold must be a hard error:
            // silently dropping it (or atof's 0.0 fallback) would turn
            // the CI gate into a trivially-passing no-op.
            if (i + 1 >= argc) {
                std::fprintf(stderr,
                             "--check-speedup requires a threshold\n");
                return 2;
            }
            const char* text = argv[++i];
            char* end = nullptr;
            check_speedup = std::strtod(text, &end);
            if (end == text || *end != '\0' || check_speedup < 0.0) {
                std::fprintf(stderr,
                             "--check-speedup: bad threshold '%s'\n", text);
                return 2;
            }
        } else {
            passthrough.push_back(argv[i]);
        }
    }
    if (json || check_speedup >= 0.0)
        return run_kernel_comparison(json, check_speedup);

    int bench_argc = static_cast<int>(passthrough.size());
    benchmark::Initialize(&bench_argc, passthrough.data());
    if (benchmark::ReportUnrecognizedArguments(bench_argc,
                                               passthrough.data()))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
