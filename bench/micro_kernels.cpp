/**
 * @file
 * google-benchmark microbenches of the computational kernels (§VI-C
 * context: software BSW throughput defines the iso-sensitive baseline —
 * the paper measured 225K tiles/s on 36 threads with Parasail; the
 * per-tile software cost here is our equivalent).
 */
#include <benchmark/benchmark.h>

#include "align/banded_sw.h"
#include "align/gactx.h"
#include "align/needleman_wunsch.h"
#include "align/smith_waterman.h"
#include "align/ungapped_xdrop.h"
#include "chain/chainer.h"
#include "seed/seed_index.h"
#include "seq/shuffle.h"
#include "util/rng.h"

using namespace darwin;

namespace {

std::vector<std::uint8_t>
random_codes(std::size_t len, std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<std::uint8_t> codes(len);
    for (auto& c : codes)
        c = static_cast<std::uint8_t>(rng.uniform(4));
    return codes;
}

std::vector<std::uint8_t>
mutated_copy(const std::vector<std::uint8_t>& src, double sub_rate,
             double indel_rate, std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<std::uint8_t> out;
    for (std::size_t i = 0; i < src.size(); ++i) {
        if (rng.chance(indel_rate)) {
            if (rng.chance(0.5))
                continue;
            out.push_back(static_cast<std::uint8_t>(rng.uniform(4)));
        }
        std::uint8_t base = src[i];
        if (rng.chance(sub_rate))
            base = static_cast<std::uint8_t>(rng.uniform(4));
        out.push_back(base);
    }
    return out;
}

void
BM_BswFilterTile(benchmark::State& state)
{
    const auto scoring = align::ScoringParams::paper_defaults();
    const auto t = random_codes(320, 1);
    const auto q = mutated_copy(t, 0.15, 0.01, 2);
    std::uint64_t cells = 0;
    for (auto _ : state) {
        const auto result = align::banded_smith_waterman(
            {t.data(), t.size()}, {q.data(), std::min<std::size_t>(
                                                 q.size(), 320)},
            scoring, 32);
        benchmark::DoNotOptimize(result.max_score);
        cells += result.cells_computed;
    }
    state.counters["cells/s"] = benchmark::Counter(
        static_cast<double>(cells), benchmark::Counter::kIsRate);
    state.counters["tiles/s"] = benchmark::Counter(
        static_cast<double>(state.iterations()),
        benchmark::Counter::kIsRate);
}
BENCHMARK(BM_BswFilterTile);

void
BM_GactXTile(benchmark::State& state)
{
    align::GactXParams params;
    params.tile_size = static_cast<std::size_t>(state.range(0));
    const align::GactXTileAligner aligner(params);
    const auto t = random_codes(params.tile_size, 3);
    const auto q = mutated_copy(t, 0.15, 0.01, 4);
    std::uint64_t cells = 0;
    for (auto _ : state) {
        const auto result = aligner.align_tile(
            {t.data(), t.size()},
            {q.data(), std::min(q.size(), params.tile_size)});
        benchmark::DoNotOptimize(result.max_score);
        cells += result.cells_computed;
    }
    state.counters["cells/s"] = benchmark::Counter(
        static_cast<double>(cells), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_GactXTile)->Arg(480)->Arg(960)->Arg(1920);

void
BM_UngappedXdrop(benchmark::State& state)
{
    const auto scoring = align::ScoringParams::paper_defaults();
    const auto t = random_codes(4000, 5);
    const auto q = mutated_copy(t, 0.12, 0.0, 6);
    for (auto _ : state) {
        const auto result = align::ungapped_xdrop_extend(
            {t.data(), t.size()}, {q.data(), q.size()}, 2000, 2000, 19,
            scoring, 910);
        benchmark::DoNotOptimize(result.score);
    }
}
BENCHMARK(BM_UngappedXdrop);

void
BM_SmithWatermanReference(benchmark::State& state)
{
    const auto scoring = align::ScoringParams::paper_defaults();
    const auto t = random_codes(256, 7);
    const auto q = mutated_copy(t, 0.2, 0.02, 8);
    for (auto _ : state) {
        benchmark::DoNotOptimize(align::smith_waterman_score(
            {t.data(), t.size()}, {q.data(), q.size()}, scoring));
    }
}
BENCHMARK(BM_SmithWatermanReference);

void
BM_SeedIndexLookup(benchmark::State& state)
{
    const seed::SeedPattern pattern = seed::SeedPattern::lastz_default();
    const seq::Sequence target("t", random_codes(1 << 20, 9));
    const seed::SeedIndex index(target, pattern);
    const auto query = random_codes(1 << 16, 10);
    std::size_t pos = 0;
    std::uint64_t hits = 0;
    for (auto _ : state) {
        const auto key = pattern.key_at({query.data(), query.size()}, pos);
        if (key)
            hits += index.lookup(*key).size();
        pos = (pos + 1) % (query.size() - pattern.span());
        benchmark::DoNotOptimize(hits);
    }
    state.counters["lookups/s"] = benchmark::Counter(
        static_cast<double>(state.iterations()),
        benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SeedIndexLookup);

void
BM_DinucleotideShuffle(benchmark::State& state)
{
    const seq::Sequence s("x", random_codes(1 << 16, 11));
    Rng rng(12);
    for (auto _ : state) {
        benchmark::DoNotOptimize(seq::dinucleotide_shuffle(s, rng));
    }
}
BENCHMARK(BM_DinucleotideShuffle);

void
BM_ChainDP(benchmark::State& state)
{
    Rng rng(13);
    std::vector<align::Alignment> blocks;
    std::uint64_t t = 0, q = 0;
    for (int i = 0; i < 500; ++i) {
        t += 200 + rng.uniform(2000);
        q += 200 + rng.uniform(2000);
        align::Alignment a;
        a.target_start = t;
        a.target_end = t + 150;
        a.query_start = q;
        a.query_end = q + 150;
        a.score = 4000 + static_cast<align::Score>(rng.uniform(8000));
        a.cigar.push(align::EditOp::Match, 150);
        blocks.push_back(a);
    }
    for (auto _ : state) {
        benchmark::DoNotOptimize(chain::chain_alignments(blocks));
    }
}
BENCHMARK(BM_ChainDP);

}  // namespace

BENCHMARK_MAIN();
