/**
 * @file
 * Table IV reproduction: area and power breakdown of the Darwin-WGA ASIC
 * (TSMC 40nm, 1 GHz) — BSW logic, GACT-X logic, traceback SRAM, DRAM.
 *
 * Paper values: 16.6/25.6, 4.2/6.72, 15.12/7.92, -/3.10; total
 * 35.92 mm^2 / 43.34 W. Also prints an ablation: how the breakdown
 * scales for half/double BSW provisioning (the paper's §VI-A discussion
 * of DRAM-bottleneck provisioning).
 */
#include <cstdio>

#include "hw/power_model.h"

using namespace darwin;

namespace {

void
print_breakdown(const char* title, const hw::DeviceConfig& config)
{
    const hw::AsicPowerModel model;
    std::printf("%s\n", title);
    std::printf("  %-16s %-28s %10s %9s\n", "Component", "Configuration",
                "Area(mm2)", "Power(W)");
    for (const auto& row : model.breakdown(config)) {
        std::printf("  %-16s %-28s %10.2f %9.2f\n", row.component.c_str(),
                    row.configuration.c_str(), row.area_mm2, row.power_w);
    }
    std::printf("  %-16s %-28s %10.2f %9.2f\n\n", "Total", "",
                model.total_area_mm2(config),
                model.total_power_w(config));
}

}  // namespace

int
main()
{
    print_breakdown("Table IV: Darwin-WGA ASIC (TSMC 40nm @ 1.0 GHz)",
                    hw::DeviceConfig::asic_40nm());
    std::printf("paper: BSW 16.6/25.6, GACT-X 4.2/6.72, SRAM 15.12/7.92, "
                "DRAM -/3.10; total 35.92 mm2 / 43.34 W\n\n");

    auto half = hw::DeviceConfig::asic_40nm();
    half.bsw_arrays /= 2;
    print_breakdown("Ablation: half BSW provisioning (32 arrays)", half);

    auto big = hw::DeviceConfig::asic_40nm();
    big.gactx_arrays *= 2;
    print_breakdown("Ablation: double GACT-X provisioning (24 arrays)",
                    big);
    return 0;
}
