/**
 * @file
 * Table IV reproduction: area and power breakdown of the Darwin-WGA ASIC
 * (TSMC 40nm, 1 GHz) — BSW logic, GACT-X logic, traceback SRAM, DRAM.
 *
 * Paper values: 16.6/25.6, 4.2/6.72, 15.12/7.92, -/3.10; total
 * 35.92 mm^2 / 43.34 W. Also prints an ablation: how the breakdown
 * scales for half/double BSW provisioning (the paper's §VI-A discussion
 * of DRAM-bottleneck provisioning). --json FILE writes the main
 * breakdown as a stamped JSON report.
 */
#include <cstdio>
#include <fstream>

#include "bench_common.h"
#include "hw/power_model.h"

using namespace darwin;

namespace {

void
print_breakdown(const char* title, const hw::DeviceConfig& config)
{
    const hw::AsicPowerModel model;
    std::printf("%s\n", title);
    std::printf("  %-16s %-28s %10s %9s\n", "Component", "Configuration",
                "Area(mm2)", "Power(W)");
    for (const auto& row : model.breakdown(config)) {
        std::printf("  %-16s %-28s %10.2f %9.2f\n", row.component.c_str(),
                    row.configuration.c_str(), row.area_mm2, row.power_w);
    }
    std::printf("  %-16s %-28s %10.2f %9.2f\n\n", "Total", "",
                model.total_area_mm2(config),
                model.total_power_w(config));
}

void
write_json(const std::string& path, const hw::DeviceConfig& config)
{
    const hw::AsicPowerModel model;
    std::ofstream out(path);
    if (!out) {
        std::fprintf(stderr, "cannot write %s\n", path.c_str());
        return;
    }
    out << "{\n  " << bench::json_stamp() << ",\n"
        << "  \"device\": " << json_quote(config.name) << ",\n"
        << "  \"components\": [\n";
    const auto rows = model.breakdown(config);
    for (std::size_t i = 0; i < rows.size(); ++i) {
        out << "    {\"component\": " << json_quote(rows[i].component)
            << ", \"configuration\": " << json_quote(rows[i].configuration)
            << ", \"area_mm2\": " << strprintf("%.2f", rows[i].area_mm2)
            << ", \"power_w\": " << strprintf("%.2f", rows[i].power_w)
            << "}" << (i + 1 < rows.size() ? "," : "") << "\n";
    }
    out << "  ],\n"
        << "  \"total_area_mm2\": "
        << strprintf("%.2f", model.total_area_mm2(config)) << ",\n"
        << "  \"total_power_w\": "
        << strprintf("%.2f", model.total_power_w(config)) << "\n}\n";
    std::printf("wrote %s\n", path.c_str());
}

}  // namespace

int
main(int argc, char** argv)
{
    ArgParser args("Table IV: Darwin-WGA ASIC area/power breakdown.");
    args.add_option("json", "",
                    "also write the main breakdown as JSON here");
    if (!args.parse(argc, argv))
        return 1;

    print_breakdown("Table IV: Darwin-WGA ASIC (TSMC 40nm @ 1.0 GHz)",
                    hw::DeviceConfig::asic_40nm());
    std::printf("paper: BSW 16.6/25.6, GACT-X 4.2/6.72, SRAM 15.12/7.92, "
                "DRAM -/3.10; total 35.92 mm2 / 43.34 W\n\n");

    auto half = hw::DeviceConfig::asic_40nm();
    half.bsw_arrays /= 2;
    print_breakdown("Ablation: half BSW provisioning (32 arrays)", half);

    auto big = hw::DeviceConfig::asic_40nm();
    big.gactx_arrays *= 2;
    print_breakdown("Ablation: double GACT-X provisioning (24 arrays)",
                    big);

    if (!args.get("json").empty())
        write_json(args.get("json"), hw::DeviceConfig::asic_40nm());
    return 0;
}
