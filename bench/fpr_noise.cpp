/**
 * @file
 * §VI-B noise analysis reproduction: false positive rate against a
 * dinucleotide-preserving shuffle of the target genome.
 *
 * Paper: Darwin-WGA at Hf=4000 has FPR 0.0007% (1,334 of 180.8M matched
 * bp are against the shuffled target); LASTZ 0.0002%; dropping Hf to
 * LASTZ's 3000 explodes the FPR to 1.48% — which is why 4000 is the
 * default.
 */
#include "bench_common.h"

#include "eval/fpr.h"

using namespace darwin;

namespace {

void
run_config(const char* label, const wga::WgaParams& params,
           const synth::SpeciesPair& pair, std::size_t repeats,
           std::uint64_t seed, ThreadPool& pool)
{
    const wga::WgaPipeline pipeline(params);
    const auto result = eval::noise_analysis(
        pipeline, pair.target.genome, pair.query.genome, repeats, seed,
        &pool);
    std::printf("%-24s %14s %16.1f %11.4f%%\n", label,
                with_commas(result.real_matched_bases).c_str(),
                result.shuffled_matched_bases_mean,
                result.rate() * 100.0);
}

}  // namespace

int
main(int argc, char** argv)
{
    ArgParser args("Noise analysis: FPR against a 2-mer-preserving "
                   "shuffled target.");
    bench::add_workload_options(args);
    args.add_option("repeats", "2", "shuffled-genome repetitions");
    if (!args.parse(argc, argv))
        return 1;

    ThreadPool pool;
    const auto pair = bench::make_bench_pair("ce11-cb4", args);
    const auto repeats =
        static_cast<std::size_t>(args.get_int("repeats"));
    const auto seed = static_cast<std::uint64_t>(args.get_int("seed"));

    std::printf("Noise analysis on ce11-cb4 analogue (size=%lld bp, %zu "
                "shuffle repeats)\n\n",
                static_cast<long long>(args.get_int("size")), repeats);
    std::printf("%-24s %14s %16s %12s\n", "Configuration", "real match",
                "shuffled match", "FPR");
    bench::rule(72);

    run_config("Darwin-WGA (Hf=4000)", wga::WgaParams::darwin_defaults(),
               pair, repeats, seed + 1, pool);
    run_config("LASTZ-like (ungapped)", wga::WgaParams::lastz_defaults(),
               pair, repeats, seed + 2, pool);
    auto loose = wga::WgaParams::darwin_defaults();
    loose.filter_threshold = 3000;
    loose.extension_threshold = 3000;
    run_config("Darwin-WGA (Hf=3000)", loose, pair, repeats, seed + 3,
               pool);

    std::printf("\npaper: Darwin-WGA 0.0007%%, LASTZ 0.0002%%, Darwin-WGA "
                "at Hf=3000: 1.48%%\n");
    return 0;
}
