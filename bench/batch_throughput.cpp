/**
 * @file
 * Batch-engine throughput: serial per-pair WgaPipeline::run vs the
 * pipeline-parallel batch engine on a multi-pair manifest.
 *
 * The manifest defaults to the paper's four species pairs at two seeds
 * each (8 pairs). The serial baseline runs each pair to completion with
 * no thread pool — exactly what `darwin-wga align` does per invocation —
 * and the batch engine runs the same manifest with --threads workers
 * sharing one dataflow. Emits a JSON report (stdout or --json FILE) with
 * both wall-clock times, the speedup, and the engine's per-stage
 * metrics dump; results are asserted bit-identical before timing is
 * reported. Wall-clock speedup is bounded by the host's core count
 * (the JSON carries "host_cores" so the figure is interpretable):
 * roughly min(threads, cores, pairs) when extension dominates, since
 * each pair's extension is one task.
 *
 *   batch_throughput --threads 4 --size 60000
 *
 * --streaming switches the batch arm to the out-of-core dataflow
 * (2-bit packed genomes, sharded seeding, spill-or-backpressure hit
 * and candidate channels); --budget-heap M arms each pair's
 * CancelToken with an M-MiB heap budget, so the run *proves* the
 * bounded-residency claim — a budget overrun cancels the pair and the
 * identity check fails the bench. The serial arm stays the in-RAM
 * byte path, so the streaming results are also asserted identical to
 * the unpacked reference:
 *
 *   batch_throughput --streaming --budget-heap 64 --size 2000000 \
 *       --pairs 1 --seeds-per-pair 1
 */
#include "bench_common.h"

#include <fstream>
#include <sstream>
#include <thread>

#include "batch/scheduler.h"
#include "util/timer.h"

using namespace darwin;

namespace {

/** Cheap structural identity check between two runs of the same pair. */
bool
same_result(const wga::WgaResult& a, const wga::WgaResult& b)
{
    if (a.alignments.size() != b.alignments.size() ||
        a.chains.size() != b.chains.size())
        return false;
    for (std::size_t i = 0; i < a.alignments.size(); ++i) {
        const auto& x = a.alignments[i];
        const auto& y = b.alignments[i];
        if (x.target_start != y.target_start || x.target_end != y.target_end ||
            x.query_start != y.query_start || x.query_end != y.query_end ||
            x.score != y.score || x.cigar.to_string() != y.cigar.to_string())
            return false;
    }
    for (std::size_t i = 0; i < a.chains.size(); ++i) {
        if (a.chains[i].score != b.chains[i].score ||
            a.chains[i].members != b.chains[i].members)
            return false;
    }
    return true;
}

}  // namespace

int
main(int argc, char** argv)
{
    ArgParser args("Batch-engine throughput: serial per-pair pipeline vs "
                   "the streaming batch engine.");
    bench::add_workload_options(args);
    args.add_option("threads", "4", "batch engine worker threads");
    args.add_option("seeds-per-pair", "2",
                    "manifest entries per species pair");
    args.add_option("shard-bp", "16384", "query bp per batch work unit");
    args.add_option("pairs", "0",
                    "species pairs from the paper manifest (0 = all)");
    args.add_flag("streaming",
                  "run the batch arm on the out-of-core dataflow (packed "
                  "genomes, sharded seeding, bounded hit/candidate "
                  "channels)");
    args.add_option("stream-shard-bp", "8388608",
                    "--streaming target bp per seeding shard");
    args.add_option("budget-heap", "0",
                    "per-pair heap budget in MiB enforced via the pair's "
                    "CancelToken (0 = unlimited)");
    args.add_option("spill-dir", "",
                    "--streaming overflow spill directory ('' = system "
                    "temp dir)");
    args.add_option("json", "", "also write the JSON report to this file");
    if (!args.parse(argc, argv))
        return 1;

    const auto threads = static_cast<std::size_t>(args.get_int("threads"));
    const auto seeds_per_pair =
        static_cast<std::size_t>(args.get_int("seeds-per-pair"));
    const std::size_t host_cores =
        std::max<std::size_t>(1, std::thread::hardware_concurrency());
    if (threads > host_cores) {
        std::fprintf(stderr,
                     "note: %zu threads on a %zu-core host; wall-clock "
                     "speedup is bounded by the core count\n",
                     threads, host_cores);
    }

    synth::AncestorConfig shape;
    shape.num_chromosomes =
        static_cast<std::size_t>(args.get_int("chromosomes"));
    shape.chromosome_length = static_cast<std::size_t>(args.get_int("size"));
    shape.exons_per_chromosome =
        shape.chromosome_length /
        static_cast<std::size_t>(args.get_int("exon-every"));

    std::vector<synth::SpeciesPair> pairs;
    std::vector<batch::BatchJob> jobs;
    auto seed = static_cast<std::uint64_t>(args.get_int("seed"));
    auto species = synth::paper_species_pairs();
    const auto max_species =
        static_cast<std::size_t>(args.get_int("pairs"));
    if (max_species > 0 && max_species < species.size())
        species.resize(max_species);
    for (const auto& spec : species)
        for (std::size_t s = 0; s < seeds_per_pair; ++s)
            pairs.push_back(synth::make_species_pair(spec, shape, seed++));
    jobs.reserve(pairs.size());
    for (std::size_t i = 0; i < pairs.size(); ++i) {
        jobs.push_back({pairs[i].spec.pair_name + "#" + std::to_string(i),
                        &pairs[i].target.genome, &pairs[i].query.genome});
    }
    std::fprintf(stderr, "manifest: %zu pairs x %lld bp\n", jobs.size(),
                 static_cast<long long>(args.get_int("size")));

    const auto params = wga::WgaParams::darwin_defaults();

    // Serial baseline: one pair after another, no pool.
    const wga::WgaPipeline pipeline(params);
    std::vector<wga::WgaResult> serial;
    serial.reserve(pairs.size());
    Timer serial_timer;
    for (const auto& pair : pairs)
        serial.push_back(pipeline.run(pair.target.genome, pair.query.genome));
    const double serial_seconds = serial_timer.seconds();
    std::fprintf(stderr, "serial:  %.2fs\n", serial_seconds);

    // Batch engine over the same manifest.
    batch::BatchOptions options;
    options.params = params;
    options.num_threads = threads;
    options.shard_length = static_cast<std::size_t>(args.get_int("shard-bp"));
    const auto budget_heap_mb =
        static_cast<std::uint64_t>(args.get_int("budget-heap"));
    options.pair_budget.max_heap_bytes = budget_heap_mb * (1ull << 20);
    const bool streaming = args.get_flag("streaming");
    options.streaming = streaming;
    options.streaming_params.shard_bp =
        static_cast<std::uint64_t>(args.get_int("stream-shard-bp"));
    options.streaming_params.spill_dir = args.get("spill-dir");
    batch::MetricsRegistry metrics;
    batch::BatchScheduler scheduler(options, &metrics);
    Timer batch_timer;
    const auto batch_results = scheduler.run(jobs);
    const double batch_seconds = batch_timer.seconds();
    std::fprintf(stderr, "batch:   %.2fs (%zu threads)\n", batch_seconds,
                 threads);

    std::size_t mismatches = 0;
    for (std::size_t i = 0; i < serial.size(); ++i)
        if (!same_result(serial[i], batch_results[i].result))
            ++mismatches;
    if (mismatches != 0) {
        std::fprintf(stderr,
                     "ERROR: %zu pairs differ between serial and batch\n",
                     mismatches);
        return 1;
    }

    const double speedup =
        batch_seconds > 0.0 ? serial_seconds / batch_seconds : 0.0;
    // Per-stage breakdown: summed task seconds from the engine's latency
    // histograms (CPU-time-like across workers, not wall-clock).
    const auto stage_seconds = [&metrics](const char* name) {
        const auto* hist = metrics.find_histogram(name);
        return hist != nullptr ? hist->sum() : 0.0;
    };
    // wga.heap.* gauges carry the last finished pair's streaming
    // residency; with a shared manifest shape every pair's fixed
    // capacities are the same, so "last" is representative.
    const auto heap_gauge = [&metrics](const char* name) {
        const auto* gauge = metrics.find_gauge(name);
        return static_cast<long long>(gauge != nullptr ? gauge->value()
                                                       : 0);
    };
    std::ostringstream json;
    json << "{\n"
         << "  " << bench::json_stamp() << ",\n"
         << "  \"pairs\": " << jobs.size() << ",\n"
         << "  \"threads\": " << threads << ",\n"
         << "  \"host_cores\": " << host_cores << ",\n"
         << "  \"genome_bp\": " << shape.chromosome_length << ",\n"
         << "  \"shard_bp\": " << options.shard_length << ",\n"
         << "  \"streaming\": " << (streaming ? "true" : "false") << ",\n"
         << "  \"budget_heap_mb\": " << budget_heap_mb << ",\n"
         << "  \"heap\": {"
         << "\"hit_stream_bytes\": "
         << heap_gauge("wga.heap.hit_stream_bytes")
         << ", \"candidate_buffer_bytes\": "
         << heap_gauge("wga.heap.candidate_buffer_bytes")
         << ", \"charged_bytes\": "
         << heap_gauge("wga.heap.charged_bytes")
         << ", \"spilled_bytes\": "
         << heap_gauge("wga.heap.spilled_bytes")
         << ", \"spill_episodes\": "
         << heap_gauge("wga.heap.spill_episodes") << "},\n"
         << "  \"identical\": true,\n"
         << "  \"serial_seconds\": " << strprintf("%.4f", serial_seconds)
         << ",\n"
         << "  \"batch_seconds\": " << strprintf("%.4f", batch_seconds)
         << ",\n"
         << "  \"speedup\": " << strprintf("%.3f", speedup) << ",\n"
         << "  \"stage_seconds\": {"
         << "\"seed\": " << strprintf("%.4f", stage_seconds("batch.seed.seconds"))
         << ", \"filter\": "
         << strprintf("%.4f", stage_seconds("batch.filter.seconds"))
         << ", \"extend\": "
         << strprintf("%.4f", stage_seconds("batch.extend.seconds"))
         << ", \"chain\": "
         << strprintf("%.4f", stage_seconds("batch.chain.seconds")) << "},\n"
         << "  \"metrics\": " << metrics.to_json() << "\n"
         << "}\n";
    std::fputs(json.str().c_str(), stdout);
    if (!args.get("json").empty()) {
        std::ofstream out(args.get("json"));
        out << json.str();
    }
    std::fprintf(stderr, "speedup: %.2fx at %zu threads\n", speedup, threads);
    return 0;
}
