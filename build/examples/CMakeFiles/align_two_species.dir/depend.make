# Empty dependencies file for align_two_species.
# This may be replaced when dependencies are built.
