file(REMOVE_RECURSE
  "CMakeFiles/align_two_species.dir/align_two_species.cpp.o"
  "CMakeFiles/align_two_species.dir/align_two_species.cpp.o.d"
  "align_two_species"
  "align_two_species.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/align_two_species.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
