file(REMOVE_RECURSE
  "CMakeFiles/case_study_missed_exon.dir/case_study_missed_exon.cpp.o"
  "CMakeFiles/case_study_missed_exon.dir/case_study_missed_exon.cpp.o.d"
  "case_study_missed_exon"
  "case_study_missed_exon.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/case_study_missed_exon.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
