# Empty compiler generated dependencies file for case_study_missed_exon.
# This may be replaced when dependencies are built.
