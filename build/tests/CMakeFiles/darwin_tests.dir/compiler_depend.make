# Empty compiler generated dependencies file for darwin_tests.
# This may be replaced when dependencies are built.
