file(REMOVE_RECURSE
  "CMakeFiles/darwin_tests.dir/align_core_test.cpp.o"
  "CMakeFiles/darwin_tests.dir/align_core_test.cpp.o.d"
  "CMakeFiles/darwin_tests.dir/align_kernels_test.cpp.o"
  "CMakeFiles/darwin_tests.dir/align_kernels_test.cpp.o.d"
  "CMakeFiles/darwin_tests.dir/chain_test.cpp.o"
  "CMakeFiles/darwin_tests.dir/chain_test.cpp.o.d"
  "CMakeFiles/darwin_tests.dir/coverage_test.cpp.o"
  "CMakeFiles/darwin_tests.dir/coverage_test.cpp.o.d"
  "CMakeFiles/darwin_tests.dir/eval_test.cpp.o"
  "CMakeFiles/darwin_tests.dir/eval_test.cpp.o.d"
  "CMakeFiles/darwin_tests.dir/hw_test.cpp.o"
  "CMakeFiles/darwin_tests.dir/hw_test.cpp.o.d"
  "CMakeFiles/darwin_tests.dir/property_test.cpp.o"
  "CMakeFiles/darwin_tests.dir/property_test.cpp.o.d"
  "CMakeFiles/darwin_tests.dir/seed_test.cpp.o"
  "CMakeFiles/darwin_tests.dir/seed_test.cpp.o.d"
  "CMakeFiles/darwin_tests.dir/seq_test.cpp.o"
  "CMakeFiles/darwin_tests.dir/seq_test.cpp.o.d"
  "CMakeFiles/darwin_tests.dir/strand_test.cpp.o"
  "CMakeFiles/darwin_tests.dir/strand_test.cpp.o.d"
  "CMakeFiles/darwin_tests.dir/synth_test.cpp.o"
  "CMakeFiles/darwin_tests.dir/synth_test.cpp.o.d"
  "CMakeFiles/darwin_tests.dir/util_test.cpp.o"
  "CMakeFiles/darwin_tests.dir/util_test.cpp.o.d"
  "CMakeFiles/darwin_tests.dir/wga_test.cpp.o"
  "CMakeFiles/darwin_tests.dir/wga_test.cpp.o.d"
  "darwin_tests"
  "darwin_tests.pdb"
  "darwin_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/darwin_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
