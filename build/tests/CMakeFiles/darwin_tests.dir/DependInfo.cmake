
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/align_core_test.cpp" "tests/CMakeFiles/darwin_tests.dir/align_core_test.cpp.o" "gcc" "tests/CMakeFiles/darwin_tests.dir/align_core_test.cpp.o.d"
  "/root/repo/tests/align_kernels_test.cpp" "tests/CMakeFiles/darwin_tests.dir/align_kernels_test.cpp.o" "gcc" "tests/CMakeFiles/darwin_tests.dir/align_kernels_test.cpp.o.d"
  "/root/repo/tests/chain_test.cpp" "tests/CMakeFiles/darwin_tests.dir/chain_test.cpp.o" "gcc" "tests/CMakeFiles/darwin_tests.dir/chain_test.cpp.o.d"
  "/root/repo/tests/coverage_test.cpp" "tests/CMakeFiles/darwin_tests.dir/coverage_test.cpp.o" "gcc" "tests/CMakeFiles/darwin_tests.dir/coverage_test.cpp.o.d"
  "/root/repo/tests/eval_test.cpp" "tests/CMakeFiles/darwin_tests.dir/eval_test.cpp.o" "gcc" "tests/CMakeFiles/darwin_tests.dir/eval_test.cpp.o.d"
  "/root/repo/tests/hw_test.cpp" "tests/CMakeFiles/darwin_tests.dir/hw_test.cpp.o" "gcc" "tests/CMakeFiles/darwin_tests.dir/hw_test.cpp.o.d"
  "/root/repo/tests/property_test.cpp" "tests/CMakeFiles/darwin_tests.dir/property_test.cpp.o" "gcc" "tests/CMakeFiles/darwin_tests.dir/property_test.cpp.o.d"
  "/root/repo/tests/seed_test.cpp" "tests/CMakeFiles/darwin_tests.dir/seed_test.cpp.o" "gcc" "tests/CMakeFiles/darwin_tests.dir/seed_test.cpp.o.d"
  "/root/repo/tests/seq_test.cpp" "tests/CMakeFiles/darwin_tests.dir/seq_test.cpp.o" "gcc" "tests/CMakeFiles/darwin_tests.dir/seq_test.cpp.o.d"
  "/root/repo/tests/strand_test.cpp" "tests/CMakeFiles/darwin_tests.dir/strand_test.cpp.o" "gcc" "tests/CMakeFiles/darwin_tests.dir/strand_test.cpp.o.d"
  "/root/repo/tests/synth_test.cpp" "tests/CMakeFiles/darwin_tests.dir/synth_test.cpp.o" "gcc" "tests/CMakeFiles/darwin_tests.dir/synth_test.cpp.o.d"
  "/root/repo/tests/util_test.cpp" "tests/CMakeFiles/darwin_tests.dir/util_test.cpp.o" "gcc" "tests/CMakeFiles/darwin_tests.dir/util_test.cpp.o.d"
  "/root/repo/tests/wga_test.cpp" "tests/CMakeFiles/darwin_tests.dir/wga_test.cpp.o" "gcc" "tests/CMakeFiles/darwin_tests.dir/wga_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/darwin.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
