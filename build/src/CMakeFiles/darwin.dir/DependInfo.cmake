
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/align/alignment.cpp" "src/CMakeFiles/darwin.dir/align/alignment.cpp.o" "gcc" "src/CMakeFiles/darwin.dir/align/alignment.cpp.o.d"
  "/root/repo/src/align/banded_sw.cpp" "src/CMakeFiles/darwin.dir/align/banded_sw.cpp.o" "gcc" "src/CMakeFiles/darwin.dir/align/banded_sw.cpp.o.d"
  "/root/repo/src/align/cigar.cpp" "src/CMakeFiles/darwin.dir/align/cigar.cpp.o" "gcc" "src/CMakeFiles/darwin.dir/align/cigar.cpp.o.d"
  "/root/repo/src/align/extension.cpp" "src/CMakeFiles/darwin.dir/align/extension.cpp.o" "gcc" "src/CMakeFiles/darwin.dir/align/extension.cpp.o.d"
  "/root/repo/src/align/gact.cpp" "src/CMakeFiles/darwin.dir/align/gact.cpp.o" "gcc" "src/CMakeFiles/darwin.dir/align/gact.cpp.o.d"
  "/root/repo/src/align/gactx.cpp" "src/CMakeFiles/darwin.dir/align/gactx.cpp.o" "gcc" "src/CMakeFiles/darwin.dir/align/gactx.cpp.o.d"
  "/root/repo/src/align/needleman_wunsch.cpp" "src/CMakeFiles/darwin.dir/align/needleman_wunsch.cpp.o" "gcc" "src/CMakeFiles/darwin.dir/align/needleman_wunsch.cpp.o.d"
  "/root/repo/src/align/scoring.cpp" "src/CMakeFiles/darwin.dir/align/scoring.cpp.o" "gcc" "src/CMakeFiles/darwin.dir/align/scoring.cpp.o.d"
  "/root/repo/src/align/smith_waterman.cpp" "src/CMakeFiles/darwin.dir/align/smith_waterman.cpp.o" "gcc" "src/CMakeFiles/darwin.dir/align/smith_waterman.cpp.o.d"
  "/root/repo/src/align/ungapped_xdrop.cpp" "src/CMakeFiles/darwin.dir/align/ungapped_xdrop.cpp.o" "gcc" "src/CMakeFiles/darwin.dir/align/ungapped_xdrop.cpp.o.d"
  "/root/repo/src/align/xdrop_reference.cpp" "src/CMakeFiles/darwin.dir/align/xdrop_reference.cpp.o" "gcc" "src/CMakeFiles/darwin.dir/align/xdrop_reference.cpp.o.d"
  "/root/repo/src/chain/anchor.cpp" "src/CMakeFiles/darwin.dir/chain/anchor.cpp.o" "gcc" "src/CMakeFiles/darwin.dir/chain/anchor.cpp.o.d"
  "/root/repo/src/chain/chain_metrics.cpp" "src/CMakeFiles/darwin.dir/chain/chain_metrics.cpp.o" "gcc" "src/CMakeFiles/darwin.dir/chain/chain_metrics.cpp.o.d"
  "/root/repo/src/chain/chainer.cpp" "src/CMakeFiles/darwin.dir/chain/chainer.cpp.o" "gcc" "src/CMakeFiles/darwin.dir/chain/chainer.cpp.o.d"
  "/root/repo/src/eval/block_stats.cpp" "src/CMakeFiles/darwin.dir/eval/block_stats.cpp.o" "gcc" "src/CMakeFiles/darwin.dir/eval/block_stats.cpp.o.d"
  "/root/repo/src/eval/exon_eval.cpp" "src/CMakeFiles/darwin.dir/eval/exon_eval.cpp.o" "gcc" "src/CMakeFiles/darwin.dir/eval/exon_eval.cpp.o.d"
  "/root/repo/src/eval/fpr.cpp" "src/CMakeFiles/darwin.dir/eval/fpr.cpp.o" "gcc" "src/CMakeFiles/darwin.dir/eval/fpr.cpp.o.d"
  "/root/repo/src/eval/sensitivity.cpp" "src/CMakeFiles/darwin.dir/eval/sensitivity.cpp.o" "gcc" "src/CMakeFiles/darwin.dir/eval/sensitivity.cpp.o.d"
  "/root/repo/src/hw/bsw_array.cpp" "src/CMakeFiles/darwin.dir/hw/bsw_array.cpp.o" "gcc" "src/CMakeFiles/darwin.dir/hw/bsw_array.cpp.o.d"
  "/root/repo/src/hw/config.cpp" "src/CMakeFiles/darwin.dir/hw/config.cpp.o" "gcc" "src/CMakeFiles/darwin.dir/hw/config.cpp.o.d"
  "/root/repo/src/hw/dram_model.cpp" "src/CMakeFiles/darwin.dir/hw/dram_model.cpp.o" "gcc" "src/CMakeFiles/darwin.dir/hw/dram_model.cpp.o.d"
  "/root/repo/src/hw/gactx_array.cpp" "src/CMakeFiles/darwin.dir/hw/gactx_array.cpp.o" "gcc" "src/CMakeFiles/darwin.dir/hw/gactx_array.cpp.o.d"
  "/root/repo/src/hw/perf_model.cpp" "src/CMakeFiles/darwin.dir/hw/perf_model.cpp.o" "gcc" "src/CMakeFiles/darwin.dir/hw/perf_model.cpp.o.d"
  "/root/repo/src/hw/power_model.cpp" "src/CMakeFiles/darwin.dir/hw/power_model.cpp.o" "gcc" "src/CMakeFiles/darwin.dir/hw/power_model.cpp.o.d"
  "/root/repo/src/seed/dsoft.cpp" "src/CMakeFiles/darwin.dir/seed/dsoft.cpp.o" "gcc" "src/CMakeFiles/darwin.dir/seed/dsoft.cpp.o.d"
  "/root/repo/src/seed/seed_index.cpp" "src/CMakeFiles/darwin.dir/seed/seed_index.cpp.o" "gcc" "src/CMakeFiles/darwin.dir/seed/seed_index.cpp.o.d"
  "/root/repo/src/seed/seed_pattern.cpp" "src/CMakeFiles/darwin.dir/seed/seed_pattern.cpp.o" "gcc" "src/CMakeFiles/darwin.dir/seed/seed_pattern.cpp.o.d"
  "/root/repo/src/seq/alphabet.cpp" "src/CMakeFiles/darwin.dir/seq/alphabet.cpp.o" "gcc" "src/CMakeFiles/darwin.dir/seq/alphabet.cpp.o.d"
  "/root/repo/src/seq/fasta.cpp" "src/CMakeFiles/darwin.dir/seq/fasta.cpp.o" "gcc" "src/CMakeFiles/darwin.dir/seq/fasta.cpp.o.d"
  "/root/repo/src/seq/genome.cpp" "src/CMakeFiles/darwin.dir/seq/genome.cpp.o" "gcc" "src/CMakeFiles/darwin.dir/seq/genome.cpp.o.d"
  "/root/repo/src/seq/interval.cpp" "src/CMakeFiles/darwin.dir/seq/interval.cpp.o" "gcc" "src/CMakeFiles/darwin.dir/seq/interval.cpp.o.d"
  "/root/repo/src/seq/sequence.cpp" "src/CMakeFiles/darwin.dir/seq/sequence.cpp.o" "gcc" "src/CMakeFiles/darwin.dir/seq/sequence.cpp.o.d"
  "/root/repo/src/seq/shuffle.cpp" "src/CMakeFiles/darwin.dir/seq/shuffle.cpp.o" "gcc" "src/CMakeFiles/darwin.dir/seq/shuffle.cpp.o.d"
  "/root/repo/src/synth/distance.cpp" "src/CMakeFiles/darwin.dir/synth/distance.cpp.o" "gcc" "src/CMakeFiles/darwin.dir/synth/distance.cpp.o.d"
  "/root/repo/src/synth/evolver.cpp" "src/CMakeFiles/darwin.dir/synth/evolver.cpp.o" "gcc" "src/CMakeFiles/darwin.dir/synth/evolver.cpp.o.d"
  "/root/repo/src/synth/markov_source.cpp" "src/CMakeFiles/darwin.dir/synth/markov_source.cpp.o" "gcc" "src/CMakeFiles/darwin.dir/synth/markov_source.cpp.o.d"
  "/root/repo/src/synth/mutator.cpp" "src/CMakeFiles/darwin.dir/synth/mutator.cpp.o" "gcc" "src/CMakeFiles/darwin.dir/synth/mutator.cpp.o.d"
  "/root/repo/src/synth/species.cpp" "src/CMakeFiles/darwin.dir/synth/species.cpp.o" "gcc" "src/CMakeFiles/darwin.dir/synth/species.cpp.o.d"
  "/root/repo/src/util/args.cpp" "src/CMakeFiles/darwin.dir/util/args.cpp.o" "gcc" "src/CMakeFiles/darwin.dir/util/args.cpp.o.d"
  "/root/repo/src/util/logging.cpp" "src/CMakeFiles/darwin.dir/util/logging.cpp.o" "gcc" "src/CMakeFiles/darwin.dir/util/logging.cpp.o.d"
  "/root/repo/src/util/rng.cpp" "src/CMakeFiles/darwin.dir/util/rng.cpp.o" "gcc" "src/CMakeFiles/darwin.dir/util/rng.cpp.o.d"
  "/root/repo/src/util/stats.cpp" "src/CMakeFiles/darwin.dir/util/stats.cpp.o" "gcc" "src/CMakeFiles/darwin.dir/util/stats.cpp.o.d"
  "/root/repo/src/util/strings.cpp" "src/CMakeFiles/darwin.dir/util/strings.cpp.o" "gcc" "src/CMakeFiles/darwin.dir/util/strings.cpp.o.d"
  "/root/repo/src/util/thread_pool.cpp" "src/CMakeFiles/darwin.dir/util/thread_pool.cpp.o" "gcc" "src/CMakeFiles/darwin.dir/util/thread_pool.cpp.o.d"
  "/root/repo/src/wga/chain_io.cpp" "src/CMakeFiles/darwin.dir/wga/chain_io.cpp.o" "gcc" "src/CMakeFiles/darwin.dir/wga/chain_io.cpp.o.d"
  "/root/repo/src/wga/extend_stage.cpp" "src/CMakeFiles/darwin.dir/wga/extend_stage.cpp.o" "gcc" "src/CMakeFiles/darwin.dir/wga/extend_stage.cpp.o.d"
  "/root/repo/src/wga/filter_stage.cpp" "src/CMakeFiles/darwin.dir/wga/filter_stage.cpp.o" "gcc" "src/CMakeFiles/darwin.dir/wga/filter_stage.cpp.o.d"
  "/root/repo/src/wga/maf.cpp" "src/CMakeFiles/darwin.dir/wga/maf.cpp.o" "gcc" "src/CMakeFiles/darwin.dir/wga/maf.cpp.o.d"
  "/root/repo/src/wga/params.cpp" "src/CMakeFiles/darwin.dir/wga/params.cpp.o" "gcc" "src/CMakeFiles/darwin.dir/wga/params.cpp.o.d"
  "/root/repo/src/wga/pipeline.cpp" "src/CMakeFiles/darwin.dir/wga/pipeline.cpp.o" "gcc" "src/CMakeFiles/darwin.dir/wga/pipeline.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
