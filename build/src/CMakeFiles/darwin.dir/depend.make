# Empty dependencies file for darwin.
# This may be replaced when dependencies are built.
