file(REMOVE_RECURSE
  "libdarwin.a"
)
