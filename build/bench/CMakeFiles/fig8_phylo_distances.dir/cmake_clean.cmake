file(REMOVE_RECURSE
  "CMakeFiles/fig8_phylo_distances.dir/fig8_phylo_distances.cpp.o"
  "CMakeFiles/fig8_phylo_distances.dir/fig8_phylo_distances.cpp.o.d"
  "fig8_phylo_distances"
  "fig8_phylo_distances.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_phylo_distances.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
