# Empty dependencies file for fig8_phylo_distances.
# This may be replaced when dependencies are built.
