# Empty dependencies file for table4_asic_breakdown.
# This may be replaced when dependencies are built.
