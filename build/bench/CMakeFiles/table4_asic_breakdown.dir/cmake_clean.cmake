file(REMOVE_RECURSE
  "CMakeFiles/table4_asic_breakdown.dir/table4_asic_breakdown.cpp.o"
  "CMakeFiles/table4_asic_breakdown.dir/table4_asic_breakdown.cpp.o.d"
  "table4_asic_breakdown"
  "table4_asic_breakdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_asic_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
