file(REMOVE_RECURSE
  "CMakeFiles/fig10_gact_vs_gactx.dir/fig10_gact_vs_gactx.cpp.o"
  "CMakeFiles/fig10_gact_vs_gactx.dir/fig10_gact_vs_gactx.cpp.o.d"
  "fig10_gact_vs_gactx"
  "fig10_gact_vs_gactx.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_gact_vs_gactx.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
