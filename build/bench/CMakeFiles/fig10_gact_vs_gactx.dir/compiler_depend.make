# Empty compiler generated dependencies file for fig10_gact_vs_gactx.
# This may be replaced when dependencies are built.
