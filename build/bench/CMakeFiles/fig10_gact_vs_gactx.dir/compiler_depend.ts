# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for fig10_gact_vs_gactx.
