# Empty dependencies file for table6_power.
# This may be replaced when dependencies are built.
