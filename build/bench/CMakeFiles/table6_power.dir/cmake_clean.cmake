file(REMOVE_RECURSE
  "CMakeFiles/table6_power.dir/table6_power.cpp.o"
  "CMakeFiles/table6_power.dir/table6_power.cpp.o.d"
  "table6_power"
  "table6_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table6_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
