# Empty compiler generated dependencies file for fig2_ungapped_blocks.
# This may be replaced when dependencies are built.
