file(REMOVE_RECURSE
  "CMakeFiles/fig2_ungapped_blocks.dir/fig2_ungapped_blocks.cpp.o"
  "CMakeFiles/fig2_ungapped_blocks.dir/fig2_ungapped_blocks.cpp.o.d"
  "fig2_ungapped_blocks"
  "fig2_ungapped_blocks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_ungapped_blocks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
