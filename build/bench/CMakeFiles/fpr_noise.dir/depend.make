# Empty dependencies file for fpr_noise.
# This may be replaced when dependencies are built.
