file(REMOVE_RECURSE
  "CMakeFiles/fpr_noise.dir/fpr_noise.cpp.o"
  "CMakeFiles/fpr_noise.dir/fpr_noise.cpp.o.d"
  "fpr_noise"
  "fpr_noise.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fpr_noise.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
