# Empty compiler generated dependencies file for table5_performance.
# This may be replaced when dependencies are built.
