file(REMOVE_RECURSE
  "CMakeFiles/table5_performance.dir/table5_performance.cpp.o"
  "CMakeFiles/table5_performance.dir/table5_performance.cpp.o.d"
  "table5_performance"
  "table5_performance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_performance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
