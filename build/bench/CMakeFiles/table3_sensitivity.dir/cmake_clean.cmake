file(REMOVE_RECURSE
  "CMakeFiles/table3_sensitivity.dir/table3_sensitivity.cpp.o"
  "CMakeFiles/table3_sensitivity.dir/table3_sensitivity.cpp.o.d"
  "table3_sensitivity"
  "table3_sensitivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
