# Empty compiler generated dependencies file for table3_sensitivity.
# This may be replaced when dependencies are built.
