# Empty dependencies file for darwin-wga.
# This may be replaced when dependencies are built.
