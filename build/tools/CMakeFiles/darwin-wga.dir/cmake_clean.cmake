file(REMOVE_RECURSE
  "CMakeFiles/darwin-wga.dir/darwin_wga_cli.cpp.o"
  "CMakeFiles/darwin-wga.dir/darwin_wga_cli.cpp.o.d"
  "darwin-wga"
  "darwin-wga.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/darwin-wga.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
