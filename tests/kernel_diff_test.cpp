/**
 * @file
 * Differential kernel-test harness (the bit-identity guarantee of the
 * dispatch registry, DESIGN.md "Filter kernels").
 *
 * A naive full-matrix Smith-Waterman restricted to the band — quadratic
 * memory, written for obviousness, independent of every production
 * kernel — defines the boundary semantics documented in banded_sw.h.
 * Thousands of seeded-Rng tiles (uniform-random over 2- and 4-letter
 * alphabets, mutated copies, and synth-evolved pairs across the paper's
 * Fig. 8 distance range; bands 0..64; tile sizes including 0, 1, odd,
 * and larger than the band) are swept through every registered BSW
 * kernel plus the row-major reference, asserting the *entire* BswResult
 * (max score, xmax cell, cells_computed) matches the naive matrix.
 * The ungapped x-drop kernels are diffed against the scalar kernel the
 * same way.
 *
 * The GACT-X extension kernels get the same treatment: the seed
 * column-serial stripe engine survives as `gactx_reference_align`, and
 * thousands of seeded tiles (random, related, synth-evolved; num_pe in
 * {1, 7, 32, 64}; ydrop sweeps; degenerate/empty spans; traceback-OOM
 * budgets) are swept through every registered wavefront kernel,
 * asserting the *entire* TileResult — max score, the (target_max,
 * query_max) tie-break, cells_computed, stripe_columns,
 * traceback_bytes, and the CIGAR — matches the seed engine exactly.
 */
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "align/banded_sw.h"
#include "align/kernels/bsw_kernels.h"
#include "align/kernels/gactx_kernels.h"
#include "align/kernels/kernel_registry.h"
#include "align/scoring.h"
#include "synth/species.h"
#include "util/rng.h"

namespace darwin::align {
namespace {

using kernels::KernelImpl;
using kernels::KernelRegistry;

std::span<const std::uint8_t>
sp(const std::vector<std::uint8_t>& v)
{
    return {v.data(), v.size()};
}

/** Uniform random codes over the first `alphabet` base codes. */
std::vector<std::uint8_t>
random_codes(std::size_t len, std::uint32_t alphabet, Rng& rng)
{
    std::vector<std::uint8_t> codes(len);
    for (auto& c : codes)
        c = static_cast<std::uint8_t>(rng.uniform(alphabet));
    return codes;
}

std::vector<std::uint8_t>
mutated_copy(const std::vector<std::uint8_t>& src, double sub_rate,
             double indel_rate, Rng& rng)
{
    std::vector<std::uint8_t> out;
    out.reserve(src.size());
    for (std::size_t i = 0; i < src.size(); ++i) {
        if (rng.chance(indel_rate)) {
            if (rng.chance(0.5))
                continue;  // delete
            out.push_back(static_cast<std::uint8_t>(rng.uniform(4)));
        }
        std::uint8_t base = src[i];
        if (rng.chance(sub_rate))
            base = static_cast<std::uint8_t>(rng.uniform(4));
        out.push_back(base);
    }
    return out;
}

/**
 * Naive full-matrix banded SW: (m+1) x (n+1) Gotoh DP where every cell
 * outside |i - j| <= band stays -inf, row 0 / column 0 are V = 0
 * alignment-start boundaries, and the best cell is tracked row-major
 * with strictly-greater updates. This *is* the semantics contract; keep
 * it brute-force.
 */
BswResult
banded_reference(std::span<const std::uint8_t> target,
                 std::span<const std::uint8_t> query,
                 const ScoringParams& scoring, std::size_t band)
{
    const std::size_t n = target.size();
    const std::size_t m = query.size();
    BswResult out;
    if (n == 0 || m == 0)
        return out;

    std::vector<std::vector<Score>> V(m + 1,
                                      std::vector<Score>(n + 1,
                                                         kScoreNegInf));
    auto G = V, H = V;
    for (std::size_t j = 0; j <= n; ++j)
        V[0][j] = 0;
    for (std::size_t i = 0; i <= m; ++i)
        V[i][0] = 0;

    for (std::size_t i = 1; i <= m; ++i) {
        for (std::size_t j = 1; j <= n; ++j) {
            const std::size_t off = i > j ? i - j : j - i;
            if (off > band)
                continue;
            H[i][j] = std::max(V[i][j - 1] - scoring.gap_open,
                               H[i][j - 1] - scoring.gap_extend);
            G[i][j] = std::max(V[i - 1][j] - scoring.gap_open,
                               G[i - 1][j] - scoring.gap_extend);
            const Score diag =
                V[i - 1][j - 1] +
                scoring.substitution(target[j - 1], query[i - 1]);
            Score val = std::max<Score>(0, diag);
            val = std::max(val, H[i][j]);
            val = std::max(val, G[i][j]);
            V[i][j] = val;
            ++out.cells_computed;
            if (val > out.max_score) {
                out.max_score = val;
                out.target_max = j;
                out.query_max = i;
            }
        }
    }
    return out;
}

/** Every BSW implementation that must match the reference. */
std::vector<std::pair<std::string, kernels::BswKernelFn>>
bsw_contenders()
{
    std::vector<std::pair<std::string, kernels::BswKernelFn>> out;
    out.emplace_back("rowmajor", &kernels::bsw_rowmajor_reference);
    for (const KernelImpl& k : KernelRegistry::instance().kernels())
        if (k.usable())
            out.emplace_back(k.name, k.bsw);
    return out;
}

void
expect_bsw_identical(std::span<const std::uint8_t> t,
                     std::span<const std::uint8_t> q,
                     const ScoringParams& scoring, std::size_t band,
                     const std::string& context)
{
    const BswResult ref = banded_reference(t, q, scoring, band);
    for (const auto& [name, fn] : bsw_contenders()) {
        const BswResult got = fn(t, q, scoring, band);
        EXPECT_EQ(got.max_score, ref.max_score)
            << name << " " << context << " band=" << band;
        EXPECT_EQ(got.target_max, ref.target_max)
            << name << " " << context << " band=" << band;
        EXPECT_EQ(got.query_max, ref.query_max)
            << name << " " << context << " band=" << band;
        EXPECT_EQ(got.cells_computed, ref.cells_computed)
            << name << " " << context << " band=" << band;
        if (got != ref)
            return;  // one detailed failure is enough
    }
}

TEST(KernelDiff, RandomTileSweep)
{
    const auto scoring = ScoringParams::paper_defaults();
    const std::size_t bands[] = {0, 1, 2, 3, 7, 32, 64};
    const std::size_t sizes[] = {0, 1, 3, 16, 33, 64};
    Rng rng(1001);
    int tiles = 0;
    for (const std::uint32_t alphabet : {2u, 4u}) {
        for (const std::size_t n : sizes) {
            for (const std::size_t m : sizes) {
                for (const std::size_t band : bands) {
                    for (int rep = 0; rep < 2; ++rep) {
                        const auto t = random_codes(n, alphabet, rng);
                        const auto q = random_codes(m, alphabet, rng);
                        expect_bsw_identical(
                            sp(t), sp(q), scoring, band,
                            "random a" + std::to_string(alphabet) + " n=" +
                                std::to_string(n) + " m=" +
                                std::to_string(m));
                        ++tiles;
                    }
                }
            }
        }
    }
    EXPECT_GT(tiles, 1000);
}

TEST(KernelDiff, RelatedPairSweep)
{
    const auto scoring = ScoringParams::paper_defaults();
    const std::size_t bands[] = {0, 8, 32, 64};
    const double sub_rates[] = {0.05, 0.15, 0.30, 0.50};
    Rng rng(2002);
    for (const double sub_rate : sub_rates) {
        for (const std::size_t band : bands) {
            for (int rep = 0; rep < 12; ++rep) {
                const auto t = random_codes(97, 4, rng);  // odd, > band
                const auto q = mutated_copy(t, sub_rate, 0.02, rng);
                expect_bsw_identical(sp(t), sp(q), scoring, band,
                                     "related sub=" +
                                         std::to_string(sub_rate));
            }
        }
    }
}

TEST(KernelDiff, UnitScoringTieBreakSweep)
{
    // Unit scoring over a 2-letter alphabet maximizes score ties, which
    // is exactly what stresses the xmax tie-break reduction.
    const auto scoring = ScoringParams::unit(1, -1, 2, 1);
    Rng rng(3003);
    for (const std::size_t band : {0u, 1u, 5u, 17u, 64u}) {
        for (int rep = 0; rep < 40; ++rep) {
            const auto t = random_codes(61, 2, rng);
            const auto q = random_codes(59, 2, rng);
            expect_bsw_identical(sp(t), sp(q), scoring, band, "unit2");
        }
    }
}

TEST(KernelDiff, SynthEvolvedPairSweep)
{
    // Tiles cut from whole synthetic genomes of the paper's four species
    // pairs (Fig. 8 distance range ~0.1..0.6 substitutions/site).
    const auto scoring = ScoringParams::paper_defaults();
    synth::AncestorConfig config;
    config.num_chromosomes = 1;
    config.chromosome_length = 6000;
    config.exons_per_chromosome = 5;
    Rng rng(4004);
    for (const auto& spec : synth::paper_species_pairs()) {
        const auto pair = synth::make_species_pair(spec, config, 77);
        const auto& t = pair.target.genome.chromosome(0).codes();
        const auto& q = pair.query.genome.chromosome(0).codes();
        const std::size_t tile = 96;
        const std::size_t lim = std::min(t.size(), q.size()) - tile;
        for (int rep = 0; rep < 60; ++rep) {
            const std::size_t off = rng.uniform(static_cast<std::uint32_t>(lim));
            const std::vector<std::uint8_t> tt(t.begin() + off,
                                               t.begin() + off + tile);
            const std::vector<std::uint8_t> qq(q.begin() + off,
                                               q.begin() + off + tile);
            for (const std::size_t band : {8u, 32u})
                expect_bsw_identical(sp(tt), sp(qq), scoring, band,
                                     "evolved " + spec.pair_name);
        }
    }
}

TEST(KernelDiff, UngappedKernelsMatchScalar)
{
    const auto scoring = ScoringParams::paper_defaults();
    const Score xdrops[] = {0, 10, 50, 1000};
    Rng rng(5005);
    for (int rep = 0; rep < 400; ++rep) {
        const std::uint32_t alphabet = (rep % 2 == 0) ? 2 : 4;
        const auto t = random_codes(200, alphabet, rng);
        auto q = mutated_copy(t, 0.2, 0.02, rng);
        if (q.size() < 40)
            continue;
        const std::size_t seed_len = rep % 3 == 0 ? 0 : 12;
        const std::size_t seed_t = rng.uniform(static_cast<std::uint32_t>(
            t.size() - seed_len));
        const std::size_t seed_q = rng.uniform(static_cast<std::uint32_t>(
            q.size() - seed_len));
        const Score xdrop = xdrops[rep % 4];
        const UngappedResult ref = kernels::ungapped_xdrop_scalar(
            sp(t), sp(q), seed_t, seed_q, seed_len, scoring, xdrop);
        for (const KernelImpl& k : KernelRegistry::instance().kernels()) {
            if (!k.usable())
                continue;
            const UngappedResult got = k.ungapped(
                sp(t), sp(q), seed_t, seed_q, seed_len, scoring, xdrop);
            ASSERT_TRUE(got == ref)
                << k.name << " rep=" << rep << " seed_t=" << seed_t
                << " seed_q=" << seed_q << " xdrop=" << xdrop
                << " score " << got.score << " vs " << ref.score
                << " cells " << got.cells_computed << " vs "
                << ref.cells_computed;
        }
    }
}

TEST(KernelDiff, VectorKernelsActuallyRegistered)
{
    // The differential sweep only proves what it covers: make sure the
    // build actually registered the SIMD kernels on x86 CI hosts.
#if defined(__x86_64__)
    const auto& kernels = KernelRegistry::instance().kernels();
    ASSERT_EQ(kernels.size(), 3u);
    EXPECT_TRUE(kernels[0].usable());  // scalar, always
    EXPECT_TRUE(kernels[1].compiled);
    EXPECT_TRUE(kernels[2].compiled);
    for (const KernelImpl& k : kernels) {
        if (k.usable()) {
            EXPECT_NE(k.gactx, nullptr) << k.name;
        }
    }
#else
    GTEST_SKIP() << "non-x86 host: only the scalar kernel is expected";
#endif
}

// ---------------------------------------------------------------------------
// GACT-X extension kernels vs the seed column-serial stripe engine.
// ---------------------------------------------------------------------------

/** Every GACT-X implementation that must match the seed engine. */
std::vector<std::pair<std::string, kernels::GactXKernelFn>>
gactx_contenders()
{
    std::vector<std::pair<std::string, kernels::GactXKernelFn>> out;
    for (const KernelImpl& k : KernelRegistry::instance().kernels())
        if (k.usable())
            out.emplace_back(k.name, k.gactx);
    return out;
}

int
expect_gactx_identical(std::span<const std::uint8_t> t,
                       std::span<const std::uint8_t> q,
                       const GactXParams& params,
                       const std::string& context)
{
    const TileResult ref = kernels::gactx_reference_align(t, q, params);
    int checked = 0;
    for (const auto& [name, fn] : gactx_contenders()) {
        const TileResult got = fn(t, q, params);
        const std::string what = name + " " + context +
                                 " npe=" + std::to_string(params.num_pe) +
                                 " ydrop=" + std::to_string(params.ydrop);
        EXPECT_EQ(got.max_score, ref.max_score) << what;
        EXPECT_EQ(got.target_max, ref.target_max) << what;
        EXPECT_EQ(got.query_max, ref.query_max) << what;
        EXPECT_EQ(got.cells_computed, ref.cells_computed) << what;
        EXPECT_EQ(got.traceback_bytes, ref.traceback_bytes) << what;
        EXPECT_EQ(got.stripe_columns, ref.stripe_columns) << what;
        EXPECT_EQ(got.cigar.to_string(), ref.cigar.to_string()) << what;
        ++checked;
        if (got.max_score != ref.max_score ||
            got.cigar.to_string() != ref.cigar.to_string())
            return checked;  // one detailed failure is enough
    }
    return checked;
}

TEST(GactXKernelDiff, RandomTileSweep)
{
    auto params = GactXParams{};
    const std::size_t npes[] = {1, 7, 32, 64};
    const Score ydrops[] = {30, 500, 9430};
    const std::size_t sizes[] = {0, 1, 3, 17, 64, 129};
    Rng rng(6006);
    int tiles = 0;
    for (const std::uint32_t alphabet : {2u, 4u}) {
        for (const std::size_t n : sizes) {
            for (const std::size_t m : sizes) {
                for (const std::size_t npe : npes) {
                    for (const Score ydrop : ydrops) {
                        const auto t = random_codes(n, alphabet, rng);
                        const auto q = random_codes(m, alphabet, rng);
                        params.num_pe = npe;
                        params.ydrop = ydrop;
                        expect_gactx_identical(
                            sp(t), sp(q), params,
                            "random a" + std::to_string(alphabet) +
                                " n=" + std::to_string(n) +
                                " m=" + std::to_string(m));
                        ++tiles;
                    }
                }
            }
        }
    }
    EXPECT_GT(tiles, 800);
}

TEST(GactXKernelDiff, RelatedPairSweep)
{
    // Mutated copies keep the DP path near the main diagonal — the
    // regime the X-drop bound and the stripe jstart scan are tuned for.
    auto params = GactXParams{};
    const double sub_rates[] = {0.05, 0.15, 0.30, 0.50};
    const Score ydrops[] = {100, 1000, 9430};
    Rng rng(7007);
    for (const double sub_rate : sub_rates) {
        for (const Score ydrop : ydrops) {
            for (const std::size_t npe : {1u, 7u, 32u, 64u}) {
                for (int rep = 0; rep < 6; ++rep) {
                    const auto t = random_codes(193, 4, rng);  // odd
                    const auto q = mutated_copy(t, sub_rate, 0.03, rng);
                    params.num_pe = npe;
                    params.ydrop = ydrop;
                    expect_gactx_identical(sp(t), sp(q), params,
                                           "related sub=" +
                                               std::to_string(sub_rate));
                }
            }
        }
    }
}

TEST(GactXKernelDiff, UnitScoringTieBreakSweep)
{
    // Unit scoring over a 2-letter alphabet maximizes score ties: the
    // global best must still be the first strictly-greater column with
    // the smallest row inside it, in stripe order.
    auto params = GactXParams{};
    params.scoring = ScoringParams::unit(1, -1, 2, 1);
    Rng rng(8008);
    for (const std::size_t npe : {1u, 2u, 7u, 32u}) {
        for (const Score ydrop : {5, 25, 200}) {
            for (int rep = 0; rep < 25; ++rep) {
                const auto t = random_codes(77, 2, rng);
                const auto q = random_codes(75, 2, rng);
                params.num_pe = npe;
                params.ydrop = ydrop;
                expect_gactx_identical(sp(t), sp(q), params, "unit2");
            }
        }
    }
}

TEST(GactXKernelDiff, TracebackMemoryLimitSweep)
{
    // Tiny traceback budgets hit the OOM path mid-tile: the kernels
    // must stop after the same stripe with the same accounted bytes.
    auto params = GactXParams{};
    Rng rng(9009);
    const std::uint64_t budgets[] = {1, 16, 64, 257, 1024};
    for (const std::uint64_t budget : budgets) {
        for (const std::size_t npe : {1u, 7u, 32u}) {
            for (int rep = 0; rep < 8; ++rep) {
                const auto t = random_codes(160, 4, rng);
                const auto q = mutated_copy(t, 0.1, 0.02, rng);
                params.num_pe = npe;
                params.ydrop = 9430;
                params.traceback_bytes = budget;
                expect_gactx_identical(sp(t), sp(q), params,
                                       "oom budget=" +
                                           std::to_string(budget));
            }
        }
    }
}

TEST(GactXKernelDiff, SynthEvolvedTileSweep)
{
    // Tiles cut from whole synthetic genomes of the paper's four species
    // pairs, at aligned offsets — realistic indel structure drives the
    // stripe window walk (jstart advancing, frontiers narrowing).
    auto params = GactXParams{};
    synth::AncestorConfig config;
    config.num_chromosomes = 1;
    config.chromosome_length = 6000;
    config.exons_per_chromosome = 5;
    Rng rng(1010);
    int checked = 0;
    for (const auto& spec : synth::paper_species_pairs()) {
        const auto pair = synth::make_species_pair(spec, config, 78);
        const auto& t = pair.target.genome.chromosome(0).codes();
        const auto& q = pair.query.genome.chromosome(0).codes();
        const std::size_t tile = 384;
        const std::size_t lim = std::min(t.size(), q.size()) - tile;
        for (int rep = 0; rep < 10; ++rep) {
            const std::size_t off =
                rng.uniform(static_cast<std::uint32_t>(lim));
            const std::vector<std::uint8_t> tt(t.begin() + off,
                                               t.begin() + off + tile);
            const std::vector<std::uint8_t> qq(q.begin() + off,
                                               q.begin() + off + tile);
            for (const std::size_t npe : {7u, 32u, 64u}) {
                for (const Score ydrop : {500, 9430}) {
                    params.num_pe = npe;
                    params.ydrop = ydrop;
                    checked += expect_gactx_identical(
                        sp(tt), sp(qq), params,
                        "evolved " + spec.pair_name);
                }
            }
        }
    }
    EXPECT_GT(checked, 0);
}

TEST(GactXKernelDiff, DegenerateSpans)
{
    // Empty/one-base spans on either side, and a tile whose row-0
    // boundary dies immediately under a minimal ydrop.
    auto params = GactXParams{};
    Rng rng(1111);
    const auto t = random_codes(50, 4, rng);
    const auto q = random_codes(50, 4, rng);
    const std::vector<std::uint8_t> empty;
    const std::vector<std::uint8_t> one = {2};
    for (const std::size_t npe : {1u, 32u}) {
        params.num_pe = npe;
        params.ydrop = 9430;
        expect_gactx_identical(sp(empty), sp(q), params, "empty target");
        expect_gactx_identical(sp(t), sp(empty), params, "empty query");
        expect_gactx_identical(sp(empty), sp(empty), params, "both empty");
        expect_gactx_identical(sp(one), sp(q), params, "one-base target");
        expect_gactx_identical(sp(t), sp(one), params, "one-base query");
        params.ydrop = 1;  // boundary row dies at the first gap column
        expect_gactx_identical(sp(t), sp(q), params, "ydrop=1");
    }
}

}  // namespace
}  // namespace darwin::align
