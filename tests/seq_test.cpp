/**
 * @file
 * Unit tests for the seq module: alphabet, Sequence, Genome, FASTA,
 * dinucleotide shuffle, intervals.
 */
#include <gtest/gtest.h>

#include <array>
#include <map>
#include <sstream>

#include "seq/alphabet.h"
#include "seq/fasta.h"
#include "seq/genome.h"
#include "seq/interval.h"
#include "seq/sequence.h"
#include "seq/shuffle.h"
#include "util/logging.h"
#include "util/rng.h"

namespace darwin::seq {
namespace {

TEST(Alphabet, EncodeDecodeRoundTrip)
{
    for (const char c : {'A', 'C', 'G', 'T', 'N'})
        EXPECT_EQ(decode_base(encode_base(c)), c);
    EXPECT_EQ(encode_base('a'), BaseA);
    EXPECT_EQ(encode_base('t'), BaseT);
    EXPECT_EQ(encode_base('X'), BaseN);
    EXPECT_EQ(encode_base('-'), BaseN);
}

TEST(Alphabet, Complement)
{
    EXPECT_EQ(complement(BaseA), BaseT);
    EXPECT_EQ(complement(BaseT), BaseA);
    EXPECT_EQ(complement(BaseC), BaseG);
    EXPECT_EQ(complement(BaseG), BaseC);
    EXPECT_EQ(complement(BaseN), BaseN);
}

TEST(Alphabet, TransitionsAreAGandCT)
{
    EXPECT_TRUE(is_transition(BaseA, BaseG));
    EXPECT_TRUE(is_transition(BaseG, BaseA));
    EXPECT_TRUE(is_transition(BaseC, BaseT));
    EXPECT_TRUE(is_transition(BaseT, BaseC));
    EXPECT_FALSE(is_transition(BaseA, BaseA));
    EXPECT_FALSE(is_transition(BaseA, BaseC));
    EXPECT_FALSE(is_transition(BaseA, BaseN));
}

TEST(Alphabet, TransversionsAreTheRest)
{
    EXPECT_TRUE(is_transversion(BaseA, BaseC));
    EXPECT_TRUE(is_transversion(BaseA, BaseT));
    EXPECT_TRUE(is_transversion(BaseG, BaseC));
    EXPECT_FALSE(is_transversion(BaseA, BaseG));
    EXPECT_FALSE(is_transversion(BaseA, BaseA));
}

TEST(Sequence, FromStringAndBack)
{
    Sequence s("chr1", "ACGTN");
    EXPECT_EQ(s.size(), 5u);
    EXPECT_EQ(s.to_string(), "ACGTN");
    EXPECT_EQ(s.name(), "chr1");
    EXPECT_EQ(s[0], BaseA);
    EXPECT_EQ(s[4], BaseN);
}

TEST(Sequence, LowercaseNormalizes)
{
    Sequence s("x", "acgt");
    EXPECT_EQ(s.to_string(), "ACGT");
}

TEST(Sequence, Subsequence)
{
    Sequence s("x", "ACGTACGT");
    EXPECT_EQ(s.subsequence(2, 4).to_string(), "GTAC");
    // Clamped at the end.
    EXPECT_EQ(s.subsequence(6, 100).to_string(), "GT");
    EXPECT_EQ(s.subsequence(100, 5).size(), 0u);
}

TEST(Sequence, ReverseComplement)
{
    Sequence s("x", "AACGTT");
    EXPECT_EQ(s.reverse_complement().to_string(), "AACGTT");
    Sequence t("y", "ACGGG");
    EXPECT_EQ(t.reverse_complement().to_string(), "CCCGT");
}

TEST(Sequence, BaseCountsAndNFraction)
{
    Sequence s("x", "AANNGG");
    const auto counts = s.base_counts();
    EXPECT_EQ(counts[BaseA], 2u);
    EXPECT_EQ(counts[BaseG], 2u);
    EXPECT_EQ(counts[BaseN], 2u);
    EXPECT_NEAR(s.n_fraction(), 1.0 / 3.0, 1e-12);
}

TEST(Sequence, ViewClamps)
{
    Sequence s("x", "ACGT");
    EXPECT_EQ(s.view(1, 3).size(), 2u);
    EXPECT_EQ(s.view(2, 100).size(), 2u);
    EXPECT_EQ(s.view(5, 9).size(), 0u);
}

TEST(Genome, FlattenedHasSeparators)
{
    Genome g("g");
    g.add_chromosome(Sequence("c1", "ACGT"));
    g.add_chromosome(Sequence("c2", "TTTT"));
    const Sequence& flat = g.flattened();
    EXPECT_EQ(flat.size(), 8 + Genome::separator_length());
    EXPECT_EQ(g.flat_offset(0), 0u);
    EXPECT_EQ(g.flat_offset(1), 4 + Genome::separator_length());
    // Separator region is N.
    EXPECT_EQ(flat[5], BaseN);
}

TEST(Genome, ResolveRoundTrip)
{
    Genome g("g");
    g.add_chromosome(Sequence("c1", "ACGTACGT"));
    g.add_chromosome(Sequence("c2", "GGGG"));
    bool sep = false;
    const auto p1 = g.resolve(3, &sep);
    EXPECT_FALSE(sep);
    EXPECT_EQ(p1.chromosome, 0u);
    EXPECT_EQ(p1.offset, 3u);
    const auto p2 = g.resolve(g.flat_offset(1) + 2, &sep);
    EXPECT_FALSE(sep);
    EXPECT_EQ(p2.chromosome, 1u);
    EXPECT_EQ(p2.offset, 2u);
    g.resolve(9, &sep);  // inside the separator
    EXPECT_TRUE(sep);
}

TEST(Genome, TotalLength)
{
    Genome g("g");
    g.add_chromosome(Sequence("c1", "ACGT"));
    g.add_chromosome(Sequence("c2", "AC"));
    EXPECT_EQ(g.total_length(), 6u);
}

TEST(Fasta, ParsesMultiRecord)
{
    std::istringstream in(">chr1 some description\nACGT\nacgt\n"
                          ";comment\n>chr2\nNNNN\n");
    const auto records = read_fasta(in);
    ASSERT_EQ(records.size(), 2u);
    EXPECT_EQ(records[0].name(), "chr1");
    EXPECT_EQ(records[0].to_string(), "ACGTACGT");
    EXPECT_EQ(records[1].name(), "chr2");
    EXPECT_EQ(records[1].to_string(), "NNNN");
}

TEST(Fasta, RejectsDataBeforeHeader)
{
    std::istringstream in("ACGT\n");
    EXPECT_THROW(read_fasta(in), FatalError);
}

TEST(Fasta, RejectsGarbageCharacters)
{
    std::istringstream in(">x\nAC!GT\n");
    EXPECT_THROW(read_fasta(in), FatalError);
}

TEST(Fasta, WriteReadRoundTrip)
{
    std::vector<Sequence> records;
    records.emplace_back("a", std::string(150, 'A') + "CGT");
    records.emplace_back("b", "TTGG");
    std::ostringstream out;
    write_fasta(out, records, 60);
    std::istringstream in(out.str());
    const auto parsed = read_fasta(in);
    ASSERT_EQ(parsed.size(), 2u);
    EXPECT_EQ(parsed[0].to_string(), records[0].to_string());
    EXPECT_EQ(parsed[1].to_string(), records[1].to_string());
}

std::map<std::pair<int, int>, int>
dinucleotide_counts(const Sequence& s)
{
    std::map<std::pair<int, int>, int> counts;
    for (std::size_t i = 0; i + 1 < s.size(); ++i)
        ++counts[{s[i], s[i + 1]}];
    return counts;
}

TEST(Shuffle, PreservesDinucleotideCountsExactly)
{
    Rng rng(17);
    Sequence s("x",
               "ACGTACGGGTTTACACACGTGTGATATCCCGGGAAATTTCACGTGACTGACTGTACA"
               "GCATCGATCGGCTAGCTAGCATCGATTACGGATCCAATTGGCCTTAAGGCCGGTTAA");
    const Sequence shuffled = dinucleotide_shuffle(s, rng);
    ASSERT_EQ(shuffled.size(), s.size());
    EXPECT_EQ(dinucleotide_counts(shuffled), dinucleotide_counts(s));
    EXPECT_EQ(shuffled[0], s[0]);
    EXPECT_EQ(shuffled[shuffled.size() - 1], s[s.size() - 1]);
}

TEST(Shuffle, ActuallyShuffles)
{
    Rng rng(23);
    std::string bases;
    Rng gen(5);
    for (int i = 0; i < 2000; ++i)
        bases.push_back("ACGT"[gen.uniform(4)]);
    Sequence s("x", bases);
    const Sequence shuffled = dinucleotide_shuffle(s, rng);
    EXPECT_NE(shuffled.to_string(), s.to_string());
}

TEST(Shuffle, ShortSequencesReturnedVerbatim)
{
    Rng rng(1);
    Sequence s("x", "AC");
    EXPECT_EQ(dinucleotide_shuffle(s, rng).to_string(), "AC");
}

TEST(Shuffle, HandlesNRuns)
{
    Rng rng(3);
    Sequence s("x", "ACGTNNNACGTNNNACGT");
    const Sequence shuffled = dinucleotide_shuffle(s, rng);
    EXPECT_EQ(dinucleotide_counts(shuffled), dinucleotide_counts(s));
}

TEST(Shuffle, GenomeShufflePreservesShape)
{
    Genome g("g");
    g.add_chromosome(Sequence("c1", "ACGTACGTACGTACGT"));
    g.add_chromosome(Sequence("c2", "GGGGCCCCAAAATTTT"));
    Rng rng(11);
    const Genome shuffled = shuffle_genome(g, rng);
    ASSERT_EQ(shuffled.num_chromosomes(), 2u);
    EXPECT_EQ(shuffled.chromosome(0).size(), 16u);
    EXPECT_EQ(shuffled.chromosome(1).size(), 16u);
}

TEST(Interval, IntersectionLength)
{
    EXPECT_EQ(intersection_length({0, 10}, {5, 20}), 5u);
    EXPECT_EQ(intersection_length({0, 10}, {10, 20}), 0u);
    EXPECT_EQ(intersection_length({5, 6}, {0, 100}), 1u);
}

TEST(Interval, MergeOverlapping)
{
    auto merged = merge_intervals({{5, 10}, {0, 6}, {20, 30}, {29, 35}});
    ASSERT_EQ(merged.size(), 2u);
    EXPECT_EQ(merged[0], (Interval{0, 10}));
    EXPECT_EQ(merged[1], (Interval{20, 35}));
}

TEST(Interval, MergeDropsEmpty)
{
    auto merged = merge_intervals({{5, 5}, {7, 6}});
    EXPECT_TRUE(merged.empty());
}

TEST(Interval, CoveredLength)
{
    EXPECT_EQ(covered_length({{0, 10}, {5, 15}, {20, 25}}), 20u);
}

TEST(Interval, CoverageFraction)
{
    EXPECT_DOUBLE_EQ(coverage_fraction({0, 100}, {{0, 50}}), 0.5);
    EXPECT_DOUBLE_EQ(coverage_fraction({0, 100}, {{25, 75}, {50, 100}}),
                     0.75);
    EXPECT_DOUBLE_EQ(coverage_fraction({10, 10}, {{0, 100}}), 0.0);
}

}  // namespace
}  // namespace darwin::seq
