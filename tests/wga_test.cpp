/**
 * @file
 * Integration tests for the WGA pipeline: filter stage behavior, anchor
 * absorption, the Darwin vs LASTZ-like configurations end-to-end on small
 * synthetic genomes, and MAF output.
 */
#include <gtest/gtest.h>

#include <sstream>

#include "align/gactx.h"
#include "synth/species.h"
#include "util/rng.h"
#include "wga/extend_stage.h"
#include "wga/filter_stage.h"
#include "wga/maf.h"
#include "wga/pipeline.h"

namespace darwin::wga {
namespace {

std::vector<std::uint8_t>
random_codes(std::size_t len, Rng& rng)
{
    std::vector<std::uint8_t> codes(len);
    for (auto& c : codes)
        c = static_cast<std::uint8_t>(rng.uniform(4));
    return codes;
}

std::span<const std::uint8_t>
sp(const std::vector<std::uint8_t>& v)
{
    return {v.data(), v.size()};
}

/** A pair of sequences sharing one planted conserved region. */
struct PlantedPair {
    std::vector<std::uint8_t> target;
    std::vector<std::uint8_t> query;
    std::size_t t_start;  ///< planted region start in target
    std::size_t q_start;  ///< and in query
    std::size_t length;
};

PlantedPair
make_planted(std::size_t noise, std::size_t planted, double sub_rate,
             double indel_rate, std::uint64_t seed)
{
    Rng rng(seed);
    PlantedPair out;
    out.length = planted;
    const auto conserved = random_codes(planted, rng);
    out.target = random_codes(noise, rng);
    out.t_start = out.target.size();
    out.target.insert(out.target.end(), conserved.begin(), conserved.end());
    auto tail = random_codes(noise, rng);
    out.target.insert(out.target.end(), tail.begin(), tail.end());

    out.query = random_codes(noise / 2, rng);
    out.q_start = out.query.size();
    for (std::size_t i = 0; i < conserved.size(); ++i) {
        if (rng.chance(indel_rate)) {
            if (rng.chance(0.5))
                continue;
            out.query.push_back(
                static_cast<std::uint8_t>(rng.uniform(4)));
        }
        std::uint8_t base = conserved[i];
        if (rng.chance(sub_rate))
            base = static_cast<std::uint8_t>(rng.uniform(4));
        out.query.push_back(base);
    }
    auto qtail = random_codes(noise / 2, rng);
    out.query.insert(out.query.end(), qtail.begin(), qtail.end());
    return out;
}

TEST(FilterStage, GappedPassesConservedSeed)
{
    const auto pair = make_planted(500, 600, 0.08, 0.01, 101);
    const auto params = WgaParams::darwin_defaults();
    const FilterStage filter(params, sp(pair.target), sp(pair.query));
    const seed::SeedHit hit{pair.t_start + 300, pair.q_start + 295};
    FilterStats stats;
    const auto candidate = filter.filter(hit, &stats);
    ASSERT_TRUE(candidate.has_value());
    EXPECT_GE(candidate->filter_score, params.filter_threshold);
    EXPECT_EQ(stats.tiles, 1u);
    EXPECT_EQ(stats.passed, 1u);
    // Anchor must stay near the seed's neighborhood (within the tile).
    EXPECT_NEAR(static_cast<double>(candidate->anchor_t),
                static_cast<double>(hit.target_pos), 200.0);
}

TEST(FilterStage, GappedRejectsNoiseSeed)
{
    const auto pair = make_planted(2000, 100, 0.5, 0.1, 102);
    const auto params = WgaParams::darwin_defaults();
    const FilterStage filter(params, sp(pair.target), sp(pair.query));
    // A seed hit in pure noise.
    const seed::SeedHit hit{100, 1500};
    const auto candidate = filter.filter(hit);
    EXPECT_FALSE(candidate.has_value());
}

TEST(FilterStage, GappedToleratesIndelsUngappedDoesNot)
{
    // Conserved region with a small indel right next to the seed: the
    // gapped filter passes it, the ungapped filter loses the score.
    Rng rng(103);
    auto target = random_codes(2000, rng);
    auto query = target;
    // Indels tight around the 19bp seed at target 1000..1018: the clean
    // diagonal run is ~24 matches (< LASTZ's 30-match threshold), but the
    // full conserved context within the band is large.
    const auto ins = random_codes(12, rng);
    query.insert(query.begin() + 1021, ins.begin(), ins.end());
    const auto ins2 = random_codes(12, rng);
    query.insert(query.begin() + 997, ins2.begin(), ins2.end());

    auto darwin_params = WgaParams::darwin_defaults();
    const FilterStage gapped(darwin_params, sp(target), sp(query));
    auto lastz_params = WgaParams::lastz_defaults();
    const FilterStage ungapped(lastz_params, sp(target), sp(query));

    // Seed hit at the (now shifted) diagonal: query position 1000+12.
    const seed::SeedHit hit{1000, 1012};
    const auto g = gapped.filter(hit);
    const auto u = ungapped.filter(hit);
    ASSERT_TRUE(g.has_value());
    EXPECT_FALSE(u.has_value());
}

TEST(FilterStage, SortsByDescendingScore)
{
    const auto pair = make_planted(1000, 800, 0.05, 0.0, 104);
    const auto params = WgaParams::darwin_defaults();
    const FilterStage filter(params, sp(pair.target), sp(pair.query));
    std::vector<seed::SeedHit> hits;
    for (std::size_t off = 100; off + 100 < pair.length; off += 150)
        hits.push_back({pair.t_start + off, pair.q_start + off});
    const auto candidates = filter.filter_all(hits);
    ASSERT_GE(candidates.size(), 2u);
    for (std::size_t i = 1; i < candidates.size(); ++i)
        EXPECT_GE(candidates[i - 1].filter_score,
                  candidates[i].filter_score);
}

TEST(FilterStage, ParallelMatchesSerial)
{
    const auto pair = make_planted(1500, 700, 0.1, 0.01, 105);
    const auto params = WgaParams::darwin_defaults();
    const FilterStage filter(params, sp(pair.target), sp(pair.query));
    std::vector<seed::SeedHit> hits;
    for (std::size_t off = 50; off + 100 < pair.length; off += 37)
        hits.push_back({pair.t_start + off, pair.q_start + off});
    FilterStats s1, s2;
    const auto serial = filter.filter_all(hits, &s1);
    ThreadPool pool(4);
    const auto parallel = filter.filter_all(hits, &s2, &pool);
    ASSERT_EQ(serial.size(), parallel.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
        EXPECT_EQ(serial[i].anchor_t, parallel[i].anchor_t);
        EXPECT_EQ(serial[i].filter_score, parallel[i].filter_score);
    }
    EXPECT_EQ(s1.tiles, s2.tiles);
    EXPECT_EQ(s1.passed, s2.passed);
}

TEST(ExtendStage, AbsorbsDuplicateAnchors)
{
    const auto pair = make_planted(500, 900, 0.08, 0.01, 106);
    auto params = WgaParams::darwin_defaults();
    params.gactx.tile_size = 512;
    const align::GactXTileAligner aligner(params.gactx);
    ExtendStage extend(params, sp(pair.target), sp(pair.query));
    // Three anchors inside the same conserved region: the first extension
    // covers the region; the others must be absorbed.
    std::vector<FilterCandidate> candidates = {
        {pair.t_start + 450, pair.q_start + 445, 30000},
        {pair.t_start + 200, pair.q_start + 198, 20000},
        {pair.t_start + 700, pair.q_start + 693, 15000},
    };
    ExtendStats stats;
    const auto alignments = extend.extend_all(candidates, aligner, &stats);
    EXPECT_EQ(stats.anchors_in, 3u);
    // All three land in one wave; the merge suppresses the re-derived
    // paths, so exactly one alignment survives.
    EXPECT_EQ(stats.duplicates, 2u);
    ASSERT_EQ(alignments.size(), 1u);
    EXPECT_GT(alignments[0].score, params.extension_threshold);

    // A fourth anchor, arriving after the wave, is absorbed up front.
    const std::vector<FilterCandidate> later = {
        {pair.t_start + 500, pair.q_start + 495, 10000}};
    ExtendStats stats2;
    const auto more = extend.extend_all(later, aligner, &stats2);
    EXPECT_TRUE(more.empty());
    EXPECT_EQ(stats2.absorbed, 1u);
}

TEST(ExtendStage, DropsBelowThreshold)
{
    Rng rng(107);
    const auto target = random_codes(3000, rng);
    const auto query = random_codes(3000, rng);
    auto params = WgaParams::darwin_defaults();
    params.gactx.tile_size = 256;
    const align::GactXTileAligner aligner(params.gactx);
    ExtendStage extend(params, sp(target), sp(query));
    std::vector<FilterCandidate> candidates = {{1500, 1500, 4000}};
    ExtendStats stats;
    const auto alignments = extend.extend_all(candidates, aligner, &stats);
    EXPECT_TRUE(alignments.empty());
    EXPECT_EQ(stats.extended, 1u);
    EXPECT_EQ(stats.alignments_out, 0u);
}

/** Small species pair shared by the end-to-end tests. */
synth::SpeciesPair
small_pair(const std::string& name, std::size_t chrom_len)
{
    synth::AncestorConfig config;
    config.num_chromosomes = 1;
    config.chromosome_length = chrom_len;
    config.exons_per_chromosome = 10;
    return synth::make_species_pair(synth::find_species_pair(name), config,
                                    4242);
}

TEST(Pipeline, EndToEndFindsConservation)
{
    const auto pair = small_pair("dm6-droSim1", 60000);
    const WgaPipeline pipeline(WgaParams::darwin_defaults());
    ThreadPool pool(4);
    const auto result =
        pipeline.run(pair.target.genome, pair.query.genome, &pool);
    // A closely related pair: most of the genome aligns.
    ASSERT_FALSE(result.alignments.empty());
    ASSERT_FALSE(result.chains.empty());
    std::uint64_t matched = 0;
    for (const auto& chain : result.chains)
        matched += chain.matched_bases;
    EXPECT_GT(matched, 30000u);
    // Workload counters are filled.
    EXPECT_GT(result.stats.seeding.seed_lookups, 0u);
    EXPECT_GT(result.stats.filter.tiles, 0u);
    EXPECT_GT(result.stats.extend.extension.tiles, 0u);
}

TEST(Pipeline, DarwinBeatsLastzOnDistantPair)
{
    // The paper's central claim (Table III): gapped filtering recovers
    // more matched base-pairs, and the gap grows with divergence.
    const auto pair = small_pair("ce11-cb4", 60000);
    ThreadPool pool(4);
    const WgaPipeline darwin(WgaParams::darwin_defaults());
    const WgaPipeline lastz(WgaParams::lastz_defaults());
    const auto darwin_result =
        darwin.run(pair.target.genome, pair.query.genome, &pool);
    const auto lastz_result =
        lastz.run(pair.target.genome, pair.query.genome, &pool);
    std::uint64_t darwin_matched = 0, lastz_matched = 0;
    for (const auto& c : darwin_result.chains)
        darwin_matched += c.matched_bases;
    for (const auto& c : lastz_result.chains)
        lastz_matched += c.matched_bases;
    EXPECT_GT(darwin_matched, lastz_matched);
}

TEST(Pipeline, DeterministicAcrossRuns)
{
    const auto pair = small_pair("dm6-droYak2", 20000);
    const WgaPipeline pipeline(WgaParams::darwin_defaults());
    const auto r1 = pipeline.run(pair.target.genome, pair.query.genome);
    ThreadPool pool(3);
    const auto r2 =
        pipeline.run(pair.target.genome, pair.query.genome, &pool);
    ASSERT_EQ(r1.alignments.size(), r2.alignments.size());
    for (std::size_t i = 0; i < r1.alignments.size(); ++i) {
        EXPECT_EQ(r1.alignments[i].target_start,
                  r2.alignments[i].target_start);
        EXPECT_EQ(r1.alignments[i].score, r2.alignments[i].score);
    }
}

TEST(Pipeline, AlignmentsRespectHe)
{
    const auto pair = small_pair("dm6-dp4", 30000);
    const auto params = WgaParams::darwin_defaults();
    const WgaPipeline pipeline(params);
    const auto result = pipeline.run(pair.target.genome, pair.query.genome);
    for (const auto& alignment : result.alignments) {
        EXPECT_GE(alignment.score, params.extension_threshold);
        // Paths match their reported coordinates.
        EXPECT_EQ(alignment.cigar.target_consumed(),
                  alignment.target_span());
        EXPECT_EQ(alignment.cigar.query_consumed(),
                  alignment.query_span());
    }
}

TEST(Maf, WritesWellFormedRecords)
{
    const auto pair = small_pair("dm6-droSim1", 15000);
    const WgaPipeline pipeline(WgaParams::darwin_defaults());
    const auto result = pipeline.run(pair.target.genome, pair.query.genome);
    ASSERT_FALSE(result.alignments.empty());
    std::ostringstream out;
    write_maf(out, result.alignments, pair.target.genome,
              pair.query.genome);
    const std::string maf = out.str();
    EXPECT_NE(maf.find("##maf version=1"), std::string::npos);
    EXPECT_NE(maf.find("a score="), std::string::npos);
    // Both genomes' chromosome names appear.
    EXPECT_NE(maf.find("dm6s_chr1"), std::string::npos);
    EXPECT_NE(maf.find("droSim1s_chr1"), std::string::npos);
    // Gapped texts of the two s-lines have equal length per block.
    std::istringstream lines(maf);
    std::string line;
    std::size_t last_len = 0;
    int s_count = 0;
    while (std::getline(lines, line)) {
        if (line.rfind("s ", 0) == 0) {
            const auto text = line.substr(line.rfind(' ') + 1);
            if (s_count % 2 == 1) {
                EXPECT_EQ(text.size(), last_len);
            }
            last_len = text.size();
            ++s_count;
        }
    }
    EXPECT_GT(s_count, 0);
}

}  // namespace
}  // namespace darwin::wga
