/**
 * @file
 * Cross-validation of the heuristic kernels against the full references:
 * banded SW vs full SW, GACT-X (stripe) vs the row-granular X-drop
 * reference vs full NW-extension, GACT vs GACT-X, ungapped X-drop, and
 * the tiled extension driver.
 */
#include <gtest/gtest.h>

#include "align/banded_sw.h"
#include "align/extension.h"
#include "align/gact.h"
#include "align/gactx.h"
#include "align/needleman_wunsch.h"
#include "align/smith_waterman.h"
#include "align/ungapped_xdrop.h"
#include "align/xdrop_reference.h"
#include "seq/sequence.h"
#include "util/rng.h"

namespace darwin::align {
namespace {

using seq::encode_string;

std::vector<std::uint8_t>
random_codes(std::size_t len, Rng& rng)
{
    std::vector<std::uint8_t> codes(len);
    for (auto& c : codes)
        c = static_cast<std::uint8_t>(rng.uniform(4));
    return codes;
}

std::span<const std::uint8_t>
sp(const std::vector<std::uint8_t>& v)
{
    return {v.data(), v.size()};
}

/** Copy with point substitutions and short indels; related sequences. */
std::vector<std::uint8_t>
mutated_copy(const std::vector<std::uint8_t>& src, double sub_rate,
             double indel_rate, Rng& rng)
{
    std::vector<std::uint8_t> out;
    out.reserve(src.size());
    for (std::size_t i = 0; i < src.size(); ++i) {
        if (rng.chance(indel_rate)) {
            if (rng.chance(0.5)) {
                continue;  // delete
            }
            out.push_back(static_cast<std::uint8_t>(rng.uniform(4)));
        }
        std::uint8_t base = src[i];
        if (rng.chance(sub_rate))
            base = static_cast<std::uint8_t>(rng.uniform(4));
        out.push_back(base);
    }
    return out;
}

TEST(BandedSw, EqualsFullSwWithFullBand)
{
    Rng rng(41);
    const auto scoring = ScoringParams::paper_defaults();
    for (int trial = 0; trial < 15; ++trial) {
        const auto t = random_codes(50, rng);
        auto q = mutated_copy(t, 0.15, 0.0, rng);
        const auto banded = banded_smith_waterman(sp(t), sp(q), scoring,
                                                  /*band=*/64);
        const auto full = smith_waterman_score(sp(t), sp(q), scoring);
        EXPECT_EQ(banded.max_score, full);
    }
}

TEST(BandedSw, NeverExceedsFullSw)
{
    Rng rng(42);
    const auto scoring = ScoringParams::paper_defaults();
    for (int trial = 0; trial < 15; ++trial) {
        const auto t = random_codes(80, rng);
        const auto q = mutated_copy(t, 0.2, 0.05, rng);
        const auto banded =
            banded_smith_waterman(sp(t), sp(q), scoring, 8);
        const auto full = smith_waterman_score(sp(t), sp(q), scoring);
        EXPECT_LE(banded.max_score, full);
        EXPECT_GE(banded.max_score, 0);
    }
}

TEST(BandedSw, FindsDiagonalSimilarity)
{
    Rng rng(43);
    const auto scoring = ScoringParams::paper_defaults();
    const auto t = random_codes(320, rng);
    const auto q = mutated_copy(t, 0.10, 0.01, rng);
    const auto result =
        banded_smith_waterman(sp(t), sp(q), scoring, 32);
    // ~90% identity over 320bp: the score must be well above Hf = 4000.
    EXPECT_GT(result.max_score, 4000);
    EXPECT_GT(result.target_max, 200u);
}

TEST(BandedSw, MissesOffBandAlignment)
{
    Rng rng(44);
    const auto scoring = ScoringParams::paper_defaults();
    // Query = 100 junk bases + copy of target: alignment sits 100 off
    // the diagonal, outside a +/-32 band.
    const auto t = random_codes(150, rng);
    auto q = random_codes(100, rng);
    q.insert(q.end(), t.begin(), t.end());
    const auto narrow =
        banded_smith_waterman(sp(t), sp(q), scoring, 32);
    const auto wide =
        banded_smith_waterman(sp(t), sp(q), scoring, 150);
    EXPECT_LT(narrow.max_score, wide.max_score / 2);
}

TEST(BandedSw, ZeroBandIsDiagonalOnly)
{
    const auto scoring = ScoringParams::unit(1, -1, 2, 1);
    const auto t = encode_string("ACGTACGT");
    const auto result = banded_smith_waterman(
        {t.data(), t.size()}, {t.data(), t.size()}, scoring, 0);
    EXPECT_EQ(result.max_score, 8);
}

TEST(BandedSw, EmptyInputs)
{
    const auto scoring = ScoringParams::unit();
    const std::vector<std::uint8_t> empty;
    const auto t = encode_string("ACGT");
    EXPECT_EQ(banded_smith_waterman({empty.data(), 0},
                                    {t.data(), t.size()}, scoring, 4)
                  .max_score,
              0);
    EXPECT_EQ(banded_smith_waterman({t.data(), t.size()},
                                    {empty.data(), 0}, scoring, 4)
                  .max_score,
              0);
}

TEST(BandedSw, EmptySpansReturnAllZeroResult)
{
    // Documented boundary semantics (banded_sw.h): empty target and/or
    // query yields the default BswResult, cells_computed included.
    const auto scoring = ScoringParams::paper_defaults();
    const std::vector<std::uint8_t> empty;
    const auto t = encode_string("ACGT");
    for (const std::size_t band : {0u, 4u, 64u}) {
        for (const auto& [tgt, qry] :
             {std::pair{sp(empty), sp(t)}, std::pair{sp(t), sp(empty)},
              std::pair{sp(empty), sp(empty)}}) {
            const auto r = banded_smith_waterman(tgt, qry, scoring, band);
            EXPECT_EQ(r, BswResult{}) << "band=" << band;
        }
    }
}

TEST(BandedSw, ColumnZeroDiagonalBoundary)
{
    // The cell (i=2, j=1) reaches its match diagonally from the
    // V(1, 0) = 0 alignment-start boundary in column 0. The seed kernel
    // read -inf there and scored 0; the documented semantics (full SW
    // restricted to the band) require the match to score.
    const auto scoring = ScoringParams::unit(1, -1, 2, 1);
    const auto t = encode_string("A");
    const auto q = encode_string("CA");
    for (const std::size_t band : {1u, 2u, 8u}) {
        const auto r = banded_smith_waterman(
            {t.data(), t.size()}, {q.data(), q.size()}, scoring, band);
        EXPECT_EQ(r.max_score, 1) << "band=" << band;
        EXPECT_EQ(r.target_max, 1u) << "band=" << band;
        EXPECT_EQ(r.query_max, 2u) << "band=" << band;
    }
}

TEST(BandedSw, ZeroBandCountsOnlyDiagonalCells)
{
    // band == 0 degenerates to an ungapped main-diagonal scan: exactly
    // min(n, m) cells, even when the query is much longer.
    const auto scoring = ScoringParams::unit(1, -1, 2, 1);
    Rng rng(45);
    const auto t = random_codes(4, rng);
    const auto q = random_codes(100, rng);
    const auto r = banded_smith_waterman(sp(t), sp(q), scoring, 0);
    EXPECT_EQ(r.cells_computed, 4u);

    const auto single = encode_string("G");
    const auto r1 = banded_smith_waterman(
        {single.data(), single.size()}, {single.data(), single.size()},
        scoring, 0);
    EXPECT_EQ(r1.cells_computed, 1u);
    EXPECT_EQ(r1.max_score, 1);
    EXPECT_EQ(r1.target_max, 1u);
    EXPECT_EQ(r1.query_max, 1u);
}

TEST(UngappedXdrop, PerfectSeedExtendsFully)
{
    Rng rng(45);
    const auto scoring = ScoringParams::paper_defaults();
    const auto t = random_codes(400, rng);
    const auto q = t;  // identical
    const auto result = ungapped_xdrop_extend(sp(t), sp(q), 200, 200, 19,
                                              scoring, 910);
    EXPECT_EQ(result.target_lo, 0u);
    EXPECT_EQ(result.target_hi, 400u);
    EXPECT_GT(result.score, 91 * 350);
}

TEST(UngappedXdrop, StopsAtDivergence)
{
    Rng rng(46);
    const auto scoring = ScoringParams::paper_defaults();
    // 100 identical bases then unrelated noise on both sides.
    auto t = random_codes(300, rng);
    auto q = random_codes(300, rng);
    for (std::size_t i = 100; i < 200; ++i)
        q[i] = t[i];
    const auto result = ungapped_xdrop_extend(sp(t), sp(q), 140, 140, 19,
                                              scoring, 910);
    // The best segment should roughly cover [100, 200).
    EXPECT_GE(result.target_lo, 80u);
    EXPECT_LE(result.target_hi, 230u);
    EXPECT_GT(result.score, 5000);
    // Anchor at the midpoint of the segment.
    EXPECT_GE(result.anchor_t, result.target_lo);
    EXPECT_LT(result.anchor_t, result.target_hi);
}

TEST(UngappedXdrop, IndelKillsExtension)
{
    Rng rng(47);
    const auto scoring = ScoringParams::paper_defaults();
    // Identical except a 10bp insertion in the query at position 150:
    // ungapped extension cannot cross it.
    auto t = random_codes(300, rng);
    auto q = t;
    const auto ins = random_codes(10, rng);
    q.insert(q.begin() + 150, ins.begin(), ins.end());
    const auto with_indel = ungapped_xdrop_extend(
        sp(t), sp(q), 50, 50, 19, scoring, 910);
    const auto clean = ungapped_xdrop_extend(
        sp(t), sp(t), 50, 50, 19, scoring, 910);
    EXPECT_LT(with_indel.score, clean.score / 2 + 1000);
    EXPECT_LE(with_indel.target_hi, 165u);
}

TEST(XdropReference, HugeYEqualsFullNwExtension)
{
    Rng rng(48);
    XDropConfig config;
    config.ydrop = INT32_MAX / 8;
    for (int trial = 0; trial < 12; ++trial) {
        const auto t = random_codes(60, rng);
        const auto q = mutated_copy(t, 0.2, 0.05, rng);
        const auto xd = xdrop_extend(sp(t), sp(q), config);
        const auto ref = nw_extend_reference(sp(t), sp(q), config.scoring);
        EXPECT_EQ(xd.max_score, ref.max_score);
        EXPECT_EQ(xd.target_max, ref.target_max);
        EXPECT_EQ(xd.query_max, ref.query_max);
    }
}

TEST(XdropReference, PathScoreMatchesMax)
{
    Rng rng(49);
    XDropConfig config;
    config.ydrop = 3000;
    for (int trial = 0; trial < 12; ++trial) {
        const auto t = random_codes(200, rng);
        const auto q = mutated_copy(t, 0.15, 0.02, rng);
        const auto xd = xdrop_extend(sp(t), sp(q), config);
        if (xd.cigar.empty())
            continue;
        EXPECT_TRUE(xd.cigar.consistent_with(sp(t), sp(q)));
        EXPECT_EQ(xd.cigar.score({t.data(), xd.target_max},
                                 {q.data(), xd.query_max},
                                 config.scoring),
                  xd.max_score);
    }
}

TEST(XdropReference, NeverExceedsFullExtension)
{
    Rng rng(50);
    XDropConfig config;
    config.ydrop = 500;
    for (int trial = 0; trial < 12; ++trial) {
        const auto t = random_codes(100, rng);
        const auto q = mutated_copy(t, 0.3, 0.05, rng);
        const auto xd = xdrop_extend(sp(t), sp(q), config);
        const auto ref = nw_extend_reference(sp(t), sp(q), config.scoring);
        EXPECT_LE(xd.max_score, ref.max_score);
        EXPECT_LE(xd.cells_computed,
                  static_cast<std::uint64_t>(t.size()) * q.size() +
                      t.size() + q.size() + 1);
    }
}

TEST(XdropReference, TracebackMemoryLimitTruncates)
{
    Rng rng(51);
    XDropConfig config;
    config.ydrop = INT32_MAX / 8;
    config.traceback_limit_bytes = 200;  // absurdly small
    const auto t = random_codes(100, rng);
    const auto q = t;
    const auto xd = xdrop_extend(sp(t), sp(q), config);
    // Still returns a valid (truncated) result.
    EXPECT_GT(xd.max_score, 0);
    EXPECT_LT(xd.query_max, 20u);
    EXPECT_TRUE(xd.cigar.consistent_with(sp(t), sp(q)));
}

TEST(GactX, HugeYEqualsFullNwExtension)
{
    Rng rng(52);
    GactXParams params;
    params.ydrop = INT32_MAX / 8;
    params.tile_size = 512;
    params.num_pe = 8;
    params.traceback_bytes = 1ULL << 30;
    const GactXTileAligner aligner(params);
    for (int trial = 0; trial < 10; ++trial) {
        const auto t = random_codes(60, rng);
        const auto q = mutated_copy(t, 0.2, 0.05, rng);
        const auto tile = aligner.align_tile(sp(t), sp(q));
        const auto ref = nw_extend_reference(sp(t), sp(q), params.scoring);
        EXPECT_EQ(tile.max_score, ref.max_score);
        EXPECT_EQ(tile.target_max, ref.target_max);
        EXPECT_EQ(tile.query_max, ref.query_max);
    }
}

TEST(GactX, StripePruningIsSupersetOfRowPruning)
{
    // Stripe-granular windows compute a superset of the row-granular
    // reference's cells, so GACT-X's Vmax can never be lower.
    Rng rng(53);
    GactXParams params;
    params.ydrop = 1500;
    params.tile_size = 512;
    params.num_pe = 16;
    const GactXTileAligner aligner(params);
    XDropConfig row_config;
    row_config.ydrop = params.ydrop;
    for (int trial = 0; trial < 15; ++trial) {
        const auto t = random_codes(300, rng);
        const auto q = mutated_copy(t, 0.25, 0.04, rng);
        const auto stripe = aligner.align_tile(sp(t), sp(q));
        const auto row = xdrop_extend(sp(t), sp(q), row_config);
        EXPECT_GE(stripe.max_score, row.max_score);
        const auto full = nw_extend_reference(sp(t), sp(q),
                                              params.scoring);
        EXPECT_LE(stripe.max_score, full.max_score);
    }
}

TEST(GactX, PathScoreMatchesMax)
{
    Rng rng(54);
    GactXParams params;  // paper defaults, Y = 9430
    params.tile_size = 512;
    const GactXTileAligner aligner(params);
    for (int trial = 0; trial < 10; ++trial) {
        const auto t = random_codes(500, rng);
        const auto q = mutated_copy(t, 0.2, 0.03, rng);
        const auto tile = aligner.align_tile(sp(t), sp(q));
        if (tile.cigar.empty())
            continue;
        EXPECT_TRUE(tile.cigar.consistent_with(sp(t), sp(q)));
        EXPECT_EQ(tile.cigar.score({t.data(), tile.target_max},
                                   {q.data(), tile.query_max},
                                   params.scoring),
                  tile.max_score);
        EXPECT_EQ(tile.cigar.target_consumed(), tile.target_max);
        EXPECT_EQ(tile.cigar.query_consumed(), tile.query_max);
    }
}

TEST(GactX, ComputesFarFewerCellsThanFullTile)
{
    Rng rng(55);
    GactXParams params;  // Y = 9430
    params.tile_size = 1024;
    const GactXTileAligner aligner(params);
    const auto t = random_codes(1024, rng);
    const auto q = mutated_copy(t, 0.1, 0.01, rng);
    const auto tile = aligner.align_tile(sp(t), sp(q));
    const std::uint64_t full_cells =
        static_cast<std::uint64_t>(t.size()) * q.size();
    EXPECT_LT(tile.cells_computed, full_cells / 2);
    EXPECT_GT(tile.max_score, 0);
}

TEST(GactX, StripeColumnsReported)
{
    Rng rng(56);
    GactXParams params;
    params.tile_size = 512;
    params.num_pe = 32;
    const GactXTileAligner aligner(params);
    const auto t = random_codes(512, rng);
    const auto q = mutated_copy(t, 0.1, 0.01, rng);
    const auto tile = aligner.align_tile(sp(t), sp(q));
    EXPECT_FALSE(tile.stripe_columns.empty());
    EXPECT_LE(tile.stripe_columns.size(), (q.size() + 31) / 32);
    std::uint64_t total = 0;
    for (const auto c : tile.stripe_columns)
        total += c;
    // Stripe columns x Npe bounds the computed cells from above.
    EXPECT_GE(total * 32, tile.cells_computed);
}

TEST(Gact, TileSizeFromMemory)
{
    // (T+1)^2 / 2 <= bytes.
    EXPECT_EQ(gact_tile_size_for_memory(1ULL << 20), 1447u);
    EXPECT_EQ(gact_tile_size_for_memory(2ULL << 20), 2047u);
    const std::size_t t512k = gact_tile_size_for_memory(512ULL << 10);
    EXPECT_NEAR(static_cast<double>(t512k), 1023.0, 1.0);
}

TEST(Gact, TileEqualsFullNwExtension)
{
    Rng rng(57);
    GactParams params;
    params.traceback_bytes = 1ULL << 20;
    const GactTileAligner aligner(params);
    EXPECT_EQ(aligner.tile_size(), 1447u);
    for (int trial = 0; trial < 8; ++trial) {
        const auto t = random_codes(80, rng);
        const auto q = mutated_copy(t, 0.2, 0.05, rng);
        const auto tile = aligner.align_tile(sp(t), sp(q));
        const auto ref = nw_extend_reference(sp(t), sp(q), params.scoring);
        EXPECT_EQ(tile.max_score, ref.max_score);
    }
}

TEST(Extension, RecoversPlantedAlignment)
{
    Rng rng(58);
    const auto scoring = ScoringParams::paper_defaults();
    GactXParams params;
    params.tile_size = 256;
    params.overlap = 32;
    const GactXTileAligner aligner(params);

    // Target: noise + conserved region + noise. Query: independent noise
    // around a mutated copy of the same conserved region.
    const auto conserved = random_codes(900, rng);
    auto t = random_codes(300, rng);
    t.insert(t.end(), conserved.begin(), conserved.end());
    auto t_tail = random_codes(300, rng);
    t.insert(t.end(), t_tail.begin(), t_tail.end());

    auto q = random_codes(500, rng);
    const auto q_copy = mutated_copy(conserved, 0.08, 0.01, rng);
    const std::size_t q_start = q.size();
    q.insert(q.end(), q_copy.begin(), q_copy.end());
    auto q_tail = random_codes(200, rng);
    q.insert(q.end(), q_tail.begin(), q_tail.end());

    // Anchor in the middle of the conserved region.
    ExtensionStats stats;
    const auto alignment = extend_anchor(sp(t), sp(q), 300 + 450,
                                         q_start + 440, aligner, scoring,
                                         &stats);
    ASSERT_FALSE(alignment.empty());
    EXPECT_GT(alignment.score, 30000);
    // The alignment should cover most of the conserved region.
    EXPECT_LT(alignment.target_start, 400u);
    EXPECT_GT(alignment.target_end, 1050u);
    EXPECT_GE(stats.tiles, 2u);
    // Score must match the path.
    const std::span<const std::uint8_t> ts{
        t.data() + alignment.target_start,
        alignment.target_end - alignment.target_start};
    const std::span<const std::uint8_t> qs{
        q.data() + alignment.query_start,
        alignment.query_end - alignment.query_start};
    EXPECT_TRUE(alignment.cigar.consistent_with(ts, qs));
    EXPECT_EQ(alignment.cigar.score(ts, qs, scoring), alignment.score);
}

TEST(Extension, NoiseAnchorsGoNowhere)
{
    Rng rng(59);
    const auto scoring = ScoringParams::paper_defaults();
    GactXParams params;
    params.tile_size = 256;
    const GactXTileAligner aligner(params);
    const auto t = random_codes(2000, rng);
    const auto q = random_codes(2000, rng);
    const auto alignment =
        extend_anchor(sp(t), sp(q), 1000, 1000, aligner, scoring);
    // Random DNA at these penalties yields short, low-scoring scraps.
    EXPECT_LT(alignment.score, 4000);
}

TEST(Extension, AnchorAtSequenceEdges)
{
    Rng rng(60);
    const auto scoring = ScoringParams::paper_defaults();
    GactXParams params;
    params.tile_size = 256;
    const GactXTileAligner aligner(params);
    const auto t = random_codes(500, rng);
    const auto q = t;
    // Anchor at the very start and very end.
    const auto a0 = extend_anchor(sp(t), sp(q), 0, 0, aligner, scoring);
    EXPECT_GT(a0.score, 40000);
    EXPECT_EQ(a0.target_start, 0u);
    EXPECT_EQ(a0.target_end, 500u);
    const auto a1 =
        extend_anchor(sp(t), sp(q), 500, 500, aligner, scoring);
    EXPECT_GT(a1.score, 40000);
    EXPECT_EQ(a1.target_start, 0u);
}

TEST(Extension, CrossesLongGapThatUngappedCannot)
{
    Rng rng(61);
    const auto scoring = ScoringParams::paper_defaults();
    GactXParams params;  // Y = 9430 bridges gaps up to ~300bp per side
    params.tile_size = 1024;
    params.overlap = 128;
    const GactXTileAligner aligner(params);
    // Query = target with a 200bp insertion in the middle.
    const auto t = random_codes(1200, rng);
    auto q = t;
    const auto insert = random_codes(200, rng);
    q.insert(q.begin() + 600, insert.begin(), insert.end());
    const auto alignment =
        extend_anchor(sp(t), sp(q), 100, 100, aligner, scoring);
    ASSERT_FALSE(alignment.empty());
    // Both flanks aligned => the gap was crossed.
    EXPECT_GT(alignment.target_end, 1100u);
    EXPECT_GE(alignment.cigar.gap_bases(), 200u);
}

}  // namespace
}  // namespace darwin::align
