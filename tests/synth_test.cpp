/**
 * @file
 * Unit tests for the synth module: Markov source, mutation model,
 * genome-level evolution, species pairs, distance estimation.
 */
#include <gtest/gtest.h>

#include <cmath>

#include "synth/distance.h"
#include "util/logging.h"
#include "synth/evolver.h"
#include "synth/markov_source.h"
#include "synth/mutator.h"
#include "synth/species.h"

namespace darwin::synth {
namespace {

TEST(MarkovSource, GeneratesRequestedLength)
{
    Rng rng(1);
    const auto s = MarkovSource::genome_like().generate(1000, rng);
    EXPECT_EQ(s.size(), 1000u);
    for (std::size_t i = 0; i < s.size(); ++i)
        EXPECT_LT(s[i], seq::kNumBases);
}

TEST(MarkovSource, ZeroLength)
{
    Rng rng(1);
    EXPECT_EQ(MarkovSource::uniform().generate(0, rng).size(), 0u);
}

TEST(MarkovSource, GenomeLikeDepletesCpG)
{
    Rng rng(2);
    const auto s = MarkovSource::genome_like().generate(200000, rng);
    std::uint64_t c_total = 0;
    std::uint64_t cg = 0;
    for (std::size_t i = 0; i + 1 < s.size(); ++i) {
        if (s[i] == seq::BaseC) {
            ++c_total;
            if (s[i + 1] == seq::BaseG)
                ++cg;
        }
    }
    ASSERT_GT(c_total, 0u);
    // The conditional P(G|C) = 0.06 is far below the ~0.21 marginal.
    EXPECT_LT(static_cast<double>(cg) / c_total, 0.10);
}

TEST(MarkovSource, Deterministic)
{
    Rng a(7), b(7);
    const auto s1 = MarkovSource::genome_like().generate(500, a);
    const auto s2 = MarkovSource::genome_like().generate(500, b);
    EXPECT_EQ(s1.to_string(), s2.to_string());
}

TEST(Mutator, ZeroRatesAreIdentity)
{
    BranchParams params;
    params.substitutions_per_site = 0.0;
    params.indel_rate_per_site = 0.0;
    Mutator mutator(params);
    Rng rng(3);
    const seq::Sequence ancestor("a", "ACGTACGTACGTACGT");
    const auto result = mutator.mutate(ancestor, {}, rng);
    EXPECT_EQ(result.sequence.to_string(), ancestor.to_string());
    EXPECT_EQ(result.substitutions, 0u);
    EXPECT_EQ(result.insertion_events, 0u);
    EXPECT_EQ(result.deletion_events, 0u);
}

TEST(Mutator, SubstitutionRateRoughlyMatches)
{
    BranchParams params;
    params.substitutions_per_site = 0.1;
    params.indel_rate_per_site = 0.0;
    Mutator mutator(params);
    Rng gen(11);
    const auto ancestor = MarkovSource::uniform().generate(100000, gen);
    Rng rng(4);
    const auto result = mutator.mutate(ancestor, {}, rng);
    ASSERT_EQ(result.sequence.size(), ancestor.size());
    std::uint64_t diffs = 0;
    for (std::size_t i = 0; i < ancestor.size(); ++i) {
        if (result.sequence[i] != ancestor[i])
            ++diffs;
    }
    const double observed = static_cast<double>(diffs) / ancestor.size();
    // Expected observable fraction: 3/4 (1 - e^{-4/3 * 0.1}) ~ 0.0936,
    // minus a little for mutations that picked the same base via the
    // multi-hit model.
    EXPECT_NEAR(observed, 0.093, 0.012);
}

TEST(Mutator, TransitionBiasHolds)
{
    BranchParams params;
    params.substitutions_per_site = 0.2;
    params.indel_rate_per_site = 0.0;
    params.transition_fraction = 2.0 / 3.0;
    Mutator mutator(params);
    Rng gen(12);
    const auto ancestor = MarkovSource::uniform().generate(100000, gen);
    Rng rng(5);
    const auto result = mutator.mutate(ancestor, {}, rng);
    std::uint64_t transitions = 0;
    std::uint64_t transversions = 0;
    for (std::size_t i = 0; i < ancestor.size(); ++i) {
        if (seq::is_transition(ancestor[i], result.sequence[i]))
            ++transitions;
        else if (seq::is_transversion(ancestor[i], result.sequence[i]))
            ++transversions;
    }
    ASSERT_GT(transversions, 0u);
    const double ratio =
        static_cast<double>(transitions) / transversions;
    EXPECT_NEAR(ratio, 2.0, 0.35);
}

TEST(Mutator, IndelsChangeLength)
{
    BranchParams params;
    params.substitutions_per_site = 0.0;
    params.indel_rate_per_site = 0.02;
    Mutator mutator(params);
    Rng gen(13);
    const auto ancestor = MarkovSource::uniform().generate(50000, gen);
    Rng rng(6);
    const auto result = mutator.mutate(ancestor, {}, rng);
    EXPECT_GT(result.insertion_events + result.deletion_events, 100u);
    EXPECT_EQ(result.sequence.size(),
              ancestor.size() + result.inserted_bases -
                  result.deleted_bases);
}

TEST(Mutator, ConservedRegionsMutateLess)
{
    BranchParams params;
    params.substitutions_per_site = 0.4;
    params.indel_rate_per_site = 0.0;
    params.conserved_sub_factor = 0.05;
    Mutator mutator(params);
    Rng gen(14);
    const auto ancestor = MarkovSource::uniform().generate(60000, gen);
    // One conserved segment covering the middle third.
    std::vector<Annotation> anns = {{"exon", {20000, 40000}}};
    Rng rng(7);
    const auto result = mutator.mutate(ancestor, anns, rng);
    ASSERT_EQ(result.sequence.size(), ancestor.size());
    std::uint64_t diffs_in = 0, diffs_out = 0;
    for (std::size_t i = 0; i < ancestor.size(); ++i) {
        if (result.sequence[i] != ancestor[i]) {
            if (i >= 20000 && i < 40000)
                ++diffs_in;
            else
                ++diffs_out;
        }
    }
    // Same number of sites in and out; conserved should be ~10x cleaner.
    EXPECT_LT(diffs_in * 5, diffs_out);
}

TEST(Mutator, AnnotationCoordinatesTrackIndels)
{
    BranchParams params;
    params.substitutions_per_site = 0.0;
    params.indel_rate_per_site = 0.05;
    params.conserved_indel_factor = 0.0;  // keep exons indel-free
    Mutator mutator(params);
    Rng gen(15);
    const auto ancestor = MarkovSource::uniform().generate(20000, gen);
    std::vector<Annotation> anns = {{"e1", {5000, 5200}},
                                    {"e2", {12000, 12300}}};
    Rng rng(8);
    const auto result = mutator.mutate(ancestor, anns, rng);
    ASSERT_EQ(result.annotations.size(), 2u);
    // Indel-free exons keep their exact length and content.
    for (std::size_t k = 0; k < anns.size(); ++k) {
        const auto& mapped = result.annotations[k];
        EXPECT_EQ(mapped.interval.length(), anns[k].interval.length());
        for (std::size_t i = 0; i < mapped.interval.length(); ++i) {
            EXPECT_EQ(result.sequence[mapped.interval.start + i],
                      ancestor[anns[k].interval.start + i]);
        }
    }
}

TEST(Mutator, RejectsOverlappingAnnotations)
{
    Mutator mutator(BranchParams{});
    Rng rng(9);
    const seq::Sequence ancestor("a", std::string(100, 'A'));
    std::vector<Annotation> anns = {{"a", {10, 50}}, {"b", {40, 60}}};
    EXPECT_DEATH(mutator.mutate(ancestor, anns, rng), "sorted");
}

TEST(Evolver, AncestorHasRequestedShape)
{
    AncestorConfig config;
    config.num_chromosomes = 3;
    config.chromosome_length = 30000;
    config.exons_per_chromosome = 20;
    Rng rng(10);
    const auto ancestor =
        make_ancestor("anc", config, MarkovSource::genome_like(), rng);
    EXPECT_EQ(ancestor.genome.num_chromosomes(), 3u);
    EXPECT_EQ(ancestor.genome.total_length(), 90000u);
    EXPECT_EQ(ancestor.annotations.size(), 3u);
    for (const auto& anns : ancestor.annotations) {
        EXPECT_GT(anns.size(), 15u);
        for (std::size_t i = 1; i < anns.size(); ++i)
            EXPECT_LE(anns[i - 1].interval.end, anns[i].interval.start);
    }
}

TEST(Evolver, EvolveGenomePreservesAnnotationCount)
{
    AncestorConfig config;
    config.num_chromosomes = 2;
    config.chromosome_length = 20000;
    config.exons_per_chromosome = 10;
    Rng rng(11);
    const auto ancestor =
        make_ancestor("anc", config, MarkovSource::genome_like(), rng);
    BranchParams branch;
    branch.substitutions_per_site = 0.1;
    branch.indel_rate_per_site = 0.01;
    BranchStats stats;
    Rng rng2(12);
    const auto child =
        evolve_genome(ancestor, "child", branch, rng2, &stats);
    EXPECT_EQ(child.genome.num_chromosomes(), 2u);
    EXPECT_EQ(child.total_exons(), ancestor.total_exons());
    EXPECT_GT(stats.substitutions, 0u);
}

TEST(Species, PaperPairsPresent)
{
    const auto pairs = paper_species_pairs();
    ASSERT_EQ(pairs.size(), 4u);
    EXPECT_EQ(pairs[0].pair_name, "ce11-cb4");
    EXPECT_EQ(pairs[3].pair_name, "dm6-droSim1");
    // Distances strictly decrease from the most to the least diverged.
    for (std::size_t i = 1; i < pairs.size(); ++i)
        EXPECT_LT(pairs[i].distance, pairs[i - 1].distance);
}

TEST(Species, FindByNameAndUnknownFails)
{
    EXPECT_EQ(find_species_pair("dm6-dp4").query_name, "dp4s");
    EXPECT_THROW(find_species_pair("hg38-mm10"), FatalError);
}

TEST(Species, MakePairIsDeterministic)
{
    AncestorConfig config;
    config.num_chromosomes = 1;
    config.chromosome_length = 5000;
    config.exons_per_chromosome = 4;
    const auto spec = find_species_pair("dm6-droSim1");
    const auto p1 = make_species_pair(spec, config, 99);
    const auto p2 = make_species_pair(spec, config, 99);
    EXPECT_EQ(p1.target.genome.chromosome(0).to_string(),
              p2.target.genome.chromosome(0).to_string());
    EXPECT_EQ(p1.query.genome.chromosome(0).to_string(),
              p2.query.genome.chromosome(0).to_string());
}

TEST(Species, DivergenceScalesWithDistance)
{
    AncestorConfig config;
    config.num_chromosomes = 1;
    config.chromosome_length = 50000;
    config.exons_per_chromosome = 10;
    const auto close_pair =
        make_species_pair(find_species_pair("dm6-droSim1"), config, 5);
    const auto far_pair =
        make_species_pair(find_species_pair("ce11-cb4"), config, 5);
    EXPECT_GT(far_pair.target_branch.substitutions,
              close_pair.target_branch.substitutions * 2);
    EXPECT_GT(far_pair.target_branch.insertion_events +
                  far_pair.target_branch.deletion_events,
              close_pair.target_branch.insertion_events +
                  close_pair.target_branch.deletion_events);
}

TEST(Distance, JukesCantorBasics)
{
    EXPECT_DOUBLE_EQ(jukes_cantor_distance(0.0), 0.0);
    // Small p: d ~ p.
    EXPECT_NEAR(jukes_cantor_distance(0.01), 0.01, 0.001);
    // Saturation.
    EXPECT_TRUE(std::isinf(jukes_cantor_distance(0.80)));
}

TEST(Distance, InvertsTheMutationModel)
{
    // Mutate at a known branch length and check JC recovers ~2x branch.
    BranchParams params;
    params.substitutions_per_site = 0.15;
    params.indel_rate_per_site = 0.0;
    Mutator mutator(params);
    Rng gen(20);
    const auto ancestor = MarkovSource::uniform().generate(200000, gen);
    Rng r1(21), r2(22);
    const auto a = mutator.mutate(ancestor, {}, r1);
    const auto b = mutator.mutate(ancestor, {}, r2);
    AlignedColumnCounts counts;
    for (std::size_t i = 0; i < ancestor.size(); ++i) {
        if (a.sequence[i] == b.sequence[i])
            ++counts.matches;
        else
            ++counts.mismatches;
    }
    EXPECT_NEAR(jukes_cantor_distance(counts), 0.30, 0.05);
}

TEST(Distance, CountsHelpers)
{
    AlignedColumnCounts counts{90, 10};
    EXPECT_EQ(counts.total(), 100u);
    EXPECT_DOUBLE_EQ(counts.mismatch_fraction(), 0.1);
}

}  // namespace
}  // namespace darwin::synth
