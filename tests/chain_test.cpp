/**
 * @file
 * Tests for the chainer: gap cost schedule, chaining DP, best-first
 * extraction, and metrics.
 */
#include <gtest/gtest.h>

#include "chain/chain_metrics.h"
#include "chain/chainer.h"

namespace darwin::chain {
namespace {

/** Make a synthetic block with the given footprint and score. */
align::Alignment
block(std::uint64_t t0, std::uint64_t q0, std::uint64_t len,
      align::Score score)
{
    align::Alignment a;
    a.target_start = t0;
    a.target_end = t0 + len;
    a.query_start = q0;
    a.query_end = q0 + len;
    a.score = score;
    a.cigar.push(align::EditOp::Match, static_cast<std::uint32_t>(len));
    return a;
}

TEST(GapCostTable, ZeroGapIsFree)
{
    const auto table = GapCostTable::loose();
    EXPECT_DOUBLE_EQ(table.cost(0, 0), 0.0);
}

TEST(GapCostTable, SingleSidedMatchesBreakpoints)
{
    const auto table = GapCostTable::loose();
    EXPECT_DOUBLE_EQ(table.cost(1, 0), 325.0);
    EXPECT_DOUBLE_EQ(table.cost(0, 1), 325.0);
    EXPECT_DOUBLE_EQ(table.cost(3, 0), 400.0);
    EXPECT_DOUBLE_EQ(table.cost(111, 0), 600.0);
}

TEST(GapCostTable, TwoSidedUsesBothTable)
{
    const auto table = GapCostTable::loose();
    // dt=1, dq=1 -> bothGap at gap 2 = 660.
    EXPECT_DOUBLE_EQ(table.cost(1, 1), 660.0);
    EXPECT_GT(table.cost(50, 50), table.cost(100, 0));
}

TEST(GapCostTable, InterpolatesBetweenBreakpoints)
{
    const auto table = GapCostTable::loose();
    // Between 11 (450) and 111 (600): 61 -> 450 + 150 * 50/100 = 525.
    EXPECT_DOUBLE_EQ(table.cost(61, 0), 525.0);
}

TEST(GapCostTable, ExtrapolatesBeyondLastBreakpoint)
{
    const auto table = GapCostTable::loose();
    const double at_252k = table.cost(252111, 0);
    const double at_352k = table.cost(352111, 0);
    EXPECT_DOUBLE_EQ(at_252k, 56600.0);
    // Final slope: (56600-31600)/100000 = 0.25 per bp.
    EXPECT_NEAR(at_352k, 56600.0 + 0.25 * 100000, 1.0);
}

TEST(GapCostTable, MonotoneNonDecreasing)
{
    const auto table = GapCostTable::loose();
    double prev = 0.0;
    for (std::uint64_t gap = 1; gap < 400000; gap = gap * 3 / 2 + 1) {
        const double cost = table.cost(gap, 0);
        EXPECT_GE(cost, prev);
        prev = cost;
    }
}

TEST(Chainer, JoinsCollinearBlocks)
{
    ChainParams params;
    params.min_chain_score = 0.0;
    std::vector<align::Alignment> blocks = {
        block(0, 0, 100, 5000),
        block(200, 210, 100, 5000),
        block(400, 430, 100, 5000),
    };
    const auto chains = chain_alignments(blocks, params);
    ASSERT_EQ(chains.size(), 1u);
    EXPECT_EQ(chains[0].size(), 3u);
    EXPECT_EQ(chains[0].target_start, 0u);
    EXPECT_EQ(chains[0].target_end, 500u);
    EXPECT_EQ(chains[0].matched_bases, 300u);
    // Score = blocks - 2 joins (both two-sided gaps).
    EXPECT_LT(chains[0].score, 15000.0);
    EXPECT_GT(chains[0].score, 12000.0);
}

TEST(Chainer, DoesNotJoinCrossingBlocks)
{
    // Second block earlier in the query: collinearity violated.
    ChainParams params;
    params.min_chain_score = 0.0;
    std::vector<align::Alignment> blocks = {
        block(0, 1000, 100, 5000),
        block(200, 100, 100, 5000),
    };
    const auto chains = chain_alignments(blocks, params);
    ASSERT_EQ(chains.size(), 2u);
    EXPECT_EQ(chains[0].size(), 1u);
    EXPECT_EQ(chains[1].size(), 1u);
}

TEST(Chainer, DoesNotJoinOverlappingBlocks)
{
    ChainParams params;
    params.min_chain_score = 0.0;
    std::vector<align::Alignment> blocks = {
        block(0, 0, 100, 5000),
        block(50, 60, 100, 5000),  // overlaps the first in target
    };
    const auto chains = chain_alignments(blocks, params);
    EXPECT_EQ(chains.size(), 2u);
}

TEST(Chainer, SkipsJoinWhenGapCostsMoreThanBlock)
{
    ChainParams params;
    params.min_chain_score = 0.0;
    params.max_join_gap = 1'000'000'000;
    std::vector<align::Alignment> blocks = {
        block(0, 0, 100, 1000),
        // Tiny block far away: joining costs more than its score.
        block(500000, 500000, 10, 400),
    };
    const auto chains = chain_alignments(blocks, params);
    ASSERT_EQ(chains.size(), 2u);
    EXPECT_DOUBLE_EQ(chains[0].score, 1000.0);
    EXPECT_DOUBLE_EQ(chains[1].score, 400.0);
}

TEST(Chainer, MinScoreDropsWeakChains)
{
    ChainParams params;  // default min 1000
    std::vector<align::Alignment> blocks = {
        block(0, 0, 10, 500),
        block(1000, 1000, 100, 8000),
    };
    const auto chains = chain_alignments(blocks, params);
    // The weak singleton is dropped; the join also fails (gap cost beats
    // the 500 score), leaving one chain.
    ASSERT_GE(chains.size(), 1u);
    for (const auto& c : chains)
        EXPECT_GE(c.score, 1000.0);
}

TEST(Chainer, EachBlockInAtMostOneChain)
{
    ChainParams params;
    params.min_chain_score = 0.0;
    std::vector<align::Alignment> blocks;
    for (int i = 0; i < 20; ++i)
        blocks.push_back(block(i * 300, i * 300 + (i % 3) * 10, 100, 5000));
    const auto chains = chain_alignments(blocks, params);
    std::vector<bool> used(blocks.size(), false);
    for (const auto& chain : chains) {
        for (const auto idx : chain.members) {
            EXPECT_FALSE(used[idx]);
            used[idx] = true;
        }
    }
}

TEST(Chainer, BestFirstOrder)
{
    ChainParams params;
    params.min_chain_score = 0.0;
    std::vector<align::Alignment> blocks = {
        block(0, 0, 100, 3000),
        block(10000, 50000, 100, 9000),
    };
    const auto chains = chain_alignments(blocks, params);
    ASSERT_EQ(chains.size(), 2u);
    EXPECT_GE(chains[0].score, chains[1].score);
    EXPECT_DOUBLE_EQ(chains[0].score, 9000.0);
}

TEST(Chainer, EmptyInput)
{
    EXPECT_TRUE(chain_alignments({}).empty());
}

TEST(Chainer, TruncatedSuffixChainScoresStandalone)
{
    // Blocks A -> B -> C all chain; the winning chain takes A,B,C. Add a
    // second head D whose best predecessor is B (already used): the D
    // chain must be truncated to D alone with its standalone score.
    ChainParams params;
    params.min_chain_score = 0.0;
    std::vector<align::Alignment> blocks = {
        block(0, 0, 100, 5000),        // A
        block(200, 200, 100, 5000),    // B
        block(400, 400, 100, 5000),    // C
        block(400, 420, 100, 2000),    // D (competes with C for B)
    };
    const auto chains = chain_alignments(blocks, params);
    double total_blocks = 0.0;
    for (const auto& c : chains)
        total_blocks += static_cast<double>(c.size());
    EXPECT_DOUBLE_EQ(total_blocks, 4.0);
    // D ends up alone with score 2000 (no double-counted prefix).
    bool found_d = false;
    for (const auto& c : chains) {
        if (c.size() == 1 && c.members[0] == 3) {
            found_d = true;
            EXPECT_DOUBLE_EQ(c.score, 2000.0);
        }
    }
    EXPECT_TRUE(found_d);
}

TEST(ChainMetrics, TopKAndTotals)
{
    std::vector<Chain> chains(3);
    chains[0].score = 100;
    chains[0].matched_bases = 1000;
    chains[1].score = 50;
    chains[1].matched_bases = 500;
    chains[2].score = 10;
    chains[2].matched_bases = 100;
    const auto metrics = summarize_chains(chains, 2);
    EXPECT_EQ(metrics.num_chains, 3u);
    EXPECT_DOUBLE_EQ(metrics.top_k_score, 150.0);
    EXPECT_EQ(metrics.top_k_matched_bases, 1500u);
    EXPECT_EQ(metrics.total_matched_bases, 1600u);
}

TEST(ChainMetrics, EmptyChains)
{
    const auto metrics = summarize_chains({}, 10);
    EXPECT_EQ(metrics.num_chains, 0u);
    EXPECT_DOUBLE_EQ(metrics.top_k_score, 0.0);
    EXPECT_EQ(metrics.total_matched_bases, 0u);
}

}  // namespace
}  // namespace darwin::chain
