/**
 * @file
 * Tests for the streaming batch-alignment engine (src/batch/): shard
 * planning, the metrics registry, and — the load-bearing property — that
 * batch-engine output is bit-identical to running each pair through the
 * serial WgaPipeline, for 1, 2, and 8 worker threads, on a 6-pair
 * synthetic manifest.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <thread>
#include <tuple>

#include "batch/metrics.h"
#include "batch/scheduler.h"
#include "batch/shard.h"
#include "index/index_cache.h"
#include "fault/fault_plan.h"
#include "synth/species.h"
#include "wga/pipeline.h"

namespace darwin::batch {
namespace {

TEST(Shard, PartitionsSequenceExactly)
{
    const auto shards = make_shards(10'000, 2'048, 64, 100);
    ASSERT_FALSE(shards.empty());
    EXPECT_EQ(shards.front().begin, 0u);
    EXPECT_EQ(shards.back().end, 10'000u);
    for (std::size_t i = 0; i < shards.size(); ++i) {
        EXPECT_EQ(shards[i].index, i);
        if (i > 0) {
            EXPECT_EQ(shards[i].begin, shards[i - 1].end);
        }
        // Boundaries are aligned to the seeding chunk size.
        EXPECT_EQ(shards[i].begin % 64, 0u);
    }
}

TEST(Shard, RoundsShardLengthUpToAlignment)
{
    // 1000 is not a multiple of 64: the step must round up to 1024.
    const auto shards = make_shards(4'096, 1'000, 64, 0);
    ASSERT_GE(shards.size(), 2u);
    EXPECT_EQ(shards[0].end, 1'024u);
    EXPECT_EQ(shards[1].begin, 1'024u);
}

TEST(Shard, MarginsClampToSequence)
{
    const auto shards = make_shards(1'000, 256, 64, 400);
    ASSERT_GE(shards.size(), 2u);
    EXPECT_EQ(shards.front().margin_begin, 0u);
    EXPECT_EQ(shards.front().margin_end, 256u + 400u);
    EXPECT_EQ(shards.back().margin_end, 1'000u);
    for (const Shard& shard : shards) {
        EXPECT_LE(shard.margin_begin, shard.begin);
        EXPECT_GE(shard.margin_end, shard.end);
        EXPECT_GE(shard.fetch_size(), shard.size());
    }
}

TEST(Shard, EmptySequenceYieldsEmptyPlan)
{
    EXPECT_TRUE(make_shards(0, 1'024, 64, 100).empty());
}

TEST(Metrics, CountersAccumulateConcurrently)
{
    MetricsRegistry registry;
    Counter& counter = registry.counter("test.count");
    std::vector<std::thread> threads;
    for (int t = 0; t < 4; ++t) {
        threads.emplace_back([&counter] {
            for (int i = 0; i < 10'000; ++i)
                counter.add(1);
        });
    }
    for (auto& thread : threads)
        thread.join();
    EXPECT_EQ(counter.value(), 40'000u);
    // Same name resolves to the same metric.
    EXPECT_EQ(registry.counter("test.count").value(), 40'000u);
}

TEST(Metrics, GaugeTracksHighWater)
{
    MetricsRegistry registry;
    Gauge& gauge = registry.gauge("test.depth");
    gauge.set(3);
    gauge.set(17);
    gauge.set(5);
    EXPECT_EQ(gauge.value(), 5);
    EXPECT_EQ(gauge.high_water(), 17);
}

TEST(Metrics, HistogramAggregatesAndQuantiles)
{
    MetricsRegistry registry;
    Histogram& hist = registry.histogram("test.latency");
    for (int i = 1; i <= 100; ++i)
        hist.observe(static_cast<double>(i));
    EXPECT_EQ(hist.count(), 100u);
    EXPECT_DOUBLE_EQ(hist.sum(), 5050.0);
    EXPECT_DOUBLE_EQ(hist.min(), 1.0);
    EXPECT_DOUBLE_EQ(hist.max(), 100.0);
    EXPECT_NEAR(hist.quantile(0.5), 50.5, 1.0);
    EXPECT_NEAR(hist.quantile(0.99), 99.0, 1.1);
}

TEST(Metrics, JsonDumpContainsAllSections)
{
    MetricsRegistry registry;
    registry.counter("batch.pairs").add(6);
    registry.gauge("batch.queue.seed.depth").set(4);
    registry.histogram("batch.seed.seconds").observe(0.5);
    const std::string json = registry.to_json();
    EXPECT_NE(json.find("\"counters\""), std::string::npos);
    EXPECT_NE(json.find("\"batch.pairs\": 6"), std::string::npos);
    EXPECT_NE(json.find("\"high_water\": 4"), std::string::npos);
    EXPECT_NE(json.find("\"batch.seed.seconds\""), std::string::npos);
    EXPECT_NE(json.find("\"p50\""), std::string::npos);
}

/**
 * The shared 6-pair manifest: the paper's four species pairs plus two
 * re-seeded variants, small enough for test time but large enough that
 * every pair produces multiple shards, alignments, and chains.
 */
struct ManifestFixture {
    std::vector<synth::SpeciesPair> pairs;
    std::vector<BatchJob> jobs;
    std::vector<wga::WgaResult> serial;  ///< per-pair serial reference

    explicit ManifestFixture(bool both_strands)
    {
        synth::AncestorConfig shape;
        shape.num_chromosomes = 1;
        shape.chromosome_length = 12'000;
        shape.exons_per_chromosome = 5;

        const auto specs = synth::paper_species_pairs();
        std::uint64_t seed = 1000;
        for (const auto& spec : specs)
            pairs.push_back(synth::make_species_pair(spec, shape, ++seed));
        // Two extra entries reuse the closest and farthest specs with
        // fresh seeds, giving six distinct workloads.
        pairs.push_back(synth::make_species_pair(specs.front(), shape, 77));
        pairs.push_back(synth::make_species_pair(specs.back(), shape, 78));

        wga::WgaParams params = wga::WgaParams::darwin_defaults();
        params.align_both_strands = both_strands;
        const wga::WgaPipeline pipeline(params);
        for (std::size_t i = 0; i < pairs.size(); ++i) {
            jobs.push_back({pairs[i].spec.pair_name + "#" +
                                std::to_string(i),
                            &pairs[i].target.genome, &pairs[i].query.genome});
            serial.push_back(pipeline.run(pairs[i].target.genome,
                                          pairs[i].query.genome));
        }
    }
};

/** Forward-strand fixture, built once across all test cases. */
const ManifestFixture&
forward_fixture()
{
    static const ManifestFixture fixture(false);
    return fixture;
}

using AlignmentKey =
    std::tuple<std::uint64_t, std::uint64_t, std::uint64_t, std::uint64_t,
               int, align::Score, std::string>;

AlignmentKey
alignment_key(const align::Alignment& a)
{
    return {a.target_start, a.target_end,   a.query_start,
            a.query_end,    static_cast<int>(a.query_strand),
            a.score,        a.cigar.to_string()};
}

/** Canonically sorted view of an alignment set. */
std::vector<AlignmentKey>
canonical_alignments(const std::vector<align::Alignment>& alignments)
{
    std::vector<AlignmentKey> keys;
    keys.reserve(alignments.size());
    for (const auto& alignment : alignments)
        keys.push_back(alignment_key(alignment));
    std::sort(keys.begin(), keys.end());
    return keys;
}

using ChainKey = std::tuple<double, std::uint64_t, std::uint64_t,
                            std::uint64_t, std::uint64_t, std::uint64_t,
                            std::vector<std::size_t>>;

std::vector<ChainKey>
canonical_chains(const std::vector<chain::Chain>& chains)
{
    std::vector<ChainKey> keys;
    keys.reserve(chains.size());
    for (const auto& chain : chains) {
        keys.push_back({chain.score, chain.target_start, chain.target_end,
                        chain.query_start, chain.query_end,
                        chain.matched_bases, chain.members});
    }
    std::sort(keys.begin(), keys.end());
    return keys;
}

void
expect_identical(const wga::WgaResult& serial,
                 const wga::WgaResult& batch, const std::string& label)
{
    SCOPED_TRACE(label);
    // Bit-identical alignments in identical order (the engine preserves
    // the serial pipeline's forward-then-reverse concatenation).
    ASSERT_EQ(serial.alignments.size(), batch.alignments.size());
    for (std::size_t i = 0; i < serial.alignments.size(); ++i) {
        EXPECT_EQ(alignment_key(serial.alignments[i]),
                  alignment_key(batch.alignments[i]));
    }
    EXPECT_EQ(canonical_alignments(serial.alignments),
              canonical_alignments(batch.alignments));
    // Chains: identical scores, footprints, and member sets.
    ASSERT_EQ(serial.chains.size(), batch.chains.size());
    EXPECT_EQ(canonical_chains(serial.chains),
              canonical_chains(batch.chains));
    // Workload counters agree with the serial stages (timings aside).
    EXPECT_EQ(serial.stats.seeding.seed_lookups,
              batch.stats.seeding.seed_lookups);
    EXPECT_EQ(serial.stats.seeding.seed_hits, batch.stats.seeding.seed_hits);
    EXPECT_EQ(serial.stats.filter.tiles, batch.stats.filter.tiles);
    EXPECT_EQ(serial.stats.filter.passed, batch.stats.filter.passed);
    EXPECT_EQ(serial.stats.extend.anchors_in, batch.stats.extend.anchors_in);
    EXPECT_EQ(serial.stats.extend.alignments_out,
              batch.stats.extend.alignments_out);
}

void
run_and_compare(const ManifestFixture& fixture, bool both_strands,
                std::size_t threads)
{
    BatchOptions options;
    options.params = wga::WgaParams::darwin_defaults();
    options.params.align_both_strands = both_strands;
    options.num_threads = threads;
    // Small shards/queues so every pair splits into multiple work units
    // and the queues actually exercise backpressure.
    options.shard_length = 2'048;
    options.queue_capacity = 4;

    MetricsRegistry metrics;
    BatchScheduler scheduler(options, &metrics);
    const auto results = scheduler.run(fixture.jobs);

    ASSERT_EQ(results.size(), fixture.jobs.size());
    for (std::size_t i = 0; i < results.size(); ++i) {
        EXPECT_EQ(results[i].name, fixture.jobs[i].name);
        expect_identical(fixture.serial[i], results[i].result,
                         fixture.jobs[i].name + " @" +
                             std::to_string(threads) + " threads");
    }
    // The engine actually sharded the work.
    EXPECT_GT(metrics.counter("batch.shards").value(),
              fixture.jobs.size() * (both_strands ? 2u : 1u));
    EXPECT_EQ(metrics.counter("batch.pairs_completed").value(),
              fixture.jobs.size());
}

TEST(BatchEngine, MatchesSerialWithOneWorker)
{
    run_and_compare(forward_fixture(), false, 1);
}

TEST(BatchEngine, MatchesSerialWithTwoWorkers)
{
    run_and_compare(forward_fixture(), false, 2);
}

TEST(BatchEngine, MatchesSerialWithEightWorkers)
{
    run_and_compare(forward_fixture(), false, 8);
}

TEST(BatchEngine, MatchesSerialBothStrands)
{
    // Separate, smaller fixture: both strand streams double the work.
    static const ManifestFixture fixture(true);
    run_and_compare(fixture, true, 4);
}

TEST(BatchEngine, MatchesSerialWithFaultLayerArmed)
{
    // The fault layer at full strength — budgets armed, a (harmless)
    // fault plan installed, probes firing in every kernel — must not
    // perturb a single bit of a healthy run.
    const auto plan =
        fault::FaultPlan::parse("batch.chain:stall:ms=1:count=0");
    fault::install_fault_plan(&plan);
    const auto& fixture = forward_fixture();
    BatchOptions options;
    options.params = wga::WgaParams::darwin_defaults();
    options.num_threads = 4;
    options.shard_length = 2'048;
    options.queue_capacity = 4;
    options.pair_budget = {3'600.0, 1ull << 40, 1ull << 40};

    MetricsRegistry metrics;
    BatchScheduler scheduler(options, &metrics);
    const auto results = scheduler.run(fixture.jobs);
    fault::install_fault_plan(nullptr);

    ASSERT_EQ(results.size(), fixture.jobs.size());
    for (std::size_t i = 0; i < results.size(); ++i) {
        EXPECT_EQ(results[i].status, fault::PairStatus::Clean);
        expect_identical(fixture.serial[i], results[i].result,
                         fixture.jobs[i].name + " (fault layer armed)");
    }
    EXPECT_EQ(metrics.counter("batch.fault.clean").value(),
              fixture.jobs.size());
    EXPECT_EQ(metrics.counter("batch.fault.quarantined").value(), 0u);
}

TEST(BatchEngine, EmptyManifestIsEmptyResult)
{
    BatchScheduler scheduler(BatchOptions{});
    EXPECT_TRUE(scheduler.run({}).empty());
}

TEST(BatchEngine, StageCountersReconcile)
{
    const auto& fixture = forward_fixture();
    BatchOptions options;
    options.params = wga::WgaParams::darwin_defaults();
    options.num_threads = 4;
    options.shard_length = 2'048;
    MetricsRegistry metrics;
    BatchScheduler scheduler(options, &metrics);
    scheduler.run(fixture.jobs);

    const auto count = [&metrics](const char* name) {
        return metrics.counter(name).value();
    };
    // Every seed hit enters the filter, where it is either kept as a
    // candidate anchor or dropped.
    EXPECT_GT(count("batch.seed.hits"), 0u);
    EXPECT_EQ(count("batch.seed.hits"), count("batch.filter.hits_in"));
    EXPECT_EQ(count("batch.filter.hits_in"),
              count("batch.filter.candidates") +
                  count("batch.filter.dropped"));
    // Every surviving candidate reaches extension as an anchor, where it
    // is either absorbed by an existing alignment or extended.
    EXPECT_GT(count("batch.filter.candidates"), 0u);
    EXPECT_EQ(count("batch.filter.candidates"),
              count("batch.extend.anchors_in"));
    EXPECT_EQ(count("batch.extend.anchors_in"),
              count("batch.extend.absorbed") +
                  count("batch.extend.extended"));
    EXPECT_GT(count("batch.extend.matched_bases"), 0u);
}

/** N jobs aligning different queries against one shared target. */
struct SharedTargetFixture {
    std::vector<synth::SpeciesPair> pairs;
    std::vector<BatchJob> jobs;
    std::vector<wga::WgaResult> serial;

    SharedTargetFixture()
    {
        synth::AncestorConfig shape;
        shape.num_chromosomes = 1;
        shape.chromosome_length = 8'000;
        shape.exons_per_chromosome = 4;
        const auto spec = synth::paper_species_pairs().front();
        for (std::uint64_t seed : {501u, 502u, 503u})
            pairs.push_back(synth::make_species_pair(spec, shape, seed));

        const wga::WgaPipeline pipeline(wga::WgaParams::darwin_defaults());
        for (std::size_t i = 0; i < pairs.size(); ++i) {
            // Every job reuses pair 0's target; queries differ.
            jobs.push_back({"shared#" + std::to_string(i),
                            &pairs[0].target.genome,
                            &pairs[i].query.genome});
            serial.push_back(pipeline.run(pairs[0].target.genome,
                                          pairs[i].query.genome));
        }
    }
};

const SharedTargetFixture&
shared_target_fixture()
{
    static const SharedTargetFixture fixture;
    return fixture;
}

TEST(BatchEngine, SharedTargetBuildsIndexOnce)
{
    // With one worker the pairs prepare sequentially, so the engine must
    // build the shared target's seed index exactly once and count every
    // later acquire as a cache hit — without changing a single bit of
    // the output.
    const auto& fixture = shared_target_fixture();
    BatchOptions options;
    options.params = wga::WgaParams::darwin_defaults();
    options.num_threads = 1;
    options.shard_length = 2'048;

    index::IndexCache cache(4);
    options.index_cache = &cache;
    MetricsRegistry metrics;
    BatchScheduler scheduler(options, &metrics);
    const auto results = scheduler.run(fixture.jobs);

    ASSERT_EQ(results.size(), fixture.jobs.size());
    for (std::size_t i = 0; i < results.size(); ++i) {
        expect_identical(fixture.serial[i], results[i].result,
                         fixture.jobs[i].name);
    }
    EXPECT_EQ(cache.size(), 1u);
    EXPECT_EQ(cache.misses(), 1u);
    EXPECT_EQ(cache.hits(), fixture.jobs.size() - 1);
    EXPECT_EQ(metrics.counter("batch.index.cache_hits").value(),
              fixture.jobs.size() - 1);
}

TEST(BatchEngine, SharedTargetIdenticalUnderConcurrentPrepare)
{
    // With several workers the pairs race into the single-flight build;
    // however the hits land, there is exactly one resident index, one
    // acquire per pair, and bit-identical output.
    const auto& fixture = shared_target_fixture();
    BatchOptions options;
    options.params = wga::WgaParams::darwin_defaults();
    options.num_threads = 4;
    options.shard_length = 2'048;

    index::IndexCache cache(4);
    options.index_cache = &cache;
    MetricsRegistry metrics;
    BatchScheduler scheduler(options, &metrics);
    const auto results = scheduler.run(fixture.jobs);

    ASSERT_EQ(results.size(), fixture.jobs.size());
    for (std::size_t i = 0; i < results.size(); ++i) {
        expect_identical(fixture.serial[i], results[i].result,
                         fixture.jobs[i].name + " (concurrent)");
    }
    EXPECT_EQ(cache.size(), 1u);
    EXPECT_EQ(cache.hits() + cache.misses(), fixture.jobs.size());
}

TEST(BatchEngine, MetricsExposeStageLatenciesAndDepths)
{
    const auto& fixture = forward_fixture();
    BatchOptions options;
    options.params = wga::WgaParams::darwin_defaults();
    options.num_threads = 4;
    options.shard_length = 2'048;
    MetricsRegistry metrics;
    BatchScheduler scheduler(options, &metrics);
    scheduler.run(fixture.jobs);

    EXPECT_GT(metrics.histogram("batch.seed.seconds").count(), 0u);
    EXPECT_GT(metrics.histogram("batch.filter.seconds").count(), 0u);
    EXPECT_GT(metrics.histogram("batch.extend.seconds").count(), 0u);
    EXPECT_GT(metrics.histogram("batch.chain.seconds").count(), 0u);
    EXPECT_GE(metrics.gauge("batch.queue.seed.depth").high_water(), 1);
    const std::string json = metrics.to_json();
    EXPECT_NE(json.find("batch.queue.filter.depth"), std::string::npos);
    EXPECT_NE(json.find("batch.extend.seconds"), std::string::npos);
}

}  // namespace
}  // namespace darwin::batch
