/**
 * @file
 * Live-telemetry layer: Prometheus exposition correctness (golden
 * output, name sanitization, label escaping, bucket cumulativity,
 * empty-histogram handling), histogram buckets/reset/non-finite
 * hygiene, registry-wide snapshot consistency under concurrent
 * writers, flight-recorder wraparound and drop counting, and
 * per-request span tagging.
 */
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <limits>
#include <sstream>
#include <thread>
#include <vector>

#include "obs/exposition.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/self_stats.h"
#include "obs/trace.h"

namespace obs = darwin::obs;

namespace {

TEST(Exposition, SanitizesMetricNames)
{
    EXPECT_EQ(obs::sanitize_metric_name("serve.request.seconds"),
              "serve_request_seconds");
    EXPECT_EQ(obs::sanitize_metric_name("wga.filter-kernel"),
              "wga_filter_kernel");
    EXPECT_EQ(obs::sanitize_metric_name("9lives"), "_9lives");
    EXPECT_EQ(obs::sanitize_metric_name("already_fine:ok"),
              "already_fine:ok");
    EXPECT_EQ(obs::sanitize_metric_name(""), "_");
}

TEST(Exposition, EscapesLabelValues)
{
    EXPECT_EQ(obs::escape_label_value("plain"), "plain");
    EXPECT_EQ(obs::escape_label_value("a\\b"), "a\\\\b");
    EXPECT_EQ(obs::escape_label_value("say \"hi\""), "say \\\"hi\\\"");
    EXPECT_EQ(obs::escape_label_value("two\nlines"), "two\\nlines");
}

/**
 * Golden rendering of a small registry: every series type, the counter
 * _total suffix, gauge high-water companion, sparse cumulative buckets
 * ending in the mandatory +Inf == _count.
 */
TEST(Exposition, GoldenRegistryRendering)
{
    obs::MetricsRegistry metrics;
    metrics.counter("serve.requests").add(42);
    metrics.gauge("serve.queue.depth").set(7);
    metrics.gauge("serve.queue.depth").set(3);  // high water stays 7
    // Three values in three buckets: 0.0005 <= 1e-6*2^9 = 0.000512,
    // 0.001 <= 1e-6*2^10 = 0.001024, 0.25 <= 1e-6*2^18 = 0.262144.
    metrics.histogram("serve.request.seconds").observe(0.0005);
    metrics.histogram("serve.request.seconds").observe(0.001);
    metrics.histogram("serve.request.seconds").observe(0.25);

    const std::string text = obs::to_prometheus(metrics);
    const std::string expected =
        "# TYPE serve_requests_total counter\n"
        "serve_requests_total 42\n"
        "# TYPE serve_queue_depth gauge\n"
        "serve_queue_depth 3\n"
        "# TYPE serve_queue_depth_high_water gauge\n"
        "serve_queue_depth_high_water 7\n"
        "# TYPE serve_request_seconds histogram\n"
        "serve_request_seconds_bucket{le=\"0.000512\"} 1\n"
        "serve_request_seconds_bucket{le=\"0.001024\"} 2\n"
        "serve_request_seconds_bucket{le=\"0.262144\"} 3\n"
        "serve_request_seconds_bucket{le=\"+Inf\"} 3\n"
        "serve_request_seconds_sum 0.2515\n"
        "serve_request_seconds_count 3\n";
    EXPECT_EQ(text, expected);
}

TEST(Exposition, EmptyHistogramRendersZeroCountAndInfBucket)
{
    obs::MetricsRegistry metrics;
    metrics.histogram("idle.seconds");
    const std::string text = obs::to_prometheus(metrics);
    EXPECT_EQ(text,
              "# TYPE idle_seconds histogram\n"
              "idle_seconds_bucket{le=\"+Inf\"} 0\n"
              "idle_seconds_sum 0\n"
              "idle_seconds_count 0\n");
}

TEST(Exposition, BucketsAreCumulativeAndEndAtCount)
{
    obs::Histogram histogram;
    for (int i = 0; i < 1000; ++i)
        histogram.observe(static_cast<double>(i) / 100.0);  // 0..9.99
    const obs::HistogramSnapshot snap = histogram.snapshot();
    std::uint64_t prev = 0;
    for (const std::uint64_t cumulative : snap.buckets) {
        EXPECT_GE(cumulative, prev);
        prev = cumulative;
    }
    EXPECT_EQ(snap.buckets.back(), snap.count);
    EXPECT_EQ(snap.count, 1000u);
}

TEST(Histogram, BucketBoundsAreFixedLogGrid)
{
    EXPECT_DOUBLE_EQ(obs::Histogram::bucket_bound(0), 1e-6);
    EXPECT_DOUBLE_EQ(obs::Histogram::bucket_bound(10), 1e-6 * 1024.0);
    EXPECT_TRUE(std::isinf(obs::Histogram::bucket_bound(
        obs::Histogram::kNumBuckets - 1)));
}

TEST(Histogram, NonFiniteObservationsDoNotPoisonAggregates)
{
    obs::Histogram histogram;
    histogram.observe(1.0);
    histogram.observe(std::numeric_limits<double>::quiet_NaN());
    histogram.observe(std::numeric_limits<double>::infinity());
    histogram.observe(2.0);

    const obs::HistogramSnapshot snap = histogram.snapshot();
    EXPECT_EQ(snap.count, 2u);
    EXPECT_EQ(snap.nonfinite, 2u);
    EXPECT_DOUBLE_EQ(snap.sum, 3.0);
    EXPECT_DOUBLE_EQ(snap.min, 1.0);
    EXPECT_DOUBLE_EQ(snap.max, 2.0);
    EXPECT_EQ(snap.buckets.back(), 2u);  // +Inf bucket == finite count

    // The rejected observations surface in both output formats.
    obs::MetricsRegistry metrics;
    metrics.histogram("h").observe(
        std::numeric_limits<double>::quiet_NaN());
    EXPECT_NE(metrics.to_json().find("\"nonfinite\": 1"),
              std::string::npos);
    EXPECT_NE(obs::to_prometheus(metrics).find("h_nonfinite_total 1"),
              std::string::npos);
}

TEST(Histogram, ResetForgetsEverything)
{
    obs::Histogram histogram;
    histogram.observe(1.0);
    histogram.observe(100.0);
    histogram.reset();
    EXPECT_EQ(histogram.count(), 0u);
    EXPECT_DOUBLE_EQ(histogram.sum(), 0.0);
    EXPECT_TRUE(std::isnan(histogram.min()));
    EXPECT_TRUE(std::isnan(histogram.quantile(0.5)));
    const obs::HistogramSnapshot snap = histogram.snapshot();
    EXPECT_EQ(snap.buckets.back(), 0u);

    histogram.observe(3.0);  // usable again after reset
    EXPECT_EQ(histogram.count(), 1u);
    EXPECT_DOUBLE_EQ(histogram.max(), 3.0);
}

/**
 * The scraper contract: a snapshot taken mid-write must be internally
 * consistent per histogram. Writers observe exactly 1.0, so in every
 * valid snapshot sum == count (reading count and sum through separate
 * lock acquisitions breaks this).
 */
TEST(MetricsSnapshot, ConsistentUnderConcurrentWriters)
{
    obs::MetricsRegistry metrics;
    obs::Histogram& histogram = metrics.histogram("h");
    obs::Counter& counter = metrics.counter("c");
    std::atomic<bool> stop{false};

    std::vector<std::thread> writers;
    for (int w = 0; w < 4; ++w) {
        writers.emplace_back([&] {
            while (!stop.load(std::memory_order_relaxed)) {
                histogram.observe(1.0);
                counter.add(1);
            }
        });
    }

    for (int i = 0; i < 2000; ++i) {
        const obs::MetricsSnapshot snap = metrics.snapshot();
        ASSERT_EQ(snap.histograms.size(), 1u);
        const obs::HistogramSnapshot& h = snap.histograms[0].second;
        EXPECT_DOUBLE_EQ(h.sum, static_cast<double>(h.count));
        EXPECT_EQ(h.buckets.back(), h.count);
    }

    stop.store(true);
    for (auto& writer : writers)
        writer.join();
}

TEST(FlightRecorder, RetainsEverythingBelowCapacity)
{
    obs::FlightRecorder recorder(16);
    for (int i = 0; i < 10; ++i) {
        obs::TraceEvent event;
        event.name = "span";
        event.start_us = i;
        recorder.record(std::move(event));
    }
    EXPECT_EQ(recorder.recorded(), 10u);
    EXPECT_EQ(recorder.dropped(), 0u);
    const auto events = recorder.snapshot();
    ASSERT_EQ(events.size(), 10u);
    for (std::size_t i = 0; i < events.size(); ++i)
        EXPECT_EQ(events[i].start_us, static_cast<std::int64_t>(i));
}

TEST(FlightRecorder, WrapsAroundKeepingNewestAndCountsDrops)
{
    obs::FlightRecorder recorder(8);
    for (int i = 0; i < 100; ++i) {
        obs::TraceEvent event;
        event.name = "span";
        event.start_us = i;
        recorder.record(std::move(event));
    }
    EXPECT_EQ(recorder.recorded(), 100u);
    EXPECT_EQ(recorder.dropped(), 92u);
    const auto events = recorder.snapshot();
    ASSERT_EQ(events.size(), 8u);
    // Oldest-first dump of exactly the newest 8 spans (92..99).
    for (std::size_t i = 0; i < events.size(); ++i)
        EXPECT_EQ(events[i].start_us,
                  static_cast<std::int64_t>(92 + i));
}

TEST(FlightRecorder, DumpIsAValidChromeTrace)
{
    obs::FlightRecorder recorder(4);
    obs::TraceSession::install(&recorder);
    for (int i = 0; i < 9; ++i) {
        obs::ScopedSpan span("work", "test");
        span.arg("i", i);
    }
    obs::TraceSession::install(nullptr);

    const auto parsed = obs::parse_trace_events(recorder.to_json());
    ASSERT_EQ(parsed.size(), 4u);
    for (const auto& event : parsed) {
        EXPECT_EQ(event.name, "work");
        EXPECT_EQ(event.category, "test");
    }
    EXPECT_EQ(recorder.dropped(), 5u);
}

TEST(FlightRecorder, ConcurrentRecordersLoseNothingButOverwrites)
{
    constexpr int kThreads = 4;
    constexpr int kPerThread = 5000;
    obs::FlightRecorder recorder(256);
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&recorder, t] {
            for (int i = 0; i < kPerThread; ++i) {
                obs::TraceEvent event;
                event.name = "s";
                event.tid = static_cast<std::uint32_t>(t);
                event.start_us = i;
                recorder.record(std::move(event));
            }
        });
    }
    for (auto& thread : threads)
        thread.join();
    EXPECT_EQ(recorder.recorded(),
              static_cast<std::uint64_t>(kThreads * kPerThread));
    EXPECT_EQ(recorder.dropped(),
              static_cast<std::uint64_t>(kThreads * kPerThread - 256));
    EXPECT_EQ(recorder.snapshot().size(), 256u);
}

TEST(RequestTag, SpansCarryTheInnermostTag)
{
    obs::TraceSession session;
    EXPECT_EQ(obs::RequestTag::current(), -1);
    {
        obs::RequestTag outer(7);
        EXPECT_EQ(obs::RequestTag::current(), 7);
        { obs::ScopedSpan span(&session, "outer", "test"); }
        {
            obs::RequestTag inner(9);
            EXPECT_EQ(obs::RequestTag::current(), 9);
            { obs::ScopedSpan span(&session, "inner", "test"); }
        }
        EXPECT_EQ(obs::RequestTag::current(), 7);
    }
    EXPECT_EQ(obs::RequestTag::current(), -1);
    { obs::ScopedSpan span(&session, "untagged", "test"); }

    const auto events = session.snapshot();
    ASSERT_EQ(events.size(), 3u);
    const auto req_arg = [](const obs::TraceEvent& event) {
        for (const auto& arg : event.args)
            if (arg.key == "req")
                return arg.value;
        return std::int64_t{-1};
    };
    EXPECT_EQ(req_arg(events[0]), 7);
    EXPECT_EQ(req_arg(events[1]), 9);
    EXPECT_EQ(req_arg(events[2]), -1);
}

TEST(SelfStats, ProcSamplePublishesGauges)
{
    const obs::ProcSample sample = obs::sample_proc();
    if (!sample.ok)
        GTEST_SKIP() << "/proc is unavailable on this platform";
    EXPECT_GT(sample.rss_bytes, 0);
    EXPECT_GE(sample.cpu_seconds, 0.0);
    EXPECT_GT(sample.fds, 0);
    EXPECT_GT(sample.threads, 0);

    obs::MetricsRegistry metrics;
    bool extra_ran = false;
    {
        obs::SelfMonitor monitor(metrics, 60.0,
                                 [&extra_ran] { extra_ran = true; });
        // The constructor samples synchronously once.
        EXPECT_TRUE(extra_ran);
    }
    const obs::Gauge* rss = metrics.find_gauge("proc.rss_bytes");
    ASSERT_NE(rss, nullptr);
    EXPECT_GT(rss->value(), 0);
    EXPECT_NE(metrics.find_gauge("proc.threads"), nullptr);
    EXPECT_NE(metrics.find_gauge("proc.fds"), nullptr);
    EXPECT_NE(metrics.find_gauge("proc.cpu_millis"), nullptr);
}

TEST(MetricsJson, CompactFormMatchesPrettyContent)
{
    obs::MetricsRegistry metrics;
    metrics.counter("c").add(3);
    metrics.gauge("g").set(-2);
    metrics.histogram("h").observe(0.5);

    const std::string compact = metrics.to_json_compact();
    EXPECT_EQ(compact.find('\n'), std::string::npos);
    // Same fields, modulo whitespace.
    std::string squashed = metrics.to_json();
    std::string normalized;
    for (const char c : squashed)
        if (c != '\n' && c != ' ')
            normalized.push_back(c);
    std::string compact_normalized;
    for (const char c : compact)
        if (c != ' ')
            compact_normalized.push_back(c);
    EXPECT_EQ(normalized, compact_normalized);
}

}  // namespace
