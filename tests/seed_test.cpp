/**
 * @file
 * Tests for the seed module: spaced seed patterns, transition
 * neighborhoods, the position index, and D-SOFT banding.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "seed/dsoft.h"
#include "seed/seed_index.h"
#include "seed/seed_pattern.h"
#include "seq/sequence.h"
#include "util/logging.h"
#include "util/rng.h"

namespace darwin::seed {
namespace {

seq::Sequence
random_sequence(std::size_t len, std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<std::uint8_t> codes(len);
    for (auto& c : codes)
        c = static_cast<std::uint8_t>(rng.uniform(4));
    return seq::Sequence("rand", std::move(codes));
}

TEST(SeedPattern, LastzDefaultIs12of19)
{
    const auto pattern = SeedPattern::lastz_default();
    EXPECT_EQ(pattern.span(), 19u);
    EXPECT_EQ(pattern.weight(), 12u);
    EXPECT_EQ(pattern.key_space(), 1ULL << 24);
}

TEST(SeedPattern, RejectsMalformed)
{
    EXPECT_THROW(SeedPattern(""), FatalError);
    EXPECT_THROW(SeedPattern("11012"), FatalError);
    EXPECT_THROW(SeedPattern("000"), FatalError);
    EXPECT_THROW(SeedPattern(std::string(16, '1')), FatalError);
}

TEST(SeedPattern, KeyIgnoresDontCares)
{
    const SeedPattern pattern("101");
    const auto a = seq::encode_string("AAA");
    const auto b = seq::encode_string("ACA");
    const auto c = seq::encode_string("AAG");
    EXPECT_EQ(pattern.key_at({a.data(), a.size()}, 0),
              pattern.key_at({b.data(), b.size()}, 0));
    EXPECT_NE(pattern.key_at({a.data(), a.size()}, 0),
              pattern.key_at({c.data(), c.size()}, 0));
}

TEST(SeedPattern, KeyRejectsNAndOverrun)
{
    const SeedPattern pattern("111");
    const auto withn = seq::encode_string("ANA");
    EXPECT_FALSE(pattern.key_at({withn.data(), withn.size()}, 0));
    const auto ok = seq::encode_string("ACG");
    EXPECT_TRUE(pattern.key_at({ok.data(), ok.size()}, 0));
    EXPECT_FALSE(pattern.key_at({ok.data(), ok.size()}, 1));
}

TEST(SeedPattern, TransitionNeighborsMatchTransitionMutants)
{
    const SeedPattern pattern("111");
    const auto base = seq::encode_string("ACG");
    const auto key = *pattern.key_at({base.data(), base.size()}, 0);
    const auto neighbors = pattern.transition_neighbors(key);
    EXPECT_EQ(neighbors.size(), 3u);
    // Transition mutants: GCG (A->G), ATG (C->T), ACA (G->A).
    for (const std::string mutant : {"GCG", "ATG", "ACA"}) {
        const auto codes = seq::encode_string(mutant);
        const auto mkey = *pattern.key_at({codes.data(), codes.size()}, 0);
        EXPECT_NE(std::find(neighbors.begin(), neighbors.end(), mkey),
                  neighbors.end())
            << "missing transition mutant " << mutant;
    }
    // A transversion mutant must NOT be in the neighborhood.
    const auto tv = seq::encode_string("CCG");
    const auto tvkey = *pattern.key_at({tv.data(), tv.size()}, 0);
    EXPECT_EQ(std::find(neighbors.begin(), neighbors.end(), tvkey),
              neighbors.end());
}

TEST(SeedIndex, FindsAllOccurrences)
{
    const SeedPattern pattern("1111");
    const seq::Sequence target("t", "ACGTAACGTA");
    const SeedIndex index(target, pattern);
    const auto codes = seq::encode_string("ACGT");
    const auto key = *pattern.key_at({codes.data(), codes.size()}, 0);
    const auto hits = index.lookup(key);
    ASSERT_EQ(hits.size(), 2u);
    EXPECT_EQ(hits[0], 0u);
    EXPECT_EQ(hits[1], 5u);
}

TEST(SeedIndex, SkipsWindowsWithN)
{
    const SeedPattern pattern("1111");
    const seq::Sequence target("t", "ACGTNACGT");
    const SeedIndex index(target, pattern);
    // Windows at 1..4 contain the N.
    EXPECT_GT(index.skipped_windows(), 0u);
    const auto codes = seq::encode_string("ACGT");
    const auto key = *pattern.key_at({codes.data(), codes.size()}, 0);
    ASSERT_EQ(index.lookup(key).size(), 2u);
}

TEST(SeedIndex, TruncatesRepeatBuckets)
{
    const SeedPattern pattern("1111");
    const seq::Sequence target("t", std::string(500, 'A'));
    const SeedIndex index(target, pattern, /*max_bucket=*/16);
    const auto codes = seq::encode_string("AAAA");
    const auto key = *pattern.key_at({codes.data(), codes.size()}, 0);
    EXPECT_EQ(index.lookup(key).size(), 16u);
    EXPECT_TRUE(index.over_represented(key));
    EXPECT_EQ(index.truncated_buckets(), 1u);
}

TEST(SeedIndex, SpacedPatternIndexesCorrectKey)
{
    const SeedPattern pattern("1011");
    const seq::Sequence target("t", "AGCTA");
    const SeedIndex index(target, pattern);
    // Window 0: A?CT -> key from A,C,T. A query window "AACT" must match.
    const auto probe = seq::encode_string("AACT");
    const auto key = *pattern.key_at({probe.data(), probe.size()}, 0);
    const auto hits = index.lookup(key);
    ASSERT_EQ(hits.size(), 1u);
    EXPECT_EQ(hits[0], 0u);
}

TEST(Dsoft, FindsPlantedMatchOncePerBand)
{
    // Target and query share one exact 40bp region; every seed position in
    // it hits, but D-SOFT must emit a single candidate for the band.
    Rng rng(71);
    auto target = random_sequence(400, 72);
    auto query = random_sequence(400, 73);
    for (std::size_t i = 0; i < 40; ++i)
        query.codes()[200 + i] = target.codes()[100 + i];

    const SeedPattern pattern("11111111");
    const SeedIndex index(target, pattern);
    DsoftParams params;
    params.chunk_size = 400;  // whole query in one chunk
    params.bin_size = 128;
    params.transitions = false;
    const DsoftSeeder seeder(index, params);
    SeedingStats stats;
    const auto hits = seeder.seed_all(query, &stats);
    ASSERT_GE(hits.size(), 1u);
    // All hits on the planted diagonal are collapsed to one band; random
    // 8-mers may add a few more elsewhere.
    std::size_t planted = 0;
    for (const auto& hit : hits) {
        const std::int64_t diag = static_cast<std::int64_t>(hit.target_pos) -
                                  static_cast<std::int64_t>(hit.query_pos);
        if (diag == -100)
            ++planted;
    }
    EXPECT_EQ(planted, 1u);
    EXPECT_GT(stats.seed_hits, 20u);  // the raw hits were all enumerated
    EXPECT_EQ(stats.candidates, hits.size());
}

TEST(Dsoft, ThresholdFiltersIsolatedHits)
{
    Rng rng(74);
    auto target = random_sequence(2000, 75);
    auto query = random_sequence(2000, 76);
    for (std::size_t i = 0; i < 60; ++i)
        query.codes()[1000 + i] = target.codes()[500 + i];

    const SeedPattern pattern("111111111");
    const SeedIndex index(target, pattern);
    DsoftParams params;
    params.chunk_size = 128;
    params.bin_size = 128;
    params.transitions = false;
    params.min_hits_per_band = 4;
    const DsoftSeeder seeder(index, params);
    const auto hits = seeder.seed_all(query);
    // Only the planted 60bp run produces >= 4 collinear hits per band.
    ASSERT_GE(hits.size(), 1u);
    for (const auto& hit : hits) {
        const std::int64_t diag = static_cast<std::int64_t>(hit.target_pos) -
                                  static_cast<std::int64_t>(hit.query_pos);
        EXPECT_EQ(diag, -500);
    }
}

TEST(Dsoft, TransitionsRecoverTransitionMutatedSeeds)
{
    // Mutate one seed position with a transition; exact seeding misses it,
    // 1-transition seeding finds it.
    Rng rng(77);
    auto target = random_sequence(600, 78);
    auto query = random_sequence(600, 79);
    for (std::size_t i = 0; i < 19; ++i)
        query.codes()[300 + i] = target.codes()[200 + i];
    // Apply a transition at a match position of the 12of19 pattern (offset
    // 0 is a '1' position).
    query.codes()[300] = seq::transition_partner(query.codes()[300]);

    const SeedPattern pattern = SeedPattern::lastz_default();
    const SeedIndex index(target, pattern);

    DsoftParams exact;
    exact.chunk_size = 600;
    exact.transitions = false;
    const auto exact_hits = DsoftSeeder(index, exact).seed_all(query);
    bool exact_found = false;
    for (const auto& hit : exact_hits) {
        if (hit.target_pos == 200 && hit.query_pos == 300)
            exact_found = true;
    }
    EXPECT_FALSE(exact_found);

    DsoftParams with_tr = exact;
    with_tr.transitions = true;
    const auto tr_hits = DsoftSeeder(index, with_tr).seed_all(query);
    bool tr_found = false;
    for (const auto& hit : tr_hits) {
        if (hit.target_pos == 200 && hit.query_pos == 300)
            tr_found = true;
    }
    EXPECT_TRUE(tr_found);
}

TEST(Dsoft, LookupCountsTransitionMultiplier)
{
    const SeedPattern pattern = SeedPattern::lastz_default();
    auto target = random_sequence(500, 80);
    auto query = random_sequence(500, 81);
    const SeedIndex index(target, pattern);

    DsoftParams params;
    params.chunk_size = 500;
    params.transitions = false;
    SeedingStats without;
    DsoftSeeder(index, params).seed_all(query, &without);

    params.transitions = true;
    SeedingStats with;
    DsoftSeeder(index, params).seed_all(query, &with);

    // (m+1) = 13 lookups per position with 1 transition allowed.
    EXPECT_EQ(with.seed_lookups, without.seed_lookups * 13);
}

TEST(Dsoft, ParallelMatchesSerial)
{
    Rng rng(82);
    auto target = random_sequence(3000, 83);
    auto query = random_sequence(3000, 84);
    for (std::size_t i = 0; i < 100; ++i)
        query.codes()[700 + i] = target.codes()[1500 + i];
    const SeedPattern pattern("1110110111");
    const SeedIndex index(target, pattern);
    DsoftParams params;
    params.chunk_size = 64;
    const DsoftSeeder seeder(index, params);
    const auto serial = seeder.seed_all(query);
    ThreadPool pool(4);
    const auto parallel = seeder.seed_all(query, nullptr, &pool);
    EXPECT_EQ(serial, parallel);
}

TEST(Dsoft, StrideSkipsPositions)
{
    auto target = random_sequence(1000, 85);
    const SeedPattern pattern("11111111");
    const SeedIndex index(target, pattern);
    DsoftParams params;
    params.chunk_size = 1000;
    params.transitions = false;
    SeedingStats s1, s4;
    DsoftSeeder(index, params).seed_all(target, &s1);
    params.query_stride = 4;
    DsoftSeeder(index, params).seed_all(target, &s4);
    EXPECT_NEAR(static_cast<double>(s1.seed_lookups) / 4.0,
                static_cast<double>(s4.seed_lookups),
                static_cast<double>(s1.seed_lookups) * 0.01 + 2);
}

}  // namespace
}  // namespace darwin::seed
