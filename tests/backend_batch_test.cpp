/**
 * @file
 * Differential harness for the batch backend interface (align/batch.h).
 *
 * Every registered AlignBackend must return per-tile results
 * bit-identical to one-at-a-time serial dispatch through the
 * single-tile façades — every field of BswResult and TileResult
 * including the CIGAR, cells_computed, traceback_bytes and
 * stripe_columns — for any batch size, composition, order, or
 * score-only probing. The sweeps below drive thousands of seeded tiles
 * (uniform random, synth-evolved species pairs, mutated copies,
 * degenerate/empty/homopolymer, mixed sizes in one batch) through all
 * four backends, then climb the stack: forced-backend WgaPipeline runs
 * must emit byte-identical MAF with reconciling wga.batch.* counters,
 * and a fault armed at the new `batch.flush` probe must quarantine
 * only its pair in the batch scheduler.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <sstream>
#include <string>
#include <vector>

#include "align/banded_sw.h"
#include "align/batch.h"
#include "align/gactx.h"
#include "align/kernels/kernel_registry.h"
#include "batch/scheduler.h"
#include "fault/fault_plan.h"
#include "fault/quarantine.h"
#include "obs/metrics.h"
#include "synth/species.h"
#include "util/logging.h"
#include "util/rng.h"
#include "util/thread_pool.h"
#include "wga/maf.h"
#include "wga/params.h"
#include "wga/pipeline.h"

namespace darwin::align {
namespace {

using kernels::BackendImpl;
using kernels::KernelRegistry;

/** Restore the default backend selection however a test exits. */
struct BackendSelectionGuard {
    ~BackendSelectionGuard()
    {
        KernelRegistry::instance().select_backend("auto");
    }
};

std::span<const std::uint8_t>
sp(const std::vector<std::uint8_t>& v)
{
    return {v.data(), v.size()};
}

std::vector<std::uint8_t>
random_codes(std::size_t len, std::uint32_t alphabet, Rng& rng)
{
    std::vector<std::uint8_t> codes(len);
    for (auto& c : codes)
        c = static_cast<std::uint8_t>(rng.uniform(alphabet));
    return codes;
}

std::vector<std::uint8_t>
mutated_copy(const std::vector<std::uint8_t>& src, double sub_rate,
             double indel_rate, Rng& rng)
{
    std::vector<std::uint8_t> out;
    out.reserve(src.size());
    for (std::size_t i = 0; i < src.size(); ++i) {
        if (rng.chance(indel_rate)) {
            if (rng.chance(0.5))
                continue;  // delete
            out.push_back(static_cast<std::uint8_t>(rng.uniform(4)));
        }
        std::uint8_t base = src[i];
        if (rng.chance(sub_rate))
            base = static_cast<std::uint8_t>(rng.uniform(4));
        out.push_back(base);
    }
    return out;
}

/** One owned tile pair; batches view into these buffers. */
struct TilePair {
    std::vector<std::uint8_t> target;
    std::vector<std::uint8_t> query;
};

/**
 * A seeded mixed bag of tile pairs covering the shapes the staging
 * layers produce: uniform random (2- and 4-letter), mutated copies at
 * several divergence rates, degenerate (empty either side, one-base,
 * homopolymer-vs-homopolymer guaranteed-dead tiles), and mixed sizes.
 */
std::vector<TilePair>
make_tile_pool(std::size_t count, std::uint32_t seed)
{
    Rng rng(seed);
    std::vector<TilePair> pool;
    pool.reserve(count);
    const std::size_t sizes[] = {0, 1, 3, 17, 64, 129, 257};
    for (std::size_t i = 0; i < count; ++i) {
        TilePair pair;
        switch (i % 5) {
          case 0: {  // uniform random, mixed sizes
            const std::uint32_t alphabet = (i % 2 == 0) ? 2 : 4;
            pair.target = random_codes(sizes[i % 7], alphabet, rng);
            pair.query = random_codes(sizes[(i / 7) % 7], alphabet, rng);
            break;
          }
          case 1: {  // related: mutated copy, near-diagonal DP path
            const double sub = 0.05 + 0.1 * static_cast<double>(i % 5);
            pair.target = random_codes(150 + i % 90, 4, rng);
            pair.query = mutated_copy(pair.target, sub, 0.03, rng);
            break;
          }
          case 2: {  // homopolymer cross: all-A vs all-C never scores,
                     // the guaranteed x-drop-dead tile (max_score 0)
            pair.target.assign(40 + i % 50, 0);
            pair.query.assign(40 + (i / 3) % 50, 1);
            break;
          }
          case 3: {  // degenerate: empty / one-base spans
            if (i % 3 == 0)
                pair.target = random_codes(30, 4, rng);
            else if (i % 3 == 1)
                pair.query = random_codes(30, 4, rng);
            else
                pair.target = {2};
            break;
          }
          default: {  // large-vs-small asymmetric tiles
            pair.target = random_codes(300, 4, rng);
            pair.query = random_codes(20 + i % 40, 4, rng);
            break;
          }
        }
        pool.push_back(std::move(pair));
    }
    return pool;
}

TileBatch
batch_of(const std::vector<TilePair>& pool,
         const std::vector<std::size_t>& order)
{
    TileBatch batch;
    for (const std::size_t i : order)
        batch.push(sp(pool[i].target), sp(pool[i].query));
    return batch;
}

void
expect_bsw_equal(const BswResult& got, const BswResult& ref,
                 const std::string& what)
{
    EXPECT_EQ(got.max_score, ref.max_score) << what;
    EXPECT_EQ(got.target_max, ref.target_max) << what;
    EXPECT_EQ(got.query_max, ref.query_max) << what;
    EXPECT_EQ(got.cells_computed, ref.cells_computed) << what;
}

void
expect_tile_equal(const TileResult& got, const TileResult& ref,
                  const std::string& what)
{
    EXPECT_EQ(got.max_score, ref.max_score) << what;
    EXPECT_EQ(got.target_max, ref.target_max) << what;
    EXPECT_EQ(got.query_max, ref.query_max) << what;
    EXPECT_EQ(got.cells_computed, ref.cells_computed) << what;
    EXPECT_EQ(got.traceback_bytes, ref.traceback_bytes) << what;
    EXPECT_EQ(got.stripe_columns, ref.stripe_columns) << what;
    EXPECT_EQ(got.cigar.to_string(), ref.cigar.to_string()) << what;
}

// ---------------------------------------------------------------------------
// Registry backend table.
// ---------------------------------------------------------------------------

TEST(BackendRegistry, TableIsStable)
{
    const auto& backends = KernelRegistry::instance().backends();
    ASSERT_EQ(backends.size(), 4u);
    EXPECT_EQ(backends[0].id, 0);
    EXPECT_STREQ(backends[0].name, "serial");
    EXPECT_EQ(backends[1].id, 1);
    EXPECT_STREQ(backends[1].name, "cpu-scalar");
    EXPECT_EQ(backends[2].id, 2);
    EXPECT_STREQ(backends[2].name, "cpu-simd");
    EXPECT_EQ(backends[3].id, 3);
    EXPECT_STREQ(backends[3].name, "cycle-model");
    for (const BackendImpl& b : backends)
        EXPECT_NE(b.backend, nullptr) << b.name;
}

TEST(BackendRegistry, SelectByNameAndAuto)
{
    BackendSelectionGuard guard;
    auto& registry = KernelRegistry::instance();
    registry.select_backend("serial");
    EXPECT_STREQ(registry.active_backend().name, "serial");
    registry.select_backend("cycle-model");
    EXPECT_EQ(registry.active_backend().id, 3);
    // Auto is the batched default, not the serial baseline.
    registry.select_backend("auto");
    EXPECT_STREQ(registry.active_backend().name, "cpu-simd");
}

TEST(BackendRegistry, BadNameIsClearFatal)
{
    BackendSelectionGuard guard;
    auto& registry = KernelRegistry::instance();
    const int before = registry.active_backend().id;
    try {
        registry.select_backend("fpga");  // same path DARWIN_BACKEND takes
        FAIL() << "expected FatalError";
    } catch (const FatalError& e) {
        const std::string msg = e.what();
        EXPECT_NE(msg.find("unknown backend 'fpga'"), std::string::npos)
            << msg;
        EXPECT_NE(msg.find("DARWIN_BACKEND"), std::string::npos) << msg;
        EXPECT_NE(msg.find("cpu-simd"), std::string::npos) << msg;
    }
    // A failed selection must not change the active backend.
    EXPECT_EQ(registry.active_backend().id, before);
}

// ---------------------------------------------------------------------------
// Differential sweeps: every backend vs one-at-a-time serial dispatch.
// ---------------------------------------------------------------------------

TEST(BackendDiff, BswBatchMatchesSerialFacade)
{
    const auto pool = make_tile_pool(600, 11001);
    const auto scoring = ScoringParams::paper_defaults();
    std::vector<std::size_t> order(pool.size());
    std::iota(order.begin(), order.end(), 0);
    const TileBatch batch = batch_of(pool, order);

    // The baseline: the single-tile façade, one call per tile.
    std::vector<BswResult> ref(pool.size());
    for (const std::size_t band : {8u, 32u}) {
        for (std::size_t i = 0; i < pool.size(); ++i)
            ref[i] = banded_smith_waterman(sp(pool[i].target),
                                           sp(pool[i].query), scoring, band);
        for (const BackendImpl& impl : KernelRegistry::instance().backends()) {
            std::vector<BswResult> got(pool.size());
            BatchExecStats stats;
            impl.backend->bsw_batch(batch, scoring, band, BatchOptions{},
                                    {got.data(), got.size()}, &stats);
            for (std::size_t i = 0; i < pool.size(); ++i)
                expect_bsw_equal(got[i], ref[i],
                                 std::string(impl.name) + " tile " +
                                     std::to_string(i) + " band=" +
                                     std::to_string(band));
        }
    }
}

TEST(BackendDiff, GactXBatchMatchesSerialFacade)
{
    const auto pool = make_tile_pool(400, 22002);
    GactXParams params;  // paper defaults: npe 32, ydrop 9430
    const GactXTileAligner aligner(params);
    std::vector<std::size_t> order(pool.size());
    std::iota(order.begin(), order.end(), 0);
    const TileBatch batch = batch_of(pool, order);

    std::vector<TileResult> ref(pool.size());
    for (std::size_t i = 0; i < pool.size(); ++i)
        ref[i] = aligner.align_tile(sp(pool[i].target), sp(pool[i].query));

    for (const BackendImpl& impl : KernelRegistry::instance().backends()) {
        for (const bool probe : {false, true}) {
            BatchOptions options;
            options.probe_score_only = probe;
            std::vector<TileResult> got(pool.size());
            BatchExecStats stats;
            impl.backend->gactx_batch(batch, params, options,
                                      {got.data(), got.size()}, &stats);
            for (std::size_t i = 0; i < pool.size(); ++i)
                expect_tile_equal(got[i], ref[i],
                                  std::string(impl.name) + " tile " +
                                      std::to_string(i) +
                                      (probe ? " probed" : ""));
            if (probe && impl.id >= 2) {
                // The pool's homopolymer-cross tiles are guaranteed
                // dead, so the probe pass must actually catch some.
                EXPECT_GT(stats.score_only_hits, 0u) << impl.name;
            }
        }
    }
}

TEST(BackendDiff, BatchOrderInvariance)
{
    // Executing the same tiles in a different batch order must give
    // each tile the same result (results are per-tile, slot-addressed).
    const auto pool = make_tile_pool(200, 33003);
    GactXParams params;
    std::vector<std::size_t> forward(pool.size());
    std::iota(forward.begin(), forward.end(), 0);
    std::vector<std::size_t> shuffled = forward;
    Rng rng(4004);
    for (std::size_t i = shuffled.size(); i > 1; --i)
        std::swap(shuffled[i - 1],
                  shuffled[rng.uniform(static_cast<std::uint32_t>(i))]);

    const TileBatch fwd = batch_of(pool, forward);
    const TileBatch shuf = batch_of(pool, shuffled);
    for (const BackendImpl& impl : KernelRegistry::instance().backends()) {
        std::vector<TileResult> a(pool.size()), b(pool.size());
        impl.backend->gactx_batch(fwd, params, BatchOptions{},
                                  {a.data(), a.size()}, nullptr);
        impl.backend->gactx_batch(shuf, params, BatchOptions{},
                                  {b.data(), b.size()}, nullptr);
        for (std::size_t k = 0; k < shuffled.size(); ++k)
            expect_tile_equal(b[k], a[shuffled[k]],
                              std::string(impl.name) + " reorder slot " +
                                  std::to_string(k));
    }
}

TEST(BackendDiff, SingleTileBatchMatchesFacadeCall)
{
    const auto pool = make_tile_pool(60, 44004);
    const auto scoring = ScoringParams::paper_defaults();
    GactXParams params;
    const GactXTileAligner aligner(params);
    for (const auto& pair : pool) {
        TileBatch batch;
        batch.push(sp(pair.target), sp(pair.query));
        const BswResult bsw_ref = banded_smith_waterman(
            sp(pair.target), sp(pair.query), scoring, 32);
        const TileResult gx_ref =
            aligner.align_tile(sp(pair.target), sp(pair.query));
        for (const BackendImpl& impl :
             KernelRegistry::instance().backends()) {
            BswResult bsw{};
            TileResult gx{};
            impl.backend->bsw_batch(batch, scoring, 32, BatchOptions{},
                                    {&bsw, 1}, nullptr);
            impl.backend->gactx_batch(batch, params, BatchOptions{},
                                      {&gx, 1}, nullptr);
            expect_bsw_equal(bsw, bsw_ref, impl.name);
            expect_tile_equal(gx, gx_ref, impl.name);
        }
    }
}

TEST(BackendDiff, PooledExecutionIsDeterministic)
{
    // Cross-tile interleaving over a pool must not change any result.
    const auto pool = make_tile_pool(300, 55005);
    GactXParams params;
    std::vector<std::size_t> order(pool.size());
    std::iota(order.begin(), order.end(), 0);
    const TileBatch batch = batch_of(pool, order);
    ThreadPool workers(4);

    std::vector<TileResult> serial_out(pool.size());
    cpu_simd_backend()->gactx_batch(batch, params, BatchOptions{},
                                    {serial_out.data(), serial_out.size()},
                                    nullptr);
    BatchOptions pooled;
    pooled.pool = &workers;
    for (const bool probe : {false, true}) {
        pooled.probe_score_only = probe;
        std::vector<TileResult> got(pool.size());
        cpu_simd_backend()->gactx_batch(batch, params, pooled,
                                        {got.data(), got.size()}, nullptr);
        for (std::size_t i = 0; i < pool.size(); ++i)
            expect_tile_equal(got[i], serial_out[i],
                              "pooled tile " + std::to_string(i) +
                                  (probe ? " probed" : ""));
    }
}

TEST(BackendDiff, SynthEvolvedTileSweep)
{
    // Tiles cut from whole synthetic genomes of the paper's species
    // pairs — realistic divergence structure through every backend.
    synth::AncestorConfig config;
    config.num_chromosomes = 1;
    config.chromosome_length = 6000;
    config.exons_per_chromosome = 5;
    GactXParams params;
    const GactXTileAligner aligner(params);
    Rng rng(66006);
    for (const auto& spec : synth::paper_species_pairs()) {
        const auto pair = synth::make_species_pair(spec, config, 79);
        const auto& t = pair.target.genome.chromosome(0).codes();
        const auto& q = pair.query.genome.chromosome(0).codes();
        const std::size_t tile = 384;
        const std::size_t lim = std::min(t.size(), q.size()) - tile;
        std::vector<TilePair> pool;
        for (int rep = 0; rep < 24; ++rep) {
            const std::size_t off =
                rng.uniform(static_cast<std::uint32_t>(lim));
            pool.push_back({{t.begin() + off, t.begin() + off + tile},
                            {q.begin() + off, q.begin() + off + tile}});
        }
        std::vector<std::size_t> order(pool.size());
        std::iota(order.begin(), order.end(), 0);
        const TileBatch batch = batch_of(pool, order);
        std::vector<TileResult> ref(pool.size());
        for (std::size_t i = 0; i < pool.size(); ++i)
            ref[i] = aligner.align_tile(sp(pool[i].target),
                                        sp(pool[i].query));
        for (const BackendImpl& impl :
             KernelRegistry::instance().backends()) {
            std::vector<TileResult> got(pool.size());
            impl.backend->gactx_batch(batch, params, BatchOptions{},
                                      {got.data(), got.size()}, nullptr);
            for (std::size_t i = 0; i < pool.size(); ++i)
                expect_tile_equal(got[i], ref[i],
                                  std::string(impl.name) + " evolved " +
                                      spec.pair_name + " tile " +
                                      std::to_string(i));
        }
    }
}

TEST(BackendDiff, CycleModelAddsDeviceCyclesWithoutChangingResults)
{
    const auto pool = make_tile_pool(120, 77007);
    GactXParams params;
    const auto scoring = ScoringParams::paper_defaults();
    std::vector<std::size_t> order(pool.size());
    std::iota(order.begin(), order.end(), 0);
    const TileBatch batch = batch_of(pool, order);

    BatchExecStats simd_stats, cycle_stats;
    std::vector<TileResult> simd_out(pool.size()), cycle_out(pool.size());
    cpu_simd_backend()->gactx_batch(batch, params, BatchOptions{},
                                    {simd_out.data(), simd_out.size()},
                                    &simd_stats);
    cycle_model_backend()->gactx_batch(batch, params, BatchOptions{},
                                       {cycle_out.data(), cycle_out.size()},
                                       &cycle_stats);
    for (std::size_t i = 0; i < pool.size(); ++i)
        expect_tile_equal(cycle_out[i], simd_out[i],
                          "cycle-model tile " + std::to_string(i));
    EXPECT_EQ(simd_stats.device_cycles, 0u);
    EXPECT_GT(cycle_stats.device_cycles, 0u);
    EXPECT_GT(cycle_stats.device_makespan_cycles, 0u);
    // Packing onto parallel arrays can only shorten the serial sum.
    EXPECT_LE(cycle_stats.device_makespan_cycles,
              cycle_stats.device_cycles);

    std::vector<BswResult> bsw_out(pool.size());
    BatchExecStats bsw_stats;
    cycle_model_backend()->bsw_batch(batch, scoring, 32, BatchOptions{},
                                     {bsw_out.data(), bsw_out.size()},
                                     &bsw_stats);
    EXPECT_GT(bsw_stats.device_cycles, 0u);
}

// ---------------------------------------------------------------------------
// Pipeline property: forced-backend runs are byte-identical with
// reconciling counters.
// ---------------------------------------------------------------------------

TEST(BackendDispatch, AllBackendsProduceIdenticalMafWithReconciledCounters)
{
    BackendSelectionGuard guard;
    auto& registry = KernelRegistry::instance();

    synth::AncestorConfig config;
    config.num_chromosomes = 1;
    config.chromosome_length = 15000;
    config.exons_per_chromosome = 10;
    const auto pair = synth::make_species_pair(
        synth::find_species_pair("dm6-droSim1"), config, 4242);

    const wga::WgaPipeline pipeline(wga::WgaParams::darwin_defaults());
    const auto run_with = [&](const std::string& backend,
                              obs::MetricsRegistry& metrics) {
        registry.select_backend(backend);
        const auto result = pipeline.run(pair.target.genome,
                                         pair.query.genome, nullptr,
                                         &metrics);
        std::ostringstream maf;
        wga::write_maf(maf, result.alignments, pair.target.genome,
                       pair.query.genome);
        return maf.str();
    };

    obs::MetricsRegistry serial_metrics;
    const std::string serial_maf = run_with("serial", serial_metrics);
    ASSERT_FALSE(serial_maf.empty());
    // The serial baseline never flushes batches: no batch counters.
    EXPECT_EQ(serial_metrics.find_counter("wga.batch.tiles"), nullptr);
    const auto* serial_gauge = serial_metrics.find_gauge("wga.batch.backend");
    ASSERT_NE(serial_gauge, nullptr);
    EXPECT_EQ(serial_gauge->value(), 0);

    for (const char* backend : {"cpu-scalar", "cpu-simd", "cycle-model"}) {
        SCOPED_TRACE(backend);
        obs::MetricsRegistry metrics;
        const std::string maf = run_with(backend, metrics);
        EXPECT_EQ(maf, serial_maf);

        // Work counters must reconcile exactly with the serial run.
        for (const char* name :
             {"wga.filter.tiles", "wga.filter.cells", "wga.filter.passed",
              "wga.extend.tiles", "wga.extend.cells",
              "wga.extend.stripes", "wga.extend.alignments",
              "wga.extend.matched_bases"}) {
            const auto* s = serial_metrics.find_counter(name);
            const auto* b = metrics.find_counter(name);
            ASSERT_NE(s, nullptr) << name;
            ASSERT_NE(b, nullptr) << name;
            EXPECT_EQ(b->value(), s->value()) << name;
        }

        // Batched runs route every filter and extension tile through
        // flushes: the batch books must balance against the stage books.
        const auto* batch_tiles = metrics.find_counter("wga.batch.tiles");
        const auto* flushes = metrics.find_counter("wga.batch.flushes");
        ASSERT_NE(batch_tiles, nullptr);
        ASSERT_NE(flushes, nullptr);
        EXPECT_GT(flushes->value(), 0);
        EXPECT_EQ(batch_tiles->value(),
                  metrics.find_counter("wga.filter.tiles")->value() +
                      metrics.find_counter("wga.extend.tiles")->value());
        const auto* backend_gauge = metrics.find_gauge("wga.batch.backend");
        ASSERT_NE(backend_gauge, nullptr);
        EXPECT_EQ(backend_gauge->value(), registry.active_backend().id);
    }
}

// ---------------------------------------------------------------------------
// Scheduler property: a fault at the batch-flush probe quarantines only
// its pair, and survivors stay bit-identical.
// ---------------------------------------------------------------------------

struct FlushPlanGuard {
    explicit FlushPlanGuard(const fault::FaultPlan& plan)
    {
        fault::install_fault_plan(&plan);
    }
    ~FlushPlanGuard() { fault::install_fault_plan(nullptr); }
    FlushPlanGuard(const FlushPlanGuard&) = delete;
    FlushPlanGuard& operator=(const FlushPlanGuard&) = delete;
};

TEST(BackendDispatch, FlushFaultQuarantinesOnlyItsPair)
{
    BackendSelectionGuard guard;
    KernelRegistry::instance().select_backend("cpu-simd");

    synth::AncestorConfig shape;
    shape.num_chromosomes = 1;
    shape.chromosome_length = 8000;
    shape.exons_per_chromosome = 4;
    const auto specs = synth::paper_species_pairs();
    std::vector<synth::SpeciesPair> pairs;
    for (std::size_t i = 0; i < 2; ++i)
        pairs.push_back(
            synth::make_species_pair(specs[i % specs.size()], shape,
                                     31000 + i));

    const wga::WgaParams params = wga::WgaParams::darwin_defaults();
    const wga::WgaPipeline pipeline(params);
    std::vector<wga::WgaResult> serial;
    for (const auto& p : pairs)
        serial.push_back(pipeline.run(p.target.genome, p.query.genome));

    std::vector<batch::BatchJob> jobs;
    for (std::size_t i = 0; i < pairs.size(); ++i)
        jobs.push_back({"pair#" + std::to_string(i),
                        &pairs[i].target.genome, &pairs[i].query.genome});

    const auto plan = fault::FaultPlan::parse("batch.flush:throw:pair=0");
    FlushPlanGuard plan_guard(plan);

    batch::BatchOptions options;
    options.params = params;
    options.num_threads = 2;
    obs::MetricsRegistry metrics;
    batch::BatchScheduler scheduler(options, &metrics);
    const auto results = scheduler.run(jobs);

    ASSERT_EQ(results.size(), jobs.size());
    EXPECT_EQ(results[0].status, fault::PairStatus::Quarantined);
    EXPECT_EQ(results[0].quarantine.reason, fault::FailReason::Injected);
    EXPECT_TRUE(results[0].result.alignments.empty());
    EXPECT_GE(plan.injected(), 1u);

    // The survivor is bit-identical to its serial reference.
    EXPECT_EQ(results[1].status, fault::PairStatus::Clean);
    ASSERT_EQ(results[1].result.alignments.size(),
              serial[1].alignments.size());
    for (std::size_t i = 0; i < serial[1].alignments.size(); ++i) {
        const auto& a = results[1].result.alignments[i];
        const auto& b = serial[1].alignments[i];
        EXPECT_EQ(a.target_start, b.target_start);
        EXPECT_EQ(a.query_start, b.query_start);
        EXPECT_EQ(a.score, b.score);
        EXPECT_EQ(a.cigar.to_string(), b.cigar.to_string());
    }

    // The scheduler published backend flush counters for the survivor.
    EXPECT_GT(metrics.counter("batch.backend.flushes").value(), 0u);
    EXPECT_EQ(metrics.counter("batch.fault.quarantined").value(), 1u);
    EXPECT_EQ(metrics.counter("batch.fault.clean").value(), 1u);
}

}  // namespace
}  // namespace darwin::align
