/**
 * @file
 * Tests for scoring, CIGAR, and the full-matrix reference aligners
 * (Smith-Waterman, Needleman-Wunsch, extension reference).
 */
#include <gtest/gtest.h>

#include "align/cigar.h"
#include "align/needleman_wunsch.h"
#include "align/scoring.h"
#include "align/smith_waterman.h"
#include "seq/sequence.h"
#include "util/rng.h"

namespace darwin::align {
namespace {

using seq::encode_string;

std::vector<std::uint8_t>
random_codes(std::size_t len, Rng& rng)
{
    std::vector<std::uint8_t> codes(len);
    for (auto& c : codes)
        c = static_cast<std::uint8_t>(rng.uniform(4));
    return codes;
}

TEST(Scoring, PaperDefaultsMatchTableII)
{
    const auto s = ScoringParams::paper_defaults();
    EXPECT_EQ(s.substitution(seq::BaseA, seq::BaseA), 91);
    EXPECT_EQ(s.substitution(seq::BaseC, seq::BaseC), 100);
    EXPECT_EQ(s.substitution(seq::BaseA, seq::BaseC), -90);
    EXPECT_EQ(s.substitution(seq::BaseA, seq::BaseG), -25);
    EXPECT_EQ(s.substitution(seq::BaseA, seq::BaseT), -100);
    EXPECT_EQ(s.substitution(seq::BaseG, seq::BaseT), -90);
    EXPECT_EQ(s.gap_open, 430);
    EXPECT_EQ(s.gap_extend, 30);
    // Symmetry.
    for (int a = 0; a < seq::kNumBases; ++a) {
        for (int b = 0; b < seq::kNumBases; ++b)
            EXPECT_EQ(s.matrix[a][b], s.matrix[b][a]);
    }
}

TEST(Scoring, GapCost)
{
    const auto s = ScoringParams::paper_defaults();
    EXPECT_EQ(s.gap_cost(0), 0);
    EXPECT_EQ(s.gap_cost(1), 430);
    EXPECT_EQ(s.gap_cost(2), 460);
    EXPECT_EQ(s.gap_cost(11), 430 + 10 * 30);
}

TEST(Cigar, PushMerges)
{
    Cigar c;
    c.push(EditOp::Match, 3);
    c.push(EditOp::Match, 2);
    c.push(EditOp::Insert, 1);
    ASSERT_EQ(c.runs().size(), 2u);
    EXPECT_EQ(c.runs()[0].length, 5u);
    EXPECT_EQ(c.to_string(), "5=1I");
}

TEST(Cigar, Lengths)
{
    Cigar c;
    c.push(EditOp::Match, 10);
    c.push(EditOp::Mismatch, 2);
    c.push(EditOp::Insert, 3);
    c.push(EditOp::Delete, 4);
    EXPECT_EQ(c.total_ops(), 19u);
    EXPECT_EQ(c.target_consumed(), 16u);
    EXPECT_EQ(c.query_consumed(), 15u);
    EXPECT_EQ(c.matches(), 10u);
    EXPECT_EQ(c.mismatches(), 2u);
    EXPECT_EQ(c.gap_runs(), 2u);
    EXPECT_EQ(c.gap_bases(), 7u);
}

TEST(Cigar, AppendAndReverse)
{
    Cigar a;
    a.push(EditOp::Match, 2);
    a.push(EditOp::Delete, 1);
    Cigar b;
    b.push(EditOp::Delete, 2);
    b.push(EditOp::Match, 1);
    a.append(b);
    EXPECT_EQ(a.to_string(), "2=3D1=");
    a.reverse();
    EXPECT_EQ(a.to_string(), "1=3D2=");
}

TEST(Cigar, ScoreRecompute)
{
    const auto scoring = ScoringParams::paper_defaults();
    const auto t = encode_string("ACGTT");
    const auto q = encode_string("ACTT");
    Cigar c;
    c.push(EditOp::Match, 2);   // AC / AC
    c.push(EditOp::Delete, 1);  // G / -
    c.push(EditOp::Match, 2);   // TT / TT
    EXPECT_EQ(c.score({t.data(), t.size()}, {q.data(), q.size()}, scoring),
              91 + 100 - 430 + 91 + 91);
    EXPECT_TRUE(c.consistent_with({t.data(), t.size()},
                                  {q.data(), q.size()}));
}

TEST(Cigar, ConsistencyDetectsLies)
{
    const auto t = encode_string("AAAA");
    const auto q = encode_string("AATA");
    Cigar c;
    c.push(EditOp::Match, 4);  // claims all match, but position 2 differs
    EXPECT_FALSE(c.consistent_with({t.data(), t.size()},
                                   {q.data(), q.size()}));
}

TEST(Cigar, NNeverMatches)
{
    const auto t = encode_string("ANAA");
    const auto q = encode_string("ANAA");
    Cigar all_match;
    all_match.push(EditOp::Match, 4);
    EXPECT_FALSE(all_match.consistent_with({t.data(), t.size()},
                                           {q.data(), q.size()}));
    Cigar honest;
    honest.push(EditOp::Match, 1);
    honest.push(EditOp::Mismatch, 1);
    honest.push(EditOp::Match, 2);
    EXPECT_TRUE(honest.consistent_with({t.data(), t.size()},
                                       {q.data(), q.size()}));
}

TEST(SmithWaterman, IdenticalSequences)
{
    const auto scoring = ScoringParams::unit(2, -3, 4, 1);
    const auto t = encode_string("ACGTACGT");
    const auto result = smith_waterman({t.data(), t.size()},
                                       {t.data(), t.size()}, scoring);
    EXPECT_EQ(result.score, 16);
    EXPECT_EQ(result.cigar.to_string(), "8=");
    EXPECT_EQ(result.target_start, 0u);
    EXPECT_EQ(result.target_end, 8u);
}

TEST(SmithWaterman, FindsLocalIsland)
{
    const auto scoring = ScoringParams::unit(2, -3, 4, 1);
    const auto t = encode_string("TTTTTACGTACGTTTTT");
    const auto q = encode_string("GGGGGACGTACGGGGGG");
    const auto result = smith_waterman({t.data(), t.size()},
                                       {q.data(), q.size()}, scoring);
    // The common island is "ACGTACG" (7 matches, score 14).
    EXPECT_GE(result.score, 14);
    EXPECT_GE(result.cigar.matches(), 7u);
}

TEST(SmithWaterman, GapPreferredOverMismatchRun)
{
    // Deleting 2 bases (cost 4+1=5 with unit(2,-3,4,1)) beats 2 mismatches
    // (-6) when flanked by enough matches.
    const auto scoring = ScoringParams::unit(2, -3, 4, 1);
    const auto t = encode_string("AAAACCGGGG");
    const auto q = encode_string("AAAAGGGG");
    const auto result = smith_waterman({t.data(), t.size()},
                                       {q.data(), q.size()}, scoring);
    EXPECT_EQ(result.cigar.to_string(), "4=2D4=");
    EXPECT_EQ(result.score, 16 - 5);
}

TEST(SmithWaterman, NoPositiveAlignment)
{
    const auto scoring = ScoringParams::unit(1, -1, 2, 1);
    const auto t = encode_string("AAAA");
    const auto q = encode_string("TTTT");
    const auto result = smith_waterman({t.data(), t.size()},
                                       {q.data(), q.size()}, scoring);
    EXPECT_EQ(result.score, 0);
    EXPECT_TRUE(result.cigar.empty());
}

TEST(SmithWaterman, EmptyInput)
{
    const auto scoring = ScoringParams::unit();
    const std::vector<std::uint8_t> empty;
    const auto t = encode_string("ACGT");
    EXPECT_EQ(smith_waterman({empty.data(), 0},
                             {t.data(), t.size()}, scoring).score, 0);
    EXPECT_EQ(smith_waterman({t.data(), t.size()},
                             {empty.data(), 0}, scoring).score, 0);
}

TEST(SmithWaterman, ScoreOnlyAgreesWithTraceback)
{
    Rng rng(31);
    const auto scoring = ScoringParams::paper_defaults();
    for (int trial = 0; trial < 20; ++trial) {
        const auto t = random_codes(60, rng);
        const auto q = random_codes(60, rng);
        const auto full = smith_waterman({t.data(), t.size()},
                                         {q.data(), q.size()}, scoring);
        const auto score_only = smith_waterman_score(
            {t.data(), t.size()}, {q.data(), q.size()}, scoring);
        EXPECT_EQ(full.score, score_only);
    }
}

TEST(SmithWaterman, PropertyScoreMatchesCigar)
{
    Rng rng(32);
    const auto scoring = ScoringParams::paper_defaults();
    for (int trial = 0; trial < 30; ++trial) {
        const auto t = random_codes(40 + rng.uniform(60), rng);
        const auto q = random_codes(40 + rng.uniform(60), rng);
        const auto result = smith_waterman({t.data(), t.size()},
                                           {q.data(), q.size()}, scoring);
        if (result.score == 0)
            continue;
        const std::span<const std::uint8_t> ts{
            t.data() + result.target_start,
            result.target_end - result.target_start};
        const std::span<const std::uint8_t> qs{
            q.data() + result.query_start,
            result.query_end - result.query_start};
        EXPECT_TRUE(result.cigar.consistent_with(ts, qs));
        EXPECT_EQ(result.cigar.score(ts, qs, scoring), result.score);
    }
}

TEST(NeedlemanWunsch, EqualStringsScoreSumOfMatches)
{
    const auto scoring = ScoringParams::unit(3, -2, 4, 1);
    const auto t = encode_string("ACGTAC");
    const auto result = needleman_wunsch({t.data(), t.size()},
                                         {t.data(), t.size()}, scoring);
    EXPECT_EQ(result.score, 18);
    EXPECT_EQ(result.cigar.to_string(), "6=");
}

TEST(NeedlemanWunsch, GlobalConsumesEverything)
{
    Rng rng(33);
    const auto scoring = ScoringParams::paper_defaults();
    for (int trial = 0; trial < 20; ++trial) {
        const auto t = random_codes(10 + rng.uniform(50), rng);
        const auto q = random_codes(10 + rng.uniform(50), rng);
        const auto result = needleman_wunsch({t.data(), t.size()},
                                             {q.data(), q.size()}, scoring);
        EXPECT_EQ(result.cigar.target_consumed(), t.size());
        EXPECT_EQ(result.cigar.query_consumed(), q.size());
        EXPECT_EQ(result.cigar.score({t.data(), t.size()},
                                     {q.data(), q.size()}, scoring),
                  result.score);
    }
}

TEST(NeedlemanWunsch, PureGapAlignment)
{
    const auto scoring = ScoringParams::paper_defaults();
    const auto t = encode_string("ACGT");
    const std::vector<std::uint8_t> empty;
    const auto result = needleman_wunsch({t.data(), t.size()},
                                         {empty.data(), 0}, scoring);
    EXPECT_EQ(result.score, -(430 + 3 * 30));
    EXPECT_EQ(result.cigar.to_string(), "4D");
}

TEST(NwExtendReference, StopsBeforeBadTail)
{
    const auto scoring = ScoringParams::unit(2, -3, 4, 1);
    // Prefixes agree for 6 bases, then diverge completely.
    const auto t = encode_string("ACGTACTTTTTTTT");
    const auto q = encode_string("ACGTACGGGGGGGG");
    const auto result = nw_extend_reference({t.data(), t.size()},
                                            {q.data(), q.size()}, scoring);
    EXPECT_EQ(result.max_score, 12);
    EXPECT_EQ(result.target_max, 6u);
    EXPECT_EQ(result.query_max, 6u);
    EXPECT_EQ(result.cigar.to_string(), "6=");
}

TEST(NwExtendReference, MaxNeverBelowOrigin)
{
    Rng rng(34);
    const auto scoring = ScoringParams::paper_defaults();
    for (int trial = 0; trial < 20; ++trial) {
        const auto t = random_codes(30, rng);
        const auto q = random_codes(30, rng);
        const auto result = nw_extend_reference(
            {t.data(), t.size()}, {q.data(), q.size()}, scoring);
        EXPECT_GE(result.max_score, 0);
        // Path score equals reported max.
        if (!result.cigar.empty()) {
            EXPECT_EQ(result.cigar.score(
                          {t.data(), result.target_max},
                          {q.data(), result.query_max}, scoring),
                      result.max_score);
        }
    }
}

TEST(NwExtendReference, UpperBoundsSmithWatermanFromOrigin)
{
    // The extension max is at most the best local score (SW can start
    // anywhere, extension must start at the origin).
    Rng rng(35);
    const auto scoring = ScoringParams::paper_defaults();
    for (int trial = 0; trial < 20; ++trial) {
        auto t = random_codes(50, rng);
        auto q = t;  // identical prefix guaranteed
        // mutate the tail of q
        for (std::size_t i = 25; i < q.size(); ++i)
            q[i] = static_cast<std::uint8_t>(rng.uniform(4));
        const auto ext = nw_extend_reference(
            {t.data(), t.size()}, {q.data(), q.size()}, scoring);
        const auto sw = smith_waterman({t.data(), t.size()},
                                       {q.data(), q.size()}, scoring);
        EXPECT_LE(ext.max_score, sw.score);
        EXPECT_GT(ext.max_score, 0);
    }
}

}  // namespace
}  // namespace darwin::align
