/**
 * @file
 * Tests for the observability subsystem (src/obs/) and structured
 * logging: empty-histogram NaN semantics, DARWIN_LOG parsing, trace
 * JSON round-trip with span nesting and thread attribution, registry
 * snapshot consistency under concurrent writers, the JSON log sink, the
 * hw-model metric publisher, and — the load-bearing property — that
 * instrumenting the serial pipeline does not change its results.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <thread>

#include "hw/perf_model.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "synth/species.h"
#include "util/logging.h"
#include "wga/pipeline.h"

namespace darwin::obs {
namespace {

TEST(Histogram, EmptyHasNaNExtremaAndQuantiles)
{
    Histogram hist;
    EXPECT_EQ(hist.count(), 0u);
    EXPECT_DOUBLE_EQ(hist.sum(), 0.0);
    EXPECT_DOUBLE_EQ(hist.mean(), 0.0);
    EXPECT_TRUE(std::isnan(hist.min()));
    EXPECT_TRUE(std::isnan(hist.max()));
    EXPECT_TRUE(std::isnan(hist.quantile(0.0)));
    EXPECT_TRUE(std::isnan(hist.quantile(0.5)));
    EXPECT_TRUE(std::isnan(hist.quantile(1.0)));
}

TEST(Histogram, SingleSampleCollapsesAllStatistics)
{
    Histogram hist;
    hist.observe(3.25);
    EXPECT_EQ(hist.count(), 1u);
    EXPECT_DOUBLE_EQ(hist.sum(), 3.25);
    EXPECT_DOUBLE_EQ(hist.mean(), 3.25);
    EXPECT_DOUBLE_EQ(hist.min(), 3.25);
    EXPECT_DOUBLE_EQ(hist.max(), 3.25);
    EXPECT_DOUBLE_EQ(hist.quantile(0.0), 3.25);
    EXPECT_DOUBLE_EQ(hist.quantile(0.5), 3.25);
    EXPECT_DOUBLE_EQ(hist.quantile(1.0), 3.25);
}

TEST(Metrics, EmptyHistogramDumpsNullNotNaN)
{
    MetricsRegistry registry;
    registry.histogram("empty.hist");
    const std::string json = registry.to_json();
    EXPECT_NE(json.find("\"min\": null"), std::string::npos);
    EXPECT_NE(json.find("\"p50\": null"), std::string::npos);
    EXPECT_EQ(json.find("nan"), std::string::npos);
}

TEST(Metrics, FindAccessorsDoNotCreate)
{
    MetricsRegistry registry;
    EXPECT_EQ(registry.find_counter("never.made"), nullptr);
    EXPECT_EQ(registry.find_gauge("never.made"), nullptr);
    EXPECT_EQ(registry.find_histogram("never.made"), nullptr);
    registry.counter("made").add(2);
    ASSERT_NE(registry.find_counter("made"), nullptr);
    EXPECT_EQ(registry.find_counter("made")->value(), 2u);
    EXPECT_EQ(registry.find_histogram("made"), nullptr);
}

TEST(Metrics, GaugeSnapshotFiltersByPrefix)
{
    MetricsRegistry registry;
    registry.gauge("batch.queue.seed.depth").set(3);
    registry.gauge("batch.queue.filter.depth").set(5);
    registry.gauge("batch.inflight").set(9);
    const auto queues = registry.gauge_snapshot("batch.queue.");
    ASSERT_EQ(queues.size(), 2u);
    // Name order.
    EXPECT_EQ(queues[0].first, "batch.queue.filter.depth");
    EXPECT_EQ(queues[0].second, 5);
    EXPECT_EQ(queues[1].first, "batch.queue.seed.depth");
    EXPECT_EQ(queues[1].second, 3);
    EXPECT_EQ(registry.gauge_snapshot().size(), 3u);
}

TEST(Metrics, SnapshotConsistentUnderConcurrentWriters)
{
    MetricsRegistry registry;
    constexpr int kWriters = 4;
    constexpr int kIterations = 5'000;
    std::vector<std::thread> writers;
    for (int t = 0; t < kWriters; ++t) {
        writers.emplace_back([&registry, t] {
            Counter& counter = registry.counter("obs.count");
            Gauge& gauge =
                registry.gauge("obs.queue." + std::to_string(t));
            Histogram& hist =
                registry.histogram("obs.lat." + std::to_string(t));
            for (int i = 1; i <= kIterations; ++i) {
                counter.add(1);
                gauge.set(i);
                hist.observe(1.0);
            }
        });
    }
    // Reader races dumps against the writers: every dump must be
    // structurally whole (all three sections present, no crash).
    for (int i = 0; i < 25; ++i) {
        const std::string json = registry.to_json();
        EXPECT_NE(json.find("\"counters\""), std::string::npos);
        EXPECT_NE(json.find("\"gauges\""), std::string::npos);
        EXPECT_NE(json.find("\"histograms\""), std::string::npos);
        (void)registry.gauge_snapshot("obs.queue.");
    }
    for (auto& writer : writers)
        writer.join();
    // Final state is exact: no update was lost.
    EXPECT_EQ(registry.counter("obs.count").value(),
              static_cast<std::uint64_t>(kWriters) * kIterations);
    for (int t = 0; t < kWriters; ++t) {
        EXPECT_EQ(registry.gauge("obs.queue." + std::to_string(t)).value(),
                  kIterations);
        Histogram& hist = registry.histogram("obs.lat." + std::to_string(t));
        EXPECT_EQ(hist.count(), static_cast<std::uint64_t>(kIterations));
        EXPECT_DOUBLE_EQ(hist.sum(), static_cast<double>(kIterations));
    }
}

TEST(Logging, ParseLogLevel)
{
    EXPECT_EQ(parse_log_level("debug"), LogLevel::Debug);
    EXPECT_EQ(parse_log_level("info"), LogLevel::Info);
    EXPECT_EQ(parse_log_level("INFO"), LogLevel::Info);
    EXPECT_EQ(parse_log_level("Warn"), LogLevel::Warn);
    EXPECT_EQ(parse_log_level("warning"), LogLevel::Warn);
    EXPECT_EQ(parse_log_level("ERROR"), LogLevel::Error);
    EXPECT_FALSE(parse_log_level("verbose").has_value());
    EXPECT_FALSE(parse_log_level("").has_value());
    EXPECT_FALSE(parse_log_level("warn ").has_value());
}

TEST(Logging, DarwinLogEnvironmentSetsThreshold)
{
    const LogLevel before = log_level();
    ::setenv("DARWIN_LOG", "error", 1);
    init_log_level_from_env();
    EXPECT_EQ(log_level(), LogLevel::Error);

    // Unrecognized and unset values leave the threshold unchanged.
    ::setenv("DARWIN_LOG", "not-a-level", 1);
    init_log_level_from_env();
    EXPECT_EQ(log_level(), LogLevel::Error);
    ::unsetenv("DARWIN_LOG");
    init_log_level_from_env();
    EXPECT_EQ(log_level(), LogLevel::Error);

    ::setenv("DARWIN_LOG", "DEBUG", 1);
    init_log_level_from_env();
    EXPECT_EQ(log_level(), LogLevel::Debug);

    ::unsetenv("DARWIN_LOG");
    set_log_level(before);
}

TEST(Logging, JsonLinesSinkWritesOneObjectPerLine)
{
    const auto path = std::filesystem::temp_directory_path() /
                      "darwin_obs_test_log.jsonl";
    std::filesystem::remove(path);
    const LogLevel before = log_level();
    set_log_level(LogLevel::Info);
    add_log_sink(std::make_shared<JsonLinesSink>(path.string()));
    inform("batch started", {{"pairs", "8"}, {"threads", "4"}});
    warn("queue \"deep\"");
    clear_log_sinks();
    set_log_level(before);

    std::ifstream in(path);
    ASSERT_TRUE(in.is_open());
    std::string line;
    ASSERT_TRUE(std::getline(in, line));
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
    EXPECT_NE(line.find("\"level\": \"info\""), std::string::npos);
    EXPECT_NE(line.find("\"msg\": \"batch started\""), std::string::npos);
    EXPECT_NE(line.find("\"pairs\": \"8\""), std::string::npos);
    EXPECT_NE(line.find("\"threads\": \"4\""), std::string::npos);
    ASSERT_TRUE(std::getline(in, line));
    EXPECT_NE(line.find("\"level\": \"warn\""), std::string::npos);
    // The quotes in the message were escaped.
    EXPECT_NE(line.find("queue \\\"deep\\\""), std::string::npos);
    std::filesystem::remove(path);
}

TEST(Trace, SpansAreInertWithoutInstalledSession)
{
    ASSERT_EQ(TraceSession::current(), nullptr);
    ScopedSpan span("seed", "wga");
    span.arg("hits", 1);  // must be a safe no-op
}

TEST(Trace, ManualSpanMovesAndEndsOnce)
{
    TraceSession session;
    auto span = ManualSpan::begin(&session, "extend", "batch");
    ManualSpan moved = std::move(span);
    moved.arg("pair", 3);
    moved.end();
    moved.end();  // idempotent
    const auto events = session.snapshot();
    ASSERT_EQ(events.size(), 1u);
    EXPECT_EQ(events[0].name, "extend");
    EXPECT_EQ(events[0].category, "batch");
    ASSERT_EQ(events[0].args.size(), 1u);
    EXPECT_EQ(events[0].args[0].key, "pair");
    EXPECT_EQ(events[0].args[0].value, 3);
}

TEST(Trace, RoundTripPreservesNestingAndThreadAttribution)
{
    TraceSession session;
    TraceSession::install(&session);
    {
        ScopedSpan outer("pipeline", "wga");
        ScopedSpan inner("seed", "wga");
        inner.arg("hits", 42);
    }
    std::thread worker([] {
        ScopedSpan span("filter", "batch");
        span.arg("shard", 7);
    });
    worker.join();
    TraceSession::install(nullptr);

    const std::string json = session.to_json();
    EXPECT_NE(json.find("\"displayTimeUnit\""), std::string::npos);
    EXPECT_NE(json.find("thread_name"), std::string::npos);

    const auto events = parse_trace_events(json);
    ASSERT_EQ(events.size(), 3u);
    const auto find = [&events](const std::string& name) {
        for (const auto& event : events)
            if (event.name == name)
                return event;
        ADD_FAILURE() << "missing span " << name;
        return TraceEvent{};
    };
    const auto pipeline = find("pipeline");
    const auto seed = find("seed");
    const auto filter = find("filter");

    // The inner span nests inside the outer one, on the same thread.
    EXPECT_GE(seed.start_us, pipeline.start_us);
    EXPECT_LE(seed.start_us + seed.duration_us,
              pipeline.start_us + pipeline.duration_us);
    EXPECT_EQ(seed.tid, pipeline.tid);
    // The worker-thread span is attributed to a different thread.
    EXPECT_NE(filter.tid, pipeline.tid);

    // Categories and args survive the round trip.
    EXPECT_EQ(pipeline.category, "wga");
    EXPECT_EQ(filter.category, "batch");
    ASSERT_EQ(seed.args.size(), 1u);
    EXPECT_EQ(seed.args[0].key, "hits");
    EXPECT_EQ(seed.args[0].value, 42);
    ASSERT_EQ(filter.args.size(), 1u);
    EXPECT_EQ(filter.args[0].value, 7);
}

TEST(HwMetrics, DeviceEstimatePublishesCyclesAndTraffic)
{
    hw::WorkloadCounts workload;
    workload.filter_tiles = 1'000;
    workload.extension_tiles = 10;
    workload.extension.tiles = 10;
    workload.extension.stripes = 500;
    workload.extension.stripe_columns = 50'000;
    workload.extension.traceback_ops = 2'000;
    const hw::PerfModel model(hw::DeviceConfig::asic_40nm());
    const auto estimate = model.estimate(workload);
    EXPECT_GT(estimate.filter.cycles, 0u);
    EXPECT_GT(estimate.filter.dram_bytes, 0u);
    EXPECT_GT(estimate.extension.cycles, 0u);
    EXPECT_GT(estimate.extension.dram_bytes, 0u);

    MetricsRegistry registry;
    hw::publish_device_estimate(registry, estimate);
    EXPECT_EQ(registry.counter("hw.filter.cycles").value(),
              estimate.filter.cycles);
    EXPECT_EQ(registry.counter("hw.filter.dram_bytes").value(),
              estimate.filter.dram_bytes);
    EXPECT_EQ(registry.counter("hw.extend.cycles").value(),
              estimate.extension.cycles);
    EXPECT_EQ(registry.counter("hw.extend.dram_bytes").value(),
              estimate.extension.dram_bytes);
    EXPECT_GE(registry.gauge("hw.total.micros").value(), 0);
}

TEST(PipelineObservability, MetricsAndTraceDoNotChangeResults)
{
    synth::AncestorConfig shape;
    shape.num_chromosomes = 1;
    shape.chromosome_length = 12'000;
    shape.exons_per_chromosome = 5;
    const auto pair = synth::make_species_pair(
        synth::paper_species_pairs().front(), shape, 7);

    const wga::WgaPipeline pipeline(wga::WgaParams::darwin_defaults());
    const auto plain =
        pipeline.run(pair.target.genome, pair.query.genome);

    MetricsRegistry metrics;
    TraceSession session;
    TraceSession::install(&session);
    const auto observed = pipeline.run(pair.target.genome,
                                       pair.query.genome, nullptr, &metrics);
    TraceSession::install(nullptr);

    // Bit-identical output with observability on.
    ASSERT_EQ(plain.alignments.size(), observed.alignments.size());
    for (std::size_t i = 0; i < plain.alignments.size(); ++i) {
        EXPECT_EQ(plain.alignments[i].target_start,
                  observed.alignments[i].target_start);
        EXPECT_EQ(plain.alignments[i].query_start,
                  observed.alignments[i].query_start);
        EXPECT_EQ(plain.alignments[i].score, observed.alignments[i].score);
        EXPECT_EQ(plain.alignments[i].cigar.to_string(),
                  observed.alignments[i].cigar.to_string());
    }
    EXPECT_EQ(plain.chains.size(), observed.chains.size());

    // The serial path published non-zero per-stage counters...
    EXPECT_GT(metrics.counter("wga.seed.lookups").value(), 0u);
    EXPECT_GT(metrics.counter("wga.seed.hits").value(), 0u);
    EXPECT_GT(metrics.counter("wga.filter.tiles").value(), 0u);
    EXPECT_GT(metrics.counter("wga.extend.anchors_in").value(), 0u);
    EXPECT_GT(metrics.counter("wga.extend.matched_bases").value(), 0u);
    // ...and they reconcile across stages.
    EXPECT_EQ(metrics.counter("wga.filter.tiles").value(),
              metrics.counter("wga.filter.passed").value() +
                  metrics.counter("wga.filter.dropped").value());
    EXPECT_EQ(metrics.counter("wga.filter.passed").value(),
              metrics.counter("wga.extend.anchors_in").value());
    EXPECT_EQ(metrics.counter("wga.extend.anchors_in").value(),
              metrics.counter("wga.extend.absorbed").value() +
                  metrics.counter("wga.extend.extended").value());
    EXPECT_EQ(metrics.counter("wga.extend.alignments").value(),
              observed.alignments.size());

    // Every stage recorded a span.
    const auto events = session.snapshot();
    for (const char* stage : {"index", "seed", "filter", "extend", "chain"}) {
        const bool found =
            std::any_of(events.begin(), events.end(),
                        [stage](const TraceEvent& event) {
                            return event.name == stage;
                        });
        EXPECT_TRUE(found) << "no span recorded for stage " << stage;
    }
}

}  // namespace
}  // namespace darwin::obs
