/**
 * @file
 * Property tests for the kernel dispatch registry: DARWIN_KERNEL /
 * --kernel parsing, selection state, and the end-to-end guarantee that a
 * forced-scalar WgaPipeline run and an auto (vectorized) run produce
 * byte-identical MAF output with reconciling wga.filter.* and
 * wga.extend.* counters.
 */
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "align/kernels/bsw_kernels.h"
#include "align/kernels/kernel_registry.h"
#include "obs/metrics.h"
#include "synth/species.h"
#include "util/logging.h"
#include "wga/maf.h"
#include "wga/params.h"
#include "wga/pipeline.h"

namespace darwin::align::kernels {
namespace {

/** Restore "auto" selection however a test exits. */
struct SelectionGuard {
    ~SelectionGuard() { KernelRegistry::instance().select("auto"); }
};

TEST(KernelRegistry, TableIsStable)
{
    const auto& kernels = KernelRegistry::instance().kernels();
    ASSERT_EQ(kernels.size(), 3u);
    EXPECT_EQ(kernels[0].id, 0);
    EXPECT_STREQ(kernels[0].name, "scalar");
    EXPECT_TRUE(kernels[0].usable());
    EXPECT_EQ(kernels[1].id, 1);
    EXPECT_STREQ(kernels[1].name, "sse42");
    EXPECT_EQ(kernels[2].id, 2);
    EXPECT_STREQ(kernels[2].name, "avx2");
}

TEST(KernelRegistry, SelectByNameAndAuto)
{
    SelectionGuard guard;
    auto& registry = KernelRegistry::instance();
    registry.select("scalar");
    EXPECT_STREQ(registry.active().name, "scalar");
    EXPECT_EQ(registry.active().id, 0);

    registry.select("auto");
    // Auto picks the highest-id usable kernel.
    int best = 0;
    for (const KernelImpl& k : registry.kernels())
        if (k.usable())
            best = std::max(best, k.id);
    EXPECT_EQ(registry.active().id, best);
}

TEST(KernelRegistry, BadNameIsClearFatal)
{
    SelectionGuard guard;
    auto& registry = KernelRegistry::instance();
    const KernelImpl& before = registry.active();
    try {
        registry.select("sse999");  // same path DARWIN_KERNEL takes
        FAIL() << "expected FatalError";
    } catch (const FatalError& e) {
        const std::string msg = e.what();
        EXPECT_NE(msg.find("unknown kernel 'sse999'"), std::string::npos)
            << msg;
        EXPECT_NE(msg.find("DARWIN_KERNEL"), std::string::npos) << msg;
        EXPECT_NE(msg.find("scalar"), std::string::npos) << msg;
    }
    // A failed selection must not change the active kernel.
    EXPECT_EQ(registry.active().id, before.id);
}

TEST(KernelRegistry, UnusableKernelIsFatalNotCrash)
{
    SelectionGuard guard;
    auto& registry = KernelRegistry::instance();
    for (const KernelImpl& k : registry.kernels()) {
        if (k.usable())
            continue;
        EXPECT_THROW(registry.select(k.name), FatalError) << k.name;
    }
}

TEST(KernelDispatch, ForcedScalarAndAutoProduceIdenticalMaf)
{
    SelectionGuard guard;
    auto& registry = KernelRegistry::instance();

    synth::AncestorConfig config;
    config.num_chromosomes = 1;
    config.chromosome_length = 15000;
    config.exons_per_chromosome = 10;
    const auto pair = synth::make_species_pair(
        synth::find_species_pair("dm6-droSim1"), config, 4242);

    const wga::WgaPipeline pipeline(wga::WgaParams::darwin_defaults());

    const auto run_with = [&](const std::string& kernel,
                              obs::MetricsRegistry& metrics) {
        registry.select(kernel);
        const auto result = pipeline.run(pair.target.genome,
                                         pair.query.genome, nullptr,
                                         &metrics);
        std::ostringstream maf;
        wga::write_maf(maf, result.alignments, pair.target.genome,
                       pair.query.genome);
        return maf.str();
    };

    obs::MetricsRegistry scalar_metrics, auto_metrics;
    const std::string scalar_maf = run_with("scalar", scalar_metrics);
    const std::string auto_maf = run_with("auto", auto_metrics);

    // Byte-identical alignment output regardless of kernel.
    EXPECT_EQ(scalar_maf, auto_maf);
    EXPECT_FALSE(scalar_maf.empty());

    // The filter and extension counters must reconcile exactly: same
    // tiles, same DP cells (cells_computed is part of the bit-identity
    // contract for both the BSW and GACT-X kernels), same pass/drop
    // split, same stripe/traceback accounting.
    for (const char* name :
         {"wga.filter.tiles", "wga.filter.cells", "wga.filter.passed",
          "wga.filter.dropped", "wga.extend.tiles", "wga.extend.cells",
          "wga.extend.stripes", "wga.extend.traceback_ops",
          "wga.extend.alignments", "wga.extend.matched_bases"}) {
        const auto* s = scalar_metrics.find_counter(name);
        const auto* a = auto_metrics.find_counter(name);
        ASSERT_NE(s, nullptr) << name;
        ASSERT_NE(a, nullptr) << name;
        EXPECT_EQ(s->value(), a->value()) << name;
        EXPECT_GT(s->value(), 0) << name;
    }

    // The gauges record which kernel each run dispatched to — the filter
    // and extension stages always share the registry's active entry.
    for (const char* name : {"wga.filter.kernel", "wga.extend.kernel"}) {
        const auto* scalar_gauge = scalar_metrics.find_gauge(name);
        const auto* auto_gauge = auto_metrics.find_gauge(name);
        ASSERT_NE(scalar_gauge, nullptr) << name;
        ASSERT_NE(auto_gauge, nullptr) << name;
        EXPECT_EQ(scalar_gauge->value(), 0) << name;
        EXPECT_EQ(auto_gauge->value(), registry.active().id) << name;
    }
}

}  // namespace
}  // namespace darwin::align::kernels
