/**
 * @file
 * Additional coverage: hardware array models against the software
 * engines, MAF edge cases, pipeline parameter factories, and kernel
 * corner cases not exercised elsewhere.
 */
#include <gtest/gtest.h>

#include <sstream>

#include "align/gactx.h"
#include "align/xdrop_reference.h"
#include "hw/gactx_array.h"
#include "seq/fasta.h"
#include "util/rng.h"
#include "util/logging.h"
#include "wga/chain_io.h"
#include "wga/maf.h"
#include "wga/params.h"

namespace darwin {
namespace {

std::vector<std::uint8_t>
random_codes(std::size_t len, Rng& rng)
{
    std::vector<std::uint8_t> codes(len);
    for (auto& c : codes)
        c = static_cast<std::uint8_t>(rng.uniform(4));
    return codes;
}

std::span<const std::uint8_t>
sp(const std::vector<std::uint8_t>& v)
{
    return {v.data(), v.size()};
}

TEST(WgaParams, FactoriesMatchPaperDefaults)
{
    const auto darwin_params = wga::WgaParams::darwin_defaults();
    EXPECT_EQ(darwin_params.filter_mode, wga::FilterMode::Gapped);
    EXPECT_EQ(darwin_params.filter_threshold, 4000);
    EXPECT_EQ(darwin_params.extension_threshold, 4000);
    EXPECT_EQ(darwin_params.filter_tile, 320u);
    EXPECT_EQ(darwin_params.filter_band, 32u);
    EXPECT_EQ(darwin_params.gactx.tile_size, 1920u);
    EXPECT_EQ(darwin_params.gactx.overlap, 128u);
    EXPECT_EQ(darwin_params.gactx.ydrop, 9430);
    EXPECT_EQ(darwin_params.seed_pattern, "1110100110010101111");

    const auto lastz_params = wga::WgaParams::lastz_defaults();
    EXPECT_EQ(lastz_params.filter_mode, wga::FilterMode::Ungapped);
    EXPECT_EQ(lastz_params.filter_threshold, 3000);
    EXPECT_EQ(lastz_params.extension_threshold, 3000);
    // Everything else is shared so the comparison isolates the filter.
    EXPECT_EQ(lastz_params.seed_pattern, darwin_params.seed_pattern);
    EXPECT_EQ(lastz_params.gactx.tile_size, darwin_params.gactx.tile_size);
}

TEST(GactXArrayModel, RunTileMatchesSoftwareEngine)
{
    Rng rng(201);
    align::GactXParams params;
    params.tile_size = 512;
    const align::GactXTileAligner engine(params);
    const hw::GactXArrayModel array(params);
    const auto t = random_codes(512, rng);
    auto q = t;
    for (std::size_t i = 0; i < q.size(); i += 7)
        q[i] = static_cast<std::uint8_t>(rng.uniform(4));
    const auto sw = engine.align_tile(sp(t), sp(q));
    const auto hw_sim = array.run_tile(sp(t), sp(q));
    EXPECT_EQ(hw_sim.tile.max_score, sw.max_score);
    EXPECT_EQ(hw_sim.tile.target_max, sw.target_max);
    EXPECT_EQ(hw_sim.tile.cigar.to_string(), sw.cigar.to_string());
    EXPECT_GT(hw_sim.cycles, 0u);
    // Cycles are deterministic.
    EXPECT_EQ(array.run_tile(sp(t), sp(q)).cycles, hw_sim.cycles);
}

TEST(GactXEngine, EmptyInputs)
{
    align::GactXParams params;
    params.tile_size = 256;
    const align::GactXTileAligner aligner(params);
    const std::vector<std::uint8_t> empty;
    Rng rng(202);
    const auto t = random_codes(100, rng);
    EXPECT_EQ(aligner.align_tile({empty.data(), 0}, sp(t)).max_score, 0);
    EXPECT_EQ(aligner.align_tile(sp(t), {empty.data(), 0}).max_score, 0);
}

TEST(GactXEngine, TracebackMemoryLimitStopsTile)
{
    Rng rng(203);
    align::GactXParams params;
    params.tile_size = 1024;
    params.traceback_bytes = 2048;  // tiny
    const align::GactXTileAligner aligner(params);
    const auto t = random_codes(1024, rng);
    const auto tile = aligner.align_tile(sp(t), sp(t));
    // Truncated but self-consistent.
    EXPECT_GT(tile.max_score, 0);
    EXPECT_LT(tile.query_max, 1024u);
    EXPECT_TRUE(tile.cigar.consistent_with(sp(t), sp(t)));
}

TEST(GactXEngine, TwoSidedSeparatorIsNeverCrossed)
{
    // The pipeline relies on chromosome separators being uncrossable
    // when they appear in BOTH genomes (a chr1->chr2 alignment would
    // have to bridge 256 Ns on each side: >= 2*(430 + 255*30) = 16,460,
    // beyond Y = 9,430). Build two "genomes" of two homologous
    // chromosomes each and extend from an anchor in chromosome 1.
    Rng rng(204);
    const auto chr1 = random_codes(400, rng);
    const auto chr2 = random_codes(400, rng);
    std::vector<std::uint8_t> flat = chr1;
    flat.insert(flat.end(), seq::Genome::separator_length(), seq::BaseN);
    flat.insert(flat.end(), chr2.begin(), chr2.end());

    align::GactXParams params;
    params.tile_size = 1920;
    const align::GactXTileAligner aligner(params);
    // Identical "genomes": the strongest possible temptation to cross.
    const auto tile = aligner.align_tile(sp(flat), sp(flat));
    // The path must stop inside chromosome 1.
    EXPECT_LE(tile.target_max, 400u + 64u);
    EXPECT_EQ(tile.max_score,
              tile.cigar.score({flat.data(), tile.target_max},
                               {flat.data(), tile.query_max},
                               params.scoring));
}

TEST(XdropEngine, EmptyInputs)
{
    align::XDropConfig config;
    const std::vector<std::uint8_t> empty;
    Rng rng(205);
    const auto t = random_codes(50, rng);
    EXPECT_EQ(align::xdrop_extend({empty.data(), 0}, sp(t), config)
                  .max_score,
              0);
    EXPECT_EQ(align::xdrop_extend(sp(t), {empty.data(), 0}, config)
                  .max_score,
              0);
}

TEST(Maf, SkipsSeparatorCrossingAlignment)
{
    seq::Genome target("t");
    target.add_chromosome(seq::Sequence("t_chr1", "ACGTACGTAC"));
    target.add_chromosome(seq::Sequence("t_chr2", "GGGGCCCC"));
    seq::Genome query("q");
    query.add_chromosome(seq::Sequence("q_chr1", "ACGTACGTAC"));

    align::Alignment bogus;
    bogus.target_start = 5;
    // Ends inside chromosome 2's flat region: crosses the separator.
    bogus.target_end = target.flat_offset(1) + 4;
    bogus.query_start = 0;
    bogus.query_end = bogus.target_end - bogus.target_start;
    bogus.cigar.push(align::EditOp::Match,
                     static_cast<std::uint32_t>(bogus.target_span()));

    std::ostringstream out;
    wga::write_maf(out, {bogus}, target, query);
    // Header only; the record was skipped with a warning.
    EXPECT_EQ(out.str(), "##maf version=1 scoring=darwin-wga\n");
}

TEST(Maf, EmitsValidCoordinates)
{
    seq::Genome target("t");
    target.add_chromosome(seq::Sequence("t_chr1", "ACGTACGTACGT"));
    seq::Genome query("q");
    query.add_chromosome(seq::Sequence("q_chr1", "TTACGTACGTTT"));

    align::Alignment a;
    a.target_start = 0;
    a.target_end = 8;
    a.query_start = 2;
    a.query_end = 10;
    a.score = 100;
    a.cigar.push(align::EditOp::Match, 8);
    std::ostringstream out;
    wga::write_maf(out, {a}, target, query);
    const std::string maf = out.str();
    EXPECT_NE(maf.find("s t_chr1 0 8 + 12 ACGTACGT"), std::string::npos);
    EXPECT_NE(maf.find("s q_chr1 2 8 + 12 ACGTACGT"), std::string::npos);
}

TEST(Fasta, GenomeFileRoundTrip)
{
    seq::Genome genome("g");
    genome.add_chromosome(seq::Sequence("chrA", "ACGTACGTNNACGT"));
    genome.add_chromosome(seq::Sequence("chrB", "TTTTGGGG"));
    const std::string path = "/tmp/darwin_test_genome.fa";
    seq::write_genome_file(path, genome);
    const auto loaded = seq::read_genome(path, "g2");
    ASSERT_EQ(loaded.num_chromosomes(), 2u);
    EXPECT_EQ(loaded.chromosome(0).name(), "chrA");
    EXPECT_EQ(loaded.chromosome(0).to_string(),
              genome.chromosome(0).to_string());
    EXPECT_EQ(loaded.chromosome(1).to_string(),
              genome.chromosome(1).to_string());
}

TEST(Fasta, MissingFileFails)
{
    EXPECT_THROW(seq::read_genome("/nonexistent/path.fa"), FatalError);
}

TEST(GactXParams, InvalidConfigsRejected)
{
    align::GactXParams bad;
    bad.num_pe = 0;
    EXPECT_DEATH(align::GactXTileAligner{bad}, "num_pe");
    align::GactXParams bad2;
    bad2.tile_size = 64;
    bad2.overlap = 128;
    EXPECT_DEATH(align::GactXTileAligner{bad2}, "overlap");
}

TEST(ChainIo, WritesWellFormedUcscChains)
{
    // Two collinear alignments with a small gap; one chain expected.
    seq::Genome target("t");
    target.add_chromosome(
        seq::Sequence("t_chr1", std::string(400, 'A') + "CGT"));
    seq::Genome query("q");
    query.add_chromosome(
        seq::Sequence("q_chr1", std::string(400, 'A') + "CGT"));

    wga::WgaResult result;
    auto make_block = [](std::uint64_t t0, std::uint64_t q0,
                         std::uint32_t len) {
        align::Alignment a;
        a.target_start = t0;
        a.target_end = t0 + len;
        a.query_start = q0;
        a.query_end = q0 + len;
        a.score = 5000;
        a.cigar.push(align::EditOp::Match, len);
        return a;
    };
    result.alignments.push_back(make_block(10, 12, 100));
    result.alignments.push_back(make_block(150, 160, 80));
    chain::Chain chain;
    chain.members = {0, 1};
    chain.score = 9000;
    chain.matched_bases = 180;
    result.chains.push_back(chain);

    std::ostringstream out;
    wga::write_chains(out, result, target, query);
    const std::string text = out.str();
    // Header: chain score tName tSize + tStart tEnd qName qSize + ...
    EXPECT_NE(text.find("chain 9000 t_chr1 403 + 10 230 q_chr1 403 + 12 "
                        "240 1"),
              std::string::npos);
    // Blocks: 100 with gaps (40, 48), then the final 80.
    EXPECT_NE(text.find("100 40 48"), std::string::npos);
    EXPECT_NE(text.find("\n80\n"), std::string::npos);
}

TEST(ChainIo, ClipsOverlappingSeams)
{
    seq::Genome target("t");
    target.add_chromosome(
        seq::Sequence("t_chr1", std::string(300, 'A')));
    seq::Genome query("q");
    query.add_chromosome(seq::Sequence("q_chr1", std::string(300, 'A')));

    wga::WgaResult result;
    align::Alignment a1;
    a1.target_start = 0;
    a1.target_end = 120;
    a1.query_start = 0;
    a1.query_end = 120;
    a1.score = 5000;
    a1.cigar.push(align::EditOp::Match, 120);
    align::Alignment a2;
    a2.target_start = 100;  // overlaps a1 by 20
    a2.target_end = 220;
    a2.query_start = 110;   // overlaps by 10
    a2.query_end = 230;
    a2.score = 5000;
    a2.cigar.push(align::EditOp::Match, 120);
    result.alignments = {a1, a2};
    chain::Chain chain;
    chain.members = {0, 1};
    chain.score = 9000;
    result.chains.push_back(chain);

    std::ostringstream out;
    wga::write_chains(out, result, target, query);
    const std::string text = out.str();
    ASSERT_FALSE(text.empty());
    // Parse block lines and verify monotone non-negative gaps.
    std::istringstream lines(text);
    std::string line;
    std::getline(lines, line);  // header
    EXPECT_EQ(line.rfind("chain ", 0), 0u);
    while (std::getline(lines, line) && !line.empty()) {
        long long size = -1, dt = 0, dq = 0;
        const int fields = std::sscanf(line.c_str(), "%lld %lld %lld",
                                       &size, &dt, &dq);
        EXPECT_GE(fields, 1);
        EXPECT_GT(size, 0);
        EXPECT_GE(dt, 0);
        EXPECT_GE(dq, 0);
    }
}

}  // namespace
}  // namespace darwin
