/**
 * @file
 * Tests for the serve subsystem (src/serve/): the line-delimited JSON
 * protocol (parse/serialize, malformed-input rejection) and the Server
 * end to end in process — the load-bearing property being that an align
 * served from a persisted index writes a MAF byte-identical to the
 * one-shot pipeline, and that per-request budgets trip with a tagged
 * reason instead of taking the daemon down.
 */
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "index/index_io.h"
#include "seed/seed_index.h"
#include "seq/fasta.h"
#include "serve/protocol.h"
#include "serve/server.h"
#include "synth/species.h"
#include "util/strings.h"
#include "wga/maf.h"
#include "wga/pipeline.h"

namespace darwin::serve {
namespace {

TEST(Protocol, ParsesPing)
{
    const Request request = parse_request("{\"op\": \"ping\", \"id\": \"7\"}");
    EXPECT_EQ(request.op, Op::Ping);
    EXPECT_EQ(request.id, "7");
}

TEST(Protocol, ParsesNumericIdAndDefaults)
{
    const Request request = parse_request(
        "{\"id\": 12, \"op\": \"align\", \"target\": \"t.fa\", "
        "\"query\": \"q.fa\", \"out\": \"o.maf\"}");
    EXPECT_EQ(request.op, Op::Align);
    EXPECT_EQ(request.id, "12");
    EXPECT_EQ(request.target, "t.fa");
    EXPECT_EQ(request.preset, "darwin");
    EXPECT_TRUE(request.both_strands);
    EXPECT_FALSE(request.no_transitions);
    EXPECT_FALSE(request.has_budget);
    EXPECT_TRUE(request.index.empty());
}

TEST(Protocol, ParsesFullAlign)
{
    const Request request = parse_request(
        "{\"op\": \"align\", \"id\": \"a\", \"target\": \"t.fa\", "
        "\"query\": \"q.fa\", \"out\": \"o.maf\", \"index\": \"t.dwi\", "
        "\"preset\": \"lastz\", \"both_strands\": false, "
        "\"no_transitions\": true, \"budget\": {\"wall_seconds\": 1.5, "
        "\"max_cells\": 100, \"max_heap_bytes\": 4096}}");
    EXPECT_EQ(request.index, "t.dwi");
    EXPECT_EQ(request.preset, "lastz");
    EXPECT_FALSE(request.both_strands);
    EXPECT_TRUE(request.no_transitions);
    ASSERT_TRUE(request.has_budget);
    EXPECT_DOUBLE_EQ(request.budget.wall_seconds, 1.5);
    EXPECT_EQ(request.budget.max_cells, 100u);
    EXPECT_EQ(request.budget.max_heap_bytes, 4096u);
}

TEST(Protocol, IgnoresUnknownKeys)
{
    const Request request = parse_request(
        "{\"op\": \"ping\", \"id\": \"1\", \"future_field\": null, "
        "\"another\": 3.5}");
    EXPECT_EQ(request.op, Op::Ping);
}

TEST(Protocol, RejectsMalformedLines)
{
    EXPECT_THROW(parse_request(""), ProtocolError);
    EXPECT_THROW(parse_request("not json"), ProtocolError);
    EXPECT_THROW(parse_request("{\"op\": \"ping\""), ProtocolError);
    EXPECT_THROW(parse_request("{\"id\": \"1\"}"), ProtocolError);
    EXPECT_THROW(parse_request("{\"op\": \"reticulate\"}"), ProtocolError);
    EXPECT_THROW(parse_request("{\"op\": \"ping\"} trailing"),
                 ProtocolError);
    // align without its required paths
    EXPECT_THROW(parse_request("{\"op\": \"align\", \"id\": \"1\"}"),
                 ProtocolError);
    // wrong value types
    EXPECT_THROW(parse_request("{\"op\": 3}"), ProtocolError);
    EXPECT_THROW(parse_request("{\"op\": \"align\", \"target\": true, "
                               "\"query\": \"q\", \"out\": \"o\"}"),
                 ProtocolError);
    // negative budget axis
    EXPECT_THROW(
        parse_request("{\"op\": \"align\", \"target\": \"t\", "
                      "\"query\": \"q\", \"out\": \"o\", "
                      "\"budget\": {\"max_cells\": -1}}"),
        ProtocolError);
}

TEST(Protocol, SerializesOkAndErrorResponses)
{
    Response ok;
    ok.id = "9";
    ok.add_string("op", "ping");
    ok.add_int("n", 3);
    EXPECT_EQ(serialize_response(ok),
              "{\"id\": \"9\", \"status\": \"ok\", \"op\": \"ping\", "
              "\"n\": 3}");

    const Response err = error_response("9", "cells", "over \"budget\"");
    const std::string line = serialize_response(err);
    EXPECT_NE(line.find("\"status\": \"error\""), std::string::npos);
    EXPECT_NE(line.find("\"reason\": \"cells\""), std::string::npos);
    // The message is JSON-quoted, embedded quotes escaped.
    EXPECT_NE(line.find("over \\\"budget\\\""), std::string::npos);
}

/**
 * One synthetic species pair written to FASTA files, its persisted
 * index, and the one-shot pipeline's MAF as the byte-level reference.
 * Built once; the Server tests all align the same pair.
 */
struct ServeFixture {
    std::string target_path;
    std::string query_path;
    std::string index_path;
    std::string reference_maf;

    ServeFixture()
    {
        synth::AncestorConfig shape;
        shape.num_chromosomes = 1;
        shape.chromosome_length = 8'000;
        shape.exons_per_chromosome = 4;
        const auto pair = synth::make_species_pair(
            synth::paper_species_pairs().front(), shape, 4242);

        const std::string dir = ::testing::TempDir();
        target_path = dir + "/serve_target.fa";
        query_path = dir + "/serve_query.fa";
        index_path = dir + "/serve_target.dwi";
        reference_maf = dir + "/serve_reference.maf";
        seq::write_genome_file(target_path, pair.target.genome);
        seq::write_genome_file(query_path, pair.query.genome);

        const wga::WgaParams params = wga::WgaParams::darwin_defaults();
        const seq::Sequence& flat = pair.target.genome.flattened();
        const seed::SeedIndex index(flat,
                                    seed::SeedPattern(params.seed_pattern));
        index::save_index(index_path, index, index::sequence_digest(flat),
                          flat.size());

        const wga::WgaPipeline pipeline(params);
        const auto result =
            pipeline.run(pair.target.genome, pair.query.genome);
        wga::write_maf_file(reference_maf, result.alignments,
                            pair.target.genome, pair.query.genome);
    }
};

const ServeFixture&
fixture()
{
    static const ServeFixture instance;
    return instance;
}

std::string
slurp(const std::string& path)
{
    std::ifstream in(path, std::ios::binary);
    return {std::istreambuf_iterator<char>(in),
            std::istreambuf_iterator<char>()};
}

std::string
align_line(const std::string& id, const std::string& out,
           const std::string& extra = "")
{
    const auto& f = fixture();
    return strprintf("{\"op\": \"align\", \"id\": %s, \"target\": %s, "
                     "\"query\": %s, \"out\": %s%s}",
                     json_quote(id).c_str(),
                     json_quote(f.target_path).c_str(),
                     json_quote(f.query_path).c_str(),
                     json_quote(out).c_str(), extra.c_str());
}

TEST(Server, PingAndStatus)
{
    Server server(ServerOptions{});
    const std::string pong =
        server.handle_line("{\"op\": \"ping\", \"id\": \"p\"}");
    EXPECT_EQ(pong,
              "{\"id\": \"p\", \"status\": \"ok\", \"op\": \"ping\"}");

    const std::string status =
        server.handle_line("{\"op\": \"status\", \"id\": \"s\"}");
    EXPECT_NE(status.find("\"status\": \"ok\""), std::string::npos);
    EXPECT_NE(status.find("\"requests\": 2"), std::string::npos);
    EXPECT_NE(status.find("\"workers\": 2"), std::string::npos);
}

TEST(Server, MalformedLineAnswersBadRequest)
{
    Server server(ServerOptions{});
    const std::string resp = server.handle_line("{\"op\": 42}");
    EXPECT_NE(resp.find("\"status\": \"error\""), std::string::npos);
    EXPECT_NE(resp.find("\"reason\": \"bad_request\""),
              std::string::npos);
}

TEST(Server, AlignFromPersistedIndexIsByteIdenticalToOneShot)
{
    const auto& f = fixture();
    const std::string out = ::testing::TempDir() + "/serve_indexed.maf";
    Server server(ServerOptions{});
    const std::string resp = server.handle_line(align_line(
        "i1", out,
        strprintf(", \"index\": %s", json_quote(f.index_path).c_str())));
    ASSERT_NE(resp.find("\"status\": \"ok\""), std::string::npos) << resp;
    EXPECT_NE(resp.find("\"index_cache_hit\": false"), std::string::npos);
    EXPECT_EQ(slurp(out), slurp(f.reference_maf));

    // Second align of the same target hits the resident index and still
    // produces the same bytes.
    const std::string out2 = ::testing::TempDir() + "/serve_cached.maf";
    const std::string resp2 = server.handle_line(align_line("i2", out2));
    ASSERT_NE(resp2.find("\"status\": \"ok\""), std::string::npos)
        << resp2;
    EXPECT_NE(resp2.find("\"index_cache_hit\": true"), std::string::npos);
    EXPECT_EQ(slurp(out2), slurp(f.reference_maf));
}

TEST(Server, AlignRebuildingIndexIsByteIdenticalToOneShot)
{
    const auto& f = fixture();
    const std::string out = ::testing::TempDir() + "/serve_rebuilt.maf";
    Server server(ServerOptions{});
    const std::string resp = server.handle_line(align_line("r1", out));
    ASSERT_NE(resp.find("\"status\": \"ok\""), std::string::npos) << resp;
    EXPECT_EQ(slurp(out), slurp(f.reference_maf));
}

TEST(Server, MismatchedIndexIsRejectedNotServed)
{
    // An index built from the query sequence must be refused for the
    // target (digest mismatch), not silently produce garbage.
    const auto& f = fixture();
    const std::string wrong_index =
        ::testing::TempDir() + "/serve_wrong.dwi";
    const auto query = seq::read_genome(f.query_path);
    const seq::Sequence& flat = query.flattened();
    const wga::WgaParams params = wga::WgaParams::darwin_defaults();
    const seed::SeedIndex index(flat,
                                seed::SeedPattern(params.seed_pattern));
    index::save_index(wrong_index, index, index::sequence_digest(flat),
                      flat.size());

    Server server(ServerOptions{});
    const std::string out = ::testing::TempDir() + "/serve_never.maf";
    const std::string resp = server.handle_line(align_line(
        "w1", out,
        strprintf(", \"index\": %s", json_quote(wrong_index).c_str())));
    EXPECT_NE(resp.find("\"status\": \"error\""), std::string::npos);
    EXPECT_NE(resp.find("different sequence"), std::string::npos) << resp;
}

TEST(Server, CellBudgetTripsWithTaggedReason)
{
    Server server(ServerOptions{});
    const std::string out = ::testing::TempDir() + "/serve_budget.maf";
    const std::string resp = server.handle_line(align_line(
        "b1", out, ", \"budget\": {\"max_cells\": 1}"));
    EXPECT_NE(resp.find("\"status\": \"error\""), std::string::npos);
    EXPECT_NE(resp.find("\"reason\": \"cells\""), std::string::npos)
        << resp;
    // The tripped request must not poison the server: the next align
    // with no budget succeeds.
    const std::string resp2 = server.handle_line(align_line("b2", out));
    EXPECT_NE(resp2.find("\"status\": \"ok\""), std::string::npos)
        << resp2;
}

TEST(Server, DefaultBudgetAppliesWhenRequestHasNone)
{
    ServerOptions options;
    options.default_budget.max_cells = 1;
    Server server(options);
    const std::string out = ::testing::TempDir() + "/serve_default.maf";
    const std::string resp = server.handle_line(align_line("d1", out));
    EXPECT_NE(resp.find("\"reason\": \"cells\""), std::string::npos)
        << resp;
}

TEST(Server, StreamServesInOrderAndShutsDownOnOp)
{
    std::istringstream in("{\"op\": \"ping\", \"id\": \"1\"}\n"
                          "\n"
                          "{\"op\": \"shutdown\", \"id\": \"2\"}\n");
    std::ostringstream out;
    Server server(ServerOptions{});
    server.serve_stream(in, out);
    // The shutdown op was handled (asynchronously) before serve_stream
    // drained, so the server is stopping by the time it returns.
    EXPECT_TRUE(server.stopping());
    server.stop();

    const std::string output = out.str();
    EXPECT_NE(output.find("\"id\": \"1\""), std::string::npos);
    EXPECT_NE(output.find("\"op\": \"shutdown\""), std::string::npos);
}

TEST(Server, SubmitRefusedAfterStop)
{
    Server server(ServerOptions{});
    server.stop();
    EXPECT_FALSE(server.submit("{\"op\": \"ping\", \"id\": \"x\"}",
                               [](const std::string&) {}));
}

}  // namespace
}  // namespace darwin::serve
