/**
 * @file
 * Tests for the serve subsystem (src/serve/): the line-delimited JSON
 * protocol (parse/serialize, malformed-input rejection) and the Server
 * end to end in process — the load-bearing property being that an align
 * served from a persisted index writes a MAF byte-identical to the
 * one-shot pipeline, and that per-request budgets trip with a tagged
 * reason instead of taking the daemon down.
 */
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdint>
#include <fstream>
#include <sstream>

#include "index/index_io.h"
#include "obs/exposition.h"
#include "obs/flight_recorder.h"
#include "seed/seed_index.h"
#include "seq/fasta.h"
#include "serve/http.h"
#include "serve/protocol.h"
#include "serve/server.h"
#include "synth/species.h"
#include "util/strings.h"
#include "wga/maf.h"
#include "wga/pipeline.h"

namespace darwin::serve {
namespace {

TEST(Protocol, ParsesPing)
{
    const Request request = parse_request("{\"op\": \"ping\", \"id\": \"7\"}");
    EXPECT_EQ(request.op, Op::Ping);
    EXPECT_EQ(request.id, "7");
}

TEST(Protocol, ParsesNumericIdAndDefaults)
{
    const Request request = parse_request(
        "{\"id\": 12, \"op\": \"align\", \"target\": \"t.fa\", "
        "\"query\": \"q.fa\", \"out\": \"o.maf\"}");
    EXPECT_EQ(request.op, Op::Align);
    EXPECT_EQ(request.id, "12");
    EXPECT_EQ(request.target, "t.fa");
    EXPECT_EQ(request.preset, "darwin");
    EXPECT_TRUE(request.both_strands);
    EXPECT_FALSE(request.no_transitions);
    EXPECT_FALSE(request.has_budget);
    EXPECT_TRUE(request.index.empty());
}

TEST(Protocol, ParsesFullAlign)
{
    const Request request = parse_request(
        "{\"op\": \"align\", \"id\": \"a\", \"target\": \"t.fa\", "
        "\"query\": \"q.fa\", \"out\": \"o.maf\", \"index\": \"t.dwi\", "
        "\"preset\": \"lastz\", \"both_strands\": false, "
        "\"no_transitions\": true, \"budget\": {\"wall_seconds\": 1.5, "
        "\"max_cells\": 100, \"max_heap_bytes\": 4096}}");
    EXPECT_EQ(request.index, "t.dwi");
    EXPECT_EQ(request.preset, "lastz");
    EXPECT_FALSE(request.both_strands);
    EXPECT_TRUE(request.no_transitions);
    ASSERT_TRUE(request.has_budget);
    EXPECT_DOUBLE_EQ(request.budget.wall_seconds, 1.5);
    EXPECT_EQ(request.budget.max_cells, 100u);
    EXPECT_EQ(request.budget.max_heap_bytes, 4096u);
}

TEST(Protocol, IgnoresUnknownKeys)
{
    const Request request = parse_request(
        "{\"op\": \"ping\", \"id\": \"1\", \"future_field\": null, "
        "\"another\": 3.5}");
    EXPECT_EQ(request.op, Op::Ping);
}

TEST(Protocol, RejectsMalformedLines)
{
    EXPECT_THROW(parse_request(""), ProtocolError);
    EXPECT_THROW(parse_request("not json"), ProtocolError);
    EXPECT_THROW(parse_request("{\"op\": \"ping\""), ProtocolError);
    EXPECT_THROW(parse_request("{\"id\": \"1\"}"), ProtocolError);
    EXPECT_THROW(parse_request("{\"op\": \"reticulate\"}"), ProtocolError);
    EXPECT_THROW(parse_request("{\"op\": \"ping\"} trailing"),
                 ProtocolError);
    // align without its required paths
    EXPECT_THROW(parse_request("{\"op\": \"align\", \"id\": \"1\"}"),
                 ProtocolError);
    // wrong value types
    EXPECT_THROW(parse_request("{\"op\": 3}"), ProtocolError);
    EXPECT_THROW(parse_request("{\"op\": \"align\", \"target\": true, "
                               "\"query\": \"q\", \"out\": \"o\"}"),
                 ProtocolError);
    // negative budget axis
    EXPECT_THROW(
        parse_request("{\"op\": \"align\", \"target\": \"t\", "
                      "\"query\": \"q\", \"out\": \"o\", "
                      "\"budget\": {\"max_cells\": -1}}"),
        ProtocolError);
}

TEST(Protocol, SerializesOkAndErrorResponses)
{
    Response ok;
    ok.id = "9";
    ok.add_string("op", "ping");
    ok.add_int("n", 3);
    EXPECT_EQ(serialize_response(ok),
              "{\"id\": \"9\", \"status\": \"ok\", \"op\": \"ping\", "
              "\"n\": 3}");

    const Response err = error_response("9", "cells", "over \"budget\"");
    const std::string line = serialize_response(err);
    EXPECT_NE(line.find("\"status\": \"error\""), std::string::npos);
    EXPECT_NE(line.find("\"reason\": \"cells\""), std::string::npos);
    // The message is JSON-quoted, embedded quotes escaped.
    EXPECT_NE(line.find("over \\\"budget\\\""), std::string::npos);
}

/**
 * One synthetic species pair written to FASTA files, its persisted
 * index, and the one-shot pipeline's MAF as the byte-level reference.
 * Built once; the Server tests all align the same pair.
 */
struct ServeFixture {
    std::string target_path;
    std::string query_path;
    std::string index_path;
    std::string reference_maf;

    ServeFixture()
    {
        synth::AncestorConfig shape;
        shape.num_chromosomes = 1;
        shape.chromosome_length = 8'000;
        shape.exons_per_chromosome = 4;
        const auto pair = synth::make_species_pair(
            synth::paper_species_pairs().front(), shape, 4242);

        // ctest runs each test as its own process, possibly in
        // parallel; key the paths by pid so concurrent Server tests
        // never race on one another's index/FASTA files.
        const std::string dir = ::testing::TempDir();
        const std::string tag = "serve_" + std::to_string(::getpid());
        target_path = dir + "/" + tag + "_target.fa";
        query_path = dir + "/" + tag + "_query.fa";
        index_path = dir + "/" + tag + "_target.dwi";
        reference_maf = dir + "/" + tag + "_reference.maf";
        seq::write_genome_file(target_path, pair.target.genome);
        seq::write_genome_file(query_path, pair.query.genome);

        const wga::WgaParams params = wga::WgaParams::darwin_defaults();
        const seq::Sequence& flat = pair.target.genome.flattened();
        const seed::SeedIndex index(flat,
                                    seed::SeedPattern(params.seed_pattern));
        index::save_index(index_path, index, index::sequence_digest(flat),
                          flat.size());

        const wga::WgaPipeline pipeline(params);
        const auto result =
            pipeline.run(pair.target.genome, pair.query.genome);
        wga::write_maf_file(reference_maf, result.alignments,
                            pair.target.genome, pair.query.genome);
    }
};

const ServeFixture&
fixture()
{
    static const ServeFixture instance;
    return instance;
}

std::string
slurp(const std::string& path)
{
    std::ifstream in(path, std::ios::binary);
    return {std::istreambuf_iterator<char>(in),
            std::istreambuf_iterator<char>()};
}

std::string
align_line(const std::string& id, const std::string& out,
           const std::string& extra = "")
{
    const auto& f = fixture();
    return strprintf("{\"op\": \"align\", \"id\": %s, \"target\": %s, "
                     "\"query\": %s, \"out\": %s%s}",
                     json_quote(id).c_str(),
                     json_quote(f.target_path).c_str(),
                     json_quote(f.query_path).c_str(),
                     json_quote(out).c_str(), extra.c_str());
}

TEST(Server, PingAndStatus)
{
    Server server(ServerOptions{});
    const std::string pong =
        server.handle_line("{\"op\": \"ping\", \"id\": \"p\"}");
    EXPECT_EQ(pong,
              "{\"id\": \"p\", \"status\": \"ok\", \"op\": \"ping\"}");

    const std::string status =
        server.handle_line("{\"op\": \"status\", \"id\": \"s\"}");
    EXPECT_NE(status.find("\"status\": \"ok\""), std::string::npos);
    EXPECT_NE(status.find("\"requests\": 2"), std::string::npos);
    EXPECT_NE(status.find("\"workers\": 2"), std::string::npos);
}

TEST(Server, MalformedLineAnswersBadRequest)
{
    Server server(ServerOptions{});
    const std::string resp = server.handle_line("{\"op\": 42}");
    EXPECT_NE(resp.find("\"status\": \"error\""), std::string::npos);
    EXPECT_NE(resp.find("\"reason\": \"bad_request\""),
              std::string::npos);
}

TEST(Server, AlignFromPersistedIndexIsByteIdenticalToOneShot)
{
    const auto& f = fixture();
    const std::string out = ::testing::TempDir() + "/serve_indexed.maf";
    Server server(ServerOptions{});
    const std::string resp = server.handle_line(align_line(
        "i1", out,
        strprintf(", \"index\": %s", json_quote(f.index_path).c_str())));
    ASSERT_NE(resp.find("\"status\": \"ok\""), std::string::npos) << resp;
    EXPECT_NE(resp.find("\"index_cache_hit\": false"), std::string::npos);
    EXPECT_EQ(slurp(out), slurp(f.reference_maf));

    // Second align of the same target hits the resident index and still
    // produces the same bytes.
    const std::string out2 = ::testing::TempDir() + "/serve_cached.maf";
    const std::string resp2 = server.handle_line(align_line("i2", out2));
    ASSERT_NE(resp2.find("\"status\": \"ok\""), std::string::npos)
        << resp2;
    EXPECT_NE(resp2.find("\"index_cache_hit\": true"), std::string::npos);
    EXPECT_EQ(slurp(out2), slurp(f.reference_maf));
}

TEST(Server, AlignRebuildingIndexIsByteIdenticalToOneShot)
{
    const auto& f = fixture();
    const std::string out = ::testing::TempDir() + "/serve_rebuilt.maf";
    Server server(ServerOptions{});
    const std::string resp = server.handle_line(align_line("r1", out));
    ASSERT_NE(resp.find("\"status\": \"ok\""), std::string::npos) << resp;
    EXPECT_EQ(slurp(out), slurp(f.reference_maf));
}

TEST(Server, MismatchedIndexIsRejectedNotServed)
{
    // An index built from the query sequence must be refused for the
    // target (digest mismatch), not silently produce garbage.
    const auto& f = fixture();
    const std::string wrong_index =
        ::testing::TempDir() + "/serve_wrong.dwi";
    const auto query = seq::read_genome(f.query_path);
    const seq::Sequence& flat = query.flattened();
    const wga::WgaParams params = wga::WgaParams::darwin_defaults();
    const seed::SeedIndex index(flat,
                                seed::SeedPattern(params.seed_pattern));
    index::save_index(wrong_index, index, index::sequence_digest(flat),
                      flat.size());

    Server server(ServerOptions{});
    const std::string out = ::testing::TempDir() + "/serve_never.maf";
    const std::string resp = server.handle_line(align_line(
        "w1", out,
        strprintf(", \"index\": %s", json_quote(wrong_index).c_str())));
    EXPECT_NE(resp.find("\"status\": \"error\""), std::string::npos);
    EXPECT_NE(resp.find("different sequence"), std::string::npos) << resp;
}

TEST(Server, CellBudgetTripsWithTaggedReason)
{
    Server server(ServerOptions{});
    const std::string out = ::testing::TempDir() + "/serve_budget.maf";
    const std::string resp = server.handle_line(align_line(
        "b1", out, ", \"budget\": {\"max_cells\": 1}"));
    EXPECT_NE(resp.find("\"status\": \"error\""), std::string::npos);
    EXPECT_NE(resp.find("\"reason\": \"cells\""), std::string::npos)
        << resp;
    // The tripped request must not poison the server: the next align
    // with no budget succeeds.
    const std::string resp2 = server.handle_line(align_line("b2", out));
    EXPECT_NE(resp2.find("\"status\": \"ok\""), std::string::npos)
        << resp2;
}

TEST(Server, DefaultBudgetAppliesWhenRequestHasNone)
{
    ServerOptions options;
    options.default_budget.max_cells = 1;
    Server server(options);
    const std::string out = ::testing::TempDir() + "/serve_default.maf";
    const std::string resp = server.handle_line(align_line("d1", out));
    EXPECT_NE(resp.find("\"reason\": \"cells\""), std::string::npos)
        << resp;
}

TEST(Server, StreamServesInOrderAndShutsDownOnOp)
{
    std::istringstream in("{\"op\": \"ping\", \"id\": \"1\"}\n"
                          "\n"
                          "{\"op\": \"shutdown\", \"id\": \"2\"}\n");
    std::ostringstream out;
    Server server(ServerOptions{});
    server.serve_stream(in, out);
    // The shutdown op was handled (asynchronously) before serve_stream
    // drained, so the server is stopping by the time it returns.
    EXPECT_TRUE(server.stopping());
    server.stop();

    const std::string output = out.str();
    EXPECT_NE(output.find("\"id\": \"1\""), std::string::npos);
    EXPECT_NE(output.find("\"op\": \"shutdown\""), std::string::npos);
}

TEST(Server, SubmitRefusedAfterStop)
{
    Server server(ServerOptions{});
    server.stop();
    EXPECT_FALSE(server.submit("{\"op\": \"ping\", \"id\": \"x\"}",
                               [](const std::string&) {}));
}

TEST(Protocol, ParsesStatsAndDumpTrace)
{
    EXPECT_EQ(parse_request("{\"op\": \"stats\", \"id\": \"s\"}").op,
              Op::Stats);
    const Request dump = parse_request(
        "{\"op\": \"dump_trace\", \"id\": \"t\", \"out\": \"f.json\"}");
    EXPECT_EQ(dump.op, Op::DumpTrace);
    EXPECT_EQ(dump.out, "f.json");
    // dump_trace without a destination is malformed.
    EXPECT_THROW(parse_request("{\"op\": \"dump_trace\", \"id\": \"t\"}"),
                 ProtocolError);
}

TEST(Server, StatsReturnsTheMetricsSnapshotAsJson)
{
    Server server(ServerOptions{});
    server.handle_line("{\"op\": \"ping\", \"id\": \"1\"}");
    const std::string resp =
        server.handle_line("{\"op\": \"stats\", \"id\": \"s\"}");
    EXPECT_NE(resp.find("\"status\": \"ok\""), std::string::npos) << resp;
    // The registry rides embedded as structured JSON, not a quoted blob:
    // the counters the ping bumped are visible inside it.
    EXPECT_NE(resp.find("\"metrics\": {"), std::string::npos) << resp;
    EXPECT_NE(resp.find("\"serve.requests\": 2"), std::string::npos)
        << resp;
    EXPECT_NE(resp.find("\"serve.request.seconds\""), std::string::npos)
        << resp;
    EXPECT_NE(resp.find("\"buckets\""), std::string::npos) << resp;
    // One line, as the wire format requires.
    EXPECT_EQ(resp.find('\n'), std::string::npos);

    // The same registry renders as Prometheus text for GET /metrics.
    const std::string prom = obs::to_prometheus(server.metrics());
    EXPECT_NE(prom.find("serve_requests_total"), std::string::npos);
    EXPECT_NE(prom.find("serve_request_seconds_bucket{le=\"+Inf\"}"),
              std::string::npos);
}

TEST(Server, DumpTraceWithoutASessionAnswersBadRequest)
{
    Server server(ServerOptions{});
    const std::string resp = server.handle_line(
        "{\"op\": \"dump_trace\", \"id\": \"t\", \"out\": \"/tmp/x\"}");
    EXPECT_NE(resp.find("\"status\": \"error\""), std::string::npos);
    EXPECT_NE(resp.find("\"reason\": \"bad_request\""), std::string::npos)
        << resp;
}

TEST(Server, DumpTraceWritesAParseableChromeTraceWithRequestTags)
{
    fixture();  // make sure the shared inputs exist before recording
    obs::FlightRecorder flight(1024);
    obs::TraceSession::install(&flight);

    Server server(ServerOptions{});
    server.set_trace_session(&flight);
    const std::string out = ::testing::TempDir() + "/serve_tagged.maf";
    const std::string align_resp =
        server.handle_line(align_line("a1", out));
    ASSERT_NE(align_resp.find("\"status\": \"ok\""), std::string::npos)
        << align_resp;

    const std::string trace_path =
        ::testing::TempDir() + "/serve_flight.trace.json";
    const std::string resp = server.handle_line(strprintf(
        "{\"op\": \"dump_trace\", \"id\": \"t\", \"out\": %s}",
        json_quote(trace_path).c_str()));
    obs::TraceSession::install(nullptr);
    ASSERT_NE(resp.find("\"status\": \"ok\""), std::string::npos) << resp;
    EXPECT_NE(resp.find("\"events\": "), std::string::npos);
    EXPECT_NE(resp.find("\"dropped\": 0"), std::string::npos) << resp;

    const auto events = obs::parse_trace_events(slurp(trace_path));
    ASSERT_FALSE(events.empty());
    // The align's pipeline spans are all tagged with its request id,
    // and the umbrella "pipeline" span groups them.
    bool saw_pipeline = false;
    std::size_t tagged = 0;
    for (const auto& event : events) {
        if (event.name == "pipeline" && event.category == "wga")
            saw_pipeline = true;
        for (const auto& arg : event.args)
            if (arg.key == "req")
                ++tagged;
    }
    EXPECT_TRUE(saw_pipeline);
    EXPECT_GT(tagged, 0u);
}

TEST(Server, MafIsByteIdenticalWithAllTelemetryEnabled)
{
    // Flight recorder armed, slow-request logging forced on for every
    // request, stats scrapes interleaved: none of it may change the
    // served bytes.
    const auto& f = fixture();
    obs::FlightRecorder flight(4096);
    obs::TraceSession::install(&flight);

    ServerOptions options;
    options.slow_request_seconds = 1e-9;  // everything is "slow"
    Server server(options);
    server.set_trace_session(&flight);

    const std::string out = ::testing::TempDir() + "/serve_telemetry.maf";
    server.handle_line("{\"op\": \"stats\", \"id\": \"s0\"}");
    const std::string resp = server.handle_line(align_line(
        "t1", out,
        strprintf(", \"index\": %s", json_quote(f.index_path).c_str())));
    server.handle_line("{\"op\": \"stats\", \"id\": \"s1\"}");
    obs::TraceSession::install(nullptr);

    ASSERT_NE(resp.find("\"status\": \"ok\""), std::string::npos) << resp;
    EXPECT_EQ(slurp(out), slurp(f.reference_maf));
    EXPECT_GT(flight.recorded(), 0u);
    const obs::Counter* slow =
        server.metrics().find_counter("serve.slow_requests");
    ASSERT_NE(slow, nullptr);
    EXPECT_EQ(slow->value(), 1u);
}

/** Minimal blocking HTTP GET against 127.0.0.1:port. */
std::string
http_get(int port, const std::string& path)
{
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        return {};
    sockaddr_in addr = {};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
        0) {
        ::close(fd);
        return {};
    }
    const std::string request =
        "GET " + path + " HTTP/1.1\r\nHost: localhost\r\n\r\n";
    (void)!::write(fd, request.data(), request.size());
    std::string response;
    char chunk[4096];
    ssize_t n;
    while ((n = ::read(fd, chunk, sizeof(chunk))) > 0)
        response.append(chunk, static_cast<std::size_t>(n));
    ::close(fd);
    return response;
}

TEST(Http, ServesMetricsHealthzStatuszAndRejectsTheRest)
{
    obs::MetricsRegistry metrics;
    metrics.counter("serve.requests").add(5);
    bool healthy = true;
    HttpHandlers handlers;
    handlers.metrics_text = [&metrics] {
        return obs::to_prometheus(metrics);
    };
    handlers.healthy = [&healthy] { return healthy; };
    handlers.statusz_json = [] {
        return std::string("{\"version\": \"test\"}");
    };
    HttpMetricsServer http(0, std::move(handlers));
    ASSERT_GT(http.port(), 0);

    const std::string metrics_resp = http_get(http.port(), "/metrics");
    EXPECT_NE(metrics_resp.find("200 OK"), std::string::npos);
    EXPECT_NE(metrics_resp.find("text/plain; version=0.0.4"),
              std::string::npos);
    EXPECT_NE(metrics_resp.find("serve_requests_total 5"),
              std::string::npos);

    EXPECT_NE(http_get(http.port(), "/healthz").find("200 OK"),
              std::string::npos);
    healthy = false;
    EXPECT_NE(http_get(http.port(), "/healthz").find("503"),
              std::string::npos);

    const std::string statusz = http_get(http.port(), "/statusz");
    EXPECT_NE(statusz.find("application/json"), std::string::npos);
    EXPECT_NE(statusz.find("\"version\": \"test\""), std::string::npos);

    EXPECT_NE(http_get(http.port(), "/nope").find("404"),
              std::string::npos);
    http.stop();
}

}  // namespace
}  // namespace darwin::serve
