/**
 * @file
 * Unit tests for the util module: RNG, stats, strings, args, thread
 * pool, work queue.
 */
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <optional>
#include <set>
#include <stdexcept>
#include <thread>

#include "util/args.h"
#include "util/logging.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/strings.h"
#include "util/thread_pool.h"
#include "util/work_queue.h"

namespace darwin {
namespace {

TEST(Rng, DeterministicAcrossInstances)
{
    Rng a(42);
    Rng b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1);
    Rng b(2);
    int equal = 0;
    for (int i = 0; i < 64; ++i) {
        if (a.next() == b.next())
            ++equal;
    }
    EXPECT_LT(equal, 4);
}

TEST(Rng, UniformRespectsBound)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(rng.uniform(17), 17u);
}

TEST(Rng, UniformRangeInclusive)
{
    Rng rng(7);
    std::set<std::int64_t> seen;
    for (int i = 0; i < 1000; ++i) {
        const auto v = rng.uniform_range(-3, 3);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 3);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, UniformDoubleInUnitInterval)
{
    Rng rng(11);
    for (int i = 0; i < 1000; ++i) {
        const double v = rng.uniform_double();
        EXPECT_GE(v, 0.0);
        EXPECT_LT(v, 1.0);
    }
}

TEST(Rng, ChanceExtremes)
{
    Rng rng(5);
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
}

TEST(Rng, GeometricMeanRoughlyMatches)
{
    Rng rng(13);
    const double p = 0.25;
    double total = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        total += static_cast<double>(rng.geometric(p));
    const double mean = total / n;
    // E[failures before success] = (1-p)/p = 3.
    EXPECT_NEAR(mean, 3.0, 0.15);
}

TEST(Rng, WeightedPickHonorsZeroWeights)
{
    Rng rng(3);
    std::vector<double> weights = {0.0, 1.0, 0.0};
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(rng.weighted_pick(weights), 1u);
}

TEST(Rng, ZipfStaysInRange)
{
    Rng rng(9);
    for (int i = 0; i < 2000; ++i) {
        const auto v = rng.zipf(1.6, 400);
        EXPECT_GE(v, 1u);
        EXPECT_LE(v, 400u);
    }
}

TEST(Rng, ZipfIsHeavyTailedButMostlySmall)
{
    Rng rng(10);
    int small = 0;
    for (int i = 0; i < 2000; ++i) {
        if (rng.zipf(1.6, 400) <= 4)
            ++small;
    }
    EXPECT_GT(small, 1000);
}

TEST(Rng, ForkProducesIndependentStream)
{
    Rng a(21);
    Rng child = a.fork();
    EXPECT_NE(a.next(), child.next());
}

TEST(RunningStats, Basics)
{
    RunningStats stats;
    for (const double v : {1.0, 2.0, 3.0, 4.0})
        stats.add(v);
    EXPECT_EQ(stats.count(), 4u);
    EXPECT_DOUBLE_EQ(stats.mean(), 2.5);
    EXPECT_DOUBLE_EQ(stats.min(), 1.0);
    EXPECT_DOUBLE_EQ(stats.max(), 4.0);
    EXPECT_NEAR(stats.stddev(), std::sqrt(5.0 / 3.0), 1e-12);
}

TEST(RunningStats, EmptyIsZero)
{
    RunningStats stats;
    EXPECT_EQ(stats.count(), 0u);
    EXPECT_DOUBLE_EQ(stats.mean(), 0.0);
    EXPECT_DOUBLE_EQ(stats.variance(), 0.0);
}

TEST(LogHistogram, BinningIsBase2)
{
    LogHistogram hist(10);
    hist.add(1);
    hist.add(2);
    hist.add(3);
    hist.add(1024);
    EXPECT_EQ(hist.bin_count(0), 1u);  // [1,2)
    EXPECT_EQ(hist.bin_count(1), 2u);  // [2,4)
    EXPECT_EQ(hist.bin_count(9), 1u);  // clamped top bin
    EXPECT_EQ(hist.total(), 4u);
}

TEST(LogHistogram, FractionBelow)
{
    LogHistogram hist;
    for (std::uint64_t v : {10, 20, 40, 80})
        hist.add(v);
    EXPECT_DOUBLE_EQ(hist.fraction_below(30), 0.5);
    EXPECT_DOUBLE_EQ(hist.fraction_below(1), 0.0);
    EXPECT_DOUBLE_EQ(hist.fraction_below(1000), 1.0);
}

TEST(Percentile, InterpolatesLinearly)
{
    std::vector<double> values = {1, 2, 3, 4, 5};
    EXPECT_DOUBLE_EQ(percentile(values, 0), 1.0);
    EXPECT_DOUBLE_EQ(percentile(values, 50), 3.0);
    EXPECT_DOUBLE_EQ(percentile(values, 100), 5.0);
    EXPECT_DOUBLE_EQ(percentile(values, 25), 2.0);
}

TEST(Strings, SplitAndJoin)
{
    const auto fields = split("a,b,,c", ',');
    ASSERT_EQ(fields.size(), 4u);
    EXPECT_EQ(fields[2], "");
    EXPECT_EQ(join(fields, "-"), "a-b--c");
}

TEST(Strings, Trim)
{
    EXPECT_EQ(trim("  x y \t\n"), "x y");
    EXPECT_EQ(trim(""), "");
    EXPECT_EQ(trim("   "), "");
}

TEST(Strings, WithCommas)
{
    EXPECT_EQ(with_commas(0), "0");
    EXPECT_EQ(with_commas(999), "999");
    EXPECT_EQ(with_commas(1000), "1,000");
    EXPECT_EQ(with_commas(1234567), "1,234,567");
}

TEST(Strings, SiMagnitude)
{
    EXPECT_EQ(si_magnitude(950), "950");
    EXPECT_EQ(si_magnitude(1500), "1.50K");
    EXPECT_EQ(si_magnitude(6250000), "6.25M");
}

TEST(Strings, Strprintf)
{
    EXPECT_EQ(strprintf("%d-%s", 7, "x"), "7-x");
}

TEST(Args, ParsesOptionsAndFlags)
{
    ArgParser parser("test");
    parser.add_option("size", "10", "genome size");
    parser.add_flag("verbose", "chatty");
    const char* argv[] = {"prog", "--size=42", "--verbose", "pos"};
    ASSERT_TRUE(parser.parse(4, argv));
    EXPECT_EQ(parser.get_int("size"), 42);
    EXPECT_TRUE(parser.get_flag("verbose"));
    ASSERT_EQ(parser.positional().size(), 1u);
    EXPECT_EQ(parser.positional()[0], "pos");
}

TEST(Args, DefaultsApply)
{
    ArgParser parser("test");
    parser.add_option("rate", "0.5", "a rate");
    const char* argv[] = {"prog"};
    ASSERT_TRUE(parser.parse(1, argv));
    EXPECT_DOUBLE_EQ(parser.get_double("rate"), 0.5);
}

TEST(Args, RejectsUnknownOption)
{
    ArgParser parser("test");
    const char* argv[] = {"prog", "--nope"};
    EXPECT_FALSE(parser.parse(2, argv));
}

TEST(Args, SpaceSeparatedValue)
{
    ArgParser parser("test");
    parser.add_option("pair", "x", "pair name");
    const char* argv[] = {"prog", "--pair", "ce11-cb4"};
    ASSERT_TRUE(parser.parse(3, argv));
    EXPECT_EQ(parser.get("pair"), "ce11-cb4");
}

TEST(ThreadPool, RunsAllTasks)
{
    ThreadPool pool(4);
    std::atomic<int> count{0};
    for (int i = 0; i < 100; ++i)
        pool.submit([&] { count.fetch_add(1); });
    pool.wait_idle();
    EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, ParallelForCoversRange)
{
    ThreadPool pool(4);
    std::vector<std::atomic<int>> hits(1000);
    pool.parallel_for(0, hits.size(),
                      [&](std::size_t i) { hits[i].fetch_add(1); });
    for (const auto& h : hits)
        EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, EmptyRangeIsNoop)
{
    ThreadPool pool(2);
    pool.parallel_for(5, 5, [](std::size_t) { FAIL(); });
}

TEST(ThreadPool, ZeroThreadsFallsBackToOne)
{
    ThreadPool pool(0);
    EXPECT_GE(pool.size(), 1u);
    std::atomic<int> count{0};
    pool.parallel_for(0, 10, [&](std::size_t) { count.fetch_add(1); });
    EXPECT_EQ(count.load(), 10);
}

TEST(ThreadPool, ParallelForPropagatesException)
{
    ThreadPool pool(4);
    EXPECT_THROW(pool.parallel_for(0, 100,
                                   [](std::size_t i) {
                                       if (i == 37)
                                           throw std::runtime_error("bad");
                                   },
                                   1),
                 std::runtime_error);
    // The pool is still usable afterwards.
    std::atomic<int> count{0};
    pool.parallel_for(0, 10, [&](std::size_t) { count.fetch_add(1); });
    EXPECT_EQ(count.load(), 10);
}

TEST(ThreadPool, NestedParallelFor)
{
    ThreadPool pool(4);
    std::atomic<int> count{0};
    pool.parallel_for(
        0, 4,
        [&](std::size_t) {
            pool.parallel_for(0, 100,
                              [&](std::size_t) { count.fetch_add(1); }, 8);
        },
        1);
    EXPECT_EQ(count.load(), 400);
}

TEST(ThreadPool, SubmitFromInsideTask)
{
    ThreadPool pool(2);
    std::atomic<int> count{0};
    pool.parallel_for(0, 4,
                      [&](std::size_t) {
                          pool.submit([&] { count.fetch_add(1); });
                      },
                      1);
    pool.wait_idle();
    EXPECT_EQ(count.load(), 4);
}

TEST(WorkQueue, PreservesFifoOrder)
{
    WorkQueue<int> queue(16);
    for (int i = 0; i < 10; ++i)
        EXPECT_TRUE(queue.push(i));
    for (int i = 0; i < 10; ++i) {
        const auto item = queue.pop();
        ASSERT_TRUE(item.has_value());
        EXPECT_EQ(*item, i);
    }
    EXPECT_FALSE(queue.try_pop().has_value());
}

TEST(WorkQueue, TryPushFailsWhenFull)
{
    WorkQueue<int> queue(2);
    int item = 1;
    EXPECT_TRUE(queue.try_push(item));
    item = 2;
    EXPECT_TRUE(queue.try_push(item));
    item = 3;
    EXPECT_FALSE(queue.try_push(item));
    EXPECT_EQ(item, 3);  // untouched on failure
    EXPECT_EQ(queue.size(), 2u);
}

TEST(WorkQueue, PushBlocksUntilConsumerDrains)
{
    WorkQueue<int> queue(2);
    EXPECT_TRUE(queue.push(1));
    EXPECT_TRUE(queue.push(2));

    std::atomic<bool> third_pushed{false};
    std::thread producer([&] {
        EXPECT_TRUE(queue.push(3));  // blocks until a pop frees a slot
        third_pushed.store(true);
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    EXPECT_FALSE(third_pushed.load());

    EXPECT_EQ(queue.pop().value(), 1);
    producer.join();
    EXPECT_TRUE(third_pushed.load());
    EXPECT_EQ(queue.pop().value(), 2);
    EXPECT_EQ(queue.pop().value(), 3);
}

TEST(WorkQueue, CloseDrainsPendingThenSignalsEnd)
{
    WorkQueue<int> queue(8);
    queue.push(1);
    queue.push(2);
    queue.close();
    EXPECT_TRUE(queue.closed());
    EXPECT_FALSE(queue.push(3));  // rejected after close
    EXPECT_EQ(queue.pop().value(), 1);
    EXPECT_EQ(queue.pop().value(), 2);
    EXPECT_FALSE(queue.pop().has_value());  // drained + closed
}

TEST(WorkQueue, CloseUnblocksWaitingConsumer)
{
    WorkQueue<int> queue(4);
    std::optional<int> got = 42;
    std::thread consumer([&] { got = queue.pop(); });
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    queue.close();
    consumer.join();
    EXPECT_FALSE(got.has_value());
}

TEST(WorkQueue, ManyProducersManyConsumers)
{
    WorkQueue<int> queue(4);  // small capacity: exercise backpressure
    constexpr int kProducers = 4;
    constexpr int kItemsEach = 500;
    std::vector<std::thread> threads;
    for (int p = 0; p < kProducers; ++p) {
        threads.emplace_back([&queue, p] {
            for (int i = 0; i < kItemsEach; ++i)
                ASSERT_TRUE(queue.push(p * kItemsEach + i));
        });
    }
    std::atomic<int> popped{0};
    std::atomic<long long> total{0};
    for (int c = 0; c < 3; ++c) {
        threads.emplace_back([&] {
            while (auto item = queue.pop()) {
                popped.fetch_add(1);
                total.fetch_add(*item);
            }
        });
    }
    for (int p = 0; p < kProducers; ++p)
        threads[static_cast<std::size_t>(p)].join();
    queue.close();
    for (std::size_t t = kProducers; t < threads.size(); ++t)
        threads[t].join();
    constexpr int kTotalItems = kProducers * kItemsEach;
    EXPECT_EQ(popped.load(), kTotalItems);
    EXPECT_EQ(total.load(),
              static_cast<long long>(kTotalItems) * (kTotalItems - 1) / 2);
}

TEST(Logging, FatalThrows)
{
    EXPECT_THROW(fatal("boom"), FatalError);
}

TEST(Logging, LevelsFilter)
{
    set_log_level(LogLevel::Error);
    inform("should be dropped silently");
    warn("also dropped");
    set_log_level(LogLevel::Info);
    SUCCEED();
}

}  // namespace
}  // namespace darwin
