/**
 * @file
 * Tests for the evaluation module: sensitivity summaries, exon recovery
 * against planted ground truth, the FPR noise analysis, and the Fig. 2
 * block statistics.
 */
#include <gtest/gtest.h>

#include "eval/block_stats.h"
#include "eval/exon_eval.h"
#include "eval/fpr.h"
#include "eval/sensitivity.h"
#include "synth/species.h"

namespace darwin::eval {
namespace {

synth::SpeciesPair
small_pair(const std::string& name, std::size_t chrom_len,
           std::size_t exons = 12)
{
    synth::AncestorConfig config;
    config.num_chromosomes = 1;
    config.chromosome_length = chrom_len;
    config.exons_per_chromosome = exons;
    return synth::make_species_pair(synth::find_species_pair(name), config,
                                    777);
}

TEST(Sensitivity, ImprovementHelpers)
{
    EXPECT_DOUBLE_EQ(improvement_percent(100, 105.73), 5.73);
    EXPECT_DOUBLE_EQ(improvement_percent(0, 0), 0.0);
    EXPECT_DOUBLE_EQ(improvement_ratio(100, 312), 3.12);
    EXPECT_DOUBLE_EQ(improvement_ratio(0, 0), 1.0);
}

TEST(Sensitivity, SummaryCountsChains)
{
    wga::WgaResult result;
    result.alignments.resize(3);
    chain::Chain c1;
    c1.score = 100;
    c1.matched_bases = 50;
    result.chains.push_back(c1);
    const auto summary = summarize(result, 10);
    EXPECT_EQ(summary.num_alignments, 3u);
    EXPECT_EQ(summary.chains.num_chains, 1u);
    EXPECT_DOUBLE_EQ(summary.chains.top_k_score, 100.0);
}

TEST(ExonEval, FlattenPairsByName)
{
    const auto pair = small_pair("dm6-droSim1", 20000);
    const auto exons = flatten_exons(pair.target, pair.query);
    EXPECT_EQ(exons.size(), pair.target.total_exons());
    for (const auto& exon : exons) {
        EXPECT_FALSE(exon.target.empty());
        EXPECT_FALSE(exon.query.empty());
    }
}

TEST(ExonEval, RecoversExonsCoveredByChains)
{
    const auto pair = small_pair("dm6-droSim1", 40000);
    const wga::WgaPipeline pipeline(wga::WgaParams::darwin_defaults());
    ThreadPool pool(4);
    const auto result =
        pipeline.run(pair.target.genome, pair.query.genome, &pool);
    const auto exons = flatten_exons(pair.target, pair.query);
    const auto recovered = count_recovered_exons(exons, result);
    EXPECT_EQ(recovered.total_exons, exons.size());
    // A close pair with conserved exons: nearly everything is found.
    EXPECT_GT(recovered.fraction(), 0.8);
}

TEST(ExonEval, NoChainsRecoverNothing)
{
    const auto pair = small_pair("dm6-droSim1", 15000);
    const auto exons = flatten_exons(pair.target, pair.query);
    wga::WgaResult empty;
    const auto recovered = count_recovered_exons(exons, empty);
    EXPECT_EQ(recovered.recovered, 0u);
    EXPECT_DOUBLE_EQ(recovered.fraction(), 0.0);
}

TEST(ExonEval, QueryWindowRejectsWrongCopy)
{
    // A block covering the target exon but mapping elsewhere in the query
    // must not count as recovery.
    FlatExon exon{"e", {1000, 1200}, {5000, 5200}};
    wga::WgaResult result;
    align::Alignment a;
    a.target_start = 900;
    a.target_end = 1300;
    a.query_start = 50000;  // far from the query copy
    a.query_end = 50400;
    a.score = 10000;
    a.cigar.push(align::EditOp::Match, 400);
    result.alignments.push_back(a);
    chain::Chain c;
    c.members = {0};
    c.score = 10000;
    result.chains.push_back(c);
    const auto recovered = count_recovered_exons({exon}, result);
    EXPECT_EQ(recovered.recovered, 0u);

    // Same block remapped near the true copy: recovery.
    result.alignments[0].query_start = 4900;
    result.alignments[0].query_end = 5300;
    const auto recovered2 = count_recovered_exons({exon}, result);
    EXPECT_EQ(recovered2.recovered, 1u);
}

TEST(BlockStats, SplitsAtIndels)
{
    align::Cigar cigar;
    cigar.push(align::EditOp::Match, 40);
    cigar.push(align::EditOp::Insert, 2);
    cigar.push(align::EditOp::Match, 10);
    cigar.push(align::EditOp::Mismatch, 5);
    cigar.push(align::EditOp::Match, 10);
    cigar.push(align::EditOp::Delete, 1);
    cigar.push(align::EditOp::Match, 3);
    const auto blocks = ungapped_blocks(cigar);
    ASSERT_EQ(blocks.size(), 3u);
    EXPECT_EQ(blocks[0], 40u);
    EXPECT_EQ(blocks[1], 25u);  // 10 + 5X + 10 is one gapless block
    EXPECT_EQ(blocks[2], 3u);
}

TEST(BlockStats, DistantPairHasShorterBlocks)
{
    // Fig. 2's message: indel density rises with divergence, so ungapped
    // blocks shrink.
    ThreadPool pool(4);
    const wga::WgaPipeline pipeline(wga::WgaParams::darwin_defaults());
    const auto close_pair = small_pair("dm6-droSim1", 40000);
    const auto far_pair = small_pair("ce11-cb4", 40000);
    const auto close_result = pipeline.run(close_pair.target.genome,
                                           close_pair.query.genome, &pool);
    const auto far_result =
        pipeline.run(far_pair.target.genome, far_pair.query.genome, &pool);
    const auto close_stats = collect_block_stats(close_result);
    const auto far_stats = collect_block_stats(far_result);
    ASSERT_FALSE(close_stats.lengths.empty());
    ASSERT_FALSE(far_stats.lengths.empty());
    EXPECT_GT(close_stats.mean_length, far_stats.mean_length);
    EXPECT_GT(far_stats.fraction_below_30bp,
              close_stats.fraction_below_30bp);
}

TEST(Fpr, ShuffledTargetYieldsAlmostNothing)
{
    const auto pair = small_pair("dm6-droSim1", 30000);
    const wga::WgaPipeline pipeline(wga::WgaParams::darwin_defaults());
    ThreadPool pool(4);
    const auto result = noise_analysis(pipeline, pair.target.genome,
                                       pair.query.genome, 1, 555, &pool);
    EXPECT_GT(result.real_matched_bases, 10000u);
    // The paper reports FPR ~0.0007%; allow generous slack at this scale.
    EXPECT_LT(result.rate(), 0.01);
}

}  // namespace
}  // namespace darwin::eval
