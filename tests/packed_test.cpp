/**
 * @file
 * Tests for 2-bit packed sequence storage (seq/packed_sequence.h) and
 * the `.2bit` sidecar cache (seq/packed_io.h): round-trip bit-identity
 * including N runs, odd lengths and reverse complements; kmer
 * extraction against a byte-wise oracle; sidecar reuse, staleness and
 * corruption rejection.
 */
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "index/index_io.h"
#include "seq/fasta.h"
#include "seq/genome.h"
#include "seq/packed_io.h"
#include "seq/packed_sequence.h"
#include "util/logging.h"
#include "util/rng.h"

namespace darwin::seq {
namespace {

std::vector<std::uint8_t>
random_codes_with_n(std::size_t len, std::uint64_t seed,
                    double n_run_chance = 0.01)
{
    Rng rng(seed);
    std::vector<std::uint8_t> codes;
    codes.reserve(len);
    while (codes.size() < len) {
        if (rng.chance(n_run_chance)) {
            const std::size_t run = 1 + rng.uniform(40);
            for (std::size_t i = 0; i < run && codes.size() < len; ++i)
                codes.push_back(BaseN);
            continue;
        }
        codes.push_back(static_cast<std::uint8_t>(rng.uniform(4)));
    }
    return codes;
}

TEST(PackedSequence, RoundTripBitIdentityAcrossOddLengths)
{
    // Lengths straddling every word-boundary case: empty, sub-word,
    // exactly one base word (32), one n-word (64), and ragged tails.
    for (const std::size_t len :
         {0ul, 1ul, 31ul, 32ul, 33ul, 63ul, 64ul, 65ul, 127ul, 128ul,
          129ul, 1000ul, 4097ul}) {
        const auto codes = random_codes_with_n(len, 7 + len);
        const auto packed =
            PackedSequence::pack("seq", {codes.data(), codes.size()});
        ASSERT_EQ(packed.size(), len);
        for (std::size_t i = 0; i < len; ++i)
            ASSERT_EQ(packed[i], codes[i]) << "len " << len << " pos " << i;
        const auto decoded = packed.decode(0, len);
        EXPECT_EQ(decoded, codes);
        const Sequence bytes = packed.to_sequence();
        EXPECT_EQ(bytes.codes(), codes);
    }
}

TEST(PackedSequence, NLanesStoreAsZeroSoWordsAreCanonical)
{
    // Two byte sequences equal up to ambiguity codes must pack to
    // identical words — digests over words depend on it.
    std::vector<std::uint8_t> a = {0, 1, 2, 3, BaseN, 2, BaseN, 0};
    std::vector<std::uint8_t> b = a;
    const auto pa = PackedSequence::pack("a", {a.data(), a.size()});
    const auto pb = PackedSequence::pack("b", {b.data(), b.size()});
    ASSERT_EQ(pa.num_base_words(), pb.num_base_words());
    for (std::size_t w = 0; w < pa.num_base_words(); ++w)
        EXPECT_EQ(pa.base_words()[w], pb.base_words()[w]);
    EXPECT_TRUE(pa.is_n(4));
    EXPECT_TRUE(pa.is_n(6));
    EXPECT_FALSE(pa.is_n(5));
    EXPECT_EQ(pa.base2(4), 0u);  // the N lane reads as zero
}

TEST(PackedSequence, ReverseComplementMatchesByteOracle)
{
    for (const std::size_t len : {1ul, 33ul, 64ul, 65ul, 777ul}) {
        const auto codes = random_codes_with_n(len, 1000 + len, 0.05);
        const Sequence bytes("s", codes);
        const auto packed =
            PackedSequence::pack("s", {codes.data(), codes.size()});
        const Sequence rc_bytes = bytes.reverse_complement();
        const PackedSequence rc_packed = packed.reverse_complement();
        ASSERT_EQ(rc_packed.size(), rc_bytes.size());
        for (std::size_t i = 0; i < rc_bytes.size(); ++i)
            ASSERT_EQ(rc_packed[i], rc_bytes[i]) << "len " << len;
    }
}

TEST(PackedSequence, ExtractKmerMatchesByteOracle)
{
    const std::size_t len = 300;
    const auto codes = random_codes_with_n(len, 99, 0.03);
    const auto packed =
        PackedSequence::pack("s", {codes.data(), codes.size()});
    for (const std::size_t k : {1ul, 12ul, 19ul, 31ul, 32ul}) {
        for (std::size_t pos = 0; pos + 1 < len; pos += 7) {
            std::uint64_t expect = 0;
            for (std::size_t j = 0; j < k && pos + j < len; ++j) {
                const std::uint8_t c = codes[pos + j];
                // N lanes (and lanes past the end) read as zero.
                if (c < 4)
                    expect |= static_cast<std::uint64_t>(c) << (2 * j);
            }
            ASSERT_EQ(packed.extract_kmer(pos, k), expect)
                << "pos " << pos << " k " << k;
        }
    }
}

TEST(PackedSequence, NMaskMatchesByteOracle)
{
    const std::size_t len = 200;
    const auto codes = random_codes_with_n(len, 5, 0.08);
    const auto packed =
        PackedSequence::pack("s", {codes.data(), codes.size()});
    for (std::size_t pos = 0; pos < len; pos += 13) {
        const std::size_t window = std::min<std::size_t>(64, len - pos);
        std::uint64_t expect = 0;
        for (std::size_t j = 0; j < window; ++j)
            if (codes[pos + j] >= 4)
                expect |= 1ULL << j;
        ASSERT_EQ(packed.n_mask(pos, window), expect) << "pos " << pos;
    }
}

TEST(PackedSequence, PackedDigestEqualsByteDigest)
{
    const auto codes = random_codes_with_n(5000, 21, 0.02);
    const Sequence bytes("s", codes);
    const auto packed =
        PackedSequence::pack("s", {codes.data(), codes.size()});
    EXPECT_EQ(index::sequence_digest(packed),
              index::sequence_digest(bytes));
}

TEST(Genome, FlattenedPackedMatchesFlattenedBytes)
{
    Genome genome("g");
    genome.add_chromosome(
        Sequence("chr1", random_codes_with_n(701, 31)));
    genome.add_chromosome(
        Sequence("chr2", random_codes_with_n(997, 32)));
    const Sequence& flat = genome.flattened();
    const PackedSequence& packed = genome.flattened_packed();
    ASSERT_EQ(packed.size(), flat.size());
    for (std::size_t i = 0; i < flat.size(); ++i)
        ASSERT_EQ(packed[i], flat[i]) << "pos " << i;
}

/** Temp-dir fixture for the sidecar tests. */
class PackedIo : public ::testing::Test {
  protected:
    void
    SetUp() override
    {
        dir_ = std::filesystem::temp_directory_path() /
               ("darwin_packed_test_" +
                std::to_string(::getpid()) + "_" +
                ::testing::UnitTest::GetInstance()
                    ->current_test_info()
                    ->name());
        std::filesystem::create_directories(dir_);
        fasta_ = (dir_ / "genome.fa").string();
        sidecar_ = fasta_ + ".2bit";
        std::ofstream out(fasta_);
        out << ">chrA test\nACGTACGTNNNNACGTTTTTGGGGCCCCAAAA\n"
            << "ACGTNACGTN\n>chrB\nTTTTACGTACGTACGTACGTNNN\n";
    }

    void TearDown() override { std::filesystem::remove_all(dir_); }

    std::filesystem::path dir_;
    std::string fasta_;
    std::string sidecar_;
};

TEST_F(PackedIo, IngestionMatchesByteReaderAndWritesSidecar)
{
    const Genome packed = read_genome_packed(fasta_);
    const Genome bytes = read_genome(fasta_);
    ASSERT_TRUE(packed.packed());
    ASSERT_EQ(packed.num_chromosomes(), bytes.num_chromosomes());
    for (std::size_t c = 0; c < bytes.num_chromosomes(); ++c) {
        EXPECT_EQ(packed.chromosome_name(c), bytes.chromosome_name(c));
        ASSERT_EQ(packed.chromosome_length(c),
                  bytes.chromosome_length(c));
        const PackedSequence& pc = packed.packed_chromosome(c);
        const Sequence& bc = bytes.chromosome(c);
        for (std::size_t i = 0; i < bc.size(); ++i)
            ASSERT_EQ(pc[i], bc[i]) << "chr " << c << " pos " << i;
    }
    EXPECT_TRUE(is_packed_file(sidecar_));
}

TEST_F(PackedIo, SidecarIsReusedViaMmapAttach)
{
    (void)read_genome_packed(fasta_);  // builds the sidecar
    const auto first_write =
        std::filesystem::last_write_time(sidecar_);
    const Genome again = read_genome_packed(fasta_);
    // Reuse: the file was not rewritten, and chromosomes attach to the
    // mapping instead of owning fresh words.
    EXPECT_EQ(std::filesystem::last_write_time(sidecar_), first_write);
    ASSERT_GT(again.num_chromosomes(), 0u);
    EXPECT_TRUE(again.packed_chromosome(0).attached());
}

TEST_F(PackedIo, StaleSidecarIsRebuilt)
{
    (void)read_genome_packed(fasta_);
    {
        std::ofstream out(fasta_, std::ios::app);
        out << ">chrC\nACGT\n";
    }
    const Genome genome = read_genome_packed(fasta_);
    EXPECT_EQ(genome.num_chromosomes(), 3u);
    // The rebuilt sidecar reflects the new FASTA.
    const Genome reloaded = load_packed_genome(sidecar_);
    EXPECT_EQ(reloaded.num_chromosomes(), 3u);
}

TEST_F(PackedIo, CorruptSidecarIsRejectedThenRebuilt)
{
    (void)read_genome_packed(fasta_);
    {
        // Trash the version/endian fields (bytes 8..15 of the header).
        std::fstream f(sidecar_,
                       std::ios::in | std::ios::out | std::ios::binary);
        f.seekp(8);
        const char garbage[8] = {1, 2, 3, 4, 5, 6, 7, 8};
        f.write(garbage, sizeof(garbage));
    }
    // Direct load reports the corruption...
    EXPECT_THROW((void)load_packed_genome(sidecar_), FatalError);
    // ...while the cached read path quietly rebuilds.
    const Genome genome = read_genome_packed(fasta_);
    EXPECT_EQ(genome.num_chromosomes(), 2u);
    EXPECT_NO_THROW((void)load_packed_genome(sidecar_));
}

TEST_F(PackedIo, DigestMismatchIsFatal)
{
    (void)read_genome_packed(fasta_);
    EXPECT_THROW((void)load_packed_genome(sidecar_, 0xdeadbeefULL),
                 FatalError);
}

}  // namespace
}  // namespace darwin::seq
