/**
 * @file
 * Tests for the bounded-memory dataflow: spill primitives
 * (wga/spill.h), the spill-or-backpressure channel
 * (wga/bounded_stream.h), sharded seed indexing (seed/sharded_index.h)
 * and its `.dwi` v2 persistence, and the streaming pipeline's
 * bit-identity with the classic materialized run — including the batch
 * engine's streaming mode.
 */
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <sstream>
#include <thread>

#include "batch/scheduler.h"
#include "index/format.h"
#include "index/index_io.h"
#include "seed/sharded_index.h"
#include "seq/genome.h"
#include "synth/species.h"
#include "util/logging.h"
#include "util/rng.h"
#include "wga/bounded_stream.h"
#include "wga/maf.h"
#include "wga/pipeline.h"
#include "wga/spill.h"

namespace darwin::wga {
namespace {

TEST(SpillFile, AppendReadReset)
{
    SpillFile file;
    const std::uint32_t a[4] = {1, 2, 3, 4};
    file.append(a, sizeof(a));
    EXPECT_EQ(file.size(), sizeof(a));
    std::uint32_t back[2] = {};
    file.read_at(2 * sizeof(std::uint32_t), back, sizeof(back));
    EXPECT_EQ(back[0], 3u);
    EXPECT_EQ(back[1], 4u);
    file.reset();
    EXPECT_EQ(file.size(), 0u);
    const std::uint32_t b[1] = {9};
    file.append(b, sizeof(b));
    std::uint32_t again = 0;
    file.read_at(0, &again, sizeof(again));
    EXPECT_EQ(again, 9u);
}

TEST(BoundedStream, SpillPreservesFifoOrder)
{
    // Window of 4, 1000 pushes with no consumer: everything past the
    // window spills, and the drain still sees strict push order.
    BoundedStream<std::uint64_t> stream(4, OverflowPolicy::Spill, "", 16);
    for (std::uint64_t i = 0; i < 1000; ++i)
        ASSERT_TRUE(stream.push(i));
    stream.close();
    EXPECT_EQ(stream.pushed(), 1000u);
    EXPECT_GT(stream.spilled_items(), 0u);
    EXPECT_GE(stream.spill_episodes(), 1u);
    for (std::uint64_t i = 0; i < 1000; ++i) {
        const auto item = stream.pop();
        ASSERT_TRUE(item.has_value());
        ASSERT_EQ(*item, i);
    }
    EXPECT_FALSE(stream.pop().has_value());
}

TEST(BoundedStream, SpillEpisodesEndWhenBacklogDrains)
{
    BoundedStream<std::uint64_t> stream(2, OverflowPolicy::Spill, "", 4);
    for (std::uint64_t i = 0; i < 10; ++i)
        stream.push(i);  // first episode
    std::uint64_t expect = 0;
    for (std::uint64_t i = 0; i < 10; ++i)
        EXPECT_EQ(*stream.pop(), expect++);
    // Fully drained: the stream is back in-memory, a small burst fits
    // the window without a new episode.
    stream.push(expect);
    EXPECT_EQ(*stream.pop(), expect);
    EXPECT_EQ(stream.spill_episodes(), 1u);
    stream.close();
    EXPECT_FALSE(stream.pop().has_value());
}

TEST(BoundedStream, BackpressureBlocksProducerUntilConsumed)
{
    BoundedStream<int> stream(2, OverflowPolicy::Backpressure);
    std::thread producer([&] {
        for (int i = 0; i < 100; ++i)
            ASSERT_TRUE(stream.push(i));
        stream.close();
    });
    int expect = 0;
    while (auto item = stream.pop())
        EXPECT_EQ(*item, expect++);
    EXPECT_EQ(expect, 100);
    producer.join();
    EXPECT_EQ(stream.spilled_items(), 0u);
}

TEST(SortingSpillBuffer, DrainsInOrderAcrossSpilledChunks)
{
    Rng rng(404);
    SortingSpillBuffer<std::uint64_t, std::less<std::uint64_t>> buffer(8);
    std::vector<std::uint64_t> values;
    for (std::size_t i = 0; i < 500; ++i)
        values.push_back(rng.uniform(1000));
    for (const auto v : values)
        buffer.push(v);
    EXPECT_EQ(buffer.size(), values.size());
    EXPECT_GT(buffer.chunks_spilled(), 0u);
    EXPECT_GT(buffer.spilled_bytes(), 0u);

    std::sort(values.begin(), values.end());
    std::vector<std::uint64_t> drained;
    buffer.drain_sorted([&](std::uint64_t v) { drained.push_back(v); });
    EXPECT_EQ(drained, values);

    // The buffer resets after a full drain and is reusable.
    EXPECT_EQ(buffer.size(), 0u);
    buffer.push(3);
    buffer.push(1);
    drained.clear();
    buffer.drain_sorted([&](std::uint64_t v) { drained.push_back(v); });
    EXPECT_EQ(drained, (std::vector<std::uint64_t>{1, 3}));
}

TEST(ShardPlan, PartitionsBandSpaceExactly)
{
    const auto plan = seed::plan_shards(1000, 300, 64, 64);
    ASSERT_FALSE(plan.empty());
    EXPECT_EQ(plan.front().band_lo, 0u);
    for (std::size_t s = 1; s < plan.size(); ++s)
        EXPECT_EQ(plan[s].band_lo, plan[s - 1].band_hi);
    // Slices widen by the D-SOFT projection margins and clamp to the
    // target.
    for (const auto& shard : plan) {
        EXPECT_LE(shard.slice_lo,
                  shard.band_lo > 64 ? shard.band_lo - 64 : 0);
        EXPECT_LE(shard.slice_hi, 1000u);
    }
    EXPECT_THROW((void)seed::plan_shards(1000, 0, 64, 64), FatalError);
}

/** Small species pair shared by the identity tests. */
synth::SpeciesPair
small_pair(const std::string& name, std::size_t chrom_len)
{
    synth::AncestorConfig config;
    config.num_chromosomes = 1;
    config.chromosome_length = chrom_len;
    config.exons_per_chromosome = 10;
    return synth::make_species_pair(synth::find_species_pair(name), config,
                                    4242);
}

void
expect_identical(const WgaResult& a, const WgaResult& b)
{
    ASSERT_EQ(a.alignments.size(), b.alignments.size());
    for (std::size_t i = 0; i < a.alignments.size(); ++i) {
        EXPECT_EQ(a.alignments[i].target_start,
                  b.alignments[i].target_start);
        EXPECT_EQ(a.alignments[i].query_start,
                  b.alignments[i].query_start);
        EXPECT_EQ(a.alignments[i].score, b.alignments[i].score);
        EXPECT_EQ(a.alignments[i].query_strand,
                  b.alignments[i].query_strand);
        EXPECT_EQ(a.alignments[i].cigar.to_string(),
                  b.alignments[i].cigar.to_string());
    }
    ASSERT_EQ(a.chains.size(), b.chains.size());
    for (std::size_t i = 0; i < a.chains.size(); ++i)
        EXPECT_EQ(a.chains[i].score, b.chains[i].score);
}

TEST(ShardedSeeding, ShardTablesAreSlicesOfTheMonolithicIndex)
{
    const auto pair = small_pair("dm6-droSim1", 20000);
    const seq::PackedSequence& target =
        pair.target.genome.flattened_packed();
    const auto params = WgaParams::darwin_defaults();
    const seed::SeedPattern pattern(params.seed_pattern);

    const seed::SeedIndex mono(target, pattern);
    const seed::ShardedSeedIndexBuilder builder(
        target, pattern, seed::SeedIndex::kDefaultMaxBucket, 6000,
        params.dsoft.chunk_size, params.dsoft.bin_size);
    ASSERT_GT(builder.num_shards(), 1u);
    EXPECT_EQ(builder.skipped_windows(), mono.skipped_windows());
    EXPECT_EQ(builder.truncated_buckets(), mono.truncated_buckets());

    // Every monolithic position appears in every shard whose slice
    // covers it, and shard buckets are subsequences of the monolithic
    // bucket (same order, same truncation).
    for (std::size_t s = 0; s < builder.num_shards(); ++s) {
        const auto shard = builder.build_shard(s);
        const auto& plan = builder.plan()[s];
        const auto mono_offsets = mono.bucket_offsets();
        const auto shard_offsets = shard->bucket_offsets();
        ASSERT_EQ(mono_offsets.size(), shard_offsets.size());
        for (std::size_t b = 0; b + 1 < mono_offsets.size(); ++b) {
            std::vector<std::uint32_t> expect;
            for (std::uint32_t o = mono_offsets[b];
                 o < mono_offsets[b + 1]; ++o) {
                const std::uint32_t position = mono.positions()[o];
                if (position >= plan.slice_lo && position < plan.slice_hi)
                    expect.push_back(position);
            }
            const std::vector<std::uint32_t> got(
                shard->positions().begin() + shard_offsets[b],
                shard->positions().begin() + shard_offsets[b + 1]);
            ASSERT_EQ(got, expect) << "shard " << s << " bucket " << b;
        }
    }
}

TEST(ShardedIndexIo, RoundTripsThroughDwiV2)
{
    const auto pair = small_pair("dm6-droYak2", 12000);
    const seq::PackedSequence& target =
        pair.target.genome.flattened_packed();
    const auto params = WgaParams::darwin_defaults();
    const seed::SeedPattern pattern(params.seed_pattern);
    const seed::ShardedSeedIndexBuilder builder(
        target, pattern, seed::SeedIndex::kDefaultMaxBucket, 4000,
        params.dsoft.chunk_size, params.dsoft.bin_size);

    const std::string path =
        (std::filesystem::temp_directory_path() /
         "darwin_stream_test_sharded.dwi")
            .string();
    index::save_sharded_index(path, builder, 4000, 0x1234, target.size());

    const index::IndexInfo info = index::read_index_info(path);
    EXPECT_EQ(info.version, index::kIndexShardedFormatVersion);
    EXPECT_EQ(info.shard_bp, 4000u);
    EXPECT_EQ(info.num_shards, builder.num_shards());
    EXPECT_EQ(info.sequence_digest, 0x1234u);

    // The monolithic loader refuses v2 files with a pointed message.
    try {
        (void)index::load_index(path);
        FAIL() << "load_index accepted a sharded file";
    } catch (const FatalError& e) {
        EXPECT_NE(std::string(e.what()).find("sharded"),
                  std::string::npos);
    }

    index::ShardedIndexReader reader(path);
    ASSERT_EQ(reader.num_shards(), builder.num_shards());
    for (std::size_t s = 0; s < reader.num_shards(); ++s) {
        EXPECT_EQ(reader.plan()[s].band_lo, builder.plan()[s].band_lo);
        EXPECT_EQ(reader.plan()[s].band_hi, builder.plan()[s].band_hi);
        const auto loaded = reader.open_shard(s);
        const auto built = builder.build_shard(s);
        ASSERT_EQ(loaded->num_positions(), built->num_positions());
        for (std::size_t i = 0; i < built->positions().size(); ++i)
            ASSERT_EQ(loaded->positions()[i], built->positions()[i]);
        const auto lo = loaded->bucket_offsets();
        const auto bo = built->bucket_offsets();
        ASSERT_EQ(lo.size(), bo.size());
        for (std::size_t i = 0; i < bo.size(); i += 97)
            ASSERT_EQ(lo[i], bo[i]);
    }
    std::remove(path.c_str());
}

TEST(StreamingPipeline, PackedRunIsBitIdenticalToByteRun)
{
    const auto pair = small_pair("dm6-droSim1", 30000);
    const WgaPipeline pipeline(WgaParams::darwin_defaults());
    const auto classic =
        pipeline.run(pair.target.genome, pair.query.genome);
    const auto packed =
        pipeline.run_packed(pair.target.genome, pair.query.genome);
    expect_identical(classic, packed);
}

TEST(StreamingPipeline, StreamingRunIsBitIdenticalIncludingMaf)
{
    const auto pair = small_pair("ce11-cb4", 30000);
    const WgaPipeline pipeline(WgaParams::darwin_defaults());
    const auto classic =
        pipeline.run(pair.target.genome, pair.query.genome);

    // Tiny capacities force sharding, spilling, and candidate chunk
    // merges — the stress configuration must still be bit-identical.
    StreamingParams sp;
    sp.shard_bp = 7000;
    sp.hit_stream_capacity = 64;
    sp.candidate_chunk = 16;
    sp.filter_batch = 32;
    obs::MetricsRegistry metrics;
    const auto streamed = pipeline.run_streaming(
        pair.target.genome, pair.query.genome, sp, nullptr, &metrics);
    expect_identical(classic, streamed);

    // Telemetry: the dataflow reported its residency and throughput.
    EXPECT_GT(metrics.gauge("wga.heap.hits_pushed").value(), 0);
    EXPECT_GT(metrics.gauge("wga.heap.hit_stream_bytes").value(), 0);

    // And the rendered MAF matches byte for byte.
    std::ostringstream maf_classic, maf_streamed;
    write_maf(maf_classic, classic.alignments, pair.target.genome,
              pair.query.genome);
    write_maf(maf_streamed, streamed.alignments, pair.target.genome,
              pair.query.genome);
    EXPECT_EQ(maf_classic.str(), maf_streamed.str());
}

TEST(StreamingPipeline, PackedGenomesRenderIdenticalMaf)
{
    // Genomes ingested as packed storage end to end: alignments and
    // MAF must match the byte-mode run exactly.
    const auto pair = small_pair("dm6-droYak2", 20000);
    seq::Genome packed_target("t"), packed_query("q");
    for (std::size_t c = 0; c < pair.target.genome.num_chromosomes(); ++c)
        packed_target.add_chromosome(
            seq::PackedSequence::pack(pair.target.genome.chromosome(c)));
    for (std::size_t c = 0; c < pair.query.genome.num_chromosomes(); ++c)
        packed_query.add_chromosome(
            seq::PackedSequence::pack(pair.query.genome.chromosome(c)));

    const WgaPipeline pipeline(WgaParams::darwin_defaults());
    const auto classic =
        pipeline.run(pair.target.genome, pair.query.genome);
    StreamingParams sp;
    sp.shard_bp = 9000;
    const auto streamed =
        pipeline.run_streaming(packed_target, packed_query, sp);
    expect_identical(classic, streamed);

    std::ostringstream maf_classic, maf_packed;
    write_maf(maf_classic, classic.alignments, pair.target.genome,
              pair.query.genome);
    write_maf(maf_packed, streamed.alignments, packed_target,
              packed_query);
    EXPECT_EQ(maf_classic.str(), maf_packed.str());
}

TEST(StreamingPipeline, RunWithIndexPackedMatchesRunPacked)
{
    const auto pair = small_pair("dm6-dp4", 15000);
    const WgaPipeline pipeline(WgaParams::darwin_defaults());
    const auto baseline =
        pipeline.run_packed(pair.target.genome, pair.query.genome);
    const seed::SeedIndex index(
        pair.target.genome.flattened_packed(),
        seed::SeedPattern(pipeline.params().seed_pattern));
    const auto with_index = pipeline.run_with_index_packed(
        index, pair.target.genome.flattened_packed(),
        pair.query.genome.flattened_packed());
    expect_identical(baseline, with_index);
}

TEST(StreamingPipeline, RejectsUngappedAndPerChunkCaps)
{
    const auto pair = small_pair("dm6-droSim1", 8000);
    StreamingParams sp;
    const WgaPipeline lastz(WgaParams::lastz_defaults());
    EXPECT_THROW((void)lastz.run_streaming(pair.target.genome,
                                           pair.query.genome, sp),
                 FatalError);
    auto params = WgaParams::darwin_defaults();
    params.dsoft.max_hits_per_chunk = 100;
    const WgaPipeline capped(params);
    EXPECT_THROW((void)capped.run_streaming(pair.target.genome,
                                            pair.query.genome, sp),
                 FatalError);
}

TEST(BatchStreaming, StreamingModeMatchesTheDataflowEngine)
{
    const auto pair_a = small_pair("dm6-droSim1", 15000);
    const auto pair_b = small_pair("dm6-droYak2", 15000);
    std::vector<batch::BatchJob> jobs = {
        {"a", &pair_a.target.genome, &pair_a.query.genome},
        {"b", &pair_b.target.genome, &pair_b.query.genome},
    };

    batch::BatchOptions classic;
    classic.params = WgaParams::darwin_defaults();
    classic.num_threads = 2;
    batch::BatchScheduler classic_engine(classic);
    const auto classic_results = classic_engine.run(jobs);

    batch::BatchOptions streaming = classic;
    streaming.streaming = true;
    streaming.streaming_params.shard_bp = 6000;
    streaming.streaming_params.hit_stream_capacity = 128;
    streaming.streaming_params.candidate_chunk = 64;
    batch::BatchScheduler streaming_engine(streaming);
    const auto streaming_results = streaming_engine.run(jobs);

    ASSERT_EQ(classic_results.size(), streaming_results.size());
    for (std::size_t p = 0; p < classic_results.size(); ++p) {
        EXPECT_EQ(streaming_results[p].status, fault::PairStatus::Clean);
        expect_identical(classic_results[p].result,
                         streaming_results[p].result);
    }
}

}  // namespace
}  // namespace darwin::wga
