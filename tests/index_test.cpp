/**
 * @file
 * Tests for the persistent reference index (src/index/): on-disk
 * round-trip fidelity (bit-identical sections and D-SOFT hits through a
 * mapped file), header validation of corrupted/truncated/mismatched
 * files, and the LRU cache's eviction order, single-flight builds, and
 * behavior under concurrent acquire/release.
 */
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <thread>
#include <vector>

#include "index/format.h"
#include "index/index_cache.h"
#include "index/index_io.h"
#include "obs/metrics.h"
#include "seed/dsoft.h"
#include "seed/seed_index.h"
#include "seed/seed_pattern.h"
#include "seq/sequence.h"
#include "util/logging.h"
#include "util/rng.h"

namespace darwin::index {
namespace {

seq::Sequence
random_sequence(std::size_t len, std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<std::uint8_t> codes(len);
    for (auto& c : codes)
        c = static_cast<std::uint8_t>(rng.uniform(4));
    return seq::Sequence("rand", std::move(codes));
}

std::string
temp_path(const std::string& name)
{
    return ::testing::TempDir() + "/" + name;
}

/** Write a valid index for a deterministic 2 kb sequence. */
std::string
write_reference_index(const std::string& name,
                      const seq::Sequence& sequence,
                      const seed::SeedPattern& pattern)
{
    const std::string path = temp_path(name);
    const seed::SeedIndex index(sequence, pattern);
    save_index(path, index, sequence_digest(sequence), sequence.size());
    return path;
}

std::vector<char>
slurp(const std::string& path)
{
    std::ifstream in(path, std::ios::binary);
    return {std::istreambuf_iterator<char>(in),
            std::istreambuf_iterator<char>()};
}

void
spit(const std::string& path, const std::vector<char>& bytes)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

/** Rewrite one header field of an on-disk index. */
template <typename Mutator>
std::string
corrupt_header(const std::string& src, const std::string& name,
               Mutator mutate)
{
    std::vector<char> bytes = slurp(src);
    IndexHeader header;
    std::memcpy(&header, bytes.data(), sizeof(header));
    mutate(header);
    std::memcpy(bytes.data(), &header, sizeof(header));
    const std::string path = temp_path(name);
    spit(path, bytes);
    return path;
}

TEST(IndexIo, RoundTripPreservesEverySection)
{
    const auto sequence = random_sequence(2'000, 42);
    const seed::SeedPattern pattern("11011011");
    const seed::SeedIndex built(sequence, pattern);
    const std::string path =
        write_reference_index("rt_sections.dwi", sequence, pattern);

    IndexInfo info;
    const auto loaded = load_index(path, &info);
    ASSERT_NE(loaded, nullptr);

    EXPECT_EQ(loaded->pattern().pattern(), pattern.pattern());
    EXPECT_EQ(loaded->max_bucket(), built.max_bucket());
    EXPECT_EQ(loaded->skipped_windows(), built.skipped_windows());
    EXPECT_EQ(loaded->truncated_buckets(), built.truncated_buckets());

    const auto equal_u32 = [](std::span<const std::uint32_t> a,
                              std::span<const std::uint32_t> b) {
        return a.size() == b.size() &&
               std::memcmp(a.data(), b.data(),
                           a.size() * sizeof(std::uint32_t)) == 0;
    };
    EXPECT_TRUE(
        equal_u32(loaded->bucket_offsets(), built.bucket_offsets()));
    EXPECT_TRUE(equal_u32(loaded->positions(), built.positions()));
    ASSERT_EQ(loaded->over_represented_words().size(),
              built.over_represented_words().size());
    EXPECT_EQ(std::memcmp(loaded->over_represented_words().data(),
                          built.over_represented_words().data(),
                          built.over_represented_words().size() *
                              sizeof(std::uint64_t)),
              0);

    EXPECT_EQ(info.sequence_digest, sequence_digest(sequence));
    EXPECT_EQ(info.sequence_length, sequence.size());
    EXPECT_EQ(info.num_positions, built.num_positions());
    EXPECT_EQ(info.pattern, pattern.pattern());
    EXPECT_EQ(info.total_bytes, std::filesystem::file_size(path));
}

TEST(IndexIo, MappedIndexProducesBitIdenticalDsoftHits)
{
    // Planted 60 bp identity so seeding produces real candidate bands,
    // then D-SOFT through the built index and through the mapped file
    // must emit exactly the same hits.
    auto target = random_sequence(3'000, 7);
    auto query = random_sequence(3'000, 8);
    for (std::size_t i = 0; i < 60; ++i)
        query.codes()[1'200 + i] = target.codes()[400 + i];

    const seed::SeedPattern pattern("111011011");
    const seed::SeedIndex built(target, pattern);
    const std::string path =
        write_reference_index("rt_dsoft.dwi", target, pattern);
    const auto mapped = load_index(path);

    seed::DsoftParams params;
    params.chunk_size = 256;
    const auto from_built =
        seed::DsoftSeeder(built, params).seed_all(query);
    const auto from_mapped =
        seed::DsoftSeeder(*mapped, params).seed_all(query);
    EXPECT_GE(from_built.size(), 1u);
    EXPECT_EQ(from_built, from_mapped);
}

TEST(IndexIo, TruncatedBucketsSurviveTheRoundTrip)
{
    const seq::Sequence target("t", std::string(500, 'A'));
    const seed::SeedPattern pattern("1111");
    const seed::SeedIndex built(target, pattern, /*max_bucket=*/16);
    const std::string path = temp_path("rt_trunc.dwi");
    save_index(path, built, sequence_digest(target), target.size());
    const auto loaded = load_index(path);

    const auto codes = seq::encode_string("AAAA");
    const auto key = *pattern.key_at({codes.data(), codes.size()}, 0);
    EXPECT_EQ(loaded->lookup(key).size(), 16u);
    EXPECT_TRUE(loaded->over_represented(key));
    EXPECT_EQ(loaded->truncated_buckets(), 1u);
    EXPECT_EQ(loaded->max_bucket(), 16u);
}

TEST(IndexIo, IsIndexFileSniffsMagic)
{
    const auto sequence = random_sequence(600, 9);
    const std::string path = write_reference_index(
        "sniff.dwi", sequence, seed::SeedPattern("1111"));
    EXPECT_TRUE(is_index_file(path));

    const std::string fasta = temp_path("sniff.fa");
    spit(fasta, {'>', 'c', 'h', 'r', '\n', 'A', 'C', 'G', 'T', '\n'});
    EXPECT_FALSE(is_index_file(fasta));
    EXPECT_FALSE(is_index_file(temp_path("no_such_file.dwi")));
}

/** Expect load_index (and read_index_info) to throw a FatalError whose
 *  message names the offending file. */
void
expect_rejected(const std::string& path, const std::string& fragment)
{
    try {
        load_index(path);
        FAIL() << "load_index accepted " << path;
    } catch (const FatalError& error) {
        EXPECT_NE(std::string(error.what()).find(path),
                  std::string::npos)
            << "error not tagged with the path: " << error.what();
        EXPECT_NE(std::string(error.what()).find(fragment),
                  std::string::npos)
            << "expected '" << fragment << "' in: " << error.what();
    }
}

TEST(IndexIo, RejectsBadMagic)
{
    const auto sequence = random_sequence(600, 10);
    const std::string good = write_reference_index(
        "good_magic.dwi", sequence, seed::SeedPattern("1111"));
    const std::string bad =
        corrupt_header(good, "bad_magic.dwi", [](IndexHeader& h) {
            h.magic[0] = 'X';
        });
    expect_rejected(bad, "bad magic");
}

TEST(IndexIo, RejectsWrongVersion)
{
    const auto sequence = random_sequence(600, 11);
    const std::string good = write_reference_index(
        "good_ver.dwi", sequence, seed::SeedPattern("1111"));
    const std::string bad =
        corrupt_header(good, "bad_ver.dwi", [](IndexHeader& h) {
            h.version = kIndexShardedFormatVersion + 1;
        });
    expect_rejected(bad, "version");
}

TEST(IndexIo, RejectsForeignEndianness)
{
    const auto sequence = random_sequence(600, 12);
    const std::string good = write_reference_index(
        "good_endian.dwi", sequence, seed::SeedPattern("1111"));
    const std::string bad =
        corrupt_header(good, "bad_endian.dwi", [](IndexHeader& h) {
            h.endian_tag = __builtin_bswap32(h.endian_tag);
        });
    expect_rejected(bad, "byte order");
}

TEST(IndexIo, RejectsTruncatedFile)
{
    const auto sequence = random_sequence(600, 13);
    const std::string good = write_reference_index(
        "good_trunc.dwi", sequence, seed::SeedPattern("1111"));
    std::vector<char> bytes = slurp(good);
    ASSERT_GT(bytes.size(), 256u);
    bytes.resize(bytes.size() - 128);  // chop off tail bytes
    const std::string bad = temp_path("truncated.dwi");
    spit(bad, bytes);
    expect_rejected(bad, "truncated");
}

TEST(IndexIo, RejectsFileShorterThanHeader)
{
    const std::string bad = temp_path("stub.dwi");
    std::vector<char> bytes(32, 0);
    std::memcpy(bytes.data(), kIndexMagic, sizeof(kIndexMagic));
    spit(bad, bytes);
    EXPECT_THROW(load_index(bad), FatalError);
    EXPECT_THROW(read_index_info(bad), FatalError);
}

TEST(IndexIo, RejectsCorruptSeedShape)
{
    const auto sequence = random_sequence(600, 14);
    const std::string good = write_reference_index(
        "good_pattern.dwi", sequence, seed::SeedPattern("1111"));
    const std::string bad =
        corrupt_header(good, "bad_pattern.dwi", [](IndexHeader& h) {
            h.pattern[0] = '2';
        });
    expect_rejected(bad, "seed-shape");
}

TEST(IndexIo, RejectsMissingFile)
{
    EXPECT_THROW(load_index(temp_path("never_written.dwi")), FatalError);
}

TEST(IndexIo, SaveLeavesNoTempFileBehind)
{
    const auto sequence = random_sequence(600, 15);
    const std::string path = write_reference_index(
        "atomic.dwi", sequence, seed::SeedPattern("1111"));
    EXPECT_TRUE(std::filesystem::exists(path));
    EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
}

// ---------------------------------------------------------------------
// IndexCache
// ---------------------------------------------------------------------

std::shared_ptr<const seed::SeedIndex>
tiny_index(std::uint64_t seed)
{
    const auto sequence = random_sequence(400, seed);
    return std::make_shared<const seed::SeedIndex>(
        sequence, seed::SeedPattern("1111"));
}

IndexKey
key_for(std::uint64_t digest)
{
    return IndexKey{digest, "1111", seed::SeedIndex::kDefaultMaxBucket};
}

TEST(IndexCache, HitReturnsSameInstance)
{
    IndexCache cache(4);
    bool built = false;
    const auto first =
        cache.acquire(key_for(1), [] { return tiny_index(1); }, &built);
    EXPECT_TRUE(built);
    const auto second =
        cache.acquire(key_for(1), [] { return tiny_index(1); }, &built);
    EXPECT_FALSE(built);
    EXPECT_EQ(first.get(), second.get());
    EXPECT_EQ(cache.hits(), 1u);
    EXPECT_EQ(cache.misses(), 1u);
    EXPECT_EQ(cache.size(), 1u);
}

TEST(IndexCache, DistinctKeysDistinctEntries)
{
    IndexCache cache(4);
    const auto a = cache.acquire(key_for(1), [] { return tiny_index(1); });
    const auto b = cache.acquire(key_for(2), [] { return tiny_index(2); });
    // Same digest, different shape or cap: still distinct entries.
    const auto c = cache.acquire(
        IndexKey{1, "1101", seed::SeedIndex::kDefaultMaxBucket}, [] {
            const auto sequence = random_sequence(400, 3);
            return std::make_shared<const seed::SeedIndex>(
                sequence, seed::SeedPattern("1101"));
        });
    const auto d = cache.acquire(IndexKey{1, "1111", 16}, [] {
        const auto sequence = random_sequence(400, 4);
        return std::make_shared<const seed::SeedIndex>(
            sequence, seed::SeedPattern("1111"), 16);
    });
    EXPECT_EQ(cache.size(), 4u);
    EXPECT_NE(a.get(), b.get());
    EXPECT_NE(a.get(), c.get());
    EXPECT_NE(a.get(), d.get());
}

TEST(IndexCache, EvictsLeastRecentlyUsed)
{
    IndexCache cache(2);
    cache.acquire(key_for(1), [] { return tiny_index(1); });
    cache.acquire(key_for(2), [] { return tiny_index(2); });
    // Touch 1 so 2 becomes the LRU entry, then insert 3.
    cache.acquire(key_for(1), [] { return tiny_index(1); });
    cache.acquire(key_for(3), [] { return tiny_index(3); });

    EXPECT_EQ(cache.size(), 2u);
    EXPECT_TRUE(cache.contains(key_for(1)));
    EXPECT_FALSE(cache.contains(key_for(2)));
    EXPECT_TRUE(cache.contains(key_for(3)));
    EXPECT_EQ(cache.evictions(), 1u);
}

TEST(IndexCache, EvictionDoesNotInvalidateBorrowedIndex)
{
    IndexCache cache(1);
    const auto borrowed =
        cache.acquire(key_for(1), [] { return tiny_index(1); });
    cache.acquire(key_for(2), [] { return tiny_index(2); });
    EXPECT_FALSE(cache.contains(key_for(1)));
    // The evicted index must stay fully usable while borrowed.
    EXPECT_GT(borrowed->num_positions(), 0u);
    EXPECT_GT(borrowed->bucket_offsets().size(), 0u);
}

TEST(IndexCache, ConcurrentAcquireRunsBuilderOnce)
{
    IndexCache cache(4);
    std::atomic<int> builds{0};
    std::atomic<int> ready{0};
    constexpr int kThreads = 8;
    std::vector<std::shared_ptr<const seed::SeedIndex>> got(kThreads);
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
            ready.fetch_add(1);
            while (ready.load() < kThreads)
                std::this_thread::yield();
            got[t] = cache.acquire(key_for(99), [&] {
                builds.fetch_add(1);
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(20));
                return tiny_index(99);
            });
        });
    }
    for (auto& thread : threads)
        thread.join();

    EXPECT_EQ(builds.load(), 1);
    for (int t = 1; t < kThreads; ++t)
        EXPECT_EQ(got[t].get(), got[0].get());
    EXPECT_EQ(cache.size(), 1u);
    EXPECT_EQ(cache.hits() + cache.misses(),
              static_cast<std::uint64_t>(kThreads));
}

TEST(IndexCache, BuilderFailurePropagatesAndLeavesNoEntry)
{
    IndexCache cache(4);
    EXPECT_THROW(cache.acquire(key_for(5),
                               []() -> std::shared_ptr<
                                        const seed::SeedIndex> {
                                   throw std::runtime_error("disk gone");
                               }),
                 std::runtime_error);
    EXPECT_EQ(cache.size(), 0u);
    EXPECT_FALSE(cache.contains(key_for(5)));
    // A later acquire of the same key retries the build.
    bool built = false;
    const auto index =
        cache.acquire(key_for(5), [] { return tiny_index(5); }, &built);
    EXPECT_TRUE(built);
    ASSERT_NE(index, nullptr);
}

TEST(IndexCache, ConcurrentChurnStaysWithinCapacity)
{
    // Four threads hammer three keys through a capacity-1 cache while
    // holding borrowed pointers; every acquire must return a usable
    // index and the cache must never exceed its capacity.
    IndexCache cache(1);
    std::atomic<bool> failed{false};
    std::vector<std::thread> threads;
    for (int t = 0; t < 4; ++t) {
        threads.emplace_back([&, t] {
            for (int i = 0; i < 40; ++i) {
                const std::uint64_t digest = (t + i) % 3 + 1;
                const auto index = cache.acquire(
                    key_for(digest),
                    [digest] { return tiny_index(digest); });
                if (index == nullptr || index->num_positions() == 0)
                    failed.store(true);
            }
        });
    }
    for (auto& thread : threads)
        thread.join();
    EXPECT_FALSE(failed.load());
    EXPECT_LE(cache.size(), 1u);
    EXPECT_GT(cache.evictions(), 0u);
    EXPECT_EQ(cache.hits() + cache.misses(), 4u * 40u);
}

TEST(IndexCache, PublishesMetrics)
{
    obs::MetricsRegistry metrics;
    IndexCache cache(1, &metrics, "test.index");
    cache.acquire(key_for(1), [] { return tiny_index(1); });
    cache.acquire(key_for(1), [] { return tiny_index(1); });
    cache.acquire(key_for(2), [] { return tiny_index(2); });
    EXPECT_EQ(metrics.counter("test.index.cache_hits").value(), 1u);
    EXPECT_EQ(metrics.counter("test.index.cache_misses").value(), 2u);
    EXPECT_EQ(metrics.counter("test.index.cache_evictions").value(), 1u);
    EXPECT_EQ(metrics.gauge("test.index.cache_size").value(), 1);
}

TEST(IndexCache, ClearDropsEntriesButNotBorrows)
{
    IndexCache cache(4);
    const auto borrowed =
        cache.acquire(key_for(1), [] { return tiny_index(1); });
    cache.acquire(key_for(2), [] { return tiny_index(2); });
    cache.clear();
    EXPECT_EQ(cache.size(), 0u);
    EXPECT_GT(borrowed->num_positions(), 0u);
}

}  // namespace
}  // namespace darwin::index
