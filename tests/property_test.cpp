/**
 * @file
 * Parameterized property sweeps (TEST_P / INSTANTIATE_TEST_SUITE_P):
 * cross-kernel invariants checked over grids of divergence, band widths,
 * X-drop bounds, stripe heights, and D-SOFT geometries.
 */
#include <gtest/gtest.h>

#include <tuple>

#include "align/banded_sw.h"
#include "align/gactx.h"
#include "align/needleman_wunsch.h"
#include "align/smith_waterman.h"
#include "align/xdrop_reference.h"
#include "chain/chainer.h"
#include "seed/dsoft.h"
#include "seq/shuffle.h"
#include "util/rng.h"

namespace darwin {
namespace {

std::vector<std::uint8_t>
random_codes(std::size_t len, Rng& rng)
{
    std::vector<std::uint8_t> codes(len);
    for (auto& c : codes)
        c = static_cast<std::uint8_t>(rng.uniform(4));
    return codes;
}

std::vector<std::uint8_t>
mutated_copy(const std::vector<std::uint8_t>& src, double sub_rate,
             double indel_rate, Rng& rng)
{
    std::vector<std::uint8_t> out;
    for (std::size_t i = 0; i < src.size(); ++i) {
        if (rng.chance(indel_rate)) {
            if (rng.chance(0.5))
                continue;
            out.push_back(static_cast<std::uint8_t>(rng.uniform(4)));
        }
        std::uint8_t base = src[i];
        if (rng.chance(sub_rate))
            base = static_cast<std::uint8_t>(rng.uniform(4));
        out.push_back(base);
    }
    return out;
}

std::span<const std::uint8_t>
sp(const std::vector<std::uint8_t>& v)
{
    return {v.data(), v.size()};
}

// ---------------------------------------------------------------------
// Banded SW: 0 <= banded <= full SW, for every band and divergence.
// ---------------------------------------------------------------------

class BandedSwProperty
    : public ::testing::TestWithParam<std::tuple<int, double, double>> {};

TEST_P(BandedSwProperty, BoundedByFullSmithWaterman)
{
    const auto [band, sub_rate, indel_rate] = GetParam();
    Rng rng(1000 + static_cast<std::uint64_t>(band * 977) +
            static_cast<std::uint64_t>(sub_rate * 1e4));
    const auto scoring = align::ScoringParams::paper_defaults();
    for (int trial = 0; trial < 5; ++trial) {
        const auto t = random_codes(150, rng);
        const auto q = mutated_copy(t, sub_rate, indel_rate, rng);
        const auto banded = align::banded_smith_waterman(
            sp(t), sp(q), scoring, static_cast<std::size_t>(band));
        const auto full =
            align::smith_waterman_score(sp(t), sp(q), scoring);
        EXPECT_GE(banded.max_score, 0);
        EXPECT_LE(banded.max_score, full);
        // A wider band can only help.
        const auto wider = align::banded_smith_waterman(
            sp(t), sp(q), scoring, static_cast<std::size_t>(band) + 16);
        EXPECT_GE(wider.max_score, banded.max_score);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Bands, BandedSwProperty,
    ::testing::Combine(::testing::Values(0, 4, 16, 32, 64),
                       ::testing::Values(0.05, 0.25),
                       ::testing::Values(0.0, 0.03)));

// ---------------------------------------------------------------------
// GACT-X: for every stripe height and Y, the stripe engine is bounded by
// the row-granular reference from below and the full extension from
// above; its path score always equals its reported max.
// ---------------------------------------------------------------------

class GactXProperty
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(GactXProperty, BoundedAndSelfConsistent)
{
    const auto [npe, ydrop] = GetParam();
    align::GactXParams params;
    params.num_pe = static_cast<std::size_t>(npe);
    params.ydrop = ydrop;
    params.tile_size = 400;
    const align::GactXTileAligner aligner(params);
    align::XDropConfig row_config;
    row_config.ydrop = ydrop;

    Rng rng(2000 + static_cast<std::uint64_t>(npe * 131 + ydrop));
    for (int trial = 0; trial < 5; ++trial) {
        const auto t = random_codes(250, rng);
        const auto q = mutated_copy(t, 0.2, 0.03, rng);
        const auto stripe = aligner.align_tile(sp(t), sp(q));
        const auto row = align::xdrop_extend(sp(t), sp(q), row_config);
        const auto full =
            align::nw_extend_reference(sp(t), sp(q), params.scoring);
        EXPECT_GE(stripe.max_score, row.max_score);
        EXPECT_LE(stripe.max_score, full.max_score);
        if (!stripe.cigar.empty()) {
            EXPECT_TRUE(stripe.cigar.consistent_with(sp(t), sp(q)));
            EXPECT_EQ(stripe.cigar.score({t.data(), stripe.target_max},
                                         {q.data(), stripe.query_max},
                                         params.scoring),
                      stripe.max_score);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    StripesAndBounds, GactXProperty,
    ::testing::Combine(::testing::Values(1, 4, 32, 64),
                       ::testing::Values(500, 3000, 9430)));

// ---------------------------------------------------------------------
// Smith-Waterman self-consistency across scoring schemes.
// ---------------------------------------------------------------------

class ScoringProperty
    : public ::testing::TestWithParam<std::tuple<int, int, int, int>> {};

TEST_P(ScoringProperty, TracebackScoreMatchesDp)
{
    const auto [match, mismatch, open, extend] = GetParam();
    const auto scoring = align::ScoringParams::unit(
        match, mismatch, open, extend);
    Rng rng(3000 + static_cast<std::uint64_t>(match * 7 + open));
    for (int trial = 0; trial < 5; ++trial) {
        const auto t = random_codes(60, rng);
        const auto q = mutated_copy(t, 0.3, 0.05, rng);
        const auto result = align::smith_waterman(sp(t), sp(q), scoring);
        if (result.score == 0)
            continue;
        const std::span<const std::uint8_t> ts{
            t.data() + result.target_start,
            result.target_end - result.target_start};
        const std::span<const std::uint8_t> qs{
            q.data() + result.query_start,
            result.query_end - result.query_start};
        EXPECT_EQ(result.cigar.score(ts, qs, scoring), result.score);
        EXPECT_TRUE(result.cigar.consistent_with(ts, qs));
        EXPECT_EQ(result.score,
                  align::smith_waterman_score(sp(t), sp(q), scoring));
    }
}

INSTANTIATE_TEST_SUITE_P(
    Schemes, ScoringProperty,
    ::testing::Combine(::testing::Values(1, 5), ::testing::Values(-1, -4),
                       ::testing::Values(4, 10),
                       ::testing::Values(1, 3)));

// ---------------------------------------------------------------------
// D-SOFT: at most one candidate per diagonal band, for every geometry.
// ---------------------------------------------------------------------

class DsoftProperty
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(DsoftProperty, AtMostOneHitPerBand)
{
    const auto [chunk, bin] = GetParam();
    Rng rng(4000 + static_cast<std::uint64_t>(chunk * 31 + bin));
    seq::Sequence target("t", random_codes(3000, rng));
    seq::Sequence query("q", random_codes(3000, rng));
    // Plant a strong diagonal so bands actually fill.
    for (std::size_t i = 0; i < 200; ++i)
        query.codes()[1000 + i] = target.codes()[400 + i];

    const seed::SeedPattern pattern("111111111");
    const seed::SeedIndex index(target, pattern);
    seed::DsoftParams params;
    params.chunk_size = static_cast<std::size_t>(chunk);
    params.bin_size = static_cast<std::size_t>(bin);
    params.transitions = false;
    const seed::DsoftSeeder seeder(index, params);
    const auto hits = seeder.seed_all(query);

    // No two candidates of the same chunk may project into one band.
    std::set<std::pair<std::uint64_t, std::uint64_t>> bands;
    for (const auto& hit : hits) {
        const std::uint64_t chunk_id = hit.query_pos / params.chunk_size;
        const std::uint64_t chunk_end =
            std::min<std::uint64_t>((chunk_id + 1) * params.chunk_size,
                                    query.size());
        const std::uint64_t band =
            (hit.target_pos + (chunk_end - hit.query_pos)) /
            params.bin_size;
        EXPECT_TRUE(bands.insert({chunk_id, band}).second)
            << "two candidates in one diagonal band";
    }
}

INSTANTIATE_TEST_SUITE_P(Geometries, DsoftProperty,
                         ::testing::Combine(::testing::Values(32, 64, 256),
                                            ::testing::Values(32, 64,
                                                              256)));

// ---------------------------------------------------------------------
// Dinucleotide shuffle: exact 2-mer preservation across lengths/seeds.
// ---------------------------------------------------------------------

class ShuffleProperty
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(ShuffleProperty, PreservesDinucleotides)
{
    const auto [length, seed] = GetParam();
    Rng gen(static_cast<std::uint64_t>(seed));
    seq::Sequence s("x", random_codes(static_cast<std::size_t>(length),
                                      gen));
    Rng rng(static_cast<std::uint64_t>(seed) * 31 + 7);
    const auto shuffled = seq::dinucleotide_shuffle(s, rng);
    ASSERT_EQ(shuffled.size(), s.size());
    std::map<std::pair<int, int>, int> before, after;
    for (std::size_t i = 0; i + 1 < s.size(); ++i) {
        ++before[{s[i], s[i + 1]}];
        ++after[{shuffled[i], shuffled[i + 1]}];
    }
    EXPECT_EQ(before, after);
}

INSTANTIATE_TEST_SUITE_P(Sizes, ShuffleProperty,
                         ::testing::Combine(::testing::Values(10, 100,
                                                              5000),
                                            ::testing::Values(1, 2, 3)));

// ---------------------------------------------------------------------
// Chainer: chain score never exceeds the sum of member block scores and
// the chain is collinear, for random block sets.
// ---------------------------------------------------------------------

class ChainProperty : public ::testing::TestWithParam<int> {};

TEST_P(ChainProperty, ChainsAreCollinearAndScoreBounded)
{
    Rng rng(static_cast<std::uint64_t>(GetParam()));
    std::vector<align::Alignment> blocks;
    std::uint64_t t = 0;
    for (int i = 0; i < 60; ++i) {
        t += rng.uniform(3000);
        const std::uint64_t q = t + rng.uniform(400);
        const std::uint64_t len = 50 + rng.uniform(200);
        align::Alignment a;
        a.target_start = t;
        a.target_end = t + len;
        a.query_start = q;
        a.query_end = q + len;
        a.score = 2000 + static_cast<align::Score>(rng.uniform(9000));
        a.cigar.push(align::EditOp::Match,
                     static_cast<std::uint32_t>(len));
        blocks.push_back(a);
        t += len;
    }
    chain::ChainParams params;
    params.min_chain_score = 0.0;
    const auto chains = chain::chain_alignments(blocks, params);
    for (const auto& chain : chains) {
        double member_sum = 0.0;
        for (std::size_t k = 0; k < chain.members.size(); ++k) {
            const auto& cur = blocks[chain.members[k]];
            member_sum += static_cast<double>(cur.score);
            if (k > 0) {
                const auto& prev = blocks[chain.members[k - 1]];
                EXPECT_LT(prev.target_start, cur.target_start);
                EXPECT_LT(prev.target_end, cur.target_end);
                EXPECT_LT(prev.query_start, cur.query_start);
                EXPECT_LT(prev.query_end, cur.query_end);
            }
        }
        EXPECT_LE(chain.score, member_sum + 1e-9);
        EXPECT_GT(chain.score, 0.0);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChainProperty,
                         ::testing::Values(11, 22, 33, 44, 55));

}  // namespace
}  // namespace darwin
