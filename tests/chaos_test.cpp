/**
 * @file
 * Chaos tests for the fault-tolerant batch engine: a 32-pair manifest
 * driven under deterministic fault injection, cooperative budgets,
 * degraded retries, external shutdown, and FatalError escalation. The
 * load-bearing property throughout: a fault in one pair quarantines
 * only that pair, every healthy pair's output stays bit-identical to
 * the serial pipeline, and the `batch.fault.*` counters reconcile
 * (clean + degraded + quarantined + interrupted == pairs admitted).
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <map>
#include <thread>
#include <tuple>

#include "fault/degrade.h"
#include "batch/metrics.h"
#include "batch/scheduler.h"
#include "fault/cancel.h"
#include "fault/fault_plan.h"
#include "fault/quarantine.h"
#include "synth/species.h"
#include "util/logging.h"
#include "util/strings.h"
#include "wga/pipeline.h"

namespace darwin::batch {
namespace {

/** RAII installation of a fault plan; uninstalls even on test failure. */
struct PlanGuard {
    explicit PlanGuard(const fault::FaultPlan& plan)
    {
        fault::install_fault_plan(&plan);
    }
    ~PlanGuard() { fault::install_fault_plan(nullptr); }
    PlanGuard(const PlanGuard&) = delete;
    PlanGuard& operator=(const PlanGuard&) = delete;
};

/**
 * 32 tiny pairs cycling the paper's four species specs with distinct
 * seeds — small enough that 32 serial references are cheap, divergent
 * enough that every pair produces real alignments to compare.
 */
struct ChaosFixture {
    std::vector<synth::SpeciesPair> pairs;
    std::vector<BatchJob> jobs;
    std::vector<wga::WgaResult> serial;
    wga::WgaParams params = wga::WgaParams::darwin_defaults();

    ChaosFixture()
    {
        synth::AncestorConfig shape;
        shape.num_chromosomes = 1;
        shape.chromosome_length = 8'000;
        shape.exons_per_chromosome = 4;
        const auto specs = synth::paper_species_pairs();
        const wga::WgaPipeline pipeline(params);
        for (std::size_t i = 0; i < 32; ++i) {
            pairs.push_back(synth::make_species_pair(
                specs[i % specs.size()], shape, 9'000 + i));
        }
        for (std::size_t i = 0; i < pairs.size(); ++i) {
            jobs.push_back({pairs[i].spec.pair_name + "#" +
                                std::to_string(i),
                            &pairs[i].target.genome,
                            &pairs[i].query.genome});
            serial.push_back(pipeline.run(pairs[i].target.genome,
                                          pairs[i].query.genome));
            // The isolation tests fire probes in every stage, which
            // only exercises anything if every pair really aligns.
            EXPECT_FALSE(serial.back().alignments.empty())
                << "fixture pair " << i << " produced no alignments";
        }
    }
};

const ChaosFixture&
chaos_fixture()
{
    static const ChaosFixture fixture;
    return fixture;
}

using AlignmentKey = std::tuple<std::uint64_t, std::uint64_t,
                                std::uint64_t, std::uint64_t, int,
                                align::Score, std::string>;

AlignmentKey
alignment_key(const align::Alignment& a)
{
    return {a.target_start, a.target_end,   a.query_start,
            a.query_end,    static_cast<int>(a.query_strand),
            a.score,        a.cigar.to_string()};
}

void
expect_identical(const wga::WgaResult& expected,
                 const wga::WgaResult& actual, const std::string& label)
{
    SCOPED_TRACE(label);
    ASSERT_EQ(expected.alignments.size(), actual.alignments.size());
    for (std::size_t i = 0; i < expected.alignments.size(); ++i) {
        EXPECT_EQ(alignment_key(expected.alignments[i]),
                  alignment_key(actual.alignments[i]));
    }
    ASSERT_EQ(expected.chains.size(), actual.chains.size());
    for (std::size_t i = 0; i < expected.chains.size(); ++i) {
        EXPECT_EQ(expected.chains[i].score, actual.chains[i].score);
        EXPECT_EQ(expected.chains[i].members, actual.chains[i].members);
    }
}

BatchOptions
chaos_options(const ChaosFixture& fixture)
{
    BatchOptions options;
    options.params = fixture.params;
    options.num_threads = 4;
    // Small shards/queues so pairs interleave and faults land mid-flight.
    options.shard_length = 2'048;
    options.queue_capacity = 4;
    return options;
}

void
expect_fault_counters_reconcile(MetricsRegistry& metrics,
                                std::size_t pairs_in)
{
    const auto count = [&metrics](const char* name) {
        return metrics.counter(name).value();
    };
    EXPECT_EQ(count("batch.fault.clean") + count("batch.fault.degraded") +
                  count("batch.fault.quarantined") +
                  count("batch.fault.interrupted"),
              pairs_in);
    EXPECT_EQ(count("batch.pairs_completed"), pairs_in);
    // The run is over: every stage queue drained back to empty.
    for (const char* stage : {"prepare", "seed", "filter", "extend",
                              "chain"}) {
        EXPECT_EQ(metrics.gauge(strprintf("batch.queue.%s.depth", stage))
                      .value(),
                  0)
            << stage;
    }
}

/**
 * The tentpole acceptance test: seven pairs are killed at seven
 * different probe points — task wrappers, the D-SOFT chunk loop, the
 * filter kernels, the GACT-X stripe loop, plus one simulated OOM — and
 * the other 25 pairs must come out bit-identical to the serial
 * pipeline, with the books balanced.
 */
TEST(ChaosIsolation, FaultsAcrossProbePointsQuarantineOnlyTheirPair)
{
    const auto& fixture = chaos_fixture();
    const auto plan = fault::FaultPlan::parse(
        "batch.prepare:throw:pair=0;"
        "seed.chunk:throw:pair=3;"
        "filter.tile:throw:pair=5;"
        "extend.stripe:throw:pair=9;"
        "batch.chain:throw:pair=12;"
        "filter.hit:oom:pair=15;"
        "batch.extend:throw:pair=18");
    PlanGuard guard(plan);

    // expected stage and reason per quarantined pair index
    const std::map<std::size_t, std::pair<std::string, fault::FailReason>>
        expected = {
            {0, {"prepare", fault::FailReason::Injected}},
            {3, {"seed", fault::FailReason::Injected}},
            {5, {"filter", fault::FailReason::Injected}},
            {9, {"extend", fault::FailReason::Injected}},
            {12, {"chain", fault::FailReason::Injected}},
            {15, {"filter", fault::FailReason::OutOfMemory}},
            {18, {"extend", fault::FailReason::Injected}},
        };

    BatchOptions options = chaos_options(fixture);
    // Budgets armed but generous: the fault layer is live, yet healthy
    // pairs must still match the serial pipeline bit for bit.
    options.pair_budget = {300.0, 1ull << 40, 1ull << 40};

    MetricsRegistry metrics;
    BatchScheduler scheduler(options, &metrics);
    const auto results = scheduler.run(fixture.jobs);

    ASSERT_EQ(results.size(), fixture.jobs.size());
    std::size_t quarantined = 0;
    for (std::size_t i = 0; i < results.size(); ++i) {
        const auto& result = results[i];
        EXPECT_EQ(result.name, fixture.jobs[i].name);
        const auto it = expected.find(i);
        if (it == expected.end()) {
            EXPECT_EQ(result.status, fault::PairStatus::Clean)
                << "pair " << i << " should be untouched";
            expect_identical(fixture.serial[i], result.result,
                             result.name);
            continue;
        }
        ++quarantined;
        SCOPED_TRACE(result.name);
        EXPECT_EQ(result.status, fault::PairStatus::Quarantined);
        EXPECT_TRUE(result.result.alignments.empty());
        EXPECT_EQ(result.quarantine.name, result.name);
        EXPECT_EQ(result.quarantine.pair_index, i);
        EXPECT_EQ(result.quarantine.stage, it->second.first);
        EXPECT_EQ(result.quarantine.reason, it->second.second);
        // Injected/OOM faults earn no retry.
        EXPECT_EQ(result.attempts, 1u);
        EXPECT_FALSE(result.quarantine.message.empty());
    }
    EXPECT_EQ(quarantined, expected.size());
    EXPECT_EQ(metrics.counter("batch.fault.quarantined").value(),
              expected.size());
    EXPECT_EQ(metrics.counter("batch.fault.clean").value(),
              fixture.jobs.size() - expected.size());
    EXPECT_GE(plan.injected(), 6u);  // the six throw entries all fired
    expect_fault_counters_reconcile(metrics, fixture.jobs.size());
}

/**
 * Measure the DP cells one serial run charges, by installing a scope on
 * the calling thread (pool-less runs never leave it). This is how the
 * budget tests calibrate themselves instead of hardcoding cell counts.
 */
std::uint64_t
measure_cells(const wga::WgaParams& params, const synth::SpeciesPair& pair)
{
    fault::CancelToken token;
    token.arm(fault::Budget{});  // armed, unlimited: count, never trip
    fault::ContextScope scope(&token, 0);
    const wga::WgaPipeline pipeline(params);
    pipeline.run(pair.target.genome, pair.query.genome);
    return token.cells_charged();
}

/** Cell costs of pair #1 at full and degraded parameters. */
struct Calibration {
    std::uint64_t full = 0;
    std::uint64_t degraded = 0;
    wga::WgaParams degraded_params;
};

const Calibration&
calibration()
{
    static const Calibration cal = [] {
        const auto& fixture = chaos_fixture();
        Calibration c;
        c.degraded_params =
            apply_degrade(fixture.params, DegradePolicy{});
        c.full = measure_cells(fixture.params, fixture.pairs[1]);
        c.degraded = measure_cells(c.degraded_params, fixture.pairs[1]);
        return c;
    }();
    return cal;
}

TEST(ChaosBudgets, CellOverrunEarnsOneDegradedRetry)
{
    const auto& fixture = chaos_fixture();
    const auto& cal = calibration();
    ASSERT_GT(cal.full, 0u);
    ASSERT_LT(cal.degraded, cal.full)
        << "degraded parameters must shrink the workload";
    if (cal.full < cal.degraded + cal.degraded / 4) {
        GTEST_SKIP() << "full/degraded cell costs too close to separate "
                        "with a budget (" << cal.full << " vs "
                     << cal.degraded << ")";
    }
    // A budget the full attempt blows through but the degraded retry
    // fits under, with margin on both sides.
    BatchOptions options = chaos_options(fixture);
    options.pair_budget.max_cells =
        cal.degraded + (cal.full - cal.degraded) / 2;

    MetricsRegistry metrics;
    BatchScheduler scheduler(options, &metrics);
    const auto results = scheduler.run({fixture.jobs[1]});

    ASSERT_EQ(results.size(), 1u);
    EXPECT_EQ(results[0].status, fault::PairStatus::Degraded);
    EXPECT_EQ(results[0].attempts, 2u);
    // The degraded result is the *serial* result at degraded parameters
    // — the retry changes knobs, never correctness.
    const wga::WgaPipeline degraded_pipeline(cal.degraded_params);
    const auto reference = degraded_pipeline.run(
        fixture.pairs[1].target.genome, fixture.pairs[1].query.genome);
    expect_identical(reference, results[0].result, results[0].name);
    EXPECT_EQ(metrics.counter("batch.fault.budget_overruns").value(), 1u);
    EXPECT_EQ(metrics.counter("batch.fault.retries").value(), 1u);
    EXPECT_EQ(metrics.counter("batch.fault.degraded").value(), 1u);
    expect_fault_counters_reconcile(metrics, 1);
}

TEST(ChaosBudgets, ExhaustedRetryQuarantinesWithCellsReason)
{
    const auto& fixture = chaos_fixture();
    const auto& cal = calibration();
    ASSERT_GT(cal.degraded, 8u);
    // Too tight even for the degraded retry.
    BatchOptions options = chaos_options(fixture);
    options.pair_budget.max_cells = cal.degraded / 2;

    MetricsRegistry metrics;
    BatchScheduler scheduler(options, &metrics);
    const auto results = scheduler.run({fixture.jobs[1]});

    ASSERT_EQ(results.size(), 1u);
    EXPECT_EQ(results[0].status, fault::PairStatus::Quarantined);
    EXPECT_EQ(results[0].attempts, 2u);
    EXPECT_EQ(results[0].quarantine.reason, fault::FailReason::Cells);
    EXPECT_NE(results[0].quarantine.message.find("cell budget"),
              std::string::npos)
        << results[0].quarantine.message;
    EXPECT_GT(results[0].quarantine.cells_charged,
              options.pair_budget.max_cells);
    EXPECT_EQ(metrics.counter("batch.fault.budget_overruns").value(), 2u);
    EXPECT_EQ(metrics.counter("batch.fault.retries").value(), 1u);
    expect_fault_counters_reconcile(metrics, 1);
}

TEST(ChaosBudgets, NoRetryQuarantinesOnFirstOverrun)
{
    const auto& fixture = chaos_fixture();
    const auto& cal = calibration();
    ASSERT_GT(cal.degraded, 8u);
    BatchOptions options = chaos_options(fixture);
    options.pair_budget.max_cells = cal.degraded / 2;
    options.degraded_retry = false;

    MetricsRegistry metrics;
    BatchScheduler scheduler(options, &metrics);
    const auto results = scheduler.run({fixture.jobs[1]});

    ASSERT_EQ(results.size(), 1u);
    EXPECT_EQ(results[0].status, fault::PairStatus::Quarantined);
    EXPECT_EQ(results[0].attempts, 1u);
    EXPECT_EQ(metrics.counter("batch.fault.retries").value(), 0u);
    expect_fault_counters_reconcile(metrics, 1);
}

TEST(ChaosBudgets, StalledPairTripsWallBudget)
{
    const auto& fixture = chaos_fixture();
    // The wall budget sits well above the pair's natural runtime, and
    // every filter.hit visit sleeps half of it — so only the stalls can
    // blow the deadline, and the poll that observes the overrun is in
    // the filter stage. Single job, single worker keeps that trip point
    // deterministic (wall clocks are shared, so a multi-pair manifest
    // would let one pair's stall burn its neighbors' budgets too).
    const auto plan =
        fault::FaultPlan::parse("filter.hit:stall:ms=1000:count=0");
    PlanGuard guard(plan);

    BatchOptions options = chaos_options(fixture);
    options.pair_budget.wall_seconds = 2.0;
    options.degraded_retry = false;
    options.num_threads = 1;

    MetricsRegistry metrics;
    BatchScheduler scheduler(options, &metrics);
    const auto results = scheduler.run({fixture.jobs[1]});

    ASSERT_EQ(results.size(), 1u);
    EXPECT_EQ(results[0].status, fault::PairStatus::Quarantined);
    EXPECT_EQ(results[0].quarantine.reason, fault::FailReason::WallTime);
    EXPECT_EQ(results[0].quarantine.stage, "filter");
    EXPECT_EQ(results[0].attempts, 1u);
    EXPECT_GT(results[0].quarantine.elapsed_seconds, 0.0);
    expect_fault_counters_reconcile(metrics, 1);
}

TEST(ChaosShutdown, RequestedShutdownInterruptsInFlightPairs)
{
    const auto& fixture = chaos_fixture();
    // Slow every batch task so the run is still mid-flight when the
    // shutdown flag lands.
    const auto plan =
        fault::FaultPlan::parse("batch.*:stall:ms=30:count=0");
    PlanGuard guard(plan);
    fault::clear_shutdown();

    BatchOptions options = chaos_options(fixture);
    const std::vector<BatchJob> jobs(fixture.jobs.begin(),
                                     fixture.jobs.begin() + 8);
    MetricsRegistry metrics;
    BatchScheduler scheduler(options, &metrics);

    std::vector<BatchPairResult> results;
    std::thread runner(
        [&] { results = scheduler.run(jobs); });
    std::this_thread::sleep_for(std::chrono::milliseconds(60));
    fault::request_shutdown();
    runner.join();
    fault::clear_shutdown();

    ASSERT_EQ(results.size(), jobs.size());
    std::size_t interrupted = 0;
    for (const auto& result : results) {
        if (result.status == fault::PairStatus::Interrupted) {
            ++interrupted;
            EXPECT_TRUE(result.result.alignments.empty());
            EXPECT_EQ(result.quarantine.reason,
                      fault::FailReason::Interrupted);
        }
    }
    EXPECT_GT(interrupted, 0u) << "shutdown landed after the run ended";
    EXPECT_EQ(metrics.counter("batch.fault.interrupted").value(),
              interrupted);
    expect_fault_counters_reconcile(metrics, jobs.size());
}

TEST(ChaosFatal, FatalErrorEscapesIsolationWithPairAttached)
{
    const auto& fixture = chaos_fixture();
    BatchOptions options = chaos_options(fixture);
    options.num_threads = 2;
    options.on_pair_complete = [](const BatchPairResult&) {
        throw FatalError("cannot write output directory");
    };
    BatchScheduler scheduler(options);
    const std::vector<BatchJob> jobs(fixture.jobs.begin(),
                                     fixture.jobs.begin() + 4);
    try {
        scheduler.run(jobs);
        FAIL() << "a FatalError from on_pair_complete must abort the run";
    } catch (const FatalError& error) {
        const std::string what = error.what();
        EXPECT_NE(what.find("on_pair_complete"), std::string::npos)
            << what;
        EXPECT_NE(what.find("pair '"), std::string::npos) << what;
        EXPECT_NE(what.find("cannot write output directory"),
                  std::string::npos)
            << what;
    }
}

}  // namespace
}  // namespace darwin::batch
