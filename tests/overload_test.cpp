/**
 * @file
 * Overload-safety tests for the serve daemon (src/serve/, src/fault/):
 * admission control (queue and in-flight-bp sheds carry machine-
 * readable `overloaded` errors with a retry_after_ms hint), deadline
 * propagation (expired-in-queue requests are shed without running;
 * live ones have the wall budget clamped), the circuit breaker state
 * machine (unit-level with fake time, and end-to-end: an open breaker
 * serves degraded output byte-identical to an apply_degrade'd serial
 * run), and safe AF_UNIX socket claiming (a live daemon's socket is
 * refused; a stale one is taken over).
 */
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/un.h>
#include <unistd.h>

#include <chrono>
#include <condition_variable>
#include <cstring>
#include <fstream>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "fault/breaker.h"
#include "fault/degrade.h"
#include "fault/fault_plan.h"
#include "serve/protocol.h"
#include "serve/server.h"
#include "serve/socket_claim.h"
#include "seq/fasta.h"
#include "synth/species.h"
#include "util/strings.h"
#include "wga/maf.h"
#include "wga/pipeline.h"

namespace darwin::serve {
namespace {

using fault::BreakerOptions;
using fault::BreakerState;
using fault::CircuitBreaker;

using Clock = CircuitBreaker::Clock;

// ---------------------------------------------------------------------
// CircuitBreaker unit tests: fake time, no sleeping.

TEST(Breaker, StartsClosedAndTripsAtRatio)
{
    BreakerOptions options;
    options.window = 4;
    options.min_samples = 4;
    options.trip_ratio = 0.5;
    CircuitBreaker breaker(options);
    const auto t0 = Clock::now();

    EXPECT_EQ(breaker.state(), BreakerState::Closed);
    EXPECT_FALSE(breaker.should_degrade(t0));

    // Three samples: below min_samples, never trips even at 100%.
    breaker.record(true, t0);
    breaker.record(true, t0);
    breaker.record(true, t0);
    EXPECT_EQ(breaker.state(), BreakerState::Closed);

    // Fourth sample reaches min_samples with 4/4 failures -> Open.
    breaker.record(true, t0);
    EXPECT_EQ(breaker.state(), BreakerState::Open);
    EXPECT_EQ(breaker.trips(), 1u);
    EXPECT_TRUE(breaker.should_degrade(t0));
}

TEST(Breaker, HealthyWindowNeverTrips)
{
    BreakerOptions options;
    options.window = 8;
    options.min_samples = 4;
    options.trip_ratio = 0.5;
    CircuitBreaker breaker(options);
    const auto t0 = Clock::now();
    // 3 failures in a window of 8 stays under the 0.5 ratio.
    for (int i = 0; i < 5; ++i)
        breaker.record(false, t0);
    for (int i = 0; i < 3; ++i)
        breaker.record(true, t0);
    EXPECT_EQ(breaker.state(), BreakerState::Closed);
    EXPECT_EQ(breaker.trips(), 0u);
}

TEST(Breaker, WindowEvictsOldOutcomes)
{
    BreakerOptions options;
    options.window = 4;
    options.min_samples = 4;
    options.trip_ratio = 0.75;
    CircuitBreaker breaker(options);
    const auto t0 = Clock::now();
    // Early failures scroll out of the window as successes arrive, so
    // sparse failures never trip...
    breaker.record(true, t0);
    breaker.record(true, t0);
    breaker.record(false, t0);
    breaker.record(false, t0);  // window [f,f,s,s]: 0.5 < 0.75
    breaker.record(false, t0);
    breaker.record(false, t0);  // window [s,s,s,s]
    breaker.record(true, t0);
    breaker.record(true, t0);  // window [s,s,f,f]: 0.5 < 0.75
    EXPECT_EQ(breaker.state(), BreakerState::Closed);
    EXPECT_EQ(breaker.trips(), 0u);
    // ...and the ratio is judged over the window alone: one more
    // failure makes the last four [s,f,f,f] = 0.75 and trips, even
    // though the all-time ratio (5/9) is still below the threshold.
    breaker.record(true, t0);
    EXPECT_EQ(breaker.state(), BreakerState::Open);
    EXPECT_EQ(breaker.trips(), 1u);
}

TEST(Breaker, CooldownHandsOutExactlyOneHalfOpenProbe)
{
    BreakerOptions options;
    options.window = 2;
    options.min_samples = 2;
    options.trip_ratio = 0.5;
    options.cooldown_seconds = 10.0;
    CircuitBreaker breaker(options);
    const auto t0 = Clock::now();

    breaker.record(true, t0);
    breaker.record(true, t0);
    ASSERT_EQ(breaker.state(), BreakerState::Open);

    // Mid-cooldown: everything degrades.
    const auto t_mid = t0 + std::chrono::seconds(5);
    EXPECT_TRUE(breaker.should_degrade(t_mid));
    EXPECT_TRUE(breaker.should_degrade(t_mid));

    // Cooldown elapsed: exactly one caller gets the full-fidelity
    // probe; everyone else keeps degrading until it resolves.
    const auto t_after = t0 + std::chrono::seconds(11);
    EXPECT_FALSE(breaker.should_degrade(t_after));
    EXPECT_EQ(breaker.state(), BreakerState::HalfOpen);
    EXPECT_TRUE(breaker.should_degrade(t_after));
    EXPECT_TRUE(breaker.should_degrade(t_after));
}

TEST(Breaker, HalfOpenProbeOutcomeClosesOrReopens)
{
    BreakerOptions options;
    options.window = 2;
    options.min_samples = 2;
    options.trip_ratio = 0.5;
    options.cooldown_seconds = 1.0;
    CircuitBreaker breaker(options);
    const auto t0 = Clock::now();

    breaker.record(true, t0);
    breaker.record(true, t0);
    ASSERT_EQ(breaker.state(), BreakerState::Open);
    ASSERT_EQ(breaker.trips(), 1u);

    // Probe fails -> re-open (a second trip), another full cooldown.
    auto t = t0 + std::chrono::seconds(2);
    EXPECT_FALSE(breaker.should_degrade(t));
    breaker.record(true, t);
    EXPECT_EQ(breaker.state(), BreakerState::Open);
    EXPECT_EQ(breaker.trips(), 2u);
    EXPECT_TRUE(breaker.should_degrade(t));

    // Next probe succeeds -> Closed, window reset (old failures must
    // not instantly re-trip).
    t += std::chrono::seconds(2);
    EXPECT_FALSE(breaker.should_degrade(t));
    breaker.record(false, t);
    EXPECT_EQ(breaker.state(), BreakerState::Closed);
    EXPECT_FALSE(breaker.should_degrade(t));
    breaker.record(true, t);  // 1 failure, below min_samples
    EXPECT_EQ(breaker.state(), BreakerState::Closed);
}

// ---------------------------------------------------------------------
// Server admission / deadline / breaker integration. Reuses the same
// synthetic-pair fixture pattern as serve_test.cpp.

struct OverloadFixture {
    std::string target_path;
    std::string query_path;
    std::string reference_maf;           ///< full-fidelity one-shot MAF
    std::string degraded_reference_maf;  ///< apply_degrade'd one-shot MAF

    OverloadFixture()
    {
        synth::AncestorConfig shape;
        shape.num_chromosomes = 1;
        shape.chromosome_length = 8'000;
        shape.exons_per_chromosome = 4;
        const auto pair = synth::make_species_pair(
            synth::paper_species_pairs().front(), shape, 777);

        const std::string dir = ::testing::TempDir();
        const std::string tag = "overload_" + std::to_string(::getpid());
        target_path = dir + "/" + tag + "_target.fa";
        query_path = dir + "/" + tag + "_query.fa";
        reference_maf = dir + "/" + tag + "_reference.maf";
        degraded_reference_maf = dir + "/" + tag + "_degraded.maf";
        seq::write_genome_file(target_path, pair.target.genome);
        seq::write_genome_file(query_path, pair.query.genome);

        const wga::WgaParams params = wga::WgaParams::darwin_defaults();
        const wga::WgaPipeline pipeline(params);
        const auto result =
            pipeline.run(pair.target.genome, pair.query.genome);
        wga::write_maf_file(reference_maf, result.alignments,
                            pair.target.genome, pair.query.genome);

        // The degraded contract: what an open-breaker serve must emit,
        // reproduced by a serial run at the shared degraded policy.
        const wga::WgaParams degraded =
            fault::apply_degrade(params, ServerOptions{}.degrade);
        const wga::WgaPipeline degraded_pipeline(degraded);
        const auto degraded_result =
            degraded_pipeline.run(pair.target.genome, pair.query.genome);
        wga::write_maf_file(degraded_reference_maf,
                            degraded_result.alignments,
                            pair.target.genome, pair.query.genome);
    }
};

const OverloadFixture&
fixture()
{
    static const OverloadFixture instance;
    return instance;
}

std::string
slurp(const std::string& path)
{
    std::ifstream in(path, std::ios::binary);
    return {std::istreambuf_iterator<char>(in),
            std::istreambuf_iterator<char>()};
}

std::string
align_line(const std::string& id, const std::string& out,
           const std::string& extra = "")
{
    const auto& f = fixture();
    return strprintf("{\"op\": \"align\", \"id\": %s, \"target\": %s, "
                     "\"query\": %s, \"out\": %s%s}",
                     json_quote(id).c_str(),
                     json_quote(f.target_path).c_str(),
                     json_quote(f.query_path).c_str(),
                     json_quote(out).c_str(), extra.c_str());
}

/** RAII installation of a fault plan; uninstalls even on test failure. */
class PlanGuard {
  public:
    explicit PlanGuard(const fault::FaultPlan& plan)
    {
        fault::install_fault_plan(&plan);
    }
    ~PlanGuard() { fault::install_fault_plan(nullptr); }
};

/** Thread-safe response collector for async submit() tests. */
class Collector {
  public:
    Server::ResponseSink
    sink()
    {
        return [this](const std::string& line) {
            std::lock_guard lock(mutex_);
            lines_.push_back(line);
            cv_.notify_all();
        };
    }

    /** Block until `n` responses arrived (fails the test on timeout). */
    std::vector<std::string>
    wait_for(std::size_t n, std::chrono::seconds timeout =
                                std::chrono::seconds(60))
    {
        std::unique_lock lock(mutex_);
        EXPECT_TRUE(cv_.wait_for(lock, timeout,
                                 [&] { return lines_.size() >= n; }))
            << "timed out waiting for " << n << " responses, have "
            << lines_.size();
        return lines_;
    }

    std::size_t
    count()
    {
        std::lock_guard lock(mutex_);
        return lines_.size();
    }

  private:
    std::mutex mutex_;
    std::condition_variable cv_;
    std::vector<std::string> lines_;
};

/** The subset of `lines` containing `needle`. */
std::vector<std::string>
matching(const std::vector<std::string>& lines, const std::string& needle)
{
    std::vector<std::string> found;
    for (const auto& line : lines)
        if (line.find(needle) != std::string::npos)
            found.push_back(line);
    return found;
}

TEST(Admission, QueueBoundShedsWithRetryAfterHint)
{
    // One worker held on a stalled request, a one-deep admission
    // bound: the third align must be shed synchronously with the
    // machine-readable overload shape.
    const auto plan =
        fault::FaultPlan::parse("serve.dispatch:stall:ms=400:count=0");
    PlanGuard guard(plan);

    ServerOptions options;
    options.num_workers = 1;
    options.max_queue = 1;
    Server server(options);
    Collector collector;

    const std::string out = ::testing::TempDir() + "/overload_q.maf";
    ASSERT_TRUE(server.submit(
        align_line("a", out, ", \"budget\": {\"max_cells\": 1}"),
        collector.sink()));
    // Wait for the worker to pop request a (it then stalls), so b is
    // deterministically queued and c deterministically over the bound.
    for (int i = 0; i < 1000 && server.queue_depth() > 0; ++i)
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    ASSERT_EQ(server.queue_depth(), 0u);
    ASSERT_TRUE(server.submit(
        align_line("b", out, ", \"budget\": {\"max_cells\": 1}"),
        collector.sink()));
    ASSERT_TRUE(server.submit(
        align_line("c", out, ", \"budget\": {\"max_cells\": 1}"),
        collector.sink()));

    const auto lines = collector.wait_for(3);
    const auto shed = matching(lines, "\"reason\": \"overloaded\"");
    ASSERT_EQ(shed.size(), 1u) << lines.size();
    EXPECT_NE(shed[0].find("\"id\": \"c\""), std::string::npos)
        << shed[0];
    EXPECT_NE(shed[0].find("\"retry_after_ms\": "), std::string::npos)
        << shed[0];
    // The hint is a positive integer (EWMA-derived, >= 1 by clamp).
    EXPECT_EQ(shed[0].find("\"retry_after_ms\": 0,"), std::string::npos);
    EXPECT_EQ(shed[0].find("\"retry_after_ms\": 0}"), std::string::npos);

    EXPECT_EQ(
        server.metrics().find_counter("serve.admission.shed")->value(),
        1u);
    EXPECT_EQ(
        server.metrics().find_counter("serve.admission.accepted")->value(),
        2u);
    server.stop();
}

TEST(Admission, InflightBpCapShedsButLoneOversizedRequestRuns)
{
    const auto plan =
        fault::FaultPlan::parse("serve.dispatch:stall:ms=300:count=0");
    PlanGuard guard(plan);

    ServerOptions options;
    options.num_workers = 1;
    options.max_inflight_bp = 1;  // every align is oversized
    Server server(options);
    Collector collector;

    const std::string out = ::testing::TempDir() + "/overload_bp.maf";
    // First align: over the cap on its own, but in-flight work is zero,
    // so it is admitted (a sizing mistake must not become an outage).
    ASSERT_TRUE(server.submit(
        align_line("big", out, ", \"budget\": {\"max_cells\": 1}"),
        collector.sink()));
    // Second align: in-flight bp is nonzero, cap exceeded -> shed.
    ASSERT_TRUE(server.submit(
        align_line("late", out, ", \"budget\": {\"max_cells\": 1}"),
        collector.sink()));

    const auto lines = collector.wait_for(2);
    const auto shed = matching(lines, "\"reason\": \"overloaded\"");
    ASSERT_EQ(shed.size(), 1u);
    EXPECT_NE(shed[0].find("\"id\": \"late\""), std::string::npos)
        << shed[0];
    EXPECT_NE(shed[0].find("bp cap"), std::string::npos) << shed[0];
    server.stop();
}

TEST(Admission, ControlOpsAreNeverShed)
{
    ServerOptions options;
    options.num_workers = 1;
    options.max_queue = 1;
    Server server(options);
    // Pings sail through admission regardless of the align bound.
    for (int i = 0; i < 8; ++i) {
        const std::string resp = server.handle_line(
            strprintf("{\"op\": \"ping\", \"id\": \"p%d\"}", i));
        EXPECT_NE(resp.find("\"status\": \"ok\""), std::string::npos);
    }
    EXPECT_EQ(server.metrics().find_counter("serve.admission.shed"),
              nullptr);
    server.stop();
}

TEST(Deadline, ExpiredInQueueIsShedWithoutRunning)
{
    const auto plan =
        fault::FaultPlan::parse("serve.dispatch:stall:ms=300:count=0");
    PlanGuard guard(plan);

    ServerOptions options;
    options.num_workers = 1;
    Server server(options);
    Collector collector;

    const std::string out = ::testing::TempDir() + "/overload_dl.maf";
    ASSERT_TRUE(server.submit(
        align_line("slow", out, ", \"budget\": {\"max_cells\": 1}"),
        collector.sink()));
    for (int i = 0; i < 1000 && server.queue_depth() > 0; ++i)
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    // This request's 1 ms deadline will have expired long before the
    // stalled worker gets to it: it must be shed at dispatch, not run.
    ASSERT_TRUE(server.submit(
        align_line("dead", out, ", \"deadline_ms\": 1"),
        collector.sink()));

    const auto lines = collector.wait_for(2);
    const auto shed = matching(lines, "\"reason\": \"deadline\"");
    ASSERT_EQ(shed.size(), 1u);
    EXPECT_NE(shed[0].find("\"id\": \"dead\""), std::string::npos)
        << shed[0];
    EXPECT_NE(shed[0].find("\"retry_after_ms\": "), std::string::npos);
    EXPECT_EQ(
        server.metrics().find_counter("serve.deadline.expired")->value(),
        1u);
    // The deadline shed never produced an output file.
    EXPECT_FALSE(std::ifstream(out).good());
    server.stop();
}

TEST(Deadline, ClampsWallBudgetForRunningRequests)
{
    Server server(ServerOptions{});
    const std::string out = ::testing::TempDir() + "/overload_clamp.maf";
    // 1 ms of deadline cannot cover a real align: the wall budget is
    // clamped to the time remaining and trips with the walltime tag.
    const std::string resp = server.handle_line(
        align_line("w", out, ", \"deadline_ms\": 1"));
    EXPECT_NE(resp.find("\"status\": \"error\""), std::string::npos)
        << resp;
    EXPECT_NE(resp.find("\"reason\": \"walltime\""), std::string::npos)
        << resp;
    server.stop();
}

TEST(Protocol, ParsesDeadlineAndRejectsNegative)
{
    const Request request = parse_request(
        "{\"op\": \"align\", \"id\": \"1\", \"target\": \"t\", "
        "\"query\": \"q\", \"out\": \"o\", \"deadline_ms\": 1500}");
    EXPECT_DOUBLE_EQ(request.deadline_ms, 1500.0);
    EXPECT_THROW(
        parse_request("{\"op\": \"align\", \"id\": \"1\", "
                      "\"target\": \"t\", \"query\": \"q\", "
                      "\"out\": \"o\", \"deadline_ms\": -1}"),
        ProtocolError);
}

TEST(BreakerServe, TripsOnBudgetFailuresAndServesDegraded)
{
    const auto& f = fixture();
    ServerOptions options;
    options.breaker.window = 4;
    options.breaker.min_samples = 2;
    options.breaker.trip_ratio = 0.5;
    options.breaker.cooldown_seconds = 3600.0;  // stay open
    Server server(options);

    // Two full-fidelity budget trips open the breaker.
    const std::string out = ::testing::TempDir() + "/overload_trip.maf";
    for (int i = 0; i < 2; ++i) {
        const std::string resp = server.handle_line(align_line(
            strprintf("t%d", i), out,
            ", \"budget\": {\"max_cells\": 1}"));
        ASSERT_NE(resp.find("\"reason\": \"cells\""), std::string::npos)
            << resp;
    }
    EXPECT_EQ(server.breaker_state(), fault::BreakerState::Open);
    EXPECT_EQ(
        server.metrics().find_counter("serve.breaker.trips")->value(),
        1u);

    // The next request is served degraded — flagged in the response,
    // counted, and byte-identical to the serial apply_degrade'd run.
    const std::string degraded_out =
        ::testing::TempDir() + "/overload_degraded.maf";
    const std::string resp =
        server.handle_line(align_line("d", degraded_out));
    ASSERT_NE(resp.find("\"status\": \"ok\""), std::string::npos) << resp;
    EXPECT_NE(resp.find("\"degraded\": true"), std::string::npos) << resp;
    // Byte-identical to a serial run with apply_degrade'd params — the
    // degraded contract from fault/degrade.h. (On this small fixture
    // the narrowed band still covers every true alignment, so the
    // degraded bytes may equal the full-fidelity bytes; the flag and
    // counter below are what prove degraded mode actually ran.)
    EXPECT_EQ(slurp(degraded_out), slurp(f.degraded_reference_maf));
    EXPECT_GE(server.metrics()
                  .find_counter("serve.breaker.degraded_served")
                  ->value(),
              1u);
    // status reports the breaker state for operators.
    const std::string status =
        server.handle_line("{\"op\": \"status\", \"id\": \"s\"}");
    EXPECT_NE(status.find("\"breaker\": \"open\""), std::string::npos)
        << status;
    server.stop();
}

TEST(BreakerServe, DisabledBreakerNeverDegrades)
{
    ServerOptions options;
    options.breaker_enabled = false;
    options.breaker.window = 2;
    options.breaker.min_samples = 1;
    options.breaker.trip_ratio = 0.1;
    Server server(options);
    const std::string out = ::testing::TempDir() + "/overload_nobrk.maf";
    for (int i = 0; i < 3; ++i) {
        server.handle_line(align_line(strprintf("n%d", i), out,
                                      ", \"budget\": {\"max_cells\": 1}"));
    }
    EXPECT_EQ(server.breaker_state(), fault::BreakerState::Closed);
    const std::string resp = server.handle_line(align_line("ok", out));
    EXPECT_NE(resp.find("\"degraded\": false"), std::string::npos)
        << resp;
    server.stop();
}

// ---------------------------------------------------------------------
// AF_UNIX socket claiming.

TEST(SocketClaim, RefusesALiveListener)
{
    const std::string path =
        ::testing::TempDir() + "/claim_live_" +
        std::to_string(::getpid()) + ".sock";
    const int owner = claim_unix_socket(path);
    ASSERT_GE(owner, 0);
    // A second daemon must refuse to hijack the socket while the first
    // is still listening on it.
    EXPECT_THROW(claim_unix_socket(path), SocketInUseError);
    ::close(owner);
    ::unlink(path.c_str());
}

TEST(SocketClaim, TakesOverAStaleSocketFile)
{
    const std::string path =
        ::testing::TempDir() + "/claim_stale_" +
        std::to_string(::getpid()) + ".sock";
    // Simulate a SIGKILLed daemon: the socket file outlives the
    // listener (close without unlink).
    const int dead = claim_unix_socket(path);
    ASSERT_GE(dead, 0);
    ::close(dead);
    struct stat st;
    ASSERT_EQ(::lstat(path.c_str(), &st), 0) << "socket file must "
                                                "survive the close";

    const int takeover = claim_unix_socket(path);
    ASSERT_GE(takeover, 0);
    // And the takeover actually listens: a connect succeeds.
    const int client = ::socket(AF_UNIX, SOCK_STREAM, 0);
    ASSERT_GE(client, 0);
    sockaddr_un addr = {};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
    EXPECT_EQ(::connect(client, reinterpret_cast<sockaddr*>(&addr),
                        sizeof(addr)),
              0);
    ::close(client);
    ::close(takeover);
    ::unlink(path.c_str());
}

TEST(SocketClaim, RefusesANonSocketPath)
{
    const std::string path = ::testing::TempDir() + "/claim_plain_" +
                             std::to_string(::getpid()) + ".txt";
    std::ofstream(path) << "not a socket";
    EXPECT_THROW(claim_unix_socket(path), FatalError);
    ::unlink(path.c_str());
}

}  // namespace
}  // namespace darwin::serve
