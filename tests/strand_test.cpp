/**
 * @file
 * Reverse-strand alignment support: a planted inversion is invisible to
 * the forward-only pipeline and recovered by the both-strands pipeline,
 * with correct reverse-complement coordinate mapping in the MAF output.
 */
#include <gtest/gtest.h>

#include <sstream>

#include "util/rng.h"
#include "wga/maf.h"
#include "wga/pipeline.h"

namespace darwin::wga {
namespace {

/** Target: noise + conserved block + noise. Query: the conserved block
 *  reverse-complemented (an inversion), in fresh noise. */
struct InversionCase {
    seq::Genome target;
    seq::Genome query;
    std::size_t block_start = 0;  ///< in the target
    std::size_t block_len = 0;
};

InversionCase
make_inversion_case(std::uint64_t seed)
{
    Rng rng(seed);
    auto random_seq = [&rng](std::size_t len) {
        std::vector<std::uint8_t> codes(len);
        for (auto& c : codes)
            c = static_cast<std::uint8_t>(rng.uniform(4));
        return codes;
    };

    InversionCase out;
    const auto conserved = random_seq(1200);
    auto t_codes = random_seq(2000);
    out.block_start = t_codes.size();
    out.block_len = conserved.size();
    t_codes.insert(t_codes.end(), conserved.begin(), conserved.end());
    const auto t_tail = random_seq(2000);
    t_codes.insert(t_codes.end(), t_tail.begin(), t_tail.end());
    out.target.set_name("t");
    out.target.add_chromosome(seq::Sequence("t_chr1", std::move(t_codes)));

    // Query holds the reverse complement of the conserved block.
    seq::Sequence block("b", std::vector<std::uint8_t>(conserved));
    const auto inverted = block.reverse_complement();
    auto q_codes = random_seq(1500);
    q_codes.insert(q_codes.end(), inverted.codes().begin(),
                   inverted.codes().end());
    const auto q_tail = random_seq(1500);
    q_codes.insert(q_codes.end(), q_tail.begin(), q_tail.end());
    out.query.set_name("q");
    out.query.add_chromosome(seq::Sequence("q_chr1", std::move(q_codes)));
    return out;
}

TEST(Strand, ForwardOnlyMissesInversion)
{
    const auto workload = make_inversion_case(31337);
    const WgaPipeline forward_only(WgaParams::darwin_defaults());
    const auto result = forward_only.run(workload.target, workload.query);
    EXPECT_TRUE(result.alignments.empty());
}

TEST(Strand, BothStrandsRecoverInversion)
{
    const auto workload = make_inversion_case(31337);
    auto params = WgaParams::darwin_defaults();
    params.align_both_strands = true;
    const WgaPipeline pipeline(params);
    const auto result = pipeline.run(workload.target, workload.query);
    ASSERT_FALSE(result.alignments.empty());

    const auto& a = result.alignments.front();
    EXPECT_EQ(a.query_strand, align::Strand::Reverse);
    // The alignment covers most of the inverted block on the target.
    EXPECT_LT(a.target_start,
              workload.block_start + workload.block_len / 4);
    EXPECT_GT(a.target_end,
              workload.block_start + 3 * workload.block_len / 4);
    EXPECT_GT(a.matched_bases(), workload.block_len * 3 / 4);

    // MAF emits a '-' strand record with consistent gapped texts.
    std::ostringstream out;
    write_maf(out, result.alignments, workload.target, workload.query);
    const std::string maf = out.str();
    EXPECT_NE(maf.find(" - "), std::string::npos);
    EXPECT_NE(maf.find("q_chr1"), std::string::npos);
}

TEST(Strand, BothStrandsKeepForwardAlignments)
{
    // A forward conserved block must still be found when the reverse
    // pass is enabled.
    Rng rng(101);
    std::vector<std::uint8_t> block(1000);
    for (auto& c : block)
        c = static_cast<std::uint8_t>(rng.uniform(4));
    std::vector<std::uint8_t> t_codes(block);
    std::vector<std::uint8_t> q_codes(block);
    seq::Genome target("t"), query("q");
    target.add_chromosome(seq::Sequence("t_chr1", std::move(t_codes)));
    query.add_chromosome(seq::Sequence("q_chr1", std::move(q_codes)));

    auto params = WgaParams::darwin_defaults();
    params.align_both_strands = true;
    const WgaPipeline pipeline(params);
    const auto result = pipeline.run(target, query);
    ASSERT_FALSE(result.alignments.empty());
    EXPECT_EQ(result.alignments.front().query_strand,
              align::Strand::Forward);
    EXPECT_GT(result.alignments.front().matched_bases(), 900u);
}

}  // namespace
}  // namespace darwin::wga
