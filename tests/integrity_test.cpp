/**
 * @file
 * Crash-safety artifact integrity tests: the checksum area appended to
 * `.dwi` files (monolithic and sharded), the digest pair embedded in
 * `.2bit` headers, legacy (pre-checksum) file acceptance, the
 * `darwin-wga-index fsck` validator over every artifact kind, and the
 * stream.spill_* fault probes (a spill I/O fault quarantines the pair,
 * it does not kill the process).
 */
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "batch/checkpoint.h"
#include "batch/scheduler.h"
#include "fault/fault_plan.h"
#include "index/format.h"
#include "index/fsck.h"
#include "index/index_io.h"
#include "obs/metrics.h"
#include "seed/seed_index.h"
#include "seed/sharded_index.h"
#include "seq/packed_io.h"
#include "seq/packed_sequence.h"
#include "seq/sequence.h"
#include "synth/species.h"
#include "util/logging.h"
#include "util/rng.h"
#include "util/strings.h"
#include "wga/params.h"

namespace darwin::index {
namespace {

std::string
temp_path(const std::string& name)
{
    return ::testing::TempDir() + "/integrity_" +
           std::to_string(::getpid()) + "_" + name;
}

seq::Sequence
random_sequence(std::size_t len, std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<std::uint8_t> codes(len);
    for (auto& c : codes)
        c = static_cast<std::uint8_t>(rng.uniform(4));
    return seq::Sequence("rand", std::move(codes));
}

std::vector<char>
slurp(const std::string& path)
{
    std::ifstream in(path, std::ios::binary);
    return {std::istreambuf_iterator<char>(in),
            std::istreambuf_iterator<char>()};
}

void
spit(const std::string& path, const std::vector<char>& bytes)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

/** Copy `src` with one byte at `offset` XOR-flipped. */
std::string
flip_byte(const std::string& src, const std::string& name,
          std::size_t offset)
{
    std::vector<char> bytes = slurp(src);
    EXPECT_LT(offset, bytes.size());
    bytes[offset] = static_cast<char>(bytes[offset] ^ 0x40);
    const std::string path = temp_path(name);
    spit(path, bytes);
    return path;
}

/** Write a monolithic index for a deterministic sequence. */
std::string
write_index(const std::string& name, const seq::Sequence& sequence)
{
    const std::string path = temp_path(name);
    const wga::WgaParams params = wga::WgaParams::darwin_defaults();
    const seed::SeedIndex index(sequence,
                                seed::SeedPattern(params.seed_pattern));
    save_index(path, index, sequence_digest(sequence), sequence.size());
    return path;
}

TEST(Checksums, FreshIndexCarriesATrailerAndLoads)
{
    const auto sequence = random_sequence(4096, 11);
    const std::string path = write_index("fresh.dwi", sequence);

    const IndexInfo info = read_index_info(path);
    const std::vector<char> bytes = slurp(path);
    ASSERT_EQ(bytes.size(), info.total_bytes);
    // The last 64 bytes are a checksum trailer with the right magic.
    ChecksumTrailer trailer;
    std::memcpy(&trailer, bytes.data() + bytes.size() - sizeof(trailer),
                sizeof(trailer));
    EXPECT_EQ(std::memcmp(trailer.magic, kIndexChecksumMagic,
                          sizeof(kIndexChecksumMagic)),
              0);
    EXPECT_EQ(trailer.num_digests, 3u);

    const auto index = load_index(path);
    EXPECT_GT(index->positions().size(), 0u);
}

TEST(Checksums, CorruptSectionByteIsRejected)
{
    const auto sequence = random_sequence(4096, 12);
    const std::string path = write_index("flip_section.dwi", sequence);
    const IndexInfo info = read_index_info(path);

    // Flip one byte in the middle of the positions section; the header
    // still validates, so only the digest pass can catch this.
    const std::vector<char> bytes = slurp(path);
    IndexHeader header;
    std::memcpy(&header, bytes.data(), sizeof(header));
    const std::string corrupt = flip_byte(
        path, "flip_section_corrupt.dwi",
        header.positions_offset + (info.num_positions / 2) * 4);
    try {
        load_index(corrupt);
        FAIL() << "corrupt section must not load";
    } catch (const FatalError& e) {
        EXPECT_NE(std::string(e.what()).find("checksum mismatch"),
                  std::string::npos)
            << e.what();
    }
}

TEST(Checksums, CorruptHeaderByteIsRejected)
{
    const auto sequence = random_sequence(4096, 13);
    const std::string path = write_index("flip_header.dwi", sequence);
    // sequence_digest lives at offset 16: geometry checks still pass,
    // the header digest is what refuses the file.
    const std::string corrupt =
        flip_byte(path, "flip_header_corrupt.dwi", 16);
    try {
        load_index(corrupt);
        FAIL() << "corrupt header must not load";
    } catch (const FatalError& e) {
        EXPECT_NE(std::string(e.what()).find("checksum"),
                  std::string::npos)
            << e.what();
    }
}

TEST(Checksums, LegacyIndexWithoutTrailerStillLoads)
{
    const auto sequence = random_sequence(4096, 14);
    const std::string path = write_index("legacy_src.dwi", sequence);
    const std::vector<char> with = slurp(path);
    IndexHeader header;
    std::memcpy(&header, with.data(), sizeof(header));

    // Reconstruct the pre-checksum format: truncate the file at its
    // sections' end and patch total_bytes back to that size.
    const std::uint64_t over_bytes = ((header.num_buckets + 63) / 64) * 8;
    const std::uint64_t sections_end =
        align_section(header.over_words_offset + over_bytes);
    std::vector<char> legacy(with.begin(),
                             with.begin() +
                                 static_cast<std::ptrdiff_t>(sections_end));
    header.total_bytes = sections_end;
    std::memcpy(legacy.data(), &header, sizeof(header));
    const std::string legacy_path = temp_path("legacy.dwi");
    spit(legacy_path, legacy);

    // Loads cleanly (no checksums to verify), identical table.
    const auto fresh = load_index(path);
    const auto old = load_index(legacy_path);
    ASSERT_EQ(old->positions().size(), fresh->positions().size());
    EXPECT_TRUE(std::equal(old->positions().begin(),
                           old->positions().end(),
                           fresh->positions().begin()));
}

TEST(Checksums, ShardedIndexRoundTripsAndRejectsCorruption)
{
    const auto sequence = random_sequence(20'000, 15);
    const wga::WgaParams params = wga::WgaParams::darwin_defaults();
    const seed::SeedPattern pattern(params.seed_pattern);
    const std::string path = temp_path("sharded.dwi");

    seq::PackedSequence packed = seq::PackedSequence::pack(sequence);
    const seed::ShardedSeedIndexBuilder builder(
        packed, pattern, 256, 7'000, params.dsoft.chunk_size,
        params.dsoft.bin_size);
    save_sharded_index(path, builder, 7'000, sequence_digest(sequence),
                       sequence.size());

    // Round-trip: every shard opens and the trailer is well-formed.
    {
        const ShardedIndexReader reader(path);
        ASSERT_GT(reader.num_shards(), 1u);
        for (std::size_t s = 0; s < reader.num_shards(); ++s)
            EXPECT_NE(reader.open_shard(s), nullptr);
    }

    // Corrupt one byte inside the last shard's positions and the
    // reader must refuse the whole file at construction.
    const IndexInfo info = read_index_info(path);
    const std::string corrupt =
        flip_byte(path, "sharded_corrupt.dwi",
                  static_cast<std::size_t>(info.total_bytes) -
                      sizeof(ChecksumTrailer) - 128);
    try {
        const ShardedIndexReader reader(corrupt);
        FAIL() << "corrupt sharded index must not open";
    } catch (const FatalError& e) {
        EXPECT_NE(std::string(e.what()).find("checksum"),
                  std::string::npos)
            << e.what();
    }
}

/** A tiny genome written as FASTA, for `.2bit` sidecar tests. */
std::string
write_fasta(const std::string& name)
{
    const std::string path = temp_path(name);
    std::ofstream out(path);
    out << ">chr1\n";
    Rng rng(99);
    const char* bases = "ACGT";
    for (int line = 0; line < 40; ++line) {
        for (int i = 0; i < 60; ++i)
            out << bases[rng.uniform(4)];
        out << "\n";
    }
    return path;
}

TEST(Checksums, PackedSidecarCarriesDigestsAndRejectsCorruption)
{
    const std::string fasta = write_fasta("packed.fa");
    const std::string sidecar = fasta + ".2bit";
    const seq::Genome genome = seq::read_genome_packed(fasta);
    ASSERT_TRUE(std::ifstream(sidecar).good());

    // The header carries nonzero digests...
    const std::vector<char> bytes = slurp(sidecar);
    seq::PackedHeader header;
    std::memcpy(&header, bytes.data(), sizeof(header));
    std::uint64_t payload_digest = 0;
    std::memcpy(&payload_digest, header.reserved, 8);
    EXPECT_NE(payload_digest, 0u);

    // ...and a clean reload verifies them.
    const seq::Genome reloaded = seq::load_packed_genome(sidecar);
    EXPECT_EQ(reloaded.total_length(), genome.total_length());

    // A flipped payload byte is refused by the direct loader (the
    // read_genome_packed wrapper would silently rebuild — which is the
    // production behavior, but hides the rejection under test).
    const std::string corrupt = flip_byte(
        sidecar, "packed_corrupt.2bit", sizeof(seq::PackedHeader) + 32);
    try {
        seq::load_packed_genome(corrupt);
        FAIL() << "corrupt sidecar must not load";
    } catch (const FatalError& e) {
        EXPECT_NE(std::string(e.what()).find("checksum mismatch"),
                  std::string::npos)
            << e.what();
    }

    // A flipped header byte (the FASTA digest field) likewise.
    const std::string corrupt_header =
        flip_byte(sidecar, "packed_corrupt_header.2bit", 16);
    try {
        seq::load_packed_genome(corrupt_header);
        FAIL() << "corrupt sidecar header must not load";
    } catch (const FatalError& e) {
        EXPECT_NE(std::string(e.what()).find("checksum"),
                  std::string::npos)
            << e.what();
    }
}

TEST(Checksums, LegacyPackedSidecarLoadsUnverified)
{
    const std::string fasta = write_fasta("packed_legacy.fa");
    const std::string sidecar = fasta + ".2bit";
    seq::read_genome_packed(fasta);

    // Zero both digest fields (as a pre-checksum writer left them) and
    // the loader must accept the file without verification.
    std::vector<char> bytes = slurp(sidecar);
    seq::PackedHeader header;
    std::memcpy(&header, bytes.data(), sizeof(header));
    std::memset(header.reserved, 0, 16);
    std::memcpy(bytes.data(), &header, sizeof(header));
    const std::string legacy = temp_path("packed_zeroed.2bit");
    spit(legacy, bytes);
    EXPECT_GT(seq::load_packed_genome(legacy).total_length(), 0u);
}

// ---------------------------------------------------------------------
// fsck

TEST(Fsck, CleanArtifactsOfEveryKindReportNoFindings)
{
    const auto sequence = random_sequence(4096, 21);
    const std::string dwi = write_index("fsck_clean.dwi", sequence);
    const std::string fasta = write_fasta("fsck_clean.fa");
    seq::read_genome_packed(fasta);

    const std::string journal = temp_path("fsck_clean.jsonl");
    {
        auto j = batch::CheckpointJournal::create(
            journal, batch::config_fingerprint("fsck-test"));
        batch::write_file_atomic(::testing::TempDir() + "/fsck_p0.maf",
                                 "a\n");
        j.record({"p0", fault::PairStatus::Clean, "",
                  "fsck_p0.maf"});
        j.record({"p1", fault::PairStatus::Quarantined, "injected", ""});
        j.close();
    }

    for (const std::string& path :
         {dwi, fasta + ".2bit", journal}) {
        std::string kind;
        const auto findings = fsck_file(path, &kind);
        EXPECT_TRUE(findings.empty())
            << path << ": " << (findings.empty()
                                    ? ""
                                    : findings[0].code + ": " +
                                          findings[0].detail);
        EXPECT_NE(kind, "unknown") << path;
    }
}

TEST(Fsck, TaggedFindingsForEveryFailureMode)
{
    // Missing file.
    {
        const auto findings = fsck_file(temp_path("nope.dwi"));
        ASSERT_EQ(findings.size(), 1u);
        EXPECT_EQ(findings[0].code, "missing");
    }
    // Unknown type.
    {
        const std::string path = temp_path("fsck_unknown.bin");
        std::ofstream(path) << "plain text";
        const auto findings = fsck_file(path);
        ASSERT_EQ(findings.size(), 1u);
        EXPECT_EQ(findings[0].code, "unknown-type");
    }
    // Corrupt index.
    {
        const auto sequence = random_sequence(4096, 22);
        const std::string dwi = write_index("fsck_bad.dwi", sequence);
        const std::string corrupt =
            flip_byte(dwi, "fsck_bad_corrupt.dwi", 300);
        std::string kind;
        const auto findings = fsck_file(corrupt, &kind);
        EXPECT_EQ(kind, "index");
        ASSERT_EQ(findings.size(), 1u);
        EXPECT_EQ(findings[0].code, "bad-index");
        EXPECT_NE(findings[0].detail.find("checksum"), std::string::npos)
            << findings[0].detail;
    }
    // Corrupt sidecar.
    {
        const std::string fasta = write_fasta("fsck_bad.fa");
        seq::read_genome_packed(fasta);
        const std::string corrupt = flip_byte(
            fasta + ".2bit", "fsck_bad.2bit", 200);
        std::string kind;
        const auto findings = fsck_file(corrupt, &kind);
        EXPECT_EQ(kind, "packed-genome");
        ASSERT_EQ(findings.size(), 1u);
        EXPECT_EQ(findings[0].code, "bad-packed");
    }
    // Journal with a bad status and a missing journaled output.
    {
        const std::string path = temp_path("fsck_bad.jsonl");
        std::ofstream(path)
            << "{\"journal\":\"darwin-wga-batch\",\"version\":1,"
               "\"config\":\"0123456789abcdef\"}\n"
            << "{\"pair\":\"p0\",\"status\":\"exploded\"}\n"
            << "{\"pair\":\"p1\",\"status\":\"clean\","
               "\"output\":\"never_written.maf\"}\n";
        std::string kind;
        const auto findings = fsck_file(path, &kind);
        EXPECT_EQ(kind, "journal");
        ASSERT_EQ(findings.size(), 2u);
        EXPECT_EQ(findings[0].code, "bad-journal");
        EXPECT_NE(findings[0].detail.find("exploded"), std::string::npos);
        EXPECT_NE(findings[1].detail.find("never_written.maf"),
                  std::string::npos);
    }
}

TEST(Fsck, FaultProbeFires)
{
    const auto plan = fault::FaultPlan::parse("index.fsck:throw");
    fault::install_fault_plan(&plan);
    EXPECT_THROW(fsck_file(temp_path("whatever")),
                 fault::InjectedFault);
    fault::install_fault_plan(nullptr);
}

// ---------------------------------------------------------------------
// Spill fault probes: an injected spill-write fault quarantines the
// pair in a streaming batch run; the process and sibling pairs are
// untouched.

TEST(SpillFaults, SpillWriteFaultQuarantinesThePairNotTheProcess)
{
    synth::AncestorConfig shape;
    shape.num_chromosomes = 1;
    shape.chromosome_length = 15'000;
    shape.exons_per_chromosome = 10;
    const auto specs = synth::paper_species_pairs();
    std::vector<synth::SpeciesPair> pairs;
    for (int i = 0; i < 2; ++i)
        pairs.push_back(synth::make_species_pair(
            specs[i % specs.size()], shape, 4'321 + i));

    std::vector<batch::BatchJob> jobs;
    for (std::size_t i = 0; i < pairs.size(); ++i)
        jobs.push_back({strprintf("pair%zu", i), &pairs[i].target.genome,
                        &pairs[i].query.genome});

    batch::BatchOptions options;
    options.params = wga::WgaParams::darwin_defaults();
    options.num_threads = 2;
    options.streaming = true;
    // Tiny capacities force the hit stream to spill on this input —
    // the same settings stream_test uses to exercise the spill path.
    options.streaming_params.shard_bp = 7'000;
    options.streaming_params.hit_stream_capacity = 64;
    options.streaming_params.candidate_chunk = 16;
    options.streaming_params.filter_batch = 32;
    options.streaming_params.spill = true;

    const auto plan =
        fault::FaultPlan::parse("stream.spill_write:throw:pair=1");
    fault::install_fault_plan(&plan);
    obs::MetricsRegistry metrics;
    batch::BatchScheduler scheduler(options, &metrics);
    const auto results = scheduler.run(jobs);
    fault::install_fault_plan(nullptr);

    ASSERT_EQ(results.size(), 2u);
    EXPECT_EQ(results[0].status, fault::PairStatus::Clean)
        << results[0].quarantine.message;
    EXPECT_EQ(results[1].status, fault::PairStatus::Quarantined)
        << "the spill-write fault must quarantine pair 1";
    EXPECT_NE(results[1].quarantine.message.find("injected"),
              std::string::npos)
        << results[1].quarantine.message;
    EXPECT_GE(plan.injected(), 1u);
}

}  // namespace
}  // namespace darwin::index
