/**
 * @file
 * Tests for the hardware models: device configs, BSW array cycle-level
 * simulation (validated against the software kernels), GACT-X array cycle
 * accounting, DRAM model, performance model, and the Table IV power model.
 */
#include <gtest/gtest.h>

#include "align/banded_sw.h"
#include "align/smith_waterman.h"
#include "hw/bsw_array.h"
#include "hw/config.h"
#include "hw/dram_model.h"
#include "hw/gactx_array.h"
#include "hw/perf_model.h"
#include "hw/power_model.h"
#include "util/rng.h"

namespace darwin::hw {
namespace {

std::vector<std::uint8_t>
random_codes(std::size_t len, Rng& rng)
{
    std::vector<std::uint8_t> codes(len);
    for (auto& c : codes)
        c = static_cast<std::uint8_t>(rng.uniform(4));
    return codes;
}

std::vector<std::uint8_t>
mutated_copy(const std::vector<std::uint8_t>& src, double sub_rate,
             double indel_rate, Rng& rng)
{
    std::vector<std::uint8_t> out;
    for (std::size_t i = 0; i < src.size(); ++i) {
        if (rng.chance(indel_rate)) {
            if (rng.chance(0.5))
                continue;
            out.push_back(static_cast<std::uint8_t>(rng.uniform(4)));
        }
        std::uint8_t base = src[i];
        if (rng.chance(sub_rate))
            base = static_cast<std::uint8_t>(rng.uniform(4));
        out.push_back(base);
    }
    return out;
}

std::span<const std::uint8_t>
sp(const std::vector<std::uint8_t>& v)
{
    return {v.data(), v.size()};
}

TEST(DeviceConfig, PaperPlatforms)
{
    const auto fpga = DeviceConfig::fpga_f1_2xlarge();
    EXPECT_EQ(fpga.bsw_arrays, 50u);
    EXPECT_EQ(fpga.gactx_arrays, 2u);
    EXPECT_EQ(fpga.bsw_pe, 32u);
    EXPECT_DOUBLE_EQ(fpga.clock_hz, 150e6);

    const auto asic = DeviceConfig::asic_40nm();
    EXPECT_EQ(asic.bsw_arrays, 64u);
    EXPECT_EQ(asic.gactx_arrays, 12u);
    EXPECT_EQ(asic.gactx_pe, 64u);
    EXPECT_DOUBLE_EQ(asic.clock_hz, 1e9);

    const auto cpu = DeviceConfig::cpu_c4_8xlarge();
    EXPECT_DOUBLE_EQ(cpu.power_w, 215.0);
}

TEST(BswArray, ScoreBoundsAgainstSoftwareKernels)
{
    // The hardware band is a stripe-granular superset of the per-row
    // software band, so: sw banded <= hw <= full SW.
    Rng rng(91);
    BswArrayConfig config;
    config.num_pe = 16;
    config.band = 12;
    const BswArrayModel array(config);
    for (int trial = 0; trial < 15; ++trial) {
        const auto t = random_codes(120, rng);
        const auto q = mutated_copy(t, 0.2, 0.03, rng);
        const auto hwr = array.run_tile(sp(t), sp(q));
        const auto swb = align::banded_smith_waterman(sp(t), sp(q),
                                                      config.scoring,
                                                      config.band);
        const auto full = align::smith_waterman_score(sp(t), sp(q),
                                                      config.scoring);
        EXPECT_GE(hwr.max_score, swb.max_score);
        EXPECT_LE(hwr.max_score, full);
    }
}

TEST(BswArray, WideBandEqualsFullSmithWaterman)
{
    Rng rng(92);
    BswArrayConfig config;
    config.num_pe = 8;
    config.band = 200;  // wider than the tile: no clipping anywhere
    const BswArrayModel array(config);
    for (int trial = 0; trial < 10; ++trial) {
        const auto t = random_codes(64, rng);
        const auto q = mutated_copy(t, 0.25, 0.05, rng);
        const auto hwr = array.run_tile(sp(t), sp(q));
        const auto full = align::smith_waterman_score(sp(t), sp(q),
                                                      config.scoring);
        EXPECT_EQ(hwr.max_score, full);
    }
}

TEST(BswArray, CycleCountMatchesGeometry)
{
    Rng rng(93);
    BswArrayConfig config;
    config.num_pe = 32;
    config.band = 32;
    const BswArrayModel array(config);
    const auto t = random_codes(320, rng);
    const auto q = random_codes(320, rng);
    const auto sim = array.run_tile(sp(t), sp(q));
    EXPECT_EQ(sim.cycles,
              BswArrayModel::tile_cycles(320, 320, 32, 32));
    // The paper's FPGA throughput implies ~1200 cycles for this tile.
    EXPECT_GT(sim.cycles, 800u);
    EXPECT_LT(sim.cycles, 2000u);
}

TEST(BswArray, PaperTileRateIsAbout125kPerArray)
{
    // 50 arrays at 150 MHz give 6.25M tiles/s in the paper: 125K/array,
    // i.e. 1200 cycles/tile. Our model must land in the same decade.
    const std::uint64_t cycles =
        BswArrayModel::tile_cycles(320, 320, 32, 32);
    const double rate = 150e6 / static_cast<double>(cycles);
    EXPECT_GT(rate, 80e3);
    EXPECT_LT(rate, 160e3);
}

TEST(GactXArray, CyclesTrackStripeColumns)
{
    Rng rng(94);
    align::GactXParams params;
    params.tile_size = 512;
    params.num_pe = 32;
    const GactXArrayModel array(params);
    const auto t = random_codes(512, rng);
    const auto q = mutated_copy(t, 0.1, 0.01, rng);
    const auto sim = array.run_tile(sp(t), sp(q));
    ASSERT_FALSE(sim.tile.stripe_columns.empty());
    std::uint64_t expect = kTileSetupCycles + sim.tile.cigar.total_ops();
    for (const auto c : sim.tile.stripe_columns)
        expect += stripe_cycles(c, 32);
    EXPECT_EQ(sim.cycles, expect);
}

TEST(GactXArray, WorkloadCyclesAggregatesStats)
{
    align::ExtensionStats stats;
    stats.tiles = 10;
    stats.stripes = 100;
    stats.stripe_columns = 5000;
    stats.traceback_ops = 2000;
    const auto cycles = GactXArrayModel::workload_cycles(stats, 64);
    EXPECT_EQ(cycles, 10 * kTileSetupCycles + 5000 +
                          100 * (63 + kStripeTurnaroundCycles) + 2000);
}

TEST(DramModel, TransferAndRates)
{
    auto config = DeviceConfig::asic_40nm();
    config.dram_efficiency = 0.5;
    const DramModel dram(config);
    EXPECT_DOUBLE_EQ(dram.achievable_bandwidth(), 4 * 19.2e9 * 0.5);
    EXPECT_DOUBLE_EQ(dram.transfer_seconds(
                         static_cast<std::uint64_t>(38.4e9)),
                     1.0);
    EXPECT_EQ(DramModel::bsw_tile_bytes(320), 640u);
    EXPECT_EQ(DramModel::gactx_tile_bytes(1920, 4000), 3840u + 1000u);
}

TEST(PerfModel, AsicFilterIsDramBound)
{
    // The paper provisions 64 BSW arrays explicitly so that DRAM is the
    // bottleneck (§VI-A); the model must reproduce that.
    const PerfModel model(DeviceConfig::asic_40nm());
    WorkloadCounts workload;
    workload.filter_tiles = 100'000'000;
    workload.extension.tiles = 10'000;
    workload.extension.stripes = 10'000 * 30;
    workload.extension.stripe_columns = 10'000 * 30 * 600;
    workload.extension.traceback_ops = 10'000 * 2000;
    const auto estimate = model.estimate(workload);
    // The paper provisions the arrays so that DRAM is the bottleneck:
    // compute and DRAM times must sit at the knee (within ~25% of each
    // other), with neither side idle by a large factor.
    const double ratio =
        estimate.filter.dram_seconds / estimate.filter.compute_seconds;
    EXPECT_GT(ratio, 0.75);
    EXPECT_LT(ratio, 1.5);
    // ASIC filter throughput lands near the paper's 70M tiles/s.
    EXPECT_GT(estimate.filter_tiles_per_second, 3e7);
    EXPECT_LT(estimate.filter_tiles_per_second, 1.5e8);
}

TEST(PerfModel, FpgaFilterIsComputeBound)
{
    const PerfModel model(DeviceConfig::fpga_f1_2xlarge());
    WorkloadCounts workload;
    workload.filter_tiles = 10'000'000;
    workload.extension.tiles = 1000;
    workload.extension.stripes = 1000 * 60;
    workload.extension.stripe_columns = 1000 * 60 * 600;
    workload.extension.traceback_ops = 1000 * 2000;
    const auto estimate = model.estimate(workload);
    EXPECT_FALSE(estimate.filter.dram_bound);
    // ~6.25M tiles/s in the paper.
    EXPECT_GT(estimate.filter_tiles_per_second, 3e6);
    EXPECT_LT(estimate.filter_tiles_per_second, 1.2e7);
}

TEST(PerfModel, ImprovementMetrics)
{
    // 100x faster at the same price => 100x perf/$.
    EXPECT_DOUBLE_EQ(
        PerfModel::perf_per_dollar_improvement(1000, 1.59, 10, 1.59),
        100.0);
    // Same speed, half the power => 2x perf/W.
    EXPECT_DOUBLE_EQ(
        PerfModel::perf_per_watt_improvement(100, 200, 100, 100), 2.0);
}

TEST(PowerModel, ReproducesTableIV)
{
    const AsicPowerModel model;
    const auto asic = DeviceConfig::asic_40nm();
    const auto rows = model.breakdown(asic);
    ASSERT_EQ(rows.size(), 4u);
    EXPECT_NEAR(rows[0].area_mm2, 16.6, 1e-9);
    EXPECT_NEAR(rows[0].power_w, 25.6, 1e-9);
    EXPECT_NEAR(rows[1].area_mm2, 4.2, 1e-9);
    EXPECT_NEAR(rows[1].power_w, 6.72, 1e-9);
    EXPECT_NEAR(rows[2].area_mm2, 15.12, 1e-9);
    EXPECT_NEAR(rows[2].power_w, 7.92, 1e-9);
    EXPECT_NEAR(rows[3].power_w, 3.10, 1e-9);
    EXPECT_NEAR(model.total_area_mm2(asic), 35.92, 0.01);
    EXPECT_NEAR(model.total_power_w(asic), 43.34, 0.01);
}

TEST(PowerModel, ScalesWithProvisioning)
{
    const AsicPowerModel model;
    auto half = DeviceConfig::asic_40nm();
    half.bsw_arrays = 32;
    const auto rows = model.breakdown(half);
    EXPECT_NEAR(rows[0].area_mm2, 16.6 / 2, 1e-9);
    EXPECT_NEAR(rows[0].power_w, 25.6 / 2, 1e-9);
}

}  // namespace
}  // namespace darwin::hw
