/**
 * @file
 * Unit tests for the fault-tolerance layer (src/fault/ and the batch
 * pieces that ride on it): CancelToken budgets, ContextScope threading,
 * deterministic FaultPlan parsing/firing, degraded-retry parameters,
 * the checkpoint journal, hardened manifest/FASTA ingestion, and the
 * WorkQueue/ThreadPool behavior under thrown faults.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

#include "batch/checkpoint.h"
#include "fault/degrade.h"
#include "batch/manifest.h"
#include "fault/cancel.h"
#include "fault/fault_plan.h"
#include "fault/quarantine.h"
#include "seq/fasta.h"
#include "util/logging.h"
#include "util/strings.h"
#include "util/thread_pool.h"
#include "util/work_queue.h"

namespace darwin {
namespace {

// ---------------------------------------------------------------- tokens

TEST(CancelToken, UnarmedTokenNeverTrips)
{
    fault::CancelToken token;
    EXPECT_FALSE(token.armed());
    token.charge_cells(1'000'000'000);
    token.charge_heap_bytes(1'000'000'000);
    EXPECT_EQ(token.exceeded(), fault::CancelReason::None);
    EXPECT_NO_THROW(token.poll("test.probe"));
}

TEST(CancelToken, CellBudgetTripsAndReportsProbe)
{
    fault::CancelToken token;
    token.arm({0.0, 100, 0});
    token.charge_cells(99);
    EXPECT_NO_THROW(token.poll("test.probe"));
    token.charge_cells(2);
    EXPECT_EQ(token.exceeded(), fault::CancelReason::Cells);
    try {
        token.poll("test.probe");
        FAIL() << "poll should have thrown";
    } catch (const fault::CancelledError& error) {
        EXPECT_EQ(error.reason(), fault::CancelReason::Cells);
        EXPECT_EQ(error.probe(), "test.probe");
        EXPECT_NE(std::string(error.what()).find("test.probe"),
                  std::string::npos);
    }
}

TEST(CancelToken, HeapBudgetTrips)
{
    fault::CancelToken token;
    token.arm({0.0, 0, 1024});
    token.charge_heap_bytes(1025);
    EXPECT_EQ(token.exceeded(), fault::CancelReason::HeapBytes);
}

TEST(CancelToken, WallDeadlineTrips)
{
    fault::CancelToken token;
    token.arm({0.02, 0, 0});
    std::this_thread::sleep_for(std::chrono::milliseconds(60));
    EXPECT_EQ(token.exceeded(), fault::CancelReason::WallTime);
}

TEST(CancelToken, ZeroBudgetsMeanUnlimited)
{
    fault::CancelToken token;
    token.arm(fault::Budget{});
    EXPECT_TRUE(fault::Budget{}.unlimited());
    token.charge_cells(1ull << 60);
    EXPECT_EQ(token.exceeded(), fault::CancelReason::None);
}

TEST(CancelToken, CancelIsStickyUntilRearm)
{
    fault::CancelToken token;
    token.cancel(fault::CancelReason::External);
    EXPECT_EQ(token.exceeded(), fault::CancelReason::External);
    EXPECT_THROW(token.poll("p"), fault::CancelledError);
    // arm() starts a fresh attempt: cancellation and charges reset.
    token.arm({0.0, 100, 0});
    EXPECT_EQ(token.exceeded(), fault::CancelReason::None);
    EXPECT_EQ(token.cells_charged(), 0u);
}

TEST(ContextScope, InstallsAndNests)
{
    EXPECT_EQ(fault::current_token(), nullptr);
    EXPECT_EQ(fault::current_pair(), fault::kNoPair);
    fault::CancelToken outer_token, inner_token;
    {
        fault::ContextScope outer(&outer_token, 4);
        EXPECT_EQ(fault::current_token(), &outer_token);
        EXPECT_EQ(fault::current_pair(), 4u);
        {
            fault::ContextScope inner(&inner_token, 7);
            EXPECT_EQ(fault::current_token(), &inner_token);
            EXPECT_EQ(fault::current_pair(), 7u);
        }
        EXPECT_EQ(fault::current_token(), &outer_token);
        EXPECT_EQ(fault::current_pair(), 4u);
    }
    EXPECT_EQ(fault::current_token(), nullptr);
}

TEST(ContextScope, FreeFunctionsChargeTheInstalledToken)
{
    fault::CancelToken token;
    token.arm({0.0, 100, 0});
    // Without a scope: all no-ops.
    fault::charge_cells(1'000'000);
    EXPECT_NO_THROW(fault::poll("test.free"));
    EXPECT_EQ(token.cells_charged(), 0u);
    {
        fault::ContextScope scope(&token, 0);
        fault::charge_cells(150);
        fault::charge_heap_bytes(42);
        EXPECT_EQ(token.cells_charged(), 150u);
        EXPECT_EQ(token.heap_bytes_charged(), 42u);
        EXPECT_THROW(fault::poll("test.free"), fault::CancelledError);
    }
}

TEST(Shutdown, FlagIsSetAndCleared)
{
    EXPECT_FALSE(fault::shutdown_requested());
    fault::request_shutdown();
    EXPECT_TRUE(fault::shutdown_requested());
    fault::clear_shutdown();
    EXPECT_FALSE(fault::shutdown_requested());
}

// ------------------------------------------------------------ fault plan

TEST(FaultPlan, EmptySpecParsesEmpty)
{
    EXPECT_TRUE(fault::FaultPlan::parse("").empty());
    EXPECT_TRUE(fault::FaultPlan::parse("  ").empty());
}

TEST(FaultPlan, RejectsMalformedSpecs)
{
    EXPECT_THROW(fault::FaultPlan::parse("probe-only"), FatalError);
    EXPECT_THROW(fault::FaultPlan::parse("p:unknown-kind"), FatalError);
    EXPECT_THROW(fault::FaultPlan::parse("p:throw:bogus=1"), FatalError);
    EXPECT_THROW(fault::FaultPlan::parse("p:throw:pair"), FatalError);
    EXPECT_THROW(fault::FaultPlan::parse(":throw"), FatalError);
}

TEST(FaultPlan, ParsesKindsAndKeys)
{
    const auto plan = fault::FaultPlan::parse(
        "filter.tile:throw:pair=3;extend.*:stall:ms=7:count=0;"
        "seed.chunk:oom:after=2:p=0.5:seed=9");
    ASSERT_EQ(plan.num_entries(), 3u);
    const auto specs = plan.specs();
    EXPECT_EQ(specs[0].probe, "filter.tile");
    EXPECT_EQ(specs[0].kind, fault::FaultKind::Throw);
    EXPECT_EQ(specs[0].pair, 3u);
    EXPECT_EQ(specs[1].kind, fault::FaultKind::Stall);
    EXPECT_EQ(specs[1].stall_ms, 7u);
    EXPECT_EQ(specs[1].count, 0u);
    EXPECT_EQ(specs[2].kind, fault::FaultKind::Oom);
    EXPECT_EQ(specs[2].after, 2u);
    EXPECT_DOUBLE_EQ(specs[2].probability, 0.5);
    EXPECT_EQ(specs[2].seed, 9u);
}

TEST(FaultPlan, ThrowFiresOncePerPairByDefault)
{
    const auto plan = fault::FaultPlan::parse("p.x:throw");
    EXPECT_THROW(plan.fire("p.x", 0), fault::InjectedFault);
    EXPECT_NO_THROW(plan.fire("p.x", 0));  // count=1 consumed for pair 0
    EXPECT_THROW(plan.fire("p.x", 1), fault::InjectedFault);  // fresh pair
    EXPECT_NO_THROW(plan.fire("p.y", 0));  // different probe
    EXPECT_EQ(plan.injected(), 2u);
}

TEST(FaultPlan, PairScopeAndAfterSkip)
{
    const auto plan = fault::FaultPlan::parse("p.x:throw:pair=2:after=2");
    EXPECT_NO_THROW(plan.fire("p.x", 0));  // wrong pair
    EXPECT_NO_THROW(plan.fire("p.x", 2));  // visit 1 skipped
    EXPECT_NO_THROW(plan.fire("p.x", 2));  // visit 2 skipped
    EXPECT_THROW(plan.fire("p.x", 2), fault::InjectedFault);  // visit 3
}

TEST(FaultPlan, PrefixProbesMatch)
{
    const auto plan = fault::FaultPlan::parse("filter.*:throw:count=0");
    EXPECT_THROW(plan.fire("filter.tile", 0), fault::InjectedFault);
    EXPECT_THROW(plan.fire("filter.hit", 0), fault::InjectedFault);
    EXPECT_NO_THROW(plan.fire("extend.tile", 0));
}

TEST(FaultPlan, OomThrowsBadAlloc)
{
    const auto plan = fault::FaultPlan::parse("p.x:oom");
    EXPECT_THROW(plan.fire("p.x", 0), std::bad_alloc);
}

TEST(FaultPlan, StallSleeps)
{
    const auto plan = fault::FaultPlan::parse("p.x:stall:ms=30");
    const auto start = std::chrono::steady_clock::now();
    plan.fire("p.x", 0);
    const auto elapsed = std::chrono::steady_clock::now() - start;
    EXPECT_GE(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed)
                  .count(),
              25);
}

TEST(FaultPlan, ProbabilityIsDeterministic)
{
    const std::string spec = "p.x:throw:count=0:p=0.4:seed=11";
    const auto fire_pattern = [&spec] {
        const auto plan = fault::FaultPlan::parse(spec);
        std::vector<bool> fired;
        for (std::size_t visit = 0; visit < 200; ++visit) {
            try {
                plan.fire("p.x", 3);
                fired.push_back(false);
            } catch (const fault::InjectedFault&) {
                fired.push_back(true);
            }
        }
        return fired;
    };
    const auto first = fire_pattern();
    const auto second = fire_pattern();
    EXPECT_EQ(first, second);  // same plan -> same visits fault
    const auto fires =
        static_cast<std::size_t>(std::count(first.begin(), first.end(), true));
    EXPECT_GT(fires, 40u);  // ~80 expected at p=0.4
    EXPECT_LT(fires, 120u);
    // A different seed faults a different visit pattern.
    const auto plan2 =
        fault::FaultPlan::parse("p.x:throw:count=0:p=0.4:seed=12");
    std::vector<bool> other;
    for (std::size_t visit = 0; visit < 200; ++visit) {
        try {
            plan2.fire("p.x", 3);
            other.push_back(false);
        } catch (const fault::InjectedFault&) {
            other.push_back(true);
        }
    }
    EXPECT_NE(first, other);
}

TEST(FaultPlan, InstallationRoutesThroughPoll)
{
    EXPECT_EQ(fault::active_fault_plan(), nullptr);
    const auto plan = fault::FaultPlan::parse("probe.a:throw");
    fault::install_fault_plan(&plan);
    EXPECT_EQ(fault::active_fault_plan(), &plan);
    EXPECT_THROW(fault::poll("probe.a"), fault::InjectedFault);
    EXPECT_NO_THROW(fault::poll("probe.a"));  // count=1 consumed (kNoPair)
    fault::install_fault_plan(nullptr);
    EXPECT_EQ(fault::active_fault_plan(), nullptr);
    EXPECT_NO_THROW(fault::poll("probe.a"));
}

// -------------------------------------------------------------- taxonomy

TEST(Quarantine, ReasonTaxonomy)
{
    EXPECT_TRUE(fault::is_budget_overrun(fault::FailReason::WallTime));
    EXPECT_TRUE(fault::is_budget_overrun(fault::FailReason::Cells));
    EXPECT_TRUE(fault::is_budget_overrun(fault::FailReason::HeapBytes));
    EXPECT_FALSE(fault::is_budget_overrun(fault::FailReason::Injected));
    EXPECT_FALSE(fault::is_budget_overrun(fault::FailReason::OutOfMemory));
    EXPECT_EQ(fault::fail_reason_from_cancel(fault::CancelReason::WallTime),
              fault::FailReason::WallTime);
    EXPECT_EQ(fault::fail_reason_from_cancel(fault::CancelReason::External),
              fault::FailReason::Interrupted);
    EXPECT_STREQ(fault::pair_status_name(fault::PairStatus::Quarantined),
                 "quarantined");
    EXPECT_STREQ(fault::fail_reason_name(fault::FailReason::OutOfMemory),
                 "oom");
}

TEST(Quarantine, ReportJsonIsMachineReadable)
{
    fault::QuarantineRecord record;
    record.pair_index = 3;
    record.name = "dm6-dp4";
    record.stage = "extend";
    record.reason = fault::FailReason::Cells;
    record.message = "cell budget 100 exceeded";
    record.attempts = 2;
    record.cells_charged = 123;
    const std::string json = fault::quarantine_report_json({record});
    EXPECT_NE(json.find("\"name\": \"dm6-dp4\""), std::string::npos);
    EXPECT_NE(json.find("\"stage\": \"extend\""), std::string::npos);
    EXPECT_NE(json.find("\"reason\": \"cells\""), std::string::npos);
    EXPECT_NE(json.find("\"attempts\": 2"), std::string::npos);
    EXPECT_EQ(fault::quarantine_report_json({}), "[\n]\n");
}

// --------------------------------------------------------------- degrade

TEST(Degrade, NarrowsBandXdropAndSeedCap)
{
    wga::WgaParams params = wga::WgaParams::darwin_defaults();
    params.filter_band = 32;
    params.gactx.ydrop = 9430;
    params.ungapped_xdrop = 910;
    const fault::DegradePolicy policy;
    const wga::WgaParams degraded = fault::apply_degrade(params, policy);
    EXPECT_EQ(degraded.filter_band, 16u);
    EXPECT_EQ(degraded.gactx.ydrop, 4715);
    EXPECT_EQ(degraded.ungapped_xdrop, 455);
    EXPECT_EQ(degraded.dsoft.max_hits_per_chunk, 256u);
    // Unrelated knobs are untouched.
    EXPECT_EQ(degraded.filter_threshold, params.filter_threshold);
    EXPECT_EQ(degraded.gactx.tile_size, params.gactx.tile_size);
}

TEST(Degrade, FloorsApplyAndExistingCapWins)
{
    wga::WgaParams params = wga::WgaParams::darwin_defaults();
    params.filter_band = 10;
    params.gactx.ydrop = 150;
    params.ungapped_xdrop = 120;
    params.dsoft.max_hits_per_chunk = 64;  // already tighter than policy
    const wga::WgaParams degraded =
        fault::apply_degrade(params, fault::DegradePolicy{});
    EXPECT_EQ(degraded.filter_band, 8u);     // floored, not 5
    EXPECT_EQ(degraded.gactx.ydrop, 100);    // floored, not 75
    EXPECT_EQ(degraded.ungapped_xdrop, 100);
    EXPECT_EQ(degraded.dsoft.max_hits_per_chunk, 64u);
}

// ------------------------------------------------------------ checkpoint

TEST(Checkpoint, FingerprintIsStableHex)
{
    const std::string fp = batch::config_fingerprint("preset=darwin;v=1");
    EXPECT_EQ(fp.size(), 16u);
    EXPECT_EQ(fp, batch::config_fingerprint("preset=darwin;v=1"));
    EXPECT_NE(fp, batch::config_fingerprint("preset=lastz;v=1"));
}

TEST(Checkpoint, Fnv1a64MatchesReferenceVectors)
{
    // The journal fingerprint depends on these exact values never
    // changing — FNV-1a 64-bit reference vectors.
    EXPECT_EQ(fnv1a64(""), 0xcbf29ce484222325ull);
    EXPECT_EQ(fnv1a64("a"), 0xaf63dc4c8601ec8cull);
    EXPECT_EQ(fnv1a64("foobar"), 0x85944171f73967e8ull);
}

TEST(Checkpoint, AtomicWriteLeavesNoTempFile)
{
    const std::string dir = ::testing::TempDir();
    const std::string path = dir + "/atomic_test.txt";
    batch::write_file_atomic(path, "hello\n");
    std::ifstream in(path);
    std::string content((std::istreambuf_iterator<char>(in)),
                        std::istreambuf_iterator<char>());
    EXPECT_EQ(content, "hello\n");
    EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
    batch::write_file_atomic(path, "replaced\n");  // overwrite is atomic too
    std::ifstream again(path);
    std::string content2((std::istreambuf_iterator<char>(again)),
                         std::istreambuf_iterator<char>());
    EXPECT_EQ(content2, "replaced\n");
    std::filesystem::remove(path);
}

TEST(Checkpoint, JournalRoundTripsThroughResume)
{
    const std::string path = ::testing::TempDir() + "/journal_rt.jsonl";
    const std::string fp = batch::config_fingerprint("cfg-a");
    {
        auto journal = batch::CheckpointJournal::create(path, fp);
        journal.record({"pair-one", fault::PairStatus::Clean, "",
                        "pair-one.maf"});
        journal.record({"pair-two", fault::PairStatus::Quarantined,
                        "injected", ""});
        journal.record({"pair-three", fault::PairStatus::Degraded, "",
                        "pair-three.maf"});
        journal.close();
    }
    auto resumed = batch::CheckpointJournal::resume(path, fp);
    EXPECT_TRUE(resumed.completed("pair-one"));
    EXPECT_TRUE(resumed.completed("pair-two"));
    EXPECT_TRUE(resumed.completed("pair-three"));
    EXPECT_FALSE(resumed.completed("pair-four"));
    ASSERT_EQ(resumed.resumed().size(), 3u);
    EXPECT_EQ(resumed.resumed()[0].pair, "pair-one");
    EXPECT_EQ(resumed.resumed()[0].status, fault::PairStatus::Clean);
    EXPECT_EQ(resumed.resumed()[0].output, "pair-one.maf");
    EXPECT_EQ(resumed.resumed()[1].status, fault::PairStatus::Quarantined);
    EXPECT_EQ(resumed.resumed()[1].reason, "injected");
    // Appending after resume still works.
    resumed.record({"pair-four", fault::PairStatus::Clean, "",
                    "pair-four.maf"});
    resumed.close();
    auto resumed2 = batch::CheckpointJournal::resume(path, fp);
    EXPECT_EQ(resumed2.resumed().size(), 4u);
    std::filesystem::remove(path);
}

TEST(Checkpoint, ResumeRefusesIncompatibleConfig)
{
    const std::string path = ::testing::TempDir() + "/journal_mismatch.jsonl";
    {
        auto journal = batch::CheckpointJournal::create(
            path, batch::config_fingerprint("cfg-a"));
        journal.close();
    }
    try {
        batch::CheckpointJournal::resume(path,
                                         batch::config_fingerprint("cfg-b"));
        FAIL() << "resume should refuse a mismatched fingerprint";
    } catch (const FatalError& error) {
        const std::string what = error.what();
        EXPECT_NE(what.find("incompatible"), std::string::npos);
        EXPECT_NE(what.find(batch::config_fingerprint("cfg-a")),
                  std::string::npos);
        EXPECT_NE(what.find(batch::config_fingerprint("cfg-b")),
                  std::string::npos);
    }
    std::filesystem::remove(path);
}

TEST(Checkpoint, ResumeWithoutJournalExplainsItself)
{
    try {
        batch::CheckpointJournal::resume(
            ::testing::TempDir() + "/no_such_journal.jsonl", "fp");
        FAIL() << "resume should fail without a journal";
    } catch (const FatalError& error) {
        EXPECT_NE(std::string(error.what()).find("--resume"),
                  std::string::npos);
    }
}

// -------------------------------------------------------------- manifest

TEST(Manifest, ParsesCommentsAndBlankLines)
{
    const auto pairs = batch::parse_manifest(
        "# header comment\n"
        "\n"
        "ce11-cb4 t1.fa q1.fa\n"
        "  dm6-dp4\tt2.fa\tq2.fa  \n",
        "pairs.tsv");
    ASSERT_EQ(pairs.size(), 2u);
    EXPECT_EQ(pairs[0].name, "ce11-cb4");
    EXPECT_EQ(pairs[0].target_path, "t1.fa");
    EXPECT_EQ(pairs[0].query_path, "q1.fa");
    EXPECT_EQ(pairs[0].line, 3u);
    EXPECT_EQ(pairs[1].name, "dm6-dp4");
    EXPECT_EQ(pairs[1].line, 4u);
}

void
expect_manifest_error(const std::string& text, const std::string& fragment,
                      const std::string& line_tag)
{
    try {
        batch::parse_manifest(text, "pairs.tsv");
        FAIL() << "expected FatalError for: " << text;
    } catch (const FatalError& error) {
        const std::string what = error.what();
        EXPECT_NE(what.find("pairs.tsv"), std::string::npos) << what;
        EXPECT_NE(what.find(fragment), std::string::npos) << what;
        if (!line_tag.empty()) {
            EXPECT_NE(what.find(line_tag), std::string::npos) << what;
        }
    }
}

TEST(Manifest, RejectsMalformedLines)
{
    expect_manifest_error("p1 only-two\n", "needs", ":1:");
    expect_manifest_error("p1 t.fa q.fa extra\n", "extra field", ":1:");
    expect_manifest_error("bad/name t.fa q.fa\n", "not usable", ":1:");
    expect_manifest_error("p1 t.fa q.fa\n\np1 t2.fa q2.fa\n", "duplicate",
                          ":3:");
    expect_manifest_error("# only comments\n", "no entries", "");
}

TEST(Manifest, ValidPairNames)
{
    EXPECT_TRUE(batch::valid_pair_name("ce11-cb4"));
    EXPECT_TRUE(batch::valid_pair_name("a.b_c-9"));
    EXPECT_FALSE(batch::valid_pair_name(""));
    EXPECT_FALSE(batch::valid_pair_name("a b"));
    EXPECT_FALSE(batch::valid_pair_name("a/b"));
    EXPECT_FALSE(batch::valid_pair_name("a\"b"));
}

TEST(Manifest, ValidatesGenomesAreNonEmpty)
{
    batch::ManifestPair pair;
    pair.name = "p1";
    pair.target_path = "t.fa";
    pair.query_path = "q.fa";
    seq::Genome empty;
    seq::Genome full;
    full.add_chromosome(seq::Sequence("chr1", "ACGTACGT"));
    try {
        batch::validate_pair_genomes(pair, empty, full);
        FAIL() << "empty target must be fatal";
    } catch (const FatalError& error) {
        const std::string what = error.what();
        EXPECT_NE(what.find("p1"), std::string::npos);
        EXPECT_NE(what.find("t.fa"), std::string::npos);
    }
    EXPECT_THROW(batch::validate_pair_genomes(pair, full, empty), FatalError);
    EXPECT_NO_THROW(batch::validate_pair_genomes(pair, full, full));
}

// ----------------------------------------------------- FASTA ingestion

void
expect_fasta_error(const std::string& text, const std::string& fragment,
                   const std::string& line_tag)
{
    std::istringstream in(text);
    try {
        seq::read_fasta(in, "input.fa");
        FAIL() << "expected FatalError for: " << text;
    } catch (const FatalError& error) {
        const std::string what = error.what();
        EXPECT_NE(what.find("input.fa"), std::string::npos) << what;
        EXPECT_NE(what.find(fragment), std::string::npos) << what;
        if (!line_tag.empty()) {
            EXPECT_NE(what.find(line_tag), std::string::npos) << what;
        }
    }
}

TEST(FastaHardening, EmptyAndTruncatedRecordsAreFatal)
{
    expect_fasta_error(">r1\n", "no sequence data", ":1:");
    expect_fasta_error(">r1\n>r2\nACGT\n", "no sequence data", ":1:");
    expect_fasta_error("ACGT\n>r1\nACGT\n", "before first", ":1:");
    expect_fasta_error(">\nACGT\n", "empty record name", ":1:");
}

TEST(FastaHardening, NonNucleotideBytesAreFatalWithPosition)
{
    // 'E' is a letter but not an IUPAC nucleotide code — a classic sign
    // of protein FASTA or a corrupt download.
    expect_fasta_error(">r1\nACGT\nACETG\n", "IUPAC", ":3:");
    // A digit is not even a letter.
    expect_fasta_error(">r1\nAC1T\n", "invalid character", ":2:");
}

TEST(FastaHardening, IupacAmbiguityCodesStillParse)
{
    std::istringstream in(">r1\nACGTNRYSWKMBDHVacgtn\n");
    const auto records = seq::read_fasta(in, "input.fa");
    ASSERT_EQ(records.size(), 1u);
    EXPECT_EQ(records[0].size(), 20u);
}

// ------------------------------------------- queues/pools under faults

TEST(WorkQueueFaults, NoTaskLossWhenConsumersThrow)
{
    WorkQueue<int> queue(8);
    constexpr int kItems = 2'000;
    std::atomic<int> processed{0};
    std::atomic<int> faulted{0};

    std::vector<std::thread> consumers;
    for (int c = 0; c < 4; ++c) {
        consumers.emplace_back([&] {
            while (auto item = queue.pop()) {
                try {
                    if (*item % 13 == 0)
                        throw std::runtime_error("injected consumer fault");
                    processed.fetch_add(1);
                } catch (const std::runtime_error&) {
                    faulted.fetch_add(1);
                }
            }
        });
    }
    std::vector<std::thread> producers;
    for (int p = 0; p < 2; ++p) {
        producers.emplace_back([&, p] {
            for (int i = p; i < kItems; i += 2)
                ASSERT_TRUE(queue.push(i));
        });
    }
    for (auto& producer : producers)
        producer.join();
    queue.close();
    for (auto& consumer : consumers)
        consumer.join();
    // Every accepted item was observed exactly once, thrown or not.
    EXPECT_EQ(processed.load() + faulted.load(), kItems);
    EXPECT_GT(faulted.load(), 0);
    EXPECT_EQ(queue.size(), 0u);
}

TEST(WorkQueueFaults, CloseUnblocksProducersWithoutLoss)
{
    WorkQueue<int> queue(2);
    ASSERT_TRUE(queue.push(1));
    ASSERT_TRUE(queue.push(2));
    std::thread producer([&] {
        int item = 3;
        // Blocks on the full queue until close(), then reports refusal.
        EXPECT_FALSE(queue.push(item));
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    queue.close();
    producer.join();
    // The two accepted items drain; the refused item is gone.
    EXPECT_TRUE(queue.pop().has_value());
    EXPECT_TRUE(queue.pop().has_value());
    EXPECT_FALSE(queue.pop().has_value());
}

TEST(ThreadPoolFaults, ParallelForPropagatesAndPoolSurvives)
{
    ThreadPool pool(4);
    std::atomic<int> ran{0};
    EXPECT_THROW(
        pool.parallel_for(0, 100,
                          [&](std::size_t i) {
                              ran.fetch_add(1);
                              if (i == 37)
                                  throw std::runtime_error("injected");
                          }),
        std::runtime_error);
    // The pool is not poisoned: later work still runs to completion.
    std::atomic<int> after{0};
    pool.parallel_for(0, 50, [&](std::size_t) { after.fetch_add(1); });
    EXPECT_EQ(after.load(), 50);
    pool.wait_idle();
}

TEST(ThreadPoolFaults, InjectedFaultPlanPropagatesThroughPool)
{
    const auto plan = fault::FaultPlan::parse("pool.task:throw:after=10");
    fault::install_fault_plan(&plan);
    ThreadPool pool(4);
    try {
        EXPECT_THROW(pool.parallel_for(
                         0, 64, [&](std::size_t) { fault::poll("pool.task"); }),
                     fault::InjectedFault);
    } catch (...) {
        fault::install_fault_plan(nullptr);
        throw;
    }
    fault::install_fault_plan(nullptr);
    // Pool drains cleanly afterward.
    std::atomic<int> after{0};
    pool.parallel_for(0, 8, [&](std::size_t) { after.fetch_add(1); });
    EXPECT_EQ(after.load(), 8);
}

}  // namespace
}  // namespace darwin
