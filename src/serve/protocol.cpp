#include "serve/protocol.h"

#include <cctype>
#include <charconv>
#include <cmath>

#include "util/strings.h"

namespace darwin::serve {

namespace {

/** A decoded flat-JSON value (objects recurse one level for budget). */
struct Value {
    enum class Kind { String, Number, Bool, Null, Object };
    Kind kind = Kind::Null;
    std::string string;
    double number = 0.0;
    bool boolean = false;
    std::vector<std::pair<std::string, Value>> object;
};

/** Recursive-descent cursor over one request line. */
class Parser {
  public:
    explicit Parser(const std::string& text) : text_(text) {}

    Value
    parse_top()
    {
        skip_ws();
        Value value = parse_value(0);
        skip_ws();
        if (pos_ != text_.size())
            fail("trailing characters after the JSON object");
        if (value.kind != Value::Kind::Object)
            fail("request must be a JSON object");
        return value;
    }

  private:
    [[noreturn]] void
    fail(const std::string& what)
    {
        throw ProtocolError(strprintf("offset %zu: %s", pos_,
                                      what.c_str()));
    }

    void
    skip_ws()
    {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_])))
            ++pos_;
    }

    char
    peek()
    {
        if (pos_ >= text_.size())
            fail("unexpected end of input");
        return text_[pos_];
    }

    void
    expect(char c)
    {
        if (peek() != c)
            fail(strprintf("expected '%c'", c));
        ++pos_;
    }

    bool
    consume_literal(const char* literal)
    {
        const std::size_t n = std::char_traits<char>::length(literal);
        if (text_.compare(pos_, n, literal) != 0)
            return false;
        pos_ += n;
        return true;
    }

    Value
    parse_value(int depth)
    {
        skip_ws();
        const char c = peek();
        if (c == '{')
            return parse_object(depth);
        if (c == '"')
            return parse_string();
        if (c == 't' || c == 'f')
            return parse_bool();
        if (c == 'n') {
            if (!consume_literal("null"))
                fail("bad literal");
            return Value{};
        }
        if (c == '-' || (c >= '0' && c <= '9'))
            return parse_number();
        fail("arrays and other value types are not part of the "
             "protocol");
    }

    Value
    parse_object(int depth)
    {
        if (depth > 1)
            fail("objects nest at most one level (the budget field)");
        expect('{');
        Value value;
        value.kind = Value::Kind::Object;
        skip_ws();
        if (peek() == '}') {
            ++pos_;
            return value;
        }
        while (true) {
            skip_ws();
            Value key = parse_string();
            skip_ws();
            expect(':');
            Value item = parse_value(depth + 1);
            value.object.emplace_back(std::move(key.string),
                                      std::move(item));
            skip_ws();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            expect('}');
            return value;
        }
    }

    Value
    parse_string()
    {
        expect('"');
        Value value;
        value.kind = Value::Kind::String;
        while (true) {
            if (pos_ >= text_.size())
                fail("unterminated string");
            const char c = text_[pos_++];
            if (c == '"')
                return value;
            if (static_cast<unsigned char>(c) < 0x20)
                fail("unescaped control character in string");
            if (c != '\\') {
                value.string.push_back(c);
                continue;
            }
            if (pos_ >= text_.size())
                fail("unterminated escape");
            const char esc = text_[pos_++];
            switch (esc) {
            case '"': value.string.push_back('"'); break;
            case '\\': value.string.push_back('\\'); break;
            case '/': value.string.push_back('/'); break;
            case 'b': value.string.push_back('\b'); break;
            case 'f': value.string.push_back('\f'); break;
            case 'n': value.string.push_back('\n'); break;
            case 'r': value.string.push_back('\r'); break;
            case 't': value.string.push_back('\t'); break;
            case 'u': {
                // Paths and ids are ASCII in practice; decode the BMP
                // escape to a byte when it fits, reject otherwise.
                if (pos_ + 4 > text_.size())
                    fail("truncated \\u escape");
                unsigned code = 0;
                for (int i = 0; i < 4; ++i) {
                    const char h = text_[pos_++];
                    code <<= 4;
                    if (h >= '0' && h <= '9')
                        code |= static_cast<unsigned>(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        code |= static_cast<unsigned>(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        code |= static_cast<unsigned>(h - 'A' + 10);
                    else
                        fail("bad \\u escape digit");
                }
                if (code > 0x7f)
                    fail("non-ASCII \\u escapes are not supported");
                value.string.push_back(static_cast<char>(code));
                break;
            }
            default: fail("unknown escape");
            }
        }
    }

    Value
    parse_bool()
    {
        Value value;
        value.kind = Value::Kind::Bool;
        if (consume_literal("true")) {
            value.boolean = true;
            return value;
        }
        if (consume_literal("false")) {
            value.boolean = false;
            return value;
        }
        fail("bad literal");
    }

    Value
    parse_number()
    {
        const std::size_t start = pos_;
        if (peek() == '-')
            ++pos_;
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '.' || text_[pos_] == 'e' ||
                text_[pos_] == 'E' || text_[pos_] == '+' ||
                text_[pos_] == '-'))
            ++pos_;
        Value value;
        value.kind = Value::Kind::Number;
        const char* first = text_.data() + start;
        const char* last = text_.data() + pos_;
        const auto [end, err] =
            std::from_chars(first, last, value.number);
        if (err != std::errc{} || end != last)
            fail("malformed number");
        return value;
    }

    const std::string& text_;
    std::size_t pos_ = 0;
};

const Value*
find(const Value& object, const std::string& key)
{
    for (const auto& [k, v] : object.object)
        if (k == key)
            return &v;
    return nullptr;
}

std::string
get_string(const Value& object, const std::string& key,
           const std::string& fallback = {})
{
    const Value* value = find(object, key);
    if (value == nullptr || value->kind == Value::Kind::Null)
        return fallback;
    if (value->kind != Value::Kind::String)
        throw ProtocolError(strprintf("field '%s' must be a string",
                                      key.c_str()));
    return value->string;
}

bool
get_bool(const Value& object, const std::string& key, bool fallback)
{
    const Value* value = find(object, key);
    if (value == nullptr || value->kind == Value::Kind::Null)
        return fallback;
    if (value->kind != Value::Kind::Bool)
        throw ProtocolError(strprintf("field '%s' must be a boolean",
                                      key.c_str()));
    return value->boolean;
}

double
get_number(const Value& object, const std::string& key, double fallback)
{
    const Value* value = find(object, key);
    if (value == nullptr || value->kind == Value::Kind::Null)
        return fallback;
    if (value->kind != Value::Kind::Number)
        throw ProtocolError(strprintf("field '%s' must be a number",
                                      key.c_str()));
    return value->number;
}

std::uint64_t
get_count(const Value& object, const std::string& key)
{
    const double number = get_number(object, key, 0.0);
    if (number < 0.0 || number != std::floor(number))
        throw ProtocolError(strprintf(
            "field '%s' must be a non-negative integer", key.c_str()));
    return static_cast<std::uint64_t>(number);
}

}  // namespace

const char*
op_name(Op op)
{
    switch (op) {
    case Op::Ping: return "ping";
    case Op::Status: return "status";
    case Op::Stats: return "stats";
    case Op::DumpTrace: return "dump_trace";
    case Op::Align: return "align";
    case Op::Shutdown: return "shutdown";
    }
    return "?";
}

Request
parse_request(const std::string& line)
{
    const Value root = Parser(line).parse_top();

    Request request;
    // ids may arrive as strings or numbers; keep the rendered text.
    if (const Value* id = find(root, "id")) {
        if (id->kind == Value::Kind::String)
            request.id = id->string;
        else if (id->kind == Value::Kind::Number)
            request.id = strprintf("%.17g", id->number);
        else if (id->kind != Value::Kind::Null)
            throw ProtocolError("field 'id' must be a string or number");
    }

    const std::string op = get_string(root, "op");
    if (op == "ping")
        request.op = Op::Ping;
    else if (op == "status")
        request.op = Op::Status;
    else if (op == "stats")
        request.op = Op::Stats;
    else if (op == "dump_trace")
        request.op = Op::DumpTrace;
    else if (op == "align")
        request.op = Op::Align;
    else if (op == "shutdown")
        request.op = Op::Shutdown;
    else if (op.empty())
        throw ProtocolError("missing 'op' field");
    else
        throw ProtocolError(strprintf("unknown op '%s'", op.c_str()));

    if (request.op == Op::DumpTrace) {
        request.out = get_string(root, "out");
        if (request.out.empty())
            throw ProtocolError("dump_trace requires 'out'");
    }

    if (request.op == Op::Align) {
        request.target = get_string(root, "target");
        request.query = get_string(root, "query");
        request.out = get_string(root, "out");
        request.index = get_string(root, "index");
        request.preset = get_string(root, "preset", "darwin");
        request.both_strands = get_bool(root, "both_strands", true);
        request.no_transitions = get_bool(root, "no_transitions", false);
        if (request.target.empty() || request.query.empty() ||
            request.out.empty())
            throw ProtocolError(
                "align requires 'target', 'query', and 'out'");
        if (request.preset != "darwin" && request.preset != "lastz")
            throw ProtocolError(strprintf("unknown preset '%s'",
                                          request.preset.c_str()));
        if (const Value* budget = find(root, "budget")) {
            if (budget->kind != Value::Kind::Object)
                throw ProtocolError("field 'budget' must be an object");
            request.budget.wall_seconds =
                get_number(*budget, "wall_seconds", 0.0);
            request.budget.max_cells = get_count(*budget, "max_cells");
            request.budget.max_heap_bytes =
                get_count(*budget, "max_heap_bytes");
            if (request.budget.wall_seconds < 0.0)
                throw ProtocolError(
                    "budget wall_seconds must be non-negative");
            request.has_budget = true;
        }
        request.deadline_ms = get_number(root, "deadline_ms", 0.0);
        if (request.deadline_ms < 0.0)
            throw ProtocolError("deadline_ms must be non-negative");
    }
    return request;
}

void
Response::add_string(const std::string& key, const std::string& value)
{
    fields.emplace_back(key, std::make_pair(false, value));
}

void
Response::add_raw(const std::string& key, const std::string& value)
{
    fields.emplace_back(key, std::make_pair(true, value));
}

void
Response::add_int(const std::string& key, std::int64_t value)
{
    add_raw(key, strprintf("%lld", static_cast<long long>(value)));
}

void
Response::add_double(const std::string& key, double value)
{
    add_raw(key, strprintf("%.6g", value));
}

std::string
serialize_response(const Response& response)
{
    std::string out = "{";
    out += "\"id\": " + json_quote(response.id);
    out += ", \"status\": ";
    out += response.ok ? "\"ok\"" : "\"error\"";
    for (const auto& [key, value] : response.fields) {
        out += ", " + json_quote(key) + ": ";
        out += value.first ? value.second : json_quote(value.second);
    }
    out += "}";
    return out;
}

Response
error_response(const std::string& id, const std::string& reason,
               const std::string& message)
{
    Response response;
    response.id = id;
    response.ok = false;
    response.add_string("reason", reason);
    response.add_string("error", message);
    return response;
}

}  // namespace darwin::serve
