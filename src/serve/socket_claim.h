/**
 * @file
 * Safe claiming of the daemon's AF_UNIX listen socket.
 *
 * `darwin-wga-serve --socket PATH` must not unlink a *running*
 * daemon's socket out from under it. claim_unix_socket() probes an
 * existing path with connect(): a live listener answers and the claim
 * fails with SocketInUseError (the tool maps it to exit 2); a stale
 * path — left by a crashed or SIGKILLed daemon — refuses the
 * connection and is unlinked, and the new daemon takes the address
 * over.
 */
#ifndef DARWIN_SERVE_SOCKET_CLAIM_H
#define DARWIN_SERVE_SOCKET_CLAIM_H

#include <string>

#include "util/logging.h"

namespace darwin::serve {

/** The socket path is owned by a live daemon; starting another one
 *  here would hijack its clients. */
class SocketInUseError : public FatalError {
  public:
    explicit SocketInUseError(const std::string& msg) : FatalError(msg) {}
};

/**
 * Bind and listen on an AF_UNIX socket at `path`, taking over a stale
 * socket file but refusing (SocketInUseError) a live one. Returns the
 * listening descriptor; throws FatalError on other failures.
 */
int claim_unix_socket(const std::string& path, int backlog = 16);

}  // namespace darwin::serve

#endif  // DARWIN_SERVE_SOCKET_CLAIM_H
