#include "serve/socket_claim.h"

#include <cerrno>
#include <cstring>

#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/un.h>
#include <unistd.h>

#include "util/strings.h"

namespace darwin::serve {

namespace {

void
fill_address(const std::string& path, sockaddr_un* addr)
{
    std::memset(addr, 0, sizeof(*addr));
    addr->sun_family = AF_UNIX;
    if (path.size() >= sizeof(addr->sun_path))
        fatal(strprintf("socket path too long (%zu bytes, max %zu): %s",
                        path.size(), sizeof(addr->sun_path) - 1,
                        path.c_str()));
    std::memcpy(addr->sun_path, path.c_str(), path.size());
}

/** Is something answering at `path` right now? */
bool
socket_is_live(const std::string& path)
{
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0)
        fatal(strprintf("socket(): %s", std::strerror(errno)));
    sockaddr_un addr;
    fill_address(path, &addr);
    const int rc = ::connect(fd, reinterpret_cast<sockaddr*>(&addr),
                             sizeof(addr));
    const int saved = errno;
    ::close(fd);
    if (rc == 0)
        return true;
    // ECONNREFUSED / ENOENT: nobody is listening — the file is stale.
    // Anything else (EACCES, ...) is treated as live: when in doubt,
    // refuse to unlink.
    return saved != ECONNREFUSED && saved != ENOENT;
}

}  // namespace

int
claim_unix_socket(const std::string& path, int backlog)
{
    struct stat st;
    if (::lstat(path.c_str(), &st) == 0) {
        if (!S_ISSOCK(st.st_mode))
            fatal(strprintf("%s exists and is not a socket",
                            path.c_str()));
        if (socket_is_live(path))
            throw SocketInUseError(strprintf(
                "%s is owned by a live daemon; refusing to take it "
                "over (stop that daemon or pick another --socket path)",
                path.c_str()));
        inform(strprintf("serve: taking over stale socket %s",
                         path.c_str()));
        ::unlink(path.c_str());
    }

    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0)
        fatal(strprintf("socket(): %s", std::strerror(errno)));
    sockaddr_un addr;
    fill_address(path, &addr);
    if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
        0) {
        const int saved = errno;
        ::close(fd);
        fatal(strprintf("bind(%s): %s", path.c_str(),
                        std::strerror(saved)));
    }
    if (::listen(fd, backlog) < 0) {
        const int saved = errno;
        ::close(fd);
        ::unlink(path.c_str());
        fatal(strprintf("listen(%s): %s", path.c_str(),
                        std::strerror(saved)));
    }
    return fd;
}

}  // namespace darwin::serve
