/**
 * @file
 * Wire protocol of `darwin-wga-serve`: line-delimited JSON.
 *
 * Each request is one JSON object on one line; the daemon answers with
 * exactly one JSON object line per request, in completion order (the
 * `id` echoes back so clients can match them up). Operations:
 *
 *   {"op": "ping", "id": "1"}
 *       -> {"id": "1", "status": "ok", "op": "ping"}
 *   {"op": "status", "id": "2"}
 *       -> {"id": "2", "status": "ok", ... queue/cache gauges ...}
 *   {"op": "stats", "id": "s"}
 *       -> {"id": "s", "status": "ok", "metrics": {... full registry
 *           snapshot: counters/gauges/histograms with buckets ...}}
 *   {"op": "dump_trace", "id": "t", "out": "flight.trace.json"}
 *       -> {"id": "t", "status": "ok", "out": ..., "events": N,
 *           "dropped": D} after writing the flight-recorder ring (or
 *           the full --trace-out session) as a Chrome trace file.
 *   {"op": "align", "id": "3", "target": "t.fa", "query": "q.fa",
 *    "out": "out.maf", "index": "t.dwi", "preset": "darwin",
 *    "both_strands": true, "no_transitions": false,
 *    "budget": {"wall_seconds": 30, "max_cells": 0, "max_heap_bytes": 0}}
 *       -> {"id": "3", "status": "ok", "alignments": N, "chains": M,
 *           "matched_bases": K, "seconds": S}
 *   {"op": "shutdown", "id": "4"}
 *       -> {"id": "4", "status": "ok"} and the daemon drains and exits.
 *
 * `index` is optional: when given, the persisted index is mmap-loaded
 * (and verified against the target's sequence digest) instead of
 * rebuilding the table. `out` is where the MAF is written — the daemon
 * moves alignment results by file, not over the wire, so responses stay
 * one line. Failures answer {"id": ..., "status": "error", "error":
 * "...", "reason": "..."} where `reason` is the budget axis for
 * overruns ("walltime" | "cells" | "heapbytes") or "bad_request" /
 * "failed". Two admission-control reasons carry extra fields:
 * "overloaded" (the admission queue or in-flight-bp cap is full; the
 * response carries a "retry_after_ms" hint from the observed service
 * time) and "deadline" (the optional "deadline_ms" request field
 * expired while the request waited in queue). Aligns served while the
 * daemon's circuit breaker is open carry "degraded": true and used the
 * narrowed fault/degrade.h parameters.
 *
 * The parser here is deliberately minimal — flat JSON objects with
 * string/number/bool/null values plus one nested object for `budget`.
 * It exists because the repo carries no JSON dependency; it is not a
 * general JSON library.
 */
#ifndef DARWIN_SERVE_PROTOCOL_H
#define DARWIN_SERVE_PROTOCOL_H

#include <cstdint>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "fault/cancel.h"

namespace darwin::serve {

/** Malformed request line; the server answers status "error",
 *  reason "bad_request" instead of dying. */
class ProtocolError : public std::runtime_error {
  public:
    explicit ProtocolError(const std::string& msg)
        : std::runtime_error(msg)
    {
    }
};

/** Request operations. */
enum class Op { Ping, Status, Stats, DumpTrace, Align, Shutdown };

const char* op_name(Op op);

/** One decoded request line. */
struct Request {
    std::string id;  ///< echoed back verbatim; may be empty
    Op op = Op::Ping;

    // align-only fields (`out` is also the dump_trace destination)
    std::string target;        ///< target FASTA path (required)
    std::string query;         ///< query FASTA path (required)
    std::string out;           ///< output MAF / trace path (required)
    std::string index;         ///< optional persisted .dwi path
    std::string preset = "darwin";  ///< "darwin" | "lastz"
    bool both_strands = true;
    bool no_transitions = false;
    /** Per-request budget; unlimited axes default to the server's. */
    fault::Budget budget;
    bool has_budget = false;
    /**
     * Client deadline in milliseconds from admission (0 = none). The
     * server sheds the request outright ("deadline") if it expires
     * while queued, and otherwise clamps the wall budget to the time
     * remaining so work for an expired client stops instead of
     * completing uselessly.
     */
    double deadline_ms = 0.0;
};

/**
 * Parse one request line. Throws ProtocolError on malformed JSON, an
 * unknown op, or a value of the wrong type; unknown keys are ignored
 * (forward compatibility).
 */
Request parse_request(const std::string& line);

/**
 * Values for one response line; serialize_response renders them with
 * string values quoted and raw (pre-rendered) values inline.
 */
struct Response {
    std::string id;
    bool ok = true;
    /** Extra fields in insertion order: key -> (is_raw, text). Raw
     *  values are emitted verbatim (numbers, booleans); others are
     *  JSON-quoted. */
    std::vector<std::pair<std::string, std::pair<bool, std::string>>>
        fields;

    void add_string(const std::string& key, const std::string& value);
    void add_raw(const std::string& key, const std::string& value);
    void add_int(const std::string& key, std::int64_t value);
    void add_double(const std::string& key, double value);
};

/** Render one response as a single JSON line (no trailing newline). */
std::string serialize_response(const Response& response);

/** Shorthand for an error response. */
Response error_response(const std::string& id, const std::string& reason,
                        const std::string& message);

}  // namespace darwin::serve

#endif  // DARWIN_SERVE_PROTOCOL_H
