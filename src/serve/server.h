/**
 * @file
 * The long-lived alignment service behind `darwin-wga-serve`.
 *
 * A Server owns a bounded request queue (util/work_queue.h) drained by a
 * small worker pool (util/thread_pool.h): the transport loop —
 * serve_stream() over iostreams or serve_fd() over raw descriptors —
 * only reads request lines and enqueues them, so a slow alignment never
 * blocks the daemon from accepting (or rejecting) the next request.
 * Responses are written in completion order; clients correlate by id.
 *
 * Each align request runs under its own fault::CancelToken armed with
 * the request's budget (or the server default), installed for the
 * worker thread via ContextScope — the same cooperative machinery the
 * batch engine uses, so a request that exceeds its wall/cells/heap
 * budget unwinds with a tagged error response while the daemon keeps
 * serving. stop() cancels every in-flight token, which is how SIGTERM
 * turns into a bounded drain instead of a hung exit.
 *
 * Overload safety (DESIGN.md §14): submit() is the admission point —
 * align requests past max_queue (or the in-flight bp cap) are shed
 * with an "overloaded" error carrying a retry_after_ms hint from the
 * EWMA of observed service time, so the transport never blocks and
 * the queue never grows without bound. A request's optional
 * deadline_ms maps onto its CancelToken wall budget (clamped by the
 * time it already waited in queue; expired requests are shed
 * "deadline" at dispatch without running). A CircuitBreaker
 * (fault/breaker.h) watches the budget-trip rate of full-fidelity
 * aligns and, while open, serves requests with the shared degrade
 * policy (fault/degrade.h) and a "degraded": true response field.
 *
 * Caching: target/query FASTAs are cached by path for the server's
 * lifetime, and seed indexes live in an LRU IndexCache keyed by
 * (sequence digest, seed shape, repeat cap) — a request naming a
 * persisted .dwi mmap-loads it (after verifying its header digest
 * matches the target), and repeat queries against the same target hit
 * the cache instead of rebuilding.
 *
 * Observability: "serve.*" metrics (request/ok/error counters, active
 * gauge, per-op latency histograms, serve.index.* cache counters) and
 * "serve"-category spans per request. Every request is assigned a
 * sequence number and tagged (obs::RequestTag) for the duration of its
 * handling, so all pipeline spans beneath it carry a {"req": n} arg —
 * the whole pipeline of one request runs on one worker thread, which is
 * what makes the thread-local tag sufficient. `Op::Stats` returns the
 * full metrics snapshot as JSON; `Op::DumpTrace` writes the attached
 * trace session (typically a FlightRecorder ring) as a Chrome trace
 * file; requests slower than options.slow_request_seconds emit one
 * structured warn record with the per-stage wall breakdown.
 */
#ifndef DARWIN_SERVE_SERVER_H
#define DARWIN_SERVE_SERVER_H

#include <atomic>
#include <chrono>
#include <functional>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <unordered_set>

#include "fault/breaker.h"
#include "fault/cancel.h"
#include "fault/degrade.h"
#include "index/index_cache.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "seq/genome.h"
#include "serve/protocol.h"
#include "util/thread_pool.h"
#include "util/work_queue.h"

namespace darwin::serve {

/** Daemon configuration. */
struct ServerOptions {
    /** Concurrent align requests (worker threads). */
    std::size_t num_workers = 2;

    /** Bound on queued-but-unstarted requests (backpressure). */
    std::size_t queue_capacity = 64;

    /** Resident seed indexes (LRU beyond this). */
    std::size_t index_cache_capacity = 8;

    /** Budget applied to align requests that carry none. */
    fault::Budget default_budget;

    /**
     * Align requests slower than this emit a structured slow-request
     * log record with the per-stage breakdown; 0 disables.
     */
    double slow_request_seconds = 0.0;

    /**
     * Hold resident genomes 2-bit packed (seq/packed_io.h ingestion
     * with the `.2bit` sidecar cache) and run requests over packed
     * storage (WgaPipeline::run_with_index_packed) — 4x less resident
     * memory per cached genome, bit-identical MAF output. Index cache
     * keys are unchanged (the packed digest equals the byte digest),
     * so persisted .dwi files keep working. Gapped presets only: an
     * ungapped (lastz) request against a packed server is a request
     * error.
     */
    bool packed_genomes = false;

    /**
     * Admission bound for align requests (--max-queue): an align
     * arriving while this many requests sit queued is shed with a
     * machine-readable "overloaded" error instead of blocking the
     * transport. 0 means the full queue_capacity. Control-plane ops
     * (ping/status/stats/shutdown) are never shed.
     */
    std::size_t max_queue = 0;

    /**
     * Cap on the summed cost estimate (query bp × strand passes) of
     * admitted-but-unfinished align requests (--max-inflight-bp);
     * 0 = unlimited. An align that would push the sum over the cap is
     * shed "overloaded" — unless nothing is in flight, so a single
     * oversized request is still served rather than rejected forever.
     */
    std::uint64_t max_inflight_bp = 0;

    /** Serve degraded instead of full-fidelity while the breaker is
     *  open (see fault/breaker.h). */
    bool breaker_enabled = true;
    fault::BreakerOptions breaker;

    /** Parameter transform for degraded serving; shared with the
     *  batch engine's degraded retry, plus the score-only probe pass
     *  (cheap wall time on the dead-heavy work overload brings). */
    fault::DegradePolicy degrade = {.band_divisor = 2,
                                    .min_band = 8,
                                    .ydrop_divisor = 2,
                                    .min_ydrop = 100,
                                    .max_hits_per_chunk = 256,
                                    .force_probe = true};
};

/** The request-processing core; transports plug in around it. */
class Server {
  public:
    /** Callback receiving one serialized response line (no newline). */
    using ResponseSink = std::function<void(const std::string&)>;

    explicit Server(ServerOptions options,
                    obs::MetricsRegistry* metrics = nullptr);
    ~Server();

    Server(const Server&) = delete;
    Server& operator=(const Server&) = delete;

    /**
     * Decode and execute one request line synchronously on the calling
     * thread, returning the response line. Never throws — malformed
     * input and failed requests come back as status "error" responses.
     */
    std::string handle_line(const std::string& line);

    /**
     * Enqueue a request line for the worker pool; `sink` is invoked
     * with the response from a worker thread. Returns false when the
     * server is stopping (the caller should drop the connection).
     *
     * Admission control happens here, on the transport thread: an
     * align request that finds the admission queue at max_queue (or
     * the in-flight bp cap exceeded) is answered immediately through
     * `sink` with status "error", reason "overloaded", and a
     * retry_after_ms hint derived from the EWMA of observed service
     * time — submit still returns true (the line was consumed).
     * Malformed lines are likewise answered synchronously.
     */
    bool submit(std::string line, ResponseSink sink);

    /**
     * Read newline-delimited requests from `in` until EOF or a shutdown
     * request, writing responses to `out` in completion order. Blocking
     * transport used by tests and `darwin-wga-serve` without --socket
     * when the input is a pipe that closes.
     */
    void serve_stream(std::istream& in, std::ostream& out);

    /**
     * poll()-driven transport over raw descriptors: wakes every 200 ms
     * to notice fault::shutdown_requested() (the SIGTERM path, which
     * glibc's SA_RESTART would hide from blocking reads) and drains
     * in-flight work before returning. Returns when the peer closes,
     * a client sends shutdown, or the process shutdown flag rises.
     */
    void serve_fd(int in_fd, int out_fd);

    /** Cancel in-flight requests and refuse new ones. Idempotent. */
    void stop();

    /** True once stop() ran or a client sent shutdown. */
    bool
    stopping() const
    {
        return stopping_.load(std::memory_order_acquire);
    }

    obs::MetricsRegistry& metrics() { return *metrics_; }
    const index::IndexCache& index_cache() const { return index_cache_; }
    const ServerOptions& options() const { return options_; }

    /** Queued-but-unstarted requests right now (for samplers). */
    std::size_t queue_depth() const { return queue_.size(); }

    /**
     * Attach the trace session Op::DumpTrace dumps (a FlightRecorder
     * or a full TraceSession). Not owned; set before serving, cleared
     * (nullptr) only after the transport loops return. Falls back to
     * the globally installed session when unset.
     */
    void
    set_trace_session(obs::TraceSession* session)
    {
        trace_session_ = session;
    }

    /** Current breaker state (for /statusz and samplers). */
    fault::BreakerState breaker_state() const { return breaker_.state(); }

  private:
    struct QueueItem {
        std::string line;
        Request request;   ///< parsed at admission when `parsed`
        bool parsed = false;  ///< false: worker re-parses (legacy path)
        ResponseSink sink;
        std::chrono::steady_clock::time_point enqueued;
        std::uint64_t cost_bp = 0;
    };

    std::string run_request(const Request* parsed, const std::string& line,
                            double queue_wait_seconds);
    Response handle_request(const Request& request,
                            double queue_wait_seconds);
    Response do_align(const Request& request, double queue_wait_seconds);
    Response do_status(const Request& request);
    Response do_stats(const Request& request);
    Response do_dump_trace(const Request& request);
    std::shared_ptr<const seq::Genome> load_genome(
        const std::string& path);
    std::shared_ptr<const seed::SeedIndex> acquire_index(
        const Request& request, const seq::Genome& target,
        const std::string& seed_pattern, bool* cache_hit);
    void worker_loop();
    std::uint64_t estimate_cost_bp(const Request& request) const;
    std::int64_t retry_after_ms_hint();
    void note_service_seconds(double seconds);
    Response shed_response(const Request& request, const char* reason,
                           const std::string& message);
    void publish_breaker();

    const ServerOptions options_;
    obs::MetricsRegistry fallback_metrics_;
    obs::MetricsRegistry* metrics_;
    obs::TraceSession* trace_session_ = nullptr;
    index::IndexCache index_cache_;

    std::mutex genome_mutex_;
    std::unordered_map<std::string, std::shared_ptr<const seq::Genome>>
        genomes_;

    WorkQueue<QueueItem> queue_;
    ThreadPool workers_;

    std::mutex token_mutex_;
    std::unordered_set<std::shared_ptr<fault::CancelToken>> active_;
    std::atomic<std::size_t> request_seq_{0};
    std::atomic<std::size_t> active_requests_{0};
    std::atomic<bool> stopping_{false};

    fault::CircuitBreaker breaker_;
    std::atomic<std::uint64_t> inflight_bp_{0};
    std::atomic<std::uint64_t> breaker_trips_published_{0};
    mutable std::mutex ewma_mutex_;
    double ewma_service_seconds_ = 0.0;  // guarded by ewma_mutex_
};

}  // namespace darwin::serve

#endif  // DARWIN_SERVE_SERVER_H
