#include "serve/server.h"

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <condition_variable>
#include <cstring>
#include <filesystem>
#include <istream>
#include <ostream>
#include <sstream>

#include <poll.h>
#include <unistd.h>

#include "batch/checkpoint.h"
#include "fault/fault_plan.h"
#include "index/index_io.h"
#include "obs/flight_recorder.h"
#include "obs/trace.h"
#include "seq/fasta.h"
#include "seq/packed_io.h"
#include "util/logging.h"
#include "util/strings.h"
#include "util/timer.h"
#include "wga/maf.h"
#include "wga/pipeline.h"

namespace darwin::serve {

namespace {

/** Completion tracker one serve loop uses to drain its own requests. */
struct Pending {
    std::mutex mutex;
    std::condition_variable cv;
    std::size_t count = 0;

    void
    add()
    {
        std::lock_guard lock(mutex);
        ++count;
    }

    void
    done()
    {
        {
            std::lock_guard lock(mutex);
            --count;
        }
        cv.notify_all();
    }

    void
    wait_empty()
    {
        std::unique_lock lock(mutex);
        cv.wait(lock, [this] { return count == 0; });
    }
};

}  // namespace

Server::Server(ServerOptions options, obs::MetricsRegistry* metrics)
    : options_(options),
      metrics_(metrics != nullptr ? metrics : &fallback_metrics_),
      index_cache_(std::max<std::size_t>(options.index_cache_capacity, 1),
                   metrics_, "serve.index"),
      queue_(options.queue_capacity),
      workers_(std::max<std::size_t>(options.num_workers, 1)),
      breaker_(options.breaker)
{
    metrics_->gauge("serve.workers")
        .set(static_cast<std::int64_t>(workers_.size()));
    for (std::size_t w = 0; w < workers_.size(); ++w)
        workers_.submit([this] { worker_loop(); });
}

Server::~Server()
{
    stop();
    // ThreadPool's destructor joins the workers after they drain the
    // closed queue, so every accepted request still gets its response.
}

void
Server::worker_loop()
{
    while (auto item = queue_.pop()) {
        const double waited =
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - item->enqueued)
                .count();
        metrics_->histogram("serve.queue.wait_seconds").observe(waited);
        std::string response;
        if (item->parsed && item->request.op == Op::Align &&
            item->request.deadline_ms > 0.0 &&
            waited * 1000.0 >= item->request.deadline_ms) {
            // The client's deadline expired while the request sat in
            // queue; running it now would complete uselessly.
            metrics_->counter("serve.admission.shed").add(1);
            metrics_->counter("serve.deadline.expired").add(1);
            response = serialize_response(shed_response(
                item->request, "deadline",
                strprintf("deadline_ms %.0f expired after %.0f ms in "
                          "queue",
                          item->request.deadline_ms, waited * 1000.0)));
        } else {
            response = run_request(item->parsed ? &item->request : nullptr,
                                   item->line, waited);
        }
        if (item->cost_bp > 0)
            inflight_bp_.fetch_sub(item->cost_bp,
                                   std::memory_order_acq_rel);
        // The respond probe models a failing response path: an
        // injected throw corrupts this response into a tagged error
        // line (still delivered, so transports drain); a stall delays
        // it.
        try {
            fault::poll("serve.respond");
        } catch (const std::exception& error) {
            metrics_->counter("serve.respond.errors").add(1);
            response = serialize_response(error_response(
                item->request.id, "injected", error.what()));
        }
        if (item->sink) {
            try {
                item->sink(response);
            } catch (...) {
                // A dead connection must not kill the worker.
            }
        }
    }
}

std::uint64_t
Server::estimate_cost_bp(const Request& request) const
{
    // Query bp (by file size — a fine proxy for FASTA) times the
    // number of strand passes the request will run. Unreadable paths
    // cost 0 here; the worker will answer with the real error.
    std::error_code ec;
    const auto size =
        std::filesystem::file_size(request.query, ec);
    if (ec)
        return 0;
    return static_cast<std::uint64_t>(size) *
           (request.both_strands ? 2u : 1u);
}

std::int64_t
Server::retry_after_ms_hint()
{
    double ewma;
    {
        std::lock_guard lock(ewma_mutex_);
        ewma = ewma_service_seconds_;
    }
    if (ewma <= 0.0)
        ewma = 0.1;  // no observation yet: suggest a modest backoff
    const double hint =
        ewma * static_cast<double>(queue_.size() + 1) * 1000.0;
    const auto clamped = static_cast<std::int64_t>(
        std::min(60000.0, std::max(1.0, std::ceil(hint))));
    metrics_->gauge("serve.admission.retry_after_ms").set(clamped);
    return clamped;
}

void
Server::note_service_seconds(double seconds)
{
    std::lock_guard lock(ewma_mutex_);
    ewma_service_seconds_ =
        ewma_service_seconds_ <= 0.0
            ? seconds
            : 0.8 * ewma_service_seconds_ + 0.2 * seconds;
}

Response
Server::shed_response(const Request& request, const char* reason,
                      const std::string& message)
{
    Response response = error_response(request.id, reason, message);
    response.add_int("retry_after_ms", retry_after_ms_hint());
    return response;
}

bool
Server::submit(std::string line, ResponseSink sink)
{
    if (stopping())
        return false;

    QueueItem item;
    item.sink = std::move(sink);
    item.enqueued = std::chrono::steady_clock::now();
    const auto answer = [&item](const Response& response) {
        if (item.sink) {
            try {
                item.sink(serialize_response(response));
            } catch (...) {
            }
        }
    };
    try {
        item.request = parse_request(line);
        item.parsed = true;
        fault::poll("serve.admit");
    } catch (const ProtocolError&) {
        // Let the worker re-parse and answer bad_request in completion
        // order, exactly as before admission control existed.
        item.parsed = false;
    } catch (const std::exception& error) {
        answer(error_response(item.request.id, "injected", error.what()));
        return true;
    }
    item.line = std::move(line);

    if (item.parsed && item.request.op == Op::Align) {
        // Admission control: align work is shed, never queued blind.
        // Control-plane ops below skip this and use a blocking push so
        // status/shutdown always get through.
        const std::size_t bound =
            options_.max_queue > 0
                ? std::min(options_.max_queue, queue_.capacity())
                : queue_.capacity();
        if (queue_.size() >= bound) {
            metrics_->counter("serve.admission.shed").add(1);
            answer(shed_response(
                item.request, "overloaded",
                strprintf("admission queue is full (%zu queued, "
                          "max %zu)",
                          queue_.size(), bound)));
            return true;
        }
        item.cost_bp = estimate_cost_bp(item.request);
        if (options_.max_inflight_bp > 0) {
            const std::uint64_t inflight =
                inflight_bp_.load(std::memory_order_acquire);
            // A lone oversized request still runs; rejecting it
            // forever would turn a sizing mistake into an outage.
            if (inflight > 0 &&
                inflight + item.cost_bp > options_.max_inflight_bp) {
                metrics_->counter("serve.admission.shed").add(1);
                answer(shed_response(
                    item.request, "overloaded",
                    strprintf("in-flight work is at %llu bp of the "
                              "%llu bp cap",
                              static_cast<unsigned long long>(inflight),
                              static_cast<unsigned long long>(
                                  options_.max_inflight_bp))));
                return true;
            }
            inflight_bp_.fetch_add(item.cost_bp,
                                   std::memory_order_acq_rel);
        } else {
            item.cost_bp = 0;  // nothing to release
        }
        metrics_->counter("serve.admission.accepted").add(1);
    }
    const std::uint64_t charged = item.cost_bp;
    if (queue_.push(std::move(item)))
        return true;
    if (charged > 0)
        inflight_bp_.fetch_sub(charged, std::memory_order_acq_rel);
    return false;
}

void
Server::stop()
{
    // No first-call guard: a client shutdown op raises stopping_ without
    // closing the queue (its own response must still go out), so stop()
    // must always close it. Every step here is idempotent.
    stopping_.store(true, std::memory_order_release);
    queue_.close();
    std::lock_guard lock(token_mutex_);
    for (const auto& token : active_)
        token->cancel(fault::CancelReason::External);
}

std::string
Server::handle_line(const std::string& line)
{
    return run_request(nullptr, line, 0.0);
}

std::string
Server::run_request(const Request* parsed, const std::string& line,
                    double queue_wait_seconds)
{
    Timer timer;
    metrics_->counter("serve.requests").add(1);
    metrics_->gauge("serve.active")
        .set(static_cast<std::int64_t>(
            active_requests_.fetch_add(1, std::memory_order_acq_rel) + 1));

    // One sequence number per request, installed as the thread-local
    // request tag: every span begun while handling — the op span here
    // and the pipeline's seed/filter/extend/chain spans beneath
    // do_align — carries a {"req": n} arg, and do_align reuses the same
    // number for its fault::ContextScope, so traces, logs, and
    // quarantine records all attribute by one id.
    const std::size_t seq_no =
        request_seq_.fetch_add(1, std::memory_order_relaxed);
    obs::RequestTag tag(static_cast<std::int64_t>(seq_no));

    bool ran_align = false;
    Response response;
    try {
        Request local;
        if (parsed == nullptr)
            local = parse_request(line);
        const Request& request = parsed != nullptr ? *parsed : local;
        fault::poll("serve.dispatch");
        ran_align = request.op == Op::Align;
        obs::ScopedSpan span(op_name(request.op), "serve");
        response = handle_request(request, queue_wait_seconds);
    } catch (const ProtocolError& error) {
        response = error_response("", "bad_request", error.what());
    } catch (const fault::InjectedFault& error) {
        response = error_response(
            parsed != nullptr ? parsed->id : "", "injected", error.what());
    } catch (const fault::CancelledError& error) {
        response = error_response(
            "", fault::cancel_reason_name(error.reason()), error.what());
    } catch (const std::exception& error) {
        response = error_response("", "failed", error.what());
    }

    metrics_->counter(response.ok ? "serve.ok" : "serve.errors").add(1);
    metrics_->histogram("serve.request.seconds").observe(timer.seconds());
    if (ran_align)
        note_service_seconds(timer.seconds());
    metrics_->gauge("serve.active")
        .set(static_cast<std::int64_t>(
            active_requests_.fetch_sub(1, std::memory_order_acq_rel) - 1));
    return serialize_response(response);
}

Response
Server::handle_request(const Request& request, double queue_wait_seconds)
{
    try {
        switch (request.op) {
        case Op::Ping: {
            Response response;
            response.id = request.id;
            response.add_string("op", "ping");
            return response;
        }
        case Op::Status:
            return do_status(request);
        case Op::Stats:
            return do_stats(request);
        case Op::DumpTrace:
            return do_dump_trace(request);
        case Op::Align:
            return do_align(request, queue_wait_seconds);
        case Op::Shutdown: {
            inform("serve: shutdown requested by client");
            stopping_.store(true, std::memory_order_release);
            Response response;
            response.id = request.id;
            response.add_string("op", "shutdown");
            return response;
        }
        }
        return error_response(request.id, "bad_request", "unhandled op");
    } catch (const fault::CancelledError& error) {
        return error_response(request.id,
                              fault::cancel_reason_name(error.reason()),
                              error.what());
    } catch (const FatalError& error) {
        return error_response(request.id, "failed", error.what());
    } catch (const std::exception& error) {
        return error_response(request.id, "failed", error.what());
    }
}

Response
Server::do_status(const Request& request)
{
    Response response;
    response.id = request.id;
    const auto counter = [this](const char* name) -> std::int64_t {
        const obs::Counter* c = metrics_->find_counter(name);
        return c != nullptr ? static_cast<std::int64_t>(c->value()) : 0;
    };
    response.add_string("op", "status");
    response.add_int("requests", counter("serve.requests"));
    response.add_int("ok", counter("serve.ok"));
    response.add_int("errors", counter("serve.errors"));
    response.add_int("queue_depth",
                     static_cast<std::int64_t>(queue_.size()));
    response.add_int("workers",
                     static_cast<std::int64_t>(workers_.size()));
    response.add_int("index_cached",
                     static_cast<std::int64_t>(index_cache_.size()));
    response.add_int("index_hits",
                     static_cast<std::int64_t>(index_cache_.hits()));
    response.add_int("index_misses",
                     static_cast<std::int64_t>(index_cache_.misses()));
    response.add_int("genomes_cached", [this] {
        std::lock_guard lock(genome_mutex_);
        return static_cast<std::int64_t>(genomes_.size());
    }());
    response.add_string("breaker",
                        fault::breaker_state_name(breaker_.state()));
    response.add_int("shed", counter("serve.admission.shed"));
    return response;
}

Response
Server::do_stats(const Request& request)
{
    Response response;
    response.id = request.id;
    response.add_string("op", "stats");
    // The full registry as one consistent snapshot — the same object
    // GET /metrics renders as Prometheus text, embedded raw so clients
    // read it as structured JSON rather than a quoted blob.
    response.add_raw("metrics", metrics_->to_json_compact());
    return response;
}

Response
Server::do_dump_trace(const Request& request)
{
    obs::TraceSession* session = trace_session_ != nullptr
                                     ? trace_session_
                                     : obs::TraceSession::current();
    if (session == nullptr)
        return error_response(request.id, "bad_request",
                              "no trace session is installed (start the "
                              "daemon with --flight-events > 0 or "
                              "--trace-out)");

    const std::size_t events = session->snapshot().size();
    std::ostringstream json;
    session->write_chrome_json(json);
    batch::write_file_atomic(request.out, json.str());

    Response response;
    response.id = request.id;
    response.add_string("op", "dump_trace");
    response.add_string("out", request.out);
    response.add_int("events", static_cast<std::int64_t>(events));
    if (const auto* flight =
            dynamic_cast<const obs::FlightRecorder*>(session)) {
        response.add_int("recorded",
                         static_cast<std::int64_t>(flight->recorded()));
        response.add_int("dropped",
                         static_cast<std::int64_t>(flight->dropped()));
    }
    return response;
}

std::shared_ptr<const seq::Genome>
Server::load_genome(const std::string& path)
{
    std::lock_guard lock(genome_mutex_);
    if (const auto it = genomes_.find(path); it != genomes_.end())
        return it->second;
    auto genome = std::make_shared<seq::Genome>(
        options_.packed_genomes ? seq::read_genome_packed(path)
                                : seq::read_genome(path));
    // Materialize the flattened form under the lock: first-build is not
    // safe to race, and every request reads it.
    if (options_.packed_genomes)
        genome->flattened_packed();
    else
        genome->flattened();
    genomes_.emplace(path, genome);
    return genome;
}

std::shared_ptr<const seed::SeedIndex>
Server::acquire_index(const Request& request, const seq::Genome& target,
                      const std::string& seed_pattern, bool* cache_hit)
{
    // The packed digest equals the byte digest on equal bases, so a
    // packed server hits the same cache entries (and accepts the same
    // .dwi files) a byte server would.
    const std::uint64_t digest =
        target.packed()
            ? index::sequence_digest(target.flattened_packed())
            : index::sequence_digest(target.flattened());
    const index::IndexKey key{digest, seed_pattern,
                              seed::SeedIndex::kDefaultMaxBucket};
    bool built = false;
    auto index = index_cache_.acquire(
        key,
        [&]() -> std::shared_ptr<const seed::SeedIndex> {
            if (!request.index.empty()) {
                index::IndexInfo info;
                auto loaded = index::load_index(request.index, &info);
                if (info.sequence_digest != digest)
                    fatal(strprintf(
                        "%s: index was built from a different sequence "
                        "than %s (digest %016llx vs %016llx)",
                        request.index.c_str(), request.target.c_str(),
                        static_cast<unsigned long long>(
                            info.sequence_digest),
                        static_cast<unsigned long long>(digest)));
                if (info.pattern != seed_pattern)
                    fatal(strprintf(
                        "%s: index seed shape %s does not match the "
                        "requested preset's %s",
                        request.index.c_str(), info.pattern.c_str(),
                        seed_pattern.c_str()));
                if (info.max_bucket != seed::SeedIndex::kDefaultMaxBucket)
                    fatal(strprintf(
                        "%s: index max_bucket %u differs from the "
                        "server's %u",
                        request.index.c_str(), info.max_bucket,
                        seed::SeedIndex::kDefaultMaxBucket));
                return loaded;
            }
            if (target.packed())
                return std::make_shared<const seed::SeedIndex>(
                    target.flattened_packed(),
                    seed::SeedPattern(seed_pattern));
            return std::make_shared<const seed::SeedIndex>(
                target.flattened(), seed::SeedPattern(seed_pattern));
        },
        &built);
    if (cache_hit != nullptr)
        *cache_hit = !built;
    return index;
}

void
Server::publish_breaker()
{
    metrics_->gauge("serve.breaker.state")
        .set(static_cast<std::int64_t>(breaker_.state()));
    const std::uint64_t trips = breaker_.trips();
    const std::uint64_t published =
        breaker_trips_published_.exchange(trips,
                                          std::memory_order_acq_rel);
    if (trips > published)
        metrics_->counter("serve.breaker.trips").add(trips - published);
}

Response
Server::do_align(const Request& request, double queue_wait_seconds)
{
    Timer timer;
    wga::WgaParams params = request.preset == "lastz"
                                ? wga::WgaParams::lastz_defaults()
                                : wga::WgaParams::darwin_defaults();
    params.align_both_strands = request.both_strands;
    if (request.no_transitions)
        params.dsoft.transitions = false;

    // While the breaker is open every request runs in degraded mode —
    // the shared policy the batch engine's degraded retry uses, plus a
    // forced score-only probe pass — so the daemon keeps answering
    // under sustained budget pressure instead of quarantining its way
    // through the backlog.
    const bool degraded =
        options_.breaker_enabled && breaker_.should_degrade();
    if (degraded) {
        params = fault::apply_degrade(params, options_.degrade);
        metrics_->counter("serve.breaker.degraded_served").add(1);
    }
    publish_breaker();

    if (options_.packed_genomes &&
        params.filter_mode != wga::FilterMode::Gapped)
        fatal("align: this server holds genomes 2-bit packed, which "
              "supports gapped presets only — the ungapped (lastz) "
              "filter scans byte-backed sequences");

    const auto target = load_genome(request.target);
    const auto query = load_genome(request.query);

    bool cache_hit = false;
    const auto index =
        acquire_index(request, *target, params.seed_pattern, &cache_hit);

    // The request's own budget context: armed after the index acquire so
    // one request's overrun can never poison a shared index build. A
    // client deadline clamps the wall axis to the time it has left
    // after queueing — the cooperative poll in every stage then stops
    // work for an expired client instead of completing uselessly.
    fault::Budget budget = request.has_budget ? request.budget
                                              : options_.default_budget;
    if (request.deadline_ms > 0.0) {
        const double remaining =
            request.deadline_ms / 1000.0 - queue_wait_seconds;
        budget.wall_seconds = budget.wall_seconds > 0.0
                                  ? std::min(budget.wall_seconds, remaining)
                                  : remaining;
    }
    auto token = std::make_shared<fault::CancelToken>();
    token->arm(budget);
    {
        std::lock_guard lock(token_mutex_);
        if (stopping())
            fatal("server is shutting down");
        active_.insert(token);
    }
    // The request sequence number handle_line installed as the span
    // tag; reuse it for the fault context so every artifact of this
    // request — spans, quarantine records, slow-request log — shares
    // one id.
    const std::size_t seq_no =
        static_cast<std::size_t>(std::max<std::int64_t>(
            obs::RequestTag::current(), 0));

    // Full-fidelity outcomes feed the breaker's rolling window (and
    // resolve a half-open probe); degraded outcomes say nothing about
    // whether full fidelity is healthy, so they are not recorded.
    const auto record_outcome = [&](bool failure) {
        if (options_.breaker_enabled && !degraded) {
            breaker_.record(failure);
            publish_breaker();
        }
    };

    wga::WgaResult result;
    try {
        fault::ContextScope scope(token.get(), seq_no);
        const wga::WgaPipeline pipeline(params);
        if (target->packed())
            result = pipeline.run_with_index_packed(
                *index, target->flattened_packed(),
                query->flattened_packed(), nullptr, metrics_);
        else
            result = pipeline.run_with_index(*index, target->flattened(),
                                             query->flattened(), nullptr,
                                             metrics_);
    } catch (const fault::CancelledError& error) {
        if (error.reason() != fault::CancelReason::External)
            record_outcome(true);
        std::lock_guard lock(token_mutex_);
        active_.erase(token);
        throw;
    } catch (const fault::InjectedFault&) {
        record_outcome(true);
        std::lock_guard lock(token_mutex_);
        active_.erase(token);
        throw;
    } catch (...) {
        // Not a fidelity signal (bad file, OOM, ...): resolve a
        // half-open probe as success rather than wedging it.
        record_outcome(false);
        std::lock_guard lock(token_mutex_);
        active_.erase(token);
        throw;
    }
    record_outcome(false);
    {
        std::lock_guard lock(token_mutex_);
        active_.erase(token);
    }

    // Same writer call the one-shot CLI uses, so the bytes match it.
    Timer output_timer;
    wga::write_maf_file(request.out, result.alignments, *target, *query);
    const double output_seconds = output_timer.seconds();

    const double total_seconds = timer.seconds();
    if (options_.slow_request_seconds > 0.0 &&
        total_seconds >= options_.slow_request_seconds) {
        warn("serve: slow request",
             {{"req", strprintf("%zu", seq_no)},
              {"id", request.id},
              {"target", request.target},
              {"query", request.query},
              {"seconds", strprintf("%.3f", total_seconds)},
              {"seed_seconds", strprintf("%.3f", result.stats.seed_seconds)},
              {"filter_seconds",
               strprintf("%.3f", result.stats.filter_seconds)},
              {"extend_seconds",
               strprintf("%.3f", result.stats.extend_seconds)},
              {"chain_seconds",
               strprintf("%.3f", result.stats.chain_seconds)},
              {"output_seconds", strprintf("%.3f", output_seconds)},
              {"index_cache_hit", cache_hit ? "true" : "false"},
              {"budget_wall_seconds",
               strprintf("%.3f", budget.wall_seconds)},
              {"budget_max_cells",
               strprintf("%llu",
                         static_cast<unsigned long long>(budget.max_cells))},
              {"budget_max_heap_bytes",
               strprintf("%llu", static_cast<unsigned long long>(
                                     budget.max_heap_bytes))}});
        metrics_->counter("serve.slow_requests").add(1);
    }

    Response response;
    response.id = request.id;
    response.add_string("op", "align");
    response.add_int("alignments",
                     static_cast<std::int64_t>(result.alignments.size()));
    response.add_int("chains",
                     static_cast<std::int64_t>(result.chains.size()));
    response.add_int("matched_bases",
                     static_cast<std::int64_t>(
                         result.stats.extend.matched_bases));
    response.add_raw("index_cache_hit", cache_hit ? "true" : "false");
    response.add_raw("degraded", degraded ? "true" : "false");
    response.add_double("seconds", timer.seconds());
    response.add_string("out", request.out);
    return response;
}

void
Server::serve_stream(std::istream& in, std::ostream& out)
{
    std::mutex out_mutex;
    Pending pending;
    std::string line;
    while (!stopping() && std::getline(in, line)) {
        if (trim(line).empty())
            continue;
        pending.add();
        const bool accepted = submit(line, [&](const std::string& resp) {
            {
                std::lock_guard lock(out_mutex);
                out << resp << '\n';
                out.flush();
            }
            pending.done();
        });
        if (!accepted) {
            pending.done();
            break;
        }
    }
    pending.wait_empty();
}

void
Server::serve_fd(int in_fd, int out_fd)
{
    std::mutex out_mutex;
    Pending pending;
    const auto sink = [&pending, &out_mutex,
                       out_fd](const std::string& resp) {
        std::string payload = resp + "\n";
        {
            std::lock_guard lock(out_mutex);
            std::size_t off = 0;
            while (off < payload.size()) {
                const ssize_t n = ::write(out_fd, payload.data() + off,
                                          payload.size() - off);
                if (n < 0) {
                    if (errno == EINTR)
                        continue;
                    break;  // peer is gone; drop the response
                }
                off += static_cast<std::size_t>(n);
            }
        }
        pending.done();
    };

    std::string buffer;
    bool open = true;
    while (open && !stopping()) {
        if (fault::shutdown_requested()) {
            inform("serve: shutdown signal; draining in-flight requests");
            stop();
            break;
        }
        struct pollfd pfd = {};
        pfd.fd = in_fd;
        pfd.events = POLLIN;
        const int ready = ::poll(&pfd, 1, 200);
        if (ready < 0) {
            if (errno == EINTR)
                continue;
            break;
        }
        if (ready == 0)
            continue;
        if ((pfd.revents & (POLLIN | POLLHUP)) == 0)
            break;
        char chunk[4096];
        const ssize_t n = ::read(in_fd, chunk, sizeof(chunk));
        if (n < 0) {
            if (errno == EINTR)
                continue;
            break;
        }
        if (n == 0) {
            open = false;
            break;
        }
        buffer.append(chunk, static_cast<std::size_t>(n));
        std::size_t start = 0;
        while (true) {
            const std::size_t eol = buffer.find('\n', start);
            if (eol == std::string::npos)
                break;
            std::string line = buffer.substr(start, eol - start);
            start = eol + 1;
            if (trim(line).empty())
                continue;
            pending.add();
            if (!submit(std::move(line), sink)) {
                pending.done();
                open = false;
                break;
            }
        }
        buffer.erase(0, start);
    }
    // A final unterminated line still counts once the stream is done.
    if (!stopping() && !trim(buffer).empty()) {
        pending.add();
        if (!submit(std::move(buffer), sink))
            pending.done();
    }
    pending.wait_empty();
}

}  // namespace darwin::serve
