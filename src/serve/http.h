/**
 * @file
 * Minimal embedded HTTP listener for daemon introspection.
 *
 * Serves exactly three GET endpoints on a loopback TCP port:
 *
 *   /metrics   Prometheus text exposition of the metrics registry
 *              (Content-Type: text/plain; version=0.0.4)
 *   /healthz   "ok\n" with 200 while serving, 503 once draining —
 *              a liveness/readiness probe for orchestrators
 *   /statusz   one JSON object: version, uptime, config fingerprint,
 *              and whatever else the daemon wires into the handler
 *
 * This is intentionally not a web framework: one acceptor thread,
 * connections handled sequentially (a scrape is a few kilobytes),
 * HTTP/1.1 with Connection: close, GET only (anything else gets 405).
 * The poll()-with-timeout accept loop mirrors Server::serve_fd so
 * stop() and process shutdown are noticed within ~200 ms.
 *
 * Binding is loopback-only (127.0.0.1): the telemetry endpoints carry
 * operational detail and must not be exposed off-host by default; a
 * real deployment fronts them with its own exporter/proxy.
 */
#ifndef DARWIN_SERVE_HTTP_H
#define DARWIN_SERVE_HTTP_H

#include <atomic>
#include <functional>
#include <string>
#include <thread>

namespace darwin::serve {

/** Content callbacks the daemon plugs into the listener. */
struct HttpHandlers {
    /** Body for GET /metrics (Prometheus text). */
    std::function<std::string()> metrics_text;

    /** Liveness for GET /healthz: false -> 503 (draining). */
    std::function<bool()> healthy;

    /** Body for GET /statusz (a JSON object). */
    std::function<std::string()> statusz_json;
};

class HttpMetricsServer {
  public:
    /**
     * Bind 127.0.0.1:`port` (0 picks an ephemeral port — read it back
     * with port()) and start the acceptor thread. Throws FatalError
     * when the socket cannot be created/bound.
     */
    HttpMetricsServer(int port, HttpHandlers handlers);
    ~HttpMetricsServer();

    HttpMetricsServer(const HttpMetricsServer&) = delete;
    HttpMetricsServer& operator=(const HttpMetricsServer&) = delete;

    /** The bound TCP port (resolves ephemeral binds). */
    int port() const { return port_; }

    /** Stop accepting and join the acceptor thread (idempotent). */
    void stop();

  private:
    void accept_loop();
    void handle_connection(int fd);

    HttpHandlers handlers_;
    int listen_fd_ = -1;
    int port_ = -1;
    std::atomic<bool> stopping_{false};
    std::thread thread_;
};

}  // namespace darwin::serve

#endif  // DARWIN_SERVE_HTTP_H
