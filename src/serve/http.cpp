#include "serve/http.h"

#include <cerrno>
#include <cstring>
#include <utility>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "util/logging.h"
#include "util/strings.h"

namespace darwin::serve {

namespace {

/** Assemble one HTTP/1.1 response with Connection: close. */
std::string
http_response(int code, const char* reason, const std::string& content_type,
              const std::string& body)
{
    std::string out = strprintf("HTTP/1.1 %d %s\r\n", code, reason);
    out += "Content-Type: " + content_type + "\r\n";
    out += strprintf("Content-Length: %zu\r\n", body.size());
    out += "Connection: close\r\n\r\n";
    out += body;
    return out;
}

void
write_all(int fd, const std::string& payload)
{
    std::size_t off = 0;
    while (off < payload.size()) {
        const ssize_t n =
            ::write(fd, payload.data() + off, payload.size() - off);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return;  // peer went away mid-response; nothing to salvage
        }
        off += static_cast<std::size_t>(n);
    }
}

}  // namespace

HttpMetricsServer::HttpMetricsServer(int port, HttpHandlers handlers)
    : handlers_(std::move(handlers))
{
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listen_fd_ < 0)
        fatal(strprintf("metrics HTTP: socket() failed: %s",
                        std::strerror(errno)));
    const int one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

    sockaddr_in addr = {};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
               sizeof(addr)) != 0) {
        const int err = errno;
        ::close(listen_fd_);
        listen_fd_ = -1;
        fatal(strprintf("metrics HTTP: cannot bind 127.0.0.1:%d: %s", port,
                        std::strerror(err)));
    }
    if (::listen(listen_fd_, 16) != 0) {
        const int err = errno;
        ::close(listen_fd_);
        listen_fd_ = -1;
        fatal(strprintf("metrics HTTP: listen() failed: %s",
                        std::strerror(err)));
    }

    sockaddr_in bound = {};
    socklen_t bound_len = sizeof(bound);
    if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                      &bound_len) == 0)
        port_ = static_cast<int>(ntohs(bound.sin_port));
    else
        port_ = port;

    thread_ = std::thread([this] { accept_loop(); });
}

HttpMetricsServer::~HttpMetricsServer()
{
    stop();
}

void
HttpMetricsServer::stop()
{
    if (stopping_.exchange(true))
        return;
    if (thread_.joinable())
        thread_.join();
    if (listen_fd_ >= 0) {
        ::close(listen_fd_);
        listen_fd_ = -1;
    }
}

void
HttpMetricsServer::accept_loop()
{
    while (!stopping_.load(std::memory_order_acquire)) {
        struct pollfd pfd = {};
        pfd.fd = listen_fd_;
        pfd.events = POLLIN;
        const int ready = ::poll(&pfd, 1, 200);
        if (ready < 0) {
            if (errno == EINTR)
                continue;
            break;
        }
        if (ready == 0)
            continue;
        const int fd = ::accept(listen_fd_, nullptr, nullptr);
        if (fd < 0) {
            if (errno == EINTR || errno == ECONNABORTED)
                continue;
            break;
        }
        handle_connection(fd);
        ::close(fd);
    }
}

void
HttpMetricsServer::handle_connection(int fd)
{
    // Read until the end of the request head. Scrapers send tiny
    // requests; cap the read so a misbehaving client cannot balloon it.
    std::string head;
    char chunk[2048];
    while (head.size() < 16384 &&
           head.find("\r\n\r\n") == std::string::npos) {
        struct pollfd pfd = {};
        pfd.fd = fd;
        pfd.events = POLLIN;
        const int ready = ::poll(&pfd, 1, 1000);
        if (ready <= 0)
            return;  // slow or dead client; drop it
        const ssize_t n = ::read(fd, chunk, sizeof(chunk));
        if (n <= 0) {
            if (n < 0 && errno == EINTR)
                continue;
            return;
        }
        head.append(chunk, static_cast<std::size_t>(n));
    }

    // Request line: METHOD SP PATH SP VERSION.
    const std::size_t line_end = head.find("\r\n");
    const std::string request_line =
        line_end == std::string::npos ? head : head.substr(0, line_end);
    const std::size_t sp1 = request_line.find(' ');
    const std::size_t sp2 =
        sp1 == std::string::npos ? std::string::npos
                                 : request_line.find(' ', sp1 + 1);
    if (sp1 == std::string::npos || sp2 == std::string::npos) {
        write_all(fd, http_response(400, "Bad Request", "text/plain",
                                    "malformed request line\n"));
        return;
    }
    const std::string method = request_line.substr(0, sp1);
    std::string path = request_line.substr(sp1 + 1, sp2 - sp1 - 1);
    if (const std::size_t query = path.find('?');
        query != std::string::npos)
        path.resize(query);

    if (method != "GET") {
        write_all(fd, http_response(405, "Method Not Allowed", "text/plain",
                                    "only GET is supported\n"));
        return;
    }

    if (path == "/metrics") {
        const std::string body =
            handlers_.metrics_text ? handlers_.metrics_text() : "";
        write_all(fd, http_response(200, "OK",
                                    "text/plain; version=0.0.4", body));
    } else if (path == "/healthz") {
        const bool healthy = handlers_.healthy ? handlers_.healthy() : true;
        if (healthy)
            write_all(fd, http_response(200, "OK", "text/plain", "ok\n"));
        else
            write_all(fd, http_response(503, "Service Unavailable",
                                        "text/plain", "draining\n"));
    } else if (path == "/statusz") {
        const std::string body =
            handlers_.statusz_json ? handlers_.statusz_json() : "{}";
        write_all(fd,
                  http_response(200, "OK", "application/json", body));
    } else {
        write_all(fd, http_response(404, "Not Found", "text/plain",
                                    "unknown path; try /metrics, "
                                    "/healthz, /statusz\n"));
    }
}

}  // namespace darwin::serve
