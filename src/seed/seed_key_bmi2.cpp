#include "seed/seed_key_bmi2.h"

#ifdef __BMI2__
#include <immintrin.h>
#endif

namespace darwin::seed::detail {

#ifdef __BMI2__

namespace {

// Reverses the four 2-bit groups within a byte, e.g. abcdefgh (pairs
// ab,cd,ef,gh) -> ghefcdab. Composed per byte + byte swap, this reverses
// all sixteen 2-bit groups of a 32-bit value.
struct Rev2Table {
    std::uint8_t rev[256];
    constexpr Rev2Table() : rev()
    {
        for (unsigned b = 0; b < 256; ++b) {
            rev[b] = static_cast<std::uint8_t>(
                ((b & 0x03) << 6) | ((b & 0x0c) << 2) | ((b & 0x30) >> 2) |
                ((b & 0xc0) >> 6));
        }
    }
};

constexpr Rev2Table kRev2;

} // namespace

bool
bmi2_key_available()
{
    return __builtin_cpu_supports("bmi2") != 0;
}

std::uint32_t
pext_key(std::uint64_t lanes, std::uint64_t mask2, unsigned weight)
{
    // Gathered value has the first match offset in the low 2 bits;
    // reverse group order so it lands in the high bits of the key.
    const std::uint32_t packed =
        static_cast<std::uint32_t>(_pext_u64(lanes, mask2));
    const std::uint32_t reversed =
        (static_cast<std::uint32_t>(kRev2.rev[packed & 0xff]) << 24) |
        (static_cast<std::uint32_t>(kRev2.rev[(packed >> 8) & 0xff]) << 16) |
        (static_cast<std::uint32_t>(kRev2.rev[(packed >> 16) & 0xff]) << 8) |
        static_cast<std::uint32_t>(kRev2.rev[packed >> 24]);
    return reversed >> (32 - 2 * weight);
}

#else  // !__BMI2__

bool
bmi2_key_available()
{
    return false;
}

std::uint32_t
pext_key(std::uint64_t, std::uint64_t, unsigned)
{
    return 0;
}

#endif  // __BMI2__

}  // namespace darwin::seed::detail
