/**
 * @file
 * BMI2 seed-key extraction (compiled in its own TU with -mbmi2).
 *
 * Given a 2-bit-lane window (LSB-first, as produced by
 * PackedSequence::extract_kmer) and a lane mask covering the pattern's
 * match offsets, _pext_u64 gathers the match lanes in one instruction —
 * but in ascending-offset order (first offset in the LOW bits), while
 * SeedPattern::key_at builds keys MSB-first (first offset in the HIGH
 * bits). pext_key therefore reverses the 2-bit groups of the gathered
 * value and right-aligns to the pattern weight, producing bit-identical
 * keys to the byte-at-a-time path.
 *
 * Mirrors the kernels_sse42/avx2 convention: the TU carries an internal
 * __BMI2__ guard with a stub fallback, so builds succeed on compilers
 * or targets without the flag and the caller runtime-gates on
 * bmi2_key_available().
 */
#ifndef DARWIN_SEED_SEED_KEY_BMI2_H
#define DARWIN_SEED_SEED_KEY_BMI2_H

#include <cstdint>

namespace darwin::seed::detail {

/** True when the TU was compiled with BMI2 and the CPU supports it. */
bool bmi2_key_available();

/**
 * Extract the seed key from `lanes` (2-bit LSB-first window) using the
 * 2-bit lane mask `mask2` at the pattern's match offsets. `weight` is
 * the number of match positions (<= 15). Only call when
 * bmi2_key_available() returned true.
 */
std::uint32_t pext_key(std::uint64_t lanes, std::uint64_t mask2,
                       unsigned weight);

}  // namespace darwin::seed::detail

#endif  // DARWIN_SEED_SEED_KEY_BMI2_H
