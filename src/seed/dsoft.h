/**
 * @file
 * Modified D-SOFT seeding (paper §III-B, Fig. 4a).
 *
 * The query genome is cut into chunks of `c` bp. Every seed key of every
 * chunk position is looked up in the target index (with the 1-transition
 * neighborhood when enabled). Each hit (t, q) falls into a *diagonal
 * band* — the (query chunk, target bin of size `b`) pair after projecting
 * the hit along its diagonal — and at most one hit per band whose band
 * accumulated at least `h` hits is forwarded to the filter stage. This
 * de-duplicates the many near-identical hits a true alignment produces
 * while keeping isolated hits (h = 1 recovers LASTZ's single-hit
 * sensitivity).
 */
#ifndef DARWIN_SEED_DSOFT_H
#define DARWIN_SEED_DSOFT_H

#include <cstdint>
#include <vector>

#include "seed/seed_index.h"
#include "util/thread_pool.h"

namespace darwin::seed {

/** D-SOFT parameters. */
struct DsoftParams {
    /** Query chunk size c (bp). */
    std::size_t chunk_size = 64;

    /** Target bin size b (bp). */
    std::size_t bin_size = 64;

    /** Minimum seed hits per diagonal band (h). 1 = LASTZ sensitivity. */
    std::uint32_t min_hits_per_band = 1;

    /** Allow one transition substitution in the seed (Fig. 5b). */
    bool transitions = true;

    /** Step between query seed positions (1 = every position). */
    std::size_t query_stride = 1;

    /**
     * Cap on candidates emitted per query chunk (0 = unlimited). Applied
     * after the deterministic (query, target) sort, so the survivors are
     * the same regardless of threading. Used by the batch engine's
     * degraded retry to bound filter work on repeat-dense pairs.
     */
    std::size_t max_hits_per_chunk = 0;
};

/** A candidate seed hit forwarded to filtering. */
struct SeedHit {
    std::uint64_t target_pos = 0;  ///< seed window start on the target
    std::uint64_t query_pos = 0;   ///< seed window start on the query

    bool operator==(const SeedHit&) const = default;
};

/** Work counters for the seeding stage (paper Table V "Seeds"). */
struct SeedingStats {
    /** Seed-key lookups issued (exact + transition neighbors). */
    std::uint64_t seed_lookups = 0;
    /** Raw (t, q) hits enumerated from the index. */
    std::uint64_t seed_hits = 0;
    /** Diagonal bands that met the threshold (= filter tiles). */
    std::uint64_t candidates = 0;

    void
    merge(const SeedingStats& other)
    {
        seed_lookups += other.seed_lookups;
        seed_hits += other.seed_hits;
        candidates += other.candidates;
    }
};

/** D-SOFT seeder over one target index. */
class DsoftSeeder {
  public:
    DsoftSeeder(const SeedIndex& index, DsoftParams params);

    /**
     * Banded seeder for sharded runs: only diagonal bands whose start
     * (band * bin_size) falls in [band_lo_bp, band_hi_bp) accumulate
     * and emit. With a shard-sliced index (sharded_index.h) this
     * reproduces exactly the owned-band subset of the monolithic run.
     */
    DsoftSeeder(const SeedIndex& index, DsoftParams params,
                std::uint64_t band_lo_bp, std::uint64_t band_hi_bp);

    /**
     * Seed one query chunk [chunk_begin, chunk_end) of `query`.
     * Emits at most one SeedHit per qualifying diagonal band.
     *
     * `charge_heap` controls whether the returned vector is charged
     * against the caller's fault heap budget. True fits callers that
     * *retain* the hits (the classic pipeline accumulates every
     * chunk's hits, so cumulative charges track residency); the
     * streaming dataflow passes false — its chunks are transient,
     * drained into a fixed-capacity channel and freed, so it charges
     * the high-water of one chunk itself.
     */
    std::vector<SeedHit> seed_chunk(std::span<const std::uint8_t> query,
                                    std::size_t chunk_begin,
                                    std::size_t chunk_end,
                                    SeedingStats* stats = nullptr,
                                    bool charge_heap = true) const;

    /** Packed-query chunk seeding; identical output for equal bases. */
    std::vector<SeedHit> seed_chunk(const seq::PackedSequence& query,
                                    std::size_t chunk_begin,
                                    std::size_t chunk_end,
                                    SeedingStats* stats = nullptr,
                                    bool charge_heap = true) const;

    /**
     * Seed a whole query sequence, optionally across a thread pool.
     * The result is deterministic (sorted by query, then target).
     */
    std::vector<SeedHit> seed_all(const seq::Sequence& query,
                                  SeedingStats* stats = nullptr,
                                  ThreadPool* pool = nullptr) const;

    /** Packed-query variant of seed_all. */
    std::vector<SeedHit> seed_all(const seq::PackedSequence& query,
                                  SeedingStats* stats = nullptr,
                                  ThreadPool* pool = nullptr) const;

    const DsoftParams& params() const { return params_; }

  private:
    template <class Source>
    std::vector<SeedHit> seed_chunk_impl(const Source& query,
                                         std::size_t chunk_begin,
                                         std::size_t chunk_end,
                                         SeedingStats* stats,
                                         bool charge_heap = true) const;

    template <class Source>
    std::vector<SeedHit> seed_all_impl(const Source& query,
                                       std::size_t query_size,
                                       SeedingStats* stats,
                                       ThreadPool* pool) const;

    const SeedIndex& index_;
    DsoftParams params_;
    std::uint64_t band_lo_bp_ = 0;
    std::uint64_t band_hi_bp_ = ~0ull;
};

}  // namespace darwin::seed

#endif  // DARWIN_SEED_DSOFT_H
