#include "seed/seed_index.h"

#include <limits>

#include "util/logging.h"

namespace darwin::seed {

template <class Source>
void
SeedIndex::build_from(const Source& source, std::size_t target_size)
{
    require(max_bucket_ > 0, "SeedIndex: max_bucket must be positive");
    if (target_size >= std::numeric_limits<std::uint32_t>::max())
        fatal("SeedIndex: target longer than 2^32-1 is not supported");

    const std::uint64_t buckets = pattern_.key_space();

    // Pass 1: bucket sizes.
    std::vector<std::uint32_t> counts(buckets, 0);
    const std::size_t last = target_size >= pattern_.span()
                                 ? target_size - pattern_.span() + 1
                                 : 0;
    for (std::size_t pos = 0; pos < last; ++pos) {
        const auto key = pattern_.key_at(source, pos);
        if (key) {
            ++counts[*key];
        } else {
            ++skipped_;
        }
    }

    // Clamp repetitive buckets; flags live in a packed bitset so the
    // section can be written to (and mapped back from) an index file.
    owned_over_words_.assign((buckets + 63) / 64, 0);
    for (std::uint64_t k = 0; k < buckets; ++k) {
        if (counts[k] > max_bucket_) {
            counts[k] = max_bucket_;
            owned_over_words_[k / 64] |= 1ULL << (k % 64);
            ++truncated_;
        }
    }

    // Prefix sums into the bucket-offset section.
    owned_offsets_.assign(buckets + 1, 0);
    std::uint64_t running = 0;
    for (std::uint64_t k = 0; k < buckets; ++k) {
        owned_offsets_[k] = static_cast<std::uint32_t>(running);
        running += counts[k];
    }
    owned_offsets_[buckets] = static_cast<std::uint32_t>(running);

    // Pass 2: fill positions (first max_bucket occurrences per bucket).
    owned_positions_.assign(running, 0);
    std::vector<std::uint32_t> cursor(counts.size(), 0);
    for (std::size_t pos = 0; pos < last; ++pos) {
        const auto key = pattern_.key_at(source, pos);
        if (!key)
            continue;
        const std::uint64_t k = *key;
        if (cursor[k] >= counts[k])
            continue;  // truncated repeat bucket
        owned_positions_[owned_offsets_[k] + cursor[k]] =
            static_cast<std::uint32_t>(pos);
        ++cursor[k];
    }

    offsets_view_ = {owned_offsets_.data(), owned_offsets_.size()};
    positions_view_ = {owned_positions_.data(), owned_positions_.size()};
    over_view_ = {owned_over_words_.data(), owned_over_words_.size()};
}

SeedIndex::SeedIndex(const seq::Sequence& target, const SeedPattern& pattern,
                     std::uint32_t max_bucket)
    : SeedIndex(pattern, max_bucket)
{
    const std::span<const std::uint8_t> codes{target.codes().data(),
                                              target.size()};
    build_from(codes, target.size());
}

SeedIndex::SeedIndex(const seq::PackedSequence& target,
                     const SeedPattern& pattern, std::uint32_t max_bucket)
    : SeedIndex(pattern, max_bucket)
{
    build_from(target, target.size());
}

SeedIndex
SeedIndex::attach(SeedPattern pattern, std::uint32_t max_bucket,
                  std::span<const std::uint32_t> bucket_offsets,
                  std::span<const std::uint32_t> positions,
                  std::span<const std::uint64_t> over_represented_words,
                  std::uint64_t skipped_windows,
                  std::uint64_t truncated_buckets,
                  std::shared_ptr<const void> storage)
{
    SeedIndex index(std::move(pattern), max_bucket);
    require(max_bucket > 0, "SeedIndex::attach: max_bucket must be positive");
    require(bucket_offsets.size() == index.pattern_.key_space() + 1,
            "SeedIndex::attach: bucket-offset section size mismatch");
    require(over_represented_words.size() ==
                (index.pattern_.key_space() + 63) / 64,
            "SeedIndex::attach: over-represented section size mismatch");
    require(!bucket_offsets.empty() &&
                bucket_offsets.back() == positions.size(),
            "SeedIndex::attach: position section size mismatch");
    index.storage_ = std::move(storage);
    index.offsets_view_ = bucket_offsets;
    index.positions_view_ = positions;
    index.over_view_ = over_represented_words;
    index.skipped_ = skipped_windows;
    index.truncated_ = truncated_buckets;
    return index;
}

std::span<const std::uint32_t>
SeedIndex::lookup(SeedKey key) const
{
    require(key < pattern_.key_space(), "SeedIndex::lookup: key range");
    const std::uint32_t lo = offsets_view_[key];
    const std::uint32_t hi = offsets_view_[key + 1];
    return {positions_view_.data() + lo, hi - lo};
}

bool
SeedIndex::over_represented(SeedKey key) const
{
    require(key < pattern_.key_space(),
            "SeedIndex::over_represented: key range");
    return (over_view_[key / 64] >> (key % 64)) & 1ULL;
}

}  // namespace darwin::seed
