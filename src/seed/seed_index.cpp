#include "seed/seed_index.h"

#include <limits>

#include "util/logging.h"

namespace darwin::seed {

SeedIndex::SeedIndex(const seq::Sequence& target, const SeedPattern& pattern,
                     std::uint32_t max_bucket)
    : pattern_(pattern)
{
    require(max_bucket > 0, "SeedIndex: max_bucket must be positive");
    if (target.size() >= std::numeric_limits<std::uint32_t>::max())
        fatal("SeedIndex: target longer than 2^32-1 is not supported");

    const std::uint64_t buckets = pattern_.key_space();
    const std::span<const std::uint8_t> codes{target.codes().data(),
                                              target.size()};

    // Pass 1: bucket sizes.
    std::vector<std::uint32_t> counts(buckets, 0);
    const std::size_t last =
        target.size() >= pattern_.span() ? target.size() - pattern_.span() + 1
                                         : 0;
    for (std::size_t pos = 0; pos < last; ++pos) {
        const auto key = pattern_.key_at(codes, pos);
        if (key) {
            ++counts[*key];
        } else {
            ++skipped_;
        }
    }

    // Clamp repetitive buckets.
    over_represented_.assign(buckets, false);
    for (std::uint64_t k = 0; k < buckets; ++k) {
        if (counts[k] > max_bucket) {
            counts[k] = max_bucket;
            over_represented_[k] = true;
            ++truncated_;
        }
    }

    // Prefix sums into bucket_offsets_.
    bucket_offsets_.assign(buckets + 1, 0);
    std::uint64_t running = 0;
    for (std::uint64_t k = 0; k < buckets; ++k) {
        bucket_offsets_[k] = static_cast<std::uint32_t>(running);
        running += counts[k];
    }
    bucket_offsets_[buckets] = static_cast<std::uint32_t>(running);

    // Pass 2: fill positions (first max_bucket occurrences per bucket).
    positions_.assign(running, 0);
    std::vector<std::uint32_t> cursor(counts.size(), 0);
    for (std::size_t pos = 0; pos < last; ++pos) {
        const auto key = pattern_.key_at(codes, pos);
        if (!key)
            continue;
        const std::uint64_t k = *key;
        if (cursor[k] >= counts[k])
            continue;  // truncated repeat bucket
        positions_[bucket_offsets_[k] + cursor[k]] =
            static_cast<std::uint32_t>(pos);
        ++cursor[k];
    }
}

std::span<const std::uint32_t>
SeedIndex::lookup(SeedKey key) const
{
    require(key < pattern_.key_space(), "SeedIndex::lookup: key range");
    const std::uint32_t lo = bucket_offsets_[key];
    const std::uint32_t hi = bucket_offsets_[key + 1];
    return {positions_.data() + lo, hi - lo};
}

bool
SeedIndex::over_represented(SeedKey key) const
{
    require(key < pattern_.key_space(),
            "SeedIndex::over_represented: key range");
    return over_represented_[key];
}

}  // namespace darwin::seed
