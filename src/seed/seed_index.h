/**
 * @file
 * Seed position index over the target genome.
 *
 * A counting-sort (bucketed) index: one bucket per seed key holding every
 * target position whose window produces that key. Lookup is O(1) to a
 * contiguous position slice — the software analogue of the seed table the
 * Darwin-WGA host keeps in DRAM.
 *
 * The index reads its three sections (bucket offsets, positions, and the
 * over-represented bitset) through spans, so one class serves both
 * storage modes: the building constructor fills owned vectors, and
 * attach() wraps externally owned memory — a memory-mapped index file
 * (src/index/) — zero-copy. DsoftSeeder is oblivious to the mode.
 */
#ifndef DARWIN_SEED_SEED_INDEX_H
#define DARWIN_SEED_SEED_INDEX_H

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "seed/seed_pattern.h"
#include "seq/sequence.h"

namespace darwin::seed {

/** Bucketed position index for one target sequence. */
class SeedIndex {
  public:
    /** Repeat-seed cap every default-configured index uses. Persisted
     *  index files record theirs in the header, and the index cache
     *  keys on it, so the same cap always yields the same buckets. */
    static constexpr std::uint32_t kDefaultMaxBucket = 256;

    /**
     * Build the index over `target` (typically a flattened genome).
     * Windows containing N contribute nothing, so chromosome separators
     * are never indexed.
     *
     * @param max_bucket Buckets holding more than this many positions are
     *        truncated to it and flagged as over-represented; repetitive
     *        seeds otherwise swamp the filter stage (whole-genome aligners
     *        all cap repeat seeds one way or another).
     */
    SeedIndex(const seq::Sequence& target, const SeedPattern& pattern,
              std::uint32_t max_bucket = kDefaultMaxBucket);

    /** Same build over a 2-bit packed target; produces bit-identical
     *  sections to the byte overload for equal base content. */
    SeedIndex(const seq::PackedSequence& target, const SeedPattern& pattern,
              std::uint32_t max_bucket = kDefaultMaxBucket);

    /**
     * Zero-copy view over externally owned sections (a mapped index
     * file). `storage` keeps the backing memory alive for the index's
     * lifetime (e.g. the mmap holder); the caller has already validated
     * that the sections are internally consistent.
     *
     * @param bucket_offsets pattern.key_space() + 1 entries
     * @param over_represented_words one bit per bucket, packed LSB-first
     *        into 64-bit words (ceil(key_space / 64) words)
     */
    static SeedIndex attach(SeedPattern pattern, std::uint32_t max_bucket,
                            std::span<const std::uint32_t> bucket_offsets,
                            std::span<const std::uint32_t> positions,
                            std::span<const std::uint64_t>
                                over_represented_words,
                            std::uint64_t skipped_windows,
                            std::uint64_t truncated_buckets,
                            std::shared_ptr<const void> storage = nullptr);

    SeedIndex(SeedIndex&&) = default;
    SeedIndex& operator=(SeedIndex&&) = default;
    SeedIndex(const SeedIndex&) = delete;
    SeedIndex& operator=(const SeedIndex&) = delete;

    /** Target positions whose window hashes to `key`. */
    std::span<const std::uint32_t> lookup(SeedKey key) const;

    /** True when the bucket was truncated at construction. */
    bool over_represented(SeedKey key) const;

    /** Total indexed positions (after truncation). */
    std::size_t num_positions() const { return positions_view_.size(); }

    /** Number of windows skipped because of ambiguous bases. */
    std::uint64_t skipped_windows() const { return skipped_; }

    /** Number of buckets that hit the cap. */
    std::uint64_t truncated_buckets() const { return truncated_; }

    const SeedPattern& pattern() const { return pattern_; }

    std::uint32_t max_bucket() const { return max_bucket_; }

    // Raw sections, exposed for serialization (src/index/index_io).
    std::span<const std::uint32_t>
    bucket_offsets() const
    {
        return offsets_view_;
    }

    std::span<const std::uint32_t> positions() const
    {
        return positions_view_;
    }

    std::span<const std::uint64_t>
    over_represented_words() const
    {
        return over_view_;
    }

  private:
    explicit SeedIndex(SeedPattern pattern, std::uint32_t max_bucket)
        : pattern_(std::move(pattern)), max_bucket_(max_bucket)
    {
    }

    /** Shared two-pass counting-sort build; `Source` is anything
     *  pattern_.key_at accepts (byte span or PackedSequence). */
    template <class Source>
    void build_from(const Source& source, std::size_t target_size);

    SeedPattern pattern_;
    std::uint32_t max_bucket_ = 0;

    // Owned storage (building constructor only; empty when attached).
    std::vector<std::uint32_t> owned_offsets_;
    std::vector<std::uint32_t> owned_positions_;
    std::vector<std::uint64_t> owned_over_words_;
    /** Keepalive for attached storage (e.g. the mmap holder). */
    std::shared_ptr<const void> storage_;

    // The views every accessor reads, whichever mode owns the bytes.
    std::span<const std::uint32_t> offsets_view_;
    std::span<const std::uint32_t> positions_view_;
    std::span<const std::uint64_t> over_view_;

    std::uint64_t skipped_ = 0;
    std::uint64_t truncated_ = 0;
};

}  // namespace darwin::seed

#endif  // DARWIN_SEED_SEED_INDEX_H
