/**
 * @file
 * Seed position index over the target genome.
 *
 * A counting-sort (bucketed) index: one bucket per seed key holding every
 * target position whose window produces that key. Lookup is O(1) to a
 * contiguous position slice — the software analogue of the seed table the
 * Darwin-WGA host keeps in DRAM.
 */
#ifndef DARWIN_SEED_SEED_INDEX_H
#define DARWIN_SEED_SEED_INDEX_H

#include <cstdint>
#include <span>
#include <vector>

#include "seed/seed_pattern.h"
#include "seq/sequence.h"

namespace darwin::seed {

/** Bucketed position index for one target sequence. */
class SeedIndex {
  public:
    /**
     * Build the index over `target` (typically a flattened genome).
     * Windows containing N contribute nothing, so chromosome separators
     * are never indexed.
     *
     * @param max_bucket Buckets holding more than this many positions are
     *        truncated to it and flagged as over-represented; repetitive
     *        seeds otherwise swamp the filter stage (whole-genome aligners
     *        all cap repeat seeds one way or another).
     */
    SeedIndex(const seq::Sequence& target, const SeedPattern& pattern,
              std::uint32_t max_bucket = 256);

    /** Target positions whose window hashes to `key`. */
    std::span<const std::uint32_t> lookup(SeedKey key) const;

    /** True when the bucket was truncated at construction. */
    bool over_represented(SeedKey key) const;

    /** Total indexed positions (after truncation). */
    std::size_t num_positions() const { return positions_.size(); }

    /** Number of windows skipped because of ambiguous bases. */
    std::uint64_t skipped_windows() const { return skipped_; }

    /** Number of buckets that hit the cap. */
    std::uint64_t truncated_buckets() const { return truncated_; }

    const SeedPattern& pattern() const { return pattern_; }

  private:
    SeedPattern pattern_;
    std::vector<std::uint32_t> bucket_offsets_;  ///< key_space + 1 entries
    std::vector<std::uint32_t> positions_;
    std::vector<bool> over_represented_;
    std::uint64_t skipped_ = 0;
    std::uint64_t truncated_ = 0;
};

}  // namespace darwin::seed

#endif  // DARWIN_SEED_SEED_INDEX_H
