#include "seed/dsoft.h"

#include <algorithm>
#include <mutex>

#include "fault/cancel.h"
#include "util/logging.h"

namespace darwin::seed {

namespace {

/// Band ids fit comfortably below 2^33 (a 32-bit target position plus the
/// chunk span, divided by the bin size), so all-ones is a safe sentinel.
constexpr std::uint64_t kEmptyKey = ~0ull;

/** Per-band accumulator: hit count plus the first hit seen. */
struct BandSlot {
    std::uint64_t key = kEmptyKey;
    std::uint32_t hits = 0;
    SeedHit first;
};

/**
 * Flat open-addressing band table (linear probing, power-of-two
 * capacity). seed_chunk is the hottest seeding loop and the band map is
 * its only allocation; an unordered_map pays a node allocation plus a
 * pointer chase per band, while this table is two cache lines per probe
 * and is reused across chunks via per-thread scratch.
 */
class BandTable {
public:
    /** Size for a chunk expected to perform ~`lookups` index lookups and
     *  clear whatever the previous chunk left behind. */
    void prepare(std::size_t lookups) {
        std::size_t cap = 64;
        while (cap < lookups * 2)
            cap <<= 1;
        if (cap > slots_.size()) {
            slots_.assign(cap, BandSlot{});
        } else {
            for (const std::uint32_t idx : used_)
                slots_[idx] = BandSlot{};
        }
        used_.clear();
    }

    BandSlot& find_or_insert(std::uint64_t key) {
        if ((used_.size() + 1) * 10 >= slots_.size() * 7)
            grow();  // keep load factor under 0.7
        const std::size_t mask = slots_.size() - 1;
        std::size_t i = hash(key) & mask;
        while (true) {
            BandSlot& slot = slots_[i];
            if (slot.key == key)
                return slot;
            if (slot.key == kEmptyKey) {
                slot.key = key;
                used_.push_back(static_cast<std::uint32_t>(i));
                return slot;
            }
            i = (i + 1) & mask;
        }
    }

    template <class Fn>
    void for_each(Fn&& fn) const {
        for (const std::uint32_t idx : used_)
            fn(slots_[idx]);
    }

private:
    static std::size_t hash(std::uint64_t key) {
        key *= 0x9e3779b97f4a7c15ull;  // Fibonacci multiplicative hash
        return static_cast<std::size_t>(key >> 29);
    }

    void grow() {
        std::vector<BandSlot> old = std::move(slots_);
        std::vector<std::uint32_t> old_used = std::move(used_);
        slots_.assign(old.size() * 2, BandSlot{});
        used_.clear();
        const std::size_t mask = slots_.size() - 1;
        for (const std::uint32_t idx : old_used) {
            const BandSlot& src = old[idx];
            std::size_t i = hash(src.key) & mask;
            while (slots_[i].key != kEmptyKey)
                i = (i + 1) & mask;
            slots_[i] = src;
            used_.push_back(static_cast<std::uint32_t>(i));
        }
    }

    std::vector<BandSlot> slots_;
    std::vector<std::uint32_t> used_;  ///< occupied slot indices
};

BandTable&
band_scratch()
{
    thread_local BandTable table;
    return table;
}

}  // namespace

DsoftSeeder::DsoftSeeder(const SeedIndex& index, DsoftParams params)
    : index_(index), params_(params)
{
    require(params_.chunk_size > 0, "DsoftSeeder: chunk_size must be > 0");
    require(params_.bin_size > 0, "DsoftSeeder: bin_size must be > 0");
    require(params_.query_stride > 0, "DsoftSeeder: stride must be > 0");
    require(params_.min_hits_per_band > 0, "DsoftSeeder: h must be > 0");
}

DsoftSeeder::DsoftSeeder(const SeedIndex& index, DsoftParams params,
                         std::uint64_t band_lo_bp, std::uint64_t band_hi_bp)
    : DsoftSeeder(index, params)
{
    require(band_lo_bp < band_hi_bp, "DsoftSeeder: empty band window");
    band_lo_bp_ = band_lo_bp;
    band_hi_bp_ = band_hi_bp;
}

template <class Source>
std::vector<SeedHit>
DsoftSeeder::seed_chunk_impl(const Source& query, std::size_t chunk_begin,
                             std::size_t chunk_end, SeedingStats* stats,
                             bool charge_heap) const
{
    fault::poll("seed.chunk");
    const SeedPattern& pattern = index_.pattern();
    SeedingStats local;
    // Diagonal band id -> accumulated state. Hits are projected along
    // their diagonal to the chunk end so that a run of collinear hits
    // inside the chunk lands in one band. Sized from the chunk's lookup
    // budget (one probe position per stride step).
    BandTable& bands = band_scratch();
    bands.prepare((chunk_end - chunk_begin) / params_.query_stride + 1);

    auto record_hits = [&](std::span<const std::uint32_t> hits,
                           std::size_t q) {
        for (const std::uint32_t t : hits) {
            // Diagonal projection: target position at the chunk end.
            const std::uint64_t projected =
                static_cast<std::uint64_t>(t) + (chunk_end - q);
            const std::uint64_t band = projected / params_.bin_size;
            // Banded (sharded) seeding: hits outside the owned band
            // window belong to a neighboring shard.
            const std::uint64_t band_bp = band * params_.bin_size;
            if (band_bp < band_lo_bp_ || band_bp >= band_hi_bp_)
                continue;
            ++local.seed_hits;
            BandSlot& state = bands.find_or_insert(band);
            if (state.hits == 0)
                state.first = SeedHit{t, q};
            ++state.hits;
        }
    };

    for (std::size_t q = chunk_begin; q < chunk_end;
         q += params_.query_stride) {
        const auto key = pattern.key_at(query, q);
        if (!key)
            continue;
        ++local.seed_lookups;
        record_hits(index_.lookup(*key), q);
        if (params_.transitions) {
            for (const SeedKey neighbor : pattern.transition_neighbors(*key)) {
                ++local.seed_lookups;
                record_hits(index_.lookup(neighbor), q);
            }
        }
    }

    std::vector<SeedHit> out;
    bands.for_each([&](const BandSlot& state) {
        if (state.hits >= params_.min_hits_per_band) {
            out.push_back(state.first);
            ++local.candidates;
        }
    });
    std::sort(out.begin(), out.end(), [](const SeedHit& a, const SeedHit& b) {
        return a.query_pos != b.query_pos ? a.query_pos < b.query_pos
                                          : a.target_pos < b.target_pos;
    });
    if (params_.max_hits_per_chunk != 0 &&
        out.size() > params_.max_hits_per_chunk) {
        out.resize(params_.max_hits_per_chunk);
        local.candidates = out.size();
    }
    if (stats)
        stats->merge(local);
    if (charge_heap)
        fault::charge_heap_bytes(out.size() * sizeof(SeedHit));
    return out;
}

template <class Source>
std::vector<SeedHit>
DsoftSeeder::seed_all_impl(const Source& query, std::size_t query_size,
                           SeedingStats* stats, ThreadPool* pool) const
{
    const std::size_t num_chunks =
        (query_size + params_.chunk_size - 1) / params_.chunk_size;

    std::vector<std::vector<SeedHit>> per_chunk(num_chunks);
    std::vector<SeedingStats> per_chunk_stats(num_chunks);

    auto do_chunk = [&](std::size_t chunk) {
        const std::size_t begin = chunk * params_.chunk_size;
        const std::size_t end =
            std::min(query_size, begin + params_.chunk_size);
        per_chunk[chunk] =
            seed_chunk_impl(query, begin, end, &per_chunk_stats[chunk]);
    };

    if (pool) {
        pool->parallel_for(0, num_chunks, do_chunk);
    } else {
        for (std::size_t chunk = 0; chunk < num_chunks; ++chunk)
            do_chunk(chunk);
    }

    std::vector<SeedHit> out;
    std::size_t total = 0;
    for (const auto& hits : per_chunk)
        total += hits.size();
    out.reserve(total);
    for (auto& hits : per_chunk) {
        out.insert(out.end(), hits.begin(), hits.end());
    }
    if (stats) {
        for (const auto& s : per_chunk_stats)
            stats->merge(s);
    }
    return out;
}

std::vector<SeedHit>
DsoftSeeder::seed_chunk(std::span<const std::uint8_t> query,
                        std::size_t chunk_begin, std::size_t chunk_end,
                        SeedingStats* stats, bool charge_heap) const
{
    return seed_chunk_impl(query, chunk_begin, chunk_end, stats,
                           charge_heap);
}

std::vector<SeedHit>
DsoftSeeder::seed_chunk(const seq::PackedSequence& query,
                        std::size_t chunk_begin, std::size_t chunk_end,
                        SeedingStats* stats, bool charge_heap) const
{
    return seed_chunk_impl(query, chunk_begin, chunk_end, stats,
                           charge_heap);
}

std::vector<SeedHit>
DsoftSeeder::seed_all(const seq::Sequence& query, SeedingStats* stats,
                      ThreadPool* pool) const
{
    const std::span<const std::uint8_t> codes{query.codes().data(),
                                              query.size()};
    return seed_all_impl(codes, query.size(), stats, pool);
}

std::vector<SeedHit>
DsoftSeeder::seed_all(const seq::PackedSequence& query, SeedingStats* stats,
                      ThreadPool* pool) const
{
    return seed_all_impl(query, query.size(), stats, pool);
}

}  // namespace darwin::seed
