#include "seed/dsoft.h"

#include <algorithm>
#include <mutex>
#include <unordered_map>

#include "util/logging.h"

namespace darwin::seed {

namespace {

/** Per-band accumulator: hit count plus the first hit seen. */
struct BandState {
    std::uint32_t hits = 0;
    SeedHit first;
};

}  // namespace

DsoftSeeder::DsoftSeeder(const SeedIndex& index, DsoftParams params)
    : index_(index), params_(params)
{
    require(params_.chunk_size > 0, "DsoftSeeder: chunk_size must be > 0");
    require(params_.bin_size > 0, "DsoftSeeder: bin_size must be > 0");
    require(params_.query_stride > 0, "DsoftSeeder: stride must be > 0");
    require(params_.min_hits_per_band > 0, "DsoftSeeder: h must be > 0");
}

std::vector<SeedHit>
DsoftSeeder::seed_chunk(std::span<const std::uint8_t> query,
                        std::size_t chunk_begin, std::size_t chunk_end,
                        SeedingStats* stats) const
{
    const SeedPattern& pattern = index_.pattern();
    SeedingStats local;
    // Diagonal band id -> accumulated state. Hits are projected along
    // their diagonal to the chunk end so that a run of collinear hits
    // inside the chunk lands in one band.
    std::unordered_map<std::uint64_t, BandState> bands;

    auto record_hits = [&](std::span<const std::uint32_t> hits,
                           std::size_t q) {
        for (const std::uint32_t t : hits) {
            ++local.seed_hits;
            // Diagonal projection: target position at the chunk end.
            const std::uint64_t projected =
                static_cast<std::uint64_t>(t) + (chunk_end - q);
            const std::uint64_t band = projected / params_.bin_size;
            BandState& state = bands[band];
            if (state.hits == 0)
                state.first = SeedHit{t, q};
            ++state.hits;
        }
    };

    for (std::size_t q = chunk_begin; q < chunk_end;
         q += params_.query_stride) {
        const auto key = pattern.key_at(query, q);
        if (!key)
            continue;
        ++local.seed_lookups;
        record_hits(index_.lookup(*key), q);
        if (params_.transitions) {
            for (const SeedKey neighbor : pattern.transition_neighbors(*key)) {
                ++local.seed_lookups;
                record_hits(index_.lookup(neighbor), q);
            }
        }
    }

    std::vector<SeedHit> out;
    for (const auto& [band, state] : bands) {
        if (state.hits >= params_.min_hits_per_band) {
            out.push_back(state.first);
            ++local.candidates;
        }
    }
    std::sort(out.begin(), out.end(), [](const SeedHit& a, const SeedHit& b) {
        return a.query_pos != b.query_pos ? a.query_pos < b.query_pos
                                          : a.target_pos < b.target_pos;
    });
    if (stats)
        stats->merge(local);
    return out;
}

std::vector<SeedHit>
DsoftSeeder::seed_all(const seq::Sequence& query, SeedingStats* stats,
                      ThreadPool* pool) const
{
    const std::span<const std::uint8_t> codes{query.codes().data(),
                                              query.size()};
    const std::size_t num_chunks =
        (query.size() + params_.chunk_size - 1) / params_.chunk_size;

    std::vector<std::vector<SeedHit>> per_chunk(num_chunks);
    std::vector<SeedingStats> per_chunk_stats(num_chunks);

    auto do_chunk = [&](std::size_t chunk) {
        const std::size_t begin = chunk * params_.chunk_size;
        const std::size_t end =
            std::min(query.size(), begin + params_.chunk_size);
        per_chunk[chunk] =
            seed_chunk(codes, begin, end, &per_chunk_stats[chunk]);
    };

    if (pool) {
        pool->parallel_for(0, num_chunks, do_chunk);
    } else {
        for (std::size_t chunk = 0; chunk < num_chunks; ++chunk)
            do_chunk(chunk);
    }

    std::vector<SeedHit> out;
    std::size_t total = 0;
    for (const auto& hits : per_chunk)
        total += hits.size();
    out.reserve(total);
    for (auto& hits : per_chunk) {
        out.insert(out.end(), hits.begin(), hits.end());
    }
    if (stats) {
        for (const auto& s : per_chunk_stats)
            stats->merge(s);
    }
    return out;
}

}  // namespace darwin::seed
