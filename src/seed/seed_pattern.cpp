#include "seed/seed_pattern.h"

#include "seed/seed_key_bmi2.h"
#include "seq/alphabet.h"
#include "util/logging.h"

namespace darwin::seed {

SeedPattern::SeedPattern(const std::string& pattern)
    : pattern_(pattern), span_(pattern.size())
{
    if (pattern.empty())
        fatal("SeedPattern: empty pattern");
    for (std::size_t i = 0; i < pattern.size(); ++i) {
        if (pattern[i] == '1') {
            match_offsets_.push_back(static_cast<std::uint32_t>(i));
        } else if (pattern[i] != '0') {
            fatal("SeedPattern: pattern may contain only '1' and '0', got " +
                  pattern);
        }
    }
    if (match_offsets_.empty())
        fatal("SeedPattern: pattern has no match positions");
    if (weight() > 15)
        fatal("SeedPattern: weight > 15 exceeds the 32-bit key space");
    if (span_ <= 32) {
        for (const std::uint32_t offset : match_offsets_) {
            match_lane_mask_ |= 3ULL << (2 * offset);
            match_bit_mask_ |= 1ULL << offset;
        }
        use_bmi2_ = detail::bmi2_key_available();
    }
}

SeedPattern
SeedPattern::lastz_default()
{
    return SeedPattern("1110100110010101111");
}

std::optional<SeedKey>
SeedPattern::key_at(std::span<const std::uint8_t> codes,
                    std::size_t pos) const
{
    if (pos + span_ > codes.size())
        return std::nullopt;
    SeedKey key = 0;
    for (const std::uint32_t offset : match_offsets_) {
        const std::uint8_t base = codes[pos + offset];
        if (!seq::is_concrete(base))
            return std::nullopt;
        key = (key << 2) | base;
    }
    return key;
}

std::optional<SeedKey>
SeedPattern::key_at(const seq::PackedSequence& packed, std::size_t pos) const
{
    if (pos + span_ > packed.size())
        return std::nullopt;
    if (span_ > 32) {
        // Patterns wider than one window fall back to per-base decode.
        SeedKey key = 0;
        for (const std::uint32_t offset : match_offsets_) {
            const std::uint8_t base = packed[pos + offset];
            if (!seq::is_concrete(base))
                return std::nullopt;
            key = (key << 2) | base;
        }
        return key;
    }
    // Only N at MATCH positions rejects the window — don't-care
    // positions may be ambiguous, exactly like the byte path.
    if ((packed.n_mask(pos, span_) & match_bit_mask_) != 0)
        return std::nullopt;
    const std::uint64_t lanes = packed.extract_kmer(pos, span_);
    if (use_bmi2_)
        return detail::pext_key(lanes, match_lane_mask_,
                                static_cast<unsigned>(weight()));
    SeedKey key = 0;
    for (const std::uint32_t offset : match_offsets_)
        key = (key << 2) |
              static_cast<SeedKey>((lanes >> (2 * offset)) & 3);
    return key;
}

std::vector<SeedKey>
SeedPattern::transition_neighbors(SeedKey key) const
{
    std::vector<SeedKey> neighbors;
    neighbors.reserve(weight());
    for (std::size_t i = 0; i < weight(); ++i) {
        // Transitions A<->G (00<->10) and C<->T (01<->11) flip the high
        // bit of the 2-bit code.
        const SeedKey mask = SeedKey{0b10} << (2 * i);
        neighbors.push_back(key ^ mask);
    }
    return neighbors;
}

}  // namespace darwin::seed
