#include "seed/seed_pattern.h"

#include "seq/alphabet.h"
#include "util/logging.h"

namespace darwin::seed {

SeedPattern::SeedPattern(const std::string& pattern)
    : pattern_(pattern), span_(pattern.size())
{
    if (pattern.empty())
        fatal("SeedPattern: empty pattern");
    for (std::size_t i = 0; i < pattern.size(); ++i) {
        if (pattern[i] == '1') {
            match_offsets_.push_back(static_cast<std::uint32_t>(i));
        } else if (pattern[i] != '0') {
            fatal("SeedPattern: pattern may contain only '1' and '0', got " +
                  pattern);
        }
    }
    if (match_offsets_.empty())
        fatal("SeedPattern: pattern has no match positions");
    if (weight() > 15)
        fatal("SeedPattern: weight > 15 exceeds the 32-bit key space");
}

SeedPattern
SeedPattern::lastz_default()
{
    return SeedPattern("1110100110010101111");
}

std::optional<SeedKey>
SeedPattern::key_at(std::span<const std::uint8_t> codes,
                    std::size_t pos) const
{
    if (pos + span_ > codes.size())
        return std::nullopt;
    SeedKey key = 0;
    for (const std::uint32_t offset : match_offsets_) {
        const std::uint8_t base = codes[pos + offset];
        if (!seq::is_concrete(base))
            return std::nullopt;
        key = (key << 2) | base;
    }
    return key;
}

std::vector<SeedKey>
SeedPattern::transition_neighbors(SeedKey key) const
{
    std::vector<SeedKey> neighbors;
    neighbors.reserve(weight());
    for (std::size_t i = 0; i < weight(); ++i) {
        // Transitions A<->G (00<->10) and C<->T (01<->11) flip the high
        // bit of the 2-bit code.
        const SeedKey mask = SeedKey{0b10} << (2 * i);
        neighbors.push_back(key ^ mask);
    }
    return neighbors;
}

}  // namespace darwin::seed
