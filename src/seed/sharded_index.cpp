#include "seed/sharded_index.h"

#include <algorithm>
#include <limits>

#include "util/logging.h"
#include "util/strings.h"

namespace darwin::seed {

namespace {

constexpr std::uint32_t kNoCutoff =
    std::numeric_limits<std::uint32_t>::max();

}  // namespace

std::vector<ShardPlan>
plan_shards(std::uint64_t target_length, std::uint64_t shard_bp,
            std::uint64_t chunk_size, std::uint64_t bin_size)
{
    if (shard_bp == 0)
        fatal("shard-bp: shard size of zero bp (must be positive)");
    // Band starts range over projected target positions, which exceed
    // raw positions by up to the query chunk size.
    const std::uint64_t band_end = target_length + chunk_size + bin_size;
    std::vector<ShardPlan> plan;
    for (std::uint64_t lo = 0; lo < band_end; lo += shard_bp) {
        ShardPlan shard;
        shard.band_lo = lo;
        shard.band_hi = std::min(band_end, lo + shard_bp);
        shard.slice_lo = lo > chunk_size ? lo - chunk_size : 0;
        shard.slice_hi = std::min<std::uint64_t>(
            target_length, shard.band_hi + bin_size);
        plan.push_back(shard);
    }
    if (plan.empty()) {
        // Degenerate empty target: one empty shard keeps callers simple.
        plan.push_back(ShardPlan{0, band_end, 0, 0});
    }
    return plan;
}

ShardedSeedIndexBuilder::ShardedSeedIndexBuilder(
    const seq::PackedSequence& target, const SeedPattern& pattern,
    std::uint32_t max_bucket, std::uint64_t shard_bp,
    std::uint64_t chunk_size, std::uint64_t bin_size)
    : target_(target), pattern_(pattern), max_bucket_(max_bucket)
{
    require(max_bucket_ > 0,
            "ShardedSeedIndexBuilder: max_bucket must be positive");
    if (target.size() >= std::numeric_limits<std::uint32_t>::max())
        fatal("ShardedSeedIndexBuilder: target longer than 2^32-1 is not "
              "supported");
    plan_ = plan_shards(target.size(), shard_bp, chunk_size, bin_size);

    // Global pass: per-bucket occurrence counts drive the truncation
    // cutoffs. Streaming counters keep this O(key_space) regardless of
    // target size.
    const std::uint64_t buckets = pattern_.key_space();
    std::vector<std::uint32_t> counts(buckets, 0);
    cutoff_.assign(buckets, kNoCutoff);
    const std::size_t last = target.size() >= pattern_.span()
                                 ? target.size() - pattern_.span() + 1
                                 : 0;
    for (std::size_t pos = 0; pos < last; ++pos) {
        const auto key = pattern_.key_at(target, pos);
        if (!key) {
            ++skipped_;
            continue;
        }
        const std::uint64_t k = *key;
        if (counts[k] == max_bucket_ && cutoff_[k] == kNoCutoff)
            cutoff_[k] = static_cast<std::uint32_t>(pos);
        if (counts[k] <= max_bucket_)
            ++counts[k];
    }

    over_words_ =
        std::make_shared<std::vector<std::uint64_t>>((buckets + 63) / 64, 0);
    for (std::uint64_t k = 0; k < buckets; ++k) {
        if (cutoff_[k] != kNoCutoff) {
            (*over_words_)[k / 64] |= 1ULL << (k % 64);
            ++truncated_;
        }
    }
}

std::shared_ptr<const SeedIndex>
ShardedSeedIndexBuilder::build_shard(std::size_t s) const
{
    require(s < plan_.size(), "ShardedSeedIndexBuilder: bad shard index");
    const ShardPlan& shard = plan_[s];
    const std::uint64_t buckets = pattern_.key_space();

    const std::size_t last = target_.size() >= pattern_.span()
                                 ? target_.size() - pattern_.span() + 1
                                 : 0;
    const std::size_t lo =
        std::min<std::size_t>(shard.slice_lo, last);
    const std::size_t hi = std::min<std::size_t>(shard.slice_hi, last);

    /** Holder the attached SeedIndex keeps alive: the shard's own
     *  sections plus a reference to the shared global bitset. */
    struct ShardSections {
        std::vector<std::uint32_t> offsets;
        std::vector<std::uint32_t> positions;
        std::shared_ptr<std::vector<std::uint64_t>> over_words;
    };
    auto sections = std::make_shared<ShardSections>();
    sections->over_words = over_words_;

    // Pass 1 over the slice: surviving-position counts per bucket.
    std::vector<std::uint32_t> counts(buckets, 0);
    for (std::size_t pos = lo; pos < hi; ++pos) {
        const auto key = pattern_.key_at(target_, pos);
        if (!key)
            continue;
        if (static_cast<std::uint32_t>(pos) < cutoff_[*key])
            ++counts[*key];
    }

    sections->offsets.assign(buckets + 1, 0);
    std::uint64_t running = 0;
    for (std::uint64_t k = 0; k < buckets; ++k) {
        sections->offsets[k] = static_cast<std::uint32_t>(running);
        running += counts[k];
    }
    sections->offsets[buckets] = static_cast<std::uint32_t>(running);

    // Pass 2: fill positions, ascending within each bucket.
    sections->positions.assign(running, 0);
    std::vector<std::uint32_t> cursor(buckets, 0);
    for (std::size_t pos = lo; pos < hi; ++pos) {
        const auto key = pattern_.key_at(target_, pos);
        if (!key)
            continue;
        const std::uint64_t k = *key;
        if (static_cast<std::uint32_t>(pos) >= cutoff_[k])
            continue;
        sections->positions[sections->offsets[k] + cursor[k]] =
            static_cast<std::uint32_t>(pos);
        ++cursor[k];
    }

    const std::span<const std::uint32_t> offsets{
        sections->offsets.data(), sections->offsets.size()};
    const std::span<const std::uint32_t> positions{
        sections->positions.data(), sections->positions.size()};
    const std::span<const std::uint64_t> over{
        sections->over_words->data(), sections->over_words->size()};
    return std::make_shared<const SeedIndex>(SeedIndex::attach(
        pattern_, max_bucket_, offsets, positions, over, skipped_,
        truncated_, std::move(sections)));
}

}  // namespace darwin::seed
