/**
 * @file
 * Target-chunked (sharded) seed indexing for bounded-memory seeding.
 *
 * A monolithic seed table over a 100 Mbp target holds ~10^8 positions
 * plus a key-space-sized offset array; holding several of them is what
 * breaks large-genome runs. Sharding cuts the *diagonal band space*
 * into contiguous ranges of `shard_bp` band-start basepairs, so the
 * pipeline can build (or load) one shard's table at a time, seed the
 * whole query against it, and release it before the next.
 *
 * Correctness is exact, not approximate. D-SOFT assigns each raw hit
 * (t, q) of a query chunk to band floor((t + chunk_end - q) /
 * bin_size); a shard owning band starts [band_lo, band_hi) can only
 * receive hits whose target position lies in [band_lo - chunk_size,
 * band_hi + bin_size), so indexing exactly that slice reproduces every
 * owned-band hit. Two properties carry byte-identity vs the monolithic
 * run:
 *
 *  1. Global truncation. Repeat buckets keep their first `max_bucket`
 *     positions *globally*. A per-slice cap would keep the first
 *     max_bucket positions *of the slice* — a different set. The
 *     builder therefore makes one global pass computing, per bucket,
 *     the cutoff position of the (max_bucket+1)-th occurrence; shard
 *     builds keep a position iff it falls below that cutoff, making
 *     every shard bucket exactly (global truncated bucket ∩ slice).
 *  2. Order preservation. Bucket positions are ascending in both the
 *     monolithic and the shard build (counting-sort scan order), so a
 *     shard bucket is a subsequence of the global bucket and D-SOFT's
 *     first-hit-per-band selection sees the same first hit.
 *
 * Over-represented flags and skipped-window counts are global too, so
 * shard tables report the same telemetry the monolithic table would.
 */
#ifndef DARWIN_SEED_SHARDED_INDEX_H
#define DARWIN_SEED_SHARDED_INDEX_H

#include <cstdint>
#include <memory>
#include <vector>

#include "seed/seed_index.h"
#include "seq/packed_sequence.h"

namespace darwin::seed {

/** One shard of the banded target space. All units are basepairs. */
struct ShardPlan {
    std::uint64_t band_lo = 0;  ///< first owned band-start bp (inclusive)
    std::uint64_t band_hi = 0;  ///< end of owned band-start range (exclusive)
    std::uint64_t slice_lo = 0; ///< first indexed window start
    std::uint64_t slice_hi = 0; ///< end of indexed window starts (exclusive)
};

/**
 * Partition a target of `target_length` bp into shards owning
 * `shard_bp` of band-start space each, with slices widened by
 * `chunk_size` below and `bin_size` above (the D-SOFT projection
 * margins). Fatal (tagged "shard-bp") when shard_bp is zero. A
 * shard_bp >= target_length + chunk_size yields one shard whose slice
 * is the whole target.
 */
std::vector<ShardPlan> plan_shards(std::uint64_t target_length,
                                   std::uint64_t shard_bp,
                                   std::uint64_t chunk_size,
                                   std::uint64_t bin_size);

/**
 * Two-phase sharded index builder over a packed target: a global
 * counting pass at construction (bucket cutoffs, over-represented
 * flags, skipped windows), then per-shard table builds on demand.
 * Only the O(key_space) global artifacts stay resident between
 * build_shard calls; each shard table is owned by the returned
 * SeedIndex and freed when the caller drops it.
 */
class ShardedSeedIndexBuilder {
  public:
    ShardedSeedIndexBuilder(const seq::PackedSequence& target,
                            const SeedPattern& pattern,
                            std::uint32_t max_bucket,
                            std::uint64_t shard_bp,
                            std::uint64_t chunk_size,
                            std::uint64_t bin_size);

    const std::vector<ShardPlan>& plan() const { return plan_; }
    std::size_t num_shards() const { return plan_.size(); }

    /** Global telemetry (identical to the monolithic build's). */
    std::uint64_t skipped_windows() const { return skipped_; }
    std::uint64_t truncated_buckets() const { return truncated_; }

    const SeedPattern& pattern() const { return pattern_; }
    std::uint32_t max_bucket() const { return max_bucket_; }

    /** Global over-represented bitset (one bit per bucket, LSB-first);
     *  identical across shards and to the monolithic build's. */
    std::span<const std::uint64_t>
    over_represented_words() const
    {
        return {over_words_->data(), over_words_->size()};
    }

    /**
     * Build shard `s`'s position table. Positions are global target
     * coordinates restricted to the shard's slice and filtered by the
     * global truncation cutoffs.
     */
    std::shared_ptr<const SeedIndex> build_shard(std::size_t s) const;

  private:
    const seq::PackedSequence& target_;
    SeedPattern pattern_;
    std::uint32_t max_bucket_;
    std::vector<ShardPlan> plan_;
    /** Per bucket: position of the (max_bucket+1)-th occurrence, or
     *  UINT32_MAX when the bucket never overflows. A position survives
     *  truncation iff it is strictly below the cutoff. */
    std::vector<std::uint32_t> cutoff_;
    std::shared_ptr<std::vector<std::uint64_t>> over_words_;
    std::uint64_t skipped_ = 0;
    std::uint64_t truncated_ = 0;
};

}  // namespace darwin::seed

#endif  // DARWIN_SEED_SHARDED_INDEX_H
