/**
 * @file
 * Spaced seed patterns (paper §III-B, Fig. 5).
 *
 * A pattern is a string over {'1','0'}: '1' positions must match (2 bits
 * of the base enter the seed key), '0' positions are don't-cares. The
 * default is LASTZ's 12-of-19 pattern. Transition tolerance is handled on
 * the query side: a seed with one transition substitution (A<->G, C<->T)
 * differs from the exact key by flipping one position's high bit, so a
 * 1-transition lookup queries the exact key plus `weight` neighbor keys
 * — exactly the (m+1)-fold work multiplier the paper describes.
 */
#ifndef DARWIN_SEED_SEED_PATTERN_H
#define DARWIN_SEED_SEED_PATTERN_H

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "seq/packed_sequence.h"

namespace darwin::seed {

/** Seed key type (2 bits per match position; weight <= 15). */
using SeedKey = std::uint32_t;

/** A spaced seed pattern. */
class SeedPattern {
  public:
    /** @param pattern String of '1' (match) and '0' (don't care). */
    explicit SeedPattern(const std::string& pattern);

    /** LASTZ / Darwin-WGA default 12-of-19 pattern. */
    static SeedPattern lastz_default();

    /** Number of match positions. */
    std::size_t weight() const { return match_offsets_.size(); }

    /** Total pattern length in bp. */
    std::size_t span() const { return span_; }

    /** Number of possible keys (4^weight). */
    std::uint64_t
    key_space() const
    {
        return 1ULL << (2 * weight());
    }

    /** Offsets (within the span) of the match positions. */
    const std::vector<std::uint32_t>&
    match_offsets() const
    {
        return match_offsets_;
    }

    /**
     * Extract the seed key for the window starting at `pos`. Returns
     * nullopt when the window overruns the span or any match position
     * holds an ambiguous base (N).
     */
    std::optional<SeedKey> key_at(std::span<const std::uint8_t> codes,
                                  std::size_t pos) const;

    /**
     * Packed-sequence key extraction: bit-identical keys to the byte
     * overload, but via one extract_kmer window load plus a pext (when
     * BMI2 is available) or a short shift loop, instead of `span` byte
     * loads. N is rejected only at match positions, matching the byte
     * path exactly.
     */
    std::optional<SeedKey> key_at(const seq::PackedSequence& packed,
                                  std::size_t pos) const;

    /**
     * The `weight` keys reachable from `key` by one transition
     * substitution (flip the high bit of one position's 2-bit code).
     * Does not include `key` itself.
     */
    std::vector<SeedKey> transition_neighbors(SeedKey key) const;

    const std::string& pattern() const { return pattern_; }

    /** True when packed key_at uses the BMI2 pext path on this host. */
    bool uses_bmi2() const { return use_bmi2_; }

  private:
    std::string pattern_;
    std::size_t span_;
    std::vector<std::uint32_t> match_offsets_;
    // Precomputed for the packed fast path (valid when span_ <= 32):
    std::uint64_t match_lane_mask_ = 0;  // 2-bit lanes at match offsets
    std::uint64_t match_bit_mask_ = 0;   // 1 bit per match offset
    bool use_bmi2_ = false;
};

}  // namespace darwin::seed

#endif  // DARWIN_SEED_SEED_PATTERN_H
