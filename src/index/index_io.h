/**
 * @file
 * Persistent reference index I/O: atomic save, zero-copy mmap load, and
 * header inspection for `.dwi` files (format.h).
 *
 * save_index writes tmp + rename so readers never observe a partial
 * file. load_index mmaps the file read-only, validates the header and
 * section geometry (magic, endianness, version, truncation, seed
 * shape), and returns a SeedIndex attached to the mapping — the mapping
 * is unmapped when the last shared_ptr drops. Every validation failure
 * is a FatalError tagged with the file path and the offending field.
 */
#ifndef DARWIN_INDEX_INDEX_IO_H
#define DARWIN_INDEX_INDEX_IO_H

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "seed/seed_index.h"
#include "seed/sharded_index.h"
#include "seq/sequence.h"

namespace darwin::index {

/** Decoded header of an index file (the `info` subcommand's payload). */
struct IndexInfo {
    std::uint32_t version = 0;
    std::uint64_t sequence_digest = 0;
    std::uint64_t sequence_length = 0;
    std::uint32_t max_bucket = 0;
    std::string pattern;
    std::uint64_t num_buckets = 0;
    std::uint64_t num_positions = 0;
    std::uint64_t skipped_windows = 0;
    std::uint64_t truncated_buckets = 0;
    std::uint64_t total_bytes = 0;
    /** Sharded layout (version >= 2); zero for monolithic files. */
    std::uint64_t shard_bp = 0;
    std::uint32_t num_shards = 0;
};

/** FNV-1a digest of a sequence's base codes — the identity an index
 *  header records and the cache keys on. */
std::uint64_t sequence_digest(const seq::Sequence& sequence);

/** Same digest computed from 2-bit storage, decoding one fixed-size
 *  window at a time (never the whole sequence). Equal to the byte
 *  overload on equal bases, so a packed server keys the same cache
 *  entries a byte server would. */
std::uint64_t sequence_digest(const seq::PackedSequence& sequence);

/**
 * Serialize `index` to `path` atomically (same-directory tmp + rename).
 * `digest`/`length` identify the sequence the index was built from and
 * land in the header. FatalError on I/O failure or a seed shape longer
 * than the format can record.
 */
void save_index(const std::string& path, const seed::SeedIndex& index,
                std::uint64_t digest, std::uint64_t length);

/**
 * mmap `path`, validate it, and return a SeedIndex reading the mapped
 * sections in place. The mapping stays alive as long as any copy of the
 * returned pointer (SeedIndex::attach keeps the holder). Optionally
 * reports the decoded header through `info`.
 */
std::shared_ptr<const seed::SeedIndex> load_index(const std::string& path,
                                                  IndexInfo* info = nullptr);

/** Read and validate only the header (cheap: no section access). */
IndexInfo read_index_info(const std::string& path);

/**
 * Serialize a *sharded* index (format version 2): each shard's table is
 * built with `builder` and streamed to disk in turn, so peak memory is
 * one shard's table — the same bound the streaming pipeline honors at
 * seeding time. Atomic (tmp + rename) like save_index. `shard_bp` is
 * recorded in the header for `info` and for readers that want to know
 * the planned granularity.
 */
void save_sharded_index(const std::string& path,
                        const seed::ShardedSeedIndexBuilder& builder,
                        std::uint64_t shard_bp, std::uint64_t digest,
                        std::uint64_t length);

/**
 * Reader over a sharded (version-2) `.dwi`: maps the file once and
 * attaches one shard's SeedIndex at a time on demand. Pages of a
 * shard's table enter memory only while something holds the returned
 * index, so at most one shard's table need be resident. Fatal on a
 * monolithic file (use load_index for those).
 */
class ShardedIndexReader {
  public:
    explicit ShardedIndexReader(const std::string& path);

    const IndexInfo& info() const { return info_; }
    std::size_t num_shards() const { return plan_.size(); }

    /** Band/slice ranges per shard (ShardPlan semantics). */
    const std::vector<seed::ShardPlan>& plan() const { return plan_; }

    /**
     * Attach shard `s`'s table (positions are global target
     * coordinates). The mapping stays alive as long as any returned
     * index does. Seed it with the banded DsoftSeeder over
     * plan()[s].band_lo / band_hi.
     */
    std::shared_ptr<const seed::SeedIndex> open_shard(std::size_t s) const;

  private:
    std::string path_;
    std::shared_ptr<const void> mapping_;
    const std::uint8_t* base_ = nullptr;
    IndexInfo info_;
    std::vector<seed::ShardPlan> plan_;
    std::vector<std::uint64_t> shard_offsets_;   ///< per-shard file offsets
    std::vector<std::uint64_t> shard_positions_; ///< per-shard file offsets
    std::vector<std::uint64_t> shard_counts_;    ///< per-shard positions
    std::span<const std::uint64_t> over_words_;
};

/** True when `path` exists and starts with the index magic — how tools
 *  distinguish a `.dwi` argument from a FASTA one. */
bool is_index_file(const std::string& path);

}  // namespace darwin::index

#endif  // DARWIN_INDEX_INDEX_IO_H
