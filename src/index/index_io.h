/**
 * @file
 * Persistent reference index I/O: atomic save, zero-copy mmap load, and
 * header inspection for `.dwi` files (format.h).
 *
 * save_index writes tmp + rename so readers never observe a partial
 * file. load_index mmaps the file read-only, validates the header and
 * section geometry (magic, endianness, version, truncation, seed
 * shape), and returns a SeedIndex attached to the mapping — the mapping
 * is unmapped when the last shared_ptr drops. Every validation failure
 * is a FatalError tagged with the file path and the offending field.
 */
#ifndef DARWIN_INDEX_INDEX_IO_H
#define DARWIN_INDEX_INDEX_IO_H

#include <cstdint>
#include <memory>
#include <string>

#include "seed/seed_index.h"
#include "seq/sequence.h"

namespace darwin::index {

/** Decoded header of an index file (the `info` subcommand's payload). */
struct IndexInfo {
    std::uint32_t version = 0;
    std::uint64_t sequence_digest = 0;
    std::uint64_t sequence_length = 0;
    std::uint32_t max_bucket = 0;
    std::string pattern;
    std::uint64_t num_buckets = 0;
    std::uint64_t num_positions = 0;
    std::uint64_t skipped_windows = 0;
    std::uint64_t truncated_buckets = 0;
    std::uint64_t total_bytes = 0;
};

/** FNV-1a digest of a sequence's base codes — the identity an index
 *  header records and the cache keys on. */
std::uint64_t sequence_digest(const seq::Sequence& sequence);

/**
 * Serialize `index` to `path` atomically (same-directory tmp + rename).
 * `digest`/`length` identify the sequence the index was built from and
 * land in the header. FatalError on I/O failure or a seed shape longer
 * than the format can record.
 */
void save_index(const std::string& path, const seed::SeedIndex& index,
                std::uint64_t digest, std::uint64_t length);

/**
 * mmap `path`, validate it, and return a SeedIndex reading the mapped
 * sections in place. The mapping stays alive as long as any copy of the
 * returned pointer (SeedIndex::attach keeps the holder). Optionally
 * reports the decoded header through `info`.
 */
std::shared_ptr<const seed::SeedIndex> load_index(const std::string& path,
                                                  IndexInfo* info = nullptr);

/** Read and validate only the header (cheap: no section access). */
IndexInfo read_index_info(const std::string& path);

/** True when `path` exists and starts with the index magic — how tools
 *  distinguish a `.dwi` argument from a FASTA one. */
bool is_index_file(const std::string& path);

}  // namespace darwin::index

#endif  // DARWIN_INDEX_INDEX_IO_H
