/**
 * @file
 * Offline integrity checking of darwin-wga disk artifacts.
 *
 * `darwin-wga-index fsck FILE...` runs every artifact a crashed or
 * SIGKILLed run may have left behind through the same validation the
 * loaders apply — header geometry, checksum trailers, digest
 * verification — plus journal-specific line checks, and reports
 * machine-readable findings instead of dying on the first bad file.
 *
 * Supported artifact kinds (detected from content, not extension):
 *   - `.dwi` reference indexes (monolithic and sharded),
 *   - `.2bit` packed-genome sidecars,
 *   - batch checkpoint journals (JSONL with a darwin-wga-batch header).
 *
 * A clean file yields zero findings. Every finding carries a stable
 * `code` tag ("bad-index", "bad-packed", "bad-journal", "missing",
 * "unknown-type") so scripts can match on it, and a human-readable
 * detail string naming exactly what failed.
 */
#ifndef DARWIN_INDEX_FSCK_H
#define DARWIN_INDEX_FSCK_H

#include <string>
#include <vector>

namespace darwin::index {

/** One problem found in one file. */
struct FsckFinding {
    std::string path;
    std::string code;    ///< stable machine-readable tag
    std::string detail;  ///< what failed, loader-grade specificity
};

/**
 * Validate one artifact; returns the findings (empty = clean). Sets
 * `*kind` (when non-null) to the detected artifact kind ("index",
 * "packed-genome", "journal", or "unknown"). Polls the `index.fsck`
 * fault probe once per call; injected faults propagate to the caller.
 */
std::vector<FsckFinding> fsck_file(const std::string& path,
                                   std::string* kind = nullptr);

}  // namespace darwin::index

#endif  // DARWIN_INDEX_FSCK_H
