#include "index/index_io.h"

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <filesystem>
#include <fstream>

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include "fault/cancel.h"
#include "index/format.h"
#include "util/digest.h"
#include "util/logging.h"
#include "util/strings.h"

namespace darwin::index {

namespace {

/** RAII owner of one read-only mapping; the shared_ptr keepalive the
 *  attached SeedIndex holds. */
class Mapping {
  public:
    Mapping(void* data, std::size_t size) : data_(data), size_(size) {}

    ~Mapping()
    {
        if (data_ != nullptr)
            ::munmap(data_, size_);
    }

    Mapping(const Mapping&) = delete;
    Mapping& operator=(const Mapping&) = delete;

    const std::uint8_t*
    bytes() const
    {
        return static_cast<const std::uint8_t*>(data_);
    }

    std::size_t size() const { return size_; }

  private:
    void* data_;
    std::size_t size_;
};

[[noreturn]] void
bad_index(const std::string& path, const std::string& what)
{
    fatal(strprintf("%s: %s", path.c_str(), what.c_str()));
}

/** Validate everything decodable from the 192 header bytes alone. */
IndexHeader
validate_header(const std::string& path, const std::uint8_t* bytes,
                std::uint64_t file_size)
{
    if (file_size < sizeof(IndexHeader))
        bad_index(path, strprintf("truncated index header (%llu bytes, "
                                  "need %zu)",
                                  static_cast<unsigned long long>(file_size),
                                  sizeof(IndexHeader)));
    IndexHeader header;
    std::memcpy(&header, bytes, sizeof(header));
    if (std::memcmp(header.magic, kIndexMagic, sizeof(kIndexMagic)) != 0)
        bad_index(path, "not a darwin-wga index file (bad magic)");
    if (header.endian_tag != kIndexEndianTag)
        bad_index(path, "index was written with a different byte order");
    if (header.version != kIndexFormatVersion &&
        header.version != kIndexShardedFormatVersion)
        bad_index(path,
                  strprintf("unsupported index format version %u "
                            "(this build reads versions %u and %u; "
                            "rebuild with darwin-wga-index)",
                            header.version, kIndexFormatVersion,
                            kIndexShardedFormatVersion));
    if (header.total_bytes != file_size)
        bad_index(path, strprintf("truncated or padded index file "
                                  "(header records %llu bytes, file has "
                                  "%llu)",
                                  static_cast<unsigned long long>(
                                      header.total_bytes),
                                  static_cast<unsigned long long>(
                                      file_size)));
    if (header.pattern_length == 0 ||
        header.pattern_length > kIndexMaxPatternLength)
        bad_index(path, strprintf("invalid seed-shape length %u",
                                  header.pattern_length));
    if (header.pattern[header.pattern_length] != '\0')
        bad_index(path, "seed-shape field is not NUL-terminated");
    for (std::uint32_t i = 0; i < header.pattern_length; ++i) {
        if (header.pattern[i] != '0' && header.pattern[i] != '1')
            bad_index(path, "seed-shape field holds non-'0'/'1' bytes");
    }
    if (header.max_bucket == 0)
        bad_index(path, "max_bucket of zero");

    const std::uint64_t offsets_bytes = (header.num_buckets + 1) * 4;
    const std::uint64_t positions_bytes = header.num_positions * 4;
    const std::uint64_t over_bytes = ((header.num_buckets + 63) / 64) * 8;
    if (header.version == kIndexFormatVersion) {
        // Monolithic layout. A version-1 writer left the shard fields
        // (the old reserved tail) zeroed; anything else is corruption.
        if (header.num_shards != 0 || header.shard_bp != 0 ||
            header.shard_dir_offset != 0)
            bad_index(path, "version-1 file carries shard fields");
        // Section geometry: in order, aligned, inside the file. The
        // file may end exactly at the last section (legacy) or carry a
        // checksum area after it (validated by the full loaders; this
        // function sees the header bytes only).
        const std::uint64_t sections_end =
            align_section(header.over_words_offset + over_bytes);
        if (header.offsets_offset != sizeof(IndexHeader) ||
            header.positions_offset !=
                align_section(header.offsets_offset + offsets_bytes) ||
            header.over_words_offset !=
                align_section(header.positions_offset + positions_bytes) ||
            (header.total_bytes != sections_end &&
             header.total_bytes <
                 sections_end + sizeof(ChecksumTrailer)))
            bad_index(path, "section offsets disagree with section sizes");
    } else {
        // Sharded layout: global bitset, then the shard directory, then
        // per-shard sections (validated as each shard is opened).
        if (header.num_shards == 0)
            bad_index(path, "sharded index with zero shards");
        if (header.shard_bp == 0)
            bad_index(path, "sharded index with zero shard-bp");
        if (header.offsets_offset != 0 || header.positions_offset != 0)
            bad_index(path, "sharded index carries monolithic sections");
        const std::uint64_t dir_bytes =
            static_cast<std::uint64_t>(header.num_shards) *
            sizeof(ShardDirEntry);
        if (header.over_words_offset !=
                align_section(sizeof(IndexHeader)) ||
            header.shard_dir_offset !=
                align_section(header.over_words_offset + over_bytes) ||
            header.shard_dir_offset + dir_bytes > header.total_bytes)
            bad_index(path, "shard directory offsets disagree with "
                            "section sizes");
    }
    return header;
}

/** One checksummed region: content bytes of a section. */
struct SectionSpan {
    const std::uint8_t* data;
    std::uint64_t bytes;
};

/**
 * Locate and validate the checksum trailer of a fully-mapped file.
 * Returns false when the file ends exactly at its sections (legacy —
 * no checksums to verify); fatal when a trailer area exists but is
 * malformed.
 */
bool
read_checksum_trailer(const std::string& path, const std::uint8_t* base,
                      std::uint64_t file_size, std::uint64_t sections_end,
                      ChecksumTrailer* trailer)
{
    if (file_size == sections_end)
        return false;
    if (file_size < sections_end + sizeof(ChecksumTrailer))
        bad_index(path, "checksum area is smaller than its trailer");
    std::memcpy(trailer, base + file_size - sizeof(ChecksumTrailer),
                sizeof(*trailer));
    if (std::memcmp(trailer->magic, kIndexChecksumMagic,
                    sizeof(kIndexChecksumMagic)) != 0)
        bad_index(path, "file tail is not a checksum trailer (corrupt "
                        "or truncated checksum area)");
    if (trailer->version != kIndexChecksumVersion)
        bad_index(path, strprintf("unsupported checksum version %u",
                                  trailer->version));
    if (trailer->digests_offset < sections_end ||
        trailer->digests_offset % kIndexSectionAlign != 0 ||
        trailer->digests_offset +
                static_cast<std::uint64_t>(trailer->num_digests) * 8 >
            file_size - sizeof(ChecksumTrailer))
        bad_index(path, "checksum digest array falls outside the file");
    return true;
}

/** Verify header + per-section digests against the trailer; fatal on
 *  any mismatch (tagged "checksum mismatch"). */
void
verify_checksums(const std::string& path, const std::uint8_t* base,
                 const std::vector<SectionSpan>& sections,
                 const ChecksumTrailer& trailer)
{
    if (trailer.header_digest !=
        fnv1a64_bytes({base, sizeof(IndexHeader)}))
        bad_index(path, "header checksum mismatch (corrupt index?)");
    if (trailer.num_digests != sections.size())
        bad_index(path,
                  strprintf("checksum mismatch: trailer carries %u "
                            "section digests, layout has %zu sections",
                            trailer.num_digests, sections.size()));
    const auto* digests = reinterpret_cast<const std::uint64_t*>(
        base + trailer.digests_offset);
    for (std::size_t i = 0; i < sections.size(); ++i) {
        if (digests[i] !=
            fnv1a64_bytes({sections[i].data, sections[i].bytes}))
            bad_index(path,
                      strprintf("section %zu checksum mismatch "
                                "(corrupt index?)",
                                i));
    }
}

/** Append the digest array + trailer; returns the new end offset. */
std::uint64_t
write_checksum_area(std::ofstream& out, std::uint64_t sections_end,
                    const std::vector<std::uint64_t>& digests,
                    std::uint64_t header_digest)
{
    ChecksumTrailer trailer = {};
    std::memcpy(trailer.magic, kIndexChecksumMagic,
                sizeof(kIndexChecksumMagic));
    trailer.version = kIndexChecksumVersion;
    trailer.num_digests = static_cast<std::uint32_t>(digests.size());
    trailer.digests_offset = sections_end;
    trailer.header_digest = header_digest;
    out.write(reinterpret_cast<const char*>(digests.data()),
              static_cast<std::streamsize>(digests.size() * 8));
    const std::uint64_t array_end = sections_end + digests.size() * 8;
    const std::uint64_t trailer_offset = align_section(array_end);
    static const char zeros[kIndexSectionAlign] = {};
    out.write(zeros,
              static_cast<std::streamsize>(trailer_offset - array_end));
    out.write(reinterpret_cast<const char*>(&trailer), sizeof(trailer));
    return trailer_offset + sizeof(trailer);
}

/** The checksum-inclusive total size for a file whose sections end at
 *  `sections_end` and carry `num_digests` section digests. */
constexpr std::uint64_t
checksummed_total(std::uint64_t sections_end, std::size_t num_digests)
{
    return align_section(sections_end + num_digests * 8) +
           sizeof(ChecksumTrailer);
}

void
write_padding(std::ofstream& out, std::uint64_t current,
              std::uint64_t target)
{
    static const char zeros[kIndexSectionAlign] = {};
    while (current < target) {
        const std::uint64_t n =
            std::min<std::uint64_t>(target - current, sizeof(zeros));
        out.write(zeros, static_cast<std::streamsize>(n));
        current += n;
    }
}

}  // namespace

std::uint64_t
sequence_digest(const seq::Sequence& sequence)
{
    return fnv1a64_bytes({sequence.codes().data(), sequence.size()});
}

std::uint64_t
sequence_digest(const seq::PackedSequence& sequence)
{
    // FNV-1a chains: digesting window-by-window with the running hash
    // as the next seed equals one pass over the concatenated bytes, so
    // this matches the byte overload bit-for-bit.
    constexpr std::size_t kWindow = 1u << 20;
    std::vector<std::uint8_t> window(
        std::min<std::size_t>(kWindow, sequence.size()));
    std::uint64_t hash = kFnv1aBasis;
    for (std::size_t start = 0; start < sequence.size();
         start += kWindow) {
        const std::size_t len =
            std::min(kWindow, sequence.size() - start);
        sequence.decode(start, len, window.data());
        hash = fnv1a64_bytes({window.data(), len}, hash);
    }
    return hash;
}

void
save_index(const std::string& path, const seed::SeedIndex& index,
           std::uint64_t digest, std::uint64_t length)
{
    const std::string& pattern = index.pattern().pattern();
    if (pattern.size() > kIndexMaxPatternLength)
        fatal(strprintf("%s: seed shape of %zu bp exceeds the index "
                        "format's %u bp limit",
                        path.c_str(), pattern.size(),
                        kIndexMaxPatternLength));

    IndexHeader header = {};
    std::memcpy(header.magic, kIndexMagic, sizeof(kIndexMagic));
    header.version = kIndexFormatVersion;
    header.endian_tag = kIndexEndianTag;
    header.sequence_digest = digest;
    header.sequence_length = length;
    header.max_bucket = index.max_bucket();
    header.pattern_length = static_cast<std::uint32_t>(pattern.size());
    std::memcpy(header.pattern, pattern.data(), pattern.size());
    header.num_buckets = index.pattern().key_space();
    header.num_positions = index.positions().size();
    header.skipped_windows = index.skipped_windows();
    header.truncated_buckets = index.truncated_buckets();
    header.offsets_offset = sizeof(IndexHeader);
    header.positions_offset = align_section(
        header.offsets_offset + index.bucket_offsets().size_bytes());
    header.over_words_offset = align_section(
        header.positions_offset + index.positions().size_bytes());
    const std::uint64_t sections_end = align_section(
        header.over_words_offset + index.over_represented_words()
                                       .size_bytes());

    // Per-section digests, in layout order, plus the header digest —
    // appended after the sections so legacy readers (which stop at
    // sections_end) would still understand the geometry.
    const std::vector<std::uint64_t> digests = {
        fnv1a64_bytes({reinterpret_cast<const std::uint8_t*>(
                           index.bucket_offsets().data()),
                       index.bucket_offsets().size_bytes()}),
        fnv1a64_bytes({reinterpret_cast<const std::uint8_t*>(
                           index.positions().data()),
                       index.positions().size_bytes()}),
        fnv1a64_bytes({reinterpret_cast<const std::uint8_t*>(
                           index.over_represented_words().data()),
                       index.over_represented_words().size_bytes()}),
    };
    header.total_bytes = checksummed_total(sections_end, digests.size());
    const std::uint64_t header_digest = fnv1a64_bytes(
        {reinterpret_cast<const std::uint8_t*>(&header), sizeof(header)});

    const std::string tmp = path + ".tmp";
    {
        std::ofstream out(tmp, std::ios::trunc | std::ios::binary);
        if (!out)
            fatal(strprintf("cannot write %s", tmp.c_str()));
        const auto write_bytes = [&out](const void* data,
                                        std::uint64_t bytes) {
            out.write(static_cast<const char*>(data),
                      static_cast<std::streamsize>(bytes));
        };
        write_bytes(&header, sizeof(header));
        write_bytes(index.bucket_offsets().data(),
                    index.bucket_offsets().size_bytes());
        write_padding(out,
                      header.offsets_offset +
                          index.bucket_offsets().size_bytes(),
                      header.positions_offset);
        write_bytes(index.positions().data(),
                    index.positions().size_bytes());
        write_padding(out,
                      header.positions_offset +
                          index.positions().size_bytes(),
                      header.over_words_offset);
        write_bytes(index.over_represented_words().data(),
                    index.over_represented_words().size_bytes());
        write_padding(out,
                      header.over_words_offset +
                          index.over_represented_words().size_bytes(),
                      sections_end);
        const std::uint64_t written =
            write_checksum_area(out, sections_end, digests, header_digest);
        require(written == header.total_bytes,
                "index checksum area size mismatch");
        out.flush();
        if (!out)
            fatal(strprintf("error writing %s", tmp.c_str()));
    }
    std::error_code ec;
    std::filesystem::rename(tmp, path, ec);
    if (ec) {
        fatal(strprintf("cannot rename %s -> %s: %s", tmp.c_str(),
                        path.c_str(), ec.message().c_str()));
    }
}

namespace {

/** mmap `path` read-only; fatal on any failure. */
std::shared_ptr<Mapping>
map_index_file(const std::string& path)
{
    fault::poll("index.mmap");
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0)
        fatal(strprintf("cannot open index %s: %s", path.c_str(),
                        std::strerror(errno)));
    struct stat st = {};
    if (::fstat(fd, &st) != 0) {
        const int err = errno;
        ::close(fd);
        fatal(strprintf("cannot stat index %s: %s", path.c_str(),
                        std::strerror(err)));
    }
    const auto file_size = static_cast<std::uint64_t>(st.st_size);
    if (file_size == 0) {
        ::close(fd);
        bad_index(path, "empty index file");
    }
    void* data = ::mmap(nullptr, file_size, PROT_READ, MAP_PRIVATE, fd, 0);
    const int map_err = errno;
    ::close(fd);  // the mapping keeps its own reference
    if (data == MAP_FAILED)
        fatal(strprintf("cannot mmap index %s: %s", path.c_str(),
                        std::strerror(map_err)));
    return std::make_shared<Mapping>(data, file_size);
}

void
fill_info(IndexInfo* info, const IndexHeader& header)
{
    info->version = header.version;
    info->sequence_digest = header.sequence_digest;
    info->sequence_length = header.sequence_length;
    info->max_bucket = header.max_bucket;
    info->pattern.assign(header.pattern, header.pattern_length);
    info->num_buckets = header.num_buckets;
    info->num_positions = header.num_positions;
    info->skipped_windows = header.skipped_windows;
    info->truncated_buckets = header.truncated_buckets;
    info->total_bytes = header.total_bytes;
    info->shard_bp = header.shard_bp;
    info->num_shards = header.num_shards;
}

}  // namespace

std::shared_ptr<const seed::SeedIndex>
load_index(const std::string& path, IndexInfo* info)
{
    auto mapping = map_index_file(path);
    const std::uint64_t file_size = mapping->size();

    const IndexHeader header =
        validate_header(path, mapping->bytes(), file_size);
    if (header.version == kIndexShardedFormatVersion)
        bad_index(path, "sharded index; open with ShardedIndexReader "
                        "(or rebuild without --shard-bp)");

    seed::SeedPattern pattern = [&] {
        try {
            return seed::SeedPattern{
                std::string(header.pattern, header.pattern_length)};
        } catch (const FatalError& e) {
            bad_index(path, strprintf("invalid seed shape: %s", e.what()));
        }
    }();
    if (pattern.key_space() != header.num_buckets)
        bad_index(path, "bucket count disagrees with the seed shape");

    const std::uint8_t* base = mapping->bytes();

    // Verify the checksum area (absent only in legacy files) before a
    // single section byte is trusted: a torn write or bit flip fails
    // loudly here instead of corrupting alignments downstream.
    const std::uint64_t offsets_bytes = (header.num_buckets + 1) * 4;
    const std::uint64_t positions_bytes = header.num_positions * 4;
    const std::uint64_t over_bytes = ((header.num_buckets + 63) / 64) * 8;
    const std::uint64_t sections_end =
        align_section(header.over_words_offset + over_bytes);
    ChecksumTrailer trailer;
    if (read_checksum_trailer(path, base, file_size, sections_end,
                              &trailer)) {
        verify_checksums(path, base,
                         {{base + header.offsets_offset, offsets_bytes},
                          {base + header.positions_offset,
                           positions_bytes},
                          {base + header.over_words_offset, over_bytes}},
                         trailer);
    }

    const std::span<const std::uint32_t> offsets{
        reinterpret_cast<const std::uint32_t*>(base +
                                               header.offsets_offset),
        static_cast<std::size_t>(header.num_buckets + 1)};
    const std::span<const std::uint32_t> positions{
        reinterpret_cast<const std::uint32_t*>(base +
                                               header.positions_offset),
        static_cast<std::size_t>(header.num_positions)};
    const std::span<const std::uint64_t> over_words{
        reinterpret_cast<const std::uint64_t*>(base +
                                               header.over_words_offset),
        static_cast<std::size_t>((header.num_buckets + 63) / 64)};
    if (offsets.back() != header.num_positions)
        bad_index(path, "final bucket offset disagrees with the "
                        "position count");

    if (info != nullptr)
        fill_info(info, header);

    auto index = std::make_shared<seed::SeedIndex>(seed::SeedIndex::attach(
        std::move(pattern), header.max_bucket, offsets, positions,
        over_words, header.skipped_windows, header.truncated_buckets,
        std::move(mapping)));
    return index;
}

IndexInfo
read_index_info(const std::string& path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        fatal(strprintf("cannot open index %s", path.c_str()));
    in.seekg(0, std::ios::end);
    const auto file_size = static_cast<std::uint64_t>(in.tellg());
    in.seekg(0);
    std::uint8_t bytes[sizeof(IndexHeader)] = {};
    in.read(reinterpret_cast<char*>(bytes),
            static_cast<std::streamsize>(
                std::min<std::uint64_t>(file_size, sizeof(bytes))));
    const IndexHeader header = validate_header(path, bytes, file_size);
    IndexInfo info;
    fill_info(&info, header);
    return info;
}

void
save_sharded_index(const std::string& path,
                   const seed::ShardedSeedIndexBuilder& builder,
                   std::uint64_t shard_bp, std::uint64_t digest,
                   std::uint64_t length)
{
    const std::string& pattern = builder.pattern().pattern();
    if (pattern.size() > kIndexMaxPatternLength)
        fatal(strprintf("%s: seed shape of %zu bp exceeds the index "
                        "format's %u bp limit",
                        path.c_str(), pattern.size(),
                        kIndexMaxPatternLength));
    const std::uint64_t num_buckets = builder.pattern().key_space();
    const auto over = builder.over_represented_words();
    const std::uint64_t over_bytes = over.size_bytes();

    IndexHeader header = {};
    std::memcpy(header.magic, kIndexMagic, sizeof(kIndexMagic));
    header.version = kIndexShardedFormatVersion;
    header.endian_tag = kIndexEndianTag;
    header.sequence_digest = digest;
    header.sequence_length = length;
    header.max_bucket = builder.max_bucket();
    header.pattern_length = static_cast<std::uint32_t>(pattern.size());
    std::memcpy(header.pattern, pattern.data(), pattern.size());
    header.num_buckets = num_buckets;
    header.skipped_windows = builder.skipped_windows();
    header.truncated_buckets = builder.truncated_buckets();
    header.shard_bp = shard_bp;
    header.num_shards =
        static_cast<std::uint32_t>(builder.num_shards());
    header.over_words_offset = align_section(sizeof(IndexHeader));
    header.shard_dir_offset =
        align_section(header.over_words_offset + over_bytes);

    std::vector<ShardDirEntry> dir(builder.num_shards());
    const std::uint64_t dir_bytes = dir.size() * sizeof(ShardDirEntry);

    const std::string tmp = path + ".tmp";
    {
        std::ofstream out(tmp, std::ios::trunc | std::ios::binary);
        if (!out)
            fatal(strprintf("cannot write %s", tmp.c_str()));
        const auto write_bytes = [&out](const void* data,
                                        std::uint64_t bytes) {
            out.write(static_cast<const char*>(data),
                      static_cast<std::streamsize>(bytes));
        };
        // Header and directory go out as placeholders first (the
        // per-shard section sizes are only known after each build) and
        // are patched in place before the rename publishes the file.
        write_bytes(&header, sizeof(header));
        write_padding(out, sizeof(header), header.over_words_offset);
        write_bytes(over.data(), over_bytes);
        write_padding(out, header.over_words_offset + over_bytes,
                      header.shard_dir_offset);
        write_bytes(dir.data(), dir_bytes);

        // One shard's table resident at a time — the writer honors the
        // same bound the sharded layout exists to provide.
        std::uint64_t cursor = header.shard_dir_offset + dir_bytes;
        std::uint64_t total_positions = 0;
        std::vector<std::uint64_t> digests;
        digests.push_back(fnv1a64_bytes(
            {reinterpret_cast<const std::uint8_t*>(over.data()),
             over_bytes}));
        digests.push_back(0);  // directory digest, patched after the loop
        for (std::size_t s = 0; s < builder.num_shards(); ++s) {
            const seed::ShardPlan& plan = builder.plan()[s];
            const auto shard = builder.build_shard(s);
            dir[s].band_lo = plan.band_lo;
            dir[s].band_hi = plan.band_hi;
            dir[s].slice_lo = plan.slice_lo;
            dir[s].slice_hi = plan.slice_hi;
            dir[s].num_positions = shard->positions().size();
            total_positions += dir[s].num_positions;

            dir[s].offsets_offset = align_section(cursor);
            write_padding(out, cursor, dir[s].offsets_offset);
            write_bytes(shard->bucket_offsets().data(),
                        shard->bucket_offsets().size_bytes());
            digests.push_back(fnv1a64_bytes(
                {reinterpret_cast<const std::uint8_t*>(
                     shard->bucket_offsets().data()),
                 shard->bucket_offsets().size_bytes()}));
            cursor = dir[s].offsets_offset +
                     shard->bucket_offsets().size_bytes();

            dir[s].positions_offset = align_section(cursor);
            write_padding(out, cursor, dir[s].positions_offset);
            write_bytes(shard->positions().data(),
                        shard->positions().size_bytes());
            digests.push_back(fnv1a64_bytes(
                {reinterpret_cast<const std::uint8_t*>(
                     shard->positions().data()),
                 shard->positions().size_bytes()}));
            cursor = dir[s].positions_offset +
                     shard->positions().size_bytes();
        }
        header.num_positions = total_positions;
        const std::uint64_t sections_end = align_section(cursor);
        write_padding(out, cursor, sections_end);
        // The directory digest covers the final (patched) entries; the
        // header digest covers the final header including total_bytes.
        digests[1] = fnv1a64_bytes(
            {reinterpret_cast<const std::uint8_t*>(dir.data()),
             dir_bytes});
        header.total_bytes = checksummed_total(sections_end,
                                               digests.size());
        const std::uint64_t header_digest = fnv1a64_bytes(
            {reinterpret_cast<const std::uint8_t*>(&header),
             sizeof(header)});
        const std::uint64_t written = write_checksum_area(
            out, sections_end, digests, header_digest);
        require(written == header.total_bytes,
                "index checksum area size mismatch");

        out.seekp(0);
        write_bytes(&header, sizeof(header));
        out.seekp(static_cast<std::streamoff>(header.shard_dir_offset));
        write_bytes(dir.data(), dir_bytes);
        out.flush();
        if (!out)
            fatal(strprintf("error writing %s", tmp.c_str()));
    }
    std::error_code ec;
    std::filesystem::rename(tmp, path, ec);
    if (ec) {
        fatal(strprintf("cannot rename %s -> %s: %s", tmp.c_str(),
                        path.c_str(), ec.message().c_str()));
    }
}

ShardedIndexReader::ShardedIndexReader(const std::string& path)
    : path_(path)
{
    auto mapping = map_index_file(path);
    base_ = mapping->bytes();
    const std::uint64_t file_size = mapping->size();
    mapping_ = std::move(mapping);

    const IndexHeader header = validate_header(path, base_, file_size);
    if (header.version != kIndexShardedFormatVersion)
        bad_index(path, "monolithic index; open with load_index "
                        "(or rebuild with --shard-bp)");
    fill_info(&info_, header);

    over_words_ = {reinterpret_cast<const std::uint64_t*>(
                       base_ + header.over_words_offset),
                   static_cast<std::size_t>((header.num_buckets + 63) / 64)};

    const std::uint64_t offsets_bytes = (header.num_buckets + 1) * 4;
    std::uint64_t total_positions = 0;
    plan_.resize(header.num_shards);
    shard_offsets_.resize(header.num_shards);
    shard_positions_.resize(header.num_shards);
    shard_counts_.resize(header.num_shards);
    for (std::uint32_t s = 0; s < header.num_shards; ++s) {
        ShardDirEntry entry;
        std::memcpy(&entry,
                    base_ + header.shard_dir_offset +
                        s * sizeof(ShardDirEntry),
                    sizeof(entry));
        if (entry.band_lo >= entry.band_hi ||
            (s > 0 && entry.band_lo != plan_[s - 1].band_hi))
            bad_index(path, strprintf("shard %u: band range is not a "
                                      "partition", s));
        if (entry.offsets_offset % kIndexSectionAlign != 0 ||
            entry.positions_offset % kIndexSectionAlign != 0 ||
            entry.offsets_offset + offsets_bytes > header.total_bytes ||
            entry.positions_offset + entry.num_positions * 4 >
                header.total_bytes)
            bad_index(path, strprintf("shard %u: sections fall outside "
                                      "the file", s));
        plan_[s] = {entry.band_lo, entry.band_hi, entry.slice_lo,
                    entry.slice_hi};
        shard_offsets_[s] = entry.offsets_offset;
        shard_positions_[s] = entry.positions_offset;
        shard_counts_[s] = entry.num_positions;
        total_positions += entry.num_positions;
    }
    if (total_positions != header.num_positions)
        bad_index(path, "shard position counts disagree with the header");

    // Verify the checksum area before any shard is handed out. The
    // digest order mirrors save_sharded_index: over-words, directory,
    // then (offsets, positions) per shard.
    const std::uint64_t dir_bytes =
        static_cast<std::uint64_t>(header.num_shards) *
        sizeof(ShardDirEntry);
    std::uint64_t sections_end = header.shard_dir_offset + dir_bytes;
    std::vector<SectionSpan> sections;
    sections.push_back({base_ + header.over_words_offset,
                        ((header.num_buckets + 63) / 64) * 8});
    sections.push_back({base_ + header.shard_dir_offset, dir_bytes});
    for (std::uint32_t s = 0; s < header.num_shards; ++s) {
        sections.push_back({base_ + shard_offsets_[s], offsets_bytes});
        sections.push_back(
            {base_ + shard_positions_[s], shard_counts_[s] * 4});
        sections_end = std::max(
            sections_end, shard_positions_[s] + shard_counts_[s] * 4);
    }
    sections_end = align_section(sections_end);
    ChecksumTrailer trailer;
    if (read_checksum_trailer(path, base_, file_size, sections_end,
                              &trailer))
        verify_checksums(path, base_, sections, trailer);
}

std::shared_ptr<const seed::SeedIndex>
ShardedIndexReader::open_shard(std::size_t s) const
{
    require(s < plan_.size(), "ShardedIndexReader: shard out of range");
    seed::SeedPattern pattern = [&] {
        try {
            return seed::SeedPattern{info_.pattern};
        } catch (const FatalError& e) {
            bad_index(path_,
                      strprintf("invalid seed shape: %s", e.what()));
        }
    }();
    const std::span<const std::uint32_t> offsets{
        reinterpret_cast<const std::uint32_t*>(base_ + shard_offsets_[s]),
        static_cast<std::size_t>(info_.num_buckets + 1)};
    const std::span<const std::uint32_t> positions{
        reinterpret_cast<const std::uint32_t*>(base_ +
                                               shard_positions_[s]),
        static_cast<std::size_t>(shard_counts_[s])};
    if (offsets.back() != shard_counts_[s])
        bad_index(path_, strprintf("shard %zu: final bucket offset "
                                   "disagrees with the position count",
                                   s));
    return std::make_shared<seed::SeedIndex>(seed::SeedIndex::attach(
        std::move(pattern), info_.max_bucket, offsets, positions,
        over_words_, info_.skipped_windows, info_.truncated_buckets,
        mapping_));
}

bool
is_index_file(const std::string& path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return false;
    char magic[sizeof(kIndexMagic)] = {};
    in.read(magic, sizeof(magic));
    return in.gcount() == sizeof(magic) &&
           std::memcmp(magic, kIndexMagic, sizeof(magic)) == 0;
}

}  // namespace darwin::index
