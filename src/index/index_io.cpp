#include "index/index_io.h"

#include <cerrno>
#include <cstring>
#include <filesystem>
#include <fstream>

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include "index/format.h"
#include "util/digest.h"
#include "util/logging.h"
#include "util/strings.h"

namespace darwin::index {

namespace {

/** RAII owner of one read-only mapping; the shared_ptr keepalive the
 *  attached SeedIndex holds. */
class Mapping {
  public:
    Mapping(void* data, std::size_t size) : data_(data), size_(size) {}

    ~Mapping()
    {
        if (data_ != nullptr)
            ::munmap(data_, size_);
    }

    Mapping(const Mapping&) = delete;
    Mapping& operator=(const Mapping&) = delete;

    const std::uint8_t*
    bytes() const
    {
        return static_cast<const std::uint8_t*>(data_);
    }

    std::size_t size() const { return size_; }

  private:
    void* data_;
    std::size_t size_;
};

[[noreturn]] void
bad_index(const std::string& path, const std::string& what)
{
    fatal(strprintf("%s: %s", path.c_str(), what.c_str()));
}

/** Validate everything decodable from the 192 header bytes alone. */
IndexHeader
validate_header(const std::string& path, const std::uint8_t* bytes,
                std::uint64_t file_size)
{
    if (file_size < sizeof(IndexHeader))
        bad_index(path, strprintf("truncated index header (%llu bytes, "
                                  "need %zu)",
                                  static_cast<unsigned long long>(file_size),
                                  sizeof(IndexHeader)));
    IndexHeader header;
    std::memcpy(&header, bytes, sizeof(header));
    if (std::memcmp(header.magic, kIndexMagic, sizeof(kIndexMagic)) != 0)
        bad_index(path, "not a darwin-wga index file (bad magic)");
    if (header.endian_tag != kIndexEndianTag)
        bad_index(path, "index was written with a different byte order");
    if (header.version != kIndexFormatVersion)
        bad_index(path,
                  strprintf("unsupported index format version %u "
                            "(this build reads version %u; rebuild with "
                            "darwin-wga-index)",
                            header.version, kIndexFormatVersion));
    if (header.total_bytes != file_size)
        bad_index(path, strprintf("truncated or padded index file "
                                  "(header records %llu bytes, file has "
                                  "%llu)",
                                  static_cast<unsigned long long>(
                                      header.total_bytes),
                                  static_cast<unsigned long long>(
                                      file_size)));
    if (header.pattern_length == 0 ||
        header.pattern_length > kIndexMaxPatternLength)
        bad_index(path, strprintf("invalid seed-shape length %u",
                                  header.pattern_length));
    if (header.pattern[header.pattern_length] != '\0')
        bad_index(path, "seed-shape field is not NUL-terminated");
    for (std::uint32_t i = 0; i < header.pattern_length; ++i) {
        if (header.pattern[i] != '0' && header.pattern[i] != '1')
            bad_index(path, "seed-shape field holds non-'0'/'1' bytes");
    }
    if (header.max_bucket == 0)
        bad_index(path, "max_bucket of zero");

    // Section geometry: in order, aligned, inside the file.
    const std::uint64_t offsets_bytes = (header.num_buckets + 1) * 4;
    const std::uint64_t positions_bytes = header.num_positions * 4;
    const std::uint64_t over_bytes = ((header.num_buckets + 63) / 64) * 8;
    if (header.offsets_offset != sizeof(IndexHeader) ||
        header.positions_offset !=
            align_section(header.offsets_offset + offsets_bytes) ||
        header.over_words_offset !=
            align_section(header.positions_offset + positions_bytes) ||
        header.total_bytes !=
            align_section(header.over_words_offset + over_bytes))
        bad_index(path, "section offsets disagree with section sizes");
    return header;
}

void
write_padding(std::ofstream& out, std::uint64_t current,
              std::uint64_t target)
{
    static const char zeros[kIndexSectionAlign] = {};
    while (current < target) {
        const std::uint64_t n =
            std::min<std::uint64_t>(target - current, sizeof(zeros));
        out.write(zeros, static_cast<std::streamsize>(n));
        current += n;
    }
}

}  // namespace

std::uint64_t
sequence_digest(const seq::Sequence& sequence)
{
    return fnv1a64_bytes({sequence.codes().data(), sequence.size()});
}

void
save_index(const std::string& path, const seed::SeedIndex& index,
           std::uint64_t digest, std::uint64_t length)
{
    const std::string& pattern = index.pattern().pattern();
    if (pattern.size() > kIndexMaxPatternLength)
        fatal(strprintf("%s: seed shape of %zu bp exceeds the index "
                        "format's %u bp limit",
                        path.c_str(), pattern.size(),
                        kIndexMaxPatternLength));

    IndexHeader header = {};
    std::memcpy(header.magic, kIndexMagic, sizeof(kIndexMagic));
    header.version = kIndexFormatVersion;
    header.endian_tag = kIndexEndianTag;
    header.sequence_digest = digest;
    header.sequence_length = length;
    header.max_bucket = index.max_bucket();
    header.pattern_length = static_cast<std::uint32_t>(pattern.size());
    std::memcpy(header.pattern, pattern.data(), pattern.size());
    header.num_buckets = index.pattern().key_space();
    header.num_positions = index.positions().size();
    header.skipped_windows = index.skipped_windows();
    header.truncated_buckets = index.truncated_buckets();
    header.offsets_offset = sizeof(IndexHeader);
    header.positions_offset = align_section(
        header.offsets_offset + index.bucket_offsets().size_bytes());
    header.over_words_offset = align_section(
        header.positions_offset + index.positions().size_bytes());
    header.total_bytes = align_section(
        header.over_words_offset + index.over_represented_words()
                                       .size_bytes());

    const std::string tmp = path + ".tmp";
    {
        std::ofstream out(tmp, std::ios::trunc | std::ios::binary);
        if (!out)
            fatal(strprintf("cannot write %s", tmp.c_str()));
        const auto write_bytes = [&out](const void* data,
                                        std::uint64_t bytes) {
            out.write(static_cast<const char*>(data),
                      static_cast<std::streamsize>(bytes));
        };
        write_bytes(&header, sizeof(header));
        write_bytes(index.bucket_offsets().data(),
                    index.bucket_offsets().size_bytes());
        write_padding(out,
                      header.offsets_offset +
                          index.bucket_offsets().size_bytes(),
                      header.positions_offset);
        write_bytes(index.positions().data(),
                    index.positions().size_bytes());
        write_padding(out,
                      header.positions_offset +
                          index.positions().size_bytes(),
                      header.over_words_offset);
        write_bytes(index.over_represented_words().data(),
                    index.over_represented_words().size_bytes());
        write_padding(out,
                      header.over_words_offset +
                          index.over_represented_words().size_bytes(),
                      header.total_bytes);
        out.flush();
        if (!out)
            fatal(strprintf("error writing %s", tmp.c_str()));
    }
    std::error_code ec;
    std::filesystem::rename(tmp, path, ec);
    if (ec) {
        fatal(strprintf("cannot rename %s -> %s: %s", tmp.c_str(),
                        path.c_str(), ec.message().c_str()));
    }
}

std::shared_ptr<const seed::SeedIndex>
load_index(const std::string& path, IndexInfo* info)
{
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0)
        fatal(strprintf("cannot open index %s: %s", path.c_str(),
                        std::strerror(errno)));
    struct stat st = {};
    if (::fstat(fd, &st) != 0) {
        const int err = errno;
        ::close(fd);
        fatal(strprintf("cannot stat index %s: %s", path.c_str(),
                        std::strerror(err)));
    }
    const auto file_size = static_cast<std::uint64_t>(st.st_size);
    if (file_size == 0) {
        ::close(fd);
        bad_index(path, "empty index file");
    }
    void* data = ::mmap(nullptr, file_size, PROT_READ, MAP_PRIVATE, fd, 0);
    const int map_err = errno;
    ::close(fd);  // the mapping keeps its own reference
    if (data == MAP_FAILED)
        fatal(strprintf("cannot mmap index %s: %s", path.c_str(),
                        std::strerror(map_err)));
    auto mapping = std::make_shared<Mapping>(data, file_size);

    const IndexHeader header =
        validate_header(path, mapping->bytes(), file_size);

    seed::SeedPattern pattern = [&] {
        try {
            return seed::SeedPattern{
                std::string(header.pattern, header.pattern_length)};
        } catch (const FatalError& e) {
            bad_index(path, strprintf("invalid seed shape: %s", e.what()));
        }
    }();
    if (pattern.key_space() != header.num_buckets)
        bad_index(path, "bucket count disagrees with the seed shape");

    const std::uint8_t* base = mapping->bytes();
    const std::span<const std::uint32_t> offsets{
        reinterpret_cast<const std::uint32_t*>(base +
                                               header.offsets_offset),
        static_cast<std::size_t>(header.num_buckets + 1)};
    const std::span<const std::uint32_t> positions{
        reinterpret_cast<const std::uint32_t*>(base +
                                               header.positions_offset),
        static_cast<std::size_t>(header.num_positions)};
    const std::span<const std::uint64_t> over_words{
        reinterpret_cast<const std::uint64_t*>(base +
                                               header.over_words_offset),
        static_cast<std::size_t>((header.num_buckets + 63) / 64)};
    if (offsets.back() != header.num_positions)
        bad_index(path, "final bucket offset disagrees with the "
                        "position count");

    if (info != nullptr) {
        info->version = header.version;
        info->sequence_digest = header.sequence_digest;
        info->sequence_length = header.sequence_length;
        info->max_bucket = header.max_bucket;
        info->pattern = pattern.pattern();
        info->num_buckets = header.num_buckets;
        info->num_positions = header.num_positions;
        info->skipped_windows = header.skipped_windows;
        info->truncated_buckets = header.truncated_buckets;
        info->total_bytes = header.total_bytes;
    }

    auto index = std::make_shared<seed::SeedIndex>(seed::SeedIndex::attach(
        std::move(pattern), header.max_bucket, offsets, positions,
        over_words, header.skipped_windows, header.truncated_buckets,
        std::move(mapping)));
    return index;
}

IndexInfo
read_index_info(const std::string& path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        fatal(strprintf("cannot open index %s", path.c_str()));
    in.seekg(0, std::ios::end);
    const auto file_size = static_cast<std::uint64_t>(in.tellg());
    in.seekg(0);
    std::uint8_t bytes[sizeof(IndexHeader)] = {};
    in.read(reinterpret_cast<char*>(bytes),
            static_cast<std::streamsize>(
                std::min<std::uint64_t>(file_size, sizeof(bytes))));
    const IndexHeader header = validate_header(path, bytes, file_size);
    IndexInfo info;
    info.version = header.version;
    info.sequence_digest = header.sequence_digest;
    info.sequence_length = header.sequence_length;
    info.max_bucket = header.max_bucket;
    info.pattern.assign(header.pattern, header.pattern_length);
    info.num_buckets = header.num_buckets;
    info.num_positions = header.num_positions;
    info.skipped_windows = header.skipped_windows;
    info.truncated_buckets = header.truncated_buckets;
    info.total_bytes = header.total_bytes;
    return info;
}

bool
is_index_file(const std::string& path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return false;
    char magic[sizeof(kIndexMagic)] = {};
    in.read(magic, sizeof(magic));
    return in.gcount() == sizeof(magic) &&
           std::memcmp(magic, kIndexMagic, sizeof(magic)) == 0;
}

}  // namespace darwin::index
