/**
 * @file
 * LRU cache of seed indexes keyed by the inputs that determine the
 * table bytes: the target-sequence digest, the seed shape, and the
 * repeat cap.
 *
 * acquire() is single-flight: when several threads ask for the same
 * missing key at once, one runs the builder and the rest block on its
 * shared_future — the batch engine's shard-group pairs and the serve
 * daemon's concurrent requests both hit this path. Entries are
 * shared_ptrs, so eviction never invalidates an index a pair is still
 * seeding with; the bytes go away when the last borrower drops.
 *
 * Metrics (optional): `<prefix>.cache_hits`, `<prefix>.cache_misses`,
 * `<prefix>.cache_evictions` counters plus a `<prefix>.cache_size`
 * gauge, e.g. prefix "batch.index" in the batch engine and
 * "serve.index" in the daemon.
 */
#ifndef DARWIN_INDEX_INDEX_CACHE_H
#define DARWIN_INDEX_INDEX_CACHE_H

#include <cstdint>
#include <functional>
#include <future>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "seed/seed_index.h"

namespace darwin::obs {
class MetricsRegistry;
}

namespace darwin::index {

/** Everything that determines a seed table's content. */
struct IndexKey {
    std::uint64_t digest = 0;   ///< fnv1a64 over the target codes
    std::string pattern;        ///< seed-shape string ('1'/'0')
    std::uint32_t max_bucket = seed::SeedIndex::kDefaultMaxBucket;

    bool operator==(const IndexKey&) const = default;
};

struct IndexKeyHash {
    std::size_t operator()(const IndexKey& key) const;
};

/** Thread-safe LRU cache of immutable seed indexes. */
class IndexCache {
  public:
    using Builder =
        std::function<std::shared_ptr<const seed::SeedIndex>()>;

    /**
     * @param capacity Max resident entries (>= 1; in-flight builds do
     *        not count until they land).
     * @param metrics Optional registry for the cache counters.
     * @param metric_prefix Metric-name prefix, e.g. "batch.index".
     */
    explicit IndexCache(std::size_t capacity,
                        obs::MetricsRegistry* metrics = nullptr,
                        std::string metric_prefix = "index");

    /**
     * Return the cached index for `key`, or run `builder` to create it.
     * Concurrent callers of the same missing key share one build. The
     * builder's result is validated non-null before insertion; a builder
     * that throws propagates the exception to every waiter and leaves
     * the cache without an entry.
     *
     * @param built When non-null, set to true iff this call (or the
     *        in-flight build it joined) constructed the index rather
     *        than finding it resident — how callers distinguish a hit
     *        for their own accounting.
     */
    std::shared_ptr<const seed::SeedIndex>
    acquire(const IndexKey& key, const Builder& builder,
            bool* built = nullptr);

    /** True when `key` is resident (does not touch LRU order). */
    bool contains(const IndexKey& key) const;

    /** Resident entry count. */
    std::size_t size() const;

    /** Drop every resident entry (borrowed indexes stay alive). */
    void clear();

    std::size_t capacity() const { return capacity_; }
    std::uint64_t hits() const;
    std::uint64_t misses() const;
    std::uint64_t evictions() const;

  private:
    struct Entry {
        IndexKey key;
        std::shared_ptr<const seed::SeedIndex> index;
    };
    using LruList = std::list<Entry>;

    void touch_locked(LruList::iterator it);
    void insert_locked(const IndexKey& key,
                       std::shared_ptr<const seed::SeedIndex> index);

    const std::size_t capacity_;
    obs::MetricsRegistry* const metrics_;
    const std::string prefix_;

    mutable std::mutex mutex_;
    LruList lru_;  // front = most recent
    std::unordered_map<IndexKey, LruList::iterator, IndexKeyHash> map_;
    std::unordered_map<
        IndexKey,
        std::shared_future<std::shared_ptr<const seed::SeedIndex>>,
        IndexKeyHash>
        inflight_;
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
    std::uint64_t evictions_ = 0;
};

}  // namespace darwin::index

#endif  // DARWIN_INDEX_INDEX_CACHE_H
