#include "index/fsck.h"

#include <cctype>
#include <cstring>
#include <filesystem>
#include <fstream>

#include "fault/cancel.h"
#include "index/format.h"
#include "index/index_io.h"
#include "seq/packed_io.h"
#include "util/logging.h"
#include "util/strings.h"

namespace darwin::index {

namespace {

/** Non-escaping `"key":"value"` scan — exact for the journal format,
 *  whose writer quotes only names validated to exclude specials. */
std::string
json_field(const std::string& line, const std::string& key)
{
    const std::string needle = "\"" + key + "\":\"";
    const auto at = line.find(needle);
    if (at == std::string::npos)
        return "";
    const auto begin = at + needle.size();
    const auto end = line.find('"', begin);
    if (end == std::string::npos)
        return "";
    return line.substr(begin, end - begin);
}

/** Peek the format version from a `.dwi` header without validating. */
std::uint32_t
peek_index_version(const std::string& path)
{
    std::ifstream in(path, std::ios::binary);
    IndexHeader header = {};
    in.read(reinterpret_cast<char*>(&header), sizeof(header));
    if (in.gcount() != sizeof(header))
        return 0;
    return header.version;
}

void
check_index(const std::string& path, std::vector<FsckFinding>* findings)
{
    try {
        if (peek_index_version(path) == kIndexShardedFormatVersion) {
            // The constructor runs full validation: header geometry,
            // directory partition, checksum trailer + digests.
            ShardedIndexReader reader(path);
            for (std::size_t s = 0; s < reader.num_shards(); ++s)
                reader.open_shard(s);
        } else {
            load_index(path);
        }
    } catch (const FatalError& e) {
        findings->push_back({path, "bad-index", e.what()});
    }
}

void
check_packed(const std::string& path, std::vector<FsckFinding>* findings)
{
    try {
        seq::load_packed_genome(path);
    } catch (const FatalError& e) {
        findings->push_back({path, "bad-packed", e.what()});
    }
}

bool
is_hex(const std::string& text)
{
    if (text.empty())
        return false;
    for (const char c : text) {
        if (std::isxdigit(static_cast<unsigned char>(c)) == 0)
            return false;
    }
    return true;
}

void
check_journal(const std::string& path,
              std::vector<FsckFinding>* findings)
{
    std::ifstream in(path);
    if (!in) {
        findings->push_back({path, "bad-journal", "cannot open"});
        return;
    }
    std::string line;
    std::getline(in, line);  // header, already sniffed by the caller
    const std::string config = json_field(line, "config");
    if (!is_hex(config) || config.size() != 16) {
        findings->push_back(
            {path, "bad-journal",
             strprintf("header carries a malformed config fingerprint "
                       "'%s'",
                       config.c_str())});
    }
    std::size_t line_no = 1;
    while (std::getline(in, line)) {
        ++line_no;
        if (trim(line).empty())
            continue;
        if (json_field(line, "pair").empty()) {
            findings->push_back(
                {path, "bad-journal",
                 strprintf("line %zu: entry without a pair id",
                           line_no)});
            continue;
        }
        const std::string status = json_field(line, "status");
        if (status != "clean" && status != "degraded" &&
            status != "quarantined") {
            findings->push_back(
                {path, "bad-journal",
                 strprintf("line %zu: unknown status '%s'", line_no,
                           status.c_str())});
            continue;
        }
        // A journaled output must exist: the journal line is written
        // only after the output's rename, so a missing file means the
        // artifact set is torn.
        const std::string output = json_field(line, "output");
        if (!output.empty()) {
            const auto dir =
                std::filesystem::path(path).parent_path();
            std::error_code ec;
            if (!std::filesystem::exists(dir / output, ec)) {
                findings->push_back(
                    {path, "bad-journal",
                     strprintf("line %zu: journaled output '%s' is "
                               "missing",
                               line_no, output.c_str())});
            }
        }
    }
}

bool
is_journal_file(const std::string& path)
{
    std::ifstream in(path);
    if (!in)
        return false;
    std::string line;
    if (!std::getline(in, line))
        return false;
    return json_field(line, "journal") == "darwin-wga-batch";
}

}  // namespace

std::vector<FsckFinding>
fsck_file(const std::string& path, std::string* kind)
{
    fault::poll("index.fsck");
    std::vector<FsckFinding> findings;
    std::string detected = "unknown";

    std::error_code ec;
    if (!std::filesystem::exists(path, ec)) {
        findings.push_back({path, "missing", "no such file"});
        if (kind != nullptr)
            *kind = detected;
        return findings;
    }

    if (is_index_file(path)) {
        detected = "index";
        check_index(path, &findings);
    } else if (seq::is_packed_file(path)) {
        detected = "packed-genome";
        check_packed(path, &findings);
    } else if (is_journal_file(path)) {
        detected = "journal";
        check_journal(path, &findings);
    } else {
        findings.push_back(
            {path, "unknown-type",
             "not a .dwi index, .2bit sidecar, or batch journal"});
    }

    if (kind != nullptr)
        *kind = detected;
    return findings;
}

}  // namespace darwin::index
