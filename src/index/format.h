/**
 * @file
 * On-disk format of a persistent reference index (`.dwi`).
 *
 * A `.dwi` file is the bucketed spaced-seed position table of one target
 * sequence, laid out so a reader can mmap the file and hand the sections
 * to SeedIndex::attach() without copying a byte:
 *
 *     [IndexHeader]            192 bytes, at offset 0
 *     [bucket offsets]         (num_buckets + 1) x u32, 64-byte aligned
 *     [positions]              num_positions x u32,     64-byte aligned
 *     [over-represented bits]  ceil(num_buckets/64) x u64, 64-byte aligned
 *
 * All integers are little-endian (the header carries an endian tag and
 * readers refuse a mismatch rather than byte-swap); all sections start
 * on a 64-byte boundary (cache-line alignment for the zero-copy load)
 * with zero padding between them. The header records the FNV-1a digest
 * and length of the sequence the table was built from, so a loader can
 * verify an index actually belongs to the FASTA it is paired with, and
 * the seed shape + repeat cap, so a cache can key on exactly the inputs
 * that determine the table bytes.
 *
 * Version 2 adds an *optional sharded layout* for bounded-memory
 * loading (seed/sharded_index.h): instead of one global table, the file
 * carries a shard directory plus one (bucket offsets, positions)
 * section pair per band shard, so a reader can map the file once and
 * page in one shard's table at a time:
 *
 *     [IndexHeader]            192 bytes, at offset 0
 *     [over-represented bits]  global, 64-byte aligned
 *     [shard directory]        num_shards x ShardDirEntry, aligned
 *     [shard 0 offsets][shard 0 positions] ... each aligned
 *
 * Monolithic files keep writing version 1 (the layouts are identical,
 * so older readers still load them); sharded files write version 2.
 * Readers here accept both.
 *
 * Versioning policy: `version` bumps on any layout or semantic change;
 * readers accept only versions they were built for (no in-place
 * migration — an index is a cache artifact, cheap to rebuild with
 * `darwin-wga-index build`).
 */
#ifndef DARWIN_INDEX_FORMAT_H
#define DARWIN_INDEX_FORMAT_H

#include <cstdint>
#include <type_traits>

namespace darwin::index {

/** File magic, first 8 bytes ("DWGAIDX" + NUL). */
inline constexpr char kIndexMagic[8] = {'D', 'W', 'G', 'A',
                                        'I', 'D', 'X', '\0'};

/** Version written for monolithic (single-table) files. */
inline constexpr std::uint32_t kIndexFormatVersion = 1;

/** Version written for sharded files (shard directory present). */
inline constexpr std::uint32_t kIndexShardedFormatVersion = 2;

/** Written natively; a reader seeing any other value is on a host with
 *  a different byte order than the writer. */
inline constexpr std::uint32_t kIndexEndianTag = 0x1a2b3c4dU;

/** Every section starts on this alignment. */
inline constexpr std::uint64_t kIndexSectionAlign = 64;

/** Longest representable seed-shape string (NUL-terminated on disk). */
inline constexpr std::uint32_t kIndexMaxPatternLength = 63;

/** Fixed-layout file header. Field offsets are load-bearing. */
struct IndexHeader {
    char magic[8];                   ///< kIndexMagic
    std::uint32_t version;           ///< kIndexFormatVersion
    std::uint32_t endian_tag;        ///< kIndexEndianTag
    std::uint64_t sequence_digest;   ///< fnv1a64 over the target codes
    std::uint64_t sequence_length;   ///< target length in bases
    std::uint32_t max_bucket;        ///< repeat-seed truncation cap
    std::uint32_t pattern_length;    ///< strlen of the seed shape
    std::uint64_t num_buckets;       ///< pattern key space (4^weight)
    std::uint64_t num_positions;     ///< total indexed positions
    std::uint64_t skipped_windows;   ///< windows skipped for N bases
    std::uint64_t truncated_buckets; ///< buckets clamped at max_bucket
    std::uint64_t offsets_offset;    ///< byte offset of bucket offsets
    std::uint64_t positions_offset;  ///< byte offset of positions
    std::uint64_t over_words_offset; ///< byte offset of the bitset
    std::uint64_t total_bytes;       ///< exact file size
    char pattern[kIndexMaxPatternLength + 1];  ///< '1'/'0' seed shape
    // Sharded layout (version >= 2); all zero in version-1 files, which
    // is how the fields stay backward compatible: a v1 header's reserved
    // tail reads as "no shards".
    std::uint64_t shard_bp;          ///< band-start bp per shard (0 = n/a)
    std::uint32_t num_shards;        ///< 0 = monolithic layout
    std::uint32_t reserved32;        ///< zero; future use
    std::uint64_t shard_dir_offset;  ///< byte offset of the directory
};

static_assert(sizeof(IndexHeader) == 192,
              "IndexHeader layout is part of the on-disk format");
static_assert(std::is_trivially_copyable_v<IndexHeader>,
              "IndexHeader must be memcpy-safe");
static_assert(sizeof(IndexHeader) % kIndexSectionAlign == 0,
              "sections start 64-byte aligned right after the header");

/** One shard's directory entry (version >= 2). Band/slice semantics
 *  are exactly seed::ShardPlan's; offsets are absolute file offsets of
 *  the shard's (num_buckets + 1) x u32 bucket-offset array and
 *  num_positions x u32 position array. */
struct ShardDirEntry {
    std::uint64_t band_lo;
    std::uint64_t band_hi;
    std::uint64_t slice_lo;
    std::uint64_t slice_hi;
    std::uint64_t offsets_offset;
    std::uint64_t positions_offset;
    std::uint64_t num_positions;
    std::uint64_t reserved;  ///< zero; future use
};

static_assert(sizeof(ShardDirEntry) == 64,
              "ShardDirEntry layout is part of the on-disk format");
static_assert(std::is_trivially_copyable_v<ShardDirEntry>,
              "ShardDirEntry must be memcpy-safe");

/** Round a byte offset up to the section alignment. */
constexpr std::uint64_t
align_section(std::uint64_t offset)
{
    return (offset + kIndexSectionAlign - 1) & ~(kIndexSectionAlign - 1);
}

/** Magic of the checksum trailer ("DWCSUM" + 2 NULs). */
inline constexpr char kIndexChecksumMagic[8] = {'D', 'W', 'C', 'S',
                                                'U', 'M', '\0', '\0'};

inline constexpr std::uint32_t kIndexChecksumVersion = 1;

/**
 * Crash-safety checksums, appended after the last section (so legacy
 * files — whose total_bytes equals the end of their sections — stay
 * loadable unchanged):
 *
 *     [sections ...]
 *     [digest array]     num_digests x u64 (fnv1a64), 64-byte aligned
 *     [ChecksumTrailer]  last 64 bytes of the file
 *
 * The digest array covers each section's *content* bytes in layout
 * order — monolithic: bucket offsets, positions, over-words; sharded:
 * over-words, shard directory, then (offsets, positions) per shard —
 * and header_digest covers the 192 header bytes as written. Readers
 * find the trailer at total_bytes - 64; a file whose total_bytes is
 * exactly its sections' end simply has no checksums (legacy), which
 * keeps versions 1 and 2 readable by older builds that ignore the
 * tail.
 */
struct ChecksumTrailer {
    char magic[8];                 ///< kIndexChecksumMagic
    std::uint32_t version;         ///< kIndexChecksumVersion
    std::uint32_t num_digests;     ///< entries in the digest array
    std::uint64_t digests_offset;  ///< absolute offset of the array
    std::uint64_t header_digest;   ///< fnv1a64 over the header bytes
    char reserved[32];             ///< zero; future use
};

static_assert(sizeof(ChecksumTrailer) == 64,
              "ChecksumTrailer layout is part of the on-disk format");
static_assert(std::is_trivially_copyable_v<ChecksumTrailer>,
              "ChecksumTrailer must be memcpy-safe");

}  // namespace darwin::index

#endif  // DARWIN_INDEX_FORMAT_H
