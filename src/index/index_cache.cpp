#include "index/index_cache.h"

#include "fault/cancel.h"
#include "obs/metrics.h"
#include "util/logging.h"
#include "util/strings.h"

namespace darwin::index {

std::size_t
IndexKeyHash::operator()(const IndexKey& key) const
{
    std::uint64_t hash = key.digest;
    hash = fnv1a64(key.pattern, hash);
    hash ^= key.max_bucket;
    hash *= 0x100000001b3ULL;
    return static_cast<std::size_t>(hash);
}

IndexCache::IndexCache(std::size_t capacity, obs::MetricsRegistry* metrics,
                       std::string metric_prefix)
    : capacity_(capacity), metrics_(metrics),
      prefix_(std::move(metric_prefix))
{
    require(capacity_ > 0, "IndexCache: capacity must be positive");
}

std::shared_ptr<const seed::SeedIndex>
IndexCache::acquire(const IndexKey& key, const Builder& builder,
                    bool* built)
{
    std::shared_future<std::shared_ptr<const seed::SeedIndex>> future;
    std::promise<std::shared_ptr<const seed::SeedIndex>> promise;
    bool builder_here = false;
    {
        std::lock_guard lock(mutex_);
        if (const auto it = map_.find(key); it != map_.end()) {
            touch_locked(it->second);
            ++hits_;
            if (metrics_ != nullptr)
                metrics_->counter(prefix_ + ".cache_hits").add(1);
            if (built != nullptr)
                *built = false;
            return it->second->index;
        }
        if (const auto fl = inflight_.find(key); fl != inflight_.end()) {
            future = fl->second;
        } else {
            future = promise.get_future().share();
            inflight_.emplace(key, future);
            builder_here = true;
        }
        ++misses_;
        if (metrics_ != nullptr)
            metrics_->counter(prefix_ + ".cache_misses").add(1);
    }

    if (built != nullptr)
        *built = true;
    if (!builder_here)
        return future.get();  // rethrows the builder's exception, if any

    std::shared_ptr<const seed::SeedIndex> index;
    try {
        fault::poll("index.cache_load");
        index = builder();
        if (index == nullptr)
            panic("IndexCache: builder returned null");
    } catch (...) {
        {
            std::lock_guard lock(mutex_);
            inflight_.erase(key);
        }
        promise.set_exception(std::current_exception());
        throw;
    }
    {
        std::lock_guard lock(mutex_);
        inflight_.erase(key);
        insert_locked(key, index);
    }
    promise.set_value(index);
    return index;
}

bool
IndexCache::contains(const IndexKey& key) const
{
    std::lock_guard lock(mutex_);
    return map_.contains(key);
}

std::size_t
IndexCache::size() const
{
    std::lock_guard lock(mutex_);
    return lru_.size();
}

void
IndexCache::clear()
{
    std::lock_guard lock(mutex_);
    lru_.clear();
    map_.clear();
    if (metrics_ != nullptr)
        metrics_->gauge(prefix_ + ".cache_size").set(0);
}

std::uint64_t
IndexCache::hits() const
{
    std::lock_guard lock(mutex_);
    return hits_;
}

std::uint64_t
IndexCache::misses() const
{
    std::lock_guard lock(mutex_);
    return misses_;
}

std::uint64_t
IndexCache::evictions() const
{
    std::lock_guard lock(mutex_);
    return evictions_;
}

void
IndexCache::touch_locked(LruList::iterator it)
{
    lru_.splice(lru_.begin(), lru_, it);
}

void
IndexCache::insert_locked(const IndexKey& key,
                          std::shared_ptr<const seed::SeedIndex> index)
{
    // A racing acquire can't have inserted (single-flight), but be
    // defensive about double insertion all the same.
    if (map_.contains(key))
        return;
    while (lru_.size() >= capacity_) {
        map_.erase(lru_.back().key);
        lru_.pop_back();
        ++evictions_;
        if (metrics_ != nullptr)
            metrics_->counter(prefix_ + ".cache_evictions").add(1);
    }
    lru_.push_front(Entry{key, std::move(index)});
    map_[key] = lru_.begin();
    if (metrics_ != nullptr)
        metrics_->gauge(prefix_ + ".cache_size")
            .set(static_cast<std::int64_t>(lru_.size()));
}

}  // namespace darwin::index
