/**
 * @file
 * A small command-line argument parser used by the examples and bench
 * binaries. Supports --name=value, --name value, and boolean --flag forms,
 * typed accessors with defaults, and automatic --help text.
 */
#ifndef DARWIN_UTIL_ARGS_H
#define DARWIN_UTIL_ARGS_H

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace darwin {

/** Declarative option set plus parsed values. */
class ArgParser {
  public:
    /** @param description One-line program description for --help. */
    explicit ArgParser(std::string description);

    /** Register an option with a default value and help text. */
    void add_option(const std::string& name, const std::string& default_value,
                    const std::string& help);

    /** Register a boolean flag (default false). */
    void add_flag(const std::string& name, const std::string& help);

    /**
     * Parse argv. Returns false (after printing usage) if --help was given
     * or an unknown/malformed option was seen.
     */
    bool parse(int argc, const char* const* argv);

    /** Typed accessors; fall back to the registered default. */
    std::string get(const std::string& name) const;
    std::int64_t get_int(const std::string& name) const;
    double get_double(const std::string& name) const;
    bool get_flag(const std::string& name) const;

    /** Positional (non-option) arguments in order. */
    const std::vector<std::string>& positional() const { return positional_; }

    /** Render the usage/help text. */
    std::string usage(const std::string& program) const;

  private:
    struct Option {
        std::string default_value;
        std::string help;
        bool is_flag = false;
    };

    std::string description_;
    std::vector<std::string> order_;
    std::map<std::string, Option> options_;
    std::map<std::string, std::string> values_;
    std::vector<std::string> positional_;
};

}  // namespace darwin

#endif  // DARWIN_UTIL_ARGS_H
