/**
 * @file
 * Wall-clock timing helpers used by the pipelines and bench harnesses.
 */
#ifndef DARWIN_UTIL_TIMER_H
#define DARWIN_UTIL_TIMER_H

#include <chrono>

namespace darwin {

/** Monotonic stopwatch; starts on construction. */
class Timer {
  public:
    Timer() : start_(Clock::now()) {}

    /** Restart the stopwatch. */
    void reset() { start_ = Clock::now(); }

    /** Elapsed seconds since construction or the last reset(). */
    double
    seconds() const
    {
        const auto dt = Clock::now() - start_;
        return std::chrono::duration<double>(dt).count();
    }

    /** Elapsed milliseconds. */
    double milliseconds() const { return seconds() * 1e3; }

  private:
    using Clock = std::chrono::steady_clock;
    Clock::time_point start_;
};

}  // namespace darwin

#endif  // DARWIN_UTIL_TIMER_H
