/**
 * @file
 * Small string helpers shared across modules (formatting, splitting,
 * human-readable numbers for bench output).
 */
#ifndef DARWIN_UTIL_STRINGS_H
#define DARWIN_UTIL_STRINGS_H

#include <cstdint>
#include <string>
#include <vector>

namespace darwin {

/** Split on a delimiter; empty fields are preserved. */
std::vector<std::string> split(const std::string& text, char delim);

/** Join items with a separator. */
std::string join(const std::vector<std::string>& items,
                 const std::string& sep);

/** Trim ASCII whitespace from both ends. */
std::string trim(const std::string& text);

/** True if text begins with the given prefix. */
bool starts_with(const std::string& text, const std::string& prefix);

/** Format a count with thousands separators, e.g. 1,234,567. */
std::string with_commas(std::uint64_t value);

/** Format a double with fixed precision. */
std::string fixed(double value, int precision);

/** Format e.g. 1234567 as "1.23M" (SI suffixes, 3 significant figures). */
std::string si_magnitude(double value);

/** Printf-style formatting into a std::string. */
std::string strprintf(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * Quote text as a JSON string literal: wraps in double quotes and
 * escapes quotes, backslashes, and control characters. Shared by the
 * trace writer, the JSON log sink, and the metrics dump.
 */
std::string json_quote(const std::string& text);

/**
 * FNV-1a 64-bit hash. Stable across platforms and runs — used for the
 * checkpoint journal's config fingerprint and the fault plan's
 * deterministic probability draws, so never change the constants.
 */
std::uint64_t fnv1a64(const std::string& text);
std::uint64_t fnv1a64(const std::string& text, std::uint64_t seed);

}  // namespace darwin

#endif  // DARWIN_UTIL_STRINGS_H
