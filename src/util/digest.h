/**
 * @file
 * Stable content digests shared across modules.
 *
 * One FNV-1a 64-bit implementation serves every fingerprint in the
 * system: the checkpoint journal's config fingerprint, the fault plan's
 * deterministic draws (both via the string overloads in strings.h), and
 * the persistent reference index's sequence digest (the raw-byte
 * overload here). The constants are load-bearing — digests are compared
 * across processes and against bytes persisted in index files, so never
 * change them.
 */
#ifndef DARWIN_UTIL_DIGEST_H
#define DARWIN_UTIL_DIGEST_H

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>

namespace darwin {

/** FNV-1a offset basis; the seed of every digest in the system. */
inline constexpr std::uint64_t kFnv1aBasis = 0xcbf29ce484222325ULL;

/** FNV-1a 64-bit over raw bytes (the string overloads live in
 *  strings.h and produce identical values for identical bytes). */
std::uint64_t fnv1a64_bytes(std::span<const std::uint8_t> bytes,
                            std::uint64_t seed = kFnv1aBasis);

/** Render a 64-bit digest as 16 lowercase hex digits. */
std::string digest_hex(std::uint64_t digest);

/**
 * Canonical-string fingerprint: fnv1a64 of `canonical` rendered as 16
 * hex digits. Hoisted out of batch/checkpoint.cpp so the checkpoint
 * journal and the index header share one implementation.
 */
std::string fingerprint_hex(const std::string& canonical);

}  // namespace darwin

#endif  // DARWIN_UTIL_DIGEST_H
