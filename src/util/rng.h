/**
 * @file
 * Deterministic random number generation.
 *
 * Everything stochastic in this library (synthetic genome generation,
 * mutation processes, shuffles, test sweeps) draws from Rng so that every
 * experiment is exactly reproducible from a 64-bit seed. The core generator
 * is xoshiro256**, seeded through splitmix64.
 */
#ifndef DARWIN_UTIL_RNG_H
#define DARWIN_UTIL_RNG_H

#include <cstdint>
#include <vector>

namespace darwin {

/** xoshiro256** pseudo-random generator with distribution helpers. */
class Rng {
  public:
    using result_type = std::uint64_t;

    /** Construct from a 64-bit seed (expanded via splitmix64). */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

    /** Raw 64 uniform random bits. */
    std::uint64_t next();

    /** UniformRandomBitGenerator interface for <random> interop. */
    result_type operator()() { return next(); }
    static constexpr result_type min() { return 0; }
    static constexpr result_type max() { return ~0ULL; }

    /** Uniform integer in [0, bound). bound must be > 0. */
    std::uint64_t uniform(std::uint64_t bound);

    /** Uniform integer in [lo, hi] inclusive. */
    std::int64_t uniform_range(std::int64_t lo, std::int64_t hi);

    /** Uniform double in [0, 1). */
    double uniform_double();

    /** Bernoulli trial with success probability p. */
    bool chance(double p);

    /**
     * Geometric draw: number of failures before the first success for
     * success probability p in (0, 1]. Used for indel length - 1.
     */
    std::uint64_t geometric(double p);

    /**
     * Draw an index according to non-negative weights. At least one weight
     * must be positive.
     */
    std::size_t weighted_pick(const std::vector<double>& weights);

    /** Zipf-like heavy-tailed draw in [1, max_value]: P(k) ~ 1/k^alpha. */
    std::uint64_t zipf(double alpha, std::uint64_t max_value);

    /** Fork a statistically-independent child stream (splitmix of state). */
    Rng fork();

  private:
    std::uint64_t state_[4];
};

}  // namespace darwin

#endif  // DARWIN_UTIL_RNG_H
