/**
 * @file
 * Fixed-size thread pool used by the WGA pipelines.
 *
 * The filtering and extension stages process millions of independent tiles;
 * ThreadPool::parallel_for partitions such index ranges across workers.
 */
#ifndef DARWIN_UTIL_THREAD_POOL_H
#define DARWIN_UTIL_THREAD_POOL_H

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace darwin {

/** A minimal work-queue thread pool. */
class ThreadPool {
  public:
    /**
     * @param num_threads Worker count; 0 means hardware_concurrency().
     */
    explicit ThreadPool(std::size_t num_threads = 0);
    ~ThreadPool();

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    /** Number of worker threads. */
    std::size_t size() const { return workers_.size(); }

    /**
     * Enqueue a task; runs at some point on a worker thread (or on a
     * thread helping inside parallel_for). Tasks must not throw — use
     * parallel_for when exception propagation is needed.
     */
    void submit(std::function<void()> task);

    /** Block until every submitted task has finished. */
    void wait_idle();

    /**
     * Run body(i) for every i in [begin, end) across the pool and wait
     * for *this call's* work only. Work is handed out in contiguous
     * grains to limit queue contention.
     *
     * While waiting, the calling thread helps execute queued tasks, so
     * parallel_for may be nested (an outer parallel_for body may invoke
     * an inner one on the same pool) without deadlock. The first
     * exception thrown by `body` is rethrown on the calling thread after
     * the remaining grains finish.
     */
    void parallel_for(std::size_t begin, std::size_t end,
                      const std::function<void(std::size_t)>& body,
                      std::size_t grain = 0);

  private:
    void worker_loop();

    /** Pop and run one queued task; false if the queue was empty. */
    bool run_one_task();

    std::vector<std::thread> workers_;
    std::queue<std::function<void()>> tasks_;
    std::mutex mutex_;
    std::condition_variable task_ready_;
    std::condition_variable idle_;
    std::size_t in_flight_ = 0;
    bool stopping_ = false;
};

}  // namespace darwin

#endif  // DARWIN_UTIL_THREAD_POOL_H
