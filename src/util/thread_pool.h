/**
 * @file
 * Fixed-size thread pool used by the WGA pipelines.
 *
 * The filtering and extension stages process millions of independent tiles;
 * ThreadPool::parallel_for partitions such index ranges across workers.
 */
#ifndef DARWIN_UTIL_THREAD_POOL_H
#define DARWIN_UTIL_THREAD_POOL_H

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace darwin {

/** A minimal work-queue thread pool. */
class ThreadPool {
  public:
    /**
     * @param num_threads Worker count; 0 means hardware_concurrency().
     */
    explicit ThreadPool(std::size_t num_threads = 0);
    ~ThreadPool();

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    /** Number of worker threads. */
    std::size_t size() const { return workers_.size(); }

    /** Enqueue a task; runs at some point on a worker thread. */
    void submit(std::function<void()> task);

    /** Block until every submitted task has finished. */
    void wait_idle();

    /**
     * Run body(i) for every i in [begin, end) across the pool and wait.
     * Work is handed out in contiguous grains to limit queue contention.
     */
    void parallel_for(std::size_t begin, std::size_t end,
                      const std::function<void(std::size_t)>& body,
                      std::size_t grain = 0);

  private:
    void worker_loop();

    std::vector<std::thread> workers_;
    std::queue<std::function<void()>> tasks_;
    std::mutex mutex_;
    std::condition_variable task_ready_;
    std::condition_variable idle_;
    std::size_t in_flight_ = 0;
    bool stopping_ = false;
};

}  // namespace darwin

#endif  // DARWIN_UTIL_THREAD_POOL_H
