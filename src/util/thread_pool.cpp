#include "util/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <exception>
#include <memory>

namespace darwin {

ThreadPool::ThreadPool(std::size_t num_threads)
{
    if (num_threads == 0) {
        num_threads = std::max(1u, std::thread::hardware_concurrency());
    }
    workers_.reserve(num_threads);
    for (std::size_t i = 0; i < num_threads; ++i)
        workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stopping_ = true;
    }
    task_ready_.notify_all();
    for (auto& worker : workers_)
        worker.join();
}

void
ThreadPool::submit(std::function<void()> task)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        tasks_.push(std::move(task));
        ++in_flight_;
    }
    task_ready_.notify_one();
}

void
ThreadPool::wait_idle()
{
    std::unique_lock<std::mutex> lock(mutex_);
    idle_.wait(lock, [this] { return in_flight_ == 0; });
}

namespace {

/** Completion state of one parallel_for call (not the whole pool). */
struct ForState {
    std::mutex mutex;
    std::condition_variable done;
    std::size_t remaining = 0;
    std::exception_ptr error;
};

}  // namespace

void
ThreadPool::parallel_for(std::size_t begin, std::size_t end,
                         const std::function<void(std::size_t)>& body,
                         std::size_t grain)
{
    if (begin >= end)
        return;
    const std::size_t n = end - begin;
    if (grain == 0)
        grain = std::max<std::size_t>(1, n / (size() * 8));

    const auto state = std::make_shared<ForState>();
    state->remaining = (n + grain - 1) / grain;
    for (std::size_t chunk = begin; chunk < end; chunk += grain) {
        const std::size_t chunk_end = std::min(end, chunk + grain);
        submit([chunk, chunk_end, &body, state] {
            try {
                for (std::size_t i = chunk; i < chunk_end; ++i)
                    body(i);
            } catch (...) {
                std::lock_guard<std::mutex> lock(state->mutex);
                if (!state->error)
                    state->error = std::current_exception();
            }
            bool last = false;
            {
                std::lock_guard<std::mutex> lock(state->mutex);
                last = --state->remaining == 0;
            }
            if (last)
                state->done.notify_all();
        });
    }

    // Wait for *this call's* grains, helping with queued work meanwhile.
    // Helping is what makes nested parallel_for safe: a pool thread that
    // issues an inner parallel_for keeps draining the shared queue
    // instead of blocking on a completion that needs its own cycles.
    for (;;) {
        {
            std::unique_lock<std::mutex> lock(state->mutex);
            if (state->remaining == 0)
                break;
        }
        if (!run_one_task()) {
            // Queue empty: every outstanding grain is already running on
            // some thread; sleep until the last one reports in.
            std::unique_lock<std::mutex> lock(state->mutex);
            state->done.wait(lock,
                             [&] { return state->remaining == 0; });
            break;
        }
    }
    if (state->error)
        std::rethrow_exception(state->error);
}

bool
ThreadPool::run_one_task()
{
    std::function<void()> task;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (tasks_.empty())
            return false;
        task = std::move(tasks_.front());
        tasks_.pop();
    }
    task();
    {
        std::lock_guard<std::mutex> lock(mutex_);
        --in_flight_;
        if (in_flight_ == 0)
            idle_.notify_all();
    }
    return true;
}

void
ThreadPool::worker_loop()
{
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            task_ready_.wait(lock,
                             [this] { return stopping_ || !tasks_.empty(); });
            if (tasks_.empty()) {
                // stopping_ must be set; drain is complete.
                return;
            }
            task = std::move(tasks_.front());
            tasks_.pop();
        }
        task();
        {
            std::lock_guard<std::mutex> lock(mutex_);
            --in_flight_;
            if (in_flight_ == 0)
                idle_.notify_all();
        }
    }
}

}  // namespace darwin
