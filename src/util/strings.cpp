#include "util/strings.h"

#include <cctype>
#include <cmath>
#include <cstdarg>
#include <cstdio>
#include <sstream>

namespace darwin {

std::vector<std::string>
split(const std::string& text, char delim)
{
    std::vector<std::string> fields;
    std::string field;
    std::istringstream in(text);
    while (std::getline(in, field, delim))
        fields.push_back(field);
    if (!text.empty() && text.back() == delim)
        fields.push_back("");
    if (text.empty())
        fields.push_back("");
    return fields;
}

std::string
join(const std::vector<std::string>& items, const std::string& sep)
{
    std::string out;
    for (std::size_t i = 0; i < items.size(); ++i) {
        if (i > 0)
            out += sep;
        out += items[i];
    }
    return out;
}

std::string
trim(const std::string& text)
{
    std::size_t first = 0;
    std::size_t last = text.size();
    while (first < last &&
           std::isspace(static_cast<unsigned char>(text[first])))
        ++first;
    while (last > first &&
           std::isspace(static_cast<unsigned char>(text[last - 1])))
        --last;
    return text.substr(first, last - first);
}

bool
starts_with(const std::string& text, const std::string& prefix)
{
    return text.size() >= prefix.size() &&
           text.compare(0, prefix.size(), prefix) == 0;
}

std::string
with_commas(std::uint64_t value)
{
    std::string digits = std::to_string(value);
    std::string out;
    out.reserve(digits.size() + digits.size() / 3);
    int count = 0;
    for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
        if (count > 0 && count % 3 == 0)
            out.push_back(',');
        out.push_back(*it);
        ++count;
    }
    return std::string(out.rbegin(), out.rend());
}

std::string
fixed(double value, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
    return buf;
}

std::string
si_magnitude(double value)
{
    static const char* suffixes[] = {"", "K", "M", "G", "T"};
    int idx = 0;
    double v = std::fabs(value);
    while (v >= 1000.0 && idx < 4) {
        v /= 1000.0;
        ++idx;
    }
    const double scaled = (value < 0 ? -v : v);
    char buf[64];
    if (idx == 0 && std::floor(scaled) == scaled) {
        std::snprintf(buf, sizeof(buf), "%.0f", scaled);
    } else {
        std::snprintf(buf, sizeof(buf), "%.2f%s", scaled, suffixes[idx]);
    }
    return buf;
}

std::string
json_quote(const std::string& text)
{
    std::string out;
    out.reserve(text.size() + 2);
    out.push_back('"');
    for (const char c : text) {
        switch (c) {
          case '"':  out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          case '\r': out += "\\r"; break;
          case '\b': out += "\\b"; break;
          case '\f': out += "\\f"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(c));
                out += buf;
            } else {
                out.push_back(c);
            }
        }
    }
    out.push_back('"');
    return out;
}

std::uint64_t
fnv1a64(const std::string& text, std::uint64_t seed)
{
    std::uint64_t hash = seed;
    for (const char c : text) {
        hash ^= static_cast<unsigned char>(c);
        hash *= 0x100000001b3ULL;
    }
    return hash;
}

std::uint64_t
fnv1a64(const std::string& text)
{
    return fnv1a64(text, 0xcbf29ce484222325ULL);
}

std::string
strprintf(const char* fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    va_list args_copy;
    va_copy(args_copy, args);
    const int needed = std::vsnprintf(nullptr, 0, fmt, args);
    va_end(args);
    std::string out(needed > 0 ? needed : 0, '\0');
    if (needed > 0)
        std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
    va_end(args_copy);
    return out;
}

}  // namespace darwin
