/**
 * @file
 * Descriptive statistics and histograms used by the evaluation module and
 * the bench harnesses (e.g. the ungapped block-size distribution of Fig. 2).
 */
#ifndef DARWIN_UTIL_STATS_H
#define DARWIN_UTIL_STATS_H

#include <cstdint>
#include <string>
#include <vector>

namespace darwin {

/** Streaming accumulator for count/mean/min/max/variance. */
class RunningStats {
  public:
    void add(double x);

    std::uint64_t count() const { return count_; }
    double mean() const;
    double variance() const;
    double stddev() const;
    double min() const;
    double max() const;
    double sum() const { return sum_; }

  private:
    std::uint64_t count_ = 0;
    double sum_ = 0.0;
    double sum_sq_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/**
 * Histogram with logarithmic (base-2) bins over [1, 2^max_bin). Matches the
 * log-scale X axis of the paper's Figure 2.
 */
class LogHistogram {
  public:
    explicit LogHistogram(int num_bins = 24);

    void add(std::uint64_t value);

    int num_bins() const { return static_cast<int>(bins_.size()); }
    std::uint64_t bin_count(int bin) const { return bins_.at(bin); }
    std::uint64_t total() const { return total_; }

    /** Lower edge of a bin (1, 2, 4, ...). */
    std::uint64_t bin_low(int bin) const;

    /** Fraction of mass at values strictly below the threshold. */
    double fraction_below(std::uint64_t threshold) const;

    /** Render an ASCII plot (one row per non-empty bin). */
    std::string render(int width = 50) const;

  private:
    std::vector<std::uint64_t> bins_;
    std::vector<std::uint64_t> raw_;  // retained for exact quantiles
    std::uint64_t total_ = 0;
};

/** Exact percentile of a copy of the data (p in [0,100]). */
double percentile(std::vector<double> values, double p);

}  // namespace darwin

#endif  // DARWIN_UTIL_STATS_H
