#include "util/logging.h"

#include <atomic>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <fstream>
#include <mutex>
#include <utility>

#include "util/strings.h"

namespace darwin {

namespace {

std::atomic<LogLevel> g_level{LogLevel::Info};

/** Added sinks (beyond the default stderr text sink). */
std::mutex g_sinks_mutex;
std::vector<std::shared_ptr<LogSink>> g_sinks;

/** Serializes the default stderr sink's writes. */
std::mutex g_stderr_mutex;

/** Format "HH:MM:SS.mmm" (UTC) plus optionally a full ISO-8601 date. */
std::string
format_time(std::chrono::system_clock::time_point when, bool full_iso)
{
    const auto since_epoch = when.time_since_epoch();
    const auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                        since_epoch)
                        .count() %
                    1000;
    const std::time_t secs = std::chrono::system_clock::to_time_t(when);
    std::tm tm_utc{};
    gmtime_r(&secs, &tm_utc);
    char buf[40];
    if (full_iso) {
        std::strftime(buf, sizeof(buf), "%Y-%m-%dT%H:%M:%S", &tm_utc);
        return strprintf("%s.%03dZ", buf, static_cast<int>(ms));
    }
    std::strftime(buf, sizeof(buf), "%H:%M:%S", &tm_utc);
    return strprintf("%s.%03d", buf, static_cast<int>(ms));
}

}  // namespace

void
StderrTextSink::write(const LogRecord& record)
{
    std::string line = strprintf(
        "[%s %s T%u] %s", format_time(record.time, false).c_str(),
        log_level_name(record.level), record.thread_index,
        record.message.c_str());
    for (const LogField& field : record.fields)
        line += strprintf(" %s=%s", field.key.c_str(), field.value.c_str());
    std::lock_guard<std::mutex> lock(g_stderr_mutex);
    std::fprintf(stderr, "%s\n", line.c_str());
}

struct JsonLinesSink::Impl {
    std::mutex mutex;
    std::ofstream out;
};

JsonLinesSink::JsonLinesSink(const std::string& path)
    : impl_(std::make_unique<Impl>())
{
    impl_->out.open(path, std::ios::app);
    if (!impl_->out)
        throw FatalError("logging: cannot open JSON log file " + path);
}

JsonLinesSink::~JsonLinesSink() = default;

void
JsonLinesSink::write(const LogRecord& record)
{
    std::string line = strprintf(
        "{\"ts\": %s, \"level\": \"%s\", \"tid\": %u, \"msg\": %s",
        json_quote(format_time(record.time, true)).c_str(),
        log_level_name(record.level), record.thread_index,
        json_quote(record.message).c_str());
    if (!record.fields.empty()) {
        line += ", \"fields\": {";
        for (std::size_t i = 0; i < record.fields.size(); ++i) {
            line += (i == 0 ? "" : ", ");
            line += json_quote(record.fields[i].key);
            line += ": ";
            line += json_quote(record.fields[i].value);
        }
        line += "}";
    }
    line += "}";
    std::lock_guard<std::mutex> lock(impl_->mutex);
    impl_->out << line << '\n';
    impl_->out.flush();
}

void
set_log_level(LogLevel level)
{
    g_level.store(level, std::memory_order_relaxed);
}

LogLevel
log_level()
{
    return g_level.load(std::memory_order_relaxed);
}

std::optional<LogLevel>
parse_log_level(const std::string& text)
{
    std::string lower;
    lower.reserve(text.size());
    for (const char c : text)
        lower.push_back(static_cast<char>(
            std::tolower(static_cast<unsigned char>(c))));
    if (lower == "debug")
        return LogLevel::Debug;
    if (lower == "info")
        return LogLevel::Info;
    if (lower == "warn" || lower == "warning")
        return LogLevel::Warn;
    if (lower == "error")
        return LogLevel::Error;
    return std::nullopt;
}

const char*
log_level_name(LogLevel level)
{
    switch (level) {
      case LogLevel::Debug: return "debug";
      case LogLevel::Info:  return "info";
      case LogLevel::Warn:  return "warn";
      case LogLevel::Error: return "error";
    }
    return "?";
}

void
init_log_level_from_env()
{
    const char* value = std::getenv("DARWIN_LOG");
    if (value == nullptr || *value == '\0')
        return;
    if (const auto level = parse_log_level(value)) {
        set_log_level(*level);
    } else {
        warn(strprintf("DARWIN_LOG=%s is not a log level "
                       "(debug|info|warn|error); keeping %s",
                       value, log_level_name(log_level())));
    }
}

void
add_log_sink(std::shared_ptr<LogSink> sink)
{
    std::lock_guard<std::mutex> lock(g_sinks_mutex);
    g_sinks.push_back(std::move(sink));
}

void
clear_log_sinks()
{
    std::lock_guard<std::mutex> lock(g_sinks_mutex);
    g_sinks.clear();
}

std::uint32_t
current_thread_index()
{
    static std::atomic<std::uint32_t> next{0};
    thread_local const std::uint32_t index =
        next.fetch_add(1, std::memory_order_relaxed);
    return index;
}

void
log_message(LogLevel level, const std::string& msg,
            std::vector<LogField> fields)
{
    if (static_cast<int>(level) < static_cast<int>(log_level()))
        return;
    LogRecord record;
    record.level = level;
    record.time = std::chrono::system_clock::now();
    record.thread_index = current_thread_index();
    record.message = msg;
    record.fields = std::move(fields);

    static StderrTextSink stderr_sink;
    stderr_sink.write(record);
    std::vector<std::shared_ptr<LogSink>> sinks;
    {
        std::lock_guard<std::mutex> lock(g_sinks_mutex);
        sinks = g_sinks;
    }
    for (const auto& sink : sinks)
        sink->write(record);
}

void
inform(const std::string& msg)
{
    log_message(LogLevel::Info, msg);
}

void
inform(const std::string& msg, std::vector<LogField> fields)
{
    log_message(LogLevel::Info, msg, std::move(fields));
}

void
warn(const std::string& msg)
{
    log_message(LogLevel::Warn, msg);
}

void
warn(const std::string& msg, std::vector<LogField> fields)
{
    log_message(LogLevel::Warn, msg, std::move(fields));
}

void
debug(const std::string& msg)
{
    log_message(LogLevel::Debug, msg);
}

void
debug(const std::string& msg, std::vector<LogField> fields)
{
    log_message(LogLevel::Debug, msg, std::move(fields));
}

void
fatal(const std::string& msg)
{
    log_message(LogLevel::Error, "fatal: " + msg);
    throw FatalError(msg);
}

void
panic(const std::string& msg)
{
    log_message(LogLevel::Error, "panic: " + msg);
    std::abort();
}

}  // namespace darwin
