#include "util/logging.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <mutex>

namespace darwin {

namespace {

std::atomic<LogLevel> g_level{LogLevel::Info};
std::mutex g_mutex;

const char*
level_tag(LogLevel level)
{
    switch (level) {
      case LogLevel::Debug: return "debug";
      case LogLevel::Info:  return "info";
      case LogLevel::Warn:  return "warn";
      case LogLevel::Error: return "error";
    }
    return "?";
}

}  // namespace

void
set_log_level(LogLevel level)
{
    g_level.store(level, std::memory_order_relaxed);
}

LogLevel
log_level()
{
    return g_level.load(std::memory_order_relaxed);
}

void
log_message(LogLevel level, const std::string& msg)
{
    if (static_cast<int>(level) < static_cast<int>(log_level()))
        return;
    std::lock_guard<std::mutex> lock(g_mutex);
    std::fprintf(stderr, "[%s] %s\n", level_tag(level), msg.c_str());
}

void
inform(const std::string& msg)
{
    log_message(LogLevel::Info, msg);
}

void
warn(const std::string& msg)
{
    log_message(LogLevel::Warn, msg);
}

void
debug(const std::string& msg)
{
    log_message(LogLevel::Debug, msg);
}

void
fatal(const std::string& msg)
{
    log_message(LogLevel::Error, "fatal: " + msg);
    throw FatalError(msg);
}

void
panic(const std::string& msg)
{
    log_message(LogLevel::Error, "panic: " + msg);
    std::abort();
}

}  // namespace darwin
