/**
 * @file
 * Bounded multi-producer multi-consumer work queue with backpressure and
 * shutdown semantics. The batch-alignment engine places one of these
 * between every pair of pipeline stages so that a fast upstream stage
 * blocks (instead of ballooning memory) when a slow downstream stage
 * falls behind.
 *
 * Shutdown model: close() stops further pushes but lets consumers drain
 * every item that was accepted before the close; pop() returns nullopt
 * only once the queue is both closed and empty.
 */
#ifndef DARWIN_UTIL_WORK_QUEUE_H
#define DARWIN_UTIL_WORK_QUEUE_H

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

namespace darwin {

/** A bounded FIFO channel between pipeline stages. */
template <typename T>
class WorkQueue {
  public:
    /** @param capacity Maximum queued items; 0 is promoted to 1. */
    explicit WorkQueue(std::size_t capacity)
        : capacity_(capacity == 0 ? 1 : capacity)
    {
    }

    WorkQueue(const WorkQueue&) = delete;
    WorkQueue& operator=(const WorkQueue&) = delete;

    /**
     * Enqueue an item, blocking while the queue is full (backpressure).
     * Returns false — without enqueueing — if the queue was closed
     * before space became available.
     */
    bool
    push(T item)
    {
        std::unique_lock<std::mutex> lock(mutex_);
        not_full_.wait(lock, [this] {
            return closed_ || items_.size() < capacity_;
        });
        if (closed_)
            return false;
        items_.push_back(std::move(item));
        lock.unlock();
        not_empty_.notify_one();
        return true;
    }

    /**
     * Non-blocking push. On success the item is moved into the queue;
     * on failure (full or closed) `item` is left untouched.
     */
    bool
    try_push(T& item)
    {
        {
            std::lock_guard<std::mutex> lock(mutex_);
            if (closed_ || items_.size() >= capacity_)
                return false;
            items_.push_back(std::move(item));
        }
        not_empty_.notify_one();
        return true;
    }

    /**
     * Dequeue an item, blocking while the queue is empty. Returns
     * nullopt once the queue is closed *and* fully drained.
     */
    std::optional<T>
    pop()
    {
        std::unique_lock<std::mutex> lock(mutex_);
        not_empty_.wait(lock, [this] { return closed_ || !items_.empty(); });
        if (items_.empty())
            return std::nullopt;
        std::optional<T> item(std::move(items_.front()));
        items_.pop_front();
        lock.unlock();
        not_full_.notify_one();
        return item;
    }

    /** Non-blocking pop; nullopt when nothing is immediately available. */
    std::optional<T>
    try_pop()
    {
        std::optional<T> item;
        {
            std::lock_guard<std::mutex> lock(mutex_);
            if (items_.empty())
                return std::nullopt;
            item.emplace(std::move(items_.front()));
            items_.pop_front();
        }
        not_full_.notify_one();
        return item;
    }

    /**
     * Close the queue: pending pushes fail, future pushes are refused,
     * and consumers drain the remaining items before seeing nullopt.
     */
    void
    close()
    {
        {
            std::lock_guard<std::mutex> lock(mutex_);
            closed_ = true;
        }
        not_full_.notify_all();
        not_empty_.notify_all();
    }

    bool
    closed() const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return closed_;
    }

    std::size_t
    size() const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return items_.size();
    }

    std::size_t capacity() const { return capacity_; }

  private:
    mutable std::mutex mutex_;
    std::condition_variable not_full_;
    std::condition_variable not_empty_;
    std::deque<T> items_;
    const std::size_t capacity_;
    bool closed_ = false;
};

}  // namespace darwin

#endif  // DARWIN_UTIL_WORK_QUEUE_H
