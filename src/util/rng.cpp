#include "util/rng.h"

#include <cmath>

#include "util/logging.h"

namespace darwin {

namespace {

std::uint64_t
splitmix64(std::uint64_t& x)
{
    x += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t sm = seed;
    for (auto& word : state_)
        word = splitmix64(sm);
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
}

std::uint64_t
Rng::uniform(std::uint64_t bound)
{
    require(bound > 0, "Rng::uniform: bound must be positive");
    // Rejection sampling to remove modulo bias.
    const std::uint64_t threshold = -bound % bound;
    for (;;) {
        const std::uint64_t r = next();
        if (r >= threshold)
            return r % bound;
    }
}

std::int64_t
Rng::uniform_range(std::int64_t lo, std::int64_t hi)
{
    require(lo <= hi, "Rng::uniform_range: lo must be <= hi");
    const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(uniform(span));
}

double
Rng::uniform_double()
{
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool
Rng::chance(double p)
{
    if (p <= 0.0)
        return false;
    if (p >= 1.0)
        return true;
    return uniform_double() < p;
}

std::uint64_t
Rng::geometric(double p)
{
    require(p > 0.0 && p <= 1.0, "Rng::geometric: p must be in (0,1]");
    if (p == 1.0)
        return 0;
    double u = uniform_double();
    // Guard against log(0).
    if (u <= 0.0)
        u = 0x1.0p-53;
    return static_cast<std::uint64_t>(std::log(u) / std::log1p(-p));
}

std::size_t
Rng::weighted_pick(const std::vector<double>& weights)
{
    double total = 0.0;
    for (double w : weights) {
        require(w >= 0.0, "Rng::weighted_pick: negative weight");
        total += w;
    }
    require(total > 0.0, "Rng::weighted_pick: all weights zero");
    double r = uniform_double() * total;
    for (std::size_t i = 0; i < weights.size(); ++i) {
        r -= weights[i];
        if (r < 0.0)
            return i;
    }
    return weights.size() - 1;
}

std::uint64_t
Rng::zipf(double alpha, std::uint64_t max_value)
{
    require(max_value >= 1, "Rng::zipf: max_value must be >= 1");
    // Inverse-CDF sampling over the truncated power law via rejection on a
    // continuous envelope; adequate for the indel-length use case.
    for (;;) {
        const double u = uniform_double();
        // Continuous Pareto-like draw on [1, max+1).
        const double one_minus_a = 1.0 - alpha;
        double x;
        if (std::abs(one_minus_a) < 1e-12) {
            x = std::pow(static_cast<double>(max_value) + 1.0, u);
        } else {
            const double hi = std::pow(static_cast<double>(max_value) + 1.0,
                                       one_minus_a);
            x = std::pow(1.0 + u * (hi - 1.0), 1.0 / one_minus_a);
        }
        const std::uint64_t k = static_cast<std::uint64_t>(x);
        if (k >= 1 && k <= max_value)
            return k;
    }
}

Rng
Rng::fork()
{
    return Rng(next() ^ 0xd2b74407b1ce6e93ULL);
}

}  // namespace darwin
