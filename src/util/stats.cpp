#include "util/stats.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"
#include "util/strings.h"

namespace darwin {

void
RunningStats::add(double x)
{
    if (count_ == 0) {
        min_ = max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
    ++count_;
    sum_ += x;
    sum_sq_ += x * x;
}

double
RunningStats::mean() const
{
    return count_ ? sum_ / static_cast<double>(count_) : 0.0;
}

double
RunningStats::variance() const
{
    if (count_ < 2)
        return 0.0;
    const double n = static_cast<double>(count_);
    const double m = mean();
    return std::max(0.0, (sum_sq_ - n * m * m) / (n - 1.0));
}

double
RunningStats::stddev() const
{
    return std::sqrt(variance());
}

double
RunningStats::min() const
{
    return count_ ? min_ : 0.0;
}

double
RunningStats::max() const
{
    return count_ ? max_ : 0.0;
}

LogHistogram::LogHistogram(int num_bins)
    : bins_(static_cast<std::size_t>(num_bins), 0)
{
    require(num_bins > 0 && num_bins <= 63, "LogHistogram: bad bin count");
}

void
LogHistogram::add(std::uint64_t value)
{
    int bin = 0;
    std::uint64_t v = std::max<std::uint64_t>(value, 1);
    while (v > 1) {
        v >>= 1;
        ++bin;
    }
    bin = std::min(bin, num_bins() - 1);
    ++bins_[static_cast<std::size_t>(bin)];
    raw_.push_back(value);
    ++total_;
}

std::uint64_t
LogHistogram::bin_low(int bin) const
{
    return 1ULL << bin;
}

double
LogHistogram::fraction_below(std::uint64_t threshold) const
{
    if (total_ == 0)
        return 0.0;
    std::uint64_t below = 0;
    for (std::uint64_t v : raw_) {
        if (v < threshold)
            ++below;
    }
    return static_cast<double>(below) / static_cast<double>(total_);
}

std::string
LogHistogram::render(int width) const
{
    std::uint64_t peak = 1;
    for (std::uint64_t c : bins_)
        peak = std::max(peak, c);
    std::string out;
    for (int b = 0; b < num_bins(); ++b) {
        const std::uint64_t c = bins_[static_cast<std::size_t>(b)];
        if (c == 0)
            continue;
        const int bar =
            static_cast<int>(static_cast<double>(c) * width / peak);
        out += strprintf("  [%8llu, %8llu) %10s |",
                         static_cast<unsigned long long>(bin_low(b)),
                         static_cast<unsigned long long>(bin_low(b) * 2),
                         with_commas(c).c_str());
        out.append(static_cast<std::size_t>(std::max(bar, c ? 1 : 0)), '#');
        out += "\n";
    }
    return out;
}

double
percentile(std::vector<double> values, double p)
{
    if (values.empty())
        return 0.0;
    std::sort(values.begin(), values.end());
    const double rank = p / 100.0 * static_cast<double>(values.size() - 1);
    const std::size_t lo = static_cast<std::size_t>(rank);
    const std::size_t hi = std::min(lo + 1, values.size() - 1);
    const double frac = rank - static_cast<double>(lo);
    return values[lo] * (1.0 - frac) + values[hi] * frac;
}

}  // namespace darwin
