/**
 * @file
 * Minimal thread-safe logging for the Darwin-WGA library.
 *
 * Severity model follows the conventions of simulator codebases:
 *  - fatal():  user-caused, unrecoverable condition (bad input/config);
 *              throws FatalError so callers and tests can intercept it.
 *  - panic():  internal invariant violation (a library bug); aborts.
 *  - warn()/inform(): advisory messages on stderr, never terminate.
 */
#ifndef DARWIN_UTIL_LOGGING_H
#define DARWIN_UTIL_LOGGING_H

#include <sstream>
#include <stdexcept>
#include <string>

namespace darwin {

/** Severity of a log record. */
enum class LogLevel { Debug, Info, Warn, Error };

/** Exception thrown by fatal() for user-caused unrecoverable errors. */
class FatalError : public std::runtime_error {
  public:
    explicit FatalError(const std::string& msg) : std::runtime_error(msg) {}
};

/** Global log threshold; records below it are dropped. Defaults to Info. */
void set_log_level(LogLevel level);
LogLevel log_level();

/** Emit a record at the given level (thread-safe, single write). */
void log_message(LogLevel level, const std::string& msg);

/** Informational message, visible at Info level. */
void inform(const std::string& msg);

/** Advisory about questionable but survivable conditions. */
void warn(const std::string& msg);

/** Debug chatter, hidden unless the level is lowered to Debug. */
void debug(const std::string& msg);

/** User-caused unrecoverable error: logs and throws FatalError. */
[[noreturn]] void fatal(const std::string& msg);

/** Internal invariant violation: logs and aborts. */
[[noreturn]] void panic(const std::string& msg);

/**
 * Check an internal invariant; calls panic() with the message on failure.
 * Unlike assert(), stays active in release builds — the algorithms here
 * guard DP-table indexing with it.
 */
inline void
require(bool condition, const char* msg)
{
    if (!condition)
        panic(msg);
}

}  // namespace darwin

#endif  // DARWIN_UTIL_LOGGING_H
