/**
 * @file
 * Structured, thread-safe logging for the Darwin-WGA library.
 *
 * Every message becomes a LogRecord (wall-clock timestamp, level, small
 * per-thread index, message text, optional key=value fields) and is fed
 * to the configured sinks. The default sink prints human-readable text
 * to stderr; a JSON-lines file sink can be added for machine ingestion
 * (`--log-json` in the CLIs).
 *
 * Severity model follows the conventions of simulator codebases:
 *  - fatal():  user-caused, unrecoverable condition (bad input/config);
 *              throws FatalError so callers and tests can intercept it.
 *  - panic():  internal invariant violation (a library bug); aborts.
 *  - warn()/inform(): advisory messages, never terminate.
 *
 * The threshold defaults to Info and can be set programmatically
 * (set_log_level) or from the DARWIN_LOG environment variable
 * (init_log_level_from_env; values debug|info|warn|error).
 */
#ifndef DARWIN_UTIL_LOGGING_H
#define DARWIN_UTIL_LOGGING_H

#include <chrono>
#include <cstdint>
#include <memory>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

namespace darwin {

/** Severity of a log record. */
enum class LogLevel { Debug, Info, Warn, Error };

/** Exception thrown by fatal() for user-caused unrecoverable errors. */
class FatalError : public std::runtime_error {
  public:
    explicit FatalError(const std::string& msg) : std::runtime_error(msg) {}
};

/** One key=value annotation attached to a record. */
struct LogField {
    std::string key;
    std::string value;
};

/** A fully formed log record as handed to the sinks. */
struct LogRecord {
    LogLevel level = LogLevel::Info;
    std::chrono::system_clock::time_point time;
    std::uint32_t thread_index = 0;
    std::string message;
    std::vector<LogField> fields;
};

/** Destination for log records. Sinks must be thread-safe. */
class LogSink {
  public:
    virtual ~LogSink() = default;
    virtual void write(const LogRecord& record) = 0;
};

/**
 * Human-readable text on stderr:
 *   [HH:MM:SS.mmm level T<tid>] message key=value ...
 * This is the default sink.
 */
class StderrTextSink : public LogSink {
  public:
    void write(const LogRecord& record) override;
};

/**
 * One JSON object per line, appended to a file:
 *   {"ts": "2026-08-07T12:34:56.789Z", "level": "info", "tid": 3,
 *    "msg": "...", "fields": {"pairs": "8"}}
 * Construction throws FatalError when the file cannot be opened.
 */
class JsonLinesSink : public LogSink {
  public:
    explicit JsonLinesSink(const std::string& path);
    ~JsonLinesSink() override;
    void write(const LogRecord& record) override;

  private:
    struct Impl;
    std::unique_ptr<Impl> impl_;
};

/** Global log threshold; records below it are dropped. Defaults to Info. */
void set_log_level(LogLevel level);
LogLevel log_level();

/** Parse "debug"/"info"/"warn"/"error" (case-insensitive). */
std::optional<LogLevel> parse_log_level(const std::string& text);

/** The lowercase name of a level ("info"). */
const char* log_level_name(LogLevel level);

/**
 * Apply the DARWIN_LOG environment variable to the global threshold.
 * Unset or empty leaves the level unchanged; an unrecognized value
 * warns and leaves it unchanged. Called by the CLIs at startup.
 */
void init_log_level_from_env();

/**
 * Add a sink alongside the default stderr text sink. Sinks stay
 * registered for the process lifetime (or until clear_log_sinks).
 */
void add_log_sink(std::shared_ptr<LogSink> sink);

/** Remove every added sink, restoring stderr-only logging. */
void clear_log_sinks();

/**
 * Small, stable per-thread index (0 for the first thread that logs or
 * traces, 1 for the next, ...). Shared with obs/trace.h so log lines
 * and trace rows use the same thread identities.
 */
std::uint32_t current_thread_index();

/** Emit a record at the given level (thread-safe). */
void log_message(LogLevel level, const std::string& msg,
                 std::vector<LogField> fields = {});

/** Informational message, visible at Info level. */
void inform(const std::string& msg);
void inform(const std::string& msg, std::vector<LogField> fields);

/** Advisory about questionable but survivable conditions. */
void warn(const std::string& msg);
void warn(const std::string& msg, std::vector<LogField> fields);

/** Debug chatter, hidden unless the level is lowered to Debug. */
void debug(const std::string& msg);
void debug(const std::string& msg, std::vector<LogField> fields);

/** User-caused unrecoverable error: logs and throws FatalError. */
[[noreturn]] void fatal(const std::string& msg);

/** Internal invariant violation: logs and aborts. */
[[noreturn]] void panic(const std::string& msg);

/**
 * Check an internal invariant; calls panic() with the message on failure.
 * Unlike assert(), stays active in release builds — the algorithms here
 * guard DP-table indexing with it.
 */
inline void
require(bool condition, const char* msg)
{
    if (!condition)
        panic(msg);
}

}  // namespace darwin

#endif  // DARWIN_UTIL_LOGGING_H
