#include "util/args.h"

#include <cstdio>
#include <cstdlib>

#include "util/logging.h"
#include "util/strings.h"

namespace darwin {

ArgParser::ArgParser(std::string description)
    : description_(std::move(description))
{
}

void
ArgParser::add_option(const std::string& name,
                      const std::string& default_value,
                      const std::string& help)
{
    require(!options_.count(name), "ArgParser: duplicate option");
    options_[name] = Option{default_value, help, false};
    order_.push_back(name);
}

void
ArgParser::add_flag(const std::string& name, const std::string& help)
{
    require(!options_.count(name), "ArgParser: duplicate flag");
    options_[name] = Option{"false", help, true};
    order_.push_back(name);
}

bool
ArgParser::parse(int argc, const char* const* argv)
{
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--help" || arg == "-h") {
            std::fputs(usage(argv[0]).c_str(), stdout);
            return false;
        }
        if (!starts_with(arg, "--")) {
            positional_.push_back(arg);
            continue;
        }
        std::string name = arg.substr(2);
        std::string value;
        bool has_value = false;
        const auto eq = name.find('=');
        if (eq != std::string::npos) {
            value = name.substr(eq + 1);
            name = name.substr(0, eq);
            has_value = true;
        }
        const auto it = options_.find(name);
        if (it == options_.end()) {
            std::fprintf(stderr, "unknown option --%s\n", name.c_str());
            std::fputs(usage(argv[0]).c_str(), stderr);
            return false;
        }
        if (it->second.is_flag) {
            values_[name] = has_value ? value : "true";
        } else if (has_value) {
            values_[name] = value;
        } else if (i + 1 < argc) {
            values_[name] = argv[++i];
        } else {
            std::fprintf(stderr, "option --%s needs a value\n", name.c_str());
            return false;
        }
    }
    return true;
}

std::string
ArgParser::get(const std::string& name) const
{
    const auto value_it = values_.find(name);
    if (value_it != values_.end())
        return value_it->second;
    const auto opt_it = options_.find(name);
    require(opt_it != options_.end(), "ArgParser: unregistered option read");
    return opt_it->second.default_value;
}

std::int64_t
ArgParser::get_int(const std::string& name) const
{
    return std::strtoll(get(name).c_str(), nullptr, 10);
}

double
ArgParser::get_double(const std::string& name) const
{
    return std::strtod(get(name).c_str(), nullptr);
}

bool
ArgParser::get_flag(const std::string& name) const
{
    const std::string v = get(name);
    return v == "true" || v == "1" || v == "yes";
}

std::string
ArgParser::usage(const std::string& program) const
{
    std::string out = description_ + "\n\nusage: " + program + " [options]\n";
    for (const auto& name : order_) {
        const Option& opt = options_.at(name);
        out += strprintf("  --%-24s %s", name.c_str(), opt.help.c_str());
        if (!opt.is_flag)
            out += strprintf(" (default: %s)", opt.default_value.c_str());
        out += "\n";
    }
    return out;
}

}  // namespace darwin
