#include "util/digest.h"

#include "util/strings.h"

namespace darwin {

std::uint64_t
fnv1a64_bytes(std::span<const std::uint8_t> bytes, std::uint64_t seed)
{
    std::uint64_t hash = seed;
    for (const std::uint8_t byte : bytes) {
        hash ^= byte;
        hash *= 0x100000001b3ULL;
    }
    return hash;
}

std::string
digest_hex(std::uint64_t digest)
{
    return strprintf("%016llx", static_cast<unsigned long long>(digest));
}

std::string
fingerprint_hex(const std::string& canonical)
{
    return digest_hex(fnv1a64(canonical));
}

}  // namespace darwin
