/**
 * @file
 * The end-to-end whole-genome-alignment pipeline (paper Fig. 4/6):
 * seed (D-SOFT) -> filter (gapped BSW or ungapped X-drop) -> extend
 * (GACT-X) -> chain (axtChain-style).
 *
 * The same pipeline class realizes both systems under comparison:
 * construct with WgaParams::darwin_defaults() for Darwin-WGA and
 * WgaParams::lastz_defaults() for the LASTZ-like baseline.
 */
#ifndef DARWIN_WGA_PIPELINE_H
#define DARWIN_WGA_PIPELINE_H

#include <memory>

#include "align/gactx.h"
#include "chain/chainer.h"
#include "seq/genome.h"
#include "util/thread_pool.h"
#include "wga/extend_stage.h"
#include "wga/filter_stage.h"

namespace darwin::wga {

/** Per-stage wall-clock and workload accounting (Table V inputs). */
struct PipelineStats {
    seed::SeedingStats seeding;
    FilterStats filter;
    ExtendStats extend;

    double seed_seconds = 0.0;
    double filter_seconds = 0.0;
    double extend_seconds = 0.0;
    double chain_seconds = 0.0;

    double
    total_seconds() const
    {
        return seed_seconds + filter_seconds + extend_seconds +
               chain_seconds;
    }

    /**
     * Accumulate another stats block (workload counters and stage
     * seconds). Used to combine per-strand and per-shard accounting;
     * note that when strands run concurrently the summed stage seconds
     * are CPU-time-like rather than wall-clock.
     */
    void merge(const PipelineStats& other);
};

/** Everything a WGA run produces. */
struct WgaResult {
    /** Local alignments in flattened-genome coordinates. */
    std::vector<align::Alignment> alignments;
    /** Chains over those alignments, sorted by descending score. */
    std::vector<chain::Chain> chains;
    PipelineStats stats;
};

/** The full aligner. */
class WgaPipeline {
  public:
    explicit WgaPipeline(WgaParams params,
                         chain::ChainParams chain_params = {});

    const WgaParams& params() const { return params_; }

    /**
     * Align query against target. Coordinates in the result refer to the
     * flattened() sequences of the two genomes.
     *
     * @param pool Optional thread pool for the seed and filter stages.
     */
    WgaResult run(const seq::Genome& target, const seq::Genome& query,
                  ThreadPool* pool = nullptr) const;

    /** Span-level entry point used by tests and small tools. */
    WgaResult run_sequences(const seq::Sequence& target,
                            const seq::Sequence& query,
                            ThreadPool* pool = nullptr) const;

  private:
    WgaParams params_;
    chain::ChainParams chain_params_;
};

}  // namespace darwin::wga

#endif  // DARWIN_WGA_PIPELINE_H
