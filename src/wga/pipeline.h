/**
 * @file
 * The end-to-end whole-genome-alignment pipeline (paper Fig. 4/6):
 * seed (D-SOFT) -> filter (gapped BSW or ungapped X-drop) -> extend
 * (GACT-X) -> chain (axtChain-style).
 *
 * The same pipeline class realizes both systems under comparison:
 * construct with WgaParams::darwin_defaults() for Darwin-WGA and
 * WgaParams::lastz_defaults() for the LASTZ-like baseline.
 */
#ifndef DARWIN_WGA_PIPELINE_H
#define DARWIN_WGA_PIPELINE_H

#include <memory>

#include "align/gactx.h"
#include "chain/chainer.h"
#include "obs/metrics.h"
#include "seq/genome.h"
#include "util/thread_pool.h"
#include "wga/extend_stage.h"
#include "wga/filter_stage.h"

namespace darwin::seed {
class SeedIndex;
}

namespace darwin::wga {

/** Per-stage wall-clock and workload accounting (Table V inputs). */
struct PipelineStats {
    seed::SeedingStats seeding;
    FilterStats filter;
    ExtendStats extend;

    double seed_seconds = 0.0;
    double filter_seconds = 0.0;
    double extend_seconds = 0.0;
    double chain_seconds = 0.0;

    double
    total_seconds() const
    {
        return seed_seconds + filter_seconds + extend_seconds +
               chain_seconds;
    }

    /**
     * Accumulate another stats block (workload counters and stage
     * seconds). Used to combine per-strand and per-shard accounting;
     * note that when strands run concurrently the summed stage seconds
     * are CPU-time-like rather than wall-clock.
     */
    void merge(const PipelineStats& other);
};

/** Everything a WGA run produces. */
struct WgaResult {
    /** Local alignments in flattened-genome coordinates. */
    std::vector<align::Alignment> alignments;
    /** Chains over those alignments, sorted by descending score. */
    std::vector<chain::Chain> chains;
    PipelineStats stats;
};

/** Bounded-memory dataflow knobs for WgaPipeline::run_streaming. */
struct StreamingParams {
    /** Band-start basepairs owned per target index shard; at most one
     *  shard's seed table is resident at a time. */
    std::uint64_t shard_bp = 8ull << 20;

    /** In-memory window of the seed-hit channel (SeedHit records). */
    std::size_t hit_stream_capacity = 1 << 16;

    /** In-memory chunk of the candidate sort-spill buffer
     *  (FilterCandidate records). */
    std::size_t candidate_chunk = 1 << 14;

    /** Hits pulled from the channel per filter_hits batch. */
    std::size_t filter_batch = 2048;

    /** Overflow policy of the hit channel: spill to disk (default) or
     *  block the seeding producer (pure backpressure). */
    bool spill = true;

    /** Spill directory ("" = system temp dir). */
    std::string spill_dir;
};

/** The full aligner. */
class WgaPipeline {
  public:
    explicit WgaPipeline(WgaParams params,
                         chain::ChainParams chain_params = {});

    const WgaParams& params() const { return params_; }

    /**
     * Align query against target. Coordinates in the result refer to the
     * flattened() sequences of the two genomes.
     *
     * @param pool    Optional thread pool for the seed and filter stages.
     * @param metrics Optional registry: each stage publishes its
     *        workload counters and stage-seconds histograms under
     *        "wga.*" names as it completes (see DESIGN.md
     *        "Observability"). Purely additive — results are
     *        bit-identical with or without a registry.
     *
     * When a trace session is installed (obs::TraceSession::install),
     * the run also records "index"/"seed"/"filter"/"extend"/"chain"
     * spans in the "wga" category.
     */
    WgaResult run(const seq::Genome& target, const seq::Genome& query,
                  ThreadPool* pool = nullptr,
                  obs::MetricsRegistry* metrics = nullptr) const;

    /** Span-level entry point used by tests and small tools. */
    WgaResult run_sequences(const seq::Sequence& target,
                            const seq::Sequence& query,
                            ThreadPool* pool = nullptr,
                            obs::MetricsRegistry* metrics = nullptr) const;

    /**
     * run() over 2-bit packed storage: the flattened target and query
     * stay packed end to end — the seed index builds from packed words,
     * and the filter/extension stages decode one tile window at a time
     * (seq::BaseView). Classic materialized dataflow otherwise.
     * Results are bit-identical to run() on the same genomes. Gapped
     * filter mode only (ungapped scans need byte-backed sequences).
     * Works on byte-mode genomes too (they pack on first use).
     */
    WgaResult run_packed(const seq::Genome& target,
                         const seq::Genome& query,
                         ThreadPool* pool = nullptr,
                         obs::MetricsRegistry* metrics = nullptr) const;

    /**
     * Bounded-memory large-genome run (implemented in streaming.cpp):
     * packed storage as run_packed, plus (a) sharded seeding — the
     * target's seed table is built one band shard at a time
     * (seed/sharded_index.h), never whole; (b) D-SOFT hits flow
     * through a fixed-capacity spill-or-backpressure BoundedStream to
     * a filtering consumer instead of being materialized; (c) passing
     * candidates accumulate in a SortingSpillBuffer whose sorted drain
     * feeds extension one wave at a time. Alignments and chains (the
     * output) are still materialized.
     *
     * Identity: alignments/chains/MAF are bit-identical to run() —
     * band sharding partitions D-SOFT's band space exactly and the
     * candidate drain reproduces sort_candidates order. Only
     * stats.seeding.seed_lookups grows (each shard re-scans the
     * query). Requires gapped filter mode and
     * dsoft.max_hits_per_chunk == 0 (the per-chunk cap is defined on
     * whole chunks, which sharding splits).
     *
     * Fixed buffer capacities are charged against the installed
     * fault::CancelToken heap budget once at construction; spilled
     * bytes are not charged (disk is the escape valve). Residency and
     * spill telemetry lands in the wga.heap.* gauge family.
     */
    WgaResult run_streaming(const seq::Genome& target,
                            const seq::Genome& query,
                            const StreamingParams& streaming,
                            ThreadPool* pool = nullptr,
                            obs::MetricsRegistry* metrics = nullptr) const;

    /**
     * Like run_sequences, but seed from a caller-provided index over
     * `target` instead of building one — the persisted-index path
     * (darwin-wga-serve, the batch engine's shared-target cache). The
     * index must have been built with this pipeline's seed pattern
     * (FatalError otherwise); given that, results are bit-identical to
     * run_sequences, and stats.seed_seconds excludes the build the
     * caller amortized away.
     */
    WgaResult run_with_index(const seed::SeedIndex& index,
                             const seq::Sequence& target,
                             const seq::Sequence& query,
                             ThreadPool* pool = nullptr,
                             obs::MetricsRegistry* metrics = nullptr) const;

    /**
     * Packed twin of run_with_index: seed/filter/extend over 2-bit
     * sequences with a caller-provided index (built from bases
     * identical to `target`'s — byte- or packed-built both qualify;
     * FatalError on a seed-shape mismatch). The serve daemon's packed
     * resident cache routes here. Gapped filter mode only.
     */
    WgaResult run_with_index_packed(
        const seed::SeedIndex& index, const seq::PackedSequence& target,
        const seq::PackedSequence& query, ThreadPool* pool = nullptr,
        obs::MetricsRegistry* metrics = nullptr) const;

  private:
    WgaResult run_impl(const seed::SeedIndex& index,
                       const seq::Sequence& target,
                       const seq::Sequence& query, WgaResult result,
                       ThreadPool* pool,
                       obs::MetricsRegistry* metrics) const;

    /** Strand loop + chain over packed storage (streaming.cpp). */
    WgaResult run_packed_impl(const seed::SeedIndex& index,
                              const seq::PackedSequence& target,
                              const seq::PackedSequence& query,
                              WgaResult result, ThreadPool* pool,
                              obs::MetricsRegistry* metrics) const;

    WgaParams params_;
    chain::ChainParams chain_params_;
};

/**
 * Publish a stats block into a registry under `<prefix>.*` names —
 * counters for the stage workload (seed lookups/hits/candidates, filter
 * tiles/cells/passed/dropped, extension anchors/tiles/terminations/
 * matched bases) and one histogram observation per non-zero stage
 * seconds. Counters add, so publishing per stage or per strand
 * accumulates to the run totals. Used with prefix "wga" by the serial
 * pipeline; reused by anything that holds a PipelineStats.
 */
void publish_pipeline_stats(obs::MetricsRegistry& metrics,
                            const PipelineStats& stats,
                            const std::string& prefix = "wga");

}  // namespace darwin::wga

#endif  // DARWIN_WGA_PIPELINE_H
