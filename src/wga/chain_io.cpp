#include "wga/chain_io.h"

#include <fstream>
#include <ostream>
#include <vector>

#include "util/logging.h"
#include "util/strings.h"

namespace darwin::wga {

namespace {

/** One ungapped block in flat coordinates. */
struct Block {
    std::uint64_t t = 0;
    std::uint64_t q = 0;
    std::uint64_t len = 0;
};

/** Split an alignment's edit script into ungapped blocks. */
void
append_blocks(const align::Alignment& alignment, std::vector<Block>* out)
{
    std::uint64_t t = alignment.target_start;
    std::uint64_t q = alignment.query_start;
    Block current{t, q, 0};
    for (const auto& run : alignment.cigar.runs()) {
        switch (run.op) {
          case align::EditOp::Match:
          case align::EditOp::Mismatch:
            if (current.len == 0) {
                current.t = t;
                current.q = q;
            }
            current.len += run.length;
            t += run.length;
            q += run.length;
            break;
          case align::EditOp::Insert:
          case align::EditOp::Delete:
            if (current.len > 0) {
                out->push_back(current);
                current.len = 0;
            }
            if (run.op == align::EditOp::Insert)
                q += run.length;
            else
                t += run.length;
            break;
        }
    }
    if (current.len > 0)
        out->push_back(current);
}

/**
 * Clip blocks so coordinates strictly advance (member alignments may
 * overlap slightly at chain seams; UCSC chains require monotone blocks).
 */
std::vector<Block>
monotone_blocks(const std::vector<Block>& blocks)
{
    std::vector<Block> out;
    std::uint64_t t_end = 0;
    std::uint64_t q_end = 0;
    for (Block block : blocks) {
        const std::uint64_t need_t =
            block.t < t_end ? t_end - block.t : 0;
        const std::uint64_t need_q =
            block.q < q_end ? q_end - block.q : 0;
        const std::uint64_t clip = std::max(need_t, need_q);
        if (clip >= block.len)
            continue;
        block.t += clip;
        block.q += clip;
        block.len -= clip;
        out.push_back(block);
        t_end = block.t + block.len;
        q_end = block.q + block.len;
    }
    return out;
}

}  // namespace

void
write_chains(std::ostream& out, const WgaResult& result,
             const seq::Genome& target, const seq::Genome& query)
{
    std::size_t id = 0;
    for (const auto& chain : result.chains) {
        ++id;
        if (chain.empty())
            continue;
        const bool reverse =
            result.alignments[chain.members.front()].query_strand ==
            align::Strand::Reverse;

        std::vector<Block> blocks;
        for (const std::size_t idx : chain.members)
            append_blocks(result.alignments[idx], &blocks);
        blocks = monotone_blocks(blocks);
        if (blocks.empty())
            continue;

        // Resolve chromosomes; skip chains that leave one chromosome
        // (the pipeline cannot produce them, but inputs may).
        bool sep = false;
        const auto t_pos = target.resolve(blocks.front().t, &sep);
        bool sep_end = false;
        const auto t_end_pos = target.resolve(
            blocks.back().t + blocks.back().len - 1, &sep_end);
        // For '-' chains the query coordinates live in
        // reverse-complement space; mirror them to resolve.
        const std::uint64_t q_flat_len = query.flattened().size();
        const std::uint64_t q_lo =
            reverse ? q_flat_len - (blocks.back().q + blocks.back().len)
                    : blocks.front().q;
        const std::uint64_t q_hi =
            reverse ? q_flat_len - blocks.front().q - 1
                    : blocks.back().q + blocks.back().len - 1;
        bool q_sep = false, q_sep_end = false;
        const auto q_pos = query.resolve(q_lo, &q_sep);
        const auto q_end_pos = query.resolve(q_hi, &q_sep_end);
        if (sep || sep_end || q_sep || q_sep_end ||
            t_pos.chromosome != t_end_pos.chromosome ||
            q_pos.chromosome != q_end_pos.chromosome) {
            warn("chain_io: skipping chain crossing a chromosome "
                 "separator");
            continue;
        }
        const auto& t_chrom = target.chromosome(t_pos.chromosome);
        const auto& q_chrom = query.chromosome(q_pos.chromosome);
        const std::uint64_t t_off = target.flat_offset(t_pos.chromosome);
        // In reverse space the chromosome's flat interval mirrors too.
        const std::uint64_t q_off =
            reverse ? q_flat_len -
                          (query.flat_offset(q_pos.chromosome) +
                           q_chrom.size())
                    : query.flat_offset(q_pos.chromosome);

        out << strprintf(
            "chain %.0f %s %zu + %llu %llu %s %zu %c %llu %llu %zu\n",
            chain.score, t_chrom.name().c_str(), t_chrom.size(),
            static_cast<unsigned long long>(blocks.front().t - t_off),
            static_cast<unsigned long long>(blocks.back().t +
                                            blocks.back().len - t_off),
            q_chrom.name().c_str(), q_chrom.size(), reverse ? '-' : '+',
            static_cast<unsigned long long>(blocks.front().q - q_off),
            static_cast<unsigned long long>(blocks.back().q +
                                            blocks.back().len - q_off),
            id);
        for (std::size_t b = 0; b < blocks.size(); ++b) {
            if (b + 1 < blocks.size()) {
                const auto& next = blocks[b + 1];
                out << strprintf(
                    "%llu %llu %llu\n",
                    static_cast<unsigned long long>(blocks[b].len),
                    static_cast<unsigned long long>(
                        next.t - (blocks[b].t + blocks[b].len)),
                    static_cast<unsigned long long>(
                        next.q - (blocks[b].q + blocks[b].len)));
            } else {
                out << strprintf("%llu\n", static_cast<unsigned long long>(
                                               blocks[b].len));
            }
        }
        out << "\n";
    }
}

void
write_chains_file(const std::string& path, const WgaResult& result,
                  const seq::Genome& target, const seq::Genome& query)
{
    std::ofstream out(path);
    if (!out)
        fatal("chain_io: cannot write file: " + path);
    write_chains(out, result, target, query);
}

}  // namespace darwin::wga
