/**
 * @file
 * Disk spill primitives for bounded-memory stage dataflow.
 *
 * SpillFile is an anonymous (created-then-unlinked) temp file with
 * append/pread access — the overflow valve BoundedStream and
 * SortingSpillBuffer divert to when their fixed in-memory windows fill.
 * Spilled bytes are deliberately *not* charged against the
 * fault::CancelToken heap budget: the whole point of spilling is that
 * overflow lives on disk, so only the fixed buffers count toward the
 * budget.
 *
 * SortingSpillBuffer accumulates records of a total order with O(chunk)
 * memory: full chunks are sorted and spilled, and drain_sorted() k-way
 * merges the chunks (plus the in-memory tail) back in order. The
 * streaming pipeline uses it to restore the canonical candidate order
 * (sort_candidates) without materializing every candidate in RAM.
 */
#ifndef DARWIN_WGA_SPILL_H
#define DARWIN_WGA_SPILL_H

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <memory>
#include <optional>
#include <string>
#include <type_traits>
#include <vector>

#include "util/logging.h"

namespace darwin::wga {

/** An unlinked temp file with append + positional-read access. */
class SpillFile {
  public:
    /** Create under `dir` (empty = the system temp directory). The
     *  file is unlinked immediately, so it vanishes on close/crash. */
    explicit SpillFile(const std::string& dir = "");
    ~SpillFile();

    SpillFile(const SpillFile&) = delete;
    SpillFile& operator=(const SpillFile&) = delete;

    /** Append `bytes` at the current end; fatal on I/O failure. */
    void append(const void* data, std::size_t bytes);

    /** Read exactly `bytes` at `offset`; fatal on short read. */
    void read_at(std::uint64_t offset, void* out, std::size_t bytes) const;

    /** Bytes appended so far. */
    std::uint64_t size() const { return size_; }

    /** Logical reset: subsequent appends start at offset 0 again (the
     *  old contents are dead; disk blocks are released). */
    void reset();

  private:
    int fd_ = -1;
    std::uint64_t size_ = 0;
};

/**
 * Bounded-memory accumulator of sortable records. Push in any order;
 * drain strictly in `Less` order. At most `chunk_capacity` records
 * (plus per-chunk merge read buffers during the drain) are resident.
 */
template <class T, class Less>
class SortingSpillBuffer {
    static_assert(std::is_trivially_copyable_v<T>,
                  "spilled records must be memcpy-safe");

  public:
    explicit SortingSpillBuffer(std::size_t chunk_capacity, Less less = {},
                                std::string spill_dir = "")
        : chunk_capacity_(chunk_capacity == 0 ? 1 : chunk_capacity),
          less_(less), spill_dir_(std::move(spill_dir))
    {
        pending_.reserve(chunk_capacity_);
    }

    void
    push(const T& item)
    {
        if (pending_.size() >= chunk_capacity_)
            spill_chunk();
        pending_.push_back(item);
        ++total_;
    }

    std::size_t size() const { return total_; }
    std::size_t chunks_spilled() const { return chunks_.size(); }
    std::uint64_t spilled_bytes() const { return spilled_bytes_; }

    /**
     * Pull cursor over the records in `Less` order (ties resolve by
     * chunk order, so the merge is deterministic). One k-way merge over
     * the spilled chunks plus the in-memory tail; per-cursor read
     * windows keep drain residency at O(chunk_capacity). Exactly one
     * Drain per fill; the buffer resets when the cursor is exhausted.
     */
    class Drain {
      public:
        /** Next record in sort order; nullopt once exhausted (at which
         *  point the owning buffer has been reset for reuse). */
        std::optional<T>
        next()
        {
            if (heap_.empty()) {
                if (owner_) {
                    owner_->clear();
                    owner_ = nullptr;
                }
                return std::nullopt;
            }
            std::pop_heap(heap_.begin(), heap_.end(), greater_);
            const Entry top = heap_.back();
            heap_.pop_back();
            Cursor& cursor = cursors_[top.cursor];
            if (refill(cursor)) {
                heap_.push_back(
                    Entry{cursor.buffer[cursor.buffer_pos++], top.cursor});
                std::push_heap(heap_.begin(), heap_.end(), greater_);
            }
            return top.item;
        }

      private:
        friend class SortingSpillBuffer;

        struct Cursor {
            std::uint64_t next = 0;   ///< records consumed from the chunk
            std::uint64_t count = 0;  ///< records in the chunk
            std::uint64_t base = 0;   ///< file offset of the chunk
            std::vector<T> buffer;    ///< read-ahead window
            std::size_t buffer_pos = 0;
        };

        struct Entry {
            T item;
            std::size_t cursor;
        };

        /** Min-heap order: cursor index breaks Less ties. */
        struct EntryGreater {
            Less less;
            bool
            operator()(const Entry& a, const Entry& b) const
            {
                if (less(a.item, b.item))
                    return false;
                if (less(b.item, a.item))
                    return true;
                return a.cursor > b.cursor;
            }
        };

        explicit Drain(SortingSpillBuffer* owner)
            : owner_(owner), greater_{owner->less_}
        {
            std::sort(owner->pending_.begin(), owner->pending_.end(),
                      owner->less_);
            cursors_.resize(owner->chunks_.size() + 1);
            for (std::size_t c = 0; c < owner->chunks_.size(); ++c) {
                cursors_[c].base = owner->chunks_[c].offset;
                cursors_[c].count = owner->chunks_[c].count;
            }
            cursors_.back().count = owner->pending_.size();
            cursors_.back().buffer = std::move(owner->pending_);
            // The tail cursor's records are already resident: mark them
            // consumed-from-"disk" so refill() never tries to read the
            // in-memory tail out of the spill file.
            cursors_.back().next = cursors_.back().count;
            owner->pending_ = {};
            read_window_ = std::max<std::size_t>(
                1, owner->chunk_capacity_ / (cursors_.size() + 1));
            heap_.reserve(cursors_.size());
            for (std::size_t c = 0; c < cursors_.size(); ++c) {
                if (refill(cursors_[c]))
                    heap_.push_back(Entry{
                        cursors_[c].buffer[cursors_[c].buffer_pos++], c});
            }
            std::make_heap(heap_.begin(), heap_.end(), greater_);
        }

        bool
        refill(Cursor& cursor)
        {
            if (cursor.buffer_pos < cursor.buffer.size())
                return true;
            if (cursor.next >= cursor.count)
                return false;
            const std::uint64_t n = std::min<std::uint64_t>(
                read_window_, cursor.count - cursor.next);
            cursor.buffer.resize(static_cast<std::size_t>(n));
            owner_->file_->read_at(cursor.base + cursor.next * sizeof(T),
                                   cursor.buffer.data(),
                                   static_cast<std::size_t>(n) * sizeof(T));
            cursor.next += n;
            cursor.buffer_pos = 0;
            return true;
        }

        SortingSpillBuffer* owner_;
        EntryGreater greater_;
        std::vector<Cursor> cursors_;
        std::vector<Entry> heap_;
        std::size_t read_window_ = 1;
    };

    /** Begin draining (single use per fill; see Drain). */
    Drain drain() { return Drain(this); }

    /** Visit every record in `Less` order; the buffer is empty after. */
    template <class Fn>
    void
    drain_sorted(Fn&& fn)
    {
        Drain cursor = drain();
        while (auto item = cursor.next())
            fn(*item);
    }

  private:
    friend class Drain;

    struct ChunkRef {
        std::uint64_t offset = 0;
        std::uint64_t count = 0;
    };

    void
    spill_chunk()
    {
        if (!file_)
            file_ = std::make_unique<SpillFile>(spill_dir_);
        std::sort(pending_.begin(), pending_.end(), less_);
        const std::uint64_t offset = file_->size();
        file_->append(pending_.data(), pending_.size() * sizeof(T));
        spilled_bytes_ += pending_.size() * sizeof(T);
        chunks_.push_back({offset, pending_.size()});
        pending_.clear();
    }

    void
    clear()
    {
        pending_.clear();
        chunks_.clear();
        total_ = 0;
        if (file_)
            file_->reset();
    }

    std::size_t chunk_capacity_;
    Less less_;
    std::string spill_dir_;
    std::vector<T> pending_;
    std::vector<ChunkRef> chunks_;
    std::unique_ptr<SpillFile> file_;
    std::size_t total_ = 0;
    std::uint64_t spilled_bytes_ = 0;
};

}  // namespace darwin::wga

#endif  // DARWIN_WGA_SPILL_H
