/**
 * @file
 * BoundedStream: a fixed-capacity SPSC channel with a spill-or-
 * backpressure overflow policy.
 *
 * The in-memory window is a WorkQueue (the same bounded channel the
 * batch engine puts between stages). What differs is what happens when
 * the window fills while the consumer lags:
 *
 *  - backpressure mode (spill disabled): the producer blocks, exactly
 *    like a bare WorkQueue push;
 *  - spill mode: the overflow is appended to an unlinked temp file
 *    (SpillFile) and the producer keeps going. FIFO order is preserved
 *    by a strict regime: once spilling starts, *every* push goes to the
 *    spill until the consumer has drained both the in-memory window and
 *    the spilled backlog, at which point the stream flips back to
 *    in-memory operation and the spill file is recycled.
 *
 * Heap accounting: the fixed window plus the spill staging buffers are
 * charged against the fault heap budget once, at construction — the
 * stream's residency never grows past that, no matter how many records
 * flow through. Spilled bytes are bookkept (spilled_items()) but not
 * charged; disk is the escape valve.
 *
 * Strictly single-producer / single-consumer: the streaming pipeline
 * runs seeding on a producer thread and filter/extend on the consumer
 * side. close() follows WorkQueue semantics (consumer drains, then
 * sees nullopt).
 */
#ifndef DARWIN_WGA_BOUNDED_STREAM_H
#define DARWIN_WGA_BOUNDED_STREAM_H

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <optional>
#include <type_traits>
#include <vector>

#include "fault/cancel.h"
#include "util/work_queue.h"
#include "wga/spill.h"

namespace darwin::wga {

/** Overflow policy for a BoundedStream. */
enum class OverflowPolicy {
    Backpressure,  ///< block the producer (bare WorkQueue semantics)
    Spill,         ///< divert overflow to disk, never block
};

template <class T>
class BoundedStream {
    static_assert(std::is_trivially_copyable_v<T>,
                  "spilled records must be memcpy-safe");

  public:
    /**
     * @param capacity      In-memory window (records).
     * @param policy        What to do when the window is full.
     * @param spill_dir     Spill directory ("" = system temp dir).
     * @param staging       Spill write/read batch (records); bounds the
     *                      two staging buffers in spill mode.
     */
    explicit BoundedStream(std::size_t capacity,
                           OverflowPolicy policy = OverflowPolicy::Spill,
                           std::string spill_dir = "",
                           std::size_t staging = 1024)
        : queue_(capacity), policy_(policy),
          staging_(staging == 0 ? 1 : staging),
          spill_dir_(std::move(spill_dir))
    {
        // Fixed residency, charged once: the window plus both staging
        // buffers. Everything past this spills to disk uncharged.
        std::size_t resident = queue_.capacity() * sizeof(T);
        if (policy_ == OverflowPolicy::Spill)
            resident += 2 * staging_ * sizeof(T);
        fault::charge_heap_bytes(resident);
        resident_bytes_ = resident;
    }

    /** Fixed in-memory footprint of this stream (bytes). */
    std::size_t resident_bytes() const { return resident_bytes_; }

    /**
     * Producer side. Returns false only when the stream was closed
     * under backpressure; spill mode always accepts until close().
     */
    bool
    push(const T& item)
    {
        ++pushed_;
        if (policy_ == OverflowPolicy::Backpressure)
            return queue_.push(item);
        {
            std::unique_lock<std::mutex> lock(mutex_);
            if (closed_)
                return false;
            if (!spilling_) {
                T copy = item;
                if (queue_.try_push(copy)) {
                    lock.unlock();
                    wake_.notify_one();
                    return true;
                }
                spilling_ = true;
                ++spill_episodes_;
            }
            write_buf_.push_back(item);
            ++spilled_;
            ++spill_pending_;
            if (write_buf_.size() >= staging_)
                flush_write_buf();
        }
        wake_.notify_one();
        return true;
    }

    /** Consumer side; nullopt once closed and fully drained. */
    std::optional<T>
    pop()
    {
        if (policy_ == OverflowPolicy::Backpressure)
            return queue_.pop();
        while (true) {
            if (auto item = queue_.try_pop())
                return item;
            std::unique_lock<std::mutex> lock(mutex_);
            if (spill_pending_ > 0)
                return pop_spilled_locked();
            if (closed_ && queue_.size() == 0)
                return std::nullopt;
            wake_.wait(lock, [this] {
                return closed_ || spill_pending_ > 0 || queue_.size() > 0;
            });
        }
    }

    /** Producer is done; consumer drains the backlog then sees nullopt. */
    void
    close()
    {
        {
            std::lock_guard<std::mutex> lock(mutex_);
            closed_ = true;
        }
        queue_.close();
        wake_.notify_all();
    }

    std::uint64_t pushed() const { return pushed_; }
    std::uint64_t spilled_items() const { return spilled_; }
    std::uint64_t spill_episodes() const { return spill_episodes_; }

  private:
    void
    flush_write_buf()
    {
        if (write_buf_.empty())
            return;
        if (!file_)
            file_ = std::make_unique<SpillFile>(spill_dir_);
        file_->append(write_buf_.data(), write_buf_.size() * sizeof(T));
        write_buf_.clear();
    }

    std::optional<T>
    pop_spilled_locked()
    {
        if (read_pos_ >= read_buf_.size()) {
            // Refill: file records precede anything still staged in the
            // write buffer (appends happen in push order).
            const std::uint64_t file_records = file_ ? file_->size() / sizeof(T)
                                                     : 0;
            if (file_read_ < file_records) {
                const std::uint64_t n = std::min<std::uint64_t>(
                    staging_, file_records - file_read_);
                read_buf_.resize(static_cast<std::size_t>(n));
                file_->read_at(file_read_ * sizeof(T), read_buf_.data(),
                               static_cast<std::size_t>(n) * sizeof(T));
                file_read_ += n;
            } else {
                read_buf_ = std::move(write_buf_);
                write_buf_ = {};
            }
            read_pos_ = 0;
        }
        T item = read_buf_[read_pos_++];
        --spill_pending_;
        if (spill_pending_ == 0) {
            // Backlog drained: recycle the file and return to in-memory
            // operation.
            spilling_ = false;
            read_buf_.clear();
            read_pos_ = 0;
            file_read_ = 0;
            if (file_)
                file_->reset();
        }
        return item;
    }

    WorkQueue<T> queue_;
    OverflowPolicy policy_;
    std::size_t staging_;
    std::string spill_dir_;
    std::size_t resident_bytes_ = 0;

    std::mutex mutex_;
    std::condition_variable wake_;
    bool closed_ = false;
    bool spilling_ = false;
    std::vector<T> write_buf_;
    std::vector<T> read_buf_;
    std::size_t read_pos_ = 0;
    std::uint64_t file_read_ = 0;
    std::unique_ptr<SpillFile> file_;
    std::uint64_t spill_pending_ = 0;

    std::uint64_t pushed_ = 0;
    std::uint64_t spilled_ = 0;
    std::uint64_t spill_episodes_ = 0;
};

}  // namespace darwin::wga

#endif  // DARWIN_WGA_BOUNDED_STREAM_H
