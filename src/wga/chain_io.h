/**
 * @file
 * UCSC .chain format output.
 *
 * The paper's §V-E workflow post-processes alignments with AXTCHAIN and
 * uploads the chains to the UCSC genome browser; this writer emits the
 * same interchange format so our chains can be loaded in browser-style
 * tooling:
 *
 *   chain <score> <tName> <tSize> + <tStart> <tEnd>
 *         <qName> <qSize> <qStrand> <qStart> <qEnd> <id>
 *   <blockSize> <dt> <dq>
 *   ...
 *   <blockSize>
 *
 * Blocks are the ungapped segments of the member alignments; dt/dq are
 * the gaps to the next block in target/query. Chains whose members span
 * chromosome separators are skipped with a warning (the pipeline cannot
 * produce them).
 */
#ifndef DARWIN_WGA_CHAIN_IO_H
#define DARWIN_WGA_CHAIN_IO_H

#include <iosfwd>

#include "chain/anchor.h"
#include "seq/genome.h"
#include "wga/pipeline.h"

namespace darwin::wga {

/** Write chains (with their member alignments) as UCSC .chain records. */
void write_chains(std::ostream& out, const WgaResult& result,
                  const seq::Genome& target, const seq::Genome& query);

/** Convenience: write to a file path. */
void write_chains_file(const std::string& path, const WgaResult& result,
                       const seq::Genome& target, const seq::Genome& query);

}  // namespace darwin::wga

#endif  // DARWIN_WGA_CHAIN_IO_H
