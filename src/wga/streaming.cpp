/**
 * @file
 * Packed-storage and bounded-memory entry points of WgaPipeline
 * (declared in pipeline.h): run_packed keeps the classic dataflow over
 * 2-bit sequences; run_streaming additionally shards the seed index
 * and streams hits/candidates through spill-or-backpressure channels
 * so per-pair residency is fixed regardless of genome size.
 */
#include "wga/pipeline.h"

#include <thread>

#include "fault/cancel.h"
#include "obs/trace.h"
#include "seed/sharded_index.h"
#include "util/logging.h"
#include "util/strings.h"
#include "util/timer.h"
#include "wga/bounded_stream.h"
#include "wga/spill.h"

namespace darwin::wga {

namespace {

/** sort_candidates order as a comparator (spill-merge key). */
struct CandidateOrder {
    bool
    operator()(const FilterCandidate& a, const FilterCandidate& b) const
    {
        if (a.filter_score != b.filter_score)
            return a.filter_score > b.filter_score;
        if (a.anchor_t != b.anchor_t)
            return a.anchor_t < b.anchor_t;
        return a.anchor_q < b.anchor_q;
    }
};

/** Residency/spill telemetry of one streaming strand pass. */
struct StreamTelemetry {
    std::uint64_t hit_stream_bytes = 0;
    std::uint64_t candidate_buffer_bytes = 0;
    std::uint64_t hits_pushed = 0;
    std::uint64_t hits_spilled = 0;
    std::uint64_t spill_episodes = 0;
    std::uint64_t candidates = 0;
    std::uint64_t candidate_spilled_bytes = 0;

    void
    merge(const StreamTelemetry& other)
    {
        hit_stream_bytes += other.hit_stream_bytes;
        candidate_buffer_bytes += other.candidate_buffer_bytes;
        hits_pushed += other.hits_pushed;
        hits_spilled += other.hits_spilled;
        spill_episodes += other.spill_episodes;
        candidates += other.candidates;
        candidate_spilled_bytes += other.candidate_spilled_bytes;
    }
};

/** Seed -> filter -> extend one packed query orientation (materialized
 *  dataflow — the packed twin of pipeline.cpp's run_one_strand). */
std::vector<align::Alignment>
run_one_strand_packed(const WgaParams& params, const seed::SeedIndex& index,
                      const seq::PackedSequence& target,
                      const seq::PackedSequence& query,
                      align::Strand strand, PipelineStats* stats,
                      ThreadPool* pool, obs::MetricsRegistry* metrics)
{
    const std::int64_t strand_arg =
        strand == align::Strand::Reverse ? 1 : 0;
    Timer timer;

    std::vector<seed::SeedHit> hits;
    {
        obs::ScopedSpan span("seed", "wga");
        span.arg("strand", strand_arg);
        PipelineStats stage;
        const seed::DsoftSeeder seeder(index, params.dsoft);
        hits = seeder.seed_all(query, &stage.seeding, pool);
        stage.seed_seconds = timer.seconds();
        span.arg("hits", static_cast<std::int64_t>(hits.size()));
        stats->merge(stage);
        if (metrics)
            publish_pipeline_stats(*metrics, stage);
    }

    timer.reset();
    std::vector<FilterCandidate> candidates;
    {
        obs::ScopedSpan span("filter", "wga");
        span.arg("strand", strand_arg);
        PipelineStats stage;
        const FilterStage filter(params, seq::BaseView(target),
                                 seq::BaseView(query));
        candidates = filter.filter_all(hits, &stage.filter, pool);
        stage.filter_seconds = timer.seconds();
        span.arg("candidates", static_cast<std::int64_t>(candidates.size()));
        stats->merge(stage);
        if (metrics)
            publish_pipeline_stats(*metrics, stage);
    }

    timer.reset();
    std::vector<align::Alignment> alignments;
    {
        obs::ScopedSpan span("extend", "wga");
        span.arg("strand", strand_arg);
        PipelineStats stage;
        const align::GactXTileAligner aligner(params.gactx);
        ExtendStage extend(params, seq::BaseView(target),
                           seq::BaseView(query));
        alignments =
            extend.extend_all(candidates, aligner, &stage.extend, pool);
        stage.extend_seconds = timer.seconds();
        span.arg("alignments", static_cast<std::int64_t>(alignments.size()));
        stats->merge(stage);
        if (metrics)
            publish_pipeline_stats(*metrics, stage);
    }

    for (auto& alignment : alignments)
        alignment.query_strand = strand;
    return alignments;
}

/**
 * One streaming strand pass: a producer thread seeds shard by shard
 * into a bounded hit channel; this thread filters hit batches and
 * accumulates passing candidates in a sort-spill buffer whose drain
 * feeds extension. seed_seconds is the producer's wall clock;
 * filter_seconds is the consumer loop's (the two overlap).
 */
std::vector<align::Alignment>
run_one_strand_streaming(const WgaParams& params, const StreamingParams& sp,
                         const seed::ShardedSeedIndexBuilder& builder,
                         const seq::PackedSequence& target,
                         const seq::PackedSequence& query,
                         align::Strand strand, PipelineStats* stats,
                         StreamTelemetry* telemetry, ThreadPool* pool,
                         obs::MetricsRegistry* metrics)
{
    const std::int64_t strand_arg =
        strand == align::Strand::Reverse ? 1 : 0;
    obs::ScopedSpan stream_span("stream", "wga");
    stream_span.arg("strand", strand_arg);
    stream_span.arg("shards",
                    static_cast<std::int64_t>(builder.num_shards()));

    BoundedStream<seed::SeedHit> hits(
        sp.hit_stream_capacity,
        sp.spill ? OverflowPolicy::Spill : OverflowPolicy::Backpressure,
        sp.spill_dir);

    PipelineStats stage;
    double seed_wall = 0.0;
    std::exception_ptr producer_error;

    // The producer runs under the caller's cancellation context so
    // budget overruns and injected faults fire on it too.
    fault::CancelToken* token = fault::current_token();
    const std::size_t pair_index = fault::current_pair();
    std::thread producer([&] {
        const fault::ContextScope scope(token, pair_index);
        Timer seed_timer;
        try {
            const std::size_t query_size = query.size();
            const std::size_t chunk = params.dsoft.chunk_size;
            bool open = true;
            // Chunk hit vectors are transient here — drained into the
            // bounded channel and freed — so instead of the cumulative
            // per-chunk charge retaining callers pay (charge_heap
            // false below), charge the high-water of one chunk.
            std::size_t chunk_hits_high_water = 0;
            for (std::size_t s = 0; open && s < builder.num_shards();
                 ++s) {
                const seed::ShardPlan& plan = builder.plan()[s];
                const std::shared_ptr<const seed::SeedIndex> shard =
                    builder.build_shard(s);
                const seed::DsoftSeeder seeder(*shard, params.dsoft,
                                               plan.band_lo, plan.band_hi);
                for (std::size_t begin = 0; open && begin < query_size;
                     begin += chunk) {
                    const std::size_t end =
                        std::min(query_size, begin + chunk);
                    const std::vector<seed::SeedHit> chunk_hits =
                        seeder.seed_chunk(query, begin, end,
                                          &stage.seeding,
                                          /*charge_heap=*/false);
                    if (chunk_hits.size() > chunk_hits_high_water) {
                        fault::charge_heap_bytes(
                            (chunk_hits.size() - chunk_hits_high_water) *
                            sizeof(seed::SeedHit));
                        chunk_hits_high_water = chunk_hits.size();
                    }
                    for (const seed::SeedHit& hit : chunk_hits) {
                        if (!hits.push(hit)) {
                            open = false;  // consumer closed the stream
                            break;
                        }
                    }
                }
            }
        } catch (...) {
            producer_error = std::current_exception();
        }
        seed_wall = seed_timer.seconds();
        hits.close();
    });

    const FilterStage filter(params, seq::BaseView(target),
                             seq::BaseView(query));
    SortingSpillBuffer<FilterCandidate, CandidateOrder> candidates(
        sp.candidate_chunk, CandidateOrder{}, sp.spill_dir);
    fault::charge_heap_bytes(sp.candidate_chunk * sizeof(FilterCandidate));

    Timer filter_timer;
    try {
        std::vector<seed::SeedHit> batch;
        batch.reserve(sp.filter_batch);
        bool drained = false;
        while (!drained) {
            batch.clear();
            while (batch.size() < sp.filter_batch) {
                const std::optional<seed::SeedHit> hit = hits.pop();
                if (!hit) {
                    drained = true;
                    break;
                }
                batch.push_back(*hit);
            }
            if (batch.empty())
                break;
            for (const auto& slot :
                 filter.filter_hits(batch, &stage.filter, pool)) {
                if (slot)
                    candidates.push(*slot);
            }
        }
    } catch (...) {
        // Unblock and retire the producer before propagating (its
        // pushes fail once the stream is closed).
        hits.close();
        producer.join();
        throw;
    }
    stage.filter_seconds = filter_timer.seconds();
    producer.join();
    if (producer_error)
        std::rethrow_exception(producer_error);
    stage.seed_seconds = seed_wall;

    telemetry->hit_stream_bytes += hits.resident_bytes();
    telemetry->candidate_buffer_bytes +=
        sp.candidate_chunk * sizeof(FilterCandidate);
    telemetry->hits_pushed += hits.pushed();
    telemetry->hits_spilled += hits.spilled_items();
    telemetry->spill_episodes += hits.spill_episodes();
    telemetry->candidates += candidates.size();
    telemetry->candidate_spilled_bytes += candidates.spilled_bytes();
    stream_span.arg("hits", static_cast<std::int64_t>(hits.pushed()));
    stream_span.arg("hits_spilled",
                    static_cast<std::int64_t>(hits.spilled_items()));
    stream_span.arg("candidates",
                    static_cast<std::int64_t>(candidates.size()));

    Timer extend_timer;
    std::vector<align::Alignment> alignments;
    {
        obs::ScopedSpan span("extend", "wga");
        span.arg("strand", strand_arg);
        const align::GactXTileAligner aligner(params.gactx);
        ExtendStage extend(params, seq::BaseView(target),
                           seq::BaseView(query));
        auto drain = candidates.drain();
        alignments = extend.extend_stream(
            [&drain] { return drain.next(); }, aligner, &stage.extend,
            pool);
        stage.extend_seconds = extend_timer.seconds();
        span.arg("alignments", static_cast<std::int64_t>(alignments.size()));
    }
    stats->merge(stage);
    if (metrics)
        publish_pipeline_stats(*metrics, stage);

    for (auto& alignment : alignments)
        alignment.query_strand = strand;
    return alignments;
}

}  // namespace

WgaResult
WgaPipeline::run_packed(const seq::Genome& target, const seq::Genome& query,
                        ThreadPool* pool,
                        obs::MetricsRegistry* metrics) const
{
    const seq::PackedSequence& target_packed = target.flattened_packed();
    const seq::PackedSequence& query_packed = query.flattened_packed();

    WgaResult result;
    Timer timer;
    std::unique_ptr<seed::SeedIndex> index;
    {
        obs::ScopedSpan span("index", "wga");
        const seed::SeedPattern pattern(params_.seed_pattern);
        index = std::make_unique<seed::SeedIndex>(target_packed, pattern);
        PipelineStats stage;
        stage.seed_seconds = timer.seconds();
        result.stats.merge(stage);
        if (metrics)
            publish_pipeline_stats(*metrics, stage);
    }
    return run_packed_impl(*index, target_packed, query_packed,
                           std::move(result), pool, metrics);
}

WgaResult
WgaPipeline::run_with_index_packed(const seed::SeedIndex& index,
                                   const seq::PackedSequence& target,
                                   const seq::PackedSequence& query,
                                   ThreadPool* pool,
                                   obs::MetricsRegistry* metrics) const
{
    if (index.pattern().pattern() != params_.seed_pattern)
        fatal(strprintf("run_with_index_packed: index seed shape %s does "
                        "not match the pipeline's %s",
                        index.pattern().pattern().c_str(),
                        params_.seed_pattern.c_str()));
    return run_packed_impl(index, target, query, WgaResult{}, pool,
                           metrics);
}

WgaResult
WgaPipeline::run_packed_impl(const seed::SeedIndex& index,
                             const seq::PackedSequence& target,
                             const seq::PackedSequence& query,
                             WgaResult result, ThreadPool* pool,
                             obs::MetricsRegistry* metrics) const
{
    obs::ScopedSpan pipeline_span("pipeline", "wga");
    pipeline_span.arg("target_bases",
                      static_cast<std::int64_t>(target.size()));
    pipeline_span.arg("query_bases",
                      static_cast<std::int64_t>(query.size()));

    const std::size_t num_strands = params_.align_both_strands ? 2 : 1;
    seq::PackedSequence query_rc;
    if (num_strands == 2)
        query_rc = query.reverse_complement();
    for (std::size_t s = 0; s < num_strands; ++s) {
        PipelineStats strand_stats;
        auto alignments = run_one_strand_packed(
            params_, index, target, s == 0 ? query : query_rc,
            s == 0 ? align::Strand::Forward : align::Strand::Reverse,
            &strand_stats, pool, metrics);
        result.stats.merge(strand_stats);
        result.alignments.insert(
            result.alignments.end(),
            std::make_move_iterator(alignments.begin()),
            std::make_move_iterator(alignments.end()));
    }

    Timer chain_timer;
    {
        obs::ScopedSpan span("chain", "wga");
        result.chains = chain::chain_alignments(result.alignments,
                                                chain_params_);
        PipelineStats stage;
        stage.chain_seconds = chain_timer.seconds();
        result.stats.chain_seconds = stage.chain_seconds;
        span.arg("chains", static_cast<std::int64_t>(result.chains.size()));
        if (metrics)
            publish_pipeline_stats(*metrics, stage);
    }
    return result;
}

WgaResult
WgaPipeline::run_streaming(const seq::Genome& target,
                           const seq::Genome& query,
                           const StreamingParams& streaming,
                           ThreadPool* pool,
                           obs::MetricsRegistry* metrics) const
{
    if (params_.filter_mode != FilterMode::Gapped)
        fatal("run_streaming: ungapped (LASTZ) filtering is not "
              "supported on the streaming path (unbounded diagonal "
              "scans need byte-backed sequences)");
    if (params_.dsoft.max_hits_per_chunk != 0)
        fatal("run_streaming: dsoft.max_hits_per_chunk must be 0 — the "
              "per-chunk cap is defined over whole query chunks, which "
              "band sharding splits");

    obs::ScopedSpan pipeline_span("pipeline", "wga");
    const seq::PackedSequence& target_packed = target.flattened_packed();
    const seq::PackedSequence& query_packed = query.flattened_packed();
    pipeline_span.arg("target_bases",
                      static_cast<std::int64_t>(target_packed.size()));
    pipeline_span.arg("query_bases",
                      static_cast<std::int64_t>(query_packed.size()));

    WgaResult result;
    Timer timer;
    std::unique_ptr<seed::ShardedSeedIndexBuilder> builder;
    {
        // The global counting pass replaces the monolithic index build
        // and is accounted the same way (seeding time).
        obs::ScopedSpan span("index", "wga");
        const seed::SeedPattern pattern(params_.seed_pattern);
        builder = std::make_unique<seed::ShardedSeedIndexBuilder>(
            target_packed, pattern, seed::SeedIndex::kDefaultMaxBucket,
            streaming.shard_bp, params_.dsoft.chunk_size,
            params_.dsoft.bin_size);
        span.arg("shards",
                 static_cast<std::int64_t>(builder->num_shards()));
        PipelineStats stage;
        stage.seed_seconds = timer.seconds();
        result.stats.merge(stage);
        if (metrics)
            publish_pipeline_stats(*metrics, stage);
    }
    debug(strprintf("streaming: %zu target shard(s) of %llu band-bp",
                    builder->num_shards(),
                    static_cast<unsigned long long>(streaming.shard_bp)));

    // Strands run serially: concurrent strands would double the
    // resident channel capacities for no residency win.
    StreamTelemetry telemetry;
    const std::size_t num_strands = params_.align_both_strands ? 2 : 1;
    seq::PackedSequence query_rc;
    if (num_strands == 2)
        query_rc = query_packed.reverse_complement();
    for (std::size_t s = 0; s < num_strands; ++s) {
        PipelineStats strand_stats;
        auto alignments = run_one_strand_streaming(
            params_, streaming, *builder, target_packed,
            s == 0 ? query_packed : query_rc,
            s == 0 ? align::Strand::Forward : align::Strand::Reverse,
            &strand_stats, &telemetry, pool, metrics);
        result.stats.merge(strand_stats);
        result.alignments.insert(
            result.alignments.end(),
            std::make_move_iterator(alignments.begin()),
            std::make_move_iterator(alignments.end()));
    }

    if (metrics) {
        // wga.heap.*: fixed residency of the streaming dataflow plus
        // what overflowed to disk. The *_bytes gauges are the fixed
        // capacities charged against the heap budget; spilled bytes
        // are deliberately uncharged (the escape valve).
        metrics->gauge("wga.heap.hit_stream_bytes")
            .set(static_cast<std::int64_t>(telemetry.hit_stream_bytes));
        metrics->gauge("wga.heap.candidate_buffer_bytes")
            .set(static_cast<std::int64_t>(telemetry.candidate_buffer_bytes));
        metrics->gauge("wga.heap.hits_pushed")
            .set(static_cast<std::int64_t>(telemetry.hits_pushed));
        metrics->gauge("wga.heap.hits_spilled")
            .set(static_cast<std::int64_t>(telemetry.hits_spilled));
        metrics->gauge("wga.heap.spill_episodes")
            .set(static_cast<std::int64_t>(telemetry.spill_episodes));
        metrics->gauge("wga.heap.candidates")
            .set(static_cast<std::int64_t>(telemetry.candidates));
        metrics->gauge("wga.heap.spilled_bytes")
            .set(static_cast<std::int64_t>(
                telemetry.hits_spilled * sizeof(seed::SeedHit) +
                telemetry.candidate_spilled_bytes));
        if (const fault::CancelToken* token = fault::current_token())
            metrics->gauge("wga.heap.charged_bytes")
                .set(static_cast<std::int64_t>(token->heap_bytes_charged()));
    }

    Timer chain_timer;
    {
        obs::ScopedSpan span("chain", "wga");
        result.chains = chain::chain_alignments(result.alignments,
                                                chain_params_);
        PipelineStats stage;
        stage.chain_seconds = chain_timer.seconds();
        result.stats.chain_seconds = stage.chain_seconds;
        span.arg("chains", static_cast<std::int64_t>(result.chains.size()));
        if (metrics)
            publish_pipeline_stats(*metrics, stage);
    }
    return result;
}

}  // namespace darwin::wga
