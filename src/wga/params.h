/**
 * @file
 * End-to-end pipeline parameters.
 *
 * Two factory configurations mirror the paper's comparison:
 *  - darwin_defaults(): D-SOFT seeding -> gapped (BSW) filtering with
 *    Hf = 4000 -> GACT-X extension with He = 4000 (Table II + §VI-B).
 *  - lastz_defaults(): identical seeding and extension, but the filter is
 *    LASTZ's ungapped X-drop stage with threshold 3000 (§V-B: "LASTZ
 *    default scoring parameters are identical ... except the filtration
 *    and extension thresholds are lower, at 3000").
 */
#ifndef DARWIN_WGA_PARAMS_H
#define DARWIN_WGA_PARAMS_H

#include <string>

#include "align/gactx.h"
#include "align/scoring.h"
#include "seed/dsoft.h"

namespace darwin::wga {

/** Which filtering algorithm the pipeline runs. */
enum class FilterMode {
    Gapped,    ///< banded Smith-Waterman (Darwin-WGA)
    Ungapped,  ///< X-drop ungapped extension (LASTZ baseline)
};

/** Full pipeline configuration. */
struct WgaParams {
    /** Spaced seed pattern (string of 1/0). */
    std::string seed_pattern = "1110100110010101111";

    seed::DsoftParams dsoft;

    FilterMode filter_mode = FilterMode::Gapped;

    /** Gapped filter tile size Tf. */
    std::size_t filter_tile = 320;

    /** Gapped filter band half-width B. */
    std::size_t filter_band = 32;

    /** Filter threshold Hf. */
    align::Score filter_threshold = 4000;

    /** Ungapped filter X-drop bound (LASTZ mode only). */
    align::Score ungapped_xdrop = 910;

    /** GACT-X extension engine parameters (Table II defaults). */
    align::GactXParams gactx;

    /** Extension threshold He: alignments scoring below are dropped. */
    align::Score extension_threshold = 4000;

    align::ScoringParams scoring = align::ScoringParams::paper_defaults();

    /** Cell granularity (bp) of the anchor-absorption grid. */
    std::size_t absorb_cell = 64;

    /**
     * Batched backend staging (align/batch.h): a flush is triggered
     * when this many tiles have accumulated...
     */
    std::size_t batch_flush_tiles = 64;

    /**
     * ...or when the oldest staged tile has waited this long (seconds).
     * The deadline bounds staging latency when tiles trickle in (e.g.
     * sparse seed hits); it never changes results — only flush shapes.
     */
    double batch_flush_deadline = 0.05;

    /**
     * Also align the reverse complement of the query (second pass).
     * Alignments from that pass carry Strand::Reverse with query
     * coordinates in reverse-complement space (MAF '-' convention).
     * Off by default: the paper's synthetic evaluation plants no
     * inversions, and the second pass doubles seeding/filter work.
     */
    bool align_both_strands = false;

    /**
     * Always run the score-only probe pass on batched extension
     * flushes instead of waiting for the dead-tile heuristic to warm
     * up (align/batch.h BatchOptions::probe_score_only). Results are
     * unchanged — probing only skips traceback for dead tiles. Set by
     * fault::apply_degrade so degraded serving sheds traceback work
     * from the first flush.
     */
    bool force_probe_score_only = false;

    /** Darwin-WGA defaults (gapped filtering). */
    static WgaParams darwin_defaults();

    /** LASTZ-like baseline (ungapped filtering, thresholds 3000). */
    static WgaParams lastz_defaults();
};

}  // namespace darwin::wga

#endif  // DARWIN_WGA_PARAMS_H
