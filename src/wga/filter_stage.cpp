#include "wga/filter_stage.h"

#include <algorithm>
#include <atomic>

#include "align/kernels/kernel_registry.h"
#include "align/ungapped_xdrop.h"
#include "fault/cancel.h"
#include "seed/seed_pattern.h"
#include "util/logging.h"
#include "util/timer.h"

namespace darwin::wga {

FilterStage::FilterStage(const WgaParams& params, seq::BaseView target,
                         seq::BaseView query)
    : params_(params), target_(target), query_(query),
      seed_span_(seed::SeedPattern(params.seed_pattern).span())
{
    if (params_.filter_mode == FilterMode::Ungapped &&
        (target_.packed() || query_.packed()))
        fatal("filter: ungapped (LASTZ) mode requires byte-backed "
              "sequences; the packed/streaming path supports gapped "
              "filtering only");
}

std::optional<FilterCandidate>
FilterStage::filter(const seed::SeedHit& hit, FilterStats* stats) const
{
    fault::poll("filter.hit");
    FilterStats local;
    std::optional<FilterCandidate> out;
    ++local.tiles;

    if (params_.filter_mode == FilterMode::Gapped) {
        const TileWindow w = gapped_window(hit);
        // Byte mode materializes zero-copy subspans; packed mode
        // decodes only this tile's window (O(Tf) scratch per call).
        std::vector<std::uint8_t> target_scratch;
        std::vector<std::uint8_t> query_scratch;
        const align::BswResult bsw = align::banded_smith_waterman(
            target_.materialize(w.t0, w.tlen, &target_scratch),
            query_.materialize(w.q0, w.qlen, &query_scratch),
            params_.scoring, params_.filter_band);
        local.cells += bsw.cells_computed;
        if (bsw.max_score >= params_.filter_threshold) {
            out = FilterCandidate{w.t0 + bsw.target_max,
                                  w.q0 + bsw.query_max, bsw.max_score};
        }
    } else {
        const align::UngappedResult ext = align::ungapped_xdrop_extend(
            target_.bytes(), query_.bytes(), hit.target_pos, hit.query_pos,
            seed_span_, params_.scoring, params_.ungapped_xdrop);
        local.cells += ext.cells_computed;
        if (ext.score >= params_.filter_threshold) {
            out = FilterCandidate{ext.anchor_t, ext.anchor_q, ext.score};
        }
    }

    if (out)
        ++local.passed;
    if (stats)
        stats->merge(local);
    return out;
}

FilterStage::TileWindow
FilterStage::gapped_window(const seed::SeedHit& hit) const
{
    // Tile with the seed hit at its center.
    TileWindow w;
    const std::size_t half = params_.filter_tile / 2;
    const std::uint64_t seed_mid_t = hit.target_pos + seed_span_ / 2;
    const std::uint64_t seed_mid_q = hit.query_pos + seed_span_ / 2;
    w.t0 = seed_mid_t > half ? seed_mid_t - half : 0;
    w.q0 = seed_mid_q > half ? seed_mid_q - half : 0;
    w.tlen = static_cast<std::size_t>(std::min<std::uint64_t>(
        params_.filter_tile, target_.size() - w.t0));
    w.qlen = static_cast<std::size_t>(std::min<std::uint64_t>(
        params_.filter_tile, query_.size() - w.q0));
    return w;
}

std::vector<std::optional<FilterCandidate>>
FilterStage::filter_hits(const std::vector<seed::SeedHit>& hits,
                         FilterStats* stats, ThreadPool* pool) const
{
    std::vector<std::optional<FilterCandidate>> slots(hits.size());

    const align::kernels::BackendImpl& backend_impl =
        align::kernels::KernelRegistry::instance().active_backend();
    if (params_.filter_mode != FilterMode::Gapped || backend_impl.id == 0) {
        // Serial per-hit dispatch (the legacy path; also ungapped mode,
        // whose diagonal scans gain nothing from tile batching).
        if (pool) {
            std::atomic<std::uint64_t> tiles{0}, cells{0}, passed{0};
            pool->parallel_for(0, hits.size(), [&](std::size_t i) {
                FilterStats local;
                slots[i] = filter(hits[i], &local);
                tiles.fetch_add(local.tiles, std::memory_order_relaxed);
                cells.fetch_add(local.cells, std::memory_order_relaxed);
                passed.fetch_add(local.passed, std::memory_order_relaxed);
            });
            if (stats) {
                stats->tiles += tiles.load();
                stats->cells += cells.load();
                stats->passed += passed.load();
            }
        } else {
            for (std::size_t i = 0; i < hits.size(); ++i)
                slots[i] = filter(hits[i], stats);
        }
        return slots;
    }

    // Batched gapped filtering: stage each hit's BSW tile in hit order,
    // flush on size or deadline. The per-hit `filter.hit` probe fires
    // at staging time, so injection/budget visit counts match the
    // serial path.
    FilterStats local;
    align::TileBatch batch;
    std::vector<TileWindow> windows;
    std::vector<std::size_t> owner;
    std::vector<align::BswResult> results;
    // Packed mode: TileBatch aliases caller storage, so each staged
    // tile's decoded window lives here until its flush (bounded by
    // 2 * flush_cap * filter_tile bytes). Byte mode stages zero-copy
    // subspans and never touches this.
    std::vector<std::vector<std::uint8_t>> decoded_tiles;
    Timer staged_since;
    const std::size_t flush_cap =
        std::max<std::size_t>(1, params_.batch_flush_tiles);

    auto flush = [&]() {
        if (batch.empty())
            return;
        fault::poll("batch.flush");
        align::BatchOptions options;
        options.pool = pool;
        results.assign(batch.size(), align::BswResult{});
        local.batch.flushes += 1;
        local.batch.tiles += batch.size();
        local.batch.flush_sizes.push_back(
            static_cast<std::uint32_t>(batch.size()));
        backend_impl.backend->bsw_batch(batch, params_.scoring,
                                        params_.filter_band, options,
                                        {results.data(), results.size()},
                                        &local.batch);
        for (std::size_t k = 0; k < results.size(); ++k) {
            const align::BswResult& bsw = results[k];
            const TileWindow& w = windows[k];
            local.cells += bsw.cells_computed;
            if (bsw.max_score >= params_.filter_threshold) {
                slots[owner[k]] =
                    FilterCandidate{w.t0 + bsw.target_max,
                                    w.q0 + bsw.query_max, bsw.max_score};
                ++local.passed;
            }
        }
        batch.clear();
        windows.clear();
        owner.clear();
        decoded_tiles.clear();
    };

    auto stage_span = [&](const seq::BaseView& view, std::uint64_t start,
                          std::size_t len) -> std::span<const std::uint8_t> {
        if (!view.packed())
            return view.bytes().subspan(start, len);
        decoded_tiles.emplace_back();
        return view.materialize(start, len, &decoded_tiles.back());
    };

    for (std::size_t i = 0; i < hits.size(); ++i) {
        fault::poll("filter.hit");
        ++local.tiles;
        const TileWindow w = gapped_window(hits[i]);
        if (batch.empty())
            staged_since.reset();
        batch.push(stage_span(target_, w.t0, w.tlen),
                   stage_span(query_, w.q0, w.qlen));
        windows.push_back(w);
        owner.push_back(i);
        if (batch.size() >= flush_cap ||
            staged_since.seconds() >= params_.batch_flush_deadline)
            flush();
    }
    flush();

    if (stats)
        stats->merge(local);
    return slots;
}

std::vector<FilterCandidate>
FilterStage::filter_all(const std::vector<seed::SeedHit>& hits,
                        FilterStats* stats, ThreadPool* pool) const
{
    const std::vector<std::optional<FilterCandidate>> slots =
        filter_hits(hits, stats, pool);

    std::vector<FilterCandidate> out;
    for (const auto& slot : slots) {
        if (slot)
            out.push_back(*slot);
    }
    sort_candidates(out);
    return out;
}

void
sort_candidates(std::vector<FilterCandidate>& candidates)
{
    std::sort(candidates.begin(), candidates.end(),
              [](const FilterCandidate& a, const FilterCandidate& b) {
                  if (a.filter_score != b.filter_score)
                      return a.filter_score > b.filter_score;
                  if (a.anchor_t != b.anchor_t)
                      return a.anchor_t < b.anchor_t;
                  return a.anchor_q < b.anchor_q;
              });
}

}  // namespace darwin::wga
