#include "wga/filter_stage.h"

#include <algorithm>
#include <atomic>

#include "align/ungapped_xdrop.h"
#include "fault/cancel.h"
#include "seed/seed_pattern.h"
#include "util/logging.h"

namespace darwin::wga {

FilterStage::FilterStage(const WgaParams& params,
                         std::span<const std::uint8_t> target,
                         std::span<const std::uint8_t> query)
    : params_(params), target_(target), query_(query),
      seed_span_(seed::SeedPattern(params.seed_pattern).span())
{
}

std::optional<FilterCandidate>
FilterStage::filter(const seed::SeedHit& hit, FilterStats* stats) const
{
    fault::poll("filter.hit");
    FilterStats local;
    std::optional<FilterCandidate> out;
    ++local.tiles;

    if (params_.filter_mode == FilterMode::Gapped) {
        // Tile with the seed hit at its center.
        const std::size_t half = params_.filter_tile / 2;
        const std::uint64_t seed_mid_t = hit.target_pos + seed_span_ / 2;
        const std::uint64_t seed_mid_q = hit.query_pos + seed_span_ / 2;
        const std::uint64_t t0 = seed_mid_t > half ? seed_mid_t - half : 0;
        const std::uint64_t q0 = seed_mid_q > half ? seed_mid_q - half : 0;
        const std::size_t tlen = static_cast<std::size_t>(
            std::min<std::uint64_t>(params_.filter_tile,
                                    target_.size() - t0));
        const std::size_t qlen = static_cast<std::size_t>(
            std::min<std::uint64_t>(params_.filter_tile,
                                    query_.size() - q0));
        const align::BswResult bsw = align::banded_smith_waterman(
            target_.subspan(t0, tlen), query_.subspan(q0, qlen),
            params_.scoring, params_.filter_band);
        local.cells += bsw.cells_computed;
        if (bsw.max_score >= params_.filter_threshold) {
            out = FilterCandidate{t0 + bsw.target_max, q0 + bsw.query_max,
                                  bsw.max_score};
        }
    } else {
        const align::UngappedResult ext = align::ungapped_xdrop_extend(
            target_, query_, hit.target_pos, hit.query_pos, seed_span_,
            params_.scoring, params_.ungapped_xdrop);
        local.cells += ext.cells_computed;
        if (ext.score >= params_.filter_threshold) {
            out = FilterCandidate{ext.anchor_t, ext.anchor_q, ext.score};
        }
    }

    if (out)
        ++local.passed;
    if (stats)
        stats->merge(local);
    return out;
}

std::vector<FilterCandidate>
FilterStage::filter_all(const std::vector<seed::SeedHit>& hits,
                        FilterStats* stats, ThreadPool* pool) const
{
    std::vector<std::optional<FilterCandidate>> slots(hits.size());

    if (pool) {
        std::atomic<std::uint64_t> tiles{0}, cells{0}, passed{0};
        pool->parallel_for(0, hits.size(), [&](std::size_t i) {
            FilterStats local;
            slots[i] = filter(hits[i], &local);
            tiles.fetch_add(local.tiles, std::memory_order_relaxed);
            cells.fetch_add(local.cells, std::memory_order_relaxed);
            passed.fetch_add(local.passed, std::memory_order_relaxed);
        });
        if (stats) {
            stats->tiles += tiles.load();
            stats->cells += cells.load();
            stats->passed += passed.load();
        }
    } else {
        for (std::size_t i = 0; i < hits.size(); ++i)
            slots[i] = filter(hits[i], stats);
    }

    std::vector<FilterCandidate> out;
    for (const auto& slot : slots) {
        if (slot)
            out.push_back(*slot);
    }
    sort_candidates(out);
    return out;
}

void
sort_candidates(std::vector<FilterCandidate>& candidates)
{
    std::sort(candidates.begin(), candidates.end(),
              [](const FilterCandidate& a, const FilterCandidate& b) {
                  if (a.filter_score != b.filter_score)
                      return a.filter_score > b.filter_score;
                  if (a.anchor_t != b.anchor_t)
                      return a.anchor_t < b.anchor_t;
                  return a.anchor_q < b.anchor_q;
              });
}

}  // namespace darwin::wga
