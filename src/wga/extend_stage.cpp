#include "wga/extend_stage.h"

#include <algorithm>

#include "align/gactx.h"
#include "align/kernels/kernel_registry.h"
#include "fault/cancel.h"
#include "util/logging.h"

namespace darwin::wga {

ExtendStage::ExtendStage(const WgaParams& params, seq::BaseView target,
                         seq::BaseView query)
    : params_(params), target_(target), query_(query)
{
    require(params_.absorb_cell > 0, "ExtendStage: absorb_cell must be > 0");
}

bool
ExtendStage::absorbed(std::uint64_t anchor_t, std::uint64_t anchor_q) const
{
    const std::uint64_t cell = params_.absorb_cell;
    const std::uint64_t tc = anchor_t / cell;
    const std::uint64_t qc = anchor_q / cell;
    // Check the anchor's cell and its diagonal neighbors only: an anchor
    // sitting on an existing path is within one diagonal cell of a mark,
    // while anchors of *parallel* (paralogous) alignments one cell off
    // the diagonal must stay live.
    if (covered_cells_.count(cell_key(tc, qc)))
        return true;
    if (tc > 0 && qc > 0 &&
        covered_cells_.count(cell_key(tc - 1, qc - 1)))
        return true;
    return covered_cells_.count(cell_key(tc + 1, qc + 1)) > 0;
}

std::span<const std::uint64_t>
ExtendStage::path_cells(const align::Alignment& alignment)
{
    const std::uint64_t cell = params_.absorb_cell;
    std::vector<std::uint64_t>& cells = path_scratch_;
    cells.clear();
    // One sample per started cell-width per run, plus the start cell.
    std::size_t samples = 1;
    for (const auto& run : alignment.cigar.runs())
        samples += (run.length + cell - 1) / cell;
    cells.reserve(samples);
    std::uint64_t t = alignment.target_start;
    std::uint64_t q = alignment.query_start;
    cells.push_back(cell_key(t / cell, q / cell));
    for (const auto& run : alignment.cigar.runs()) {
        // Sample every grid cell the run passes through, not just its
        // ends: long match runs cross many cells and each must absorb
        // anchors.
        for (std::uint32_t step = 0; step < run.length;
             step += static_cast<std::uint32_t>(cell)) {
            const std::uint32_t advance = std::min<std::uint32_t>(
                static_cast<std::uint32_t>(cell), run.length - step);
            switch (run.op) {
              case align::EditOp::Match:
              case align::EditOp::Mismatch:
                t += advance;
                q += advance;
                break;
              case align::EditOp::Insert:
                q += advance;
                break;
              case align::EditOp::Delete:
                t += advance;
                break;
            }
            cells.push_back(cell_key(t / cell, q / cell));
        }
    }
    return cells;
}

double
ExtendStage::covered_fraction(std::span<const std::uint64_t> cells) const
{
    if (cells.empty())
        return 0.0;
    std::size_t covered = 0;
    for (const std::uint64_t key : cells) {
        if (covered_cells_.count(key))
            ++covered;
    }
    return static_cast<double>(covered) /
           static_cast<double>(cells.size());
}

void
ExtendStage::extend_wave_batched(
    const std::vector<FilterCandidate>& wave,
    const align::GactXParams& gactx_params,
    const align::AlignBackend& backend,
    std::vector<align::Alignment>& extended, ExtendStats& local,
    ThreadPool* pool)
{
    // One resumable extender per anchor; each flush co-schedules the
    // current tile of every live anchor (tiles within an anchor are
    // sequential, so cross-anchor interleaving is the batching axis).
    std::vector<align::AnchorExtender> extenders;
    extenders.reserve(wave.size());
    for (const FilterCandidate& candidate : wave)
        extenders.emplace_back(target_, query_, candidate.anchor_t,
                               candidate.anchor_q, gactx_params.tile_size,
                               gactx_params.overlap);

    const std::size_t flush_cap =
        std::max<std::size_t>(1, params_.batch_flush_tiles);
    align::TileBatch batch;
    std::vector<std::size_t> owner;
    std::vector<align::TileResult> results;
    std::span<const std::uint8_t> target_tile;
    std::span<const std::uint8_t> query_tile;
    for (;;) {
        batch.clear();
        owner.clear();
        for (std::size_t w = 0;
             w < extenders.size() && batch.size() < flush_cap; ++w) {
            if (extenders[w].done())
                continue;
            if (!extenders[w].next_tile(&target_tile, &query_tile))
                continue;
            batch.push(target_tile, query_tile);
            owner.push_back(w);
        }
        if (batch.empty())
            break;

        fault::poll("batch.flush");
        align::BatchOptions options;
        options.pool = pool;
        options.probe_score_only =
            params_.force_probe_score_only ||
            (probe_seen_ > 0 && probe_dead_ * 2 > probe_seen_);
        results.assign(batch.size(), align::TileResult{});
        local.batch.flushes += 1;
        local.batch.tiles += batch.size();
        local.batch.flush_sizes.push_back(
            static_cast<std::uint32_t>(batch.size()));
        backend.gactx_batch(batch, gactx_params, options,
                            {results.data(), results.size()},
                            &local.batch);
        for (std::size_t k = 0; k < results.size(); ++k) {
            ++probe_seen_;
            if (results[k].max_score <= 0)
                ++probe_dead_;
            extenders[owner[k]].consume(results[k]);
        }
    }

    local.extended += wave.size();
    for (const align::AnchorExtender& extender : extenders)
        local.extension.merge(extender.stats());
    for (std::size_t w = 0; w < wave.size(); ++w)
        extended[w] = extenders[w].finish(params_.scoring);
}

std::vector<align::Alignment>
ExtendStage::extend_all(const std::vector<FilterCandidate>& candidates,
                        const align::TileAligner& aligner,
                        ExtendStats* stats, ThreadPool* pool)
{
    std::size_t cursor = 0;
    return extend_stream(
        [&candidates, &cursor]() -> std::optional<FilterCandidate> {
            if (cursor >= candidates.size())
                return std::nullopt;
            return candidates[cursor++];
        },
        aligner, stats, pool);
}

std::vector<align::Alignment>
ExtendStage::extend_stream(
    const std::function<std::optional<FilterCandidate>()>& next,
    const align::TileAligner& aligner, ExtendStats* stats,
    ThreadPool* pool)
{
    // Batched execution applies when a non-serial backend is active and
    // the aligner is the GACT-X engine (whose params the backend call
    // needs); anything else — e.g. a custom TileAligner in tests —
    // keeps the serial per-anchor path.
    const align::kernels::BackendImpl& backend_impl =
        align::kernels::KernelRegistry::instance().active_backend();
    const auto* gactx =
        dynamic_cast<const align::GactXTileAligner*>(&aligner);
    const bool batched = backend_impl.id != 0 && gactx != nullptr;

    std::vector<align::Alignment> out;
    ExtendStats local;
    std::optional<FilterCandidate> pending = next();
    while (pending) {
        fault::poll("extend.anchor");
        // Select the next wave of unabsorbed anchors.
        std::vector<FilterCandidate> wave;
        while (pending && wave.size() < kWave) {
            const FilterCandidate candidate = *pending;
            pending = next();
            ++local.anchors_in;
            if (absorbed(candidate.anchor_t, candidate.anchor_q)) {
                ++local.absorbed;
                continue;
            }
            wave.push_back(candidate);
        }
        if (wave.empty())
            break;

        // Extend the wave (parallel when a pool is available).
        std::vector<align::Alignment> extended(wave.size());
        if (batched) {
            extend_wave_batched(wave, gactx->params(),
                                *backend_impl.backend, extended, local,
                                pool);
        } else {
            std::vector<align::ExtensionStats> wave_stats(wave.size());
            auto extend_one = [&](std::size_t w) {
                extended[w] = align::extend_anchor(
                    target_, query_, wave[w].anchor_t, wave[w].anchor_q,
                    aligner, params_.scoring, &wave_stats[w]);
            };
            if (pool) {
                pool->parallel_for(0, wave.size(), extend_one, 1);
            } else {
                for (std::size_t w = 0; w < wave.size(); ++w)
                    extend_one(w);
            }
            local.extended += wave.size();
            for (const auto& ws : wave_stats)
                local.extension.merge(ws);
        }

        // Merge in order with convergent-duplicate suppression: a path
        // that mostly re-covers already-marked cells re-derives an
        // existing alignment (the anchor sat on a parallel repeat
        // diagonal and the extension merged back onto the main path).
        for (auto& alignment : extended) {
            if (alignment.empty() ||
                alignment.score < params_.extension_threshold)
                continue;
            const auto cells = path_cells(alignment);
            if (covered_fraction(cells) > 0.5) {
                ++local.duplicates;
                continue;
            }
            covered_cells_.insert(cells.begin(), cells.end());
            ++local.alignments_out;
            local.matched_bases += alignment.matched_bases();
            out.push_back(std::move(alignment));
        }
    }
    if (stats) {
        stats->anchors_in += local.anchors_in;
        stats->absorbed += local.absorbed;
        stats->extended += local.extended;
        stats->duplicates += local.duplicates;
        stats->alignments_out += local.alignments_out;
        stats->matched_bases += local.matched_bases;
        stats->extension.merge(local.extension);
        stats->batch.merge(local.batch);
    }
    return out;
}

}  // namespace darwin::wga
