#include "wga/maf.h"

#include <fstream>
#include <ostream>

#include "util/logging.h"
#include "util/strings.h"

namespace darwin::wga {

namespace {

/** Render the gapped text of one side of an alignment. */
std::string
gapped_text(const align::Alignment& alignment, const seq::Sequence& flat,
            bool target_side)
{
    std::string out;
    std::uint64_t t = alignment.target_start;
    std::uint64_t q = alignment.query_start;
    for (const auto& run : alignment.cigar.runs()) {
        for (std::uint32_t k = 0; k < run.length; ++k) {
            switch (run.op) {
              case align::EditOp::Match:
              case align::EditOp::Mismatch:
                out.push_back(seq::decode_base(
                    flat[target_side ? t : q]));
                ++t;
                ++q;
                break;
              case align::EditOp::Insert:
                out.push_back(target_side ? '-'
                                          : seq::decode_base(flat[q]));
                ++q;
                break;
              case align::EditOp::Delete:
                out.push_back(target_side ? seq::decode_base(flat[t])
                                          : '-');
                ++t;
                break;
            }
        }
    }
    return out;
}

}  // namespace

void
write_maf(std::ostream& out,
          const std::vector<align::Alignment>& alignments,
          const seq::Genome& target, const seq::Genome& query,
          const std::string& comment)
{
    // Reverse-strand alignments carry coordinates in the space of the
    // reverse-complemented flattened query; materialize it on demand.
    seq::Sequence query_rc;
    bool have_rc = false;

    out << "##maf version=1 scoring=darwin-wga\n";
    if (!comment.empty())
        out << "# " << comment << "\n";
    for (const auto& alignment : alignments) {
        const bool reverse =
            alignment.query_strand == align::Strand::Reverse;
        bool t_sep = false;
        bool q_sep = false;
        const auto t_pos = target.resolve(alignment.target_start, &t_sep);
        const auto t_end_pos =
            target.resolve(alignment.target_end > 0
                               ? alignment.target_end - 1 : 0, &t_sep);

        // Map the query footprint to forward-strand coordinates.
        const std::size_t q_flat_len = query.flattened().size();
        const std::uint64_t q_fwd_start =
            reverse ? q_flat_len - alignment.query_end
                    : alignment.query_start;
        const std::uint64_t q_fwd_last =
            reverse ? q_flat_len - alignment.query_start - 1
                    : (alignment.query_end > 0 ? alignment.query_end - 1
                                               : 0);
        const auto q_pos = query.resolve(q_fwd_start, &q_sep);
        bool q_end_sep = false;
        const auto q_end_pos = query.resolve(q_fwd_last, &q_end_sep);
        if (t_sep || q_sep || q_end_sep ||
            t_end_pos.chromosome != t_pos.chromosome ||
            q_end_pos.chromosome != q_pos.chromosome) {
            warn("maf: skipping alignment crossing a chromosome separator");
            continue;
        }
        const auto& t_chrom = target.chromosome(t_pos.chromosome);
        const auto& q_chrom = query.chromosome(q_pos.chromosome);

        // MAF '-' strand starts count from the reverse-complement start
        // of the chromosome.
        const std::uint64_t q_field_start =
            reverse ? q_chrom.size() -
                          (q_pos.offset + alignment.query_span())
                    : q_pos.offset;
        if (reverse && !have_rc) {
            query_rc = query.flattened().reverse_complement();
            have_rc = true;
        }

        out << strprintf("a score=%d\n", alignment.score);
        out << strprintf(
            "s %s %llu %llu + %zu %s\n", t_chrom.name().c_str(),
            static_cast<unsigned long long>(t_pos.offset),
            static_cast<unsigned long long>(alignment.target_span()),
            t_chrom.size(),
            gapped_text(alignment, target.flattened(), true).c_str());
        out << strprintf(
            "s %s %llu %llu %c %zu %s\n", q_chrom.name().c_str(),
            static_cast<unsigned long long>(q_field_start),
            static_cast<unsigned long long>(alignment.query_span()),
            reverse ? '-' : '+', q_chrom.size(),
            gapped_text(alignment,
                        reverse ? query_rc : query.flattened(),
                        false).c_str());
        out << "\n";
    }
}

void
write_maf_file(const std::string& path,
               const std::vector<align::Alignment>& alignments,
               const seq::Genome& target, const seq::Genome& query,
               const std::string& comment)
{
    std::ofstream out(path);
    if (!out)
        fatal("maf: cannot write file: " + path);
    write_maf(out, alignments, target, query, comment);
}

}  // namespace darwin::wga
