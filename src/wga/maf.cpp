#include "wga/maf.h"

#include <fstream>
#include <ostream>

#include "seq/base_view.h"
#include "util/logging.h"
#include "util/strings.h"

namespace darwin::wga {

namespace {

/** Flattened bases of a genome without forcing a whole-genome decode:
 *  packed genomes are viewed through their 2-bit words directly. */
seq::BaseView
flat_view(const seq::Genome& genome)
{
    if (genome.packed())
        return seq::BaseView(genome.flattened_packed());
    const seq::Sequence& flat = genome.flattened();
    return seq::BaseView(
        std::span<const std::uint8_t>{flat.codes().data(), flat.size()});
}

/** Render the gapped text of one side of an alignment. */
std::string
gapped_text(const align::Alignment& alignment, seq::BaseView flat,
            bool target_side)
{
    std::string out;
    std::uint64_t t = alignment.target_start;
    std::uint64_t q = alignment.query_start;
    for (const auto& run : alignment.cigar.runs()) {
        for (std::uint32_t k = 0; k < run.length; ++k) {
            switch (run.op) {
              case align::EditOp::Match:
              case align::EditOp::Mismatch:
                out.push_back(seq::decode_base(
                    flat[target_side ? t : q]));
                ++t;
                ++q;
                break;
              case align::EditOp::Insert:
                out.push_back(target_side ? '-'
                                          : seq::decode_base(flat[q]));
                ++q;
                break;
              case align::EditOp::Delete:
                out.push_back(target_side ? seq::decode_base(flat[t])
                                          : '-');
                ++t;
                break;
            }
        }
    }
    return out;
}

}  // namespace

void
write_maf(std::ostream& out,
          const std::vector<align::Alignment>& alignments,
          const seq::Genome& target, const seq::Genome& query,
          const std::string& comment)
{
    const seq::BaseView target_flat = flat_view(target);
    const seq::BaseView query_flat = flat_view(query);

    // Reverse-strand alignments carry coordinates in the space of the
    // reverse-complemented flattened query; materialize it on demand
    // (staying 2-bit packed when the genome is packed).
    seq::Sequence query_rc;
    seq::PackedSequence query_rc_packed;
    bool have_rc = false;

    out << "##maf version=1 scoring=darwin-wga\n";
    if (!comment.empty())
        out << "# " << comment << "\n";
    for (const auto& alignment : alignments) {
        const bool reverse =
            alignment.query_strand == align::Strand::Reverse;
        bool t_sep = false;
        bool q_sep = false;
        const auto t_pos = target.resolve(alignment.target_start, &t_sep);
        const auto t_end_pos =
            target.resolve(alignment.target_end > 0
                               ? alignment.target_end - 1 : 0, &t_sep);

        // Map the query footprint to forward-strand coordinates.
        const std::size_t q_flat_len = query.flat_length();
        const std::uint64_t q_fwd_start =
            reverse ? q_flat_len - alignment.query_end
                    : alignment.query_start;
        const std::uint64_t q_fwd_last =
            reverse ? q_flat_len - alignment.query_start - 1
                    : (alignment.query_end > 0 ? alignment.query_end - 1
                                               : 0);
        const auto q_pos = query.resolve(q_fwd_start, &q_sep);
        bool q_end_sep = false;
        const auto q_end_pos = query.resolve(q_fwd_last, &q_end_sep);
        if (t_sep || q_sep || q_end_sep ||
            t_end_pos.chromosome != t_pos.chromosome ||
            q_end_pos.chromosome != q_pos.chromosome) {
            warn("maf: skipping alignment crossing a chromosome separator");
            continue;
        }
        const std::string& t_name =
            target.chromosome_name(t_pos.chromosome);
        const std::size_t t_size =
            target.chromosome_length(t_pos.chromosome);
        const std::string& q_name = query.chromosome_name(q_pos.chromosome);
        const std::size_t q_size =
            query.chromosome_length(q_pos.chromosome);

        // MAF '-' strand starts count from the reverse-complement start
        // of the chromosome.
        const std::uint64_t q_field_start =
            reverse ? q_size - (q_pos.offset + alignment.query_span())
                    : q_pos.offset;
        if (reverse && !have_rc) {
            if (query.packed())
                query_rc_packed =
                    query.flattened_packed().reverse_complement();
            else
                query_rc = query.flattened().reverse_complement();
            have_rc = true;
        }
        const seq::BaseView query_side =
            !reverse ? query_flat
                     : (query.packed()
                            ? seq::BaseView(query_rc_packed)
                            : seq::BaseView(std::span<const std::uint8_t>{
                                  query_rc.codes().data(),
                                  query_rc.size()}));

        out << strprintf("a score=%d\n", alignment.score);
        out << strprintf(
            "s %s %llu %llu + %zu %s\n", t_name.c_str(),
            static_cast<unsigned long long>(t_pos.offset),
            static_cast<unsigned long long>(alignment.target_span()),
            t_size, gapped_text(alignment, target_flat, true).c_str());
        out << strprintf(
            "s %s %llu %llu %c %zu %s\n", q_name.c_str(),
            static_cast<unsigned long long>(q_field_start),
            static_cast<unsigned long long>(alignment.query_span()),
            reverse ? '-' : '+', q_size,
            gapped_text(alignment, query_side, false).c_str());
        out << "\n";
    }
}

void
write_maf_file(const std::string& path,
               const std::vector<align::Alignment>& alignments,
               const seq::Genome& target, const seq::Genome& query,
               const std::string& comment)
{
    std::ofstream out(path);
    if (!out)
        fatal("maf: cannot write file: " + path);
    write_maf(out, alignments, target, query, comment);
}

}  // namespace darwin::wga
