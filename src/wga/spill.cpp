#include "wga/spill.h"

#include <cerrno>
#include <filesystem>

#include <fcntl.h>
#include <unistd.h>

#include "fault/cancel.h"
#include "util/strings.h"

namespace darwin::wga {

SpillFile::SpillFile(const std::string& dir)
{
    std::string base = dir;
    if (base.empty()) {
        std::error_code ec;
        const auto tmp = std::filesystem::temp_directory_path(ec);
        base = ec ? "/tmp" : tmp.string();
    }
    std::string path = base + "/darwin-wga-spill-XXXXXX";
    fd_ = ::mkstemp(path.data());
    if (fd_ < 0)
        fatal(strprintf("cannot create spill file in %s: %s", base.c_str(),
                        std::strerror(errno)));
    // Unlink immediately: the file lives only as long as the fd, so a
    // crash never leaves spill litter behind.
    ::unlink(path.c_str());
}

SpillFile::~SpillFile()
{
    if (fd_ >= 0)
        ::close(fd_);
}

void
SpillFile::append(const void* data, std::size_t bytes)
{
    fault::poll("stream.spill_write");
    const char* cursor = static_cast<const char*>(data);
    std::size_t remaining = bytes;
    while (remaining > 0) {
        const ::ssize_t n = ::pwrite(fd_, cursor, remaining,
                                     static_cast<::off_t>(size_));
        if (n < 0) {
            if (errno == EINTR)
                continue;
            fatal(strprintf("spill write failed: %s",
                            std::strerror(errno)));
        }
        cursor += n;
        remaining -= static_cast<std::size_t>(n);
        size_ += static_cast<std::uint64_t>(n);
    }
}

void
SpillFile::read_at(std::uint64_t offset, void* out, std::size_t bytes) const
{
    fault::poll("stream.spill_read");
    char* cursor = static_cast<char*>(out);
    std::size_t remaining = bytes;
    std::uint64_t position = offset;
    while (remaining > 0) {
        const ::ssize_t n = ::pread(fd_, cursor, remaining,
                                    static_cast<::off_t>(position));
        if (n < 0) {
            if (errno == EINTR)
                continue;
            fatal(strprintf("spill read failed: %s", std::strerror(errno)));
        }
        if (n == 0)
            fatal("spill read past end of file (corrupt spill state)");
        cursor += n;
        remaining -= static_cast<std::size_t>(n);
        position += static_cast<std::uint64_t>(n);
    }
}

void
SpillFile::reset()
{
    if (fd_ >= 0 && size_ > 0) {
        if (::ftruncate(fd_, 0) != 0)
            fatal(strprintf("spill truncate failed: %s",
                            std::strerror(errno)));
    }
    size_ = 0;
}

}  // namespace darwin::wga
