#include "wga/pipeline.h"

#include "seed/seed_index.h"
#include "util/logging.h"
#include "util/strings.h"
#include "util/timer.h"

namespace darwin::wga {

WgaPipeline::WgaPipeline(WgaParams params, chain::ChainParams chain_params)
    : params_(std::move(params)), chain_params_(std::move(chain_params))
{
}

WgaResult
WgaPipeline::run(const seq::Genome& target, const seq::Genome& query,
                 ThreadPool* pool) const
{
    return run_sequences(target.flattened(), query.flattened(), pool);
}

namespace {

/** Seed -> filter -> extend one query orientation against the index. */
std::vector<align::Alignment>
run_one_strand(const WgaParams& params, const seed::SeedIndex& index,
               std::span<const std::uint8_t> target_span,
               const seq::Sequence& query, align::Strand strand,
               PipelineStats* stats, ThreadPool* pool)
{
    const std::span<const std::uint8_t> query_span{query.codes().data(),
                                                   query.size()};
    Timer timer;
    const seed::DsoftSeeder seeder(index, params.dsoft);
    const std::vector<seed::SeedHit> hits =
        seeder.seed_all(query, &stats->seeding, pool);
    stats->seed_seconds += timer.seconds();
    debug(strprintf("seeding(%s): %zu candidate hits",
                    strand == align::Strand::Reverse ? "-" : "+",
                    hits.size()));

    timer.reset();
    const FilterStage filter(params, target_span, query_span);
    const std::vector<FilterCandidate> candidates =
        filter.filter_all(hits, &stats->filter, pool);
    stats->filter_seconds += timer.seconds();

    timer.reset();
    const align::GactXTileAligner aligner(params.gactx);
    ExtendStage extend(params, target_span, query_span);
    std::vector<align::Alignment> alignments =
        extend.extend_all(candidates, aligner, &stats->extend, pool);
    stats->extend_seconds += timer.seconds();

    for (auto& alignment : alignments)
        alignment.query_strand = strand;
    return alignments;
}

}  // namespace

WgaResult
WgaPipeline::run_sequences(const seq::Sequence& target,
                           const seq::Sequence& query,
                           ThreadPool* pool) const
{
    WgaResult result;
    const std::span<const std::uint8_t> target_span{target.codes().data(),
                                                    target.size()};

    Timer timer;
    const seed::SeedPattern pattern(params_.seed_pattern);
    const seed::SeedIndex index(target, pattern);
    result.stats.seed_seconds = timer.seconds();

    result.alignments =
        run_one_strand(params_, index, target_span, query,
                       align::Strand::Forward, &result.stats, pool);

    if (params_.align_both_strands) {
        // Second pass over the reverse complement; coordinates stay in
        // reverse-complement space (the MAF '-' strand convention).
        const seq::Sequence query_rc = query.reverse_complement();
        auto reverse_alignments =
            run_one_strand(params_, index, target_span, query_rc,
                           align::Strand::Reverse, &result.stats, pool);
        result.alignments.insert(
            result.alignments.end(),
            std::make_move_iterator(reverse_alignments.begin()),
            std::make_move_iterator(reverse_alignments.end()));
    }

    timer.reset();
    result.chains = chain::chain_alignments(result.alignments,
                                            chain_params_);
    result.stats.chain_seconds = timer.seconds();
    return result;
}

}  // namespace darwin::wga
