#include "wga/pipeline.h"

#include "align/kernels/kernel_registry.h"
#include "obs/trace.h"
#include "seed/seed_index.h"
#include "util/logging.h"
#include "util/strings.h"
#include "util/timer.h"

namespace darwin::wga {

void
PipelineStats::merge(const PipelineStats& other)
{
    seeding.merge(other.seeding);
    filter.merge(other.filter);
    extend.anchors_in += other.extend.anchors_in;
    extend.absorbed += other.extend.absorbed;
    extend.extended += other.extend.extended;
    extend.duplicates += other.extend.duplicates;
    extend.alignments_out += other.extend.alignments_out;
    extend.matched_bases += other.extend.matched_bases;
    extend.extension.merge(other.extend.extension);
    extend.batch.merge(other.extend.batch);
    seed_seconds += other.seed_seconds;
    filter_seconds += other.filter_seconds;
    extend_seconds += other.extend_seconds;
    chain_seconds += other.chain_seconds;
}

void
publish_pipeline_stats(obs::MetricsRegistry& metrics,
                       const PipelineStats& stats,
                       const std::string& prefix)
{
    const auto name = [&prefix](const char* leaf) { return prefix + leaf; };
    metrics.counter(name(".seed.lookups")).add(stats.seeding.seed_lookups);
    metrics.counter(name(".seed.hits")).add(stats.seeding.seed_hits);
    metrics.counter(name(".seed.candidates")).add(stats.seeding.candidates);
    metrics.counter(name(".filter.tiles")).add(stats.filter.tiles);
    metrics.counter(name(".filter.cells")).add(stats.filter.cells);
    metrics.counter(name(".filter.passed")).add(stats.filter.passed);
    metrics.counter(name(".filter.dropped"))
        .add(stats.filter.tiles - stats.filter.passed);
    metrics.counter(name(".extend.anchors_in")).add(stats.extend.anchors_in);
    metrics.counter(name(".extend.absorbed")).add(stats.extend.absorbed);
    metrics.counter(name(".extend.extended")).add(stats.extend.extended);
    metrics.counter(name(".extend.duplicates")).add(stats.extend.duplicates);
    metrics.counter(name(".extend.alignments"))
        .add(stats.extend.alignments_out);
    metrics.counter(name(".extend.matched_bases"))
        .add(stats.extend.matched_bases);
    metrics.counter(name(".extend.tiles")).add(stats.extend.extension.tiles);
    metrics.counter(name(".extend.cells")).add(stats.extend.extension.cells);
    metrics.counter(name(".extend.traceback_ops"))
        .add(stats.extend.extension.traceback_ops);
    metrics.counter(name(".extend.stripes"))
        .add(stats.extend.extension.stripes);
    metrics.counter(name(".extend.xdrop_terminations"))
        .add(stats.extend.extension.xdrop_terminations);
    // Batched-backend counters: absent entirely under the serial
    // backend (no flushes), so serial runs keep the exact metric set
    // they had before batching existed.
    const align::BatchExecStats* batches[] = {&stats.filter.batch,
                                              &stats.extend.batch};
    std::uint64_t batch_flushes = 0;
    for (const align::BatchExecStats* batch : batches) {
        batch_flushes += batch->flushes;
        for (const std::uint32_t size : batch->flush_sizes)
            metrics.histogram(name(".batch.tiles_per_flush"))
                .observe(static_cast<double>(size));
    }
    if (batch_flushes > 0) {
        metrics.counter(name(".batch.flushes")).add(batch_flushes);
        metrics.counter(name(".batch.tiles"))
            .add(stats.filter.batch.tiles + stats.extend.batch.tiles);
        metrics.counter(name(".batch.score_only_hits"))
            .add(stats.filter.batch.score_only_hits +
                 stats.extend.batch.score_only_hits);
    }
    if (stats.filter.batch.device_cycles + stats.extend.batch.device_cycles >
        0) {
        metrics.counter(name(".batch.device_cycles"))
            .add(stats.filter.batch.device_cycles +
                 stats.extend.batch.device_cycles);
        metrics.counter(name(".batch.device_makespan_cycles"))
            .add(stats.filter.batch.device_makespan_cycles +
                 stats.extend.batch.device_makespan_cycles);
    }
    if (stats.seed_seconds > 0.0)
        metrics.histogram(name(".seed.seconds")).observe(stats.seed_seconds);
    if (stats.filter_seconds > 0.0)
        metrics.histogram(name(".filter.seconds"))
            .observe(stats.filter_seconds);
    if (stats.extend_seconds > 0.0)
        metrics.histogram(name(".extend.seconds"))
            .observe(stats.extend_seconds);
    if (stats.chain_seconds > 0.0)
        metrics.histogram(name(".chain.seconds"))
            .observe(stats.chain_seconds);
}

WgaPipeline::WgaPipeline(WgaParams params, chain::ChainParams chain_params)
    : params_(std::move(params)), chain_params_(std::move(chain_params))
{
}

WgaResult
WgaPipeline::run(const seq::Genome& target, const seq::Genome& query,
                 ThreadPool* pool, obs::MetricsRegistry* metrics) const
{
    return run_sequences(target.flattened(), query.flattened(), pool,
                         metrics);
}

namespace {

/** Seed -> filter -> extend one query orientation against the index.
 *  Each stage merges its stats fragment into *stats as it completes and
 *  (when a registry is given) publishes it, so a progress reporter
 *  watching the registry sees per-stage movement mid-run. */
std::vector<align::Alignment>
run_one_strand(const WgaParams& params, const seed::SeedIndex& index,
               std::span<const std::uint8_t> target_span,
               const seq::Sequence& query, align::Strand strand,
               PipelineStats* stats, ThreadPool* pool,
               obs::MetricsRegistry* metrics)
{
    const std::span<const std::uint8_t> query_span{query.codes().data(),
                                                   query.size()};
    const std::int64_t strand_arg =
        strand == align::Strand::Reverse ? 1 : 0;
    Timer timer;

    std::vector<seed::SeedHit> hits;
    {
        obs::ScopedSpan span("seed", "wga");
        span.arg("strand", strand_arg);
        PipelineStats stage;
        const seed::DsoftSeeder seeder(index, params.dsoft);
        hits = seeder.seed_all(query, &stage.seeding, pool);
        stage.seed_seconds = timer.seconds();
        span.arg("hits", static_cast<std::int64_t>(hits.size()));
        stats->merge(stage);
        if (metrics)
            publish_pipeline_stats(*metrics, stage);
    }
    debug(strprintf("seeding(%s): %zu candidate hits",
                    strand == align::Strand::Reverse ? "-" : "+",
                    hits.size()));

    timer.reset();
    std::vector<FilterCandidate> candidates;
    {
        obs::ScopedSpan span("filter", "wga");
        span.arg("strand", strand_arg);
        PipelineStats stage;
        const FilterStage filter(params, target_span, query_span);
        candidates = filter.filter_all(hits, &stage.filter, pool);
        stage.filter_seconds = timer.seconds();
        span.arg("candidates", static_cast<std::int64_t>(candidates.size()));
        stats->merge(stage);
        if (metrics)
            publish_pipeline_stats(*metrics, stage);
    }

    timer.reset();
    std::vector<align::Alignment> alignments;
    {
        obs::ScopedSpan span("extend", "wga");
        span.arg("strand", strand_arg);
        PipelineStats stage;
        const align::GactXTileAligner aligner(params.gactx);
        ExtendStage extend(params, target_span, query_span);
        alignments =
            extend.extend_all(candidates, aligner, &stage.extend, pool);
        stage.extend_seconds = timer.seconds();
        span.arg("alignments", static_cast<std::int64_t>(alignments.size()));
        stats->merge(stage);
        if (metrics)
            publish_pipeline_stats(*metrics, stage);
    }

    for (auto& alignment : alignments)
        alignment.query_strand = strand;
    return alignments;
}

}  // namespace

WgaResult
WgaPipeline::run_sequences(const seq::Sequence& target,
                           const seq::Sequence& query, ThreadPool* pool,
                           obs::MetricsRegistry* metrics) const
{
    WgaResult result;
    Timer timer;
    std::unique_ptr<seed::SeedIndex> index;
    {
        obs::ScopedSpan span("index", "wga");
        const seed::SeedPattern pattern(params_.seed_pattern);
        index = std::make_unique<seed::SeedIndex>(target, pattern);
        // Index construction is accounted as seeding time (Table V).
        PipelineStats stage;
        stage.seed_seconds = timer.seconds();
        result.stats.merge(stage);
        if (metrics)
            publish_pipeline_stats(*metrics, stage);
    }
    return run_impl(*index, target, query, std::move(result), pool,
                    metrics);
}

WgaResult
WgaPipeline::run_with_index(const seed::SeedIndex& index,
                            const seq::Sequence& target,
                            const seq::Sequence& query, ThreadPool* pool,
                            obs::MetricsRegistry* metrics) const
{
    if (index.pattern().pattern() != params_.seed_pattern)
        fatal(strprintf("run_with_index: index seed shape %s does not "
                        "match the pipeline's %s",
                        index.pattern().pattern().c_str(),
                        params_.seed_pattern.c_str()));
    return run_impl(index, target, query, WgaResult{}, pool, metrics);
}

WgaResult
WgaPipeline::run_impl(const seed::SeedIndex& index,
                      const seq::Sequence& target,
                      const seq::Sequence& query, WgaResult result,
                      ThreadPool* pool,
                      obs::MetricsRegistry* metrics) const
{
    // Umbrella span over the whole run: per-request dumps group the
    // seed/filter/extend/chain children under one "pipeline" row, and
    // the span carries the workload size for at-a-glance triage.
    obs::ScopedSpan pipeline_span("pipeline", "wga");
    pipeline_span.arg("target_bases",
                      static_cast<std::int64_t>(target.size()));
    pipeline_span.arg("query_bases",
                      static_cast<std::int64_t>(query.size()));

    const std::span<const std::uint8_t> target_span{target.codes().data(),
                                                    target.size()};
    if (metrics != nullptr) {
        // Which kernel implementation the filter and extension stages
        // dispatch to (id: 0 scalar, 1 sse42, 2 avx2). All kernels are
        // bit-identical, so every other wga.* value is kernel-invariant.
        const int kernel_id =
            align::kernels::KernelRegistry::instance().active().id;
        metrics->gauge("wga.filter.kernel").set(kernel_id);
        metrics->gauge("wga.extend.kernel").set(kernel_id);
        // Which batch backend stages dispatch through (id: 0 serial,
        // 1 cpu-scalar, 2 cpu-simd, 3 cycle-model). Backends are
        // bit-identical too; only wga.batch.* shapes vary.
        metrics->gauge("wga.batch.backend")
            .set(align::kernels::KernelRegistry::instance()
                     .active_backend().id);
    }

    // Coordinates of the reverse pass stay in reverse-complement space
    // (the MAF '-' strand convention).
    const std::size_t num_strands = params_.align_both_strands ? 2 : 1;
    seq::Sequence query_rc;
    if (num_strands == 2)
        query_rc = query.reverse_complement();

    std::vector<std::vector<align::Alignment>> per_strand(num_strands);
    std::vector<PipelineStats> strand_stats(num_strands);
    const auto run_strand = [&](std::size_t s) {
        per_strand[s] = run_one_strand(
            params_, index, target_span, s == 0 ? query : query_rc,
            s == 0 ? align::Strand::Forward : align::Strand::Reverse,
            &strand_stats[s], pool, metrics);
    };
    if (pool != nullptr && num_strands == 2) {
        // The strand passes are independent: run them as two concurrent
        // streams over the shared pool. Their inner parallel_for calls
        // nest safely because waiting callers help drain the pool queue.
        pool->parallel_for(0, num_strands, run_strand, 1);
    } else {
        for (std::size_t s = 0; s < num_strands; ++s)
            run_strand(s);
    }
    for (std::size_t s = 0; s < num_strands; ++s) {
        result.stats.merge(strand_stats[s]);
        result.alignments.insert(
            result.alignments.end(),
            std::make_move_iterator(per_strand[s].begin()),
            std::make_move_iterator(per_strand[s].end()));
    }

    Timer timer;
    {
        obs::ScopedSpan span("chain", "wga");
        result.chains = chain::chain_alignments(result.alignments,
                                                chain_params_);
        PipelineStats stage;
        stage.chain_seconds = timer.seconds();
        result.stats.chain_seconds = stage.chain_seconds;
        span.arg("chains", static_cast<std::int64_t>(result.chains.size()));
        if (metrics)
            publish_pipeline_stats(*metrics, stage);
    }
    return result;
}

}  // namespace darwin::wga
