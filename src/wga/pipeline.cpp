#include "wga/pipeline.h"

#include "seed/seed_index.h"
#include "util/logging.h"
#include "util/strings.h"
#include "util/timer.h"

namespace darwin::wga {

void
PipelineStats::merge(const PipelineStats& other)
{
    seeding.merge(other.seeding);
    filter.merge(other.filter);
    extend.anchors_in += other.extend.anchors_in;
    extend.absorbed += other.extend.absorbed;
    extend.extended += other.extend.extended;
    extend.duplicates += other.extend.duplicates;
    extend.alignments_out += other.extend.alignments_out;
    extend.extension.merge(other.extend.extension);
    seed_seconds += other.seed_seconds;
    filter_seconds += other.filter_seconds;
    extend_seconds += other.extend_seconds;
    chain_seconds += other.chain_seconds;
}

WgaPipeline::WgaPipeline(WgaParams params, chain::ChainParams chain_params)
    : params_(std::move(params)), chain_params_(std::move(chain_params))
{
}

WgaResult
WgaPipeline::run(const seq::Genome& target, const seq::Genome& query,
                 ThreadPool* pool) const
{
    return run_sequences(target.flattened(), query.flattened(), pool);
}

namespace {

/** Seed -> filter -> extend one query orientation against the index. */
std::vector<align::Alignment>
run_one_strand(const WgaParams& params, const seed::SeedIndex& index,
               std::span<const std::uint8_t> target_span,
               const seq::Sequence& query, align::Strand strand,
               PipelineStats* stats, ThreadPool* pool)
{
    const std::span<const std::uint8_t> query_span{query.codes().data(),
                                                   query.size()};
    Timer timer;
    const seed::DsoftSeeder seeder(index, params.dsoft);
    const std::vector<seed::SeedHit> hits =
        seeder.seed_all(query, &stats->seeding, pool);
    stats->seed_seconds += timer.seconds();
    debug(strprintf("seeding(%s): %zu candidate hits",
                    strand == align::Strand::Reverse ? "-" : "+",
                    hits.size()));

    timer.reset();
    const FilterStage filter(params, target_span, query_span);
    const std::vector<FilterCandidate> candidates =
        filter.filter_all(hits, &stats->filter, pool);
    stats->filter_seconds += timer.seconds();

    timer.reset();
    const align::GactXTileAligner aligner(params.gactx);
    ExtendStage extend(params, target_span, query_span);
    std::vector<align::Alignment> alignments =
        extend.extend_all(candidates, aligner, &stats->extend, pool);
    stats->extend_seconds += timer.seconds();

    for (auto& alignment : alignments)
        alignment.query_strand = strand;
    return alignments;
}

}  // namespace

WgaResult
WgaPipeline::run_sequences(const seq::Sequence& target,
                           const seq::Sequence& query,
                           ThreadPool* pool) const
{
    WgaResult result;
    const std::span<const std::uint8_t> target_span{target.codes().data(),
                                                    target.size()};

    Timer timer;
    const seed::SeedPattern pattern(params_.seed_pattern);
    const seed::SeedIndex index(target, pattern);
    result.stats.seed_seconds = timer.seconds();

    // Coordinates of the reverse pass stay in reverse-complement space
    // (the MAF '-' strand convention).
    const std::size_t num_strands = params_.align_both_strands ? 2 : 1;
    seq::Sequence query_rc;
    if (num_strands == 2)
        query_rc = query.reverse_complement();

    std::vector<std::vector<align::Alignment>> per_strand(num_strands);
    std::vector<PipelineStats> strand_stats(num_strands);
    const auto run_strand = [&](std::size_t s) {
        per_strand[s] = run_one_strand(
            params_, index, target_span, s == 0 ? query : query_rc,
            s == 0 ? align::Strand::Forward : align::Strand::Reverse,
            &strand_stats[s], pool);
    };
    if (pool != nullptr && num_strands == 2) {
        // The strand passes are independent: run them as two concurrent
        // streams over the shared pool. Their inner parallel_for calls
        // nest safely because waiting callers help drain the pool queue.
        pool->parallel_for(0, num_strands, run_strand, 1);
    } else {
        for (std::size_t s = 0; s < num_strands; ++s)
            run_strand(s);
    }
    for (std::size_t s = 0; s < num_strands; ++s) {
        result.stats.merge(strand_stats[s]);
        result.alignments.insert(
            result.alignments.end(),
            std::make_move_iterator(per_strand[s].begin()),
            std::make_move_iterator(per_strand[s].end()));
    }

    timer.reset();
    result.chains = chain::chain_alignments(result.alignments,
                                            chain_params_);
    result.stats.chain_seconds = timer.seconds();
    return result;
}

}  // namespace darwin::wga
