#include "wga/params.h"

namespace darwin::wga {

WgaParams
WgaParams::darwin_defaults()
{
    WgaParams params;
    params.filter_mode = FilterMode::Gapped;
    params.filter_threshold = 4000;
    params.extension_threshold = 4000;
    return params;
}

WgaParams
WgaParams::lastz_defaults()
{
    WgaParams params;
    params.filter_mode = FilterMode::Ungapped;
    params.filter_threshold = 3000;
    params.extension_threshold = 3000;
    return params;
}

}  // namespace darwin::wga
