/**
 * @file
 * The filtering stage: turns seed hits into extension anchors.
 *
 * Gapped mode cuts a Tf x Tf tile with the seed hit at its center and
 * runs banded Smith-Waterman; the hit passes iff Vmax >= Hf and the
 * anchor is xmax (paper §III-C). Ungapped mode is the LASTZ baseline:
 * X-drop extension along the diagonal, anchor at the midpoint of the best
 * segment. This stage dominates WGA runtime, so it is parallelized over
 * candidates by the pipeline.
 */
#ifndef DARWIN_WGA_FILTER_STAGE_H
#define DARWIN_WGA_FILTER_STAGE_H

#include <optional>
#include <vector>

#include "align/banded_sw.h"
#include "align/batch.h"
#include "seed/dsoft.h"
#include "seq/base_view.h"
#include "util/thread_pool.h"
#include "wga/params.h"

namespace darwin::wga {

/** An anchor that passed the filter. */
struct FilterCandidate {
    std::uint64_t anchor_t = 0;
    std::uint64_t anchor_q = 0;
    align::Score filter_score = 0;
};

/** Work counters for the filtering stage. */
struct FilterStats {
    std::uint64_t tiles = 0;
    std::uint64_t cells = 0;
    std::uint64_t passed = 0;
    /** Batched-backend flush counters (empty under the serial backend
     *  and in ungapped mode). */
    align::BatchExecStats batch;

    void
    merge(const FilterStats& other)
    {
        tiles += other.tiles;
        cells += other.cells;
        passed += other.passed;
        batch.merge(other.batch);
    }
};

/**
 * Canonical extension order: descending filter score, ties broken by
 * anchor position. filter_all and the batch engine's shard merge share
 * this sort, so sharded filtering reproduces the serial candidate order
 * (and therefore the extension stage's output) exactly.
 */
void sort_candidates(std::vector<FilterCandidate>& candidates);

/** Filtering over one (target, query) span pair. */
class FilterStage {
  public:
    /**
     * Views may be byte- or packed-backed; results are bit-identical
     * either way (gapped tiles decode their Tf x Tf window on demand).
     * Ungapped (LASTZ) filtering scans unbounded diagonals and is only
     * supported on byte-backed views — packed + ungapped is a fatal
     * configuration error.
     */
    FilterStage(const WgaParams& params, seq::BaseView target,
                seq::BaseView query);

    FilterStage(const WgaParams& params,
                std::span<const std::uint8_t> target,
                std::span<const std::uint8_t> query)
        : FilterStage(params, seq::BaseView(target), seq::BaseView(query))
    {
    }

    /** Filter one seed hit; nullopt when it fails the threshold. */
    std::optional<FilterCandidate> filter(const seed::SeedHit& hit,
                                          FilterStats* stats = nullptr) const;

    /**
     * Filter hits preserving hit order: slot i is hit i's candidate
     * (nullopt when it failed). When the active batch backend is not
     * `serial` and the mode is gapped, the hits' BSW tiles are staged
     * into bounded batches (flushed at params.batch_flush_tiles tiles
     * or params.batch_flush_deadline seconds, `batch.flush` fault
     * probe per flush) and executed through the backend — per-hit
     * verdicts and anchors stay bit-identical to per-hit dispatch.
     * Both filter_all and the batch scheduler route through this.
     */
    std::vector<std::optional<FilterCandidate>> filter_hits(
        const std::vector<seed::SeedHit>& hits, FilterStats* stats = nullptr,
        ThreadPool* pool = nullptr) const;

    /**
     * Filter a batch (optionally across a pool). The returned candidates
     * are sorted by descending filter score (the extension order), ties
     * broken by position for determinism.
     */
    std::vector<FilterCandidate> filter_all(
        const std::vector<seed::SeedHit>& hits, FilterStats* stats = nullptr,
        ThreadPool* pool = nullptr) const;

  private:
    /** The gapped-mode BSW tile cut around a seed hit. */
    struct TileWindow {
        std::uint64_t t0 = 0;
        std::uint64_t q0 = 0;
        std::size_t tlen = 0;
        std::size_t qlen = 0;
    };
    TileWindow gapped_window(const seed::SeedHit& hit) const;

    const WgaParams& params_;
    seq::BaseView target_;
    seq::BaseView query_;
    std::size_t seed_span_;
};

}  // namespace darwin::wga

#endif  // DARWIN_WGA_FILTER_STAGE_H
