/**
 * @file
 * The extension stage: anchors -> full local alignments.
 *
 * Anchors are processed in descending filter-score order. Before an
 * anchor is extended, it is checked against the *anchor absorption* grid
 * (paper §III-D): if a previously produced alignment already passes
 * through the anchor's neighborhood, the anchor would only re-derive a
 * duplicate alignment and is skipped. Surviving anchors are extended
 * left+right with the configured TileAligner (GACT-X by default), and the
 * stitched alignment is kept iff its score reaches He.
 */
#ifndef DARWIN_WGA_EXTEND_STAGE_H
#define DARWIN_WGA_EXTEND_STAGE_H

#include <functional>
#include <optional>
#include <span>
#include <unordered_set>
#include <vector>

#include "align/batch.h"
#include "align/extension.h"
#include "util/thread_pool.h"
#include "wga/filter_stage.h"
#include "wga/params.h"

namespace darwin::wga {

/** Work counters for the extension stage. */
struct ExtendStats {
    std::uint64_t anchors_in = 0;
    std::uint64_t absorbed = 0;
    std::uint64_t extended = 0;
    /** Extensions dropped because their path re-covered an existing
     *  alignment (convergent duplicates, e.g. via tandem repeats). */
    std::uint64_t duplicates = 0;
    std::uint64_t alignments_out = 0;
    /** Total bases in matched blocks of the alignments kept. */
    std::uint64_t matched_bases = 0;
    align::ExtensionStats extension;
    /** Batched-backend flush counters (empty under the serial backend). */
    align::BatchExecStats batch;
};

/** Extension with anchor absorption over one span pair. */
class ExtendStage {
  public:
    /** Views may be byte- or packed-backed; alignments are
     *  bit-identical either way (packed backing decodes per tile). */
    ExtendStage(const WgaParams& params, seq::BaseView target,
                seq::BaseView query);

    ExtendStage(const WgaParams& params,
                std::span<const std::uint8_t> target,
                std::span<const std::uint8_t> query)
        : ExtendStage(params, seq::BaseView(target), seq::BaseView(query))
    {
    }

    /**
     * Extend candidates (already sorted by descending filter score) into
     * alignments.
     *
     * Absorption makes later anchors depend on earlier results, so the
     * stage proceeds in fixed-size *waves*: the next kWave unabsorbed
     * anchors are extended (in parallel when a pool is given), then their
     * results are merged in order with duplicate suppression. The wave
     * size is a constant — never the pool size — so results are
     * identical for any thread count.
     *
     * When the active batch backend is not `serial` and the aligner is
     * the GACT-X engine, a wave executes *batched*: each live anchor's
     * current tile is co-scheduled into a bounded TileBatch (flushed
     * through the backend at params.batch_flush_tiles tiles, with a
     * `batch.flush` fault probe before each flush), results are fed
     * back and the next round of tiles staged until the wave drains.
     * Per-tile inputs and outputs are identical to the serial path, so
     * the stage's alignments are bit-identical under every backend.
     */
    std::vector<align::Alignment> extend_all(
        const std::vector<FilterCandidate>& candidates,
        const align::TileAligner& aligner, ExtendStats* stats = nullptr,
        ThreadPool* pool = nullptr);

    /**
     * Pull-based extend_all: candidates arrive one at a time from
     * `next` (nullopt = exhausted) instead of a materialized vector.
     * The caller must deliver them in the canonical sort_candidates
     * order; given that, the output is identical to extend_all over
     * the equivalent vector. This is the bounded-memory entry point —
     * the streaming pipeline drains its candidate spill buffer
     * straight into it, so at most one wave of anchors is resident.
     */
    std::vector<align::Alignment> extend_stream(
        const std::function<std::optional<FilterCandidate>()>& next,
        const align::TileAligner& aligner, ExtendStats* stats = nullptr,
        ThreadPool* pool = nullptr);

    /** Extension wave width (see extend_all). */
    static constexpr std::size_t kWave = 16;

  private:
    /** True if the anchor's grid neighborhood is already covered. */
    bool absorbed(std::uint64_t anchor_t, std::uint64_t anchor_q) const;

    /** Grid cells an alignment's path passes through (sampled). The
     *  returned span aliases path_scratch_ and is valid until the next
     *  call — the merge loop consumes each path before requesting the
     *  next one. */
    std::span<const std::uint64_t> path_cells(
        const align::Alignment& alignment);

    /** Fraction of the given cells already on the absorption grid. */
    double covered_fraction(std::span<const std::uint64_t> cells) const;

    std::uint64_t
    cell_key(std::uint64_t t_cell, std::uint64_t q_cell) const
    {
        return (t_cell << 27) ^ q_cell;
    }

    /**
     * Extend one wave through the batch backend (see extend_all).
     * Fills `extended` (one alignment per wave entry, in wave order)
     * and merges per-anchor extension stats into `local` exactly as
     * the serial path does.
     */
    void extend_wave_batched(
        const std::vector<FilterCandidate>& wave,
        const align::GactXParams& gactx_params,
        const align::AlignBackend& backend,
        std::vector<align::Alignment>& extended, ExtendStats& local,
        ThreadPool* pool);

    const WgaParams& params_;
    seq::BaseView target_;
    seq::BaseView query_;
    std::unordered_set<std::uint64_t> covered_cells_;
    /** Scratch for path_cells, reused across the merge loop. */
    std::vector<std::uint64_t> path_scratch_;
    /** Adaptive score-only gating: tiles consumed / tiles dead so far
     *  in this stage instance. A flush probes iff dead tiles are the
     *  majority (dead * 2 > seen) — noise-dominated workloads pay the
     *  cheap probe, homologous ones skip it. Sequential staging makes
     *  the gate deterministic; probing never changes results. */
    std::uint64_t probe_seen_ = 0;
    std::uint64_t probe_dead_ = 0;
};

}  // namespace darwin::wga

#endif  // DARWIN_WGA_EXTEND_STAGE_H
