/**
 * @file
 * MAF (Multiple Alignment Format) output — the interchange format both
 * LASTZ and Darwin-WGA emit (paper §V-E) before chaining/visualization.
 */
#ifndef DARWIN_WGA_MAF_H
#define DARWIN_WGA_MAF_H

#include <iosfwd>
#include <vector>

#include "align/alignment.h"
#include "seq/genome.h"

namespace darwin::wga {

/**
 * Write alignments as MAF. Flat coordinates are resolved back to
 * chromosome names/offsets; alignments spanning a chromosome separator
 * are skipped with a warning (they cannot occur for real pipeline output
 * because separators never align).
 *
 * A non-empty `comment` is emitted as a `# comment` line right after the
 * `##maf` header — the batch runner uses it to flag pairs aligned with
 * degraded (retry) parameters.
 */
void write_maf(std::ostream& out,
               const std::vector<align::Alignment>& alignments,
               const seq::Genome& target, const seq::Genome& query,
               const std::string& comment = "");

/** Convenience: write to a file path. */
void write_maf_file(const std::string& path,
                    const std::vector<align::Alignment>& alignments,
                    const seq::Genome& target, const seq::Genome& query,
                    const std::string& comment = "");

}  // namespace darwin::wga

#endif  // DARWIN_WGA_MAF_H
