/**
 * @file
 * Work-unit decomposition for the streaming batch-alignment engine.
 *
 * A shard is a contiguous slice of one query strand that flows through
 * seed -> filter as an independent work unit. Two properties make shard
 * boundaries lossless with respect to the serial pipeline:
 *
 *  1. Shard boundaries are aligned to the D-SOFT chunk size, so a shard
 *     covers whole seeding chunks and the union of per-shard seed hits
 *     equals the serial seed_all() hit set exactly (D-SOFT's diagonal
 *     band accumulation is chunk-local by construction).
 *  2. Each shard carries an *overlap margin* — [margin_begin, margin_end)
 *     extends the owned range by the seed-pattern span plus the filter
 *     tile, the furthest any seed window or filter tile rooted inside
 *     the shard can read. Stages that materialize a shard's bytes (for
 *     cache locality or accelerator DMA) must fetch the margin-extended
 *     range; stages that hold the full sequence span simply read
 *     through the boundary.
 */
#ifndef DARWIN_BATCH_SHARD_H
#define DARWIN_BATCH_SHARD_H

#include <cstddef>
#include <vector>

#include "wga/params.h"

namespace darwin::batch {

/** One query work unit. Positions are bp offsets into the strand. */
struct Shard {
    std::size_t index = 0;         ///< position in the shard plan
    std::size_t begin = 0;         ///< first owned bp (chunk-aligned)
    std::size_t end = 0;           ///< one past the last owned bp
    std::size_t margin_begin = 0;  ///< begin minus overlap margin (clamped)
    std::size_t margin_end = 0;    ///< end plus overlap margin (clamped)

    std::size_t size() const { return end - begin; }

    /** Owned range plus margins — what a fetch must cover. */
    std::size_t fetch_size() const { return margin_end - margin_begin; }

    bool operator==(const Shard&) const = default;
};

/**
 * Cut [0, sequence_length) into shards of ~shard_length bp.
 *
 * @param sequence_length Strand length in bp.
 * @param shard_length    Target shard size; rounded up to a multiple of
 *                        `alignment` (minimum one aligned unit).
 * @param alignment       Boundary alignment in bp (the D-SOFT chunk
 *                        size); 0 is promoted to 1.
 * @param margin          Overlap margin in bp added on both sides of the
 *                        owned range, clamped to the sequence.
 *
 * The shards partition the sequence exactly: consecutive owned ranges
 * abut and their union is [0, sequence_length). An empty sequence
 * yields an empty plan.
 */
std::vector<Shard> make_shards(std::size_t sequence_length,
                               std::size_t shard_length,
                               std::size_t alignment, std::size_t margin);

/**
 * The margin the WGA stages need: the seed-pattern span (a seed window
 * rooted at the last owned position reads this far) plus the filter
 * tile (the banded-SW tile is centered on the seed and can extend a
 * tile beyond it).
 */
std::size_t default_shard_margin(const wga::WgaParams& params);

}  // namespace darwin::batch

#endif  // DARWIN_BATCH_SHARD_H
