#include "batch/scheduler.h"

#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <exception>
#include <memory>
#include <mutex>
#include <new>
#include <thread>
#include <unordered_map>

#include "align/gactx.h"
#include "align/kernels/kernel_registry.h"
#include "batch/shard.h"
#include "fault/fault_plan.h"
#include "index/index_cache.h"
#include "index/index_io.h"
#include "obs/trace.h"
#include "seed/dsoft.h"
#include "seed/seed_index.h"
#include "util/logging.h"
#include "util/strings.h"
#include "util/timer.h"
#include "util/work_queue.h"
#include "wga/extend_stage.h"
#include "wga/filter_stage.h"

namespace darwin::batch {

namespace {

/** Work items flowing between the stages. */
struct PrepareTask {
    std::size_t pair = 0;
};
struct SeedTask {
    std::size_t pair = 0;
    std::size_t strand = 0;
    std::size_t shard = 0;
};
struct FilterTask {
    std::size_t pair = 0;
    std::size_t strand = 0;
    std::size_t shard = 0;
    std::vector<seed::SeedHit> hits;
};
struct ExtendTask {
    std::size_t pair = 0;
    std::size_t strand = 0;
};
struct ChainTask {
    std::size_t pair = 0;
};

/** Per-strand dataflow state of one pair. */
struct StrandState {
    const seq::Sequence* query = nullptr;  ///< oriented strand sequence
    std::span<const std::uint8_t> query_span;
    std::vector<Shard> shards;
    std::unique_ptr<wga::FilterStage> filter;
    /** Candidates per shard, merged canonically when the last shard
     *  finishes filtering. */
    std::vector<std::vector<wga::FilterCandidate>> shard_candidates;
    std::atomic<std::size_t> shards_remaining{0};
    std::vector<wga::FilterCandidate> candidates;
    std::vector<align::Alignment> alignments;

    void
    reset()
    {
        query = nullptr;
        query_span = {};
        shards.clear();
        filter.reset();
        shard_candidates.clear();
        shards_remaining.store(0);
        candidates.clear();
        alignments.clear();
    }
};

/** Everything the engine tracks for one manifest entry. */
struct PairState {
    const BatchJob* job = nullptr;
    std::size_t pair_index = 0;
    /** This pair's parameters — a copy of the run's params that the
     *  degraded retry narrows. Stages reference it, so it only changes
     *  between attempts (when no task of the pair is running). */
    wga::WgaParams params;
    const seq::Sequence* target_flat = nullptr;
    std::span<const std::uint8_t> target_span;
    seq::Sequence query_rc;  ///< owned reverse complement (both-strands)
    /** Borrowed from the engine's index cache; pairs sharing a target
     *  (same sequence digest) point at the same table. */
    std::shared_ptr<const seed::SeedIndex> index;
    std::unique_ptr<seed::DsoftSeeder> seeder;
    std::array<StrandState, 2> strands;
    std::size_t num_strands = 1;
    std::atomic<std::size_t> strands_remaining{1};
    std::mutex stats_mutex;
    wga::WgaResult result;

    // --- fault-tolerance state ---
    fault::CancelToken token;
    /** Tasks enqueued but not yet finished (incremented before every
     *  push, decremented when the task completes or is dropped). A
     *  failed pair settles — retries or quarantines — only when this
     *  drains to zero, so no stale task of the old attempt can touch
     *  the new attempt's state. */
    std::atomic<std::size_t> inflight{0};
    std::atomic<bool> failed{false};
    std::atomic<bool> terminal{false};
    std::mutex fail_mutex;
    std::string fail_stage;
    fault::FailReason fail_reason = fault::FailReason::None;
    std::string fail_message;
    std::uint32_t attempts = 0;
    bool degraded = false;
    double work_seconds = 0.0;  ///< guarded by stats_mutex
    BatchPairResult out;        ///< filled at finalize
};

/** The dataflow engine for one run() invocation. */
class Engine {
  public:
    Engine(const BatchOptions& options, MetricsRegistry& metrics,
           const std::vector<BatchJob>& jobs)
        : options_(options), metrics_(metrics), jobs_(jobs),
          prepare_queue_(std::max<std::size_t>(jobs.size(), 1)),
          seed_queue_(options.queue_capacity),
          filter_queue_(options.queue_capacity),
          extend_queue_(options.queue_capacity),
          chain_queue_(options.queue_capacity),
          pairs_remaining_(jobs.size())
    {
        if (options_.index_cache != nullptr) {
            cache_ = options_.index_cache;
        } else {
            // Run-local cache: capacity for every distinct target in the
            // manifest (pairs_.size() is a safe upper bound). Metrics are
            // published by the engine itself (batch.index.*), so the
            // cache runs unmetered.
            owned_cache_ = std::make_unique<index::IndexCache>(
                std::max<std::size_t>(jobs.size(), 1));
            cache_ = owned_cache_.get();
        }
        pairs_.reserve(jobs.size());
        for (std::size_t p = 0; p < jobs_.size(); ++p) {
            auto pair = std::make_unique<PairState>();
            pair->job = &jobs_[p];
            pair->pair_index = p;
            pair->params = options_.params;
            pairs_.push_back(std::move(pair));
        }
    }

    std::vector<BatchPairResult>
    run()
    {
        if (jobs_.empty())
            return {};
        // Materialize lazily-built flattened genomes on this thread:
        // jobs may share Genome objects, and Genome::flattened() is not
        // safe to first-build concurrently.
        for (const BatchJob& job : jobs_) {
            require(job.target != nullptr && job.query != nullptr,
                    "batch: job missing target/query genome");
            if (options_.streaming) {
                // Streaming pairs read packed storage only, and build
                // their (transient, sharded) seed tables per pair — no
                // byte caches, no cache digests.
                job.target->flattened_packed();
                job.query->flattened_packed();
                continue;
            }
            job.target->flattened();
            job.query->flattened();
            // Digest each distinct target once: the cache key that lets
            // pairs sharing a target share one seed index.
            if (!target_digests_.contains(job.target))
                target_digests_.emplace(
                    job.target,
                    index::sequence_digest(job.target->flattened()));
        }
        metrics_.counter("batch.pairs").add(jobs_.size());
        // Which kernel implementation the filter and extension stages
        // dispatch to (id: 0 scalar, 1 sse42, 2 avx2) — same gauges the
        // serial pipeline publishes, so batch and serial runs stay
        // comparable.
        const int kernel_id =
            align::kernels::KernelRegistry::instance().active().id;
        metrics_.gauge("wga.filter.kernel").set(kernel_id);
        metrics_.gauge("wga.extend.kernel").set(kernel_id);
        metrics_.gauge("wga.batch.backend")
            .set(align::kernels::KernelRegistry::instance()
                     .active_backend()
                     .id);

        for (std::size_t p = 0; p < jobs_.size(); ++p) {
            PrepareTask task{p};
            enqueue(prepare_queue_, task, "prepare", kPrepare, p);
        }

        std::size_t num_workers = options_.num_threads;
        if (num_workers == 0) {
            num_workers = std::max<std::size_t>(
                1, std::thread::hardware_concurrency());
        }
        std::vector<std::thread> workers;
        workers.reserve(num_workers);
        for (std::size_t w = 0; w < num_workers; ++w)
            workers.emplace_back([this] { worker_loop(); });
        for (auto& worker : workers)
            worker.join();

        // The run is over: every stage queue is drained (or abandoned on
        // a fatal abort), so the depth gauges must read zero again.
        for (const char* stage :
             {"prepare", "seed", "filter", "extend", "chain"})
            metrics_.gauge(strprintf("batch.queue.%s.depth", stage)).set(0);

        if (fatal_)
            std::rethrow_exception(fatal_);

        std::vector<BatchPairResult> out;
        out.reserve(pairs_.size());
        for (auto& pair : pairs_)
            out.push_back(std::move(pair->out));
        return out;
    }

  private:
    /** Stage depth, deepest first; used to bound help-drain recursion. */
    enum Stage : int {
        kChain = 0,
        kExtend = 1,
        kFilter = 2,
        kSeed = 3,
        kPrepare = 4,
    };

    /** Register a task with its pair's inflight count, then push. The
     *  increment happens before the push so the pair can never settle
     *  (retry/quarantine) while this task is still queued. */
    template <typename Queue, typename Task>
    void
    enqueue(Queue& queue, Task& task, const char* stage, int stage_level,
            std::size_t pair)
    {
        pairs_[pair]->inflight.fetch_add(1, std::memory_order_acq_rel);
        push_task(queue, task, stage, stage_level);
    }

    /**
     * Push to a stage queue without ever blocking the pipeline: when the
     * queue is full, help drain work at the target stage or deeper until
     * space opens. Helping only downstream keeps the recursion bounded
     * by the pipeline depth, and is what lets a single worker thread run
     * the whole dataflow without deadlocking on backpressure.
     */
    template <typename Queue, typename Task>
    void
    push_task(Queue& queue, Task& task, const char* stage, int stage_level)
    {
        while (!queue.try_push(task)) {
            if (done_.load(std::memory_order_acquire)) {
                // Aborting; drop the task but keep the inflight count
                // honest (nothing settles after done_, run() rethrows).
                pair_of(task)->inflight.fetch_sub(
                    1, std::memory_order_acq_rel);
                return;
            }
            if (!run_one(stage_level))
                std::this_thread::yield();
        }
        metrics_.gauge(strprintf("batch.queue.%s.depth", stage))
            .set(static_cast<std::int64_t>(queue.size()));
        wake_.notify_one();
    }

    template <typename Task>
    PairState*
    pair_of(const Task& task)
    {
        return pairs_[task.pair].get();
    }

    void
    worker_loop()
    {
        while (!done_.load(std::memory_order_acquire)) {
            if (fault::shutdown_requested())
                handle_shutdown();
            if (run_one(kPrepare))
                continue;
            // Timed wait: a plain wait could miss a notify that raced
            // with the queue polls; 1ms bounds the idle-retry latency.
            std::unique_lock<std::mutex> lock(wake_mutex_);
            wake_.wait_for(lock, std::chrono::milliseconds(1));
        }
    }

    /** Run one task at `max_level` or deeper (deepest first). False
     *  when those queues are all empty (work may still be in flight on
     *  other workers). */
    bool
    run_one(int max_level)
    {
        if (auto task = chain_queue_.try_pop()) {
            after_pop("chain", chain_queue_);
            run_pair_task(task->pair, "chain", "batch.chain", false,
                          [&] { do_chain(*task); });
            return true;
        }
        if (max_level >= kExtend) {
            if (auto task = extend_queue_.try_pop()) {
                after_pop("extend", extend_queue_);
                run_pair_task(task->pair, "extend", "batch.extend", false,
                              [&] { do_extend(*task); });
                return true;
            }
        }
        if (max_level >= kFilter) {
            if (auto task = filter_queue_.try_pop()) {
                after_pop("filter", filter_queue_);
                run_pair_task(task->pair, "filter", "batch.filter", false,
                              [&] { do_filter(*task); });
                return true;
            }
        }
        if (max_level >= kSeed) {
            if (auto task = seed_queue_.try_pop()) {
                after_pop("seed", seed_queue_);
                run_pair_task(task->pair, "seed", "batch.seed", false,
                              [&] { do_seed(*task); });
                return true;
            }
        }
        if (max_level >= kPrepare) {
            if (auto task = prepare_queue_.try_pop()) {
                after_pop("prepare", prepare_queue_);
                run_pair_task(task->pair, "prepare", "batch.prepare", true,
                              [&] { do_prepare(*task); });
                return true;
            }
        }
        return false;
    }

    /**
     * The per-pair isolation boundary every stage task runs inside. The
     * pair's CancelToken is installed for the calling thread (so kernel
     * probes charge and poll it), and the exception ladder routes each
     * failure class: FatalError aborts the whole run with pair+stage
     * context, everything else fails only this pair. Tasks of an
     * already-failed pair are dropped here, which is how a poisoned
     * pair's queued work drains without executing.
     */
    template <typename Fn>
    void
    run_pair_task(std::size_t idx, const char* stage, const char* probe,
                  bool first_task_of_attempt, Fn&& fn)
    {
        PairState& pair = *pairs_[idx];
        if (fault::shutdown_requested()) {
            handle_shutdown();
            fail_pair(idx, stage, fault::FailReason::Interrupted,
                      "run interrupted by shutdown request");
        }
        if (pair.failed.load(std::memory_order_acquire) ||
            pair.terminal.load(std::memory_order_acquire)) {
            task_done(pair);
            return;
        }
        if (first_task_of_attempt) {
            // Arm here — when the pair *starts executing* — so pairs
            // queued behind a deep manifest don't burn wall budget
            // while waiting.
            pair.token.arm(options_.pair_budget);
            ++pair.attempts;
        }
        Timer timer;
        fault::ContextScope scope(&pair.token, idx);
        try {
            fault::poll(probe);
            fn();
        } catch (const FatalError&) {
            fatal_abort(idx, stage, std::current_exception());
            return;
        } catch (const fault::CancelledError& error) {
            fail_pair(idx, stage,
                      fault::fail_reason_from_cancel(error.reason()),
                      error.what());
        } catch (const fault::InjectedFault& error) {
            fail_pair(idx, stage, fault::FailReason::Injected, error.what());
        } catch (const std::bad_alloc& error) {
            fail_pair(idx, stage, fault::FailReason::OutOfMemory,
                      error.what());
        } catch (const std::exception& error) {
            fail_pair(idx, stage, fault::FailReason::Exception, error.what());
        }
        {
            std::lock_guard<std::mutex> lock(pair.stats_mutex);
            pair.work_seconds += timer.seconds();
        }
        task_done(pair);
    }

    /** First failure wins; later failures of the same pair are noise
     *  from tasks that were already in flight. */
    void
    fail_pair(std::size_t idx, const char* stage, fault::FailReason reason,
              const std::string& message)
    {
        PairState& pair = *pairs_[idx];
        std::lock_guard<std::mutex> lock(pair.fail_mutex);
        if (pair.terminal.load(std::memory_order_acquire) ||
            pair.failed.load(std::memory_order_acquire))
            return;
        pair.fail_stage = stage;
        pair.fail_reason = reason;
        pair.fail_message = message;
        pair.failed.store(true, std::memory_order_release);
        // Stop the pair's other in-flight tasks at their next poll.
        pair.token.cancel(fault::CancelReason::External);
        if (reason == fault::FailReason::Injected)
            metrics_.counter("batch.fault.injected").add(1);
        if (fault::is_budget_overrun(reason))
            metrics_.counter("batch.fault.budget_overruns").add(1);
    }

    void
    task_done(PairState& pair)
    {
        if (pair.inflight.fetch_sub(1, std::memory_order_acq_rel) == 1 &&
            pair.failed.load(std::memory_order_acquire) &&
            !done_.load(std::memory_order_acquire))
            settle_failed(pair);
    }

    /** All tasks of a failed pair have drained: decide its fate. Runs
     *  on exactly one thread (the one that drained the last task). */
    void
    settle_failed(PairState& pair)
    {
        if (pair.terminal.load(std::memory_order_acquire))
            return;
        if (pair.fail_reason == fault::FailReason::Interrupted) {
            finalize_pair(pair, fault::PairStatus::Interrupted);
            return;
        }
        if (fault::is_budget_overrun(pair.fail_reason) &&
            options_.degraded_retry && !pair.degraded) {
            restart_degraded(pair);
            return;
        }
        quarantine_pair(pair);
    }

    void
    restart_degraded(PairState& pair)
    {
        obs::ScopedSpan span("degraded_retry", "batch.fault");
        span.arg("pair", static_cast<std::int64_t>(pair.pair_index));
        metrics_.counter("batch.fault.retries").add(1);
        warn(strprintf("batch: pair '%s' hit its %s budget in the %s "
                       "stage; retrying with degraded parameters",
                       pair.job->name.c_str(),
                       fault::fail_reason_name(pair.fail_reason),
                       pair.fail_stage.c_str()));
        pair.degraded = true;
        pair.params = apply_degrade(options_.params, options_.degrade);
        // run_streaming rejects a per-chunk hit cap (defined over whole
        // query chunks, which band sharding splits); the band and ydrop
        // degrades still bound the retry's work.
        if (options_.streaming)
            pair.params.dsoft.max_hits_per_chunk = 0;
        // Reset everything the failed attempt touched. No other task of
        // this pair exists (inflight == 0), so plain writes are safe.
        pair.result = wga::WgaResult{};
        pair.query_rc = seq::Sequence{};
        pair.index.reset();
        pair.seeder.reset();
        for (StrandState& strand : pair.strands)
            strand.reset();
        pair.num_strands = 1;
        pair.strands_remaining.store(1);
        pair.failed.store(false, std::memory_order_release);
        PrepareTask task{pair.pair_index};
        enqueue(prepare_queue_, task, "prepare", kPrepare, pair.pair_index);
    }

    void
    quarantine_pair(PairState& pair)
    {
        obs::ScopedSpan span("quarantine", "batch.fault");
        span.arg("pair", static_cast<std::int64_t>(pair.pair_index));
        fault::QuarantineRecord record;
        record.pair_index = pair.pair_index;
        record.name = pair.job->name;
        record.stage = pair.fail_stage;
        record.reason = pair.fail_reason;
        record.message = pair.fail_message;
        record.attempts = pair.attempts;
        {
            std::lock_guard<std::mutex> lock(pair.stats_mutex);
            record.elapsed_seconds = pair.work_seconds;
        }
        record.cells_charged = pair.token.cells_charged();
        record.heap_bytes_charged = pair.token.heap_bytes_charged();
        pair.out.quarantine = record;
        warn(strprintf("batch: quarantined pair '%s' (%s in the %s stage "
                       "after %u attempt%s): %s",
                       record.name.c_str(),
                       fault::fail_reason_name(record.reason),
                       record.stage.c_str(), record.attempts,
                       record.attempts == 1 ? "" : "s",
                       record.message.c_str()));
        finalize_pair(pair, fault::PairStatus::Quarantined);
    }

    /** The single exit point to a terminal status: fills the pair's
     *  BatchPairResult, bumps the reconciliation counters, streams the
     *  result to the runner's callback, and retires the pair. */
    void
    finalize_pair(PairState& pair, fault::PairStatus status)
    {
        if (pair.terminal.exchange(true, std::memory_order_acq_rel))
            return;
        pair.out.name = pair.job->name;
        pair.out.status = status;
        pair.out.attempts = pair.attempts;
        if (status == fault::PairStatus::Clean ||
            status == fault::PairStatus::Degraded)
            pair.out.result = std::move(pair.result);
        if (status == fault::PairStatus::Interrupted) {
            pair.out.quarantine.pair_index = pair.pair_index;
            pair.out.quarantine.name = pair.job->name;
            pair.out.quarantine.stage = pair.fail_stage;
            pair.out.quarantine.reason = fault::FailReason::Interrupted;
            pair.out.quarantine.message = pair.fail_message;
            pair.out.quarantine.attempts = pair.attempts;
        }
        metrics_
            .counter(strprintf("batch.fault.%s",
                               fault::pair_status_name(status)))
            .add(1);
        metrics_.counter("batch.pairs_completed").add(1);
        if (options_.on_pair_complete) {
            try {
                options_.on_pair_complete(pair.out);
            } catch (...) {
                fatal_abort(pair.pair_index, "on_pair_complete",
                            std::current_exception());
                return;
            }
        }
        if (pairs_remaining_.fetch_sub(1) == 1) {
            done_.store(true, std::memory_order_release);
            wake_.notify_all();
        }
    }

    /** A FatalError escapes pair isolation and aborts the run; run()
     *  rethrows it with the pair and stage attached. */
    void
    fatal_abort(std::size_t idx, const char* stage,
                std::exception_ptr error)
    {
        {
            std::lock_guard<std::mutex> lock(fatal_mutex_);
            if (!fatal_) {
                try {
                    std::rethrow_exception(error);
                } catch (const FatalError& fatal_error) {
                    fatal_ = std::make_exception_ptr(FatalError(strprintf(
                        "pair '%s' (%s stage): %s",
                        jobs_[idx].name.c_str(), stage,
                        fatal_error.what())));
                } catch (...) {
                    fatal_ = std::current_exception();
                }
            }
        }
        done_.store(true, std::memory_order_release);
        wake_.notify_all();
    }

    /** First sighting of the process shutdown flag: cancel every live
     *  pair so in-flight kernels stop at their next poll. Queued tasks
     *  of those pairs then drain as drops and each pair finalizes as
     *  Interrupted — which is what lets the runner flush a consistent
     *  checkpoint before exiting. */
    void
    handle_shutdown()
    {
        if (shutdown_handled_.exchange(true, std::memory_order_acq_rel))
            return;
        inform("batch: shutdown requested; cancelling in-flight pairs");
        for (std::size_t p = 0; p < pairs_.size(); ++p) {
            if (!pairs_[p]->terminal.load(std::memory_order_acquire))
                fail_pair(p, "shutdown", fault::FailReason::Interrupted,
                          "run interrupted by shutdown request");
        }
    }

    template <typename Queue>
    void
    after_pop(const char* stage, Queue& queue)
    {
        metrics_.gauge(strprintf("batch.queue.%s.depth", stage))
            .set(static_cast<std::int64_t>(queue.size()));
    }

    /**
     * Streaming mode runs the pair whole, here in the prepare stage:
     * run_streaming is already an internally-overlapped dataflow
     * (seeding producer / filtering consumer), so slicing it across
     * the engine's stage queues would only add materialization the
     * mode exists to avoid. The engine still provides what the serial
     * CLI cannot: pair-level concurrency across workers, per-pair
     * budget tokens, degraded retries and quarantine — the prepare
     * task's run_pair_task wrapper covers the entire run.
     */
    void
    do_streaming_pair(const PrepareTask& task)
    {
        Timer timer;
        obs::ScopedSpan span("streaming_pair", "batch");
        span.arg("pair", static_cast<std::int64_t>(task.pair));
        PairState& pair = *pairs_[task.pair];
        const wga::WgaPipeline pipeline(pair.params,
                                        options_.chain_params);
        pair.result = pipeline.run_streaming(
            *pair.job->target, *pair.job->query,
            options_.streaming_params, nullptr, &metrics_);
        metrics_.counter("batch.streaming.pairs").add(1);
        metrics_.histogram("batch.streaming.seconds")
            .observe(timer.seconds());
        finalize_pair(pair, pair.degraded ? fault::PairStatus::Degraded
                                          : fault::PairStatus::Clean);
    }

    void
    do_prepare(const PrepareTask& task)
    {
        if (options_.streaming) {
            do_streaming_pair(task);
            return;
        }
        Timer timer;
        obs::ScopedSpan span("prepare", "batch");
        span.arg("pair", static_cast<std::int64_t>(task.pair));
        PairState& pair = *pairs_[task.pair];
        const wga::WgaParams& params = pair.params;

        pair.target_flat = &pair.job->target->flattened();
        pair.target_span = {pair.target_flat->codes().data(),
                            pair.target_flat->size()};
        // Acquire the target's index from the cache: the first pair of a
        // shard-group builds it, the rest (and the degraded retry, which
        // leaves the seed shape untouched) reuse it.
        const index::IndexKey key{target_digests_.at(pair.job->target),
                                  params.seed_pattern,
                                  seed::SeedIndex::kDefaultMaxBucket};
        bool built = false;
        pair.index = cache_->acquire(
            key,
            [&] {
                return std::make_shared<const seed::SeedIndex>(
                    *pair.target_flat,
                    seed::SeedPattern(params.seed_pattern));
            },
            &built);
        if (!built)
            metrics_.counter("batch.index.cache_hits").add(1);
        pair.seeder =
            std::make_unique<seed::DsoftSeeder>(*pair.index, params.dsoft);

        pair.num_strands = params.align_both_strands ? 2 : 1;
        pair.strands_remaining.store(pair.num_strands);
        const seq::Sequence& query_fwd = pair.job->query->flattened();
        if (pair.num_strands == 2)
            pair.query_rc = query_fwd.reverse_complement();

        const std::size_t margin = default_shard_margin(params);
        std::size_t total_shards = 0;
        for (std::size_t s = 0; s < pair.num_strands; ++s) {
            StrandState& strand = pair.strands[s];
            strand.query = s == 0 ? &query_fwd : &pair.query_rc;
            strand.query_span = {strand.query->codes().data(),
                                 strand.query->size()};
            strand.shards =
                make_shards(strand.query->size(), options_.shard_length,
                            params.dsoft.chunk_size, margin);
            strand.shard_candidates.resize(strand.shards.size());
            strand.shards_remaining.store(strand.shards.size());
            strand.filter = std::make_unique<wga::FilterStage>(
                params, pair.target_span, strand.query_span);
            total_shards += strand.shards.size();
        }
        {
            // Index construction is the serial pipeline's up-front
            // seed_seconds; account it the same way.
            std::lock_guard<std::mutex> lock(pair.stats_mutex);
            pair.result.stats.seed_seconds += timer.seconds();
        }
        metrics_.counter("batch.shards").add(total_shards);
        metrics_.histogram("batch.prepare.seconds").observe(timer.seconds());

        for (std::size_t s = 0; s < pair.num_strands; ++s) {
            StrandState& strand = pair.strands[s];
            if (strand.shards.empty()) {
                // Empty strand (zero-length query): complete it now.
                ExtendTask extend{task.pair, s};
                enqueue(extend_queue_, extend, "extend", kExtend, task.pair);
                continue;
            }
            for (std::size_t shard = 0; shard < strand.shards.size();
                 ++shard) {
                SeedTask seed{task.pair, s, shard};
                enqueue(seed_queue_, seed, "seed", kSeed, task.pair);
            }
        }
    }

    void
    do_seed(const SeedTask& task)
    {
        Timer timer;
        obs::ScopedSpan span("seed", "batch");
        span.arg("pair", static_cast<std::int64_t>(task.pair));
        span.arg("strand", static_cast<std::int64_t>(task.strand));
        span.arg("shard", static_cast<std::int64_t>(task.shard));
        PairState& pair = *pairs_[task.pair];
        StrandState& strand = pair.strands[task.strand];
        const Shard& shard = strand.shards[task.shard];
        const std::size_t chunk_size = pair.params.dsoft.chunk_size;

        // Seed the shard chunk-by-chunk — the exact decomposition
        // DsoftSeeder::seed_all uses, so the hit set is identical.
        wga::PipelineStats local;
        FilterTask filter{task.pair, task.strand, task.shard, {}};
        for (std::size_t begin = shard.begin; begin < shard.end;
             begin += chunk_size) {
            const std::size_t end =
                std::min(strand.query->size(), begin + chunk_size);
            auto hits = pair.seeder->seed_chunk(strand.query_span, begin,
                                                end, &local.seeding);
            filter.hits.insert(filter.hits.end(),
                               std::make_move_iterator(hits.begin()),
                               std::make_move_iterator(hits.end()));
        }
        local.seed_seconds = timer.seconds();
        {
            std::lock_guard<std::mutex> lock(pair.stats_mutex);
            pair.result.stats.merge(local);
        }
        metrics_.counter("batch.seed.tasks").add(1);
        metrics_.counter("batch.seed.lookups").add(local.seeding.seed_lookups);
        metrics_.counter("batch.seed.raw_hits").add(local.seeding.seed_hits);
        metrics_.counter("batch.seed.hits").add(filter.hits.size());
        metrics_.histogram("batch.seed.seconds").observe(timer.seconds());
        enqueue(filter_queue_, filter, "filter", kFilter, task.pair);
    }

    /**
     * Publish one task's backend flush counters. Counters appear only
     * when the task actually flushed batches (i.e. a non-serial backend
     * ran a batched stage), so serial-backend runs keep the exact
     * pre-batching metric set.
     */
    void
    publish_batch_exec(const align::BatchExecStats& batch)
    {
        if (batch.flushes == 0)
            return;
        for (const std::uint32_t size : batch.flush_sizes)
            metrics_.histogram("batch.backend.tiles_per_flush").observe(size);
        metrics_.counter("batch.backend.flushes").add(batch.flushes);
        metrics_.counter("batch.backend.tiles").add(batch.tiles);
        metrics_.counter("batch.backend.score_only_hits")
            .add(batch.score_only_hits);
        if (batch.device_cycles > 0) {
            metrics_.counter("batch.backend.device_cycles")
                .add(batch.device_cycles);
            metrics_.counter("batch.backend.device_makespan_cycles")
                .add(batch.device_makespan_cycles);
        }
    }

    void
    do_filter(FilterTask& task)
    {
        Timer timer;
        obs::ScopedSpan span("filter", "batch");
        span.arg("pair", static_cast<std::int64_t>(task.pair));
        span.arg("strand", static_cast<std::int64_t>(task.strand));
        span.arg("shard", static_cast<std::int64_t>(task.shard));
        PairState& pair = *pairs_[task.pair];
        StrandState& strand = pair.strands[task.strand];

        wga::PipelineStats local;
        // filter_hits batches the hits' BSW tiles through the active
        // backend (serial per-hit dispatch under backend `serial` or in
        // ungapped mode) while keeping per-hit verdicts in hit order.
        std::vector<wga::FilterCandidate> candidates;
        for (const auto& slot :
             strand.filter->filter_hits(task.hits, &local.filter)) {
            if (slot)
                candidates.push_back(*slot);
        }
        local.filter_seconds = timer.seconds();
        metrics_.counter("batch.filter.tasks").add(1);
        metrics_.counter("batch.filter.hits_in").add(task.hits.size());
        metrics_.counter("batch.filter.cells").add(local.filter.cells);
        publish_batch_exec(local.filter.batch);
        metrics_.counter("batch.filter.candidates").add(candidates.size());
        metrics_.counter("batch.filter.dropped")
            .add(task.hits.size() - candidates.size());
        metrics_.histogram("batch.filter.seconds").observe(timer.seconds());
        strand.shard_candidates[task.shard] = std::move(candidates);
        {
            std::lock_guard<std::mutex> lock(pair.stats_mutex);
            pair.result.stats.merge(local);
        }

        if (strand.shards_remaining.fetch_sub(1) == 1) {
            // Last shard of this strand: merge in shard order and apply
            // the canonical extension order (same sort as filter_all),
            // making the candidate stream bit-identical to the serial
            // pipeline's.
            std::size_t total = 0;
            for (const auto& shard_candidates : strand.shard_candidates)
                total += shard_candidates.size();
            strand.candidates.reserve(total);
            for (auto& shard_candidates : strand.shard_candidates) {
                strand.candidates.insert(strand.candidates.end(),
                                         shard_candidates.begin(),
                                         shard_candidates.end());
                shard_candidates.clear();
                shard_candidates.shrink_to_fit();
            }
            wga::sort_candidates(strand.candidates);
            ExtendTask extend{task.pair, task.strand};
            enqueue(extend_queue_, extend, "extend", kExtend, task.pair);
        }
    }

    void
    do_extend(const ExtendTask& task)
    {
        Timer timer;
        obs::ScopedSpan span("extend", "batch");
        span.arg("pair", static_cast<std::int64_t>(task.pair));
        span.arg("strand", static_cast<std::int64_t>(task.strand));
        PairState& pair = *pairs_[task.pair];
        StrandState& strand = pair.strands[task.strand];
        const wga::WgaParams& params = pair.params;

        wga::PipelineStats local;
        const align::GactXTileAligner aligner(params.gactx);
        wga::ExtendStage stage(params, pair.target_span, strand.query_span);
        strand.alignments =
            stage.extend_all(strand.candidates, aligner, &local.extend);
        strand.candidates.clear();
        strand.candidates.shrink_to_fit();
        const align::Strand orientation = task.strand == 0
                                              ? align::Strand::Forward
                                              : align::Strand::Reverse;
        for (align::Alignment& alignment : strand.alignments)
            alignment.query_strand = orientation;
        local.extend_seconds = timer.seconds();
        {
            std::lock_guard<std::mutex> lock(pair.stats_mutex);
            pair.result.stats.merge(local);
        }
        metrics_.counter("batch.extend.tasks").add(1);
        metrics_.counter("batch.extend.anchors_in")
            .add(local.extend.anchors_in);
        metrics_.counter("batch.extend.absorbed").add(local.extend.absorbed);
        metrics_.counter("batch.extend.extended").add(local.extend.extended);
        metrics_.counter("batch.extend.duplicates")
            .add(local.extend.duplicates);
        metrics_.counter("batch.extend.tiles")
            .add(local.extend.extension.tiles);
        metrics_.counter("batch.extend.xdrop_terminations")
            .add(local.extend.extension.xdrop_terminations);
        metrics_.counter("batch.extend.matched_bases")
            .add(local.extend.matched_bases);
        metrics_.counter("batch.alignments").add(strand.alignments.size());
        metrics_.histogram("batch.extend.seconds").observe(timer.seconds());
        publish_batch_exec(local.extend.batch);

        if (pair.strands_remaining.fetch_sub(1) == 1) {
            ChainTask chain{task.pair};
            enqueue(chain_queue_, chain, "chain", kChain, task.pair);
        }
    }

    void
    do_chain(const ChainTask& task)
    {
        Timer timer;
        obs::ScopedSpan span("chain", "batch");
        span.arg("pair", static_cast<std::int64_t>(task.pair));
        PairState& pair = *pairs_[task.pair];
        // Forward alignments first, then reverse — the serial
        // pipeline's concatenation order, which the chainer sees.
        for (std::size_t s = 0; s < pair.num_strands; ++s) {
            StrandState& strand = pair.strands[s];
            pair.result.alignments.insert(
                pair.result.alignments.end(),
                std::make_move_iterator(strand.alignments.begin()),
                std::make_move_iterator(strand.alignments.end()));
            strand.alignments.clear();
        }
        pair.result.chains = chain::chain_alignments(
            pair.result.alignments, options_.chain_params);
        {
            std::lock_guard<std::mutex> lock(pair.stats_mutex);
            pair.result.stats.chain_seconds += timer.seconds();
        }
        metrics_.counter("batch.chain.tasks").add(1);
        metrics_.counter("batch.chains").add(pair.result.chains.size());
        metrics_.histogram("batch.chain.seconds").observe(timer.seconds());

        finalize_pair(pair, pair.degraded ? fault::PairStatus::Degraded
                                          : fault::PairStatus::Clean);
    }

    const BatchOptions& options_;
    MetricsRegistry& metrics_;
    const std::vector<BatchJob>& jobs_;
    std::vector<std::unique_ptr<PairState>> pairs_;
    std::unique_ptr<index::IndexCache> owned_cache_;
    index::IndexCache* cache_ = nullptr;
    std::unordered_map<const seq::Genome*, std::uint64_t> target_digests_;

    WorkQueue<PrepareTask> prepare_queue_;
    WorkQueue<SeedTask> seed_queue_;
    WorkQueue<FilterTask> filter_queue_;
    WorkQueue<ExtendTask> extend_queue_;
    WorkQueue<ChainTask> chain_queue_;

    std::atomic<std::size_t> pairs_remaining_;
    std::atomic<bool> done_{false};
    std::atomic<bool> shutdown_handled_{false};
    std::mutex wake_mutex_;
    std::condition_variable wake_;
    std::mutex fatal_mutex_;
    std::exception_ptr fatal_;
};

}  // namespace

BatchScheduler::BatchScheduler(BatchOptions options, MetricsRegistry* metrics)
    : options_(std::move(options)),
      metrics_(metrics != nullptr ? metrics : &fallback_metrics_)
{
}

std::vector<BatchPairResult>
BatchScheduler::run(const std::vector<BatchJob>& jobs)
{
    Engine engine(options_, *metrics_, jobs);
    return engine.run();
}

}  // namespace darwin::batch
